/**
 * @file
 * Tests for the shared update-rule templates: closed-form arithmetic
 * checks, FP32/INT32/INT8 agreement, and exact cycle charging when
 * instantiated with a KernelContext.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pimsim/dpu.hh"
#include "pimsim/kernel_context.hh"
#include "rlcore/update_rules.hh"

namespace {

using namespace swiftrl::rlcore;
using swiftrl::pimsim::Dpu;
using swiftrl::pimsim::DpuCostModel;
using swiftrl::pimsim::KernelContext;

Hyper
defaultHyper()
{
    Hyper h; // alpha 0.1, gamma 0.95
    return h;
}

TEST(UpdateRules, Fp32QLearningClosedForm)
{
    HostOps ops;
    // 2 states x 2 actions; Q(s'=1,.) = {0.4, 0.6}.
    std::vector<float> q{0.0f, 0.0f, 0.4f, 0.6f};
    qlearningUpdateFp32(ops, q.data(), 2, /*s=*/0, /*a=*/0,
                        /*r=*/1.0f, /*s2=*/1, /*terminal=*/false,
                        0.1f, 0.95f);
    // target = 1 + 0.95*0.6 = 1.57; Q += 0.1 * 1.57 = 0.157.
    EXPECT_NEAR(q[0], 0.157f, 1e-6f);
    EXPECT_FLOAT_EQ(q[1], 0.0f); // untouched
}

TEST(UpdateRules, Fp32TerminalSkipsBootstrap)
{
    HostOps ops;
    std::vector<float> q{0.5f, 0.0f, 9.0f, 9.0f};
    qlearningUpdateFp32(ops, q.data(), 2, 0, 0, 1.0f, 1,
                        /*terminal=*/true, 0.1f, 0.95f);
    // target = r = 1; Q = 0.5 + 0.1*(1 - 0.5) = 0.55.
    EXPECT_NEAR(q[0], 0.55f, 1e-6f);
}

TEST(UpdateRules, Int32QLearningClosedForm)
{
    HostOps ops;
    const auto scaled = ScaledHyper::fromHyper(defaultHyper());
    // Q(s'=1,.) = {4000, 6000} (0.4, 0.6 at scale 10000).
    std::vector<std::int32_t> q{0, 0, 4000, 6000};
    qlearningUpdateInt32(ops, q.data(), 2, 0, 0,
                         /*r_scaled=*/10000, 1, false, scaled);
    // discounted = 9500*6000/10000 = 5700; target = 15700;
    // step = 1000*15700/10000 = 1570.
    EXPECT_EQ(q[0], 1570);
}

TEST(UpdateRules, Int32MatchesFp32WithinOneStep)
{
    HostOps a, b;
    std::vector<float> qf{0.2f, -0.3f, 0.4f, 0.6f};
    std::vector<std::int32_t> qi{2000, -3000, 4000, 6000};
    const auto scaled = ScaledHyper::fromHyper(defaultHyper());

    qlearningUpdateFp32(a, qf.data(), 2, 0, 1, -1.0f, 1, false, 0.1f,
                        0.95f);
    qlearningUpdateInt32(b, qi.data(), 2, 0, 1, -10000, 1, false,
                         scaled);
    EXPECT_NEAR(static_cast<double>(qi[1]) / 10000.0,
                static_cast<double>(qf[1]), 2e-4);
}

TEST(UpdateRules, Int8QLearningClosedForm)
{
    HostOps ops;
    Hyper h = defaultHyper(); // int8Shift = 7 -> scale 128
    const auto pow2 = ScaledHyperPow2::fromHyper(h);
    EXPECT_EQ(pow2.scale(), 128);
    EXPECT_EQ(pow2.alphaScaled, 13);  // round(0.1*128)
    EXPECT_EQ(pow2.gammaScaled, 122); // round(0.95*128)

    std::vector<std::int32_t> q{0, 0, 51, 77}; // 0.4, 0.6 at 128
    qlearningUpdateInt8(ops, q.data(), 2, 0, 0, /*r=*/128, 1, false,
                        pow2);
    // discounted = (77*122)>>7 = 9394>>7 = 73; target = 201;
    // step = (201*13)>>7 = 2613>>7 = 20.
    EXPECT_EQ(q[0], 20);
}

TEST(UpdateRules, SarsaGreedyPathUsesChosenAction)
{
    HostOps ops;
    ops.lcgSeed(1);
    // epsilon 0 -> always greedy: bootstrap from max action.
    std::vector<float> q{0.0f, 0.0f, 0.2f, 0.9f};
    sarsaUpdateFp32(ops, q.data(), 2, 0, 0, 0.0f, 1, false, 0.1f,
                    0.95f, /*epsilon_milli=*/0);
    EXPECT_NEAR(q[0], 0.1f * 0.95f * 0.9f, 1e-6f);
}

TEST(UpdateRules, SarsaEpsilonOneExploresViaLcg)
{
    // epsilon 1000/1000 -> always random: the bootstrap action is
    // the LCG's bounded draw, reproducible across providers.
    HostOps a, b;
    a.lcgSeed(7);
    b.lcgSeed(7);
    std::vector<float> qa{0.0f, 0.0f, 0.2f, 0.9f};
    std::vector<float> qb = qa;
    sarsaUpdateFp32(a, qa.data(), 2, 0, 0, 0.0f, 1, false, 0.1f,
                    0.95f, 1000);
    sarsaUpdateFp32(b, qb.data(), 2, 0, 0, 0.0f, 1, false, 0.1f,
                    0.95f, 1000);
    EXPECT_EQ(qa[0], qb[0]);
    // The chosen bootstrap was one of the two actions' values.
    const float with_a0 = 0.1f * 0.95f * 0.2f;
    const float with_a1 = 0.1f * 0.95f * 0.9f;
    EXPECT_TRUE(std::abs(qa[0] - with_a0) < 1e-6f ||
                std::abs(qa[0] - with_a1) < 1e-6f);
}

TEST(UpdateRules, MaxAndArgmaxAgree)
{
    HostOps ops;
    const std::vector<float> row{0.1f, 0.9f, 0.9f, -0.5f};
    EXPECT_FLOAT_EQ(maxQFp32(ops, row.data(), 4), 0.9f);
    EXPECT_EQ(argmaxFp32(ops, row.data(), 4), 1); // first of the tie

    const std::vector<std::int32_t> irow{-5, 7, 7, 0};
    EXPECT_EQ(maxQInt32(ops, irow.data(), 4), 7);
    EXPECT_EQ(argmaxInt32(ops, irow.data(), 4), 1);
}

TEST(UpdateRules, KernelContextProducesIdenticalValues)
{
    // The central equivalence property, at the single-update level.
    HostOps host;
    host.lcgSeed(3);
    Dpu dpu(0, 1 << 16);
    DpuCostModel model;
    KernelContext ctx(dpu, model, 64 * 1024);
    ctx.lcgSeed(3);

    std::vector<float> qh{0.3f, -0.2f, 0.7f, 0.1f};
    std::vector<float> qk = qh;
    for (int i = 0; i < 50; ++i) {
        sarsaUpdateFp32(host, qh.data(), 2, i % 2, i % 2, 0.25f,
                        (i + 1) % 2, i % 7 == 0, 0.1f, 0.95f, 100);
        sarsaUpdateFp32(ctx, qk.data(), 2, i % 2, i % 2, 0.25f,
                        (i + 1) % 2, i % 7 == 0, 0.1f, 0.95f, 100);
    }
    EXPECT_EQ(qh, qk);
    EXPECT_GT(ctx.cycles(), 0u);
}

TEST(UpdateRules, KernelContextChargesQLearningExactly)
{
    Dpu dpu(0, 1 << 16);
    DpuCostModel model;
    KernelContext ctx(dpu, model, 64 * 1024);
    std::vector<float> q(8, 0.0f);

    const auto before = ctx.cycles();
    qlearningUpdateFp32(ctx, q.data(), 4, 0, 0, 1.0f, 1, false, 0.1f,
                        0.95f);
    const auto cost = ctx.cycles() - before;

    // Expected op mix: 2 alu (addressing), 1 branch (terminal test),
    // maxQ over 4 actions (4 wram loads, 3 fp cmp, 3 branch),
    // fmul+fadd (target), wram load, fsub, fmul, fadd, wram store.
    using swiftrl::pimsim::OpClass;
    const auto expected =
        2 * model.cyclesFor(OpClass::IntAlu) +
        4 * model.cyclesFor(OpClass::Branch) +
        6 * model.cyclesFor(OpClass::WramAccess) +
        3 * model.cyclesFor(OpClass::Fp32Cmp) +
        2 * model.cyclesFor(OpClass::Fp32Mul) +
        3 * model.cyclesFor(OpClass::Fp32Add);
    EXPECT_EQ(cost, expected);
}

TEST(UpdateRules, ScaledHyperQuantisesPaperConstants)
{
    const auto s = ScaledHyper::fromHyper(defaultHyper());
    EXPECT_EQ(s.scale, 10000);
    EXPECT_EQ(s.alphaScaled, 1000);
    EXPECT_EQ(s.gammaScaled, 9500);
}

TEST(UpdateRulesDeath, Int8ShiftTooLargeIsRejected)
{
    Hyper h;
    h.int8Shift = 8; // gamma*256 = 243 > 127
    EXPECT_DEATH((void)ScaledHyperPow2::fromHyper(h),
                 "8 bits|8 ");
}

} // namespace
