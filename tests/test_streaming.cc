/**
 * @file
 * The streaming trainer's determinism and overlap contracts:
 *
 *  - the actor-thread count is purely a modelled-time knob — the
 *    final Q-table is bit-identical for 1, 2, and 8 actors;
 *  - overlap on/off changes only the timing gates — bit-identical Q,
 *    strictly smaller end-to-end time with overlap on;
 *  - the reported breakdown is a view of the timeline (hostCollect
 *    equals the host-collect bucket; endToEnd equals the timeline's
 *    makespan), and the host-collect track really overlaps the PIM
 *    tracks.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rlcore/collection.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::StreamingConfig;
using swiftrl::StreamingResult;
using swiftrl::StreamingTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::Phase;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::pimsim::TimeBucket;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;

constexpr std::size_t kCores = 8;

std::unique_ptr<swiftrl::rlenv::Environment>
makeLake()
{
    return std::make_unique<swiftrl::rlenv::FrozenLake>(true);
}

StreamingConfig
lakeConfig(NumericFormat format)
{
    StreamingConfig cfg;
    cfg.workload =
        Workload{Algorithm::QLearning, Sampling::Seq, format};
    cfg.hyper.episodes = 10; // per generation
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    cfg.generations = 6;
    cfg.transitionsPerGeneration = 1024;
    cfg.refreshPeriod = 2;
    return cfg;
}

StreamingResult
run(const StreamingConfig &cfg, unsigned host_threads = 1)
{
    PimConfig pim;
    pim.numDpus = kCores;
    pim.mramBytesPerDpu = 8u << 20;
    pim.hostThreads = host_threads;
    PimSystem system(pim);
    return StreamingTrainer(system, cfg).train(makeLake, 16, 4);
}

class StreamingDeterminism
    : public ::testing::TestWithParam<NumericFormat>
{
};

TEST_P(StreamingDeterminism, ActorCountNeverChangesTheQTable)
{
    auto cfg = lakeConfig(GetParam());
    cfg.actors = 1;
    const auto one = run(cfg);
    for (const unsigned actors : {2u, 8u}) {
        SCOPED_TRACE("actors=" + std::to_string(actors));
        cfg.actors = actors;
        const auto many = run(cfg);
        EXPECT_EQ(QTable::maxAbsDifference(one.finalQ, many.finalQ),
                  0.0f);
        EXPECT_EQ(one.commRounds, many.commRounds);
        EXPECT_EQ(one.policyRefreshes, many.policyRefreshes);
        EXPECT_EQ(one.transitions, many.transitions);
        // More actors shorten each collection slice.
        EXPECT_LT(many.collectSeconds, one.collectSeconds);
    }
}

TEST_P(StreamingDeterminism, OverlapIsTimingOnlyAndStrictlyFaster)
{
    auto cfg = lakeConfig(GetParam());
    cfg.overlap = true;
    const auto streamed = run(cfg);
    cfg.overlap = false;
    const auto sequential = run(cfg);

    EXPECT_EQ(QTable::maxAbsDifference(streamed.finalQ,
                                       sequential.finalQ),
              0.0f);
    EXPECT_EQ(streamed.commRounds, sequential.commRounds);
    EXPECT_EQ(streamed.collectSeconds, sequential.collectSeconds);
    // Same busy work on every track. Tolerance, not bit equality:
    // the identical durations sit at different clock offsets, so the
    // timeline's end-minus-start round-trip may differ in the last
    // ulp between the two schedules.
    EXPECT_NEAR(streamed.time.kernel, sequential.time.kernel, 1e-12);
    EXPECT_NEAR(streamed.time.hostCollect,
                sequential.time.hostCollect, 1e-12);
    // ...but the overlapped schedule finishes strictly sooner.
    EXPECT_LT(streamed.endToEnd, sequential.endToEnd);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, StreamingDeterminism,
    ::testing::Values(NumericFormat::Fp32, NumericFormat::Int32));

TEST(Streaming, HostPoolSizeNeverChangesTheQTable)
{
    const auto cfg = lakeConfig(NumericFormat::Int32);
    const auto serial = run(cfg, 1);
    const auto pooled = run(cfg, 8);
    EXPECT_EQ(QTable::maxAbsDifference(serial.finalQ, pooled.finalQ),
              0.0f);
    EXPECT_EQ(serial.endToEnd, pooled.endToEnd);
}

TEST(Streaming, RefreshScheduleIsGenerationIndexed)
{
    auto cfg = lakeConfig(NumericFormat::Int32);
    // Generations 0..5 with period 2 refresh at g = 2 and g = 4.
    cfg.refreshPeriod = 2;
    cfg.actors = 1;
    const auto a = run(cfg);
    EXPECT_EQ(a.policyRefreshes, 2);
    cfg.actors = 4;
    const auto b = run(cfg);
    EXPECT_EQ(b.policyRefreshes, 2);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);

    // The refreshed behaviour policy really changes what the actors
    // collect (and therefore what the learner trains on).
    cfg.actors = 1;
    cfg.refreshPeriod = 0;
    const auto never = run(cfg);
    EXPECT_EQ(never.policyRefreshes, 0);
    EXPECT_GT(QTable::maxAbsDifference(a.finalQ, never.finalQ), 0.0f);
}

TEST(Streaming, BreakdownIsAViewOfTheTimeline)
{
    const auto cfg = lakeConfig(NumericFormat::Int32);
    const auto r = run(cfg);

    EXPECT_EQ(r.endToEnd, r.timeline.endTime());
    EXPECT_EQ(r.time.hostCollect,
              r.timeline.totalForBucket(TimeBucket::HostCollect));
    EXPECT_EQ(r.time.kernel,
              r.timeline.totalForBucket(TimeBucket::Kernel));

    // One collection slice per generation (plus refresh spans) on
    // the host track.
    int host_events = 0;
    for (const auto &e : r.timeline.events())
        if (e.phase == Phase::HostCollect)
            ++host_events;
    EXPECT_EQ(host_events, cfg.generations + r.policyRefreshes);

    // The host track genuinely overlaps the PIM tracks: the makespan
    // is strictly below the sum of all busy time.
    EXPECT_LT(r.endToEnd, r.time.total() + r.time.hostCollect);
    // hostCollect is excluded from the four-way total on purpose.
    EXPECT_EQ(r.time.total(), r.time.kernel + r.time.cpuToPim +
                                  r.time.pimToCpu + r.time.interCore);
}

TEST(Streaming, ConfigValidation)
{
    PimConfig pim;
    pim.numDpus = 4;
    pim.mramBytesPerDpu = 1u << 20;
    PimSystem system(pim);

    auto cfg = lakeConfig(NumericFormat::Int32);
    cfg.actors = 0;
    EXPECT_DEATH(StreamingTrainer(system, cfg),
                 "actor count must be >= 1");

    cfg = lakeConfig(NumericFormat::Int32);
    cfg.generations = 0;
    EXPECT_DEATH(StreamingTrainer(system, cfg),
                 "generation count must be positive");
}

} // namespace
