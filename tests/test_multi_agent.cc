/**
 * @file
 * Tests for multi-agent Q-learning on the PIM system (Sec. 3.2.1):
 * one independent learner pinned to each core, agent-specific
 * datasets, no synchronisation, no aggregation.
 */

#include <gtest/gtest.h>

#include "rlcore/evaluate.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::Hyper;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;
using swiftrl::rlcore::trainCpuReference;

PimSystem
makeSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 8u << 20;
    return PimSystem(cfg);
}

std::vector<Dataset>
agentDatasets(std::size_t agents, std::size_t transitions)
{
    std::vector<Dataset> out;
    out.reserve(agents);
    for (std::size_t i = 0; i < agents; ++i) {
        swiftrl::rlenv::FrozenLake env(true);
        out.push_back(
            collectRandomDataset(env, transitions, 100 + i));
    }
    return out;
}

PimTrainConfig
multiAgentConfig(int episodes)
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = episodes;
    cfg.hyper.seed = 42;
    return cfg;
}

TEST(MultiAgent, ProducesOneTablePerAgent)
{
    const auto data = agentDatasets(4, 300);
    auto system = makeSystem(4);
    PimTrainer trainer(system, multiAgentConfig(10));
    const auto result = trainer.trainMultiAgent(data, 16, 4);
    EXPECT_EQ(result.perCore.size(), 4u);
    EXPECT_EQ(result.coresUsed, 4u);
    EXPECT_EQ(result.commRounds, 0);
    EXPECT_DOUBLE_EQ(result.time.interCore, 0.0);
}

TEST(MultiAgent, EachAgentMatchesItsOwnReference)
{
    const auto data = agentDatasets(3, 250);
    auto system = makeSystem(3);
    const auto cfg = multiAgentConfig(15);
    PimTrainer trainer(system, cfg);
    const auto result = trainer.trainMultiAgent(data, 16, 4);

    for (std::size_t agent = 0; agent < 3; ++agent) {
        const auto reference = trainCpuReference(
            Algorithm::QLearning, data[agent], 16, 4, cfg.hyper,
            Sampling::Seq, NumericFormat::Int32,
            /*lcg_stream=*/agent);
        EXPECT_EQ(QTable::maxAbsDifference(result.perCore[agent],
                                           reference),
                  0.0f)
            << "agent " << agent << " diverged";
    }
}

TEST(MultiAgent, AgentsWithDistinctDataLearnDistinctTables)
{
    const auto data = agentDatasets(2, 400);
    auto system = makeSystem(2);
    PimTrainer trainer(system, multiAgentConfig(20));
    const auto result = trainer.trainMultiAgent(data, 16, 4);
    EXPECT_GT(QTable::maxAbsDifference(result.perCore[0],
                                       result.perCore[1]),
              0.0f);
}

TEST(MultiAgent, AgentsLearnUsablePolicies)
{
    const auto data = agentDatasets(2, 8000);
    auto system = makeSystem(2);
    PimTrainer trainer(system, multiAgentConfig(50));
    const auto result = trainer.trainMultiAgent(data, 16, 4);

    for (const auto &table : result.perCore) {
        swiftrl::rlenv::FrozenLake env(true);
        const auto eval = evaluateGreedy(env, table, 300, 5);
        EXPECT_GT(eval.meanReward, 0.3);
    }
}

TEST(MultiAgent, SingleLaunchNoSyncKernelTime)
{
    const auto data = agentDatasets(2, 300);
    auto system = makeSystem(2);
    PimTrainer trainer(system, multiAgentConfig(10));
    const auto result = trainer.trainMultiAgent(data, 16, 4);
    EXPECT_GT(result.time.kernel, 0.0);
    EXPECT_GT(result.time.cpuToPim, 0.0);
    EXPECT_GT(result.time.pimToCpu, 0.0);
}

TEST(MultiAgentDeath, AgentCountMustMatchCores)
{
    const auto data = agentDatasets(2, 100);
    auto system = makeSystem(3);
    PimTrainer trainer(system, multiAgentConfig(5));
    EXPECT_EXIT((void)trainer.trainMultiAgent(data, 16, 4),
                ::testing::ExitedWithCode(1), "one agent per core");
}

TEST(MultiAgentDeath, SarsaIsRejected)
{
    auto cfg = multiAgentConfig(5);
    cfg.workload.algo = Algorithm::Sarsa;
    auto system = makeSystem(2);
    PimTrainer trainer(system, cfg);
    const auto data = agentDatasets(2, 100);
    EXPECT_EXIT((void)trainer.trainMultiAgent(data, 16, 4),
                ::testing::ExitedWithCode(1), "independent");
}

TEST(MultiAgentDeath, EmptyAgentDatasetIsFatal)
{
    std::vector<Dataset> data(2);
    swiftrl::rlenv::FrozenLake env(true);
    data[0] = collectRandomDataset(env, 100, 1);
    // data[1] left empty
    auto system = makeSystem(2);
    PimTrainer trainer(system, multiAgentConfig(5));
    EXPECT_EXIT((void)trainer.trainMultiAgent(data, 16, 4),
                ::testing::ExitedWithCode(1), "empty dataset");
}

} // namespace
