/**
 * @file
 * Tests for greedy policy evaluation.
 */

#include <gtest/gtest.h>

#include "rlcore/evaluate.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/taxi.hh"

namespace {

using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::QTable;
using swiftrl::rlenv::FrozenLake;
using swiftrl::rlenv::Taxi;

/** Hand-crafted optimal Q-table for the deterministic 4x4 lake. */
QTable
handcraftedLakePolicy()
{
    QTable q(16, 4);
    // Route 0-1-2-6-10-14-15 avoiding holes 5,7,11,12.
    q.at(0, FrozenLake::Right) = 1.0f;
    q.at(1, FrozenLake::Right) = 1.0f;
    q.at(2, FrozenLake::Down) = 1.0f;
    q.at(6, FrozenLake::Down) = 1.0f;
    q.at(10, FrozenLake::Down) = 1.0f;
    q.at(14, FrozenLake::Right) = 1.0f;
    return q;
}

TEST(Evaluate, PerfectPolicyScoresOne)
{
    FrozenLake env(false);
    const auto q = handcraftedLakePolicy();
    const auto result = evaluateGreedy(env, q, 20, 3);
    EXPECT_DOUBLE_EQ(result.meanReward, 1.0);
    EXPECT_DOUBLE_EQ(result.successRate, 1.0);
    EXPECT_DOUBLE_EQ(result.stddev, 0.0);
    EXPECT_DOUBLE_EQ(result.meanSteps, 6.0);
    EXPECT_EQ(result.episodes, 20);
}

TEST(Evaluate, ZeroTableWalksIntoWallForever)
{
    FrozenLake env(false);
    QTable q(16, 4); // all-zero: greedy = Left everywhere
    const auto result = evaluateGreedy(env, q, 5, 3);
    EXPECT_DOUBLE_EQ(result.meanReward, 0.0);
    EXPECT_DOUBLE_EQ(result.successRate, 0.0);
    EXPECT_DOUBLE_EQ(result.meanSteps, 100.0); // truncation limit
}

TEST(Evaluate, SlipperyEvaluationIsStochasticButSeeded)
{
    FrozenLake env(true);
    const auto q = handcraftedLakePolicy();
    const auto a = evaluateGreedy(env, q, 200, 11);
    FrozenLake env2(true);
    const auto b = evaluateGreedy(env2, q, 200, 11);
    EXPECT_DOUBLE_EQ(a.meanReward, b.meanReward);
    EXPECT_GT(a.meanReward, 0.0);
    EXPECT_LT(a.meanReward, 1.0);
}

TEST(Evaluate, TaxiZeroPolicyScoresBadly)
{
    Taxi env;
    QTable q(500, 6);
    const auto result = evaluateGreedy(env, q, 20, 5);
    // Greedy on zeros = always South: -1 x 200 steps.
    EXPECT_DOUBLE_EQ(result.meanReward, -200.0);
}

TEST(EvaluateDeath, ShapeMismatchPanics)
{
    FrozenLake env(false);
    QTable q(4, 4);
    EXPECT_DEATH((void)evaluateGreedy(env, q, 1, 1),
                 "does not match");
}

TEST(EvaluateDeath, ZeroEpisodesPanics)
{
    FrozenLake env(false);
    QTable q(16, 4);
    EXPECT_DEATH((void)evaluateGreedy(env, q, 0, 1),
                 "at least one");
}

} // namespace
