/**
 * @file
 * Tests for the dataset partitioner.
 */

#include <gtest/gtest.h>

#include "swiftrl/partition.hh"

namespace {

using swiftrl::Chunk;
using swiftrl::partitionDataset;

TEST(Partition, EvenSplit)
{
    const auto chunks = partitionDataset(100, 4);
    ASSERT_EQ(chunks.size(), 4u);
    for (const auto &c : chunks)
        EXPECT_EQ(c.count, 25u);
    EXPECT_EQ(chunks[0].first, 0u);
    EXPECT_EQ(chunks[3].first, 75u);
}

TEST(Partition, UnevenSplitDiffersByAtMostOne)
{
    const auto chunks = partitionDataset(103, 4);
    std::size_t total = 0, lo = 1000, hi = 0;
    for (const auto &c : chunks) {
        total += c.count;
        lo = std::min(lo, c.count);
        hi = std::max(hi, c.count);
    }
    EXPECT_EQ(total, 103u);
    EXPECT_LE(hi - lo, 1u);
}

TEST(Partition, ChunksAreContiguousAndCovering)
{
    const auto chunks = partitionDataset(1000, 7);
    std::size_t expected_first = 0;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.first, expected_first);
        EXPECT_GT(c.count, 0u);
        expected_first += c.count;
    }
    EXPECT_EQ(expected_first, 1000u);
}

TEST(Partition, SinglePart)
{
    const auto chunks = partitionDataset(42, 1);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (Chunk{0, 42}));
}

TEST(Partition, OneTransitionPerCore)
{
    const auto chunks = partitionDataset(5, 5);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(chunks[i].first, i);
        EXPECT_EQ(chunks[i].count, 1u);
    }
}

TEST(Partition, PaperScale)
{
    // 1M transitions across 2000 cores: 500 each.
    const auto chunks = partitionDataset(1'000'000, 2000);
    for (const auto &c : chunks)
        ASSERT_EQ(c.count, 500u);
}

TEST(Partition, MoreCoresThanDataGivesEmptyTrailingChunks)
{
    // 3 transitions on 5 cores: the first three cores get one each,
    // the last two get empty (but well-placed) chunks.
    const auto chunks = partitionDataset(3, 5);
    ASSERT_EQ(chunks.size(), 5u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(chunks[i].first, i);
        EXPECT_EQ(chunks[i].count, 1u);
    }
    for (std::size_t i = 3; i < 5; ++i) {
        EXPECT_EQ(chunks[i].first, 3u);
        EXPECT_EQ(chunks[i].count, 0u);
    }
}

TEST(Partition, EmptyDatasetGivesAllEmptyChunks)
{
    const auto chunks = partitionDataset(0, 4);
    ASSERT_EQ(chunks.size(), 4u);
    for (const auto &c : chunks)
        EXPECT_EQ(c, (Chunk{0, 0}));
}

TEST(Partition, RemainderGoesToLowestCoresDeterministically)
{
    // 10 = 4*2 + 2: cores 0 and 1 get 3, cores 2 and 3 get 2 —
    // always, on every call. Recovery repartitions after a core
    // dropout rely on this being a pure function of (total, parts).
    const auto a = partitionDataset(10, 4);
    const auto b = partitionDataset(10, 4);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a[0], (Chunk{0, 3}));
    EXPECT_EQ(a[1], (Chunk{3, 3}));
    EXPECT_EQ(a[2], (Chunk{6, 2}));
    EXPECT_EQ(a[3], (Chunk{8, 2}));
}

TEST(PartitionDeath, ZeroPartsIsFatal)
{
    EXPECT_EXIT((void)partitionDataset(10, 0),
                ::testing::ExitedWithCode(1), "zero cores");
}

} // namespace
