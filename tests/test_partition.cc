/**
 * @file
 * Tests for the dataset partitioner.
 */

#include <gtest/gtest.h>

#include "swiftrl/partition.hh"

namespace {

using swiftrl::Chunk;
using swiftrl::partitionDataset;

TEST(Partition, EvenSplit)
{
    const auto chunks = partitionDataset(100, 4);
    ASSERT_EQ(chunks.size(), 4u);
    for (const auto &c : chunks)
        EXPECT_EQ(c.count, 25u);
    EXPECT_EQ(chunks[0].first, 0u);
    EXPECT_EQ(chunks[3].first, 75u);
}

TEST(Partition, UnevenSplitDiffersByAtMostOne)
{
    const auto chunks = partitionDataset(103, 4);
    std::size_t total = 0, lo = 1000, hi = 0;
    for (const auto &c : chunks) {
        total += c.count;
        lo = std::min(lo, c.count);
        hi = std::max(hi, c.count);
    }
    EXPECT_EQ(total, 103u);
    EXPECT_LE(hi - lo, 1u);
}

TEST(Partition, ChunksAreContiguousAndCovering)
{
    const auto chunks = partitionDataset(1000, 7);
    std::size_t expected_first = 0;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.first, expected_first);
        EXPECT_GT(c.count, 0u);
        expected_first += c.count;
    }
    EXPECT_EQ(expected_first, 1000u);
}

TEST(Partition, SinglePart)
{
    const auto chunks = partitionDataset(42, 1);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (Chunk{0, 42}));
}

TEST(Partition, OneTransitionPerCore)
{
    const auto chunks = partitionDataset(5, 5);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(chunks[i].first, i);
        EXPECT_EQ(chunks[i].count, 1u);
    }
}

TEST(Partition, PaperScale)
{
    // 1M transitions across 2000 cores: 500 each.
    const auto chunks = partitionDataset(1'000'000, 2000);
    for (const auto &c : chunks)
        ASSERT_EQ(c.count, 500u);
}

TEST(PartitionDeath, MoreCoresThanDataIsFatal)
{
    EXPECT_EXIT((void)partitionDataset(3, 4),
                ::testing::ExitedWithCode(1), "non-empty");
}

TEST(PartitionDeath, ZeroPartsIsFatal)
{
    EXPECT_EXIT((void)partitionDataset(10, 0),
                ::testing::ExitedWithCode(1), "zero cores");
}

} // namespace
