/**
 * @file
 * Tests for the logging/error-reporting helpers (gem5-style fatal vs.
 * panic semantics).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace {

using swiftrl::common::LogLevel;
using swiftrl::common::logLevel;
using swiftrl::common::setLogLevel;

TEST(Logging, LevelRoundtrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    SWIFTRL_WARN("warning message ", 1);
    SWIFTRL_INFORM("status message ", 2.5);
    SWIFTRL_DEBUG("debug message");
    SUCCEED();
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SWIFTRL_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(SWIFTRL_FATAL("user error: ", 42),
                ::testing::ExitedWithCode(1), "user error: 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(SWIFTRL_PANIC("internal bug"), "internal bug");
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH(SWIFTRL_ASSERT(false, "must hold"),
                 "assertion failed");
}

} // namespace
