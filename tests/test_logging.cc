/**
 * @file
 * Tests for the logging/error-reporting helpers (gem5-style fatal vs.
 * panic semantics), the level-name parsing surface (CLI-overrides-env
 * precedence, warn-once fallback on unknown names), the timestamped
 * line format, and the fatal path's flight-recorder dump.
 */

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "common/logging.hh"
#include "telemetry/tracing.hh"

namespace {

using swiftrl::common::LogLevel;
using swiftrl::common::logLevel;
using swiftrl::common::parseLogLevel;
using swiftrl::common::setLogLevel;
using swiftrl::common::setLogLevelFromName;

TEST(Logging, LevelRoundtrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    SWIFTRL_WARN("warning message ", 1);
    SWIFTRL_INFORM("status message ", 2.5);
    SWIFTRL_DEBUG("debug message");
    SUCCEED();
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    SWIFTRL_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(Logging, LinesCarryLevelTagAndMonotonicTimestamp)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStderr();
    SWIFTRL_WARN("formatted line check");
    SWIFTRL_INFORM("second line");
    const std::string output =
        ::testing::internal::GetCapturedStderr();
    setLogLevel(before);

    // "[<seconds>.<6 digits>] <level>: <message>"
    const std::regex line_format(
        R"(\[[0-9]+\.[0-9]{6}\] warn: formatted line check\n)"
        R"(\[[0-9]+\.[0-9]{6}\] inform: second line\n)");
    EXPECT_TRUE(std::regex_match(output, line_format)) << output;

    // The two timestamps never run backwards.
    const std::regex stamp(R"(\[([0-9]+\.[0-9]{6})\])");
    auto it = std::sregex_iterator(output.begin(), output.end(),
                                   stamp);
    ASSERT_NE(it, std::sregex_iterator());
    const double first = std::stod((*it)[1].str());
    ++it;
    ASSERT_NE(it, std::sregex_iterator());
    EXPECT_GE(std::stod((*it)[1].str()), first);
}

TEST(Logging, NamedLevelOverridesCurrentLevel)
{
    // The CLI path: whatever SWIFTRL_LOG (or anything else) set
    // before, an explicit --log-level wins.
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    setLogLevelFromName("debug", "--log-level");
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevelFromName("warn", "--log-level");
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(before);
}

TEST(Logging, UnknownLevelNameWarnsOnceAndFallsBackToInform)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);

    ::testing::internal::CaptureStderr();
    setLogLevelFromName("bogus", "--log-level");
    setLogLevelFromName("also-bogus", "SWIFTRL_LOG");
    const std::string output =
        ::testing::internal::GetCapturedStderr();

    // Both bad names fall back to the inform default...
    EXPECT_EQ(logLevel(), LogLevel::Inform);
    // ...but only the first one warned (warn-once).
    std::size_t warnings = 0;
    for (std::size_t pos = output.find("is not a log level");
         pos != std::string::npos;
         pos = output.find("is not a log level", pos + 1))
        ++warnings;
    EXPECT_EQ(warnings, 1u) << output;
    EXPECT_NE(output.find("bogus"), std::string::npos);

    setLogLevel(before);
}

TEST(Logging, ParseLogLevelStillRejectsUnknownNames)
{
    EXPECT_FALSE(parseLogLevel("nonsense").has_value());
    ASSERT_TRUE(parseLogLevel("debug").has_value());
    EXPECT_EQ(*parseLogLevel("debug"), LogLevel::Debug);
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(SWIFTRL_FATAL("user error: ", 42),
                ::testing::ExitedWithCode(1), "user error: 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(SWIFTRL_PANIC("internal bug"), "internal bug");
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH(SWIFTRL_ASSERT(false, "must hold"),
                 "assertion failed");
}

TEST(LoggingDeath, FatalDumpsTheFlightRecorder)
{
    // A breadcrumb noted before the crash must appear in the
    // flight-recorder dump SWIFTRL_FATAL writes to stderr on the way
    // out — the always-on post-mortem trail.
    swiftrl::telemetry::tracer().note(
        "breadcrumb before the failure");
    EXPECT_EXIT(SWIFTRL_FATAL("fatal with flight record"),
                ::testing::ExitedWithCode(1),
                "flight recorder(.|\n)*breadcrumb before the "
                "failure");
}

TEST(LoggingDeath, PanicDumpsTheFlightRecorder)
{
    swiftrl::telemetry::tracer().note("panic breadcrumb");
    EXPECT_DEATH(SWIFTRL_PANIC("panic with flight record"),
                 "flight recorder(.|\n)*panic breadcrumb");
}

} // namespace
