/**
 * @file
 * Integration tests for the PIM training orchestrator — the heart of
 * the reproduction:
 *
 *  - a single-core PIM run is *bit-identical* to the CPU reference
 *    trainer for every one of the 12 workload variants (the kernels
 *    and the reference instantiate the same update-rule templates and
 *    the same LCG streams);
 *  - multi-core runs are deterministic, execute episodes/tau
 *    communication rounds, and still learn working policies;
 *  - the modelled time breakdown behaves per the paper (kernel time
 *    shrinks with core count, INT32 beats FP32, components positive).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "rlcore/evaluate.hh"
#include "rlenv/cliff_walking.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::Hyper;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;
using swiftrl::rlcore::trainCpuReference;

PimSystem
makeSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 8u << 20;
    return PimSystem(cfg);
}

Hyper
smallHyper(int episodes, int tau_compatible_seed = 42)
{
    Hyper h;
    h.episodes = episodes;
    h.seed = static_cast<std::uint64_t>(tau_compatible_seed);
    return h;
}

Dataset
lakeData(std::size_t n, std::uint64_t seed)
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, n, seed);
}

/** Single-core PIM must equal the CPU reference exactly. */
class SingleCoreEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, Sampling, NumericFormat>>
{
};

TEST_P(SingleCoreEquivalence, BitIdenticalToReference)
{
    const auto [algo, sampling, format] = GetParam();
    const auto data = lakeData(400, 1);

    PimTrainConfig cfg;
    cfg.workload = Workload{algo, sampling, format};
    cfg.hyper = smallHyper(20);
    cfg.tau = 5;

    auto system = makeSystem(1);
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, 16, 4);

    const auto reference = trainCpuReference(
        algo, data, 16, 4, cfg.hyper, sampling, format,
        /*lcg_stream=*/0);

    EXPECT_EQ(QTable::maxAbsDifference(result.finalQ, reference),
              0.0f)
        << "PIM kernel diverged from the reference implementation";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadVariants, SingleCoreEquivalence,
    ::testing::Combine(
        ::testing::Values(Algorithm::QLearning, Algorithm::Sarsa),
        ::testing::Values(Sampling::Seq, Sampling::Ran, Sampling::Str),
        ::testing::Values(NumericFormat::Fp32, NumericFormat::Int32,
                          NumericFormat::Int8)));

TEST(PimTrainer, MultiCoreRunsAreDeterministic)
{
    const auto data = lakeData(1000, 2);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Ran,
                            NumericFormat::Fp32};
    cfg.hyper = smallHyper(10);
    cfg.tau = 5;

    auto sys_a = makeSystem(8);
    auto sys_b = makeSystem(8);
    const auto a = PimTrainer(sys_a, cfg).train(data, 16, 4);
    const auto b = PimTrainer(sys_b, cfg).train(data, 16, 4);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);
    EXPECT_DOUBLE_EQ(a.time.total(), b.time.total());
}

TEST(PimTrainer, CommRoundsFollowTau)
{
    const auto data = lakeData(500, 3);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper = smallHyper(100);
    cfg.tau = 25;

    auto system = makeSystem(4);
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);
    EXPECT_EQ(result.commRounds, 4); // 100 / 25
    EXPECT_GT(result.time.interCore, 0.0);
}

TEST(PimTrainer, PartialFinalRoundHandled)
{
    const auto data = lakeData(500, 3);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper = smallHyper(55); // 50 + 5 leftover episodes
    cfg.tau = 25;

    auto system = makeSystem(2);
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);
    EXPECT_EQ(result.commRounds, 3); // 25 + 25 + 5
}

TEST(PimTrainer, AllBreakdownComponentsPositive)
{
    const auto data = lakeData(600, 4);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::Sarsa, Sampling::Str,
                            NumericFormat::Int32};
    cfg.hyper = smallHyper(10);
    cfg.tau = 5;

    auto system = makeSystem(6);
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);
    EXPECT_GT(result.time.kernel, 0.0);
    EXPECT_GT(result.time.cpuToPim, 0.0);
    EXPECT_GT(result.time.pimToCpu, 0.0);
    EXPECT_GT(result.time.interCore, 0.0);
    EXPECT_NEAR(result.time.total(),
                result.time.kernel + result.time.cpuToPim +
                    result.time.pimToCpu + result.time.interCore,
                1e-12);
}

TEST(PimTrainer, KernelTimeShrinksWithMoreCores)
{
    const auto data = lakeData(2048, 5);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper = smallHyper(4);
    cfg.tau = 4;

    auto sys_small = makeSystem(2);
    auto sys_large = makeSystem(16);
    const auto small = PimTrainer(sys_small, cfg).train(data, 16, 4);
    const auto large = PimTrainer(sys_large, cfg).train(data, 16, 4);
    // 8x the cores -> kernel time close to 1/8 (equal chunks).
    const double speedup = small.time.kernel / large.time.kernel;
    EXPECT_GT(speedup, 6.0);
    EXPECT_LE(speedup, 8.5);
}

TEST(PimTrainer, Int32KernelBeatsFp32Kernel)
{
    const auto data = lakeData(512, 6);
    PimTrainConfig fp_cfg, int_cfg;
    fp_cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                               NumericFormat::Fp32};
    int_cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                                NumericFormat::Int32};
    fp_cfg.hyper = int_cfg.hyper = smallHyper(5);
    fp_cfg.tau = int_cfg.tau = 5;

    auto sys_fp = makeSystem(4);
    auto sys_int = makeSystem(4);
    const auto fp = PimTrainer(sys_fp, fp_cfg).train(data, 16, 4);
    const auto fx = PimTrainer(sys_int, int_cfg).train(data, 16, 4);
    // The scaling optimisation's whole point: several-fold faster.
    EXPECT_GT(fp.time.kernel / fx.time.kernel, 4.0);
}

TEST(PimTrainer, MultiCoreTrainingLearnsLake)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 8000, 7);

    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper = smallHyper(60);
    cfg.tau = 15;

    auto system = makeSystem(8);
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);

    swiftrl::rlenv::FrozenLake eval_env(true);
    const auto eval = evaluateGreedy(eval_env, result.finalQ, 500, 9);
    EXPECT_GT(eval.meanReward, 0.4);
}

TEST(PimTrainer, GatheredTablesBoundedLikeReference)
{
    const auto data = lakeData(400, 8);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper = smallHyper(30);
    cfg.tau = 10;
    auto system = makeSystem(4);
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);
    EXPECT_LE(result.finalQ.maxAbsValue(), 20.0f + 1e-3f);
}

TEST(PimTrainer, FederatedAveragingNeedsPerChunkCoverage)
{
    // Characterisation: with negative-reward environments, averaging
    // local Q-tables only works when every chunk covers the state
    // space — unvisited (s, a) pairs keep Q = 0, which beats any
    // negative learned value after averaging and derails the greedy
    // policy. CliffWalking makes this visible: 10 cores (10k
    // transitions/chunk) reach the optimum, 100 cores (1k/chunk) do
    // not. The paper's environments avoid this (frozen lake rewards
    // are non-negative; its taxi chunks are large).
    swiftrl::rlenv::CliffWalking env;
    const auto data = collectRandomDataset(env, 100'000, 1);

    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper = smallHyper(40);
    cfg.tau = 10;

    auto covered_sys = makeSystem(10);
    const auto covered =
        PimTrainer(covered_sys, cfg).train(data, 48, 4);
    swiftrl::rlenv::CliffWalking eval_a;
    const auto good =
        evaluateGreedy(eval_a, covered.finalQ, 20, 7);
    EXPECT_DOUBLE_EQ(good.meanReward, -13.0);

    auto starved_sys = makeSystem(100);
    const auto starved =
        PimTrainer(starved_sys, cfg).train(data, 48, 4);
    swiftrl::rlenv::CliffWalking eval_b;
    const auto bad = evaluateGreedy(eval_b, starved.finalQ, 20, 7);
    EXPECT_LT(bad.meanReward, good.meanReward);
}

TEST(PimTrainer, MoreCoresThanTransitionsTrains)
{
    // Cores past the end of the dataset receive empty chunks and
    // contribute nothing; the run is legal, not fatal (the C ABI
    // relies on this — it only requires transitions >= 1).
    const auto data = lakeData(4, 9);
    PimTrainConfig cfg;
    cfg.hyper = smallHyper(1);
    auto system = makeSystem(8);
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, 16, 4);
    EXPECT_EQ(result.coresUsed, 8u);
    for (std::int32_t s = 0; s < 16; ++s)
        for (std::int32_t a = 0; a < 4; ++a)
            EXPECT_TRUE(std::isfinite(result.finalQ.at(s, a)));
}

TEST(PimTrainerDeath, InvalidTauIsFatal)
{
    PimTrainConfig cfg;
    cfg.tau = 0;
    auto system = makeSystem(1);
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "tau");
}

} // namespace
