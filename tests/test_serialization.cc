/**
 * @file
 * Tests for dataset/Q-table persistence: roundtrips, corruption
 * detection, and format validation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "rlcore/serialization.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/taxi.hh"

namespace {

using namespace swiftrl::rlcore;

/** Self-deleting temp file path. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : _path((std::filesystem::temp_directory_path() /
                 ("swiftrl_test_" + name +
                  std::to_string(::getpid())))
                    .string())
    {
    }

    ~TempFile() { std::remove(_path.c_str()); }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

TEST(Serialization, DatasetRoundtripExact)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto original = collectRandomDataset(env, 5000, 1);

    TempFile file("dataset_roundtrip");
    saveDataset(original, file.path());
    const auto loaded = loadDataset(file.path());

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(loaded.get(i), original.get(i));
}

TEST(Serialization, TaxiDatasetRoundtrip)
{
    swiftrl::rlenv::Taxi env;
    const auto original = collectRandomDataset(env, 2000, 2);
    TempFile file("taxi_roundtrip");
    saveDataset(original, file.path());
    const auto loaded = loadDataset(file.path());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        ASSERT_EQ(loaded.get(i), original.get(i));
}

TEST(Serialization, EmptyDatasetRoundtrip)
{
    Dataset empty;
    TempFile file("empty_dataset");
    saveDataset(empty, file.path());
    const auto loaded = loadDataset(file.path());
    EXPECT_TRUE(loaded.empty());
}

TEST(Serialization, QTableRoundtripExact)
{
    QTable q(500, 6);
    q.initArbitrary(7);
    q.at(3, 2) = -8.6f;
    q.at(499, 5) = 20.0f;

    TempFile file("qtable_roundtrip");
    saveQTable(q, file.path());
    const auto loaded = loadQTable(file.path());
    EXPECT_EQ(loaded.numStates(), 500);
    EXPECT_EQ(loaded.numActions(), 6);
    EXPECT_EQ(QTable::maxAbsDifference(loaded, q), 0.0f);
}

TEST(Serialization, Fnv1aKnownValues)
{
    // Published FNV-1a test vectors.
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

TEST(SerializationDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)loadDataset("/nonexistent/path/data.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SerializationDeath, WrongMagicIsFatal)
{
    TempFile file("wrong_magic");
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "NOTADATASETFILE_PADDING_PADDING";
    }
    EXPECT_EXIT((void)loadDataset(file.path()),
                ::testing::ExitedWithCode(1),
                "not a SwiftRL dataset");
    EXPECT_EXIT((void)loadQTable(file.path()),
                ::testing::ExitedWithCode(1),
                "not a SwiftRL Q-table");
}

TEST(SerializationDeath, BitFlipFailsChecksum)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 100, 3);
    TempFile file("bitflip");
    saveDataset(data, file.path());

    // Flip one payload byte in place.
    {
        std::fstream f(file.path(), std::ios::binary | std::ios::in |
                                        std::ios::out);
        f.seekp(8 + 8 + 40); // past magic + count, into records
        char byte;
        f.seekg(8 + 8 + 40);
        f.get(byte);
        f.seekp(8 + 8 + 40);
        f.put(static_cast<char>(byte ^ 0x01));
    }
    EXPECT_EXIT((void)loadDataset(file.path()),
                ::testing::ExitedWithCode(1), "checksum");
}

TEST(SerializationDeath, TruncatedFileIsFatal)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 100, 3);
    TempFile file("truncated");
    saveDataset(data, file.path());
    std::filesystem::resize_file(file.path(), 100);
    EXPECT_EXIT((void)loadDataset(file.path()),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(Serialization, TrainedPolicySurvivesDeployment)
{
    // End-to-end: train, checkpoint, reload, deploy.
    swiftrl::rlenv::FrozenLake env(false);
    const auto data = collectRandomDataset(env, 20000, 1);
    Hyper h;
    h.episodes = 50;
    const auto trained = trainCpuReference(
        Algorithm::QLearning, data, 16, 4, h, Sampling::Seq,
        NumericFormat::Fp32);

    TempFile file("deploy");
    saveQTable(trained, file.path());
    const auto deployed = loadQTable(file.path());

    for (StateId s = 0; s < 16; ++s)
        ASSERT_EQ(deployed.greedyAction(s), trained.greedyAction(s));
}

} // namespace
