/**
 * @file
 * The TrainerSession checkpoint/restore contract: a run paused at any
 * round boundary, persisted to disk, and restored onto a fresh
 * PimSystem must continue **bit-identically** to the uninterrupted
 * run — same final Q-table bytes, same modelled time breakdown, same
 * fault accounting — for any host-pool size, both trainers, and with
 * or without an active fault plan. Plus the checkpoint file format's
 * failure modes: corruption, wrong magic, version and identity
 * mismatches all die loudly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rlcore/collection.hh"
#include "rlcore/serialization.hh"
#include "swiftrl/session.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::PimTrainResult;
using swiftrl::SessionCheckpoint;
using swiftrl::StreamingConfig;
using swiftrl::StreamingResult;
using swiftrl::StreamingTrainer;
using swiftrl::TimeBreakdown;
using swiftrl::Workload;
using swiftrl::pimsim::FaultKind;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using namespace swiftrl::rlcore;

void
expectBitEq(const QTable &a, const QTable &b)
{
    ASSERT_EQ(a.entryCount(), b.entryCount());
    EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                          a.entryCount() * sizeof(float)),
              0)
        << "Q-tables differ (max |diff| "
        << QTable::maxAbsDifference(a, b) << ")";
}

void
expectTimeEq(const TimeBreakdown &a, const TimeBreakdown &b)
{
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.cpuToPim, b.cpuToPim);
    EXPECT_EQ(a.pimToCpu, b.pimToCpu);
    EXPECT_EQ(a.interCore, b.interCore);
    EXPECT_EQ(a.hostCollect, b.hostCollect);
    EXPECT_EQ(a.recovery, b.recovery);
}

std::string
checkpointPath(const std::string &name)
{
    return ::testing::TempDir() + "swiftrl_" + name + ".ck";
}

// --- offline ----------------------------------------------------------

Dataset
offlineData()
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, 4096, 11);
}

PimTrainConfig
offlineConfig()
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper.episodes = 60;
    cfg.tau = 20; // 3 rounds
    return cfg;
}

PimTrainResult
runOffline(const Dataset &data, const PimConfig &pim,
           const PimTrainConfig &cfg)
{
    PimSystem system(pim);
    return PimTrainer(system, cfg).train(data, 16, 4);
}

/**
 * The core offline scenario: full run vs pause-at-round k +
 * save/load through a file + resume on a fresh system. Compared
 * bit-for-bit: final Q, breakdown, rounds, deltas, fault counters.
 */
void
checkOfflinePauseResume(const Dataset &data, const PimConfig &pim,
                        const PimTrainConfig &cfg, int pause_round,
                        const std::string &tag)
{
    SCOPED_TRACE(tag + " pause=" + std::to_string(pause_round));
    const auto full = runOffline(data, pim, cfg);

    const std::string path = checkpointPath(tag);
    {
        PimSystem system(pim);
        PimTrainer trainer(system, cfg);
        const auto ck =
            trainer.trainUntilRound(data, 16, 4, pause_round);
        swiftrl::saveCheckpoint(ck, path);
    }

    // Fresh system, fresh trainer, state only through the file.
    PimSystem system(pim);
    PimTrainer trainer(system, cfg);
    const auto ck = swiftrl::loadCheckpoint(path);
    const auto resumed = trainer.resume(data, 16, 4, ck);

    expectBitEq(full.finalQ, resumed.finalQ);
    EXPECT_EQ(full.commRounds, resumed.commRounds);
    ASSERT_EQ(full.roundDeltas.size(), resumed.roundDeltas.size());
    for (std::size_t i = 0; i < full.roundDeltas.size(); ++i)
        EXPECT_EQ(full.roundDeltas[i], resumed.roundDeltas[i]);
    expectTimeEq(full.time, resumed.time);
    EXPECT_EQ(full.faultsDetected, resumed.faultsDetected);
    EXPECT_EQ(full.coresLost, resumed.coresLost);
}

TEST(SessionOffline, RestoreBitIdenticalAcrossPoolsCleanMachine)
{
    const auto data = offlineData();
    const auto cfg = offlineConfig();
    for (const unsigned pool : {1u, 2u, 8u}) {
        PimConfig pim;
        pim.numDpus = 8;
        pim.hostThreads = pool;
        for (const int round : {0, 1, 2}) {
            checkOfflinePauseResume(
                data, pim, cfg, round,
                "clean_p" + std::to_string(pool));
        }
    }
}

TEST(SessionOffline, RestoreBitIdenticalUnderFaultsAndDropout)
{
    const auto data = offlineData();
    auto cfg = offlineConfig();
    cfg.retry.limit = 4;
    for (const unsigned pool : {1u, 2u, 8u}) {
        PimConfig pim;
        pim.numDpus = 8;
        pim.hostThreads = pool;
        pim.faultPlan.seed = 7;
        pim.faultPlan.transientRate = 0.02;
        pim.faultPlan.corruptRate = 0.02;
        // A dropout in round 2's launch: the checkpoint at round 1
        // precedes it, so the restored run must replay the same
        // fault schedule and redistribution.
        pim.faultPlan.scheduled = {
            {FaultKind::PermanentDropout, /*site=*/2, /*dpu=*/3}};
        for (const int round : {1, 2}) {
            checkOfflinePauseResume(
                data, pim, cfg, round,
                "fault_p" + std::to_string(pool));
        }
    }
}

TEST(SessionOffline, RestoreAfterDropoutRebuildsShrunkenPartition)
{
    // The dropout happens in round 1, before the pause at round 2:
    // the checkpoint carries a dead core, and the restored session
    // must re-pack the survivors' partition exactly.
    const auto data = offlineData();
    auto cfg = offlineConfig();
    PimConfig pim;
    pim.numDpus = 8;
    pim.faultPlan.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/5}};
    checkOfflinePauseResume(data, pim, cfg, 2, "dropout_before");
}

TEST(SessionOffline, RestoreBitIdenticalWeightedInt32)
{
    const auto data = offlineData();
    auto cfg = offlineConfig();
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Str,
                            NumericFormat::Int32};
    cfg.weightedAggregation = true;
    PimConfig pim;
    pim.numDpus = 4;
    checkOfflinePauseResume(data, pim, cfg, 1, "weighted_int32");
}

TEST(SessionOffline, EpsilonDecayScheduleSurvivesRestore)
{
    // SARSA consumes epsilon in every update, so a mis-restored
    // schedule position would change the Q-values, not just a label.
    const auto data = offlineData();
    auto cfg = offlineConfig();
    cfg.workload = Workload{Algorithm::Sarsa, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.epsilonDecay = 0.5f;
    PimConfig pim;
    pim.numDpus = 4;
    checkOfflinePauseResume(data, pim, cfg, 1, "eps_decay");

    // And the schedule really moves: a decaying run differs from the
    // constant-epsilon run.
    auto flat = cfg;
    flat.epsilonDecay = 1.0f;
    const auto decayed = runOffline(data, pim, cfg);
    const auto constant = runOffline(data, pim, flat);
    EXPECT_GT(QTable::maxAbsDifference(decayed.finalQ,
                                       constant.finalQ),
              0.0f);
}

// --- streaming --------------------------------------------------------

std::unique_ptr<swiftrl::rlenv::Environment>
makeLake()
{
    return std::make_unique<swiftrl::rlenv::FrozenLake>(true);
}

StreamingConfig
streamingConfig()
{
    StreamingConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper.episodes = 10; // 2 rounds per generation
    cfg.tau = 5;
    cfg.generations = 4; // 8 rounds total
    cfg.transitionsPerGeneration = 1024;
    cfg.refreshPeriod = 2;
    cfg.collectSeed = 99;
    return cfg;
}

StreamingResult
runStreaming(const PimConfig &pim, const StreamingConfig &cfg)
{
    PimSystem system(pim);
    return StreamingTrainer(system, cfg).train(makeLake, 16, 4);
}

void
checkStreamingPauseResume(const PimConfig &pim,
                          const StreamingConfig &cfg, int pause_round,
                          const std::string &tag)
{
    SCOPED_TRACE(tag + " pause=" + std::to_string(pause_round));
    const auto full = runStreaming(pim, cfg);

    const std::string path = checkpointPath(tag);
    {
        PimSystem system(pim);
        StreamingTrainer trainer(system, cfg);
        const auto ck =
            trainer.trainUntilRound(makeLake, 16, 4, pause_round);
        swiftrl::saveCheckpoint(ck, path);
    }

    PimSystem system(pim);
    StreamingTrainer trainer(system, cfg);
    const auto ck = swiftrl::loadCheckpoint(path);
    const auto resumed = trainer.resume(makeLake, 16, 4, ck);

    expectBitEq(full.finalQ, resumed.finalQ);
    EXPECT_EQ(full.commRounds, resumed.commRounds);
    EXPECT_EQ(full.policyRefreshes, resumed.policyRefreshes);
    EXPECT_EQ(full.collectSeconds, resumed.collectSeconds);
    EXPECT_EQ(full.endToEnd, resumed.endToEnd);
    expectTimeEq(full.time, resumed.time);
    EXPECT_EQ(full.faultsDetected, resumed.faultsDetected);
    EXPECT_EQ(full.coresLost, resumed.coresLost);
    EXPECT_EQ(full.transitions, resumed.transitions);
}

TEST(SessionStreaming, RestoreBitIdenticalAcrossPoolsCleanMachine)
{
    const auto cfg = streamingConfig();
    for (const unsigned pool : {1u, 2u, 8u}) {
        PimConfig pim;
        pim.numDpus = 8;
        pim.hostThreads = pool;
        // Round 3 pauses mid-generation (generation 1 has run 1 of
        // its 2 rounds); round 4 pauses exactly at the generation 1
        // boundary; round 1 pauses mid-generation 0, before any
        // policy refresh exists.
        for (const int round : {1, 3, 4}) {
            checkStreamingPauseResume(
                pim, cfg, round, "s_clean_p" + std::to_string(pool));
        }
    }
}

TEST(SessionStreaming, RestoreBitIdenticalAfterPolicyRefresh)
{
    // Pause at round 5 (mid generation 2): generation 2's collection
    // used the refreshed epsilon-greedy policy, so the restore path
    // must rebuild that policy to re-collect the same data.
    const auto cfg = streamingConfig();
    PimConfig pim;
    pim.numDpus = 8;
    checkStreamingPauseResume(pim, cfg, 5, "s_refresh");
    // And at round 6 (generation 2 boundary) the checkpoint carries
    // the active policy forward for generation 3's collection.
    checkStreamingPauseResume(pim, cfg, 6, "s_refresh_boundary");
}

TEST(SessionStreaming, RestoreBitIdenticalUnderFaultsAndDropout)
{
    auto cfg = streamingConfig();
    cfg.retry.limit = 4;
    for (const unsigned pool : {1u, 2u, 8u}) {
        PimConfig pim;
        pim.numDpus = 8;
        pim.hostThreads = pool;
        pim.faultPlan.seed = 7;
        pim.faultPlan.transientRate = 0.02;
        pim.faultPlan.corruptRate = 0.02;
        pim.faultPlan.scheduled = {
            {FaultKind::PermanentDropout, /*site=*/2, /*dpu=*/3}};
        for (const int round : {1, 3, 4}) {
            checkStreamingPauseResume(
                pim, cfg, round, "s_fault_p" + std::to_string(pool));
        }
    }
}

TEST(SessionStreaming, SequentialModeRestores)
{
    auto cfg = streamingConfig();
    cfg.overlap = false;
    PimConfig pim;
    pim.numDpus = 4;
    checkStreamingPauseResume(pim, cfg, 3, "s_sequential");
}

// --- checkpoint file format -------------------------------------------

SessionCheckpoint
sampleCheckpoint()
{
    const auto data = offlineData();
    PimConfig pim;
    pim.numDpus = 4;
    PimSystem system(pim);
    PimTrainer trainer(system, offlineConfig());
    return trainer.trainUntilRound(data, 16, 4, 1);
}

TEST(SessionCheckpointIo, FileRoundTripPreservesEveryField)
{
    const auto ck = sampleCheckpoint();
    const std::string path = checkpointPath("roundtrip");
    swiftrl::saveCheckpoint(ck, path);
    const auto back = swiftrl::loadCheckpoint(path);

    EXPECT_EQ(back.streaming, ck.streaming);
    EXPECT_TRUE(back.workload == ck.workload);
    EXPECT_EQ(back.hyper.seed, ck.hyper.seed);
    EXPECT_EQ(back.hyper.epsilon, ck.hyper.epsilon);
    EXPECT_EQ(back.tau, ck.tau);
    EXPECT_EQ(back.blockTransitions, ck.blockTransitions);
    EXPECT_EQ(back.tasklets, ck.tasklets);
    EXPECT_EQ(back.numDpus, ck.numDpus);
    EXPECT_EQ(back.numStates, ck.numStates);
    EXPECT_EQ(back.numActions, ck.numActions);
    EXPECT_EQ(back.episodesRemaining, ck.episodesRemaining);
    EXPECT_EQ(back.commRounds, ck.commRounds);
    EXPECT_EQ(back.generationsStarted, ck.generationsStarted);
    EXPECT_EQ(back.roundDeltas, ck.roundDeltas);
    EXPECT_EQ(back.epsilonNow, ck.epsilonNow);
    EXPECT_EQ(back.aggregated, ck.aggregated);
    EXPECT_EQ(back.lcgStates, ck.lcgStates);
    EXPECT_EQ(back.cursor, ck.cursor);
    EXPECT_EQ(back.faultSites, ck.faultSites);
    EXPECT_EQ(back.deadDpus, ck.deadDpus);
    EXPECT_EQ(back.faultEventsBase, ck.faultEventsBase);
    EXPECT_EQ(back.dpuCycles, ck.dpuCycles);
    EXPECT_EQ(back.streamingHostClock, ck.streamingHostClock);
}

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(SessionCheckpointIoDeath, CorruptPayloadFailsIntegrityCheck)
{
    const auto ck = sampleCheckpoint();
    const std::string path = checkpointPath("corrupt");
    swiftrl::saveCheckpoint(ck, path);
    auto bytes = readFile(path);
    bytes[bytes.size() / 2] ^= 0x5a; // flip mid-payload bits
    writeFile(path, bytes);
    EXPECT_EXIT((void)swiftrl::loadCheckpoint(path),
                ::testing::ExitedWithCode(1), "integrity");
}

TEST(SessionCheckpointIoDeath, WrongMagicIsRejected)
{
    const auto ck = sampleCheckpoint();
    const std::string path = checkpointPath("magic");
    swiftrl::saveCheckpoint(ck, path);
    auto bytes = readFile(path);
    bytes[0] = 'X';
    writeFile(path, bytes);
    EXPECT_EXIT((void)swiftrl::loadCheckpoint(path),
                ::testing::ExitedWithCode(1), "magic");
}

TEST(SessionCheckpointIoDeath, FutureVersionIsRejected)
{
    const auto ck = sampleCheckpoint();
    const std::string path = checkpointPath("version");
    swiftrl::saveCheckpoint(ck, path);
    // Patch the version word (first payload field, right after the
    // 8-byte magic) and re-seal the checksum so only the version
    // check can fire.
    auto bytes = readFile(path);
    const std::uint32_t future = 999;
    std::memcpy(bytes.data() + 8, &future, sizeof(future));
    const std::size_t payload = bytes.size() - 8 - 8;
    const std::uint64_t checksum =
        fnv1a(bytes.data() + 8, payload);
    std::memcpy(bytes.data() + bytes.size() - 8, &checksum,
                sizeof(checksum));
    writeFile(path, bytes);
    EXPECT_EXIT((void)swiftrl::loadCheckpoint(path),
                ::testing::ExitedWithCode(1), "version");
}

TEST(SessionCheckpointIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)swiftrl::loadCheckpoint(
                    checkpointPath("does_not_exist")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SessionCheckpointIoDeath, MismatchedConfigurationIsRejected)
{
    const auto data = offlineData();
    const auto ck = sampleCheckpoint();

    PimConfig pim;
    pim.numDpus = 4;
    PimSystem system(pim);
    auto other = offlineConfig();
    other.tau = 10; // checkpointed run used tau = 20
    PimTrainer trainer(system, other);
    EXPECT_EXIT((void)trainer.resume(data, 16, 4, ck),
                ::testing::ExitedWithCode(1), "does not match");
}

TEST(SessionCheckpointIoDeath, MismatchedMachineIsRejected)
{
    const auto data = offlineData();
    const auto ck = sampleCheckpoint(); // 4-core machine

    PimConfig pim;
    pim.numDpus = 8;
    PimSystem system(pim);
    PimTrainer trainer(system, offlineConfig());
    EXPECT_EXIT((void)trainer.resume(data, 16, 4, ck),
                ::testing::ExitedWithCode(1), "does not match");
}

} // namespace
