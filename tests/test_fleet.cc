// Tests for the multi-tenant fleet scheduler (src/fleet) and the
// rank-lease allocator behind it (src/pimsim/rank_pool).
//
// The load-bearing property is the determinism contract from
// docs/SCHEDULER.md: scheduling moves only fleet-clock time, never a
// learned value. Every schedule — whatever the quantum, tenant
// weights, grant shrinkage, or host-thread count — must produce final
// Q-tables bit-identical to each job's standalone run on a dedicated
// machine.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fleet/job_spec.hh"
#include "fleet/scheduler.hh"
#include "pimsim/pim_system.hh"
#include "pimsim/rank_pool.hh"
#include "rlcore/dataset.hh"
#include "rlenv/registry.hh"
#include "swiftrl/session.hh"
#include "telemetry/metric_registry.hh"

namespace {

using namespace swiftrl;

// --- RankPool ------------------------------------------------------

TEST(RankPool, LeasesLowestFreeIdsFirst)
{
    pimsim::RankPool pool(4);
    EXPECT_EQ(pool.numRanks(), 4u);
    EXPECT_EQ(pool.freeRanks(), 4u);

    const auto a = pool.lease(2);
    EXPECT_EQ(a, (std::vector<std::size_t>{0, 1}));
    const auto b = pool.lease(1);
    EXPECT_EQ(b, (std::vector<std::size_t>{2}));
    EXPECT_EQ(pool.freeRanks(), 1u);

    // Releasing the low ids makes them the next grant again.
    pool.release(a);
    const auto c = pool.lease(2);
    EXPECT_EQ(c, (std::vector<std::size_t>{0, 1}));
}

TEST(RankPool, InsufficientLeaseGrantsNothing)
{
    pimsim::RankPool pool(2);
    const auto a = pool.lease(1);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_TRUE(pool.lease(2).empty());
    // The failed lease must not have consumed the free rank.
    EXPECT_EQ(pool.freeRanks(), 1u);
}

TEST(RankPool, ChargesBusySecondsPerRank)
{
    pimsim::RankPool pool(3);
    const auto a = pool.lease(2);
    pool.charge(a, 1.5);
    pool.charge({a[1]}, 0.5);
    EXPECT_DOUBLE_EQ(pool.busySeconds(0), 1.5);
    EXPECT_DOUBLE_EQ(pool.busySeconds(1), 2.0);
    EXPECT_DOUBLE_EQ(pool.busySeconds(2), 0.0);
    EXPECT_DOUBLE_EQ(pool.totalBusySeconds(), 3.5);
}

TEST(RankPoolDeath, GuardsMisuse)
{
    pimsim::RankPool pool(2);
    EXPECT_DEATH(pool.lease(0), "lease");
    const auto a = pool.lease(1);
    pool.release(a);
    EXPECT_DEATH(pool.release(a), "double release");
    EXPECT_DEATH(pool.charge({0}, -1.0), "negative");
}

// --- job-spec parsing ----------------------------------------------

constexpr const char *kTwoTenantSpec = R"({
  "fleet": {"ranks": 4, "dpus_per_rank": 2, "quantum_rounds": 3},
  "tenants": {"research": 2.0, "prod": 1.0},
  "jobs": [
    {"id": "a", "tenant": "research", "env": "frozenlake",
     "ranks": 2, "min_ranks": 1, "episodes": 20, "tau": 5,
     "transitions": 2000, "seed": 7, "priority": 1,
     "alpha": 0.2, "gamma": 0.9, "epsilon": 0.1},
    {"id": "b", "tenant": "prod", "env": "taxi", "ranks": 4,
     "episodes": 10, "tau": 40, "transitions": 3000,
     "arrival_sec": 0.25}
  ]
})";

TEST(FleetSpec, ParsesFleetTenantsAndJobs)
{
    const auto spec = fleet::parseFleetSpec(kTwoTenantSpec);
    EXPECT_EQ(spec.config.totalRanks, 4u);
    EXPECT_EQ(spec.config.dpusPerRank, 2u);
    EXPECT_EQ(spec.config.quantumRounds, 3);
    EXPECT_DOUBLE_EQ(spec.config.weightFor("research"), 2.0);
    EXPECT_DOUBLE_EQ(spec.config.weightFor("prod"), 1.0);
    EXPECT_DOUBLE_EQ(spec.config.weightFor("unlisted"), 1.0);

    ASSERT_EQ(spec.jobs.size(), 2u);
    const auto &a = spec.jobs[0];
    EXPECT_EQ(a.id, "a");
    EXPECT_EQ(a.tenant, "research");
    EXPECT_EQ(a.priority, 1);
    EXPECT_EQ(a.ranks, 2u);
    EXPECT_EQ(a.minRanks, 1u);
    EXPECT_EQ(a.effectiveMinRanks(), 1u);
    EXPECT_EQ(a.hyper.episodes, 20);
    EXPECT_EQ(a.tau, 5);
    EXPECT_EQ(a.transitions, 2000u);
    EXPECT_FLOAT_EQ(a.hyper.alpha, 0.2f);
    EXPECT_FLOAT_EQ(a.hyper.gamma, 0.9f);
    EXPECT_FLOAT_EQ(a.hyper.epsilon, 0.1f);
    // Seed discipline matches swiftrl_cli: collect = seed,
    // train = seed + 41.
    EXPECT_EQ(a.collectSeed, 7u);
    EXPECT_EQ(a.hyper.seed, 48u);

    const auto &b = spec.jobs[1];
    EXPECT_EQ(b.minRanks, 0u);
    EXPECT_EQ(b.effectiveMinRanks(), 4u); // 0 = same as ranks
    EXPECT_EQ(b.tau, 10);                 // clamped to episodes
    EXPECT_DOUBLE_EQ(b.arrivalSec, 0.25);
}

TEST(FleetSpecDeath, RejectsOperatorMistakes)
{
    // Unknown keys anywhere fail loudly instead of silently running
    // the default.
    EXPECT_DEATH(fleet::parseFleetSpec(
                     R"({"jobs": [{"id": "a", "tenant": "t",
                          "episods": 5}]})"),
                 "unknown key");
    EXPECT_DEATH(fleet::parseFleetSpec(
                     R"({"flee": {}, "jobs": []})"),
                 "unknown key");
    // Duplicate ids, missing ids/tenants, oversized jobs.
    EXPECT_DEATH(fleet::parseFleetSpec(
                     R"({"jobs": [{"id": "a", "tenant": "t"},
                                  {"id": "a", "tenant": "t"}]})"),
                 "duplicate job id");
    EXPECT_DEATH(fleet::parseFleetSpec(R"({"jobs": [{"tenant": "t"}]})"),
                 "non-empty");
    EXPECT_DEATH(fleet::parseFleetSpec(R"({"jobs": [{"id": "a"}]})"),
                 "tenant");
    EXPECT_DEATH(fleet::parseFleetSpec(
                     R"({"fleet": {"ranks": 2},
                         "jobs": [{"id": "a", "tenant": "t",
                                   "ranks": 4}]})"),
                 "wants 4 ranks");
    EXPECT_DEATH(fleet::parseFleetSpec(
                     R"({"tenants": {"t": 0},
                         "jobs": [{"id": "a", "tenant": "t"}]})"),
                 "positive");
    EXPECT_DEATH(fleet::parseFleetSpec("{nope"), "malformed JSON");
}

// --- scheduling determinism ----------------------------------------

/** A small contended two-tenant job mix on a 3-rank fleet. */
std::vector<fleet::JobSpec>
contendedJobs()
{
    const auto make = [](const char *id, const char *tenant,
                         std::size_t ranks, std::size_t min_ranks,
                         int episodes, double arrival,
                         std::uint64_t seed) {
        fleet::JobSpec job;
        job.id = id;
        job.tenant = tenant;
        job.env = "frozenlake";
        job.ranks = ranks;
        job.minRanks = min_ranks;
        job.hyper.episodes = episodes;
        job.tau = 5;
        job.transitions = 2'000;
        job.arrivalSec = arrival;
        job.collectSeed = seed;
        job.hyper.seed = seed + 41;
        return job;
    };
    return {
        make("r1", "research", 2, 1, 20, 0.0, 3),
        make("r2", "research", 2, 0, 20, 0.0, 4),
        make("p1", "prod", 3, 1, 15, 0.001, 5),
        make("p2", "prod", 1, 0, 10, 0.002, 6),
    };
}

fleet::FleetConfig
smallFleet()
{
    fleet::FleetConfig config;
    config.totalRanks = 3;
    config.dpusPerRank = 2;
    config.quantumRounds = 2;
    config.tenantWeights = {{"research", 2.0}, {"prod", 1.0}};
    return config;
}

TEST(FleetScheduler, MatchesStandaloneBitExactly)
{
    const auto jobs = contendedJobs();
    const auto config = smallFleet();
    fleet::FleetScheduler scheduler(config);
    const auto result = scheduler.run(jobs);

    ASSERT_EQ(result.jobs.size(), jobs.size());
    EXPECT_GT(result.totalPreemptions, 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto standalone =
            fleet::FleetScheduler::runStandalone(jobs[i], config);
        EXPECT_EQ(result.jobs[i].finalQ.values(),
                  standalone.finalQ.values())
            << "job " << jobs[i].id
            << " diverged from its standalone run";
        EXPECT_EQ(result.jobs[i].commRounds, standalone.commRounds);
    }
}

TEST(FleetScheduler, ScheduleKnobsNeverMoveALearnedValue)
{
    const auto jobs = contendedJobs();
    const auto baseline =
        fleet::FleetScheduler(smallFleet()).run(jobs);

    // Different quantum: different interleaving, same Q-tables.
    auto quantum1 = smallFleet();
    quantum1.quantumRounds = 1;
    const auto r1 = fleet::FleetScheduler(quantum1).run(jobs);

    // Inverted tenant weights.
    auto inverted = smallFleet();
    inverted.tenantWeights = {{"research", 0.5}, {"prod", 4.0}};
    const auto r2 = fleet::FleetScheduler(inverted).run(jobs);

    // Single-threaded functional simulation.
    auto serial = smallFleet();
    serial.hostThreads = 1;
    const auto r3 = fleet::FleetScheduler(serial).run(jobs);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &expect = baseline.jobs[i].finalQ.values();
        EXPECT_EQ(r1.jobs[i].finalQ.values(), expect);
        EXPECT_EQ(r2.jobs[i].finalQ.values(), expect);
        EXPECT_EQ(r3.jobs[i].finalQ.values(), expect);
    }
    // The host-thread count must not even move the schedule.
    EXPECT_EQ(r3.dispatchLog, baseline.dispatchLog);
    EXPECT_EQ(r3.makespanSec, baseline.makespanSec);
}

TEST(FleetScheduler, ReplaysByteIdenticalSchedules)
{
    // Equal-priority, equal-arrival jobs tie-break by id — a total
    // order, so two runs replay the same dispatch log byte for byte.
    const auto jobs = contendedJobs();
    const auto config = smallFleet();
    const auto a = fleet::FleetScheduler(config).run(jobs);
    const auto b = fleet::FleetScheduler(config).run(jobs);
    ASSERT_FALSE(a.dispatchLog.empty());
    EXPECT_EQ(a.dispatchLog, b.dispatchLog);
    EXPECT_EQ(a.makespanSec, b.makespanSec);
    EXPECT_EQ(a.rankBusySeconds, b.rankBusySeconds);
}

TEST(FleetScheduler, ShrunkenGrantDilatesButPreservesResults)
{
    // Three ranks; "wide" (2 ranks) and "narrow" (2 ranks, min 1)
    // arrive together: wide dispatches first (id order), narrow
    // backfills onto the single leftover rank — a shrunken, dilated
    // grant.
    fleet::FleetConfig config;
    config.totalRanks = 3;
    config.dpusPerRank = 2;
    config.quantumRounds = 100; // no preemption: isolate dilation

    fleet::JobSpec wide;
    wide.id = "a-wide";
    wide.tenant = "t1";
    wide.env = "frozenlake";
    wide.ranks = 2;
    wide.hyper.episodes = 20;
    wide.tau = 5;
    wide.transitions = 2'000;
    wide.collectSeed = 9;
    wide.hyper.seed = 50;

    fleet::JobSpec narrow = wide;
    narrow.id = "b-narrow";
    narrow.tenant = "t2";
    narrow.minRanks = 1;
    narrow.collectSeed = 10;
    narrow.hyper.seed = 51;

    fleet::FleetScheduler scheduler(config);
    const auto result = scheduler.run({wide, narrow});

    EXPECT_EQ(result.jobs[0].minGrantRanks, 2u);
    EXPECT_EQ(result.jobs[1].minGrantRanks, 1u);
    // The halved grant time-multiplexes: fleet-clock occupancy is
    // dilated by ceil(2/1) = 2 over the session's own clock (plus
    // the fixed dispatch overhead).
    EXPECT_GT(result.jobs[1].occupiedSec,
              1.9 * result.jobs[1].modelledTrainSec);
    // ...but the learned values are untouched.
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const auto standalone = fleet::FleetScheduler::runStandalone(
            i == 0 ? wide : narrow, config);
        EXPECT_EQ(result.jobs[i].finalQ.values(),
                  standalone.finalQ.values());
    }
}

TEST(FleetScheduler, ResumesOnDifferentRanksAfterPreemption)
{
    // Two ranks, two full-width jobs: they alternate via preemption,
    // and the requeued job's resume lands on whatever is free — the
    // physical placement legitimately changes between grants.
    fleet::FleetConfig config;
    config.totalRanks = 2;
    config.dpusPerRank = 2;
    config.quantumRounds = 1;

    auto jobs = contendedJobs();
    jobs.resize(2);
    jobs[0].ranks = 2;
    jobs[0].minRanks = 0;
    jobs[1].ranks = 2;
    jobs[1].minRanks = 0;

    fleet::FleetScheduler scheduler(config);
    const auto result = scheduler.run(jobs);
    EXPECT_GT(result.totalPreemptions, 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_GT(result.jobs[i].grants, 1);
        const auto standalone =
            fleet::FleetScheduler::runStandalone(jobs[i], config);
        EXPECT_EQ(result.jobs[i].finalQ.values(),
                  standalone.finalQ.values());
    }
}

TEST(FleetScheduler, AccountsQueueWaitAndArrivals)
{
    const auto jobs = contendedJobs();
    const auto result =
        fleet::FleetScheduler(smallFleet()).run(jobs);
    bool someone_waited = false;
    for (const auto &job : result.jobs) {
        EXPECT_GE(job.firstDispatchSec, job.arrivalSec);
        EXPECT_GE(job.queueWaitSec, 0.0);
        EXPECT_GE(job.finishSec, job.firstDispatchSec);
        EXPECT_GT(job.grants, 0);
        someone_waited |= job.queueWaitSec > 0.0;
    }
    // An oversubscribed fleet must have made someone wait.
    EXPECT_TRUE(someone_waited);
    EXPECT_GT(result.makespanSec, 0.0);
    EXPECT_GT(result.occupancy(), 0.0);
    EXPECT_LE(result.occupancy(), 1.0);
    EXPECT_GT(result.jobsPerHour(), 0.0);
}

TEST(FleetScheduler, ShortJobFinishesWhileLongJobIsPreempted)
{
    // One rank: the long job trains, gets preempted for the short
    // job, which runs to completion while the long job waits; then
    // the long job resumes and finishes. Exercises the
    // finish-during-preemption interleaving.
    fleet::FleetConfig config;
    config.totalRanks = 1;
    config.dpusPerRank = 2;
    config.quantumRounds = 1;

    fleet::JobSpec longer;
    longer.id = "long";
    longer.tenant = "t1";
    longer.env = "frozenlake";
    longer.ranks = 1;
    longer.hyper.episodes = 30;
    longer.tau = 5;
    longer.transitions = 2'000;
    longer.collectSeed = 30;
    longer.hyper.seed = 71;

    fleet::JobSpec shorter = longer;
    shorter.id = "short";
    shorter.tenant = "t2";
    shorter.hyper.episodes = 5;
    shorter.arrivalSec = 0.001;
    shorter.collectSeed = 31;
    shorter.hyper.seed = 72;

    fleet::FleetScheduler scheduler(config);
    const auto result = scheduler.run({longer, shorter});
    EXPECT_GT(result.jobs[0].preemptions, 0);
    EXPECT_LT(result.jobs[1].finishSec, result.jobs[0].finishSec);
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const auto standalone = fleet::FleetScheduler::runStandalone(
            i == 0 ? longer : shorter, config);
        EXPECT_EQ(result.jobs[i].finalQ.values(),
                  standalone.finalQ.values());
    }
}

// --- round-0 checkpoint (the preemption edge the fleet never hits:
// --- its slices always train >= 1 round first) ---------------------

TEST(FleetScheduler, CheckpointBeforeAnyStepRestoresBitIdentically)
{
    SessionConfig config;
    config.hyper.episodes = 20;
    config.hyper.seed = 42;
    config.tau = 5;

    auto env = rlenv::makeEnvironment("frozenlake");
    const auto data = rlcore::collectRandomDataset(*env, 2'000, 1);

    pimsim::PimConfig pim;
    pim.numDpus = 4;

    // Checkpoint immediately after beginOffline, before any step.
    pimsim::PimSystem paused_system(pim);
    TrainerSession paused(paused_system, config);
    paused.beginOffline(data, env->numStates(), env->numActions());
    const auto ck = paused.checkpoint();
    EXPECT_EQ(ck.commRounds, 0);

    pimsim::PimSystem restored_system(pim);
    TrainerSession restored(restored_system, config);
    restored.restoreOffline(data, ck);
    while (restored.step()) {
    }
    restored.finishRetrieval();

    // Reference: the same run, uninterrupted.
    pimsim::PimSystem plain_system(pim);
    TrainerSession plain(plain_system, config);
    plain.beginOffline(data, env->numStates(), env->numActions());
    while (plain.step()) {
    }
    plain.finishRetrieval();

    EXPECT_EQ(restored.aggregated().values(),
              plain.aggregated().values());
    EXPECT_EQ(restored.stream().now(), plain.stream().now());
}

// --- telemetry -----------------------------------------------------

TEST(FleetScheduler, ExportsLabelledFleetMetrics)
{
    telemetry::MetricRegistry metrics(true);
    auto config = smallFleet();
    config.metrics = &metrics;
    const auto jobs = contendedJobs();
    const auto result = fleet::FleetScheduler(config).run(jobs);

    const telemetry::Labels r1_labels = {{"job", "r1"},
                                         {"tenant", "research"}};
    EXPECT_EQ(metrics.counter("fleet_preemptions_total", r1_labels)
                  .value(),
              static_cast<std::uint64_t>(result.jobs[0].preemptions));
    EXPECT_EQ(
        metrics.gauge("fleet_queue_wait_seconds", r1_labels).value(),
        result.jobs[0].queueWaitSec);
    EXPECT_EQ(metrics
                  .counter("fleet_jobs_completed_total",
                           {{"tenant", "prod"}})
                  .value(),
              2u);
    EXPECT_EQ(metrics.gauge("fleet_makespan_seconds").value(),
              result.makespanSec);
    EXPECT_EQ(metrics.gauge("fleet_rank_occupancy_ratio").value(),
              result.occupancy());
    EXPECT_EQ(
        metrics.gauge("fleet_rank_busy_seconds", {{"rank", "0"}})
            .value(),
        result.perRankBusySec[0]);

    // The registry is observation-only: a metrics-free run produces
    // the same Q-tables and schedule.
    const auto bare = fleet::FleetScheduler(smallFleet()).run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(bare.jobs[i].finalQ.values(),
                  result.jobs[i].finalQ.values());
    }
    EXPECT_EQ(bare.dispatchLog, result.dispatchLog);
}

} // namespace
