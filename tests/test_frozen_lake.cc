/**
 * @file
 * Tests for the FrozenLake environment against the Gym specification.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <map>
#include <set>

#include "common/rng.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/registry.hh"

namespace {

using swiftrl::common::XorShift128;
using swiftrl::rlenv::FrozenLake;
using swiftrl::rlenv::StepResult;

TEST(FrozenLake, SpacesMatchGym)
{
    FrozenLake env;
    EXPECT_EQ(env.numStates(), 16);
    EXPECT_EQ(env.numActions(), 4);
    EXPECT_EQ(env.maxEpisodeSteps(), 100);
    EXPECT_EQ(env.name(), "frozenlake");
}

TEST(FrozenLake, StandardMapTiles)
{
    FrozenLake env;
    EXPECT_EQ(env.tileAt(0), 'S');
    EXPECT_EQ(env.tileAt(5), 'H');
    EXPECT_EQ(env.tileAt(7), 'H');
    EXPECT_EQ(env.tileAt(11), 'H');
    EXPECT_EQ(env.tileAt(12), 'H');
    EXPECT_EQ(env.tileAt(15), 'G');
    EXPECT_EQ(env.tileAt(1), 'F');
}

TEST(FrozenLake, TerminalTiles)
{
    FrozenLake env;
    EXPECT_TRUE(env.isTerminal(5));
    EXPECT_TRUE(env.isTerminal(15));
    EXPECT_FALSE(env.isTerminal(0));
    EXPECT_FALSE(env.isTerminal(14));
}

TEST(FrozenLake, ResetReturnsStart)
{
    FrozenLake env;
    XorShift128 rng(1);
    EXPECT_EQ(env.reset(rng), 0);
    EXPECT_EQ(env.currentState(), 0);
}

TEST(FrozenLake, DeterministicMovesClampAtBorders)
{
    EXPECT_EQ(FrozenLake::moveFrom(0, FrozenLake::Left), 0);
    EXPECT_EQ(FrozenLake::moveFrom(0, FrozenLake::Up), 0);
    EXPECT_EQ(FrozenLake::moveFrom(0, FrozenLake::Right), 1);
    EXPECT_EQ(FrozenLake::moveFrom(0, FrozenLake::Down), 4);
    EXPECT_EQ(FrozenLake::moveFrom(15, FrozenLake::Right), 15);
    EXPECT_EQ(FrozenLake::moveFrom(15, FrozenLake::Down), 15);
    EXPECT_EQ(FrozenLake::moveFrom(10, FrozenLake::Up), 6);
}

TEST(FrozenLake, DeterministicVariantFollowsActionExactly)
{
    FrozenLake env(false);
    XorShift128 rng(3);
    env.reset(rng);
    auto r = env.step(FrozenLake::Right, rng);
    EXPECT_EQ(r.nextState, 1);
    r = env.step(FrozenLake::Right, rng);
    EXPECT_EQ(r.nextState, 2);
    r = env.step(FrozenLake::Down, rng);
    EXPECT_EQ(r.nextState, 6);
}

TEST(FrozenLake, GoalPaysOneAndTerminates)
{
    FrozenLake env(false);
    XorShift128 rng(3);
    env.reset(rng);
    // Deterministic safe path: Down,Down,Right,Right,Down,Right? Use
    // right,right,down,down,down,right: 0-1-2-6-10-14-15.
    env.step(FrozenLake::Right, rng);
    env.step(FrozenLake::Right, rng);
    env.step(FrozenLake::Down, rng);
    env.step(FrozenLake::Down, rng);
    env.step(FrozenLake::Down, rng);
    const auto r = env.step(FrozenLake::Right, rng);
    EXPECT_EQ(r.nextState, 15);
    EXPECT_FLOAT_EQ(r.reward, 1.0f);
    EXPECT_TRUE(r.terminated);
    EXPECT_FALSE(r.truncated);
}

TEST(FrozenLake, HoleTerminatesWithZeroReward)
{
    FrozenLake env(false);
    XorShift128 rng(3);
    env.reset(rng);
    env.step(FrozenLake::Right, rng); // 1
    const auto r = env.step(FrozenLake::Down, rng); // 5 = H
    EXPECT_EQ(r.nextState, 5);
    EXPECT_FLOAT_EQ(r.reward, 0.0f);
    EXPECT_TRUE(r.terminated);
}

TEST(FrozenLake, SlipperyMovesAreIntendedOrPerpendicular)
{
    FrozenLake env(true);
    XorShift128 rng(7);
    // From state 0 taking Right: legal outcomes are Right (1),
    // Up (0, clamped), Down (4). Never Left-equivalent... Left is not
    // in {a-1,a,a+1} = {Down, Right, Up}.
    std::map<int, int> seen;
    for (int i = 0; i < 3000; ++i) {
        env.reset(rng);
        const auto r = env.step(FrozenLake::Right, rng);
        ++seen[r.nextState];
    }
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_TRUE(seen.count(0)); // slipped Up, clamped
    EXPECT_TRUE(seen.count(1)); // intended Right
    EXPECT_TRUE(seen.count(4)); // slipped Down
    // Each outcome should occur roughly 1/3 of the time.
    for (const auto &[state, count] : seen) {
        EXPECT_GT(count, 3000 / 3 * 0.85) << "state " << state;
        EXPECT_LT(count, 3000 / 3 * 1.15) << "state " << state;
    }
}

TEST(FrozenLake, TruncatesAtStepLimit)
{
    FrozenLake env(false);
    XorShift128 rng(5);
    env.reset(rng);
    StepResult r;
    // Bounce against the left wall 100 times: never terminal.
    for (int i = 0; i < 100; ++i)
        r = env.step(FrozenLake::Left, rng);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.terminated);
    EXPECT_TRUE(r.done());
}

TEST(FrozenLake, EpisodeRestartsAfterReset)
{
    FrozenLake env(false);
    XorShift128 rng(5);
    env.reset(rng);
    env.step(FrozenLake::Right, rng);
    env.step(FrozenLake::Down, rng); // falls in hole 5
    EXPECT_EQ(env.reset(rng), 0);
    const auto r = env.step(FrozenLake::Right, rng);
    EXPECT_EQ(r.nextState, 1);
}

TEST(FrozenLakeDeath, SteppingFinishedEpisodePanics)
{
    FrozenLake env(false);
    XorShift128 rng(5);
    env.reset(rng);
    env.step(FrozenLake::Right, rng);
    env.step(FrozenLake::Down, rng); // terminal hole
    EXPECT_DEATH(env.step(FrozenLake::Right, rng), "finished episode");
}

TEST(FrozenLakeDeath, InvalidActionPanics)
{
    FrozenLake env;
    XorShift128 rng(5);
    env.reset(rng);
    EXPECT_DEATH(env.step(4, rng), "invalid action");
}

TEST(Registry, MakesAllEnvironments)
{
    for (const auto &name : swiftrl::rlenv::environmentNames()) {
        auto env = swiftrl::rlenv::makeEnvironment(name);
        ASSERT_NE(env, nullptr);
        EXPECT_EQ(env->name(), name);
        EXPECT_GT(env->numStates(), 0);
        EXPECT_GT(env->numActions(), 0);
    }
}

TEST(RegistryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)swiftrl::rlenv::makeEnvironment("pong"),
                ::testing::ExitedWithCode(1), "unknown environment");
}

} // namespace

namespace {

TEST(FrozenLakeStats, SlipNeverMovesBackwards)
{
    // Slipping is confined to {a-1, a, a+1}: taking Right can never
    // result in a Left move. From state 9 (interior), Right must
    // land in {5 (up), 10 (right), 13 (down)} and never 8 (left).
    FrozenLake env(true);
    XorShift128 rng(31);
    int landed[16] = {};
    for (int i = 0; i < 3000; ++i) {
        env.reset(rng);
        // Walk deterministically impossible; instead test from the
        // start tile with Down: outcomes {1 (right), 4 (down),
        // 0 (left-clamped)}. Never up-row beyond clamping.
        const auto r = env.step(FrozenLake::Down, rng);
        ++landed[r.nextState];
    }
    EXPECT_GT(landed[0], 0); // slipped Left, clamped to 0
    EXPECT_GT(landed[1], 0); // slipped Right
    EXPECT_GT(landed[4], 0); // intended Down
    for (int s = 0; s < 16; ++s) {
        if (s != 0 && s != 1 && s != 4) {
            EXPECT_EQ(landed[s], 0) << "illegal slip to " << s;
        }
    }
}

TEST(FrozenLakeStats, SlipDrawsAreIndependentAcrossSteps)
{
    // Consecutive slip outcomes should be uncorrelated: the joint
    // distribution of (slip_t, slip_t+1) factorises within noise.
    FrozenLake env(true);
    XorShift128 rng(32);
    int joint[3][3] = {};
    int draws = 0;
    while (draws < 20000) {
        env.reset(rng);
        // classify outcome of Down from state 0: 0->left,4->down,
        // 1->right
        auto classify = [](swiftrl::rlenv::StateId s) {
            return s == 0 ? 0 : (s == 4 ? 1 : 2);
        };
        const auto a = env.step(FrozenLake::Down, rng);
        if (a.done())
            continue;
        env.reset(rng);
        const auto b = env.step(FrozenLake::Down, rng);
        ++joint[classify(a.nextState)][classify(b.nextState)];
        ++draws;
    }
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            EXPECT_GT(joint[i][j], 20000 / 9 * 0.85);
            EXPECT_LT(joint[i][j], 20000 / 9 * 1.15);
        }
    }
}

TEST(FrozenLakeStats, EverySlipSetMatchesTheExactModel)
{
    // For every non-terminal (state, action), the deterministic
    // single-direction moves of the three slip directions define the
    // exact outcome set; moveFrom must agree with the environment's
    // possible transitions everywhere.
    FrozenLake env(true);
    for (swiftrl::rlenv::StateId s = 0; s < 16; ++s) {
        if (env.isTerminal(s))
            continue;
        for (swiftrl::rlenv::ActionId a = 0; a < 4; ++a) {
            std::set<swiftrl::rlenv::StateId> expected;
            for (int slip = -1; slip <= 1; ++slip) {
                expected.insert(FrozenLake::moveFrom(
                    s, static_cast<swiftrl::rlenv::ActionId>(
                           (a + slip + 4) % 4)));
            }
            ASSERT_GE(expected.size(), 1u);
            ASSERT_LE(expected.size(), 3u);
            // Every expected cell is one king-move away or equal.
            for (const auto next : expected) {
                const int dr = std::abs(next / 4 - s / 4);
                const int dc = std::abs(next % 4 - s % 4);
                ASSERT_LE(dr + dc, 1)
                    << "illegal slip " << s << "->" << next;
            }
        }
    }
}

} // namespace
