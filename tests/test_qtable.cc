/**
 * @file
 * Tests for the Q-table container and aggregation helpers.
 */

#include <gtest/gtest.h>

#include "rlcore/qtable.hh"

namespace {

using swiftrl::rlcore::QTable;

TEST(QTable, ZeroInitialised)
{
    QTable q(16, 4);
    EXPECT_EQ(q.numStates(), 16);
    EXPECT_EQ(q.numActions(), 4);
    EXPECT_EQ(q.entryCount(), 64u);
    EXPECT_EQ(q.byteSize(), 256u);
    for (int s = 0; s < 16; ++s)
        for (int a = 0; a < 4; ++a)
            ASSERT_EQ(q.at(s, a), 0.0f);
}

TEST(QTable, SetAndGet)
{
    QTable q(4, 3);
    q.at(2, 1) = 0.5f;
    EXPECT_FLOAT_EQ(q.at(2, 1), 0.5f);
    EXPECT_FLOAT_EQ(q.at(1, 2), 0.0f);
}

TEST(QTable, RowMajorLayout)
{
    QTable q(3, 2);
    q.at(1, 0) = 7.0f;
    EXPECT_FLOAT_EQ(q.values()[2], 7.0f);
}

TEST(QTable, MaxValue)
{
    QTable q(2, 4);
    q.at(0, 0) = -1.0f;
    q.at(0, 1) = 3.0f;
    q.at(0, 2) = 2.0f;
    q.at(0, 3) = -5.0f;
    EXPECT_FLOAT_EQ(q.maxValue(0), 3.0f);
    EXPECT_FLOAT_EQ(q.maxValue(1), 0.0f);
}

TEST(QTable, GreedyActionBreaksTiesLow)
{
    QTable q(1, 4);
    EXPECT_EQ(q.greedyAction(0), 0); // all zero: lowest index
    q.at(0, 2) = 1.0f;
    q.at(0, 3) = 1.0f;
    EXPECT_EQ(q.greedyAction(0), 2);
}

TEST(QTable, InitArbitraryIsSmallAndReproducible)
{
    QTable a(8, 4), b(8, 4);
    a.initArbitrary(5);
    b.initArbitrary(5);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < a.entryCount(); ++i) {
        ASSERT_EQ(a.values()[i], b.values()[i]);
        ASSERT_GE(a.values()[i], 0.0f);
        ASSERT_LT(a.values()[i], 0.01f);
        any_nonzero |= a.values()[i] != 0.0f;
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(QTable, SetZeroClears)
{
    QTable q(2, 2);
    q.initArbitrary(1);
    q.setZero();
    for (const float v : q.values())
        ASSERT_EQ(v, 0.0f);
}

TEST(QTable, FixedPointRoundtripIsExactForRepresentables)
{
    QTable q(2, 2);
    q.at(0, 0) = 0.5f;
    q.at(0, 1) = -8.6f;
    q.at(1, 0) = 20.0f;
    q.at(1, 1) = 0.0001f;
    const auto raw = q.toFixed(10000);
    const auto back = QTable::fromFixed(2, 2, raw, 10000);
    EXPECT_FLOAT_EQ(back.at(0, 0), 0.5f);
    EXPECT_NEAR(back.at(0, 1), -8.6f, 1e-4);
    EXPECT_FLOAT_EQ(back.at(1, 0), 20.0f);
    EXPECT_FLOAT_EQ(back.at(1, 1), 0.0001f);
}

TEST(QTable, ToFixedRounds)
{
    QTable q(1, 1);
    // 0.00006f scales to 0.6: rounds away from zero either side.
    q.at(0, 0) = 0.00006f;
    EXPECT_EQ(q.toFixed(10000)[0], 1);
    q.at(0, 0) = -0.00006f;
    EXPECT_EQ(q.toFixed(10000)[0], -1);
    // 0.00004f scales to 0.4: rounds to zero.
    q.at(0, 0) = 0.00004f;
    EXPECT_EQ(q.toFixed(10000)[0], 0);
}

TEST(QTable, AverageOfIdenticalTablesIsNearIdentity)
{
    QTable q(4, 4);
    q.initArbitrary(9);
    // sum-then-scale averaging of n identical values reproduces the
    // value up to one float rounding step.
    const auto avg = QTable::average({q, q, q});
    EXPECT_LT(QTable::maxAbsDifference(avg, q), 1e-7f);
}

TEST(QTable, AverageIsElementwiseMean)
{
    QTable a(1, 2), b(1, 2);
    a.at(0, 0) = 2.0f;
    a.at(0, 1) = -4.0f;
    b.at(0, 0) = 4.0f;
    b.at(0, 1) = 4.0f;
    const auto avg = QTable::average({a, b});
    EXPECT_FLOAT_EQ(avg.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(avg.at(0, 1), 0.0f);
}

TEST(QTable, AverageOfSingleIsExact)
{
    QTable q(3, 3);
    q.initArbitrary(2);
    const auto avg = QTable::average({q});
    for (std::size_t i = 0; i < q.entryCount(); ++i)
        ASSERT_EQ(avg.values()[i], q.values()[i]);
}

TEST(QTable, MaxAbsValueAndDifference)
{
    QTable a(1, 3), b(1, 3);
    a.at(0, 0) = -7.0f;
    a.at(0, 2) = 5.0f;
    EXPECT_FLOAT_EQ(a.maxAbsValue(), 7.0f);
    b.at(0, 0) = -6.0f;
    EXPECT_FLOAT_EQ(QTable::maxAbsDifference(a, b), 5.0f);
}

TEST(QTable, FromFloatsCopies)
{
    const std::vector<float> vals{1, 2, 3, 4, 5, 6};
    const auto q = QTable::fromFloats(2, 3, vals);
    EXPECT_FLOAT_EQ(q.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(q.at(1, 2), 6.0f);
}

TEST(QTableDeath, OutOfRangeAccessPanics)
{
    QTable q(2, 2);
    EXPECT_DEATH((void)q.at(2, 0), "out of range");
    EXPECT_DEATH((void)q.at(0, 2), "out of range");
    EXPECT_DEATH((void)q.at(-1, 0), "out of range");
}

TEST(QTableDeath, ShapeMismatchInAveragePanics)
{
    QTable a(2, 2), b(2, 3);
    EXPECT_DEATH((void)QTable::average({a, b}), "shape mismatch");
}

} // namespace
