// Tests for the policy-serving frontend (src/serving): greedy
// answers match the table, batching never changes an answer, the
// batcher's accounting is right, and the per-tenant telemetry
// labels come out.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rlcore/qtable.hh"
#include "serving/policy_server.hh"
#include "telemetry/metric_registry.hh"

namespace {

using swiftrl::rlcore::ActionId;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::StateId;
using swiftrl::serving::PolicyServer;
using swiftrl::serving::ServingConfig;

/** Deterministic little table with distinct greedy actions. */
QTable
makeTable(StateId ns = 20, ActionId na = 5)
{
    QTable q(ns, na);
    std::uint32_t lcg = 7u;
    for (float &v : q.values()) {
        lcg = lcg * 1664525u + 1013904223u;
        v = static_cast<float>(lcg >> 16);
    }
    return q;
}

TEST(PolicyServer, GreedyAnswersMatchTheTable)
{
    const QTable table = makeTable();
    PolicyServer server(table, {});
    for (StateId s = 0; s < table.numStates(); ++s)
        EXPECT_EQ(server.act(s), table.greedyAction(s));
}

TEST(PolicyServer, BatchingNeverChangesAnAnswer)
{
    const QTable table = makeTable(50, 4);
    ServingConfig batched;
    batched.maxBatch = 16;
    batched.maxWaitSec = 50e-6;
    ServingConfig unbatched;
    unbatched.maxBatch = 1;
    unbatched.maxWaitSec = 0.0;

    for (const auto &config : {batched, unbatched}) {
        PolicyServer server(table, config);
        constexpr unsigned kClients = 4;
        constexpr int kQueries = 500;
        std::atomic<int> mismatches{0};
        std::vector<std::thread> pool;
        for (unsigned c = 0; c < kClients; ++c) {
            pool.emplace_back([&, c] {
                std::uint32_t lcg = 97u * (c + 1);
                for (int i = 0; i < kQueries; ++i) {
                    lcg = lcg * 1664525u + 1013904223u;
                    const StateId s = static_cast<StateId>(
                        lcg % static_cast<std::uint32_t>(
                                  table.numStates()));
                    if (server.act(s) != table.greedyAction(s))
                        mismatches.fetch_add(1);
                }
            });
        }
        for (auto &t : pool)
            t.join();
        EXPECT_EQ(mismatches.load(), 0);
        EXPECT_EQ(server.stats().queries,
                  std::uint64_t{kClients} * kQueries);
    }
}

TEST(PolicyServer, OversizedRequestIsServedWhole)
{
    const QTable table = makeTable();
    ServingConfig config;
    config.maxBatch = 4; // smaller than the request below
    PolicyServer server(table, config);

    std::vector<StateId> states;
    for (StateId s = 0; s < table.numStates(); ++s)
        states.push_back(s);
    std::vector<ActionId> actions(states.size(), -1);
    ASSERT_TRUE(server.actBatch(states.data(), actions.data(),
                                states.size()));
    for (StateId s = 0; s < table.numStates(); ++s)
        EXPECT_EQ(actions[static_cast<std::size_t>(s)],
                  table.greedyAction(s));
    // Requests are never split: one request, one (oversized) batch.
    EXPECT_EQ(server.stats().batches, 1u);
}

TEST(PolicyServer, OutOfRangeStatesAreRejectedWhole)
{
    const QTable table = makeTable();
    PolicyServer server(table, {});

    StateId states[2] = {0, table.numStates()};
    ActionId actions[2] = {-7, -7};
    EXPECT_FALSE(server.actBatch(states, actions, 2));
    EXPECT_EQ(actions[0], -7); // no partial writes
    EXPECT_EQ(server.act(-1), -1);
    EXPECT_EQ(server.stats().rejected, 3u);
    EXPECT_EQ(server.stats().queries, 0u);
}

TEST(PolicyServer, EmptyBatchIsTriviallyServed)
{
    PolicyServer server(makeTable(), {});
    EXPECT_TRUE(server.actBatch(nullptr, nullptr, 0));
    EXPECT_EQ(server.stats().queries, 0u);
}

TEST(PolicyServer, StatsAccountEveryQueryAndBatch)
{
    const QTable table = makeTable();
    ServingConfig config;
    config.maxBatch = 1; // every request flushes alone
    config.maxWaitSec = 0.0;
    PolicyServer server(table, config);

    constexpr int kQueries = 32;
    for (int i = 0; i < kQueries; ++i)
        server.act(i % table.numStates());
    const auto stats = server.stats();
    EXPECT_EQ(stats.queries, std::uint64_t{kQueries});
    EXPECT_EQ(stats.requests, std::uint64_t{kQueries});
    EXPECT_EQ(stats.batches, std::uint64_t{kQueries});
    EXPECT_EQ(stats.fullBatches, std::uint64_t{kQueries});
}

TEST(PolicyServer, RefusesWorkAfterStop)
{
    const QTable table = makeTable();
    PolicyServer server(table, {});
    EXPECT_NE(server.act(0), -1);
    server.stop();
    EXPECT_EQ(server.act(0), -1);
    StateId state = 1;
    ActionId action = -1;
    EXPECT_FALSE(server.actBatch(&state, &action, 1));
}

TEST(PolicyServer, PerTenantMetricsAreLabelled)
{
    swiftrl::telemetry::MetricRegistry metrics;
    const QTable table = makeTable();
    ServingConfig config;
    config.metrics = &metrics;
    PolicyServer server(table, config);

    server.act(0, "alpha");
    server.act(1, "alpha");
    server.act(2, "beta");
    server.stop(); // joins the worker: metric updates are done

    using swiftrl::telemetry::Labels;
    EXPECT_EQ(metrics
                  .counter("serve_requests_total",
                           Labels{{"tenant", "alpha"}})
                  .value(),
              2u);
    EXPECT_EQ(metrics
                  .counter("serve_queries_total",
                           Labels{{"tenant", "beta"}})
                  .value(),
              1u);
    EXPECT_EQ(metrics.counter("serve_batches_total").value(), 3u);
}

TEST(PolicyServerDeath, RejectsInvalidConfiguration)
{
    const QTable table = makeTable();
    ServingConfig zero_batch;
    zero_batch.maxBatch = 0;
    EXPECT_EXIT(PolicyServer(table, zero_batch),
                ::testing::ExitedWithCode(1), "batch size");
    ServingConfig negative_wait;
    negative_wait.maxWaitSec = -1.0;
    EXPECT_EXIT(PolicyServer(table, negative_wait),
                ::testing::ExitedWithCode(1), "wait");
}

} // namespace
