/**
 * @file
 * Tests for the PIM system host API and the transfer timing model.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pimsim/pim_system.hh"
#include "pimsim/transfer_model.hh"

namespace {

using swiftrl::pimsim::KernelContext;
using swiftrl::pimsim::OpClass;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::pimsim::TransferModel;

PimConfig
smallConfig(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 1 << 20;
    return cfg;
}

TEST(TransferModel, RankParallelism)
{
    TransferModel m;
    // 64 DPUs fill one rank; 128 DPUs = two ranks in parallel: same
    // per-rank payload, same time.
    const double one_rank = m.cpuToPimSeconds(1024, 64);
    const double two_ranks = m.cpuToPimSeconds(1024, 128);
    EXPECT_DOUBLE_EQ(one_rank, two_ranks);
    // Fewer DPUs than a rank: less serialised traffic, faster.
    EXPECT_LT(m.cpuToPimSeconds(1024, 8), one_rank);
}

TEST(TransferModel, ReadbackSlowerThanPush)
{
    TransferModel m;
    EXPECT_GT(m.pimToCpuSeconds(4096, 64),
              m.cpuToPimSeconds(4096, 64));
}

TEST(TransferModel, ZeroBytesIsFree)
{
    TransferModel m;
    EXPECT_DOUBLE_EQ(m.cpuToPimSeconds(0, 64), 0.0);
    EXPECT_DOUBLE_EQ(m.pimToCpuSeconds(0, 64), 0.0);
    EXPECT_DOUBLE_EQ(m.broadcastSeconds(0, 64), 0.0);
}

TEST(TransferModel, ScatterAddsPerDpuOverhead)
{
    TransferModel m;
    const double batched = m.cpuToPimSeconds(1024, 100);
    const double scattered = m.scatterSeconds(1024, 100);
    EXPECT_NEAR(scattered - batched, 100 * m.scatterPerDpuSec, 1e-12);
}

TEST(TransferModel, SyncRoundIsGatherPlusBroadcast)
{
    TransferModel m;
    EXPECT_DOUBLE_EQ(m.syncRoundSeconds(2048, 256),
                     m.pimToCpuSeconds(2048, 256) +
                         m.broadcastSeconds(2048, 256));
}

TEST(PimSystem, ConstructsWithPaperScale)
{
    PimSystem sys(smallConfig(125));
    EXPECT_EQ(sys.numDpus(), 125u);
    EXPECT_EQ(sys.dpu(0).id(), 0u);
    EXPECT_EQ(sys.dpu(124).id(), 124u);
}

TEST(PimSystem, PushChunksDeliversDistinctPayloads)
{
    PimSystem sys(smallConfig(4));
    std::vector<std::vector<std::uint8_t>> payloads(4);
    std::vector<std::span<const std::uint8_t>> spans(4);
    for (std::size_t i = 0; i < 4; ++i) {
        payloads[i].assign(16, static_cast<std::uint8_t>(i + 1));
        spans[i] = payloads[i];
    }
    const double t = sys.pushChunks(0, spans);
    EXPECT_GT(t, 0.0);

    for (std::size_t i = 0; i < 4; ++i) {
        std::uint8_t out = 0;
        sys.dpu(i).mramRead(3, &out, 1);
        EXPECT_EQ(out, static_cast<std::uint8_t>(i + 1));
    }
}

TEST(PimSystem, BroadcastReplicates)
{
    PimSystem sys(smallConfig(3));
    const std::vector<std::uint8_t> payload{0xaa, 0xbb};
    sys.pushBroadcast(8, payload);
    for (std::size_t i = 0; i < 3; ++i) {
        std::vector<std::uint8_t> out(2);
        sys.dpu(i).mramRead(8, out.data(), 2);
        EXPECT_EQ(out, payload);
    }
}

TEST(PimSystem, GatherRoundtripsPush)
{
    PimSystem sys(smallConfig(3));
    std::vector<std::vector<std::uint8_t>> payloads(3);
    std::vector<std::span<const std::uint8_t>> spans(3);
    for (std::size_t i = 0; i < 3; ++i) {
        payloads[i].assign(8, static_cast<std::uint8_t>(0x10 * i));
        spans[i] = payloads[i];
    }
    sys.pushChunks(0, spans);

    std::vector<std::vector<std::uint8_t>> out;
    const double t = sys.gather(0, 8, out);
    EXPECT_GT(t, 0.0);
    ASSERT_EQ(out.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(out[i], payloads[i]);
}

TEST(PimSystem, LaunchRunsKernelOnEveryCore)
{
    PimSystem sys(smallConfig(5));
    std::vector<int> visited(5, 0);
    sys.launch([&](KernelContext &ctx) {
        visited[ctx.dpuId()] += 1;
    });
    for (const int v : visited)
        EXPECT_EQ(v, 1);
}

TEST(PimSystem, LaunchTimeFollowsSlowestCore)
{
    PimSystem sys(smallConfig(4));
    // Core 3 does 1000 fp multiplies; others do one int add.
    const double t = sys.launch([](KernelContext &ctx) {
        if (ctx.dpuId() == 3) {
            for (int i = 0; i < 1000; ++i)
                ctx.fmul(1.0f, 1.0f);
        } else {
            ctx.iadd(1, 1);
        }
    });
    const auto &model = sys.config().costModel;
    const double expected =
        sys.config().launchOverheadSec +
        model.seconds(1000 * model.cyclesFor(OpClass::Fp32Mul));
    EXPECT_DOUBLE_EQ(t, expected);
    EXPECT_EQ(sys.maxCycles(),
              1000 * model.cyclesFor(OpClass::Fp32Mul));
}

TEST(PimSystem, TotalCyclesSumsCores)
{
    PimSystem sys(smallConfig(3));
    sys.launch([](KernelContext &ctx) { ctx.iadd(1, 1); });
    const auto &model = sys.config().costModel;
    EXPECT_EQ(sys.totalCycles(),
              3 * model.cyclesFor(OpClass::IntAlu));
}

TEST(PimSystem, ResetStatsClearsClocks)
{
    PimSystem sys(smallConfig(2));
    sys.launch([](KernelContext &ctx) { ctx.fadd(1, 1); });
    EXPECT_GT(sys.maxCycles(), 0u);
    sys.resetStats();
    EXPECT_EQ(sys.maxCycles(), 0u);
    EXPECT_EQ(sys.totalCycles(), 0u);
}

TEST(PimSystemDeath, ZeroCoresIsFatal)
{
    PimConfig cfg;
    cfg.numDpus = 0;
    EXPECT_EXIT(PimSystem sys(cfg), ::testing::ExitedWithCode(1),
                "at least one core");
}

TEST(PimSystemDeath, WrongPayloadCountPanics)
{
    PimSystem sys(smallConfig(2));
    std::vector<std::span<const std::uint8_t>> spans(1);
    EXPECT_DEATH((void)sys.pushChunks(0, spans),
                 "one payload per core");
}

} // namespace
