/**
 * @file
 * Tests for the SEQ/RAN/STR sample walkers — the index sequences that
 * define the paper's three memory access patterns.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "rlcore/sampling.hh"

namespace {

using swiftrl::common::Lcg32;
using swiftrl::rlcore::SampleWalker;
using swiftrl::rlcore::Sampling;

std::vector<std::size_t>
walkOneEpisode(SampleWalker &walker, std::size_t n, Lcg32 &lcg)
{
    walker.startEpisode();
    std::vector<std::size_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(walker.next([&](std::size_t bound) {
            return static_cast<std::size_t>(lcg.nextBounded(
                static_cast<std::uint32_t>(bound)));
        }));
    }
    return out;
}

TEST(Sampling, SeqVisitsInOrder)
{
    SampleWalker w(5, Sampling::Seq, 4);
    Lcg32 lcg(1);
    const auto idx = walkOneEpisode(w, 5, lcg);
    EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Sampling, SeqWrapsAcrossEpisodesAfterRestart)
{
    SampleWalker w(3, Sampling::Seq, 4);
    Lcg32 lcg(1);
    const auto ep1 = walkOneEpisode(w, 3, lcg);
    const auto ep2 = walkOneEpisode(w, 3, lcg);
    EXPECT_EQ(ep1, ep2);
}

TEST(Sampling, StrideVisitsPhaseMajor)
{
    SampleWalker w(8, Sampling::Str, 4);
    Lcg32 lcg(1);
    const auto idx = walkOneEpisode(w, 8, lcg);
    EXPECT_EQ(idx,
              (std::vector<std::size_t>{0, 4, 1, 5, 2, 6, 3, 7}));
}

TEST(Sampling, StrideHandlesUnevenLength)
{
    SampleWalker w(10, Sampling::Str, 4);
    Lcg32 lcg(1);
    const auto idx = walkOneEpisode(w, 10, lcg);
    EXPECT_EQ(idx, (std::vector<std::size_t>{0, 4, 8, 1, 5, 9, 2, 6,
                                             3, 7}));
}

TEST(Sampling, StrideClampsToChunk)
{
    // stride larger than n degrades to SEQ.
    SampleWalker w(3, Sampling::Str, 50);
    EXPECT_EQ(w.stride(), 3u);
}

TEST(Sampling, RanDrawsComeFromTheProvidedSource)
{
    SampleWalker w(100, Sampling::Ran, 4);
    Lcg32 a(42), b(42);
    const auto idx = walkOneEpisode(w, 10, a);
    for (const auto i : idx)
        ASSERT_EQ(i, b.nextBounded(100));
}

TEST(Sampling, RanStaysInBounds)
{
    SampleWalker w(7, Sampling::Ran, 4);
    Lcg32 lcg(3);
    const auto idx = walkOneEpisode(w, 5000, lcg);
    for (const auto i : idx)
        ASSERT_LT(i, 7u);
}

TEST(Sampling, DeterministicStrategiesConsumeNoRandomness)
{
    Lcg32 lcg(5);
    const auto before = lcg.state();
    SampleWalker seq(10, Sampling::Seq, 4);
    walkOneEpisode(seq, 10, lcg);
    SampleWalker str(10, Sampling::Str, 4);
    walkOneEpisode(str, 10, lcg);
    EXPECT_EQ(lcg.state(), before);
}

/** Property: SEQ and STR produce a permutation of [0, n) per episode. */
class CoverageSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, Sampling>>
{
};

TEST_P(CoverageSweep, EpisodeIsAPermutation)
{
    const auto [n, stride, strategy] = GetParam();
    SampleWalker w(n, strategy, stride);
    Lcg32 lcg(1);
    const auto idx = walkOneEpisode(w, n, lcg);
    std::set<std::size_t> seen(idx.begin(), idx.end());
    EXPECT_EQ(seen.size(), n) << "duplicates or gaps in the walk";
    EXPECT_EQ(*seen.rbegin(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    SeqAndStr, CoverageSweep,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 2, 3, 4, 7, 8, 16, 100, 101,
                                       1000),
        ::testing::Values<std::size_t>(1, 2, 3, 4, 7, 50),
        ::testing::Values(Sampling::Seq, Sampling::Str)));

TEST(SamplingDeath, EmptyChunkPanics)
{
    EXPECT_DEATH(SampleWalker(0, Sampling::Seq, 4), "empty chunk");
}

} // namespace
