/**
 * @file
 * Tests for the DPU instruction/DMA cost model.
 */

#include <gtest/gtest.h>

#include "pimsim/cost_model.hh"

namespace {

using swiftrl::pimsim::Cycles;
using swiftrl::pimsim::DpuCostModel;
using swiftrl::pimsim::OpClass;
using swiftrl::pimsim::opClassName;
using swiftrl::pimsim::validate;

TEST(CostModel, DefaultsValidate)
{
    DpuCostModel model;
    validate(model); // must not terminate
    SUCCEED();
}

TEST(CostModel, PaperClockRate)
{
    DpuCostModel model;
    EXPECT_DOUBLE_EQ(model.frequencyHz, 425.0e6);
}

TEST(CostModel, NativeIntIsSingleInstruction)
{
    DpuCostModel model;
    EXPECT_EQ(model.cyclesFor(OpClass::IntAlu),
              model.pipelineInterval);
}

TEST(CostModel, EmulationOrdering)
{
    // The architectural facts the paper leans on: int add < int8 mul
    // < int32 mul < fp32 add < fp32 mul < fp32 div.
    DpuCostModel m;
    EXPECT_LT(m.cyclesFor(OpClass::IntAlu),
              m.cyclesFor(OpClass::Int8Mul));
    EXPECT_LT(m.cyclesFor(OpClass::Int8Mul),
              m.cyclesFor(OpClass::Int32Mul));
    EXPECT_LT(m.cyclesFor(OpClass::Int32Mul),
              m.cyclesFor(OpClass::Fp32Add));
    EXPECT_LT(m.cyclesFor(OpClass::Fp32Add),
              m.cyclesFor(OpClass::Fp32Mul));
    EXPECT_LT(m.cyclesFor(OpClass::Fp32Mul),
              m.cyclesFor(OpClass::Fp32Div));
}

TEST(CostModel, PipelineIntervalScalesEverything)
{
    DpuCostModel a;
    DpuCostModel b;
    b.pipelineInterval = 2 * a.pipelineInterval;
    for (std::size_t i = 0; i < swiftrl::pimsim::kNumOpClasses; ++i) {
        const auto op = static_cast<OpClass>(i);
        EXPECT_EQ(b.cyclesFor(op), 2 * a.cyclesFor(op));
    }
}

TEST(CostModel, SecondsConversion)
{
    DpuCostModel m;
    m.frequencyHz = 425.0e6;
    EXPECT_DOUBLE_EQ(m.seconds(425000000ull), 1.0);
    EXPECT_DOUBLE_EQ(m.seconds(0), 0.0);
}

TEST(CostModel, DmaCostHasFixedAndStreamingParts)
{
    DpuCostModel m;
    const Cycles small = m.dmaCycles(8);
    const Cycles large = m.dmaCycles(2048);
    EXPECT_GE(small, m.mramDmaFixedCycles);
    // Streaming component: 2040 extra bytes at 0.5 cycles/byte.
    EXPECT_EQ(large - small, 1020u);
}

TEST(CostModel, DmaIsMonotonicInSize)
{
    DpuCostModel m;
    Cycles prev = 0;
    for (std::uint32_t bytes = 8; bytes <= 2048; bytes += 8) {
        const Cycles c = m.dmaCycles(bytes);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(CostModel, OpClassNamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < swiftrl::pimsim::kNumOpClasses; ++i)
        names.insert(opClassName(static_cast<OpClass>(i)));
    EXPECT_EQ(names.size(), swiftrl::pimsim::kNumOpClasses);
}

TEST(CostModelDeath, OversizeDmaPanics)
{
    DpuCostModel m;
    EXPECT_DEATH((void)m.dmaCycles(4096), "exceeds hardware maximum");
}

TEST(CostModelDeath, MisalignedDmaPanics)
{
    DpuCostModel m;
    EXPECT_DEATH((void)m.dmaCycles(12), "alignment");
}

TEST(CostModelDeath, ZeroFrequencyIsFatal)
{
    DpuCostModel m;
    m.frequencyHz = 0.0;
    EXPECT_EXIT(validate(m), ::testing::ExitedWithCode(1),
                "frequency");
}

TEST(CostModelDeath, ZeroOpCostIsFatal)
{
    DpuCostModel m;
    m.instructions[0] = 0;
    EXPECT_EXIT(validate(m), ::testing::ExitedWithCode(1),
                "at least one instruction");
}

} // namespace
