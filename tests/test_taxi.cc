/**
 * @file
 * Tests for the Taxi environment against the Gym Taxi-v3
 * specification.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "rlenv/taxi.hh"

namespace {

using swiftrl::common::XorShift128;
using swiftrl::rlenv::Taxi;

TEST(Taxi, SpacesMatchGym)
{
    Taxi env;
    EXPECT_EQ(env.numStates(), 500);
    EXPECT_EQ(env.numActions(), 6);
    EXPECT_EQ(env.maxEpisodeSteps(), 200);
}

TEST(Taxi, EncodeDecodeIsABijection)
{
    std::set<swiftrl::rlenv::StateId> seen;
    for (int row = 0; row < 5; ++row) {
        for (int col = 0; col < 5; ++col) {
            for (int p = 0; p < 5; ++p) {
                for (int d = 0; d < 4; ++d) {
                    const auto s = Taxi::encode(row, col, p, d);
                    ASSERT_GE(s, 0);
                    ASSERT_LT(s, 500);
                    seen.insert(s);
                    int r2, c2, p2, d2;
                    Taxi::decode(s, r2, c2, p2, d2);
                    ASSERT_EQ(r2, row);
                    ASSERT_EQ(c2, col);
                    ASSERT_EQ(p2, p);
                    ASSERT_EQ(d2, d);
                }
            }
        }
    }
    EXPECT_EQ(seen.size(), 500u);
}

TEST(Taxi, GymEncodingReference)
{
    // Gym documents state 328 = (3, 1, 2, 0).
    EXPECT_EQ(Taxi::encode(3, 1, 2, 0), 328);
}

TEST(Taxi, ResetExcludesInTaxiAndSameDestination)
{
    Taxi env;
    XorShift128 rng(1);
    for (int i = 0; i < 500; ++i) {
        const auto s = env.reset(rng);
        int row, col, p, d;
        Taxi::decode(s, row, col, p, d);
        ASSERT_LT(p, Taxi::kInTaxi);
        ASSERT_NE(p, d);
    }
}

TEST(Taxi, MovementRespectsBorders)
{
    Taxi env;
    XorShift128 rng(1);
    env.reset(rng);
    // Steer into a known corner via direct state control is not
    // exposed; instead verify moves from decoded positions.
    // North from row 0 must stay in row 0.
    for (int i = 0; i < 50; ++i) {
        const auto s = env.reset(rng);
        int row, col, p, d;
        Taxi::decode(s, row, col, p, d);
        const auto r = env.step(Taxi::North, rng);
        int row2, col2, p2, d2;
        Taxi::decode(r.nextState, row2, col2, p2, d2);
        EXPECT_EQ(row2, row > 0 ? row - 1 : 0);
        EXPECT_EQ(col2, col);
        EXPECT_FLOAT_EQ(r.reward, -1.0f);
    }
}

TEST(Taxi, WallsBlockEastwardMotion)
{
    EXPECT_TRUE(Taxi::eastBlocked(0, 1));
    EXPECT_TRUE(Taxi::eastBlocked(1, 1));
    EXPECT_TRUE(Taxi::eastBlocked(3, 0));
    EXPECT_TRUE(Taxi::eastBlocked(3, 2));
    EXPECT_TRUE(Taxi::eastBlocked(4, 0));
    EXPECT_TRUE(Taxi::eastBlocked(4, 2));
    EXPECT_FALSE(Taxi::eastBlocked(0, 0));
    EXPECT_FALSE(Taxi::eastBlocked(2, 0));
    EXPECT_FALSE(Taxi::eastBlocked(2, 3));
}

TEST(Taxi, IllegalPickupCostsTen)
{
    Taxi env;
    XorShift128 rng(2);
    // Find a reset where the taxi is NOT on the passenger landmark.
    while (true) {
        const auto s = env.reset(rng);
        int row, col, p, d;
        Taxi::decode(s, row, col, p, d);
        const auto [lr, lc] = Taxi::kLandmarks[p];
        if (lr != row || lc != col) {
            const auto r = env.step(Taxi::Pickup, rng);
            EXPECT_FLOAT_EQ(r.reward, -10.0f);
            EXPECT_EQ(r.nextState, s);
            break;
        }
    }
}

TEST(Taxi, IllegalDropoffCostsTen)
{
    Taxi env;
    XorShift128 rng(2);
    const auto s = env.reset(rng);
    // Passenger is never in the taxi after reset: any dropoff is
    // illegal.
    const auto r = env.step(Taxi::Dropoff, rng);
    EXPECT_FLOAT_EQ(r.reward, -10.0f);
    EXPECT_EQ(r.nextState, s);
    EXPECT_FALSE(r.terminated);
}

/** Drive the taxi to a target cell with wall-aware greedy moves. */
void
driveTo(Taxi &env, XorShift128 &rng, int target_row, int target_col)
{
    for (int guard = 0; guard < 60; ++guard) {
        int row, col, p, d;
        Taxi::decode(env.currentState(), row, col, p, d);
        if (row == target_row && col == target_col)
            return;
        // Move vertically first (no vertical walls), then horizontally
        // along row 2 (fully open).
        if (col != target_col && row != 2) {
            env.step(row < 2 ? Taxi::South : Taxi::North, rng);
        } else if (col < target_col) {
            env.step(Taxi::East, rng);
        } else if (col > target_col) {
            env.step(Taxi::West, rng);
        } else {
            env.step(row < target_row ? Taxi::South : Taxi::North,
                     rng);
        }
    }
    FAIL() << "could not reach (" << target_row << "," << target_col
           << ")";
}

TEST(Taxi, FullRideSucceedsWithPlusTwenty)
{
    Taxi env;
    XorShift128 rng(9);
    env.reset(rng);
    int row, col, p, d;
    Taxi::decode(env.currentState(), row, col, p, d);

    const auto [pr, pc] = Taxi::kLandmarks[p];
    driveTo(env, rng, pr, pc);
    auto r = env.step(Taxi::Pickup, rng);
    EXPECT_FLOAT_EQ(r.reward, -1.0f);
    {
        int r2, c2, p2, d2;
        Taxi::decode(env.currentState(), r2, c2, p2, d2);
        EXPECT_EQ(p2, Taxi::kInTaxi);
    }

    const auto [dr, dc] = Taxi::kLandmarks[d];
    driveTo(env, rng, dr, dc);
    r = env.step(Taxi::Dropoff, rng);
    EXPECT_FLOAT_EQ(r.reward, 20.0f);
    EXPECT_TRUE(r.terminated);
}

TEST(Taxi, DropoffAtWrongLandmarkStrandsPassenger)
{
    Taxi env;
    XorShift128 rng(11);
    env.reset(rng);
    int row, col, p, d;
    Taxi::decode(env.currentState(), row, col, p, d);

    const auto [pr, pc] = Taxi::kLandmarks[p];
    driveTo(env, rng, pr, pc);
    env.step(Taxi::Pickup, rng);

    // Drive to a landmark that is NOT the destination.
    int wrong = -1;
    for (int i = 0; i < 4; ++i) {
        if (i != d) {
            wrong = i;
            break;
        }
    }
    const auto [wr, wc] = Taxi::kLandmarks[wrong];
    driveTo(env, rng, wr, wc);
    const auto r = env.step(Taxi::Dropoff, rng);
    EXPECT_FLOAT_EQ(r.reward, -1.0f); // stranding is a normal step
    EXPECT_FALSE(r.terminated);
    int r2, c2, p2, d2;
    Taxi::decode(env.currentState(), r2, c2, p2, d2);
    EXPECT_EQ(p2, wrong);
}

TEST(Taxi, TruncatesAtTwoHundredSteps)
{
    Taxi env;
    XorShift128 rng(3);
    env.reset(rng);
    swiftrl::rlenv::StepResult r;
    for (int i = 0; i < 200; ++i)
        r = env.step(Taxi::North, rng);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.terminated);
}

TEST(TaxiDeath, InvalidActionPanics)
{
    Taxi env;
    XorShift128 rng(3);
    env.reset(rng);
    EXPECT_DEATH(env.step(6, rng), "invalid action");
}

} // namespace

namespace {

TEST(TaxiStats, ResetIsUniformOverValidStarts)
{
    // 300 valid initial states (25 positions x 4 passenger x 3
    // destinations); a chi-square-style band check on the marginals.
    Taxi env;
    XorShift128 rng(21);
    std::array<int, 25> position{};
    std::array<int, 4> passenger{};
    const int draws = 30000;
    for (int i = 0; i < draws; ++i) {
        int row, col, p, d;
        Taxi::decode(env.reset(rng), row, col, p, d);
        ++position[static_cast<std::size_t>(row * 5 + col)];
        ++passenger[static_cast<std::size_t>(p)];
    }
    for (const int c : position) {
        EXPECT_GT(c, draws / 25 * 0.85);
        EXPECT_LT(c, draws / 25 * 1.15);
    }
    for (const int c : passenger) {
        EXPECT_GT(c, draws / 4 * 0.92);
        EXPECT_LT(c, draws / 4 * 1.08);
    }
}

TEST(TaxiStats, DestinationNeverEqualsPassengerMarginal)
{
    Taxi env;
    XorShift128 rng(22);
    std::array<std::array<int, 4>, 4> joint{};
    for (int i = 0; i < 12000; ++i) {
        int row, col, p, d;
        Taxi::decode(env.reset(rng), row, col, p, d);
        ++joint[static_cast<std::size_t>(p)][static_cast<std::size_t>(d)];
    }
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(joint[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(p)],
                  0);
        for (int d = 0; d < 4; ++d) {
            if (d == p)
                continue;
            // each off-diagonal cell ~ 12000/12 = 1000
            EXPECT_GT(joint[static_cast<std::size_t>(p)]
                           [static_cast<std::size_t>(d)],
                      800);
        }
    }
}

TEST(TaxiStats, MovementNeverChangesPassengerOrDestination)
{
    Taxi env;
    XorShift128 rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        const auto s = env.reset(rng);
        int row, col, p, d;
        Taxi::decode(s, row, col, p, d);
        const auto action = static_cast<swiftrl::rlenv::ActionId>(
            rng.nextBounded(4)); // movement actions only
        const auto r = env.step(action, rng);
        int row2, col2, p2, d2;
        Taxi::decode(r.nextState, row2, col2, p2, d2);
        ASSERT_EQ(p2, p);
        ASSERT_EQ(d2, d);
        ASSERT_LE(std::abs(row2 - row) + std::abs(col2 - col), 1);
    }
}

} // namespace
