/**
 * @file
 * Tests for the CPU reference trainers: learning correctness on the
 * deterministic and slippery environments, FP32/INT32 agreement, and
 * sampling-strategy equivalence at convergence.
 */

#include <gtest/gtest.h>

#include "rlcore/dataset.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"

namespace {

using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::Hyper;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;
using swiftrl::rlcore::trainCpuReference;
using swiftrl::rlenv::FrozenLake;

Hyper
testHyper(int episodes)
{
    Hyper h;
    h.episodes = episodes;
    h.seed = 42;
    return h;
}

TEST(Trainers, QLearningSolvesDeterministicLake)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 20000, 1);
    const auto q = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        testHyper(50), Sampling::Seq, NumericFormat::Fp32);

    FrozenLake eval_env(false);
    const auto result = evaluateGreedy(eval_env, q, 100, 7);
    EXPECT_DOUBLE_EQ(result.meanReward, 1.0);
    EXPECT_DOUBLE_EQ(result.successRate, 1.0);
}

TEST(Trainers, SarsaSolvesDeterministicLake)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 20000, 1);
    const auto q = trainCpuReference(
        Algorithm::Sarsa, data, env.numStates(), env.numActions(),
        testHyper(50), Sampling::Seq, NumericFormat::Fp32);

    FrozenLake eval_env(false);
    const auto result = evaluateGreedy(eval_env, q, 100, 7);
    EXPECT_DOUBLE_EQ(result.meanReward, 1.0);
}

TEST(Trainers, QLearningLearnsSlipperyLake)
{
    // At the paper's dataset size (1M transitions) the learned policy
    // reaches the paper's quality band (~0.70-0.74 mean reward);
    // smaller random-policy datasets under-cover the deep states.
    FrozenLake env(true);
    const auto data = collectRandomDataset(env, 1'000'000, 1);
    const auto q = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        testHyper(20), Sampling::Seq, NumericFormat::Fp32);

    FrozenLake eval_env(true);
    const auto result = evaluateGreedy(eval_env, q, 1000, 7);
    EXPECT_GT(result.meanReward, 0.6);
    EXPECT_LT(result.meanReward, 0.8);
}

TEST(Trainers, Int32MatchesFp32WithinQuantisation)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 5000, 2);
    const auto h = testHyper(30);
    const auto fp = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Seq, NumericFormat::Fp32);
    const auto fx = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Seq, NumericFormat::Int32);

    // Fixed-point truncation error accumulates across updates but
    // must stay small relative to the value scale (|Q| <= 20).
    EXPECT_LT(QTable::maxAbsDifference(fp, fx), 0.05f);
}

TEST(Trainers, Int32PolicyMatchesFp32Policy)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 20000, 3);
    const auto h = testHyper(50);
    const auto fp = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Seq, NumericFormat::Fp32);
    const auto fx = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Seq, NumericFormat::Int32);

    FrozenLake eval_env(false);
    const auto fp_eval = evaluateGreedy(eval_env, fp, 100, 9);
    const auto fx_eval = evaluateGreedy(eval_env, fx, 100, 9);
    EXPECT_DOUBLE_EQ(fp_eval.meanReward, fx_eval.meanReward);
}

TEST(Trainers, DeterministicPerSeed)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 2000, 4);
    const auto h = testHyper(10);
    const auto a = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Ran, NumericFormat::Fp32);
    const auto b = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h, Sampling::Ran, NumericFormat::Fp32);
    EXPECT_EQ(QTable::maxAbsDifference(a, b), 0.0f);
}

TEST(Trainers, RandomSamplingSeedChangesTrajectory)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 2000, 4);
    auto h1 = testHyper(5);
    auto h2 = testHyper(5);
    h2.seed = 43;
    const auto a = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h1, Sampling::Ran, NumericFormat::Fp32);
    const auto b = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        h2, Sampling::Ran, NumericFormat::Fp32);
    EXPECT_GT(QTable::maxAbsDifference(a, b), 0.0f);
}

/**
 * Property sweep: every (algorithm, sampling, format) combination
 * learns a usable deterministic-lake policy — the paper's observation
 * that RAN/STR "perform on par with" SEQ.
 */
class AllVariantsLearn
    : public ::testing::TestWithParam<
          std::tuple<Algorithm, Sampling, NumericFormat>>
{
};

TEST_P(AllVariantsLearn, ReachesTheGoal)
{
    const auto [algo, sampling, format] = GetParam();
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 20000, 1);
    const auto q = trainCpuReference(algo, data, env.numStates(),
                                     env.numActions(), testHyper(50),
                                     sampling, format);
    FrozenLake eval_env(false);
    const auto result = evaluateGreedy(eval_env, q, 50, 7);
    EXPECT_DOUBLE_EQ(result.meanReward, 1.0)
        << "variant failed to learn";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllVariantsLearn,
    ::testing::Combine(
        ::testing::Values(Algorithm::QLearning, Algorithm::Sarsa),
        ::testing::Values(Sampling::Seq, Sampling::Ran, Sampling::Str),
        // The INT8 custom-multiply variant solves the deterministic
        // lake at full quality (its 1/128 step resolves gamma-power
        // value gaps); included in the sweep alongside the paper's
        // two formats.
        ::testing::Values(NumericFormat::Fp32, NumericFormat::Int32,
                          NumericFormat::Int8)));

TEST(Trainers, QValuesStayWithinTheoreticalBound)
{
    FrozenLake env(true);
    const auto data = collectRandomDataset(env, 10000, 5);
    const auto q = trainCpuReference(
        Algorithm::QLearning, data, env.numStates(), env.numActions(),
        testHyper(100), Sampling::Seq, NumericFormat::Fp32);
    // r_max/(1-gamma) = 1/0.05 = 20 bounds any Q value.
    EXPECT_LE(q.maxAbsValue(), 20.0f + 1e-3f);
}

TEST(TrainersDeath, EmptyDatasetPanics)
{
    Dataset empty;
    EXPECT_DEATH((void)trainCpuReference(Algorithm::QLearning, empty,
                                         16, 4, testHyper(1),
                                         Sampling::Seq,
                                         NumericFormat::Fp32),
                 "empty dataset");
}

} // namespace
