/**
 * @file
 * Tests for the CliffWalking environment, including the classic
 * Q-learning-vs-SARSA behavioural split it exists to demonstrate.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rlcore/dataset.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/trainers.hh"
#include "rlenv/cliff_walking.hh"
#include "rlenv/registry.hh"

namespace {

using swiftrl::common::XorShift128;
using swiftrl::rlenv::CliffWalking;
using namespace swiftrl::rlcore;

TEST(CliffWalking, SpacesMatchGym)
{
    CliffWalking env;
    EXPECT_EQ(env.numStates(), 48);
    EXPECT_EQ(env.numActions(), 4);
    EXPECT_EQ(CliffWalking::kStart, 36);
    EXPECT_EQ(CliffWalking::kGoal, 47);
}

TEST(CliffWalking, CliffCellsAreBottomRowInterior)
{
    for (swiftrl::rlenv::StateId s = 0; s < 48; ++s) {
        const bool expected = s >= 37 && s <= 46;
        EXPECT_EQ(CliffWalking::isCliff(s), expected) << "state " << s;
    }
}

TEST(CliffWalking, ResetReturnsStart)
{
    CliffWalking env;
    XorShift128 rng(1);
    EXPECT_EQ(env.reset(rng), CliffWalking::kStart);
}

TEST(CliffWalking, NormalStepCostsOne)
{
    CliffWalking env;
    XorShift128 rng(1);
    env.reset(rng);
    const auto r = env.step(CliffWalking::Up, rng);
    EXPECT_EQ(r.nextState, 24); // one row up from 36
    EXPECT_FLOAT_EQ(r.reward, -1.0f);
    EXPECT_FALSE(r.done());
}

TEST(CliffWalking, BordersClamp)
{
    CliffWalking env;
    XorShift128 rng(1);
    env.reset(rng);
    const auto r = env.step(CliffWalking::Left, rng);
    EXPECT_EQ(r.nextState, CliffWalking::kStart);
    EXPECT_FLOAT_EQ(r.reward, -1.0f);
}

TEST(CliffWalking, FallingTeleportsWithMinusHundred)
{
    CliffWalking env;
    XorShift128 rng(1);
    env.reset(rng);
    const auto r = env.step(CliffWalking::Right, rng); // into cell 37
    EXPECT_FLOAT_EQ(r.reward, -100.0f);
    EXPECT_EQ(r.nextState, CliffWalking::kStart);
    EXPECT_FALSE(r.terminated) << "falling does not end the episode";
}

TEST(CliffWalking, OptimalPathScoresMinusThirteen)
{
    // Up, 11x Right, Down: 13 steps along the cliff edge.
    CliffWalking env;
    XorShift128 rng(1);
    env.reset(rng);
    double total = 0.0;
    total += env.step(CliffWalking::Up, rng).reward;
    for (int i = 0; i < 11; ++i)
        total += env.step(CliffWalking::Right, rng).reward;
    const auto last = env.step(CliffWalking::Down, rng);
    total += last.reward;
    EXPECT_TRUE(last.terminated);
    EXPECT_EQ(last.nextState, CliffWalking::kGoal);
    EXPECT_DOUBLE_EQ(total, -13.0);
}

TEST(CliffWalking, TruncatesAtStepLimit)
{
    CliffWalking env;
    XorShift128 rng(1);
    env.reset(rng);
    swiftrl::rlenv::StepResult r;
    for (int i = 0; i < 200; ++i)
        r = env.step(CliffWalking::Left, rng);
    EXPECT_TRUE(r.truncated);
}

TEST(CliffWalking, RegisteredInRegistry)
{
    auto env = swiftrl::rlenv::makeEnvironment("cliffwalking");
    EXPECT_EQ(env->name(), "cliffwalking");
    EXPECT_EQ(env->numStates(), 48);
}

TEST(CliffWalking, QLearningFindsTheEdgePath)
{
    // The textbook result: off-policy Q-learning learns the optimal
    // (cliff-edge) path, scoring -13 under greedy deployment.
    CliffWalking env;
    const auto data = collectRandomDataset(env, 100'000, 1);
    Hyper h;
    h.episodes = 40;
    const auto q = trainCpuReference(Algorithm::QLearning, data, 48,
                                     4, h, Sampling::Seq,
                                     NumericFormat::Fp32);
    CliffWalking eval_env;
    const auto eval = evaluateGreedy(eval_env, q, 20, 7);
    EXPECT_DOUBLE_EQ(eval.meanReward, -13.0);
    EXPECT_DOUBLE_EQ(eval.meanSteps, 13.0);
}

TEST(CliffWalking, SarsaLearnsASaferOrEqualPath)
{
    // On-policy SARSA with exploration penalises the cliff edge; its
    // greedy path is never better than Q-learning's and typically
    // detours (more steps). Both must still reach the goal.
    CliffWalking env;
    const auto data = collectRandomDataset(env, 100'000, 1);
    Hyper h;
    h.episodes = 40;
    h.epsilon = 0.05f; // exploration risk drives the detour
    const auto q = trainCpuReference(Algorithm::QLearning, data, 48,
                                     4, h, Sampling::Seq,
                                     NumericFormat::Fp32);
    const auto s = trainCpuReference(Algorithm::Sarsa, data, 48, 4, h,
                                     Sampling::Seq,
                                     NumericFormat::Fp32);
    CliffWalking eval_q, eval_s;
    const auto q_eval = evaluateGreedy(eval_q, q, 20, 7);
    const auto s_eval = evaluateGreedy(eval_s, s, 20, 7);
    EXPECT_DOUBLE_EQ(q_eval.meanReward, -13.0);
    EXPECT_GT(s_eval.meanReward, -30.0); // reaches the goal quickly
    EXPECT_LT(s_eval.meanReward, q_eval.meanReward);
    EXPECT_GT(s_eval.meanSteps, q_eval.meanSteps);
}

} // namespace
