/**
 * @file
 * The command-stream engine's determinism guarantee: the host thread
 * pool that executes the *functional* per-core kernel work is purely a
 * simulation-speed knob. For every pool size — including the fully
 * serial size 1 — a training run must produce bit-identical Q-tables,
 * identical integer cycle clocks, and an exactly equal modelled time
 * breakdown. Anything less means a work item leaked state across
 * cores or a reduction picked up a thread-dependent order.
 */

#include <gtest/gtest.h>

#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::PimTrainResult;
using swiftrl::Workload;
using swiftrl::pimsim::Cycles;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;

/** One full run plus the device clocks it left behind. */
struct RunOutcome
{
    PimTrainResult result;
    Cycles maxCycles = 0;
    Cycles totalCycles = 0;
};

constexpr std::size_t kCores = 16;

Dataset
lakeData()
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, 2000, 11);
}

PimTrainConfig
lakeConfig(NumericFormat format)
{
    PimTrainConfig cfg;
    cfg.workload =
        Workload{Algorithm::QLearning, Sampling::Seq, format};
    cfg.hyper.episodes = 20;
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    cfg.tasklets = 4;
    return cfg;
}

RunOutcome
runWithPool(unsigned host_threads, const Dataset &data,
            const PimTrainConfig &cfg)
{
    PimConfig pim;
    pim.numDpus = kCores;
    pim.mramBytesPerDpu = 8u << 20;
    pim.hostThreads = host_threads;
    PimSystem system(pim);

    RunOutcome out;
    out.result = PimTrainer(system, cfg).train(data, 16, 4);
    out.maxCycles = system.maxCycles();
    out.totalCycles = system.totalCycles();
    return out;
}

/**
 * Every observable of @p b must match the pool-size-1 reference @p a
 * exactly — floats and doubles compared for equality on purpose.
 */
void
expectIdentical(const RunOutcome &a, const RunOutcome &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(QTable::maxAbsDifference(a.result.finalQ,
                                       b.result.finalQ),
              0.0f);
    EXPECT_EQ(a.maxCycles, b.maxCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.result.time.kernel, b.result.time.kernel);
    EXPECT_EQ(a.result.time.cpuToPim, b.result.time.cpuToPim);
    EXPECT_EQ(a.result.time.pimToCpu, b.result.time.pimToCpu);
    EXPECT_EQ(a.result.time.interCore, b.result.time.interCore);
    EXPECT_EQ(a.result.roundDeltas, b.result.roundDeltas);

    // The timelines must agree event by event, not just in aggregate.
    const auto &ta = a.result.timeline.events();
    const auto &tb = b.result.timeline.events();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].start, tb[i].start) << "event " << i;
        EXPECT_EQ(ta[i].end, tb[i].end) << "event " << i;
        EXPECT_EQ(ta[i].label, tb[i].label) << "event " << i;
    }
}

class PoolDeterminism
    : public ::testing::TestWithParam<NumericFormat>
{
};

TEST_P(PoolDeterminism, AnyPoolSizeMatchesSerialRun)
{
    const auto data = lakeData();
    const auto cfg = lakeConfig(GetParam());

    const auto serial = runWithPool(1, data, cfg);
    expectIdentical(serial, runWithPool(2, data, cfg), "pool=2");
    expectIdentical(serial, runWithPool(8, data, cfg), "pool=8");
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PoolDeterminism,
    ::testing::Values(NumericFormat::Fp32, NumericFormat::Int32));

TEST(PoolDeterminism, MultiAgentMatchesSerialRun)
{
    swiftrl::rlenv::FrozenLake env(true);
    std::vector<Dataset> agent_data;
    for (std::size_t i = 0; i < kCores; ++i) {
        agent_data.push_back(
            collectRandomDataset(env, 300, 100 + i));
    }
    auto cfg = lakeConfig(NumericFormat::Int32);

    PimConfig pim;
    pim.numDpus = kCores;
    pim.mramBytesPerDpu = 8u << 20;

    pim.hostThreads = 1;
    PimSystem serial_sys(pim);
    const auto serial = PimTrainer(serial_sys, cfg)
                            .trainMultiAgent(agent_data, 16, 4);

    pim.hostThreads = 8;
    PimSystem pooled_sys(pim);
    const auto pooled = PimTrainer(pooled_sys, cfg)
                            .trainMultiAgent(agent_data, 16, 4);

    ASSERT_EQ(serial.perCore.size(), pooled.perCore.size());
    for (std::size_t i = 0; i < serial.perCore.size(); ++i) {
        EXPECT_EQ(QTable::maxAbsDifference(serial.perCore[i],
                                           pooled.perCore[i]),
                  0.0f)
            << "agent " << i;
    }
    EXPECT_EQ(serial_sys.maxCycles(), pooled_sys.maxCycles());
    EXPECT_EQ(serial_sys.totalCycles(), pooled_sys.totalCycles());
    EXPECT_EQ(serial.time.kernel, pooled.time.kernel);
    EXPECT_EQ(serial.time.pimToCpu, pooled.time.pimToCpu);
}

TEST(PoolDeterminism, PoolSizeResolvesAndCaps)
{
    PimConfig pim;
    pim.numDpus = 4;
    pim.mramBytesPerDpu = 1u << 20;

    pim.hostThreads = 8; // more workers than cores would only idle
    PimSystem capped(pim);
    EXPECT_EQ(capped.hostThreadCount(), 4u);

    pim.hostThreads = 3;
    PimSystem exact(pim);
    EXPECT_EQ(exact.hostThreadCount(), 3u);

    pim.hostThreads = 0; // auto: at least one worker, still capped
    PimSystem autod(pim);
    EXPECT_GE(autod.hostThreadCount(), 1u);
    EXPECT_LE(autod.hostThreadCount(), 4u);
}

} // namespace
