/**
 * @file
 * Unit and property tests for the fixed-point arithmetic that backs
 * the INT32 training path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fixed_point.hh"

namespace {

using swiftrl::common::Fixed;
using swiftrl::common::Fixed32;
using swiftrl::common::fixedPointRange;
using swiftrl::common::fixedPointResolution;
using swiftrl::common::kDefaultScale;

TEST(FixedPoint, DefaultIsZero)
{
    Fixed32 f;
    EXPECT_EQ(f.raw(), 0);
    EXPECT_EQ(f.toReal(), 0.0);
}

TEST(FixedPoint, ScaleMatchesPaper)
{
    EXPECT_EQ(kDefaultScale, 10000);
    EXPECT_EQ(Fixed32::scale, 10000);
}

TEST(FixedPoint, QuantisesKnownValues)
{
    EXPECT_EQ(Fixed32::fromReal(0.1).raw(), 1000);
    EXPECT_EQ(Fixed32::fromReal(0.95).raw(), 9500);
    EXPECT_EQ(Fixed32::fromReal(1.0).raw(), 10000);
    EXPECT_EQ(Fixed32::fromReal(-1.0).raw(), -10000);
    EXPECT_EQ(Fixed32::fromReal(20.0).raw(), 200000);
}

TEST(FixedPoint, RoundsToNearest)
{
    // 0.00004999 * 10000 = 0.4999 -> 0; 0.00005 -> 1.
    EXPECT_EQ(Fixed32::fromReal(0.00004999).raw(), 0);
    EXPECT_EQ(Fixed32::fromReal(0.00005).raw(), 1);
    EXPECT_EQ(Fixed32::fromReal(-0.00005).raw(), -1);
}

TEST(FixedPoint, AdditionIsExact)
{
    const auto a = Fixed32::fromReal(0.25);
    const auto b = Fixed32::fromReal(0.5);
    EXPECT_EQ((a + b).raw(), Fixed32::fromReal(0.75).raw());
}

TEST(FixedPoint, SubtractionIsExact)
{
    const auto a = Fixed32::fromReal(1.0);
    const auto b = Fixed32::fromReal(0.3);
    EXPECT_EQ((a - b).raw(), Fixed32::fromReal(0.7).raw());
}

TEST(FixedPoint, MultiplicationRescales)
{
    // 0.1 * 0.95 = 0.095 exactly representable at scale 10000.
    const auto a = Fixed32::fromReal(0.1);
    const auto b = Fixed32::fromReal(0.95);
    EXPECT_EQ((a * b).raw(), 950);
}

TEST(FixedPoint, MultiplicationOfNegatives)
{
    const auto a = Fixed32::fromReal(-0.5);
    const auto b = Fixed32::fromReal(0.5);
    EXPECT_EQ((a * b).raw(), -2500);
    EXPECT_EQ((a * a).raw(), 2500);
}

TEST(FixedPoint, AdditionSaturatesInsteadOfWrapping)
{
    const auto big =
        Fixed32::fromRaw(std::numeric_limits<std::int32_t>::max());
    const auto sum = big + Fixed32::fromRaw(1);
    EXPECT_EQ(sum.raw(), std::numeric_limits<std::int32_t>::max());

    const auto small =
        Fixed32::fromRaw(std::numeric_limits<std::int32_t>::min());
    const auto diff = small - Fixed32::fromRaw(1);
    EXPECT_EQ(diff.raw(), std::numeric_limits<std::int32_t>::min());
}

TEST(FixedPoint, MultiplicationSaturates)
{
    const auto big =
        Fixed32::fromRaw(std::numeric_limits<std::int32_t>::max());
    const auto prod = big * Fixed32::fromReal(2.0);
    EXPECT_EQ(prod.raw(), std::numeric_limits<std::int32_t>::max());
}

TEST(FixedPoint, NegationHandlesIntMin)
{
    const auto m =
        Fixed32::fromRaw(std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ((-m).raw(), std::numeric_limits<std::int32_t>::max());
}

TEST(FixedPoint, ComparisonOperators)
{
    const auto a = Fixed32::fromReal(0.1);
    const auto b = Fixed32::fromReal(0.2);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a == Fixed32::fromReal(0.1));
}

TEST(FixedPoint, RangeAndResolution)
{
    EXPECT_NEAR(fixedPointRange(10000), 214748.3647, 1e-3);
    EXPECT_DOUBLE_EQ(fixedPointResolution(10000), 1e-4);
    // The paper's environments fit comfortably: |Q| <= r_max/(1-gamma)
    // = 20/(0.05) = 400 for taxi, far below the range.
    EXPECT_GT(fixedPointRange(10000), 400.0);
}

TEST(FixedPoint, AlternativeScalesWork)
{
    using Fixed100 = Fixed<100>;
    EXPECT_EQ(Fixed100::fromReal(0.25).raw(), 25);
    EXPECT_EQ((Fixed100::fromReal(0.5) * Fixed100::fromReal(0.5)).raw(),
              25);
}

/** Property: quantisation error is bounded by half a resolution. */
class FixedRoundtrip : public ::testing::TestWithParam<double>
{
};

TEST_P(FixedRoundtrip, ErrorBounded)
{
    const double v = GetParam();
    const auto f = Fixed32::fromReal(v);
    EXPECT_NEAR(f.toReal(), v, 0.5 / 10000.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedRoundtrip,
    ::testing::Values(0.0, 1e-4, -1e-4, 0.1, 0.95, -0.33333, 1.0,
                      -19.99, 20.0, 123.4567, -123.4567, 400.0,
                      -400.0, 1000.123));

/** Property: a + b then - b returns a when no saturation occurs. */
class FixedAddInverse
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(FixedAddInverse, AddThenSubtract)
{
    const auto [x, y] = GetParam();
    const auto a = Fixed32::fromReal(x);
    const auto b = Fixed32::fromReal(y);
    EXPECT_EQ(((a + b) - b).raw(), a.raw());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedAddInverse,
    ::testing::Values(std::pair{0.1, 0.95}, std::pair{-5.0, 3.25},
                      std::pair{100.0, -99.5}, std::pair{0.0, 0.0},
                      std::pair{20.0, 20.0}, std::pair{-0.3, -0.7}));

} // namespace
