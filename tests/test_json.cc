// Tests for common/json: the shared escaper/number renderer every
// exporter uses and the configuration parser behind the C API's
// params_json documents.

#include <gtest/gtest.h>

#include "common/json.hh"

namespace {

using swiftrl::json::JsonValue;
using swiftrl::json::jsonEscape;
using swiftrl::json::jsonNumber;
using swiftrl::json::parseJson;

// --- writing ---------------------------------------------------------

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, RendersControlCharactersAsU4Hex)
{
    // One canonical spelling — \u000a, never the short \n — so
    // tools that grep exports for labels see a fixed form.
    EXPECT_EQ(jsonEscape("a\nb"), "a\\u000ab");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\u0009b");
    EXPECT_EQ(jsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonNumber, ShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(1.1), "1.1");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(-2.5), "-2.5");
    EXPECT_EQ(jsonNumber(1e100), "1e+100");
}

// --- parsing ---------------------------------------------------------

TEST(JsonParse, ScalarsAndNesting)
{
    const auto doc = parseJson(
        R"({"a": 1.5, "b": "two", "c": true, "d": null,
            "e": [1, 2, 3], "f": {"g": -4}})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->numberOr("a", 0.0), 1.5);
    EXPECT_EQ(doc->stringOr("b", ""), "two");
    EXPECT_TRUE(doc->boolOr("c", false));
    ASSERT_NE(doc->find("d"), nullptr);
    EXPECT_TRUE(doc->find("d")->isNull());
    ASSERT_NE(doc->find("e"), nullptr);
    ASSERT_TRUE(doc->find("e")->isArray());
    ASSERT_EQ(doc->find("e")->elements.size(), 3u);
    EXPECT_DOUBLE_EQ(doc->find("e")->elements[1].number, 2.0);
    ASSERT_NE(doc->find("f"), nullptr);
    EXPECT_EQ(doc->find("f")->intOr("g", 0), -4);
}

TEST(JsonParse, StringEscapes)
{
    const auto doc =
        parseJson(R"({"s": "q\"b\\n\nu\u0041"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->stringOr("s", ""), "q\"b\\n\nuA");
}

TEST(JsonParse, EscaperOutputRoundTrips)
{
    const std::string original = "label \"x\"\n\tpath\\to";
    const auto doc =
        parseJson("{\"s\": \"" + jsonEscape(original) + "\"}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->stringOr("s", ""), original);
}

TEST(JsonParse, NumberForms)
{
    const auto doc = parseJson(
        R"({"i": 42, "neg": -7, "frac": 0.25, "exp": 2e3})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->intOr("i", 0), 42);
    EXPECT_EQ(doc->intOr("neg", 0), -7);
    EXPECT_DOUBLE_EQ(doc->numberOr("frac", 0.0), 0.25);
    EXPECT_DOUBLE_EQ(doc->numberOr("exp", 0.0), 2000.0);
}

TEST(JsonParse, DuplicateKeysLastWins)
{
    const auto doc = parseJson(R"({"k": 1, "k": 2})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->intOr("k", 0), 2);
    // Source order is preserved for iteration.
    EXPECT_EQ(doc->members.size(), 2u);
}

TEST(JsonParse, HelpersFallBackOnMissingOrMistyped)
{
    const auto doc = parseJson(R"({"s": "text", "n": 3})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numberOr("absent", 1.5), 1.5);
    EXPECT_DOUBLE_EQ(doc->numberOr("s", 1.5), 1.5);
    EXPECT_EQ(doc->stringOr("n", "fb"), "fb");
    EXPECT_TRUE(doc->boolOr("n", true));
    EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(JsonParse, RejectsMalformedDocumentsWithOffset)
{
    std::string error;
    EXPECT_FALSE(parseJson("not json", &error).has_value());
    EXPECT_NE(error.find("offset"), std::string::npos);

    EXPECT_FALSE(parseJson("{\"a\": }", &error).has_value());
    EXPECT_FALSE(parseJson("{\"a\": 1,}", &error).has_value());
    EXPECT_FALSE(parseJson("[1, 2", &error).has_value());
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", &error)
                     .has_value());
    EXPECT_FALSE(parseJson("\"\\q\"", &error).has_value());
    EXPECT_FALSE(parseJson("{\"s\": \"\n\"}", &error).has_value());
    EXPECT_FALSE(parseJson("", &error).has_value());
}

TEST(JsonParse, TopLevelScalarsParse)
{
    const auto num = parseJson("3.5");
    ASSERT_TRUE(num.has_value());
    EXPECT_TRUE(num->isNumber());
    EXPECT_DOUBLE_EQ(num->number, 3.5);

    const auto str = parseJson("\"alone\"");
    ASSERT_TRUE(str.has_value());
    EXPECT_EQ(str->string, "alone");
}

} // namespace
