/**
 * @file
 * Tests for explicit MDP models and value iteration: the exact
 * frozen-lake optimum, empirical-model convergence to the exact
 * model, and the dataset-coverage story behind Sec. 4.2's quality
 * numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rlcore/dataset.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/mdp.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"

namespace {

using namespace swiftrl::rlcore;
using swiftrl::rlenv::FrozenLake;

TEST(MdpModel, ExactDeterministicLakeStructure)
{
    const auto model = exactFrozenLakeModel(false);
    EXPECT_EQ(model.numStates(), 16);
    EXPECT_EQ(model.numActions(), 4);
    // Non-terminal states: every action has exactly one outcome of
    // probability 1.
    const auto &o = model.outcomes(0, FrozenLake::Right);
    ASSERT_EQ(o.size(), 1u);
    EXPECT_DOUBLE_EQ(o[0].probability, 1.0);
    EXPECT_EQ(o[0].nextState, 1);
    // Terminal states have no outgoing actions.
    EXPECT_TRUE(model.outcomes(5, 0).empty());
    EXPECT_TRUE(model.outcomes(15, 0).empty());
}

TEST(MdpModel, ExactSlipperyMassSumsToOne)
{
    const auto model = exactFrozenLakeModel(true);
    FrozenLake env(true);
    for (StateId s = 0; s < 16; ++s) {
        if (env.isTerminal(s))
            continue;
        for (ActionId a = 0; a < 4; ++a)
            EXPECT_NEAR(model.probabilityMass(s, a), 1.0, 1e-12);
    }
}

TEST(MdpModel, SlipperyBorderClampingAggregates)
{
    // From state 0 taking Left: slips {Down, Left, Up} land on
    // {4, 0, 0} -> outcome 0 carries probability 2/3.
    const auto model = exactFrozenLakeModel(true);
    const auto &o = model.outcomes(0, FrozenLake::Left);
    double p_stay = 0.0;
    for (const auto &out : o) {
        if (out.nextState == 0)
            p_stay += out.probability;
    }
    EXPECT_NEAR(p_stay, 2.0 / 3.0, 1e-12);
}

TEST(ValueIteration, SolvesDeterministicLakeExactly)
{
    const auto model = exactFrozenLakeModel(false);
    const auto vi = valueIteration(model, 0.95);
    EXPECT_LT(vi.residual, 1e-9);
    // Shortest safe path is 6 steps: V(start) = 0.95^5.
    EXPECT_NEAR(vi.q.maxValue(0), std::pow(0.95, 5), 1e-5);

    FrozenLake env(false);
    swiftrl::common::XorShift128 rng(1);
    const auto eval = evaluateGreedy(env, vi.q, 50, 7);
    EXPECT_DOUBLE_EQ(eval.meanReward, 1.0);
}

TEST(ValueIteration, SlipperyOptimumMatchesLiterature)
{
    // The known optimum of slippery 4x4 FrozenLake under a 100-step
    // limit is ~0.73 success — the ceiling both the paper's and our
    // trained policies sit at.
    const auto model = exactFrozenLakeModel(true);
    const auto vi = valueIteration(model, 0.95);
    FrozenLake env(true);
    const auto eval = evaluateGreedy(env, vi.q, 4000, 7);
    EXPECT_GT(eval.meanReward, 0.68);
    EXPECT_LT(eval.meanReward, 0.78);
}

TEST(ValueIteration, ConvergesAndReportsResidual)
{
    const auto model = exactFrozenLakeModel(true);
    const auto vi = valueIteration(model, 0.95, 10000, 1e-12);
    EXPECT_GT(vi.iterations, 10);
    EXPECT_LT(vi.iterations, 2000);
    EXPECT_LT(vi.residual, 1e-12);
}

TEST(ValueIteration, IterationCapRespected)
{
    const auto model = exactFrozenLakeModel(true);
    const auto vi = valueIteration(model, 0.95, 3, 0.0);
    EXPECT_EQ(vi.iterations, 3);
    EXPECT_GT(vi.residual, 0.0);
}

TEST(EmpiricalModel, ConvergesToExactModel)
{
    FrozenLake env(true);
    const auto data = collectRandomDataset(env, 400'000, 1);
    const auto empirical = empiricalModel(data, 16, 4);
    const auto exact = exactFrozenLakeModel(true);

    // Probabilities of well-visited pairs approach the true 1/3s.
    double worst = 0.0;
    for (StateId s = 0; s < 16; ++s) {
        if (env.isTerminal(s))
            continue;
        for (ActionId a = 0; a < 4; ++a) {
            for (const auto &o : exact.outcomes(s, a)) {
                double p_emp = 0.0;
                for (const auto &e : empirical.outcomes(s, a)) {
                    if (e.nextState == o.nextState)
                        p_emp += e.probability;
                }
                worst = std::max(worst,
                                 std::fabs(p_emp - o.probability));
            }
        }
    }
    EXPECT_LT(worst, 0.05);
}

TEST(EmpiricalModel, CoverageGrowsWithDatasetSize)
{
    FrozenLake env_a(true), env_b(true);
    const auto small = collectRandomDataset(env_a, 200, 1);
    const auto large = collectRandomDataset(env_b, 50'000, 1);
    const auto cov_small = empiricalModel(small, 16, 4).coverage();
    const auto cov_large = empiricalModel(large, 16, 4).coverage();
    EXPECT_LT(cov_small, cov_large);
    // 11 non-terminal states x 4 actions = 44/64 reachable pairs.
    EXPECT_NEAR(cov_large, 44.0 / 64.0, 0.03);
}

TEST(EmpiricalModel, ViOnEmpiricalMdpExplainsTrainingQuality)
{
    // Offline Q-learning solves the *empirical* MDP; its policy
    // should match greedy-VI on that same empirical model.
    FrozenLake env(true);
    const auto data = collectRandomDataset(env, 200'000, 1);
    const auto empirical = empiricalModel(data, 16, 4);
    const auto vi = valueIteration(empirical, 0.95);

    Hyper h;
    h.episodes = 40;
    const auto trained = trainCpuReference(
        Algorithm::QLearning, data, 16, 4, h, Sampling::Seq,
        NumericFormat::Fp32);

    int agree = 0, considered = 0;
    for (StateId s = 0; s < 16; ++s) {
        if (env.isTerminal(s))
            continue;
        ++considered;
        agree += vi.q.greedyAction(s) == trained.greedyAction(s) ? 1
                                                                 : 0;
    }
    // Q-learning's stochastic-order sweeps may flip near-ties, but
    // the bulk of the policy must match the empirical optimum.
    EXPECT_GE(agree, considered - 3);
}

TEST(ValueIterationDeath, BadGammaIsRejected)
{
    const auto model = exactFrozenLakeModel(false);
    EXPECT_DEATH((void)valueIteration(model, 1.0), "gamma");
}

} // namespace
