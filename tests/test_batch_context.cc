/**
 * @file
 * Batch-interpreter bit-identity: running eligible kernels through
 * the lockstep batch engine (pimsim::BatchKernelContext +
 * runTrainingKernelBatch + CommandStream::launchBatch) must be
 * observationally identical to the per-core scalar interpreter —
 * same final Q-tables, same per-core cycles, per-class op counts and
 * DMA bytes, same LCG streams, same modelled time breakdown — across
 * every kernel variant, with and without fault injection, sharded
 * and unsharded, and for any host-pool size. The lane-mask unit
 * tests pin the cohort semantics directly: divergent chunk lengths
 * retire per-lane, empty lanes charge nothing, and cores outside the
 * cohort are untouched.
 */

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "pimsim/batch_context.hh"
#include "pimsim/dpu.hh"
#include "pimsim/kernel_context.hh"
#include "rlcore/dataset.hh"
#include "rlcore/seeds.hh"
#include "rlenv/registry.hh"
#include "swiftrl/pim_kernels.hh"
#include "swiftrl/pim_trainer.hh"
#include "swiftrl/workload.hh"

namespace {

using swiftrl::KernelParams;
using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::BatchKernelContext;
using swiftrl::pimsim::Dpu;
using swiftrl::pimsim::DpuCostModel;
using swiftrl::pimsim::FaultKind;
using swiftrl::pimsim::KernelContext;
using swiftrl::pimsim::kNumOpClasses;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;

// --- trainer-level identity matrix ------------------------------------

/** Everything observable about one training run. */
struct Fingerprint
{
    std::vector<float> q;
    std::vector<float> roundDeltas;
    std::vector<std::uint64_t> coreCycles;
    std::vector<std::array<std::uint64_t, kNumOpClasses>> coreOps;
    std::vector<std::uint64_t> coreDma;
    double kernelSec = 0.0;
    double totalSec = 0.0;
    int faults = 0;
    std::size_t coresLost = 0;

    bool
    operator==(const Fingerprint &o) const
    {
        return q == o.q && roundDeltas == o.roundDeltas &&
               coreCycles == o.coreCycles && coreOps == o.coreOps &&
               coreDma == o.coreDma && kernelSec == o.kernelSec &&
               totalSec == o.totalSec && faults == o.faults &&
               coresLost == o.coresLost;
    }
};

struct RunSpec
{
    bool batchExec = false;
    std::size_t shards = 0;
    bool fault = false;
    unsigned hostThreads = 1;
};

Fingerprint
runTrain(const Workload &w, const swiftrl::rlcore::Dataset &data,
         swiftrl::rlcore::StateId ns, swiftrl::rlcore::ActionId na,
         const RunSpec &spec)
{
    PimConfig pim;
    pim.numDpus = 8;
    pim.hostThreads = spec.hostThreads;
    if (spec.fault) {
        // One transient (retried launch) and one permanent dropout
        // (redistribution over the survivors), at fixed sites so the
        // schedule is identical across engines.
        pim.faultPlan.scheduled = {
            {FaultKind::TransientKernel, /*site=*/0, /*dpu=*/1},
            {FaultKind::PermanentDropout, /*site=*/2, /*dpu=*/3}};
    }
    PimSystem system(pim);

    PimTrainConfig cfg;
    cfg.workload = w;
    cfg.hyper.episodes = 6;
    cfg.tau = 3;
    cfg.shards = spec.shards;
    cfg.batchExec = spec.batchExec;
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, ns, na);

    Fingerprint f;
    f.q = result.finalQ.values();
    f.roundDeltas = result.roundDeltas;
    for (std::size_t i = 0; i < system.numDpus(); ++i) {
        const Dpu &dpu = system.dpu(i);
        f.coreCycles.push_back(dpu.cycles());
        f.coreOps.push_back(dpu.opCounts());
        f.coreDma.push_back(dpu.dmaBytes());
    }
    f.kernelSec = result.time.kernel;
    f.totalSec = result.time.total();
    f.faults = result.faultsDetected;
    f.coresLost = result.coresLost;
    return f;
}

class BatchIdentity : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _env = swiftrl::rlenv::makeEnvironment("frozenlake");
        _data = swiftrl::rlcore::collectRandomDataset(*_env, 600, 7);
    }

    void
    expectBatchedIdentical(const Workload &w, RunSpec spec)
    {
        spec.batchExec = false;
        const auto scalar = runTrain(w, _data, _env->numStates(),
                                     _env->numActions(), spec);
        spec.batchExec = true;
        const auto batched = runTrain(w, _data, _env->numStates(),
                                      _env->numActions(), spec);
        EXPECT_TRUE(batched == scalar);
        // Identity must be of real work, not two empty runs.
        EXPECT_GT(scalar.kernelSec, 0.0);
        std::uint64_t total_cycles = 0;
        for (const auto c : scalar.coreCycles)
            total_cycles += c;
        EXPECT_GT(total_cycles, 0u);
    }

    std::unique_ptr<swiftrl::rlenv::Environment> _env;
    swiftrl::rlcore::Dataset _data;
};

TEST_F(BatchIdentity, EveryKernelVariantMatchesScalar)
{
    // All 18 variants: {QL, SARSA} x {SEQ, RAN, STR} x
    // {FP32, INT32, INT8}.
    for (const Workload &w : swiftrl::extendedWorkloads()) {
        SCOPED_TRACE(w.name());
        expectBatchedIdentical(w, {});
    }
}

TEST_F(BatchIdentity, FaultInjectedRunsMatchScalar)
{
    // Transient retry + permanent dropout: the batch engine must
    // consume the same fault sites, retry the same launches, and
    // exclude the dead core from the cohort exactly like the scalar
    // engine's per-core skip.
    for (const Workload &w :
         {Workload{swiftrl::rlcore::Algorithm::QLearning,
                   swiftrl::rlcore::Sampling::Seq,
                   NumericFormat::Fp32},
          Workload{swiftrl::rlcore::Algorithm::Sarsa,
                   swiftrl::rlcore::Sampling::Ran,
                   NumericFormat::Int32}}) {
        for (const unsigned pool : {1u, 8u}) {
            SCOPED_TRACE(w.name() + " pool=" + std::to_string(pool));
            expectBatchedIdentical(
                w, {.fault = true, .hostThreads = pool});
        }
    }
}

TEST_F(BatchIdentity, ShardedRunsMatchScalar)
{
    // Sharded slices give every lane its own halo row count — the
    // per-lane Q geometry must still match the scalar kernel's.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        for (const Workload &w :
             {Workload{swiftrl::rlcore::Algorithm::QLearning,
                       swiftrl::rlcore::Sampling::Seq,
                       NumericFormat::Fp32},
              Workload{swiftrl::rlcore::Algorithm::Sarsa,
                       swiftrl::rlcore::Sampling::Str,
                       NumericFormat::Int32}}) {
            for (const unsigned pool : {1u, 8u}) {
                SCOPED_TRACE(w.name() + " shards=" +
                             std::to_string(shards) +
                             " pool=" + std::to_string(pool));
                expectBatchedIdentical(
                    w, {.shards = shards, .hostThreads = pool});
            }
        }
    }
}

TEST_F(BatchIdentity, WeightedAggregationFallsBackToScalar)
{
    // Visit tracking is batch-ineligible; batchExec = true must
    // silently take the scalar path and still produce the weighted
    // result (not crash, not drop the visit counters).
    Workload w;
    PimConfig pim;
    pim.numDpus = 8;
    pim.hostThreads = 1;

    auto run = [&](bool batch) {
        PimSystem system(pim);
        PimTrainConfig cfg;
        cfg.workload = w;
        cfg.hyper.episodes = 6;
        cfg.tau = 3;
        cfg.weightedAggregation = true;
        cfg.batchExec = batch;
        PimTrainer trainer(system, cfg);
        return trainer
            .train(_data, _env->numStates(), _env->numActions())
            .finalQ;
    };
    EXPECT_EQ(QTable::maxAbsDifference(run(false), run(true)), 0.0f);
}

// --- lane-mask unit tests ---------------------------------------------

constexpr std::size_t kDataOffset = 64 * 1024;

/** Per-core observables of a direct kernel run. */
struct CoreResult
{
    swiftrl::pimsim::Cycles cycles = 0;
    std::array<std::uint64_t, kNumOpClasses> opCounts{};
    std::uint64_t dmaBytes = 0;
    std::vector<std::uint8_t> qBytes;
    std::uint32_t lcg = 0;
};

class LaneMasks : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _env = swiftrl::rlenv::makeEnvironment("frozenlake");
        _data = swiftrl::rlcore::collectRandomDataset(*_env, 256, 11);
        _ns = _env->numStates();
        _na = _env->numActions();
    }

    /** Write each core's chunk and return the common params. */
    KernelParams
    setupCores(const Workload &w, std::vector<Dpu> &dpus,
               std::vector<std::size_t> &counts,
               std::vector<std::uint32_t> &lcg)
    {
        for (std::size_t i = 0; i < dpus.size(); ++i) {
            const std::size_t n = counts[i];
            const auto payload = w.format == NumericFormat::Fp32
                                     ? _data.packFp32(0, n)
                                     : _data.packInt32(0, n, 10'000);
            if (!payload.empty())
                dpus[i].mramWrite(kDataOffset, payload.data(),
                                  payload.size());
        }
        KernelParams p;
        p.workload = w;
        p.hyper.episodes = 3;
        p.numStates = _ns;
        p.numActions = _na;
        p.qOffset = 0;
        p.dataOffset = kDataOffset;
        p.episodes = p.hyper.episodes;
        p.chunkCounts = &counts;
        p.lcgStates = &lcg;
        return p;
    }

    CoreResult
    observe(Dpu &dpu, std::uint32_t lcg_state)
    {
        CoreResult r;
        r.cycles = dpu.cycles();
        r.opCounts = dpu.opCounts();
        r.dmaBytes = dpu.dmaBytes();
        const std::size_t q_bytes = static_cast<std::size_t>(_ns) *
                                    static_cast<std::size_t>(_na) * 4;
        r.qBytes.resize(q_bytes);
        dpu.mramRead(0, r.qBytes.data(), q_bytes);
        r.lcg = lcg_state;
        return r;
    }

    std::unique_ptr<swiftrl::rlenv::Environment> _env;
    swiftrl::rlcore::Dataset _data;
    swiftrl::rlcore::StateId _ns = 0;
    swiftrl::rlcore::ActionId _na = 0;
};

TEST_F(LaneMasks, DivergentChunkLengthsMatchScalarPerLane)
{
    // Four lanes with wildly different chunk lengths, including an
    // empty one: the step loop must mask each lane off at its own
    // count (and charge the empty lane nothing at all), retiring
    // exactly the scalar per-core result on every lane.
    const DpuCostModel model;
    for (const auto sampling : {swiftrl::rlcore::Sampling::Seq,
                                swiftrl::rlcore::Sampling::Ran}) {
        Workload w;
        w.sampling = sampling;
        SCOPED_TRACE(w.name());
        std::vector<std::size_t> counts{0, 1, 37, 128};

        std::vector<Dpu> batch_dpus, scalar_dpus;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            batch_dpus.emplace_back(i, 8u << 20);
            scalar_dpus.emplace_back(i, 8u << 20);
        }
        std::vector<std::uint32_t> batch_lcg, scalar_lcg;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            batch_lcg.push_back(
                swiftrl::rlcore::deriveLcgSeed(1, i));
            scalar_lcg.push_back(batch_lcg.back());
        }

        // Cycles live in the kernel contexts (the launch engine, not
        // flush, is what advances Dpu clocks), so capture them there.
        std::vector<swiftrl::pimsim::Cycles> batch_cycles, scalar_cycles;

        auto bp = setupCores(w, batch_dpus, counts, batch_lcg);
        {
            std::vector<Dpu *> lanes;
            for (auto &d : batch_dpus)
                lanes.push_back(&d);
            BatchKernelContext bctx(lanes, model, 64 * 1024);
            swiftrl::runTrainingKernelBatch(bctx, bp);
            bctx.flushAll();
            for (std::size_t i = 0; i < counts.size(); ++i)
                batch_cycles.push_back(bctx.lane(i).cycles());
        }

        auto sp = setupCores(w, scalar_dpus, counts, scalar_lcg);
        for (auto &dpu : scalar_dpus) {
            KernelContext ctx(dpu, model, 64 * 1024);
            swiftrl::runTrainingKernel(ctx, sp);
            ctx.flush();
            scalar_cycles.push_back(ctx.cycles());
        }

        for (std::size_t i = 0; i < counts.size(); ++i) {
            SCOPED_TRACE("lane " + std::to_string(i));
            EXPECT_EQ(batch_cycles[i], scalar_cycles[i]);
            const auto b = observe(batch_dpus[i], batch_lcg[i]);
            const auto s = observe(scalar_dpus[i], scalar_lcg[i]);
            EXPECT_EQ(b.opCounts, s.opCounts);
            EXPECT_EQ(b.dmaBytes, s.dmaBytes);
            EXPECT_EQ(b.qBytes, s.qBytes);
            EXPECT_EQ(b.lcg, s.lcg);
        }
        // Real work ran on the populated lanes...
        EXPECT_GT(scalar_cycles[1], 0u);
        EXPECT_GT(scalar_cycles[3], 0u);
        // ...while the empty lane really is dead weight: nothing
        // charged.
        EXPECT_EQ(batch_cycles[0], 0u);
        EXPECT_EQ(batch_dpus[0].dmaBytes(), 0u);
    }
}

TEST_F(LaneMasks, CoresOutsideTheCohortAreUntouched)
{
    // A cohort of lanes {0, 2}: core 1 (e.g. a dead core the launch
    // engine excluded) must see no charges, no DMA, no MRAM writes.
    const DpuCostModel model;
    Workload w;
    std::vector<std::size_t> counts{64, 64, 64};
    std::vector<Dpu> dpus;
    for (std::size_t i = 0; i < counts.size(); ++i)
        dpus.emplace_back(i, 8u << 20);
    std::vector<std::uint32_t> lcg{1u, 2u, 3u};

    auto p = setupCores(w, dpus, counts, lcg);
    {
        std::vector<Dpu *> lanes{&dpus[0], &dpus[2]};
        BatchKernelContext bctx(lanes, model, 64 * 1024);
        EXPECT_EQ(bctx.lanes(), 2u);
        EXPECT_EQ(bctx.dpuId(0), 0u);
        EXPECT_EQ(bctx.dpuId(1), 2u);
        swiftrl::runTrainingKernelBatch(bctx, p);
        bctx.flushAll();
        EXPECT_GT(bctx.lane(0).cycles(), 0u);
        EXPECT_GT(bctx.lane(1).cycles(), 0u);
    }

    EXPECT_GT(dpus[0].dmaBytes(), 0u);
    EXPECT_GT(dpus[2].dmaBytes(), 0u);
    EXPECT_EQ(dpus[1].cycles(), 0u);
    EXPECT_EQ(dpus[1].dmaBytes(), 0u);
    EXPECT_EQ(dpus[1].opCounts(),
              (std::array<std::uint64_t, kNumOpClasses>{}));
    EXPECT_EQ(lcg[1], 2u); // LCG stream of the masked core untouched
}

} // namespace
