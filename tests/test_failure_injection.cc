/**
 * @file
 * Failure-injection tests: configurations that must fail loudly —
 * over-committed MRAM banks, over-committed WRAM scratchpads,
 * mis-sized systems — rather than silently mis-train.
 */

#include <gtest/gtest.h>

#include "rlenv/taxi.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using namespace swiftrl::rlcore;

TEST(FailureInjection, DatasetLargerThanMramIsFatal)
{
    // 1 core with a 4-KB bank cannot hold a 1000-record (16-KB)
    // chunk: the simulated equivalent of over-committing a DPU bank.
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 1000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 4 * 1024;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.hyper.episodes = 1;
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 16, 4),
                ::testing::ExitedWithCode(1), "exceeds the");
}

TEST(FailureInjection, TaxiQTablePlusManyTaskletsOverflowsWram)
{
    // Taxi's 12-KB Q-table plus 24 per-tasklet 4-KB staging buffers
    // (108 KB total) exceeds the 64-KB scratchpad: the kernel must
    // refuse, exactly as a real DPU program would fail to link.
    swiftrl::rlenv::Taxi env;
    const auto data = collectRandomDataset(env, 2000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 1;
    cfg.tau = 1;
    cfg.tasklets = 24;
    cfg.blockTransitions = 256; // 4-KB staging blocks
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 500, 6),
                ::testing::ExitedWithCode(1), "scratchpad");
}

TEST(FailureInjection, TaxiFitsWithFewerTasklets)
{
    // The same configuration with 8 tasklets fits: 12 KB + 16 KB.
    swiftrl::rlenv::Taxi env;
    const auto data = collectRandomDataset(env, 2000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 1;
    cfg.tau = 1;
    cfg.tasklets = 8;
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, 500, 6);
    EXPECT_GT(result.time.kernel, 0.0);
}

TEST(FailureInjection, Int8RangeGuardTripsOnLargeRewards)
{
    // A synthetic environment-agnostic check: rewards large enough
    // that |Q| * 128 exceeds the 16-bit wide-operand limit must trip
    // the INT8 kernel's range guard (the paper's "limited value
    // range" caveat, enforced at runtime). Built from a hand-made
    // dataset with a self-loop paying +300 per step:
    // Q -> 300/(1-0.95) = 6000, raw 768,000 >> 32,767.
    Dataset data;
    for (int i = 0; i < 64; ++i) {
        Transition t;
        t.state = 0;
        t.action = 0;
        t.reward = 300.0f;
        t.nextState = 0;
        t.terminal = false;
        data.append(t);
    }

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int8};
    cfg.hyper.episodes = 200;
    cfg.tau = 200;
    PimTrainer trainer(system, cfg);
    EXPECT_DEATH((void)trainer.train(data, 2, 2), "INT8|8 bits");
}

TEST(FailureInjection, ZeroEpisodesIsFatal)
{
    PimConfig pim;
    pim.numDpus = 1;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.hyper.episodes = 0;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "episode count");
}

TEST(FailureInjection, ZeroBlockTransitionsIsFatal)
{
    PimConfig pim;
    pim.numDpus = 1;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.blockTransitions = 0;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "staging block");
}

} // namespace
