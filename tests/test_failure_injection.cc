/**
 * @file
 * Failure-injection tests: configurations that must fail loudly —
 * over-committed MRAM banks, over-committed WRAM scratchpads,
 * mis-sized systems — rather than silently mis-train.
 */

#include <gtest/gtest.h>

#include "rlenv/taxi.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using namespace swiftrl::rlcore;

TEST(FailureInjection, DatasetLargerThanMramIsFatal)
{
    // 1 core with a 4-KB bank cannot hold a 1000-record (16-KB)
    // chunk: the simulated equivalent of over-committing a DPU bank.
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 1000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 4 * 1024;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.hyper.episodes = 1;
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 16, 4),
                ::testing::ExitedWithCode(1), "exceeds the");
}

TEST(FailureInjection, TaxiQTablePlusManyTaskletsOverflowsWram)
{
    // Taxi's 12-KB Q-table plus 24 per-tasklet 4-KB staging buffers
    // (108 KB total) exceeds the 64-KB scratchpad: the kernel must
    // refuse, exactly as a real DPU program would fail to link.
    swiftrl::rlenv::Taxi env;
    const auto data = collectRandomDataset(env, 2000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 1;
    cfg.tau = 1;
    cfg.tasklets = 24;
    cfg.blockTransitions = 256; // 4-KB staging blocks
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 500, 6),
                ::testing::ExitedWithCode(1), "scratchpad");
}

TEST(FailureInjection, TaxiFitsWithFewerTasklets)
{
    // The same configuration with 8 tasklets fits: 12 KB + 16 KB.
    swiftrl::rlenv::Taxi env;
    const auto data = collectRandomDataset(env, 2000, 1);

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 1;
    cfg.tau = 1;
    cfg.tasklets = 8;
    PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, 500, 6);
    EXPECT_GT(result.time.kernel, 0.0);
}

TEST(FailureInjection, Int8RangeGuardTripsOnLargeRewards)
{
    // A synthetic environment-agnostic check: rewards large enough
    // that |Q| * 128 exceeds the 16-bit wide-operand limit must trip
    // the INT8 kernel's range guard (the paper's "limited value
    // range" caveat, enforced at runtime). Built from a hand-made
    // dataset with a self-loop paying +300 per step:
    // Q -> 300/(1-0.95) = 6000, raw 768,000 >> 32,767.
    Dataset data;
    for (int i = 0; i < 64; ++i) {
        Transition t;
        t.state = 0;
        t.action = 0;
        t.reward = 300.0f;
        t.nextState = 0;
        t.terminal = false;
        data.append(t);
    }

    PimConfig pim;
    pim.numDpus = 1;
    pim.mramBytesPerDpu = 8u << 20;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int8};
    cfg.hyper.episodes = 200;
    cfg.tau = 200;
    PimTrainer trainer(system, cfg);
    EXPECT_DEATH((void)trainer.train(data, 2, 2), "INT8|8 bits");
}

TEST(FailureInjection, ZeroEpisodesIsFatal)
{
    PimConfig pim;
    pim.numDpus = 1;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.hyper.episodes = 0;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "episode count");
}

TEST(FailureInjection, ZeroBlockTransitionsIsFatal)
{
    PimConfig pim;
    pim.numDpus = 1;
    PimSystem system(pim);
    PimTrainConfig cfg;
    cfg.blockTransitions = 0;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "staging block");
}

// ------------------------------------------------------------------
// Recovery-path tests: injected faults that the trainers must absorb
// — transient launches retried, corrupted gathers re-read, dropped
// cores redistributed — with the recovery charged to its own time
// track and the final Q-table unchanged where the contract says so.

using swiftrl::PimTrainResult;
using swiftrl::StreamingConfig;
using swiftrl::StreamingTrainer;
using swiftrl::pimsim::FaultKind;
using swiftrl::pimsim::ScheduledFault;

PimTrainConfig
recoveryConfig()
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper.episodes = 20;
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    cfg.tasklets = 2;
    return cfg;
}

PimTrainResult
runOffline(const Dataset &data, const PimConfig &pim,
           const PimTrainConfig &cfg)
{
    PimSystem system(pim);
    return PimTrainer(system, cfg).train(data, 16, 4);
}

Dataset
recoveryData()
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, 2000, 11);
}

TEST(FaultRecovery, TransientLaunchRetriedIsBitIdentical)
{
    const auto data = recoveryData();
    const auto cfg = recoveryConfig();
    PimConfig pim;
    pim.numDpus = 8;

    const auto clean = runOffline(data, pim, cfg);
    ASSERT_EQ(clean.faultsDetected, 0);
    ASSERT_EQ(clean.time.recovery, 0.0);

    // Site 0 is the first kernel launch; the faulted attempt commits
    // nothing, so the retried launch must reproduce the clean run's
    // Q-table bit for bit, with the failed attempt's cost on the
    // recovery track only.
    pim.faultPlan.scheduled = {
        {FaultKind::TransientKernel, /*site=*/0, /*dpu=*/0}};
    const auto faulted = runOffline(data, pim, cfg);

    EXPECT_EQ(QTable::maxAbsDifference(clean.finalQ, faulted.finalQ),
              0.0f);
    EXPECT_GE(faulted.faultsDetected, 1);
    EXPECT_EQ(faulted.coresLost, 0u);
    EXPECT_GT(faulted.time.recovery, 0.0);
}

TEST(FaultRecovery, CorruptGatherRetriedIsBitIdentical)
{
    const auto data = recoveryData();
    const auto cfg = recoveryConfig();
    PimConfig pim;
    pim.numDpus = 8;

    const auto clean = runOffline(data, pim, cfg);

    // Site 1 is the first Q-table gather. The bank contents are
    // intact — the corruption is on the wire — so the re-gather
    // returns the same bytes and the run converges identically.
    pim.faultPlan.scheduled = {
        {FaultKind::CorruptGather, /*site=*/1, /*dpu=*/5}};
    const auto faulted = runOffline(data, pim, cfg);

    EXPECT_EQ(QTable::maxAbsDifference(clean.finalQ, faulted.finalQ),
              0.0f);
    EXPECT_GE(faulted.faultsDetected, 1);
    EXPECT_GT(faulted.time.recovery, 0.0);
}

TEST(FaultRecovery, DropoutRedistributesAndStaysPoolDeterministic)
{
    const auto data = recoveryData();
    const auto cfg = recoveryConfig();

    PimConfig pim;
    pim.numDpus = 8;
    pim.faultPlan.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/3}};

    pim.hostThreads = 1;
    const auto serial = runOffline(data, pim, cfg);
    EXPECT_EQ(serial.coresLost, 1u);
    EXPECT_GE(serial.faultsDetected, 1);
    EXPECT_GT(serial.time.recovery, 0.0);

    // The recovered run must itself honour the determinism contract:
    // identical Q for every host-pool size.
    for (const unsigned pool : {2u, 8u}) {
        SCOPED_TRACE("pool=" + std::to_string(pool));
        pim.hostThreads = pool;
        const auto other = runOffline(data, pim, cfg);
        EXPECT_EQ(QTable::maxAbsDifference(serial.finalQ,
                                           other.finalQ),
                  0.0f);
        EXPECT_EQ(other.coresLost, 1u);
        EXPECT_EQ(other.faultsDetected, serial.faultsDetected);
        EXPECT_EQ(other.time.recovery, serial.time.recovery);
    }
}

TEST(FaultRecoveryDeath, RetryLimitExhaustedIsFatal)
{
    const auto data = recoveryData();
    auto cfg = recoveryConfig();
    cfg.retry.limit = 3;

    // Each retried launch occupies a fresh fault site, so faulting
    // sites 0-3 on the same core defeats all four attempts.
    PimConfig pim;
    pim.numDpus = 8;
    for (std::size_t site = 0; site < 4; ++site)
        pim.faultPlan.scheduled.push_back(
            {FaultKind::TransientKernel, site, /*dpu=*/0});

    EXPECT_EXIT((void)runOffline(data, pim, cfg),
                ::testing::ExitedWithCode(1), "retry limit");
}

TEST(FaultRecoveryDeath, AllCoresLostIsFatal)
{
    const auto data = recoveryData();
    const auto cfg = recoveryConfig();

    PimConfig pim;
    pim.numDpus = 2;
    pim.faultPlan.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/0},
        {FaultKind::PermanentDropout, /*site=*/0, /*dpu=*/1}};

    EXPECT_EXIT((void)runOffline(data, pim, cfg),
                ::testing::ExitedWithCode(1), "permanent dropouts");
}

TEST(FaultRecovery, StreamingFaultsDeterministicAcrossActorsAndPools)
{
    StreamingConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    cfg.hyper.episodes = 10;
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    cfg.generations = 4;
    cfg.transitionsPerGeneration = 2048;
    cfg.refreshPeriod = 2;
    cfg.collectSeed = 99;

    PimConfig pim;
    pim.numDpus = 8;
    pim.faultPlan.seed = 7;
    pim.faultPlan.transientRate = 0.02;
    pim.faultPlan.corruptRate = 0.02;
    pim.faultPlan.scheduled = {
        {FaultKind::PermanentDropout, /*site=*/2, /*dpu=*/3}};

    const auto make_env = [] {
        return swiftrl::rlenv::makeEnvironment("frozenlake");
    };

    const auto run = [&](unsigned actors, unsigned pool) {
        PimConfig machine = pim;
        machine.hostThreads = pool;
        PimSystem system(machine);
        StreamingConfig sc = cfg;
        sc.actors = actors;
        return StreamingTrainer(system, sc).train(make_env, 16, 4);
    };

    const auto base = run(1, 1);
    EXPECT_EQ(base.coresLost, 1u);
    EXPECT_GE(base.faultsDetected, 1);
    EXPECT_GT(base.time.recovery, 0.0);

    // Fault draws are pure in (seed, kind, site, core), and site
    // numbering is positional — so actor count and host-pool size
    // change neither the fault sequence nor the recovered Q-table.
    const struct
    {
        unsigned actors, pool;
    } variants[] = {{4, 1}, {1, 8}, {4, 8}};
    for (const auto &v : variants) {
        SCOPED_TRACE("actors=" + std::to_string(v.actors) +
                     " pool=" + std::to_string(v.pool));
        const auto other = run(v.actors, v.pool);
        EXPECT_EQ(QTable::maxAbsDifference(base.finalQ, other.finalQ),
                  0.0f);
        EXPECT_EQ(other.faultsDetected, base.faultsDetected);
        EXPECT_EQ(other.coresLost, base.coresLost);
        EXPECT_EQ(other.time.recovery, base.time.recovery);
    }
}

} // namespace
