/**
 * @file
 * Tests for the roofline analysis (paper Fig. 2).
 */

#include <gtest/gtest.h>

#include "roofline/roofline.hh"

namespace {

using swiftrl::baselines::i7_9700k;
using swiftrl::rlcore::Algorithm;
using swiftrl::roofline::fig2Points;
using swiftrl::roofline::RooflineModel;

TEST(Roofline, RidgePointMath)
{
    RooflineModel model{i7_9700k()};
    const double ridge = model.ridgeIntensity();
    // peak / bandwidth: 460e9 / 41.6e9 ~ 11 flops/byte.
    EXPECT_NEAR(ridge, 460.0e9 / 41.6e9, 1e-9);
}

TEST(Roofline, AttainableFollowsTheTwoRoofs)
{
    RooflineModel model{i7_9700k()};
    const double ridge = model.ridgeIntensity();
    // Far left: bandwidth roof (linear in OI).
    EXPECT_NEAR(model.attainable(0.5), 0.5 * 41.6, 1e-9);
    // Far right: flat compute roof.
    EXPECT_DOUBLE_EQ(model.attainable(ridge * 100.0), 460.0);
    // Continuity at the ridge.
    EXPECT_NEAR(model.attainable(ridge), 460.0, 1e-6);
}

TEST(Roofline, RlWorkloadsAreMemoryBound)
{
    // The paper's central Fig. 2 observation.
    for (const auto &point : fig2Points(i7_9700k(), 4)) {
        EXPECT_TRUE(point.memoryBound) << point.label;
        EXPECT_LT(point.operationalIntensity, 1.0) << point.label;
    }
}

TEST(Roofline, FourPointsWithPaperLabels)
{
    const auto points = fig2Points(i7_9700k(), 4);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label, "Q-1M");
    EXPECT_EQ(points[1].label, "Q-20M");
    EXPECT_EQ(points[2].label, "S-1M");
    EXPECT_EQ(points[3].label, "S-20M");
}

TEST(Roofline, LargerDatasetsAchieveLess)
{
    const auto points = fig2Points(i7_9700k(), 4);
    EXPECT_GT(points[0].achievedGflops, points[1].achievedGflops);
    EXPECT_GT(points[2].achievedGflops, points[3].achievedGflops);
}

TEST(Roofline, AchievedNeverExceedsAttainable)
{
    for (const auto &point : fig2Points(i7_9700k(), 6)) {
        EXPECT_LE(point.achievedGflops,
                  point.attainableGflops + 1e-12);
        EXPECT_GT(point.achievedGflops, 0.0);
    }
}

TEST(Roofline, SarsaSitsSlightlyRightOfQ)
{
    const auto points = fig2Points(i7_9700k(), 4);
    // SARSA does one more flop-equivalent per 16 bytes.
    EXPECT_GT(points[2].operationalIntensity,
              points[0].operationalIntensity);
}

} // namespace
