/**
 * @file
 * Tests for the named PIM hardware profiles and the energy helpers.
 */

#include <gtest/gtest.h>

#include "baselines/platform_model.hh"
#include "pimsim/profiles.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using namespace swiftrl::pimsim;

TEST(Profiles, BothProfilesValidate)
{
    for (const auto &profile : allProfiles()) {
        validate(profile.costModel);
        EXPECT_FALSE(profile.name.empty());
    }
}

TEST(Profiles, UpmemProfileIsTheDefault)
{
    const auto p = upmemProfile();
    const DpuCostModel def;
    for (std::size_t i = 0; i < kNumOpClasses; ++i)
        EXPECT_EQ(p.costModel.instructions[i], def.instructions[i]);
    EXPECT_EQ(p.costModel.pipelineInterval, def.pipelineInterval);
}

TEST(Profiles, FpCapableMakesFloatCheap)
{
    const auto upmem = upmemProfile().costModel;
    const auto fp = fpCapableProfile().costModel;
    EXPECT_LT(fp.cyclesFor(OpClass::Fp32Mul),
              upmem.cyclesFor(OpClass::Fp32Mul) / 10);
    EXPECT_LT(fp.cyclesFor(OpClass::Int32Mul),
              upmem.cyclesFor(OpClass::Int32Mul));
    // Memory system is identical: differences isolate arithmetic.
    EXPECT_EQ(fp.mramDmaFixedCycles, upmem.mramDmaFixedCycles);
    EXPECT_EQ(fp.pipelineInterval, upmem.pipelineInterval);
}

TEST(Profiles, Int32OptimisationIsProfileSpecific)
{
    // The whole point of the profile pair: INT32 wins on UPMEM-like,
    // not on FP-capable hardware.
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const auto data =
        swiftrl::rlcore::collectRandomDataset(*env, 2000, 1);

    auto kernel_time = [&](const PimProfile &profile,
                           swiftrl::rlcore::NumericFormat format) {
        PimConfig cfg;
        cfg.numDpus = 4;
        cfg.mramBytesPerDpu = 8u << 20;
        cfg.costModel = profile.costModel;
        PimSystem system(cfg);
        swiftrl::PimTrainConfig tcfg;
        tcfg.workload =
            swiftrl::Workload{swiftrl::rlcore::Algorithm::QLearning,
                              swiftrl::rlcore::Sampling::Seq, format};
        tcfg.hyper.episodes = 3;
        tcfg.tau = 3;
        swiftrl::PimTrainer trainer(system, tcfg);
        return trainer.train(data, 16, 4).time.kernel;
    };

    using swiftrl::rlcore::NumericFormat;
    const double upmem_ratio =
        kernel_time(upmemProfile(), NumericFormat::Fp32) /
        kernel_time(upmemProfile(), NumericFormat::Int32);
    const double fp_ratio =
        kernel_time(fpCapableProfile(), NumericFormat::Fp32) /
        kernel_time(fpCapableProfile(), NumericFormat::Int32);
    EXPECT_GT(upmem_ratio, 5.0);
    EXPECT_LT(fp_ratio, 1.5);
}

TEST(Energy, WattsScaleWithCoresInUse)
{
    const PimConfig cfg;
    EXPECT_NEAR(cfg.wattsInUse(2524), 280.0, 1e-9);
    EXPECT_NEAR(cfg.wattsInUse(1262), 140.0, 1e-9);
    EXPECT_GT(cfg.wattsInUse(125), 0.0);
}

TEST(Energy, JoulesAreTimesTdp)
{
    EXPECT_DOUBLE_EQ(swiftrl::baselines::energyJoules(2.0, 85.0),
                     170.0);
    EXPECT_DOUBLE_EQ(swiftrl::baselines::energyJoules(0.0, 350.0),
                     0.0);
}

TEST(Energy, PlatformTdpsMatchTable1)
{
    EXPECT_DOUBLE_EQ(swiftrl::baselines::xeonSilver4110().tdpWatts,
                     85.0);
    EXPECT_DOUBLE_EQ(swiftrl::baselines::rtx3090().tdpWatts, 350.0);
}

TEST(Convergence, RoundDeltasShrink)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const auto data =
        swiftrl::rlcore::collectRandomDataset(*env, 20000, 1);
    PimConfig pim;
    pim.numDpus = 8;
    PimSystem system(pim);
    swiftrl::PimTrainConfig cfg;
    cfg.workload =
        swiftrl::Workload{swiftrl::rlcore::Algorithm::QLearning,
                          swiftrl::rlcore::Sampling::Seq,
                          swiftrl::rlcore::NumericFormat::Int32};
    cfg.hyper.episodes = 60;
    cfg.tau = 10;
    swiftrl::PimTrainer trainer(system, cfg);
    const auto result = trainer.train(data, 16, 4);

    ASSERT_EQ(result.roundDeltas.size(), 6u);
    EXPECT_GT(result.roundDeltas.front(), 0.0f);
    // Q-learning converges: the last round moves far less than the
    // first.
    EXPECT_LT(result.roundDeltas.back(),
              result.roundDeltas.front() * 0.5f);
}

} // namespace
