/**
 * @file
 * Tests for the ASCII table renderer used by the bench harnesses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace {

using swiftrl::common::TextTable;

TEST(TextTable, RendersTitleHeaderAndRows)
{
    TextTable t("Example");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "0.1"});
    t.addRow({"gamma", "0.95"});

    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== Example =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t("T");
    t.setHeader({"a", "b"});
    t.addRow({"short", "x"});
    t.addRow({"much-longer-cell", "y"});
    std::ostringstream oss;
    t.print(oss);
    // Both data lines must place the separator at the same column.
    std::istringstream in(oss.str());
    std::string line;
    std::vector<std::size_t> bars;
    while (std::getline(in, line)) {
        const auto pos = line.find('|');
        if (pos != std::string::npos)
            bars.push_back(pos);
    }
    ASSERT_GE(bars.size(), 3u);
    for (const auto pos : bars)
        EXPECT_EQ(pos, bars.front());
}

TEST(TextTable, RuleProducesSeparator)
{
    TextTable t("T");
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    std::ostringstream oss;
    t.print(oss);
    // Header rule + explicit rule.
    std::size_t dashes = 0;
    std::istringstream in(oss.str());
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.find_first_not_of('-') ==
                                 std::string::npos)
            ++dashes;
    }
    EXPECT_EQ(dashes, 2u);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::num(static_cast<long long>(1234)), "1234");
    EXPECT_EQ(TextTable::speedup(8.157, 2), "8.16x");
    EXPECT_EQ(TextTable::percent(0.2961, 1), "29.6%");
}

TEST(TextTable, RowCount)
{
    TextTable t("T");
    t.setHeader({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 3u); // rules count as stored rows
}

TEST(TextTableDeath, MismatchedRowPanics)
{
    TextTable t("T");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
