/**
 * @file
 * HostPool dispatch invariants: chunked claiming must visit every
 * index exactly once for any (n, threads) shape, worker ids must
 * stay within the pool, and the serial path must run inline on the
 * caller.
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pimsim/host_pool.hh"

namespace {

using swiftrl::pimsim::HostPool;

TEST(HostPool, VisitsEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
        HostPool pool(threads);
        // Cover the chunking edges: n smaller than the pool, n not
        // divisible by the grain, n equal to 1, and a large launch.
        for (const std::size_t n :
             {std::size_t{0}, std::size_t{1}, std::size_t{2},
              std::size_t{7}, std::size_t{64}, std::size_t{2000},
              std::size_t{2001}}) {
            std::vector<std::atomic<std::uint32_t>> hits(n);
            pool.parallelFor(n, [&](std::size_t i, unsigned) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1u)
                    << "index " << i << " with n=" << n
                    << " threads=" << threads;
            }
        }
    }
}

TEST(HostPool, WorkerIdsStayWithinThePool)
{
    const unsigned threads = 4;
    HostPool pool(threads);
    std::atomic<bool> out_of_range{false};
    pool.parallelFor(512, [&](std::size_t, unsigned worker) {
        if (worker >= threads)
            out_of_range = true;
    });
    EXPECT_FALSE(out_of_range.load());
}

TEST(HostPool, SerialPoolRunsInlineOnTheCaller)
{
    HostPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto caller = std::this_thread::get_id();
    std::size_t sum = 0; // no atomics needed: everything is inline
    pool.parallelFor(100, [&](std::size_t i, unsigned worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(worker, 0u);
        sum += i;
    });
    EXPECT_EQ(sum, 4950u);
}

TEST(HostPool, OneElementRangeRunsInlineEvenWithWorkers)
{
    // n == 1 must never pay dispatch: a single index runs inline on
    // the caller even when the pool has idle workers.
    HostPool pool(4);
    const auto caller = std::this_thread::get_id();
    int runs = 0;
    pool.parallelFor(1, [&](std::size_t i, unsigned worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(worker, 0u);
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(HostPool, RangeShorterThanThePoolVisitsEveryIndexOnce)
{
    // Ranges shorter than the pool are the shape where the old
    // truncating grain computation degenerated; the clamped chunking
    // must still cover every index exactly once.
    HostPool pool(8);
    for (const std::size_t n :
         {std::size_t{2}, std::size_t{3}, std::size_t{5},
          std::size_t{7}}) {
        std::vector<std::atomic<std::uint32_t>> hits(n);
        pool.parallelFor(n, [&](std::size_t i, unsigned) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "index " << i << " with n=" << n;
    }
}

TEST(HostPool, CallableIsBorrowedNotCopied)
{
    // A mutable callable's state must survive the dispatch — the
    // pool erases to a pointer, it never copies the callable.
    HostPool pool(2);
    std::atomic<std::uint64_t> total{0};
    auto fn = [&total](std::size_t i, unsigned) {
        total.fetch_add(i, std::memory_order_relaxed);
    };
    pool.parallelFor(1000, fn);
    EXPECT_EQ(total.load(), 499500u);
}

TEST(HostPool, BackToBackLaunchesDoNotLeakIndices)
{
    HostPool pool(3);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 17 + static_cast<std::size_t>(round);
        std::vector<std::atomic<std::uint8_t>> hits(n);
        pool.parallelFor(n, [&](std::size_t i, unsigned) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1u) << "round " << round;
    }
}

} // namespace
