/**
 * @file
 * The sharded Q-table training path end to end: a 1-shard run is
 * bit-identical to the unsharded trainer (the contract that makes
 * sharding a pure layout change), multi-shard runs are deterministic,
 * checkpoint/restore of a sharded run continues bit-identically with
 * the shard count carried in the identity block, and the procedural
 * environments drive multi-shard runs at state counts the fixed maps
 * cannot reach.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "rlcore/collection.hh"
#include "rlenv/registry.hh"
#include "swiftrl/session.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::PimTrainResult;
using swiftrl::SessionCheckpoint;
using swiftrl::SessionConfig;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using namespace swiftrl::rlcore;

void
expectBitEq(const QTable &a, const QTable &b)
{
    ASSERT_EQ(a.entryCount(), b.entryCount());
    EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                          a.entryCount() * sizeof(float)),
              0)
        << "Q-tables differ (max |diff| "
        << QTable::maxAbsDifference(a, b) << ")";
}

PimTrainConfig
baseConfig(NumericFormat format)
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq, format};
    cfg.hyper.episodes = 60;
    cfg.tau = 20; // 3 rounds
    return cfg;
}

PimTrainResult
runLake(std::size_t cores, std::size_t shards, NumericFormat format,
        int episodes = 60)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const Dataset data = collectRandomDataset(*env, 2048, 17);
    PimConfig pim;
    pim.numDpus = cores;
    PimSystem system(pim);
    PimTrainConfig cfg = baseConfig(format);
    cfg.hyper.episodes = episodes;
    cfg.shards = shards;
    return PimTrainer(system, cfg)
        .train(data, env->numStates(), env->numActions());
}

// --- 1-shard equivalence ----------------------------------------------

TEST(ShardedSession, OneShardIsBitIdenticalToUnshardedFp32)
{
    const auto plain = runLake(4, 0, NumericFormat::Fp32);
    const auto sharded = runLake(4, 1, NumericFormat::Fp32);
    expectBitEq(plain.finalQ, sharded.finalQ);
    EXPECT_EQ(plain.commRounds, sharded.commRounds);
    ASSERT_EQ(plain.roundDeltas.size(), sharded.roundDeltas.size());
    for (std::size_t i = 0; i < plain.roundDeltas.size(); ++i)
        EXPECT_EQ(plain.roundDeltas[i], sharded.roundDeltas[i]);
}

TEST(ShardedSession, OneShardIsBitIdenticalToUnshardedInt32)
{
    const auto plain = runLake(4, 0, NumericFormat::Int32);
    const auto sharded = runLake(4, 1, NumericFormat::Int32);
    expectBitEq(plain.finalQ, sharded.finalQ);
}

// --- multi-shard runs -------------------------------------------------

TEST(ShardedSession, MultiShardRunsAreDeterministic)
{
    const auto a = runLake(8, 2, NumericFormat::Fp32);
    const auto b = runLake(8, 2, NumericFormat::Fp32);
    expectBitEq(a.finalQ, b.finalQ);
    EXPECT_EQ(a.commRounds, b.commRounds);
}

TEST(ShardedSession, MultiShardLearnsOnTheLake)
{
    const auto r = runLake(8, 4, NumericFormat::Fp32, 200);
    EXPECT_EQ(r.commRounds, 10);
    // The goal-adjacent state must have picked up value.
    float max_q = 0.0f;
    for (const float v : r.finalQ.values())
        max_q = std::max(max_q, v);
    EXPECT_GT(max_q, 0.0f);
}

TEST(ShardedSession, ProceduralLakeTrainsSharded)
{
    auto env = swiftrl::rlenv::makeEnvironment("lake:16");
    const Dataset data = collectRandomDataset(*env, 8192, 23);
    PimConfig pim;
    pim.numDpus = 8;
    PimSystem system(pim);
    PimTrainConfig cfg = baseConfig(NumericFormat::Fp32);
    cfg.shards = 4;
    const auto r = PimTrainer(system, cfg)
                       .train(data, env->numStates(),
                              env->numActions());
    EXPECT_EQ(r.finalQ.entryCount(),
              std::size_t(env->numStates()) *
                  std::size_t(env->numActions()));
    for (const float v : r.finalQ.values())
        ASSERT_TRUE(std::isfinite(v));
}

// --- checkpoint / restore ---------------------------------------------

TEST(ShardedSession, PauseResumeContinuesBitIdentically)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const Dataset data = collectRandomDataset(*env, 2048, 17);
    PimConfig pim;
    pim.numDpus = 8;
    PimTrainConfig cfg = baseConfig(NumericFormat::Fp32);
    cfg.shards = 2;

    PimTrainResult full;
    {
        PimSystem system(pim);
        full = PimTrainer(system, cfg).train(data, 16, 4);
    }

    const std::string path =
        ::testing::TempDir() + "swiftrl_sharded.ck";
    {
        PimSystem system(pim);
        const auto ck = PimTrainer(system, cfg)
                            .trainUntilRound(data, 16, 4, 2);
        EXPECT_EQ(ck.shards, 2u);
        swiftrl::saveCheckpoint(ck, path);
    }
    const auto loaded = swiftrl::loadCheckpoint(path);
    EXPECT_EQ(loaded.shards, 2u);

    PimSystem system(pim);
    const auto resumed =
        PimTrainer(system, cfg).resume(data, 16, 4, loaded);
    expectBitEq(full.finalQ, resumed.finalQ);
    EXPECT_EQ(full.commRounds, resumed.commRounds);
    EXPECT_EQ(full.time.kernel, resumed.time.kernel);
    EXPECT_EQ(full.time.interCore, resumed.time.interCore);
}

TEST(ShardedSession, CheckpointShardCountIsIdentity)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const Dataset data = collectRandomDataset(*env, 2048, 17);
    PimConfig pim;
    pim.numDpus = 8;
    PimTrainConfig cfg = baseConfig(NumericFormat::Fp32);
    cfg.shards = 2;
    PimSystem system(pim);
    const auto ck =
        PimTrainer(system, cfg).trainUntilRound(data, 16, 4, 1);

    SessionConfig session;
    session.workload = cfg.workload;
    session.hyper = cfg.hyper;
    session.tau = cfg.tau;
    session.shards = 2;
    EXPECT_EQ(swiftrl::checkpointMismatch(session, 8, ck), "");
    session.shards = 4;
    EXPECT_NE(swiftrl::checkpointMismatch(session, 8, ck), "");
    session.shards = 0;
    EXPECT_NE(swiftrl::checkpointMismatch(session, 8, ck), "");
}

// --- config guards ----------------------------------------------------

TEST(ShardedSessionDeath, RefusesWeightedAggregation)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const Dataset data = collectRandomDataset(*env, 512, 17);
    PimConfig pim;
    pim.numDpus = 4;
    PimSystem system(pim);
    PimTrainConfig cfg = baseConfig(NumericFormat::Fp32);
    cfg.shards = 2;
    cfg.weightedAggregation = true;
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 16, 4),
                ::testing::ExitedWithCode(1), "visit-weighted");
}

TEST(ShardedSessionDeath, RefusesMoreShardsThanCores)
{
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const Dataset data = collectRandomDataset(*env, 512, 17);
    PimConfig pim;
    pim.numDpus = 2;
    PimSystem system(pim);
    PimTrainConfig cfg = baseConfig(NumericFormat::Fp32);
    cfg.shards = 4;
    PimTrainer trainer(system, cfg);
    EXPECT_EXIT((void)trainer.train(data, 16, 4),
                ::testing::ExitedWithCode(1), "cannot shard");
}

} // namespace
