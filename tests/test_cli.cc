/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/cli.hh"

namespace {

using swiftrl::common::CliFlags;

CliFlags
parse(std::vector<const char *> argv, std::vector<std::string> known)
{
    argv.insert(argv.begin(), "prog");
    return CliFlags(static_cast<int>(argv.size()),
                    const_cast<char **>(argv.data()), std::move(known));
}

TEST(Cli, EmptyCommandLine)
{
    const auto flags = parse({}, {"episodes"});
    EXPECT_FALSE(flags.has("episodes"));
    EXPECT_EQ(flags.getInt("episodes", 7), 7);
}

TEST(Cli, EqualsSyntax)
{
    const auto flags = parse({"--episodes=42"}, {"episodes"});
    EXPECT_TRUE(flags.has("episodes"));
    EXPECT_EQ(flags.getInt("episodes", 0), 42);
}

TEST(Cli, SpaceSyntax)
{
    const auto flags = parse({"--env", "taxi"}, {"env"});
    EXPECT_EQ(flags.getString("env", ""), "taxi");
}

TEST(Cli, BareFlagIsTrue)
{
    const auto flags = parse({"--full"}, {"full"});
    EXPECT_TRUE(flags.getBool("full", false));
}

TEST(Cli, BooleanSpellings)
{
    EXPECT_TRUE(parse({"--x=yes"}, {"x"}).getBool("x", false));
    EXPECT_TRUE(parse({"--x=1"}, {"x"}).getBool("x", false));
    EXPECT_FALSE(parse({"--x=no"}, {"x"}).getBool("x", true));
    EXPECT_FALSE(parse({"--x=0"}, {"x"}).getBool("x", true));
}

TEST(Cli, DoubleParsing)
{
    const auto flags = parse({"--alpha=0.25"}, {"alpha"});
    EXPECT_DOUBLE_EQ(flags.getDouble("alpha", 0.0), 0.25);
}

TEST(Cli, NegativeNumbers)
{
    const auto flags = parse({"--reward=-8.6"}, {"reward"});
    EXPECT_DOUBLE_EQ(flags.getDouble("reward", 0.0), -8.6);
}

TEST(Cli, PositionalArguments)
{
    const auto flags = parse({"one", "--x=1", "two"}, {"x"});
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "one");
    EXPECT_EQ(flags.positional()[1], "two");
}

TEST(CliDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(parse({"--bogus=1"}, {"env"}), ::testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(CliDeath, NonIntegerIsFatal)
{
    const auto flags = parse({"--n=abc"}, {"n"});
    EXPECT_EXIT((void)flags.getInt("n", 0), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(CliDeath, NonBooleanIsFatal)
{
    const auto flags = parse({"--b=maybe"}, {"b"});
    EXPECT_EXIT((void)flags.getBool("b", false),
                ::testing::ExitedWithCode(1), "expects a boolean");
}

TEST(CliDeath, IntegerOverflowIsFatal)
{
    // strtoll clamps 2^64-scale input to INT64_MAX with ERANGE; the
    // parser must reject it instead of silently training with the
    // clamped extreme.
    const auto flags =
        parse({"--episodes=99999999999999999999"}, {"episodes"});
    EXPECT_EXIT((void)flags.getInt("episodes", 0),
                ::testing::ExitedWithCode(1),
                "out of range for a 64-bit integer");
}

TEST(CliDeath, DoubleOverflowIsFatal)
{
    const auto flags = parse({"--alpha=1e999"}, {"alpha"});
    EXPECT_EXIT((void)flags.getDouble("alpha", 0.0),
                ::testing::ExitedWithCode(1),
                "out of range for a double");
}

TEST(Cli, DenormalUnderflowIsAccepted)
{
    // Underflow also raises ERANGE but yields a usable denormal; only
    // overflow to +/-HUGE_VAL is rejected.
    const auto flags = parse({"--alpha=1e-320"}, {"alpha"});
    EXPECT_GT(flags.getDouble("alpha", 1.0), 0.0);
    EXPECT_LT(flags.getDouble("alpha", 1.0), 1e-300);
}

TEST(CliDeath, DuplicateFlagIsFatal)
{
    EXPECT_EXIT(parse({"--seed=1", "--seed=2"}, {"seed"}),
                ::testing::ExitedWithCode(1), "duplicate flag --seed");
}

TEST(CliDeath, BareFlagRejectedByTypedGetters)
{
    // "--seed --trace=t.json": the seed's value was forgotten, so the
    // next flag swallowed the slot. The typed getter must name the
    // flag that is missing its value.
    const auto flags =
        parse({"--seed", "--trace=t.json"}, {"seed", "trace"});
    EXPECT_EXIT((void)flags.getInt("seed", 0),
                ::testing::ExitedWithCode(1),
                "flag --seed expects a value");
    EXPECT_EXIT((void)flags.getDouble("seed", 0.0),
                ::testing::ExitedWithCode(1),
                "flag --seed expects a value");
    // getBool alone may read a bare flag as true.
    EXPECT_TRUE(flags.getBool("seed", false));
}

} // namespace
