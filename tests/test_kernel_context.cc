/**
 * @file
 * Tests for the kernel execution context: exact cycle charging,
 * DMA splitting, WRAM accounting, and the PIM-side LCG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "pimsim/dpu.hh"
#include "pimsim/kernel_context.hh"

namespace {

using swiftrl::common::Lcg32;
using swiftrl::pimsim::Cycles;
using swiftrl::pimsim::Dpu;
using swiftrl::pimsim::DpuCostModel;
using swiftrl::pimsim::KernelContext;
using swiftrl::pimsim::OpClass;

struct Fixture
{
    Dpu dpu{0, 1 << 20};
    DpuCostModel model;
    KernelContext ctx{dpu, model, 64 * 1024};
};

TEST(KernelContext, ArithmeticComputesCorrectValues)
{
    Fixture f;
    EXPECT_FLOAT_EQ(f.ctx.fadd(1.5f, 2.25f), 3.75f);
    EXPECT_FLOAT_EQ(f.ctx.fsub(1.0f, 0.25f), 0.75f);
    EXPECT_FLOAT_EQ(f.ctx.fmul(3.0f, 0.5f), 1.5f);
    EXPECT_FLOAT_EQ(f.ctx.fdiv(1.0f, 4.0f), 0.25f);
    EXPECT_TRUE(f.ctx.fgt(2.0f, 1.0f));
    EXPECT_FALSE(f.ctx.fgt(1.0f, 2.0f));
    EXPECT_EQ(f.ctx.iadd(40, 2), 42);
    EXPECT_EQ(f.ctx.isub(40, 2), 38);
    EXPECT_EQ(f.ctx.imul32(100000, 100000), 10000000000ll);
    EXPECT_EQ(f.ctx.idiv32(7, 2), 3);
    EXPECT_EQ(f.ctx.idiv32(-7, 2), -3); // truncating, like C
    EXPECT_EQ(f.ctx.imul8(-3, 5), -15);
    EXPECT_TRUE(f.ctx.igt(2, 1));
}

TEST(KernelContext, RescaleTruncatesTowardZero)
{
    Fixture f;
    EXPECT_EQ(f.ctx.rescale(95000000ll, 10000), 9500);
    EXPECT_EQ(f.ctx.rescale(-95000001ll, 10000), -9500);
    EXPECT_EQ(f.ctx.rescale(9999ll, 10000), 0);
}

TEST(KernelContext, ImulSmallComputesAndCharges)
{
    Fixture f;
    const Cycles before = f.ctx.cycles();
    EXPECT_EQ(f.ctx.imulSmall(2560, 122), 312320ll);
    EXPECT_EQ(f.ctx.imulSmall(-100, 13), -1300ll);
    const Cycles per_call = (f.ctx.cycles() - before) / 2;
    EXPECT_EQ(per_call, 2 * f.model.cyclesFor(OpClass::Int8Mul) +
                            2 * f.model.cyclesFor(OpClass::IntAlu));
}

TEST(KernelContext, RescaleShiftIsFloorDivision)
{
    Fixture f;
    EXPECT_EQ(f.ctx.rescaleShift(1280, 7), 10);
    EXPECT_EQ(f.ctx.rescaleShift(1281, 7), 10);
    // Arithmetic shift floors: -1 >> 7 == -1, unlike /-truncation.
    EXPECT_EQ(f.ctx.rescaleShift(-1, 7), -1);
    EXPECT_EQ(f.ctx.rescaleShift(-128, 7), -1);
}

TEST(KernelContextDeath, ImulSmallRejectsWideOperands)
{
    Fixture f;
    // 16-bit wide-operand limit: the INT8 optimisation's
    // applicability condition (taxi's value range violates it).
    EXPECT_DEATH((void)f.ctx.imulSmall(40000, 13),
                 "does not fit the INT8");
    EXPECT_DEATH((void)f.ctx.imulSmall(100, 200), "exceeds 8 bits");
}

TEST(KernelContext, ChargesMatchTheCostModel)
{
    Fixture f;
    const Cycles before = f.ctx.cycles();
    f.ctx.fmul(1.0f, 2.0f);
    EXPECT_EQ(f.ctx.cycles() - before,
              f.model.cyclesFor(OpClass::Fp32Mul));

    const Cycles mid = f.ctx.cycles();
    f.ctx.iadd(1, 2);
    EXPECT_EQ(f.ctx.cycles() - mid,
              f.model.cyclesFor(OpClass::IntAlu));
}

TEST(KernelContext, Fp32CostsDwarfIntCosts)
{
    // The core architectural premise of the INT32 optimisation.
    Fixture f;
    f.ctx.iadd(1, 1);
    const Cycles int_cost = f.ctx.cycles();
    f.ctx.fmul(1.0f, 1.0f);
    const Cycles fp_cost = f.ctx.cycles() - int_cost;
    EXPECT_GT(fp_cost, 10 * int_cost);
}

TEST(KernelContext, OpCountsRecordedOnDpu)
{
    Fixture f;
    f.ctx.fadd(1, 2);
    f.ctx.fadd(3, 4);
    f.ctx.branch(5);
    // The ledger batches op counts; Dpu counters update on flush
    // (the command stream flushes at kernel return).
    f.ctx.flush();
    EXPECT_EQ(f.dpu.opCounts()[static_cast<std::size_t>(
                  OpClass::Fp32Add)],
              2u);
    EXPECT_EQ(f.dpu.opCounts()[static_cast<std::size_t>(
                  OpClass::Branch)],
              5u);
}

TEST(KernelContext, DmaMovesDataAndChargesFixedPlusStreaming)
{
    Fixture f;
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
    f.dpu.mramWrite(64, data.data(), data.size());

    std::vector<std::uint8_t> out(8);
    const Cycles before = f.ctx.cycles();
    f.ctx.mramToWram(64, out.data(), 8);
    EXPECT_EQ(out, data);
    EXPECT_EQ(f.ctx.cycles() - before, f.model.dmaCycles(8));
}

TEST(KernelContext, DmaPadsUnalignedTail)
{
    Fixture f;
    std::vector<std::uint8_t> out(5);
    const Cycles before = f.ctx.cycles();
    f.ctx.mramToWram(0, out.data(), 5);
    // 5 bytes pad to one 8-byte transfer.
    EXPECT_EQ(f.ctx.cycles() - before, f.model.dmaCycles(8));
    f.ctx.flush();
    EXPECT_EQ(f.dpu.dmaBytes(), 8u);
}

TEST(KernelContext, DmaSplitsAtHardwareLimit)
{
    Fixture f;
    std::vector<std::uint8_t> out(5000);
    const Cycles before = f.ctx.cycles();
    f.ctx.mramToWram(0, out.data(), 5000);
    // 2048 + 2048 + 904(->904 padded to 904? 904 % 8 == 0).
    const Cycles expected = f.model.dmaCycles(2048) +
                            f.model.dmaCycles(2048) +
                            f.model.dmaCycles(904);
    EXPECT_EQ(f.ctx.cycles() - before, expected);
}

TEST(KernelContext, WramToMramWritesBack)
{
    Fixture f;
    const std::vector<std::uint8_t> data{9, 8, 7, 6, 5, 4, 3, 2};
    f.ctx.wramToMram(128, data.data(), data.size());
    std::vector<std::uint8_t> out(8);
    f.dpu.mramRead(128, out.data(), 8);
    EXPECT_EQ(out, data);
}

TEST(KernelContext, WramAccountingAccumulates)
{
    Fixture f;
    f.ctx.wramAlloc(1000);
    f.ctx.wramAlloc(2000);
    EXPECT_EQ(f.ctx.wramUsed(), 3000u);
}

TEST(KernelContextDeath, WramOverflowIsFatal)
{
    Fixture f;
    f.ctx.wramAlloc(60 * 1024);
    EXPECT_EXIT(f.ctx.wramAlloc(8 * 1024),
                ::testing::ExitedWithCode(1), "scratchpad");
}

TEST(KernelContext, LcgMatchesReferenceGenerator)
{
    Fixture f;
    Lcg32 reference(777);
    f.ctx.lcgSeed(777);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(f.ctx.lcgNext(), reference.next());
}

TEST(KernelContext, LcgBoundedMatchesReference)
{
    Fixture f;
    Lcg32 reference(31);
    f.ctx.lcgSeed(31);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(f.ctx.lcgNextBounded(500),
                  reference.nextBounded(500));
}

TEST(KernelContext, LcgStateReadBack)
{
    Fixture f;
    f.ctx.lcgSeed(5);
    f.ctx.lcgNext();
    f.ctx.lcgNext();
    Lcg32 reference(5);
    reference.next();
    reference.next();
    EXPECT_EQ(f.ctx.lcgState(), reference.state());
}

TEST(KernelContext, LcgDrawsCostEmulatedMultiplies)
{
    Fixture f;
    f.ctx.lcgSeed(1);
    const Cycles before = f.ctx.cycles();
    f.ctx.lcgNext();
    EXPECT_EQ(f.ctx.cycles() - before,
              f.model.cyclesFor(OpClass::Int32Mul) +
                  f.model.cyclesFor(OpClass::IntAlu));
}

} // namespace
