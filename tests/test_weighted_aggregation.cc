/**
 * @file
 * Tests for visit-count-weighted aggregation (extension E5).
 */

#include <gtest/gtest.h>

#include "rlcore/evaluate.hh"
#include "rlenv/cliff_walking.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using namespace swiftrl::rlcore;

PimSystem
makeSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 8u << 20;
    return PimSystem(cfg);
}

PimTrainConfig
config(bool weighted, int episodes, int tau)
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = episodes;
    cfg.tau = tau;
    cfg.weightedAggregation = weighted;
    return cfg;
}

TEST(WeightedAggregation, MatchesPlainWhenChunksCoverTheSpace)
{
    // Frozen lake with few cores: every chunk covers the space, so
    // the per-entry weights are all positive and similar; both
    // aggregators must land on (nearly) the same policy quality.
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 100'000, 1);

    double mean[2];
    int slot = 0;
    for (const bool weighted : {false, true}) {
        auto system = makeSystem(8);
        const auto r = PimTrainer(system, config(weighted, 40, 10))
                           .train(data, 16, 4);
        swiftrl::rlenv::FrozenLake eval_env(true);
        mean[slot++] =
            evaluateGreedy(eval_env, r.finalQ, 1000, 7).meanReward;
    }
    EXPECT_NEAR(mean[0], mean[1], 0.06);
}

TEST(WeightedAggregation, RescuesUnderCoveredNegativeRewardCase)
{
    // The headline property: 100 under-covered CliffWalking chunks
    // fail under plain averaging at 40 episodes but converge to the
    // optimum with visit weighting.
    swiftrl::rlenv::CliffWalking env;
    const auto data = collectRandomDataset(env, 100'000, 1);

    auto plain_sys = makeSystem(100);
    const auto plain = PimTrainer(plain_sys, config(false, 40, 10))
                           .train(data, 48, 4);
    auto weighted_sys = makeSystem(100);
    const auto weighted =
        PimTrainer(weighted_sys, config(true, 40, 10))
            .train(data, 48, 4);

    swiftrl::rlenv::CliffWalking eval_a, eval_b;
    const auto plain_eval =
        evaluateGreedy(eval_a, plain.finalQ, 20, 7);
    const auto weighted_eval =
        evaluateGreedy(eval_b, weighted.finalQ, 20, 7);
    EXPECT_DOUBLE_EQ(weighted_eval.meanReward, -13.0);
    EXPECT_LT(plain_eval.meanReward, weighted_eval.meanReward);
}

TEST(WeightedAggregation, CostsOneExtraGatherPerRound)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 10'000, 2);

    auto plain_sys = makeSystem(8);
    const auto plain = PimTrainer(plain_sys, config(false, 20, 5))
                           .train(data, 16, 4);
    auto weighted_sys = makeSystem(8);
    const auto weighted =
        PimTrainer(weighted_sys, config(true, 20, 5))
            .train(data, 16, 4);

    EXPECT_GT(weighted.time.interCore, plain.time.interCore);
    // Bounded: the count table is the same size as the Q-table, and
    // the gather direction dominates, so at most ~2x.
    EXPECT_LT(weighted.time.interCore, plain.time.interCore * 2.0);
    // Kernel pays the small per-update counter increment.
    EXPECT_GT(weighted.time.kernel, plain.time.kernel);
    EXPECT_LT(weighted.time.kernel, plain.time.kernel * 1.2);
}

TEST(WeightedAggregation, DeterministicAcrossRuns)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 5'000, 3);
    auto sys_a = makeSystem(4);
    auto sys_b = makeSystem(4);
    const auto a = PimTrainer(sys_a, config(true, 10, 5))
                       .train(data, 16, 4);
    const auto b = PimTrainer(sys_b, config(true, 10, 5))
                       .train(data, 16, 4);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);
}

TEST(WeightedAggregation, WorksWithMultiTasklet)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 8'000, 4);
    auto system = makeSystem(4);
    auto cfg = config(true, 20, 10);
    cfg.tasklets = 4;
    const auto r = PimTrainer(system, cfg).train(data, 16, 4);
    swiftrl::rlenv::FrozenLake eval_env(true);
    const auto eval = evaluateGreedy(eval_env, r.finalQ, 300, 7);
    EXPECT_GT(eval.meanReward, 0.2);
}

} // namespace
