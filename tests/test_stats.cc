/**
 * @file
 * Tests for streaming statistics and scaling-fit helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace {

using swiftrl::common::log2ScalingExponent;
using swiftrl::common::percentile;
using swiftrl::common::RunningStat;

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 3.5);
    EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -10.0);
    EXPECT_EQ(s.max(), 10.0);
}

TEST(ScalingExponent, PerfectStrongScalingIsMinusOne)
{
    // time halves when cores double.
    const std::vector<double> cores{125, 250, 500, 1000, 2000};
    const std::vector<double> time{16, 8, 4, 2, 1};
    EXPECT_NEAR(log2ScalingExponent(cores, time), -1.0, 1e-12);
}

TEST(ScalingExponent, FlatSeriesIsZero)
{
    const std::vector<double> x{1, 2, 4, 8};
    const std::vector<double> y{3, 3, 3, 3};
    EXPECT_NEAR(log2ScalingExponent(x, y), 0.0, 1e-12);
}

TEST(ScalingExponent, SublinearDetected)
{
    // 15x speedup over 16x cores: exponent slightly above -1.
    const std::vector<double> x{125, 2000};
    const std::vector<double> y{15.0, 1.0};
    const double e = log2ScalingExponent(x, y);
    EXPECT_GT(e, -1.0);
    EXPECT_LT(e, -0.9);
}

TEST(Percentile, Endpoints)
{
    std::vector<double> v{5, 1, 3, 2, 4};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{0, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleSample)
{
    std::vector<double> v{42};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 42.0);
}

} // namespace
