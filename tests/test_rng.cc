/**
 * @file
 * Tests for the random number generators, in particular the LCG that
 * stands in for rand() on the PIM cores.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.hh"

namespace {

using swiftrl::common::Lcg32;
using swiftrl::common::SplitMix64;
using swiftrl::common::XorShift128;

TEST(Lcg32, MatchesNumericalRecipesConstants)
{
    Lcg32 lcg(0);
    // state = 0 * 1664525 + 1013904223
    EXPECT_EQ(lcg.next(), 1013904223u);
    // next step from that state
    EXPECT_EQ(lcg.next(), 1013904223u * 1664525u + 1013904223u);
}

TEST(Lcg32, DeterministicAcrossInstances)
{
    Lcg32 a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Lcg32, SeedResetsTheStream)
{
    Lcg32 a(7);
    const auto first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Lcg32, StateExposesTheStream)
{
    Lcg32 a(99);
    a.next();
    const auto s = a.state();
    Lcg32 b(s);
    EXPECT_EQ(a.next(), b.next());
}

TEST(Lcg32, BoundedStaysInBounds)
{
    Lcg32 lcg(42);
    for (int i = 0; i < 10000; ++i) {
        const auto v = lcg.nextBounded(6);
        ASSERT_LT(v, 6u);
    }
}

TEST(Lcg32, BoundedCoversTheRange)
{
    Lcg32 lcg(42);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(lcg.nextBounded(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Lcg32, BoundedIsRoughlyUniform)
{
    Lcg32 lcg(7);
    std::array<int, 8> histogram{};
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++histogram[lcg.nextBounded(8)];
    for (const int count : histogram) {
        EXPECT_GT(count, draws / 8 * 0.9);
        EXPECT_LT(count, draws / 8 * 1.1);
    }
}

TEST(Lcg32, RealsAreInUnitInterval)
{
    Lcg32 lcg(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = lcg.nextReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(SplitMix64, KnownFirstOutput)
{
    // Reference value for seed 0 from the published SplitMix64.
    SplitMix64 mix(0);
    EXPECT_EQ(mix.next(), 0xe220a8397b1dcdafull);
}

TEST(XorShift128, Deterministic)
{
    XorShift128 a(5), b(5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(XorShift128, DifferentSeedsDiverge)
{
    XorShift128 a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(XorShift128, BoundedIsUnbiased)
{
    XorShift128 rng(11);
    std::array<int, 3> histogram{};
    const int draws = 90000;
    for (int i = 0; i < draws; ++i)
        ++histogram[rng.nextBounded(3)];
    for (const int count : histogram) {
        EXPECT_GT(count, draws / 3 * 0.95);
        EXPECT_LT(count, draws / 3 * 1.05);
    }
}

TEST(XorShift128, RealsCoverUnitInterval)
{
    XorShift128 rng(13);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(XorShift128, SplitYieldsIndependentStream)
{
    XorShift128 parent(17);
    XorShift128 child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

/** Property: bounded draws stay below every bound in a sweep. */
class BoundedSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BoundedSweep, LcgAndXorShiftRespectBound)
{
    const std::uint32_t bound = GetParam();
    Lcg32 lcg(1);
    XorShift128 xs(1);
    for (int i = 0; i < 2000; ++i) {
        ASSERT_LT(lcg.nextBounded(bound), bound);
        ASSERT_LT(xs.nextBounded(bound), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 16u,
                                           500u, 1000u, 1000000u));

} // namespace
