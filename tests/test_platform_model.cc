/**
 * @file
 * Tests for the analytic CPU/GPU timing models: the architectural
 * orderings the paper's Fig. 7 comparisons rest on must hold.
 */

#include <gtest/gtest.h>

#include "baselines/platform_model.hh"

namespace {

using namespace swiftrl::baselines;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::Sampling;

constexpr std::size_t kLakeQ = 16 * 4;
constexpr std::size_t kTaxiQ = 500 * 6;
constexpr std::size_t kLakeN = 100000;
constexpr std::size_t kTaxiN = 500000;

TEST(PlatformSpec, Table1Values)
{
    const auto cpu = xeonSilver4110();
    EXPECT_DOUBLE_EQ(cpu.peakGflops, 38.0);
    EXPECT_DOUBLE_EQ(cpu.memBandwidthBytes, 28.8e9);
    EXPECT_EQ(cpu.hwThreads, 16);

    const auto gpu = rtx3090();
    EXPECT_DOUBLE_EQ(gpu.peakGflops, 35580.0);
    EXPECT_DOUBLE_EQ(gpu.memBandwidthBytes, 936.2e9);
    EXPECT_EQ(gpu.hwThreads, 10496);
}

TEST(UpdateOpMix, ScalesWithActionCount)
{
    const auto lake = updateOpMix(Algorithm::QLearning, 4);
    const auto taxi = updateOpMix(Algorithm::QLearning, 6);
    EXPECT_GT(taxi.flops, lake.flops);
    EXPECT_DOUBLE_EQ(lake.bytesStreamed, 16.0);
}

TEST(UpdateOpMix, SarsaCostsSlightlyMore)
{
    EXPECT_GT(updateOpMix(Algorithm::Sarsa, 4).flops,
              updateOpMix(Algorithm::QLearning, 4).flops);
}

TEST(CpuModel, TimeScalesLinearlyWithWork)
{
    const auto spec = xeonSilver4110();
    const CpuModelParams p;
    const double t1 = estimateCpuSeconds(spec, p, CpuVersion::V1,
                                         Algorithm::QLearning,
                                         Sampling::Seq, 4, kLakeQ,
                                         kLakeN, 100);
    const double t2 = estimateCpuSeconds(spec, p, CpuVersion::V1,
                                         Algorithm::QLearning,
                                         Sampling::Seq, 4, kLakeQ,
                                         kLakeN, 200);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(CpuModel, RandomSamplingIsSlowerOnLargeDatasets)
{
    const auto spec = xeonSilver4110();
    const CpuModelParams p;
    // Taxi's 5M-transition dataset dwarfs the LLC: RAN loses the
    // prefetcher (the paper's key CPU-vs-PIM asymmetry).
    const double seq = estimateCpuSeconds(spec, p, CpuVersion::V2,
                                          Algorithm::QLearning,
                                          Sampling::Seq, 6, kTaxiQ,
                                          5000000, 10);
    const double ran = estimateCpuSeconds(spec, p, CpuVersion::V2,
                                          Algorithm::QLearning,
                                          Sampling::Ran, 6, kTaxiQ,
                                          5000000, 10);
    EXPECT_GT(ran, 1.5 * seq);
}

TEST(CpuModel, SharedTableContentionHurtsTinyTables)
{
    const auto spec = xeonSilver4110();
    const CpuModelParams p;
    // Frozen lake's 64-entry table: V1 ping-pongs, V2 does not.
    const double v1 = estimateCpuSeconds(spec, p, CpuVersion::V1,
                                         Algorithm::QLearning,
                                         Sampling::Seq, 4, kLakeQ,
                                         kLakeN, 100);
    const double v2 = estimateCpuSeconds(spec, p, CpuVersion::V2,
                                         Algorithm::QLearning,
                                         Sampling::Seq, 4, kLakeQ,
                                         kLakeN, 100);
    EXPECT_GT(v1, 2.0 * v2);
}

TEST(CpuModel, ContentionMattersLessForTaxi)
{
    const auto spec = xeonSilver4110();
    const CpuModelParams p;
    auto ratio = [&](std::size_t q_entries) {
        const double v1 = estimateCpuSeconds(
            spec, p, CpuVersion::V1, Algorithm::QLearning,
            Sampling::Seq, 6, q_entries, kTaxiN, 10);
        const double v2 = estimateCpuSeconds(
            spec, p, CpuVersion::V2, Algorithm::QLearning,
            Sampling::Seq, 6, q_entries, kTaxiN, 10);
        return v1 / v2;
    };
    EXPECT_GT(ratio(kLakeQ), ratio(kTaxiQ));
}

TEST(GpuModel, AtomicContentionCapsTinyTables)
{
    const auto spec = rtx3090();
    const GpuModelParams p;
    const double lake = estimateGpuSeconds(spec, p,
                                           Algorithm::QLearning,
                                           Sampling::Seq, 4, kLakeQ,
                                           kLakeN, 100);
    const double taxi = estimateGpuSeconds(spec, p,
                                           Algorithm::QLearning,
                                           Sampling::Seq, 6, kTaxiQ,
                                           kLakeN, 100);
    // Same update count, bigger table -> less contention -> faster.
    EXPECT_GT(lake, taxi);
}

TEST(GpuModel, LaunchOverheadScalesWithEpisodes)
{
    const auto spec = rtx3090();
    GpuModelParams p;
    p.launchOverheadSec = 1.0e-3; // exaggerate to isolate the term
    const double few = estimateGpuSeconds(spec, p,
                                          Algorithm::QLearning,
                                          Sampling::Seq, 4, kLakeQ,
                                          1000, 10);
    const double many = estimateGpuSeconds(spec, p,
                                           Algorithm::QLearning,
                                           Sampling::Seq, 4, kLakeQ,
                                           1000, 1000);
    EXPECT_GT(many, few + 0.9);
}

TEST(GpuModel, MoreWorkTakesLonger)
{
    const auto spec = rtx3090();
    const GpuModelParams p;
    const double small = estimateGpuSeconds(spec, p,
                                            Algorithm::QLearning,
                                            Sampling::Seq, 4, kLakeQ,
                                            kLakeN, 10);
    const double large = estimateGpuSeconds(spec, p,
                                            Algorithm::QLearning,
                                            Sampling::Seq, 4, kLakeQ,
                                            kLakeN, 100);
    EXPECT_GT(large, small);
}

} // namespace
