/**
 * @file
 * The sharded Q-table plumbing below TrainerSession: the contiguous
 * state-range ShardMap, replica-group placement, owner routing of
 * transitions, halo discovery, and the localized wire packing. The
 * load-bearing property throughout is that a 1-shard configuration
 * is *byte-identical* to the unsharded code paths.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/shard_map.hh"
#include "swiftrl/qtable_io.hh"
#include "swiftrl/sharding.hh"
#include "swiftrl/workload.hh"

namespace {

using swiftrl::QTableIo;
using swiftrl::ShardPlan;
using swiftrl::ShardRouting;
using swiftrl::Workload;
using namespace swiftrl::rlcore;

// --- ShardMap ---------------------------------------------------------

TEST(ShardMap, InvalidReasonRejectsBadConfigurations)
{
    EXPECT_NE(ShardMap::invalidReason(0, 1), "");
    EXPECT_NE(ShardMap::invalidReason(-4, 1), "");
    EXPECT_NE(ShardMap::invalidReason(16, 0), "");
    EXPECT_NE(ShardMap::invalidReason(4, 5), "");
    // 5 states on 4 shards: ceil(5/4) = 2 rows per shard puts shard
    // 3's range at [6, 8) — entirely past the table. Must be refused,
    // not silently given an empty shard.
    EXPECT_NE(ShardMap::invalidReason(5, 4), "");
}

TEST(ShardMap, InvalidReasonAcceptsValidConfigurations)
{
    EXPECT_EQ(ShardMap::invalidReason(16, 1), "");
    EXPECT_EQ(ShardMap::invalidReason(16, 4), "");
    EXPECT_EQ(ShardMap::invalidReason(500, 6), "");
    EXPECT_EQ(ShardMap::invalidReason(7, 7), "");
}

TEST(ShardMap, OwnershipIsAContiguousCoveringPartition)
{
    const ShardMap map(10, 3); // rowsPerShard = 4: ranges 4/4/2
    EXPECT_EQ(map.rowsPerShard(), 4);
    EXPECT_EQ(map.ownedRows(0), 4);
    EXPECT_EQ(map.ownedRows(1), 4);
    EXPECT_EQ(map.ownedRows(2), 2);

    std::size_t prev = 0;
    for (StateId s = 0; s < 10; ++s) {
        const std::size_t owner = map.ownerOf(s);
        ASSERT_LT(owner, 3u);
        EXPECT_GE(owner, prev); // monotone in state id
        EXPECT_GE(s, map.firstState(owner));
        EXPECT_LT(s, map.firstState(owner) + map.ownedRows(owner));
        prev = owner;
    }
}

TEST(ShardMap, SingleShardOwnsEverything)
{
    const ShardMap map(500, 1);
    EXPECT_EQ(map.rowsPerShard(), 500);
    EXPECT_EQ(map.ownedRows(0), 500);
    EXPECT_EQ(map.ownerOf(0), 0u);
    EXPECT_EQ(map.ownerOf(499), 0u);
}

TEST(ShardMapDeath, ConstructorIsFatalOnInvalidConfig)
{
    EXPECT_EXIT((ShardMap{5, 4}), ::testing::ExitedWithCode(1),
                "shard");
}

// --- ShardPlan --------------------------------------------------------

TEST(ShardPlan, InvalidReasonCoversCoreCounts)
{
    EXPECT_NE(swiftrl::shardPlanInvalidReason(16, 4, 0), "");
    EXPECT_NE(swiftrl::shardPlanInvalidReason(16, 4, 3), "");
    EXPECT_EQ(swiftrl::shardPlanInvalidReason(16, 4, 4), "");
    EXPECT_EQ(swiftrl::shardPlanInvalidReason(16, 4, 9), "");
    // Map-level failures surface through the same probe.
    EXPECT_NE(swiftrl::shardPlanInvalidReason(5, 4, 8), "");
}

TEST(ShardPlan, ReplicaGroupsAreContiguousWithRemainderLow)
{
    // 8 cores over 3 shards: groups of 3, 3, 2 — extras to the low
    // shards, same determinism rule as partitionDataset.
    const ShardPlan plan = swiftrl::makeShardPlan(100, 3, 8);
    ASSERT_EQ(plan.coresOfShard.size(), 3u);
    EXPECT_EQ(plan.coresOfShard[0],
              (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(plan.coresOfShard[1],
              (std::vector<std::size_t>{3, 4, 5}));
    EXPECT_EQ(plan.coresOfShard[2], (std::vector<std::size_t>{6, 7}));
    ASSERT_EQ(plan.shardOfCore.size(), 8u);
    for (std::size_t s = 0; s < 3; ++s)
        for (const std::size_t core : plan.coresOfShard[s])
            EXPECT_EQ(plan.shardOfCore[core], s);
}

// --- routing ----------------------------------------------------------

Dataset
crossShardData()
{
    // 10 states, 2 shards (rows 0-4 / 5-9). Mix of local, cross-shard
    // and terminal transitions, in a deliberately shuffled order.
    Dataset d;
    d.append({7, 1, -1.0f, 2, false}); // shard 1, remote next
    d.append({1, 0, 0.5f, 6, false});  // shard 0, remote next
    d.append({2, 3, 1.0f, 9, true});   // shard 0, terminal
    d.append({3, 2, 0.0f, 4, false});  // shard 0, local next
    d.append({9, 0, 2.0f, 8, false});  // shard 1, local next
    d.append({0, 1, -0.5f, 5, false}); // shard 0, remote next
    return d;
}

TEST(ShardRouting, GroupsByOwnerStably)
{
    const Dataset d = crossShardData();
    const ShardMap map(10, 2);
    const ShardRouting r = swiftrl::routeByOwner(d, map);

    ASSERT_EQ(r.order.size(), d.size());
    EXPECT_EQ(r.shardCount, (std::vector<std::size_t>{4, 2}));
    EXPECT_EQ(r.shardFirst, (std::vector<std::size_t>{0, 4}));

    // Stable: dataset order preserved within each shard's span.
    EXPECT_EQ(std::vector<std::size_t>(r.order.begin(),
                                       r.order.begin() + 4),
              (std::vector<std::size_t>{1, 2, 3, 5}));
    EXPECT_EQ(std::vector<std::size_t>(r.order.begin() + 4,
                                       r.order.end()),
              (std::vector<std::size_t>{0, 4}));

    // order is a permutation of [0, size).
    auto sorted = r.order;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::size_t> iota(d.size());
    std::iota(iota.begin(), iota.end(), 0);
    EXPECT_EQ(sorted, iota);
}

TEST(ShardRouting, HaloIsSortedUniqueRemoteNonTerminals)
{
    const Dataset d = crossShardData();
    const ShardMap map(10, 2);
    const ShardRouting r = swiftrl::routeByOwner(d, map);

    // Shard 0's transitions reference remote next states 6 and 5;
    // the terminal next state 9 needs no halo row.
    const auto halo0 = swiftrl::collectHalo(d, r, map, 0,
                                            r.shardFirst[0],
                                            r.shardCount[0]);
    EXPECT_EQ(halo0, (std::vector<StateId>{5, 6}));

    // Shard 1 references remote next state 2.
    const auto halo1 = swiftrl::collectHalo(d, r, map, 1,
                                            r.shardFirst[1],
                                            r.shardCount[1]);
    EXPECT_EQ(halo1, (std::vector<StateId>{2}));
}

// --- localized packing ------------------------------------------------

TEST(ShardPacking, LocalizedChunkRewritesIdsAndKeepsRewards)
{
    const Dataset d = crossShardData();
    const ShardMap map(10, 2);
    const ShardRouting r = swiftrl::routeByOwner(d, map);
    const auto halo = swiftrl::collectHalo(d, r, map, 0,
                                           r.shardFirst[0],
                                           r.shardCount[0]);

    const auto bytes = swiftrl::packLocalizedChunk(
        d, r, map, 0, r.shardFirst[0], r.shardCount[0], halo, true, 0);
    ASSERT_EQ(bytes.size(), 4 * sizeof(PackedTransition));

    std::vector<PackedTransition> recs(4);
    std::memcpy(recs.data(), bytes.data(), bytes.size());

    // Dataset index 1: (1, 0, 0.5, ->6). State 1 is local row 1; next
    // state 6 is remote, halo index of 6 is 1 -> row 5 + 1 = 6.
    EXPECT_EQ(recs[0].state, 1);
    EXPECT_EQ(recs[0].nextStateBits, 6u);

    // Dataset index 2: terminal -> local row 0 with the flag set (the
    // row is never read, but the kernel forms the pointer first).
    EXPECT_EQ(recs[1].state, 2);
    EXPECT_EQ(recs[1].nextStateBits, PackedTransition::kTerminalBit);

    // Dataset index 3: local next 4 stays row 4.
    EXPECT_EQ(recs[2].nextStateBits, 4u);

    // Dataset index 5: next 5 is halo index 0 -> row 5.
    EXPECT_EQ(recs[3].state, 0);
    EXPECT_EQ(recs[3].nextStateBits, 5u);

    // Reward bits match the unsharded FP32 encoding exactly.
    const auto ref = d.packFp32(1, 1); // dataset record 1
    PackedTransition ref_rec;
    std::memcpy(&ref_rec, ref.data(), sizeof(ref_rec));
    EXPECT_EQ(recs[0].rewardBits, ref_rec.rewardBits);
}

TEST(ShardPacking, SingleShardLocalizedChunkMatchesDatasetPack)
{
    // With one shard and the identity routing, the localized pack is
    // byte-identical to Dataset::packFp32/packInt32 for non-terminal
    // transitions (terminal next states are rewritten to row 0 in
    // either shard count — their row is never read).
    Dataset d;
    d.append({7, 1, -1.0f, 2, false});
    d.append({1, 0, 0.5f, 6, false});
    d.append({3, 2, 0.0f, 4, false});
    d.append({9, 0, 2.0f, 8, false});
    d.append({0, 1, -0.5f, 5, false});
    const ShardMap map(10, 1);
    const ShardRouting r = swiftrl::routeByOwner(d, map);
    const std::vector<StateId> halo; // single shard: nothing remote

    const auto fp32 = swiftrl::packLocalizedChunk(
        d, r, map, 0, 0, d.size(), halo, true, 0);
    EXPECT_EQ(fp32, d.packFp32(0, d.size()));

    const auto int32 = swiftrl::packLocalizedChunk(
        d, r, map, 0, 0, d.size(), halo, false, 1 << 16);
    EXPECT_EQ(int32, d.packInt32(0, d.size(), 1 << 16));
}

QTable
rampTable(StateId ns, ActionId na)
{
    QTable q(ns, na);
    for (StateId s = 0; s < ns; ++s)
        for (ActionId a = 0; a < na; ++a)
            q.at(s, a) = 0.125f * float(s) - 0.25f * float(a);
    return q;
}

TEST(ShardPacking, SliceWireOfSingleShardMatchesFullPack)
{
    const QTable q = rampTable(10, 4);
    for (const auto format :
         {NumericFormat::Fp32, NumericFormat::Int32}) {
        const Workload w{Algorithm::QLearning, Sampling::Seq, format};
        const QTableIo qio(w, Hyper{});
        const ShardMap map(10, 1);
        EXPECT_EQ(swiftrl::packSliceWire(qio, q, map, 0),
                  qio.packWire(q));
    }
}

TEST(ShardPacking, SliceWirePadsTrailingShardWithZeros)
{
    const QTable q = rampTable(10, 2);
    const Workload w{Algorithm::QLearning, Sampling::Seq,
                     NumericFormat::Fp32};
    const QTableIo qio(w, Hyper{});
    const ShardMap map(10, 3); // rows 4/4/2(+2 padding)

    const auto wire = swiftrl::packSliceWire(qio, q, map, 2);
    ASSERT_EQ(wire.size(), 4u * 2u * sizeof(float));
    std::vector<float> rows(8);
    std::memcpy(rows.data(), wire.data(), wire.size());
    EXPECT_EQ(rows[0], q.at(8, 0));
    EXPECT_EQ(rows[3], q.at(9, 1));
    EXPECT_EQ(rows[4], 0.0f); // padding rows are zero
    EXPECT_EQ(rows[7], 0.0f);
}

TEST(ShardPacking, HaloWirePacksRowsInHaloOrder)
{
    const QTable q = rampTable(10, 3);
    const Workload w{Algorithm::QLearning, Sampling::Seq,
                     NumericFormat::Fp32};
    const QTableIo qio(w, Hyper{});
    const std::vector<StateId> halo{5, 6};

    const auto wire = swiftrl::packHaloWire(qio, q, halo, 3);
    ASSERT_EQ(wire.size(), 2u * 3u * sizeof(float));
    std::vector<float> rows(6);
    std::memcpy(rows.data(), wire.data(), wire.size());
    for (ActionId a = 0; a < 3; ++a) {
        EXPECT_EQ(rows[std::size_t(a)], q.at(5, a));
        EXPECT_EQ(rows[3 + std::size_t(a)], q.at(6, a));
    }

    EXPECT_TRUE(swiftrl::packHaloWire(qio, q, {}, 3).empty());
}

TEST(ShardPacking, DecodeSliceWireInvertsPackWire)
{
    const QTable q = rampTable(6, 2);
    for (const auto format :
         {NumericFormat::Fp32, NumericFormat::Int32}) {
        const Workload w{Algorithm::QLearning, Sampling::Seq, format};
        const QTableIo qio(w, Hyper{});
        const auto wire = qio.packWire(q);
        const auto decoded = swiftrl::decodeSliceWire(
            wire, q.entryCount(), format == NumericFormat::Fp32,
            qio.fixedScale());
        ASSERT_EQ(decoded.size(), q.entryCount());
        if (format == NumericFormat::Fp32) {
            EXPECT_EQ(std::memcmp(decoded.data(), q.values().data(),
                                  wire.size()),
                      0);
        } else {
            for (std::size_t i = 0; i < decoded.size(); ++i)
                EXPECT_NEAR(decoded[i], q.values()[i], 1e-4f);
        }
    }
}

// --- MRAM bound -------------------------------------------------------

TEST(ShardPacking, MramDemandBoundShrinksWithMoreShards)
{
    const auto one =
        swiftrl::shardedMramDemandBound(1 << 20, 4, 1, 65536);
    const auto eight =
        swiftrl::shardedMramDemandBound(1 << 20, 4, 8, 65536);
    EXPECT_GT(one, eight);
    // The slice term dominates at this scale: 2^20 * 4 entries * 4B.
    EXPECT_GE(one, std::size_t(1 << 20) * 4 * 4);
}

} // namespace
