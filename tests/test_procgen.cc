/**
 * @file
 * The procedural environment family: solvability-by-construction and
 * reproducibility of the hashed lake maps, the multi-passenger taxi's
 * state encoding and reward semantics, and spec parsing through
 * rlenv::tryMakeEnvironment (the embedder-facing non-fatal path).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hh"
#include "rlenv/procgen.hh"
#include "rlenv/registry.hh"

namespace {

using swiftrl::common::XorShift128;
using namespace swiftrl::rlenv;

// --- ProceduralLake ---------------------------------------------------

TEST(ProceduralLake, ShapeAndEpisodeCap)
{
    const ProceduralLake env(8);
    EXPECT_EQ(env.numStates(), 64);
    EXPECT_EQ(env.numActions(), 4);
    EXPECT_EQ(env.maxEpisodeSteps(), 100); // max(100, 4 * 8)
    const ProceduralLake big(64);
    EXPECT_EQ(big.numStates(), 4096);
    EXPECT_EQ(big.maxEpisodeSteps(), 256); // 4 * 64
}

TEST(ProceduralLake, GuaranteedPathIsHoleFree)
{
    // The top row and the rightmost column are frozen by
    // construction, so right-then-down always reaches the goal.
    for (const StateId side : {4, 16, 64, 301}) {
        const ProceduralLake env(side);
        for (StateId col = 0; col < side; ++col)
            EXPECT_NE(env.tileAt(col), 'H') << "side " << side;
        for (StateId row = 0; row < side; ++row)
            EXPECT_NE(env.tileAt(row * side + side - 1), 'H')
                << "side " << side;
        EXPECT_EQ(env.tileAt(0), 'S');
        EXPECT_EQ(env.tileAt(side * side - 1), 'G');
    }
}

TEST(ProceduralLake, MapIsAPureFunctionOfSideAndSeed)
{
    const ProceduralLake a(32), b(32);
    for (StateId s = 0; s < 1024; ++s)
        ASSERT_EQ(a.tileAt(s), b.tileAt(s));
    // A different seed yields a different map somewhere.
    const ProceduralLake c(32, true, 99);
    bool differs = false;
    for (StateId s = 0; s < 1024 && !differs; ++s)
        differs = a.tileAt(s) != c.tileAt(s);
    EXPECT_TRUE(differs);
}

TEST(ProceduralLake, HolesExistOnLargeMaps)
{
    const ProceduralLake env(64);
    int holes = 0;
    for (StateId s = 0; s < env.numStates(); ++s)
        holes += env.tileAt(s) == 'H';
    // ~1/8 of the interior; just assert the map is not trivial.
    EXPECT_GT(holes, 100);
}

TEST(ProceduralLake, DeterministicStepsFollowTheGrid)
{
    ProceduralLake env(8, /*slippery=*/false);
    XorShift128 rng(1);
    EXPECT_EQ(env.reset(rng), 0);
    auto r = env.step(ProceduralLake::Right, rng);
    EXPECT_EQ(r.nextState, 1);
    EXPECT_EQ(r.reward, 0.0f);
    r = env.step(ProceduralLake::Up, rng); // clamped at the top edge
    EXPECT_EQ(r.nextState, 1);
    r = env.step(ProceduralLake::Down, rng);
    EXPECT_EQ(r.nextState, 9);
}

TEST(ProceduralLake, EpisodesTerminateWithBoundedStates)
{
    ProceduralLake env(16);
    XorShift128 rng(7);
    for (int episode = 0; episode < 50; ++episode) {
        StateId s = env.reset(rng);
        for (int t = 0; t < env.maxEpisodeSteps(); ++t) {
            ASSERT_GE(s, 0);
            ASSERT_LT(s, env.numStates());
            const auto r = env.step(ActionId(rng.nextBounded(4)), rng);
            s = r.nextState;
            if (r.done())
                break;
        }
    }
}

// --- MultiPassengerTaxi -----------------------------------------------

TEST(MultiPassengerTaxi, StateCountIsSideSquaredTimesPowersOfThree)
{
    const MultiPassengerTaxi env(5, 2);
    EXPECT_EQ(env.numStates(), 25 * 9);
    EXPECT_EQ(env.numActions(), 6);
    const MultiPassengerTaxi big(100, 8);
    EXPECT_EQ(big.numStates(), 100 * 100 * 6561);
}

TEST(MultiPassengerTaxi, LandmarksAreDistinctCorners)
{
    const MultiPassengerTaxi env(6, 3);
    for (int p = 0; p < 3; ++p) {
        const StateId src = env.sourceCell(p);
        const StateId dst = env.destinationCell(p);
        EXPECT_NE(src, dst);
        const std::set<StateId> corners{0, 5, 30, 35};
        EXPECT_TRUE(corners.count(src));
        EXPECT_TRUE(corners.count(dst));
    }
}

TEST(MultiPassengerTaxi, MoveCostsOneAndClampsAtWalls)
{
    MultiPassengerTaxi env(4, 1);
    XorShift128 rng(3);
    env.reset(rng);
    // Drive into the left wall until clamped.
    for (int i = 0; i < 4; ++i) {
        const auto r = env.step(MultiPassengerTaxi::Left, rng);
        EXPECT_EQ(r.reward, -1.0f);
        EXPECT_FALSE(r.done());
    }
    const StateId pinned = env.currentState();
    const auto r = env.step(MultiPassengerTaxi::Left, rng);
    EXPECT_EQ(r.nextState, pinned);
}

TEST(MultiPassengerTaxi, BadPickupAndDropoffPayMinusTen)
{
    MultiPassengerTaxi env(4, 1);
    XorShift128 rng(5);
    env.reset(rng);
    // Nothing has been picked up yet, so Dropoff is always wrong.
    EXPECT_EQ(env.step(MultiPassengerTaxi::Dropoff, rng).reward,
              -10.0f);
}

TEST(MultiPassengerTaxi, FullDeliveryTerminatesWithPlusTwenty)
{
    // Random-walk until the episode terminates; the final transition
    // must be the +20 dropoff of the last passenger.
    MultiPassengerTaxi env(3, 1);
    XorShift128 rng(11);
    bool delivered = false;
    for (int episode = 0; episode < 200 && !delivered; ++episode) {
        env.reset(rng);
        for (int t = 0; t < env.maxEpisodeSteps(); ++t) {
            const auto r = env.step(ActionId(rng.nextBounded(6)), rng);
            if (r.terminated) {
                EXPECT_EQ(r.reward, 20.0f);
                delivered = true;
                break;
            }
            if (r.truncated)
                break;
        }
    }
    EXPECT_TRUE(delivered) << "random walk never delivered";
}

TEST(MultiPassengerTaxi, StatesStayInRange)
{
    MultiPassengerTaxi env(5, 2);
    XorShift128 rng(13);
    for (int episode = 0; episode < 20; ++episode) {
        StateId s = env.reset(rng);
        for (int t = 0; t < env.maxEpisodeSteps(); ++t) {
            ASSERT_GE(s, 0);
            ASSERT_LT(s, env.numStates());
            const auto r = env.step(ActionId(rng.nextBounded(6)), rng);
            s = r.nextState;
            if (r.done())
                break;
        }
    }
}

// --- spec parsing -----------------------------------------------------

TEST(EnvSpecs, ProceduralSpecsParse)
{
    std::string err;
    auto lake = tryMakeEnvironment("lake:64", &err);
    ASSERT_NE(lake, nullptr) << err;
    EXPECT_EQ(lake->numStates(), 4096);

    auto det = tryMakeEnvironment("lake:8:det", &err);
    ASSERT_NE(det, nullptr) << err;

    auto taxi = tryMakeEnvironment("mptaxi:6x2", &err);
    ASSERT_NE(taxi, nullptr) << err;
    EXPECT_EQ(taxi->numStates(), 36 * 9);
}

TEST(EnvSpecs, FixedNamesStillResolve)
{
    std::string err;
    for (const auto &name : environmentNames()) {
        auto env = tryMakeEnvironment(name, &err);
        EXPECT_NE(env, nullptr) << name << ": " << err;
    }
}

TEST(EnvSpecs, InvalidSpecsReturnNullWithReason)
{
    for (const std::string spec :
         {"bogus", "lake:", "lake:1", "lake:abc", "lake:0",
          "lake:50000", "lake:8:wet", "mptaxi:", "mptaxi:4",
          "mptaxi:4x0", "mptaxi:4x25", "mptaxi:0x2",
          "mptaxi:46340x19"}) {
        std::string err;
        EXPECT_EQ(tryMakeEnvironment(spec, &err), nullptr) << spec;
        EXPECT_NE(err, "") << spec;
    }
}

} // namespace
