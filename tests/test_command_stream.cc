/**
 * @file
 * The command-stream engine and its event timeline:
 *
 *  - the blocking PimSystem API is a thin wrapper over the default
 *    stream, so its calls land on a timeline of contiguous,
 *    non-overlapping intervals whose durations sum to sync();
 *  - the timing-only gather charges exactly what the functional one
 *    does (and validates the range the same way);
 *  - the trainer's reported TimeBreakdown is derived from — and hence
 *    always agrees with — its result timeline;
 *  - the exported Chrome trace JSON holds one "X" slice per command,
 *    with per-bucket duration sums matching the breakdown.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::breakdownFromTimeline;
using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::CommandStream;
using swiftrl::pimsim::Phase;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::pimsim::TimeBucket;
using swiftrl::pimsim::Timeline;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::Sampling;

PimSystem
makeSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 1u << 20;
    return PimSystem(cfg);
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t base)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(base + i);
    return v;
}

TEST(CommandStream, BlockingWrapperRecordsContiguousTimeline)
{
    auto system = makeSystem(4);
    const auto payload = pattern(256, 1);

    std::vector<std::span<const std::uint8_t>> chunks(
        4, std::span<const std::uint8_t>(payload));
    double summed = 0.0;
    summed += system.pushChunks(4096, chunks);
    summed += system.pushBroadcast(0, payload);
    summed += system.launch(
        [](swiftrl::pimsim::KernelContext &ctx) {
            ctx.aluOps(100);
        });
    std::vector<std::vector<std::uint8_t>> out;
    summed += system.gather(0, payload.size(), out);

    const auto &timeline = system.defaultStream().timeline();
    ASSERT_EQ(timeline.size(), 4u);
    const auto &events = timeline.events();

    // Intervals are non-overlapping, contiguous, and start at zero:
    // a single stream models one serialised host command queue.
    EXPECT_EQ(events.front().start, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_GE(events[i].end, events[i].start) << "event " << i;
        if (i > 0) {
            EXPECT_EQ(events[i].start, events[i - 1].end)
                << "gap or overlap before event " << i;
        }
        total += events[i].duration();
    }
    EXPECT_DOUBLE_EQ(total, summed);

    // sync() closes the interval spanning all four commands.
    EXPECT_DOUBLE_EQ(system.defaultStream().sync(), total);
    EXPECT_DOUBLE_EQ(system.defaultStream().sync(), 0.0);
    EXPECT_DOUBLE_EQ(system.defaultStream().now(), total);

    // Each wrapper mapped to its phase, in call order.
    EXPECT_EQ(events[0].phase, Phase::Scatter);
    EXPECT_EQ(events[1].phase, Phase::Broadcast);
    EXPECT_EQ(events[2].phase, Phase::Kernel);
    EXPECT_EQ(events[3].phase, Phase::Gather);

    // The gathered payload round-tripped through MRAM.
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[2], payload);
}

TEST(CommandStream, TimedGatherChargesExactlyTheFunctionalCost)
{
    auto system = makeSystem(3);
    CommandStream stream(system);
    const auto payload = pattern(512, 7);
    stream.pushBroadcast(0, payload);

    std::vector<std::vector<std::uint8_t>> out;
    const auto status = stream.gather(0, payload.size(), out);
    ASSERT_TRUE(status.ok());
    const double functional = status.seconds;
    const double timed = stream.gatherTimed(0, payload.size());
    EXPECT_EQ(timed, functional);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], payload);

    // Both gathers were recorded as events on the same track.
    EXPECT_EQ(stream.timeline().size(), 3u);
    EXPECT_DOUBLE_EQ(stream.timeline().totalForPhase(Phase::Gather),
                     functional + timed);
}

TEST(CommandStream, StreamsOnOneSystemKeepIndependentClocks)
{
    auto system = makeSystem(2);
    CommandStream a(system);
    CommandStream b(system);
    const auto payload = pattern(64, 3);

    a.pushBroadcast(0, payload);
    EXPECT_GT(a.now(), 0.0);
    EXPECT_EQ(b.now(), 0.0);
    EXPECT_TRUE(b.timeline().empty());

    // Functional state is shared: stream b reads what a wrote.
    std::vector<std::vector<std::uint8_t>> out;
    b.gather(0, payload.size(), out);
    EXPECT_EQ(out[1], payload);
}

TEST(CommandStream, HostReduceAndOnCoreComputeAdvanceTheClock)
{
    auto system = makeSystem(1);
    CommandStream stream(system);
    stream.hostReduce(1.5e-3);
    stream.onCoreCompute(0.5e-3, TimeBucket::InterCore);
    EXPECT_DOUBLE_EQ(stream.now(), 2.0e-3);
    EXPECT_DOUBLE_EQ(
        stream.timeline().totalForBucket(TimeBucket::InterCore),
        2.0e-3);
    EXPECT_DOUBLE_EQ(
        stream.timeline().totalForPhase(Phase::HostReduce), 1.5e-3);
}

/** A small real training run to exercise the full command sequence. */
swiftrl::PimTrainResult
trainLake(PimSystem &system)
{
    swiftrl::rlenv::FrozenLake env(true);
    const auto data = collectRandomDataset(env, 1500, 21);
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 20;
    cfg.tau = 5;
    return PimTrainer(system, cfg).train(data, 16, 4);
}

TEST(CommandStream, TrainerBreakdownDerivesFromItsTimeline)
{
    auto system = makeSystem(8);
    const auto result = trainLake(system);

    ASSERT_FALSE(result.timeline.empty());
    const auto derived = breakdownFromTimeline(result.timeline);
    EXPECT_EQ(derived.kernel, result.time.kernel);
    EXPECT_EQ(derived.cpuToPim, result.time.cpuToPim);
    EXPECT_EQ(derived.pimToCpu, result.time.pimToCpu);
    EXPECT_EQ(derived.interCore, result.time.interCore);

    // Bucket totals are the same sums in the same order.
    EXPECT_EQ(result.timeline.totalForBucket(TimeBucket::Kernel),
              result.time.kernel);
    EXPECT_EQ(result.timeline.totalForBucket(TimeBucket::InterCore),
              result.time.interCore);

    // The timeline spans the whole modelled run.
    EXPECT_DOUBLE_EQ(result.timeline.endTime(), result.time.total());
}

TEST(CommandStream, ChromeTraceExportsOneSlicePerCommand)
{
    auto system = makeSystem(8);
    const auto result = trainLake(system);

    std::ostringstream os;
    result.timeline.exportChromeTrace(os);
    const std::string json = os.str();

    // Structurally valid: brace/bracket balanced, object at the top.
    EXPECT_EQ(json.front(), '{');
    long braces = 0, brackets = 0;
    for (const char c : json) {
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    // One complete slice per enqueued command.
    std::size_t slices = 0;
    for (std::size_t pos = 0;
         (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
         ++pos)
        ++slices;
    EXPECT_EQ(slices, result.timeline.size());

    // Per-bucket slice durations (in trace microseconds) sum to the
    // reported breakdown. Events are one per line, so parse by line.
    double bucket_us[swiftrl::pimsim::kNumBuckets] = {};
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        const auto dur_at = line.find("\"dur\":");
        const auto bucket_at = line.find("\"bucket\":\"");
        ASSERT_NE(dur_at, std::string::npos);
        ASSERT_NE(bucket_at, std::string::npos);
        const double dur = std::stod(line.substr(dur_at + 6));
        const auto name_at = bucket_at + 10;
        const auto name =
            line.substr(name_at, line.find('"', name_at) - name_at);
        for (std::size_t b = 0; b < swiftrl::pimsim::kNumBuckets;
             ++b) {
            if (name ==
                bucketName(static_cast<TimeBucket>(b)))
                bucket_us[b] += dur;
        }
    }
    const auto expect_us = [&](TimeBucket bucket, double seconds) {
        EXPECT_NEAR(bucket_us[static_cast<std::size_t>(bucket)],
                    seconds * 1e6, 1e-6)
            << bucketName(bucket);
    };
    expect_us(TimeBucket::Kernel, result.time.kernel);
    expect_us(TimeBucket::CpuToPim, result.time.cpuToPim);
    expect_us(TimeBucket::PimToCpu, result.time.pimToCpu);
    expect_us(TimeBucket::InterCore, result.time.interCore);
}

/** Undo the exporter's JSON string escaping. */
std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out.push_back(s[i]);
            continue;
        }
        ++i;
        if (s[i] == 'u') {
            out.push_back(static_cast<char>(
                std::stoi(s.substr(i + 1, 4), nullptr, 16)));
            i += 4;
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

TEST(CommandStream, TraceEscapesLabelsLosslessly)
{
    // Labels with every character class the escaper must handle:
    // quotes, backslashes, and control characters (which used to be
    // silently dropped, making trace labels diverge from the labels
    // tools grep for). The exported slice name must unescape back to
    // the exact original label.
    const std::vector<std::string> labels = {
        "plain", "quo\"te", "back\\slash", "new\nline", "tab\there",
        "bell\x07", "mix\"\\\x1f",
    };
    auto system = makeSystem(1);
    CommandStream stream(system);
    for (const auto &label : labels)
        stream.recordHostSpan(Phase::HostCollect,
                              TimeBucket::HostCollect, 0.0, 1.0e-6,
                              label);

    std::ostringstream os;
    stream.timeline().exportChromeTrace(os);
    const std::string json = os.str();

    // Control characters never appear raw in valid JSON strings (the
    // exporter's own inter-event newlines are whitespace outside any
    // string, which is fine).
    for (const char c : json) {
        if (c != '\n') {
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
        }
    }

    // Each slice's name unescapes to the exact original label.
    std::istringstream lines(json);
    std::string line;
    std::vector<std::string> names;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        const auto at = line.find("{\"name\":\"") + 9;
        // Find the closing quote, skipping escaped ones.
        std::size_t end = at;
        while (line[end] != '"' || line[end - 1] == '\\') {
            // A literal backslash escape ("\\") must not hide the
            // closing quote that follows it.
            if (line[end] == '\\' && line[end + 1] == '\\')
                ++end;
            ++end;
        }
        names.push_back(jsonUnescape(line.substr(at, end - at)));
    }
    ASSERT_EQ(names.size(), labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
        EXPECT_EQ(names[i], labels[i]) << "label " << i;
}

TEST(CommandStreamDeath, OutOfBankTimedGatherIsFatal)
{
    auto system = makeSystem(1);
    CommandStream stream(system);
    // The timing-only path must fail exactly where the functional
    // gather would: one byte past the MRAM bank.
    EXPECT_EXIT((void)stream.gatherTimed((1u << 20) - 8, 16),
                ::testing::ExitedWithCode(1), "MRAM");
}

} // namespace
