/**
 * @file
 * Tests for the causal-tracing layer (src/telemetry/tracing).
 *
 * The load-bearing property is the observation-only contract: a run
 * with span retention enabled must be bit-identical — Q-tables,
 * modelled times, device cycle clocks, event-by-event timelines — to
 * the same run untraced, for both trainers and any host-pool size.
 * Around that, the span tree itself is checked (every session /
 * engine / serving span of a fleet run parents up to its fleet.job
 * span), along with the flight ring's wrap behaviour and the JSON
 * dumps' shape (parsed back with common/json).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "fleet/scheduler.hh"
#include "serving/policy_server.hh"
#include "swiftrl/swiftrl.hh"
#include "telemetry/tracing.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::PimTrainResult;
using swiftrl::StreamingConfig;
using swiftrl::StreamingResult;
using swiftrl::StreamingTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::Cycles;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;
using swiftrl::telemetry::ScopedSpanParent;
using swiftrl::telemetry::Span;
using swiftrl::telemetry::SpanRecord;
using swiftrl::telemetry::Tracer;
using swiftrl::telemetry::tracer;

namespace fleet = swiftrl::fleet;
namespace serving = swiftrl::serving;

/** RAII guard: spans retained inside the scope, tracer state wiped
 *  (or just wiped, for untraced reference runs) on both ends. */
class TracingScope
{
  public:
    explicit TracingScope(bool enable)
    {
        tracer().enableExport(false);
        tracer().resetForTest();
        tracer().enableExport(enable);
    }
    ~TracingScope()
    {
        tracer().enableExport(false);
        tracer().resetForTest();
    }
};

constexpr std::size_t kCores = 8;

Dataset
lakeData()
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, 2000, 11);
}

PimTrainConfig
offlineConfig()
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 20;
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    return cfg;
}

/** One offline run plus the device clocks it left behind. */
struct OfflineOutcome
{
    PimTrainResult result;
    Cycles maxCycles = 0;
    Cycles totalCycles = 0;
};

OfflineOutcome
runOffline(unsigned host_threads, bool traced)
{
    TracingScope scope(traced);
    PimConfig pim;
    pim.numDpus = kCores;
    pim.mramBytesPerDpu = 8u << 20;
    pim.hostThreads = host_threads;
    PimSystem system(pim);

    OfflineOutcome out;
    out.result =
        PimTrainer(system, offlineConfig()).train(lakeData(), 16, 4);
    out.maxCycles = system.maxCycles();
    out.totalCycles = system.totalCycles();
    return out;
}

StreamingResult
runStreaming(unsigned host_threads, bool traced)
{
    TracingScope scope(traced);
    StreamingConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Int32};
    cfg.hyper.episodes = 10;
    cfg.hyper.seed = 42;
    cfg.tau = 5;
    cfg.generations = 4;
    cfg.transitionsPerGeneration = 1024;
    cfg.refreshPeriod = 2;
    cfg.actors = 2;

    PimConfig pim;
    pim.numDpus = kCores;
    pim.mramBytesPerDpu = 8u << 20;
    pim.hostThreads = host_threads;
    PimSystem system(pim);
    return StreamingTrainer(system, cfg).train(
        [] {
            return std::make_unique<swiftrl::rlenv::FrozenLake>(
                true);
        },
        16, 4);
}

/** Bitwise equality of every modelled observable of two runs. */
void
expectIdenticalTimelines(const swiftrl::pimsim::Timeline &a,
                         const swiftrl::pimsim::Timeline &b)
{
    const auto &ea = a.events();
    const auto &eb = b.events();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].start, eb[i].start) << "event " << i;
        EXPECT_EQ(ea[i].end, eb[i].end) << "event " << i;
        EXPECT_EQ(ea[i].label, eb[i].label) << "event " << i;
    }
}

class TracedOfflineIdentity
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TracedOfflineIdentity, TracedRunBitIdenticalToUntraced)
{
    const unsigned pool = GetParam();
    const auto plain = runOffline(pool, false);
    const auto traced = runOffline(pool, true);

    EXPECT_EQ(QTable::maxAbsDifference(plain.result.finalQ,
                                       traced.result.finalQ),
              0.0f);
    EXPECT_EQ(plain.maxCycles, traced.maxCycles);
    EXPECT_EQ(plain.totalCycles, traced.totalCycles);
    EXPECT_EQ(plain.result.commRounds, traced.result.commRounds);
    EXPECT_EQ(plain.result.time.kernel, traced.result.time.kernel);
    EXPECT_EQ(plain.result.time.cpuToPim,
              traced.result.time.cpuToPim);
    EXPECT_EQ(plain.result.time.pimToCpu,
              traced.result.time.pimToCpu);
    EXPECT_EQ(plain.result.time.interCore,
              traced.result.time.interCore);
    expectIdenticalTimelines(plain.result.timeline,
                             traced.result.timeline);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, TracedOfflineIdentity,
                         ::testing::Values(1u, 2u, 8u));

class TracedStreamingIdentity
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TracedStreamingIdentity, TracedRunBitIdenticalToUntraced)
{
    const unsigned pool = GetParam();
    const auto plain = runStreaming(pool, false);
    const auto traced = runStreaming(pool, true);

    EXPECT_EQ(QTable::maxAbsDifference(plain.finalQ, traced.finalQ),
              0.0f);
    EXPECT_EQ(plain.commRounds, traced.commRounds);
    EXPECT_EQ(plain.transitions, traced.transitions);
    EXPECT_EQ(plain.time.kernel, traced.time.kernel);
    EXPECT_EQ(plain.time.cpuToPim, traced.time.cpuToPim);
    EXPECT_EQ(plain.time.pimToCpu, traced.time.pimToCpu);
    EXPECT_EQ(plain.time.interCore, traced.time.interCore);
    expectIdenticalTimelines(plain.timeline, traced.timeline);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, TracedStreamingIdentity,
                         ::testing::Values(1u, 2u, 8u));

/** The fleet acceptance property: every session/engine/serving span
 *  of a two-tenant fleet run transitively parents up to a fleet.job
 *  span. */
TEST(TracingFleet, EverySpanReachesItsFleetJobSpan)
{
    TracingScope scope(true);

    fleet::FleetConfig config;
    config.totalRanks = 2;
    config.dpusPerRank = 2;
    config.quantumRounds = 2;
    config.tenantWeights = {{"research", 2.0}, {"prod", 1.0}};

    auto make = [](const char *id, const char *tenant,
                   std::uint64_t seed) {
        fleet::JobSpec job;
        job.id = id;
        job.tenant = tenant;
        job.env = "frozenlake";
        job.ranks = 1;
        job.hyper.episodes = 10;
        job.tau = 5;
        job.transitions = 1'000;
        job.collectSeed = seed;
        job.hyper.seed = seed + 41;
        return job;
    };
    const std::vector<fleet::JobSpec> jobs = {
        make("r1", "research", 3), make("p1", "prod", 5)};

    fleet::FleetScheduler scheduler(config);
    const auto result = scheduler.run(jobs);
    ASSERT_EQ(result.jobs.size(), 2u);

    // Serve a few queries per job, parented on its fleet.job span —
    // the same wiring the CLI's fleet --serve path uses.
    for (const auto &job : result.jobs) {
        ASSERT_NE(job.traceSpanId, 0u);
        serving::ServingConfig serve_cfg;
        serve_cfg.traceParent = job.traceSpanId;
        serving::PolicyServer server(job.finalQ, serve_cfg);
        for (int i = 0; i < 4; ++i)
            EXPECT_GE(server.act(i % job.finalQ.numStates(),
                                 job.tenant),
                      0);
    }

    const auto spans = tracer().snapshot();
    std::map<std::uint64_t, const SpanRecord *> by_id;
    for (const auto &span : spans)
        by_id[span.id] = &span;

    std::set<std::uint64_t> job_span_ids;
    for (const auto &span : spans)
        if (span.name == "fleet.job")
            job_span_ids.insert(span.id);
    EXPECT_EQ(job_span_ids.size(), 2u);
    for (const auto &job : result.jobs)
        EXPECT_TRUE(job_span_ids.count(job.traceSpanId));

    std::size_t scoped = 0;
    for (const auto &span : spans) {
        if (span.category != "session" && span.category != "engine" &&
            span.category != "serving")
            continue;
        ++scoped;
        bool reached = false;
        std::uint64_t parent = span.parent;
        for (int hops = 0; parent != 0 && hops < 64; ++hops) {
            const auto it = by_id.find(parent);
            ASSERT_NE(it, by_id.end())
                << span.name << " has dangling parent " << parent;
            if (job_span_ids.count(parent)) {
                reached = true;
                break;
            }
            parent = it->second->parent;
        }
        EXPECT_TRUE(reached) << span.name << " (id " << span.id
                             << ") never reaches a fleet.job span";
    }
    // The property must have had teeth: all three categories showed.
    EXPECT_GT(scoped, 10u);
}

TEST(TracingFlightRing, WrapKeepsNewestEventsInOrder)
{
    TracingScope scope(false);
    const std::size_t total = Tracer::kFlightCapacity + 40;
    for (std::size_t i = 0; i < total; ++i)
        tracer().note("wrap event " + std::to_string(i));

    std::ostringstream text;
    tracer().dumpFlightText(text);
    // The oldest surviving event is total - capacity; everything
    // before it was overwritten.
    EXPECT_EQ(text.str().find("wrap event 39"), std::string::npos);
    EXPECT_NE(text.str().find("wrap event 40"), std::string::npos);
    EXPECT_NE(text.str().find(
                  "wrap event " + std::to_string(total - 1)),
              std::string::npos);

    const std::string path = ::testing::TempDir() + "flight_wrap.json";
    ASSERT_TRUE(tracer().writeFlightJson(path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = swiftrl::json::parseJson(buffer.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringOr("schema", ""), "swiftrl-flight-v1");
    const auto *events = doc->find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->elements.size(), Tracer::kFlightCapacity);
    double last_seq = -1.0;
    double last_t = -1.0;
    for (const auto &event : events->elements) {
        EXPECT_GT(event.numberOr("seq", -1.0), last_seq);
        EXPECT_GE(event.numberOr("t", -1.0), last_t);
        last_seq = event.numberOr("seq", -1.0);
        last_t = event.numberOr("t", -1.0);
    }
    std::remove(path.c_str());
}

TEST(TracingSpans, JsonDumpRoundTripsThroughTheParser)
{
    TracingScope scope(true);
    auto parent = tracer().begin("unit.parent", "session", "modelled",
                                 1.0);
    parent.attr("tenant", "quote\"and\\slash").attr("round", 3);
    auto child = tracer().begin("unit.child", "engine", "modelled",
                                1.25, parent.id());
    child.finish(1.5, "retried");
    parent.finish(2.0);

    const std::string path = ::testing::TempDir() + "spans_unit.json";
    ASSERT_TRUE(tracer().writeSpansJson(path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = swiftrl::json::parseJson(buffer.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->stringOr("schema", ""), "swiftrl-trace-v1");
    const auto *spans = doc->find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->isArray());
    ASSERT_EQ(spans->elements.size(), 2u);

    // Spans are retained in finish order: the child closes first.
    const auto &c = spans->elements[0];
    const auto &p = spans->elements[1];
    EXPECT_EQ(p.stringOr("name", ""), "unit.parent");
    EXPECT_EQ(p.stringOr("clock", ""), "modelled");
    EXPECT_EQ(p.numberOr("parent", -1.0), 0.0);
    EXPECT_EQ(p.numberOr("start", -1.0), 1.0);
    EXPECT_EQ(p.numberOr("end", -1.0), 2.0);
    EXPECT_EQ(p.stringOr("outcome", ""), "ok");
    const auto *attrs = p.find("attrs");
    ASSERT_NE(attrs, nullptr);
    EXPECT_EQ(attrs->stringOr("tenant", ""), "quote\"and\\slash");
    EXPECT_EQ(attrs->stringOr("round", ""), "3");

    EXPECT_EQ(c.stringOr("name", ""), "unit.child");
    EXPECT_EQ(c.numberOr("parent", -1.0),
              p.numberOr("id", -2.0));
    EXPECT_EQ(c.stringOr("outcome", ""), "retried");
    std::remove(path.c_str());
}

TEST(TracingSpans, LifecycleSemantics)
{
    TracingScope scope(true);

    // finish() is idempotent; the record is submitted exactly once.
    auto span = tracer().begin("unit.once", "session", "wall", 0.0);
    span.finish(1.0);
    span.finish(2.0, "retried");
    auto snap = tracer().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].end, 1.0);
    EXPECT_EQ(snap[0].outcome, "ok");

    // A destroyed-unfinished span is dropped silently.
    {
        auto dropped =
            tracer().begin("unit.dropped", "session", "wall", 0.0);
        (void)dropped;
    }
    EXPECT_EQ(tracer().snapshot().size(), 1u);

    // Moving transfers ownership: only the destination submits.
    auto a = tracer().begin("unit.moved", "session", "wall", 0.0);
    Span b = std::move(a);
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
    b.finish(3.0);
    EXPECT_EQ(tracer().snapshot().size(), 2u);

    // Ambient parent propagation nests and restores.
    EXPECT_EQ(swiftrl::telemetry::currentSpanParent(), 0u);
    {
        ScopedSpanParent outer(7);
        EXPECT_EQ(swiftrl::telemetry::currentSpanParent(), 7u);
        {
            ScopedSpanParent inner(9);
            EXPECT_EQ(swiftrl::telemetry::currentSpanParent(), 9u);
        }
        EXPECT_EQ(swiftrl::telemetry::currentSpanParent(), 7u);
    }
    EXPECT_EQ(swiftrl::telemetry::currentSpanParent(), 0u);
}

TEST(TracingSpans, RetentionGateDropsRecordsButKeepsIds)
{
    TracingScope scope(false);
    auto span =
        tracer().begin("unit.gated", "session", "wall", 0.0);
    const auto first_id = span.id();
    EXPECT_GT(first_id, 0u);
    span.finish(1.0);
    EXPECT_TRUE(tracer().snapshot().empty());

    tracer().enableExport(true);
    auto kept =
        tracer().begin("unit.kept", "session", "wall", 0.0);
    EXPECT_GT(kept.id(), first_id);
    kept.finish(1.0);
    EXPECT_EQ(tracer().snapshot().size(), 1u);
}

} // namespace
