/**
 * @file
 * Tests for the action-selection policies.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hh"
#include "rlcore/policy.hh"

namespace {

using swiftrl::common::Lcg32;
using swiftrl::common::XorShift128;
using swiftrl::rlcore::boltzmann;
using swiftrl::rlcore::epsilonGreedy;
using swiftrl::rlcore::epsilonGreedyLcg;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::randomAction;

TEST(Policy, RandomActionCoversSpace)
{
    XorShift128 rng(1);
    std::array<int, 6> histogram{};
    for (int i = 0; i < 6000; ++i)
        ++histogram[static_cast<std::size_t>(randomAction(6, rng))];
    for (const int c : histogram)
        EXPECT_GT(c, 800);
}

TEST(Policy, EpsilonZeroIsGreedy)
{
    QTable q(2, 4);
    q.at(0, 2) = 1.0f;
    XorShift128 rng(1);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(epsilonGreedy(q, 0, 0.0f, rng), 2);
}

TEST(Policy, EpsilonOneIsUniform)
{
    QTable q(1, 4);
    q.at(0, 3) = 100.0f;
    XorShift128 rng(1);
    std::array<int, 4> histogram{};
    for (int i = 0; i < 8000; ++i)
        ++histogram[static_cast<std::size_t>(
            epsilonGreedy(q, 0, 1.0f, rng))];
    for (const int c : histogram)
        EXPECT_GT(c, 1600);
}

TEST(Policy, IntermediateEpsilonMixes)
{
    QTable q(1, 4);
    q.at(0, 1) = 5.0f;
    XorShift128 rng(9);
    int greedy = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        greedy += epsilonGreedy(q, 0, 0.2f, rng) == 1 ? 1 : 0;
    // Greedy chosen with probability 0.8 + 0.2/4 = 0.85.
    EXPECT_GT(greedy, trials * 0.82);
    EXPECT_LT(greedy, trials * 0.88);
}

TEST(Policy, LcgVariantIsDeterministic)
{
    QTable q(1, 4);
    q.at(0, 2) = 1.0f;
    Lcg32 a(5), b(5);
    for (int i = 0; i < 200; ++i)
        ASSERT_EQ(epsilonGreedyLcg(q, 0, 0.1f, a),
                  epsilonGreedyLcg(q, 0, 0.1f, b));
}

TEST(Policy, LcgVariantGreedyWhenEpsilonZero)
{
    QTable q(1, 4);
    q.at(0, 3) = 2.0f;
    Lcg32 lcg(5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(epsilonGreedyLcg(q, 0, 0.0f, lcg), 3);
}

TEST(Policy, BoltzmannLowTemperatureIsGreedy)
{
    QTable q(1, 3);
    q.at(0, 0) = 0.0f;
    q.at(0, 1) = 1.0f;
    q.at(0, 2) = 0.5f;
    XorShift128 rng(2);
    int greedy = 0;
    for (int i = 0; i < 1000; ++i)
        greedy += boltzmann(q, 0, 0.01f, rng) == 1 ? 1 : 0;
    EXPECT_GT(greedy, 990);
}

TEST(Policy, BoltzmannHighTemperatureIsNearUniform)
{
    QTable q(1, 3);
    q.at(0, 1) = 1.0f;
    XorShift128 rng(2);
    std::array<int, 3> histogram{};
    for (int i = 0; i < 9000; ++i)
        ++histogram[static_cast<std::size_t>(
            boltzmann(q, 0, 1000.0f, rng))];
    for (const int c : histogram) {
        EXPECT_GT(c, 2700);
        EXPECT_LT(c, 3300);
    }
}

TEST(Policy, BoltzmannHandlesLargeValuesStably)
{
    QTable q(1, 2);
    q.at(0, 0) = 1.0e4f;
    q.at(0, 1) = 1.0e4f - 1.0f;
    XorShift128 rng(3);
    // Must not produce NaN-driven out-of-range actions.
    for (int i = 0; i < 100; ++i) {
        const auto a = boltzmann(q, 0, 1.0f, rng);
        ASSERT_GE(a, 0);
        ASSERT_LT(a, 2);
    }
}

} // namespace
