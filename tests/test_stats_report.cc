/**
 * @file
 * Tests for the device statistics report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pimsim/stats_report.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::pimsim::KernelContext;
using swiftrl::pimsim::OpClass;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::pimsim::StatsReport;

PimSystem
smallSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 1 << 20;
    return PimSystem(cfg);
}

TEST(StatsReport, EmptySystemIsAllZero)
{
    auto system = smallSystem(4);
    const auto r = StatsReport::fromSystem(system);
    EXPECT_EQ(r.numDpus, 4u);
    EXPECT_EQ(r.totalOps, 0u);
    EXPECT_EQ(r.maxCycles, 0u);
    EXPECT_EQ(r.dmaBytes, 0u);
    EXPECT_EQ(r.energyJoules, 0.0);
}

TEST(StatsReport, CountsRetiredOpsExactly)
{
    auto system = smallSystem(2);
    system.launch([](KernelContext &ctx) {
        ctx.fmul(1.0f, 2.0f);
        ctx.fmul(1.0f, 2.0f);
        ctx.iadd(1, 2);
    });
    const auto r = StatsReport::fromSystem(system);
    EXPECT_EQ(r.opCounts[static_cast<std::size_t>(OpClass::Fp32Mul)],
              4u); // 2 ops x 2 cores
    EXPECT_EQ(r.opCounts[static_cast<std::size_t>(OpClass::IntAlu)],
              2u);
    EXPECT_EQ(r.totalOps, 6u);
}

TEST(StatsReport, CycleSharesSumToOne)
{
    auto system = smallSystem(1);
    system.launch([](KernelContext &ctx) {
        ctx.fadd(1, 2);
        ctx.fmul(1, 2);
        ctx.iadd(1, 2);
        ctx.branch(3);
    });
    const auto r = StatsReport::fromSystem(system);
    double total = 0.0;
    for (std::size_t c = 0; c < swiftrl::pimsim::kNumOpClasses; ++c)
        total += r.cycleFraction(static_cast<OpClass>(c));
    EXPECT_NEAR(total, 1.0, 1e-12);
    // Softfloat dominates this mix.
    EXPECT_GT(r.cycleFraction(OpClass::Fp32Mul), 0.4);
}

TEST(StatsReport, ImbalanceDetectsSkewedLoad)
{
    auto system = smallSystem(2);
    system.launch([](KernelContext &ctx) {
        const int reps = ctx.dpuId() == 0 ? 30 : 10;
        for (int i = 0; i < reps; ++i)
            ctx.iadd(1, 1);
    });
    const auto r = StatsReport::fromSystem(system);
    // max = 30 units, mean = 20 units -> 1.5.
    EXPECT_NEAR(r.imbalance, 1.5, 1e-9);
}

TEST(StatsReport, DmaBytesAndIntensity)
{
    auto system = smallSystem(1);
    system.launch([](KernelContext &ctx) {
        std::uint8_t buf[64];
        ctx.mramToWram(0, buf, 64);
        for (int i = 0; i < 128; ++i)
            ctx.iadd(1, 1);
    });
    const auto r = StatsReport::fromSystem(system);
    EXPECT_EQ(r.dmaBytes, 64u);
    EXPECT_NEAR(r.arithmeticIntensity, 128.0 / 64.0, 1e-12);
}

TEST(StatsReport, Fp32KernelDominatedBySoftfloat)
{
    // The report must surface the paper's core cost observation.
    auto env = swiftrl::rlenv::makeEnvironment("frozenlake");
    const auto data =
        swiftrl::rlcore::collectRandomDataset(*env, 500, 1);
    auto system = smallSystem(2);
    swiftrl::PimTrainConfig cfg;
    cfg.workload = swiftrl::Workload{
        swiftrl::rlcore::Algorithm::QLearning,
        swiftrl::rlcore::Sampling::Seq,
        swiftrl::rlcore::NumericFormat::Fp32};
    cfg.hyper.episodes = 2;
    cfg.tau = 2;
    swiftrl::PimTrainer trainer(system, cfg);
    trainer.train(data, 16, 4);

    const auto r = StatsReport::fromSystem(system);
    const double softfloat = r.cycleFraction(OpClass::Fp32Add) +
                             r.cycleFraction(OpClass::Fp32Mul) +
                             r.cycleFraction(OpClass::Fp32Cmp);
    EXPECT_GT(softfloat, 0.8);
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GE(r.imbalance, 1.0);
}

TEST(StatsReport, PrintRendersAllSections)
{
    auto system = smallSystem(1);
    system.launch([](KernelContext &ctx) { ctx.fadd(1, 2); });
    const auto r = StatsReport::fromSystem(system);
    std::ostringstream oss;
    r.print(oss, "Test report");
    const auto out = oss.str();
    EXPECT_NE(out.find("Test report"), std::string::npos);
    EXPECT_NE(out.find("fp32_add"), std::string::npos);
    EXPECT_NE(out.find("energy estimate"), std::string::npos);
}

} // namespace
