/**
 * @file
 * Tests for behaviour-policy dataset collection.
 */

#include <gtest/gtest.h>

#include "rlcore/collection.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"

namespace {

using namespace swiftrl::rlcore;
using swiftrl::rlenv::FrozenLake;

TEST(Collection, RandomPolicyMatchesCollectRandomDataset)
{
    FrozenLake env_a(true), env_b(true);
    const auto via_policy = collectPolicyDataset(
        env_a, makeRandomPolicy(4), 2000, 9);
    const auto direct = collectRandomDataset(env_b, 2000, 9);
    // Same RNG discipline: one action draw then dynamics draws.
    ASSERT_EQ(via_policy.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        ASSERT_EQ(via_policy.get(i), direct.get(i));
}

TEST(Collection, ExactCount)
{
    FrozenLake env(true);
    const auto data = collectPolicyDataset(
        env, makeRandomPolicy(4), 777, 1);
    EXPECT_EQ(data.size(), 777u);
}

TEST(Collection, GreedyPolicyCollectsOnPolicyData)
{
    // A purely greedy policy over a trained table logs (mostly) its
    // own trajectory: action diversity collapses per state.
    FrozenLake env(false);
    const auto random_data = collectRandomDataset(env, 20000, 1);
    Hyper h;
    h.episodes = 50;
    const auto q = trainCpuReference(Algorithm::QLearning,
                                     random_data, 16, 4, h,
                                     Sampling::Seq,
                                     NumericFormat::Fp32);

    FrozenLake env2(false);
    const auto greedy_data = collectPolicyDataset(
        env2, makeEpsilonGreedyPolicy(q, 0.0f), 600, 2);
    for (std::size_t i = 0; i < greedy_data.size(); ++i) {
        const auto t = greedy_data.get(i);
        ASSERT_EQ(t.action, q.greedyAction(t.state));
    }
}

TEST(Collection, EpsilonControlsCoverage)
{
    FrozenLake env_greedy(true), env_explore(true);
    QTable q(16, 4); // zero table: greedy always picks action 0
    const auto greedy = collectPolicyDataset(
        env_greedy, makeEpsilonGreedyPolicy(q, 0.0f), 3000, 3);
    const auto exploring = collectPolicyDataset(
        env_explore, makeEpsilonGreedyPolicy(q, 1.0f), 3000, 3);

    auto distinct_actions = [](const Dataset &d) {
        std::set<ActionId> seen;
        for (std::size_t i = 0; i < d.size(); ++i)
            seen.insert(d.get(i).action);
        return seen.size();
    };
    EXPECT_EQ(distinct_actions(greedy), 1u);
    EXPECT_EQ(distinct_actions(exploring), 4u);
}

TEST(Collection, BoltzmannPolicyCollects)
{
    FrozenLake env(true);
    QTable q(16, 4);
    q.initArbitrary(5);
    const auto data = collectPolicyDataset(
        env, makeBoltzmannPolicy(q, 1.0f), 1000, 4);
    EXPECT_EQ(data.size(), 1000u);
    std::set<ActionId> seen;
    for (std::size_t i = 0; i < data.size(); ++i)
        seen.insert(data.get(i).action);
    EXPECT_EQ(seen.size(), 4u); // high temperature explores
}

TEST(Collection, MixedPolicyDataTrainsBetterThanItsSource)
{
    // The offline-RL improvement property: training on data from a
    // mediocre epsilon-greedy behaviour policy yields a greedy
    // policy at least as good as the behaviour policy's base table.
    FrozenLake env(true);
    const auto seed_data = collectRandomDataset(env, 50000, 1);
    Hyper h;
    h.episodes = 10;
    const auto weak = trainCpuReference(Algorithm::QLearning,
                                        seed_data, 16, 4, h,
                                        Sampling::Seq,
                                        NumericFormat::Fp32);

    FrozenLake env2(true);
    const auto mixed = collectPolicyDataset(
        env2, makeEpsilonGreedyPolicy(weak, 0.4f), 200'000, 2);
    h.episodes = 30;
    const auto improved = trainCpuReference(Algorithm::QLearning,
                                            mixed, 16, 4, h,
                                            Sampling::Seq,
                                            NumericFormat::Fp32);

    FrozenLake eval_a(true), eval_b(true);
    const auto weak_eval = evaluateGreedy(eval_a, weak, 1000, 7);
    const auto improved_eval =
        evaluateGreedy(eval_b, improved, 1000, 7);
    EXPECT_GE(improved_eval.meanReward,
              weak_eval.meanReward - 0.05);
}

} // namespace
