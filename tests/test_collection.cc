/**
 * @file
 * Tests for behaviour-policy dataset collection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rlcore/collection.hh"
#include "rlcore/evaluate.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"

namespace {

using namespace swiftrl::rlcore;
using swiftrl::rlenv::FrozenLake;

TEST(Collection, RandomPolicyMatchesCollectRandomDataset)
{
    FrozenLake env_a(true), env_b(true);
    const auto via_policy = collectPolicyDataset(
        env_a, makeRandomPolicy(4), 2000, 9);
    const auto direct = collectRandomDataset(env_b, 2000, 9);
    // Same RNG discipline: one action draw then dynamics draws.
    ASSERT_EQ(via_policy.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        ASSERT_EQ(via_policy.get(i), direct.get(i));
}

TEST(Collection, ExactCount)
{
    FrozenLake env(true);
    const auto data = collectPolicyDataset(
        env, makeRandomPolicy(4), 777, 1);
    EXPECT_EQ(data.size(), 777u);
}

TEST(Collection, GreedyPolicyCollectsOnPolicyData)
{
    // A purely greedy policy over a trained table logs (mostly) its
    // own trajectory: action diversity collapses per state.
    FrozenLake env(false);
    const auto random_data = collectRandomDataset(env, 20000, 1);
    Hyper h;
    h.episodes = 50;
    const auto q = trainCpuReference(Algorithm::QLearning,
                                     random_data, 16, 4, h,
                                     Sampling::Seq,
                                     NumericFormat::Fp32);

    FrozenLake env2(false);
    const auto greedy_data = collectPolicyDataset(
        env2, makeEpsilonGreedyPolicy(q, 0.0f), 600, 2);
    for (std::size_t i = 0; i < greedy_data.size(); ++i) {
        const auto t = greedy_data.get(i);
        ASSERT_EQ(t.action, q.greedyAction(t.state));
    }
}

TEST(Collection, EpsilonControlsCoverage)
{
    FrozenLake env_greedy(true), env_explore(true);
    QTable q(16, 4); // zero table: greedy always picks action 0
    const auto greedy = collectPolicyDataset(
        env_greedy, makeEpsilonGreedyPolicy(q, 0.0f), 3000, 3);
    const auto exploring = collectPolicyDataset(
        env_explore, makeEpsilonGreedyPolicy(q, 1.0f), 3000, 3);

    auto distinct_actions = [](const Dataset &d) {
        std::set<ActionId> seen;
        for (std::size_t i = 0; i < d.size(); ++i)
            seen.insert(d.get(i).action);
        return seen.size();
    };
    EXPECT_EQ(distinct_actions(greedy), 1u);
    EXPECT_EQ(distinct_actions(exploring), 4u);
}

TEST(Collection, BoltzmannPolicyCollects)
{
    FrozenLake env(true);
    QTable q(16, 4);
    q.initArbitrary(5);
    const auto data = collectPolicyDataset(
        env, makeBoltzmannPolicy(q, 1.0f), 1000, 4);
    EXPECT_EQ(data.size(), 1000u);
    std::set<ActionId> seen;
    for (std::size_t i = 0; i < data.size(); ++i)
        seen.insert(data.get(i).action);
    EXPECT_EQ(seen.size(), 4u); // high temperature explores
}

// --- block-granular collection (streaming extension) ----------------

std::unique_ptr<swiftrl::rlenv::Environment>
makeSlipperyLake()
{
    return std::make_unique<FrozenLake>(true);
}

void
expectSameData(const Dataset &a, const Dataset &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.get(i), b.get(i)) << "transition " << i;
}

TEST(CollectionBlocks, ExactCountWhenNotDivisible)
{
    // 1000 = 7 full blocks of 128 plus a short tail of 104.
    const auto blocks = collectPolicyBlocks(
        makeSlipperyLake, makeRandomPolicy(4), 1000, 128, 5);
    ASSERT_EQ(blocks.size(), 8u);
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i)
        EXPECT_EQ(blocks[i].size(), 128u) << "block " << i;
    EXPECT_EQ(blocks.back().size(), 104u);
    EXPECT_EQ(concatBlocks(blocks).size(), 1000u);
}

TEST(CollectionBlocks, ThreadCountNeverChangesTheData)
{
    const auto reference = concatBlocks(collectPolicyBlocks(
        makeSlipperyLake, makeRandomPolicy(4), 3000, 256, 6, 1));
    for (const unsigned threads : {3u, 8u}) {
        const auto parallel = concatBlocks(collectPolicyBlocks(
            makeSlipperyLake, makeRandomPolicy(4), 3000, 256, 6,
            threads));
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectSameData(reference, parallel);
    }
}

TEST(CollectionBlocks, BlocksAreIndependentOfEachOther)
{
    // Block i depends only on (policy, seed, i): collecting a single
    // block's worth reproduces block 0 of the full run exactly.
    const auto full = collectPolicyBlocks(
        makeSlipperyLake, makeRandomPolicy(4), 512, 128, 7);
    const auto lone = collectPolicyBlocks(
        makeSlipperyLake, makeRandomPolicy(4), 128, 128, 7);
    ASSERT_EQ(lone.size(), 1u);
    expectSameData(full[0], lone[0]);
}

TEST(CollectionBlocks, EpisodeResetExactlyAtBlockEdge)
{
    // On the non-slippery lake this policy walks S->G in exactly 6
    // steps: 0 ->R 1 ->R 2 ->D 6 ->D 10 ->D 14 ->R 15 (goal). With
    // 6-transition blocks every block is one complete episode that
    // terminates exactly on the block edge, and the next block must
    // start from a fresh reset (state 0) like any other block.
    const BehaviourPolicy solver =
        [](StateId s, swiftrl::common::XorShift128 &) -> ActionId {
        switch (s) {
        case 2:
        case 6:
        case 10:
            return 1; // Down
        default:
            return 2; // Right
        }
    };
    const auto blocks = collectPolicyBlocks(
        [] { return std::make_unique<FrozenLake>(false); }, solver,
        24, 6, 9);
    ASSERT_EQ(blocks.size(), 4u);
    const StateId path[6] = {0, 1, 2, 6, 10, 14};
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        SCOPED_TRACE("block " + std::to_string(b));
        ASSERT_EQ(blocks[b].size(), 6u);
        for (std::size_t i = 0; i < 6; ++i) {
            const auto t = blocks[b].get(i);
            EXPECT_EQ(t.state, path[i]);
            EXPECT_EQ(t.terminal, i == 5);
        }
        EXPECT_EQ(blocks[b].get(5).nextState, 15);
        EXPECT_EQ(blocks[b].get(5).reward, 1.0f);
    }
}

TEST(Collection, MixedPolicyDataTrainsBetterThanItsSource)
{
    // The offline-RL improvement property: training on data from a
    // mediocre epsilon-greedy behaviour policy yields a greedy
    // policy at least as good as the behaviour policy's base table.
    FrozenLake env(true);
    const auto seed_data = collectRandomDataset(env, 50000, 1);
    Hyper h;
    h.episodes = 10;
    const auto weak = trainCpuReference(Algorithm::QLearning,
                                        seed_data, 16, 4, h,
                                        Sampling::Seq,
                                        NumericFormat::Fp32);

    FrozenLake env2(true);
    const auto mixed = collectPolicyDataset(
        env2, makeEpsilonGreedyPolicy(weak, 0.4f), 200'000, 2);
    h.episodes = 30;
    const auto improved = trainCpuReference(Algorithm::QLearning,
                                            mixed, 16, 4, h,
                                            Sampling::Seq,
                                            NumericFormat::Fp32);

    FrozenLake eval_a(true), eval_b(true);
    const auto weak_eval = evaluateGreedy(eval_a, weak, 1000, 7);
    const auto improved_eval =
        evaluateGreedy(eval_b, improved, 1000, 7);
    EXPECT_GE(improved_eval.meanReward,
              weak_eval.meanReward - 0.05);
}

} // namespace
