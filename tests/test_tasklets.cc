/**
 * @file
 * Tests for multi-tasklet training (the paper's future-work
 * extension): thread-level parallelism within each PIM core.
 */

#include <gtest/gtest.h>

#include "rlcore/evaluate.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::PimTrainConfig;
using swiftrl::PimTrainer;
using swiftrl::Workload;
using swiftrl::pimsim::PimConfig;
using swiftrl::pimsim::PimSystem;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;

PimSystem
makeSystem(std::size_t dpus)
{
    PimConfig cfg;
    cfg.numDpus = dpus;
    cfg.mramBytesPerDpu = 8u << 20;
    return PimSystem(cfg);
}

Dataset
lakeData(std::size_t n, std::uint64_t seed)
{
    swiftrl::rlenv::FrozenLake env(true);
    return collectRandomDataset(env, n, seed);
}

PimTrainConfig
config(unsigned tasklets, int episodes = 10,
       Sampling sampling = Sampling::Seq)
{
    PimTrainConfig cfg;
    cfg.workload = Workload{Algorithm::QLearning, sampling,
                            NumericFormat::Int32};
    cfg.hyper.episodes = episodes;
    cfg.tau = episodes;
    cfg.tasklets = tasklets;
    return cfg;
}

TEST(Tasklets, DefaultSingleTaskletUnchanged)
{
    const auto data = lakeData(600, 1);
    auto sys_a = makeSystem(4);
    auto sys_b = makeSystem(4);
    auto cfg = config(1);
    const auto a = PimTrainer(sys_a, cfg).train(data, 16, 4);
    const auto b = PimTrainer(sys_b, cfg).train(data, 16, 4);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);
}

TEST(Tasklets, MultiTaskletIsDeterministic)
{
    const auto data = lakeData(1000, 2);
    auto sys_a = makeSystem(4);
    auto sys_b = makeSystem(4);
    const auto cfg = config(4, 10, Sampling::Ran);
    const auto a = PimTrainer(sys_a, cfg).train(data, 16, 4);
    const auto b = PimTrainer(sys_b, cfg).train(data, 16, 4);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);
    EXPECT_DOUBLE_EQ(a.time.kernel, b.time.kernel);
}

/** Property sweep: kernel speedup tracks min(t, pipeline interval). */
class TaskletSpeedup : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TaskletSpeedup, FollowsPipelineModel)
{
    const unsigned t = GetParam();
    const auto data = lakeData(4096, 3);
    auto sys_base = makeSystem(2);
    auto sys_multi = makeSystem(2);
    const auto base =
        PimTrainer(sys_base, config(1)).train(data, 16, 4);
    const auto multi =
        PimTrainer(sys_multi, config(t)).train(data, 16, 4);

    const auto interval =
        swiftrl::pimsim::DpuCostModel{}.pipelineInterval;
    const double expected =
        static_cast<double>(std::min<swiftrl::pimsim::Cycles>(
            t, interval));
    const double speedup = base.time.kernel / multi.time.kernel;
    // Sub-chunk imbalance and per-tasklet LCG restore overhead keep
    // the measured speedup a little under the model.
    EXPECT_GT(speedup, expected * 0.80);
    EXPECT_LE(speedup, expected * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TaskletSpeedup,
                         ::testing::Values(2u, 4u, 8u, 11u, 16u));

TEST(Tasklets, SixteenTaskletsCapAtPipelineDepth)
{
    const auto data = lakeData(4096, 3);
    auto sys_11 = makeSystem(2);
    auto sys_16 = makeSystem(2);
    const auto t11 =
        PimTrainer(sys_11, config(11)).train(data, 16, 4);
    const auto t16 =
        PimTrainer(sys_16, config(16)).train(data, 16, 4);
    // Beyond the pipeline depth, extra tasklets buy (almost) nothing.
    EXPECT_NEAR(t16.time.kernel / t11.time.kernel, 1.0, 0.15);
}

TEST(Tasklets, MultiTaskletStillLearns)
{
    const auto data = lakeData(20000, 4);
    auto system = makeSystem(4);
    auto cfg = config(8, 60);
    cfg.tau = 20;
    const auto result = PimTrainer(system, cfg).train(data, 16, 4);
    swiftrl::rlenv::FrozenLake env(true);
    const auto eval = evaluateGreedy(env, result.finalQ, 500, 7);
    EXPECT_GT(eval.meanReward, 0.3);
}

TEST(Tasklets, EveryWorkloadVariantRunsMultiTasklet)
{
    const auto data = lakeData(2000, 5);
    for (const auto &workload : swiftrl::allWorkloads()) {
        auto system = makeSystem(2);
        PimTrainConfig cfg;
        cfg.workload = workload;
        cfg.hyper.episodes = 2;
        cfg.tau = 2;
        cfg.tasklets = 4;
        const auto result =
            PimTrainer(system, cfg).train(data, 16, 4);
        EXPECT_GT(result.time.kernel, 0.0) << workload.name();
        EXPECT_LE(result.finalQ.maxAbsValue(), 20.0f + 1e-3f)
            << workload.name();
    }
}

TEST(Tasklets, MoreTaskletsThanChunkLeavesSomeIdle)
{
    // 8 transitions on 1 core with 16 tasklets: half the tasklets
    // are idle; training must still proceed and stay in bounds.
    const auto data = lakeData(8, 6);
    auto system = makeSystem(1);
    const auto result =
        PimTrainer(system, config(16, 4)).train(data, 16, 4);
    EXPECT_GT(result.time.kernel, 0.0);
}

TEST(TaskletsDeath, ZeroTaskletsIsFatal)
{
    auto system = makeSystem(1);
    auto cfg = config(1);
    cfg.tasklets = 0;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "tasklets");
}

TEST(TaskletsDeath, TooManyTaskletsIsFatal)
{
    auto system = makeSystem(1);
    auto cfg = config(1);
    cfg.tasklets = 25;
    EXPECT_EXIT(PimTrainer(system, cfg), ::testing::ExitedWithCode(1),
                "1-24 tasklets");
}

} // namespace
