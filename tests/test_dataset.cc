/**
 * @file
 * Tests for offline dataset collection and the packed MRAM layouts.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "rlcore/dataset.hh"
#include "rlcore/trainers.hh"
#include "rlenv/frozen_lake.hh"
#include "rlenv/registry.hh"
#include "rlenv/taxi.hh"

namespace {

using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::Dataset;
using swiftrl::rlcore::PackedTransition;
using swiftrl::rlcore::quantizeReward;
using swiftrl::rlcore::Transition;

TEST(Dataset, AppendAndGetRoundtrip)
{
    Dataset d;
    Transition t;
    t.state = 3;
    t.action = 1;
    t.reward = -0.5f;
    t.nextState = 7;
    t.terminal = true;
    d.append(t);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d.get(0), t);
}

TEST(Dataset, CollectProducesExactCount)
{
    swiftrl::rlenv::FrozenLake env;
    const auto data = collectRandomDataset(env, 5000, 42);
    EXPECT_EQ(data.size(), 5000u);
}

TEST(Dataset, CollectIsDeterministicPerSeed)
{
    swiftrl::rlenv::FrozenLake env_a, env_b;
    const auto a = collectRandomDataset(env_a, 1000, 7);
    const auto b = collectRandomDataset(env_b, 1000, 7);
    for (std::size_t i = 0; i < 1000; ++i)
        ASSERT_EQ(a.get(i), b.get(i));
}

TEST(Dataset, CollectDiffersAcrossSeeds)
{
    swiftrl::rlenv::FrozenLake env_a, env_b;
    const auto a = collectRandomDataset(env_a, 1000, 7);
    const auto b = collectRandomDataset(env_b, 1000, 8);
    int differing = 0;
    for (std::size_t i = 0; i < 1000; ++i)
        differing += a.get(i) == b.get(i) ? 0 : 1;
    EXPECT_GT(differing, 100);
}

TEST(Dataset, TrajectoriesChainUntilTerminal)
{
    swiftrl::rlenv::FrozenLake env;
    const auto data = collectRandomDataset(env, 2000, 3);
    for (std::size_t i = 0; i + 1 < data.size(); ++i) {
        const auto cur = data.get(i);
        const auto nxt = data.get(i + 1);
        if (!cur.terminal && nxt.state != cur.nextState) {
            // A non-terminal break can only be a time-limit
            // truncation restart; FrozenLake restarts at state 0.
            EXPECT_EQ(nxt.state, 0);
        }
        if (cur.terminal) {
            // After termination the next episode starts at 0.
            EXPECT_EQ(nxt.state, 0);
        }
    }
}

TEST(Dataset, CollectCoversStateSpace)
{
    swiftrl::rlenv::FrozenLake env;
    const auto data = collectRandomDataset(env, 20000, 1);
    std::set<swiftrl::rlcore::StateId> visited;
    for (std::size_t i = 0; i < data.size(); ++i)
        visited.insert(data.get(i).state);
    // Random walks reach most reachable tiles (holes/goal are only
    // next-states, never sources).
    EXPECT_GE(visited.size(), 10u);
}

TEST(Dataset, PackFp32Roundtrip)
{
    Dataset d;
    Transition t;
    t.state = 12;
    t.action = 3;
    t.reward = 1.0f;
    t.nextState = 15;
    t.terminal = true;
    d.append(t);

    const auto bytes = d.packFp32(0, 1);
    ASSERT_EQ(bytes.size(), sizeof(PackedTransition));
    PackedTransition p;
    std::memcpy(&p, bytes.data(), sizeof(p));
    EXPECT_EQ(Dataset::unpackFp32(p), t);
}

TEST(Dataset, PackInt32QuantisesReward)
{
    Dataset d;
    Transition t;
    t.state = 1;
    t.action = 2;
    t.reward = -8.6f;
    t.nextState = 3;
    t.terminal = false;
    d.append(t);

    const auto bytes = d.packInt32(0, 1, 10000);
    PackedTransition p;
    std::memcpy(&p, bytes.data(), sizeof(p));
    EXPECT_EQ(p.rewardBits, -86000);
    const auto back = Dataset::unpackInt32(p, 10000);
    EXPECT_NEAR(back.reward, -8.6f, 1e-4f);
    EXPECT_EQ(back.state, t.state);
    EXPECT_EQ(back.nextState, t.nextState);
    EXPECT_FALSE(back.terminal);
}

TEST(Dataset, TerminalBitDoesNotCorruptState)
{
    Dataset d;
    Transition t;
    t.state = 0;
    t.action = 0;
    t.reward = 0.0f;
    t.nextState = 499; // taxi's largest state id
    t.terminal = true;
    d.append(t);
    const auto bytes = d.packFp32(0, 1);
    PackedTransition p;
    std::memcpy(&p, bytes.data(), sizeof(p));
    EXPECT_TRUE(p.nextStateBits & PackedTransition::kTerminalBit);
    EXPECT_EQ(Dataset::unpackFp32(p).nextState, 499);
}

TEST(Dataset, PackRangeSelectsSubsets)
{
    Dataset d;
    for (int i = 0; i < 10; ++i) {
        Transition t;
        t.state = i;
        d.append(t);
    }
    const auto bytes = d.packFp32(4, 3);
    ASSERT_EQ(bytes.size(), 3 * sizeof(PackedTransition));
    for (int i = 0; i < 3; ++i) {
        PackedTransition p;
        std::memcpy(&p, bytes.data() + static_cast<std::size_t>(i) *
                            sizeof(PackedTransition),
                    sizeof(p));
        EXPECT_EQ(p.state, 4 + i);
    }
}

TEST(Dataset, QuantizeRewardRounds)
{
    EXPECT_EQ(quantizeReward(1.0f, 10000), 10000);
    EXPECT_EQ(quantizeReward(-1.0f, 10000), -10000);
    EXPECT_EQ(quantizeReward(0.00004f, 10000), 0);
    EXPECT_EQ(quantizeReward(0.00006f, 10000), 1);
    EXPECT_EQ(quantizeReward(20.0f, 10000), 200000);
    EXPECT_EQ(quantizeReward(-10.0f, 10000), -100000);
}

TEST(Dataset, TaxiCollectionHasPaperRewardStructure)
{
    swiftrl::rlenv::Taxi env;
    const auto data = collectRandomDataset(env, 20000, 5);
    bool saw_step = false, saw_illegal = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const float r = data.get(i).reward;
        ASSERT_TRUE(r == -1.0f || r == -10.0f || r == 20.0f)
            << "unexpected reward " << r;
        saw_step |= r == -1.0f;
        saw_illegal |= r == -10.0f;
    }
    EXPECT_TRUE(saw_step);
    EXPECT_TRUE(saw_illegal);
}

TEST(DatasetDeath, PackOutOfRangePanics)
{
    Dataset d;
    d.append(Transition{});
    EXPECT_DEATH((void)d.packFp32(0, 2), "out of bounds");
}

TEST(DatasetDeath, GetOutOfRangePanics)
{
    Dataset d;
    EXPECT_DEATH((void)d.get(0), "out of range");
}

} // namespace
