/**
 * @file
 * Charge-ledger parity: the batched KernelContext must be
 * observationally identical to the write-through
 * ReferenceKernelContext on real training kernels — same cycles,
 * same per-class op counts, same DMA bytes, same functional results
 * (Q-table MRAM bytes, LCG states). This is the test that pins the
 * hot-path batching to the pre-ledger charging semantics bit for
 * bit, across every algorithm x sampling x format variant.
 */

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "pimsim/dpu.hh"
#include "pimsim/kernel_context.hh"
#include "rlcore/dataset.hh"
#include "rlcore/seeds.hh"
#include "rlenv/registry.hh"
#include "swiftrl/pim_kernels.hh"
#include "swiftrl/workload.hh"

namespace {

using swiftrl::KernelParams;
using swiftrl::Workload;
using swiftrl::pimsim::Cycles;
using swiftrl::pimsim::Dpu;
using swiftrl::pimsim::DpuCostModel;
using swiftrl::pimsim::KernelContext;
using swiftrl::pimsim::kNumOpClasses;
using swiftrl::pimsim::ReferenceKernelContext;
using swiftrl::rlcore::NumericFormat;

/** Everything observable about one kernel run on one core. */
struct RunResult
{
    Cycles cycles = 0;
    std::array<std::uint64_t, kNumOpClasses> opCounts{};
    std::uint64_t dmaBytes = 0;
    std::vector<std::uint8_t> qBytes;
    std::vector<std::uint8_t> visitBytes;
    std::vector<std::uint32_t> lcg;
};

constexpr std::size_t kDataOffset = 64 * 1024;
constexpr std::size_t kVisitsOffset = 256 * 1024;

/** Run one training launch through the given context type. */
template <typename Ctx>
RunResult
runVariant(const Workload &w, const swiftrl::rlcore::Dataset &data,
           swiftrl::rlcore::StateId num_states,
           swiftrl::rlcore::ActionId num_actions,
           unsigned tasklets = 1, bool track_visits = false)
{
    Dpu dpu(0, 8u << 20);
    const DpuCostModel model;

    swiftrl::rlcore::Hyper hyper;
    hyper.episodes = 3;
    const std::int32_t scale = w.format == NumericFormat::Int8
                                   ? (1 << hyper.int8Shift)
                                   : hyper.scale;
    const auto payload =
        w.format == NumericFormat::Fp32
            ? data.packFp32(0, data.size())
            : data.packInt32(0, data.size(), scale);
    dpu.mramWrite(kDataOffset, payload.data(), payload.size());

    std::vector<std::size_t> counts{data.size()};
    std::vector<std::uint32_t> lcg(tasklets);
    for (unsigned t = 0; t < tasklets; ++t)
        lcg[t] = swiftrl::rlcore::deriveLcgSeed(hyper.seed, t);

    KernelParams p;
    p.workload = w;
    p.hyper = hyper;
    p.numStates = num_states;
    p.numActions = num_actions;
    p.qOffset = 0;
    p.dataOffset = kDataOffset;
    p.episodes = hyper.episodes;
    p.chunkCounts = &counts;
    p.lcgStates = &lcg;
    p.tasklets = tasklets;
    p.trackVisits = track_visits;
    p.visitsOffset = kVisitsOffset;

    RunResult r;
    {
        Ctx ctx(dpu, model, 64 * 1024);
        swiftrl::runTrainingKernel(ctx, p);
        ctx.flush();
        r.cycles = ctx.cycles();
    }
    r.opCounts = dpu.opCounts();
    r.dmaBytes = dpu.dmaBytes();
    const std::size_t q_bytes = static_cast<std::size_t>(num_states) *
                                static_cast<std::size_t>(num_actions) *
                                4;
    r.qBytes.resize(q_bytes);
    dpu.mramRead(0, r.qBytes.data(), q_bytes);
    if (track_visits) {
        r.visitBytes.resize(q_bytes);
        dpu.mramRead(kVisitsOffset, r.visitBytes.data(), q_bytes);
    }
    r.lcg = lcg;
    return r;
}

void
expectIdentical(const RunResult &batched, const RunResult &reference)
{
    EXPECT_EQ(batched.cycles, reference.cycles);
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        EXPECT_EQ(batched.opCounts[i], reference.opCounts[i])
            << "op class " << i;
    }
    EXPECT_EQ(batched.dmaBytes, reference.dmaBytes);
    EXPECT_EQ(batched.qBytes, reference.qBytes);
    EXPECT_EQ(batched.visitBytes, reference.visitBytes);
    EXPECT_EQ(batched.lcg, reference.lcg);
}

class ChargeLedger : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _env = swiftrl::rlenv::makeEnvironment("frozenlake");
        _data = swiftrl::rlcore::collectRandomDataset(*_env, 600, 7);
    }

    std::unique_ptr<swiftrl::rlenv::Environment> _env;
    swiftrl::rlcore::Dataset _data;
};

TEST_F(ChargeLedger, MatchesReferenceOnEveryWorkloadVariant)
{
    // All 18 variants: {QL, SARSA} x {SEQ, RAN, STR} x
    // {FP32, INT32, INT8} (frozen lake fits the INT8 range caveat).
    for (const Workload &w : swiftrl::extendedWorkloads()) {
        SCOPED_TRACE(w.name());
        const auto batched = runVariant<KernelContext>(
            w, _data, _env->numStates(), _env->numActions());
        const auto reference = runVariant<ReferenceKernelContext>(
            w, _data, _env->numStates(), _env->numActions());
        expectIdentical(batched, reference);
        // The run must have charged real work for parity to mean
        // anything.
        EXPECT_GT(batched.cycles, 0u);
        EXPECT_GT(batched.dmaBytes, 0u);
    }
}

TEST_F(ChargeLedger, MatchesReferenceWithMultipleTasklets)
{
    for (const auto sampling :
         {swiftrl::rlcore::Sampling::Seq,
          swiftrl::rlcore::Sampling::Ran}) {
        Workload w;
        w.sampling = sampling;
        SCOPED_TRACE(w.name());
        const auto batched = runVariant<KernelContext>(
            w, _data, _env->numStates(), _env->numActions(), 3);
        const auto reference = runVariant<ReferenceKernelContext>(
            w, _data, _env->numStates(), _env->numActions(), 3);
        expectIdentical(batched, reference);
    }
}

TEST_F(ChargeLedger, MatchesReferenceWithVisitTracking)
{
    Workload w;
    const auto batched = runVariant<KernelContext>(
        w, _data, _env->numStates(), _env->numActions(), 1, true);
    const auto reference = runVariant<ReferenceKernelContext>(
        w, _data, _env->numStates(), _env->numActions(), 1, true);
    expectIdentical(batched, reference);
    EXPECT_FALSE(batched.visitBytes.empty());
}

TEST(ChargeLedgerUnit, CyclesReadableMidKernelWithoutFlush)
{
    Dpu batched_dpu(0, 1 << 20), reference_dpu(0, 1 << 20);
    const DpuCostModel model;
    // Named by policy, not by the KernelContext alias: this test pins
    // ledger semantics and must test Batched even under
    // SWIFTRL_REFERENCE_CHARGING builds.
    swiftrl::pimsim::BasicKernelContext<
        swiftrl::pimsim::ChargePolicy::Batched>
        batched(batched_dpu, model, 64 * 1024);
    ReferenceKernelContext reference(reference_dpu, model, 64 * 1024);

    // Interleave priced ops and pending-state reads: cycles() folds
    // the ledger in without committing it.
    for (int i = 0; i < 5; ++i) {
        batched.fadd(1.0f, 2.0f);
        reference.fadd(1.0f, 2.0f);
        batched.imul32(3, 4);
        reference.imul32(3, 4);
        EXPECT_EQ(batched.cycles(), reference.cycles());
    }
    // Nothing has been committed to the batched Dpu yet...
    EXPECT_EQ(batched_dpu.opCounts(),
              (std::array<std::uint64_t, kNumOpClasses>{}));
    // ...until flush, which is idempotent.
    batched.flush();
    batched.flush();
    EXPECT_EQ(batched_dpu.opCounts(), reference_dpu.opCounts());
    EXPECT_EQ(batched.cycles(), reference.cycles());
}

TEST(ChargeLedgerUnit, RebindResetsPerKernelState)
{
    Dpu first(0, 1 << 20), second(1, 1 << 20);
    const DpuCostModel model;
    KernelContext ctx(first, model, 64 * 1024);
    ctx.fadd(1.0f, 2.0f);
    ctx.lcgSeed(99);
    ctx.wramAlloc(128);
    ctx.rebind(second);

    // The pending charge was flushed to the first core; the rebound
    // context starts clean on the second.
    EXPECT_GT(first.opCounts()[static_cast<std::size_t>(
                  swiftrl::pimsim::OpClass::Fp32Add)],
              0u);
    EXPECT_EQ(ctx.cycles(), 0u);
    EXPECT_EQ(ctx.wramUsed(), 0u);
    EXPECT_EQ(ctx.dpuId(), 1u);
    ctx.iadd(1, 1);
    ctx.flush();
    EXPECT_EQ(second.opCounts()[static_cast<std::size_t>(
                  swiftrl::pimsim::OpClass::IntAlu)],
              1u);
}

} // namespace
