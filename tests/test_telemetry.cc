/**
 * @file
 * Tests for the telemetry subsystem: registry semantics (labels,
 * histogram bucketing, disabled-mode no-ops), engine-collector
 * counter deltas, export golden files, determinism of the export
 * across host-pool sizes, and — the load-bearing guarantee — that
 * attaching telemetry never moves a modelled number.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pimsim/command_stream.hh"
#include "pimsim/device_counters.hh"
#include "swiftrl/swiftrl.hh"
#include "telemetry/engine_collector.hh"
#include "telemetry/export.hh"
#include "telemetry/metric_registry.hh"
#include "telemetry/run_manifest.hh"

namespace {

using namespace swiftrl;
using telemetry::Labels;
using telemetry::MetricKind;
using telemetry::MetricRegistry;
using telemetry::RunManifest;

// Most of these tests exercise *live* telemetry; under
// -DSWIFTRL_DISABLE_TELEMETRY=ON every registry is inert by design,
// so they skip (the Disabled* tests below cover that build too).
#define REQUIRE_TELEMETRY()                                          \
    if (!telemetry::kCompiledIn)                                     \
    GTEST_SKIP() << "built with SWIFTRL_DISABLE_TELEMETRY"

// --- registry semantics ---------------------------------------------

TEST(MetricRegistry, CountersAccumulate)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    auto &c = reg.counter("events_total");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(&reg.counter("events_total"), &c);
}

TEST(MetricRegistry, LabelsDistinguishSeries)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    auto &a = reg.counter("ops_total", {{"cls", "a"}});
    auto &b = reg.counter("ops_total", {{"cls", "b"}});
    EXPECT_NE(&a, &b);
    a.add(1);
    b.add(2);
    EXPECT_EQ(a.value(), 1u);
    EXPECT_EQ(b.value(), 2u);
    // The registry key is label-order-canonical: permuted label lists
    // resolve to the same metric.
    auto &c = reg.counter("multi", {{"z", "1"}, {"a", "2"}});
    EXPECT_EQ(&reg.counter("multi", {{"a", "2"}, {"z", "1"}}), &c);
    // renderLabels itself renders exactly what it is given.
    EXPECT_EQ(telemetry::renderLabels({{"z", "1"}, {"a", "2"}}),
              "{z=\"1\",a=\"2\"}");
    EXPECT_EQ(telemetry::renderLabels({}), "");
}

TEST(MetricRegistry, HistogramBucketing)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    auto &h = reg.histogram("lat", {1.0, 2.0, 5.0});
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // <= 1 (bounds are inclusive upper edges)
    h.observe(1.5);   // <= 2
    h.observe(100.0); // +Inf
    ASSERT_EQ(h.bucketCounts().size(), 4u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[2], 0u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 103.0);
}

TEST(MetricRegistry, SeriesKeepsOrder)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    auto &s = reg.series("per_round");
    s.append(3.0);
    s.append(1.0);
    s.append(2.0);
    EXPECT_EQ(s.values(), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(MetricRegistry, EntriesSortedByNameAndLabels)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    reg.counter("zeta_total");
    reg.gauge("alpha");
    reg.counter("mid_total", {{"k", "b"}});
    reg.counter("mid_total", {{"k", "a"}});
    const auto entries = reg.entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].name, "alpha");
    EXPECT_EQ(entries[1].name, "mid_total");
    EXPECT_EQ(entries[1].labels, (Labels{{"k", "a"}}));
    EXPECT_EQ(entries[2].labels, (Labels{{"k", "b"}}));
    EXPECT_EQ(entries[3].name, "zeta_total");
}

TEST(MetricRegistry, DisabledRegistryIsInert)
{
    MetricRegistry reg(/*enabled=*/false);
    EXPECT_FALSE(reg.enabled());
    auto &c = reg.counter("x_total");
    c.add(100);
    EXPECT_EQ(c.value(), 0u);
    auto &g = reg.gauge("g");
    g.set(5.0);
    EXPECT_EQ(g.value(), 0.0);
    auto &h = reg.histogram("h", {1.0});
    h.observe(0.5);
    EXPECT_EQ(h.count(), 0u);
    auto &s = reg.series("s");
    s.append(1.0);
    EXPECT_TRUE(s.values().empty());
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_TRUE(reg.entries().empty());
}

// --- engine collector -----------------------------------------------

const telemetry::Histogram *
findHistogram(const MetricRegistry &reg, std::string_view name)
{
    for (const auto &e : reg.entries())
        if (e.kind == MetricKind::Histogram && e.name == name)
            return e.histogram;
    return nullptr;
}

TEST(EngineCollector, CountsMatchDeviceCounters)
{
    REQUIRE_TELEMETRY();
    pimsim::PimConfig pc;
    pc.numDpus = 4;
    pc.mramBytesPerDpu = 1 << 20;
    pimsim::PimSystem system(pc);

    MetricRegistry reg;
    telemetry::EngineCollector collector(reg, system);
    pimsim::CommandStream stream(system);
    stream.setObserver(&collector);

    const auto status = stream.launch([](pimsim::KernelContext &ctx) {
        ctx.fmul(1.0f, 2.0f);
        ctx.iadd(1, 2);
        ctx.iadd(3, 4);
    });
    ASSERT_TRUE(status.ok());

    const auto counters = pimsim::DeviceCounters::fromSystem(system);
    EXPECT_EQ(reg.counter("pim_launches_total").value(), 1u);
    EXPECT_EQ(
        reg.counter("pim_ops_total", {{"op_class", "fp32_mul"}})
            .value(),
        4u); // 1 op x 4 cores
    EXPECT_EQ(
        reg.counter("pim_ops_total", {{"op_class", "int_alu"}})
            .value(),
        8u);
    EXPECT_EQ(reg.counter("pim_mram_dma_bytes_total").value(),
              counters.dmaBytes);

    const auto *cycles = findHistogram(reg, "pim_launch_core_cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(cycles->count(), 4u); // one observation per live core

    // Balanced kernel: every core charges the same cycles, so the
    // straggler ratio is exactly 1.
    const auto *straggler =
        findHistogram(reg, "pim_launch_straggler_ratio");
    ASSERT_NE(straggler, nullptr);
    EXPECT_EQ(straggler->count(), 1u);
    EXPECT_DOUBLE_EQ(straggler->sum(), 1.0);

    // Counter samples landed on the stream's timeline for the trace.
    EXPECT_FALSE(stream.timeline().counters().empty());
}

// --- trainer integration --------------------------------------------

const rlcore::Dataset &
sharedDataset()
{
    static const rlcore::Dataset data = [] {
        auto env = rlenv::makeEnvironment("frozenlake");
        return rlcore::collectRandomDataset(*env, 512, 1);
    }();
    return data;
}

PimTrainResult
trainOnce(unsigned host_threads, MetricRegistry *metrics)
{
    auto env = rlenv::makeEnvironment("frozenlake");
    pimsim::PimConfig pc;
    pc.numDpus = 8;
    pc.mramBytesPerDpu = 1 << 20;
    pc.hostThreads = host_threads;
    pimsim::PimSystem system(pc);

    PimTrainConfig cfg;
    cfg.workload = {rlcore::Algorithm::QLearning,
                    rlcore::Sampling::Seq,
                    rlcore::NumericFormat::Fp32};
    cfg.hyper.episodes = 20;
    cfg.tau = 10;
    cfg.metrics = metrics;
    PimTrainer trainer(system, cfg);
    return trainer.train(sharedDataset(), env->numStates(),
                         env->numActions());
}

TEST(Telemetry, AttachingTelemetryNeverMovesModelledNumbers)
{
    REQUIRE_TELEMETRY();
    const auto bare = trainOnce(2, nullptr);
    MetricRegistry reg;
    const auto observed = trainOnce(2, &reg);

    // Bit-identical results and modelled times, with and without.
    EXPECT_EQ(bare.finalQ.values(), observed.finalQ.values());
    EXPECT_EQ(bare.roundDeltas, observed.roundDeltas);
    EXPECT_EQ(bare.time.kernel, observed.time.kernel);
    EXPECT_EQ(bare.time.cpuToPim, observed.time.cpuToPim);
    EXPECT_EQ(bare.time.pimToCpu, observed.time.pimToCpu);
    EXPECT_EQ(bare.time.interCore, observed.time.interCore);
    EXPECT_EQ(bare.time.recovery, observed.time.recovery);
    EXPECT_EQ(bare.timeline.size(), observed.timeline.size());

    // The registry actually collected the run.
    const auto rounds =
        static_cast<std::uint64_t>(observed.commRounds);
    EXPECT_EQ(reg.counter("rl_comm_rounds_total").value(), rounds);
    EXPECT_GE(reg.counter("pim_launches_total").value(), rounds);
    EXPECT_EQ(reg.series("rl_round_max_abs_dq").values().size(),
              observed.roundDeltas.size());
    EXPECT_GT(reg.counter("pim_mram_dma_bytes_total").value(), 0u);

    // Counter tracks are gated on telemetry: without a registry the
    // timeline carries no counter samples (default traces stay
    // byte-identical); with one it does.
    EXPECT_TRUE(bare.timeline.counters().empty());
    EXPECT_FALSE(observed.timeline.counters().empty());
}

TEST(Telemetry, ExportIdenticalAcrossHostPoolSizes)
{
    REQUIRE_TELEMETRY();
    RunManifest manifest; // fixed: the export diff isolates metrics
    manifest.tool = "test_telemetry";
    std::string first;
    for (const unsigned ht : {1u, 2u, 8u}) {
        MetricRegistry reg;
        trainOnce(ht, &reg);
        std::ostringstream json;
        telemetry::writeMetricsJson(json, manifest, reg);
        if (first.empty())
            first = json.str();
        else
            EXPECT_EQ(json.str(), first)
                << "metrics drift at hostThreads=" << ht;
    }
    EXPECT_FALSE(first.empty());
}

TEST(Telemetry, ChromeTraceGainsCounterTracks)
{
    REQUIRE_TELEMETRY();
    MetricRegistry reg;
    const auto result = trainOnce(2, &reg);
    const std::string path = "test_telemetry_trace.json";
    ASSERT_TRUE(result.timeline.writeChromeTrace(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(buf.str().find("straggler-ratio"), std::string::npos);
    std::remove(path.c_str());
}

// --- export golden files --------------------------------------------

/** Fully pinned manifest so the goldens are test-determined. */
RunManifest
goldenManifest()
{
    RunManifest m;
    m.tool = "golden";
    m.mode = "unit";
    m.environment = "none";
    m.workload = "w";
    m.cores = 2;
    m.hostThreads = 1;
    m.tasklets = 1;
    m.episodes = 4;
    m.tau = 2;
    m.transitions = 8;
    m.alpha = 0.1;
    m.gamma = 0.5;
    m.epsilon = 0.25;
    m.collectSeed = 7;
    m.trainSeed = 9;
    m.retryLimit = 3;
    m.faultPlan.seed = 5;
    m.faultPlan.detectSec = 1e-6;
    m.faultPlan.checksumSecPerByte = 1e-9;
    m.costModel.frequencyHz = 100.0;
    m.costModel.pipelineInterval = 2;
    m.costModel.mramDmaFixedCycles = 3;
    m.costModel.mramDmaCyclesPerByte = 0.5;
    m.costModel.mramDmaMaxBytes = 64;
    m.costModel.mramDmaAlignBytes = 8;
    for (std::size_t i = 0; i < pimsim::kNumOpClasses; ++i)
        m.costModel.instructions[i] = i + 1;
    return m;
}

MetricRegistry &
goldenRegistry()
{
    static MetricRegistry reg;
    static const bool filled = [] {
        reg.counter("a_total", {{"k", "v"}}).add(3);
        reg.gauge("g").set(1.5);
        auto &h = reg.histogram("h", {1.0, 2.0});
        h.observe(0.5);
        h.observe(1.5);
        h.observe(5.0);
        auto &s = reg.series("s");
        s.append(1.0);
        s.append(2.5);
        return true;
    }();
    (void)filled;
    return reg;
}

TEST(TelemetryExport, JsonGolden)
{
    REQUIRE_TELEMETRY();
    std::ostringstream os;
    telemetry::writeMetricsJson(os, goldenManifest(),
                                goldenRegistry());
    const std::string expected = R"({
  "schema": "swiftrl-metrics-v1",
  "manifest": {
    "tool": "golden",
    "mode": "unit",
    "environment": "none",
    "workload": "w",
    "cores": 2,
    "host_threads": 1,
    "tasklets": 1,
    "episodes": 4,
    "tau": 2,
    "transitions": 8,
    "generations": 0,
    "actors": 0,
    "refresh_period": 0,
    "weighted_aggregation": false,
    "alpha": 0.1,
    "gamma": 0.5,
    "epsilon": 0.25,
    "collect_seed": 7,
    "train_seed": 9,
    "retry_limit": 3,
    "fault_plan": {
      "seed": 5,
      "transient_rate": 0,
      "corrupt_rate": 0,
      "dropout_rate": 0,
      "scheduled": 0,
      "detect_sec": 1e-06,
      "checksum_sec_per_byte": 1e-09
    },
    "cost_model": {
      "frequency_hz": 100,
      "pipeline_interval": 2,
      "mram_dma_fixed_cycles": 3,
      "mram_dma_cycles_per_byte": 0.5,
      "mram_dma_max_bytes": 64,
      "mram_dma_align_bytes": 8,
      "instructions": {"int_alu": 1, "int8_mul": 2, "int32_mul": 3, "int32_div": 4, "fp32_add": 5, "fp32_mul": 6, "fp32_div": 7, "fp32_cmp": 8, "wram_access": 9, "branch": 10}
    }
  },
  "counters": [
    {"name": "a_total", "labels": {"k":"v"}, "value": 3}
  ],
  "gauges": [
    {"name": "g", "labels": {}, "value": 1.5}
  ],
  "histograms": [
    {"name": "h", "labels": {}, "bounds": [1, 2], "counts": [1, 1, 1], "count": 3, "sum": 7}
  ],
  "series": [
    {"name": "s", "labels": {}, "values": [1, 2.5]}
  ]
}
)";
    EXPECT_EQ(os.str(), expected);
}

TEST(TelemetryExport, PrometheusGolden)
{
    REQUIRE_TELEMETRY();
    std::ostringstream os;
    telemetry::writeMetricsPrometheus(os, goldenManifest(),
                                      goldenRegistry());
    const std::string expected =
        "# swiftrl-metrics-v1 (Prometheus text exposition)\n"
        "# cost model: frequency_hz=100 pipeline_interval=2\n"
        "# seeds: collect=7 train=9 fault=5\n"
        "# TYPE swiftrl_run_info gauge\n"
        "swiftrl_run_info{tool=\"golden\",mode=\"unit\","
        "environment=\"none\",workload=\"w\",cores=\"2\"} 1\n"
        "# TYPE a_total counter\n"
        "a_total{k=\"v\"} 3\n"
        "# TYPE g gauge\n"
        "g 1.5\n"
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 1\n"
        "h_bucket{le=\"2\"} 2\n"
        "h_bucket{le=\"+Inf\"} 3\n"
        "h_sum 7\n"
        "h_count 3\n"
        "# TYPE s gauge\n"
        "s 2.5\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(TelemetryExport, DisabledRegistryExportsEmptyArrays)
{
    MetricRegistry reg(false);
    reg.counter("x_total").add(7);
    std::ostringstream os;
    telemetry::writeMetricsJson(os, goldenManifest(), reg);
    EXPECT_NE(os.str().find("\"counters\": []"), std::string::npos);
    EXPECT_NE(os.str().find("\"series\": []"), std::string::npos);
}

} // namespace
