/**
 * @file
 * Tests for the per-core state (MRAM bank, cycle counters).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pimsim/dpu.hh"

namespace {

using swiftrl::pimsim::Dpu;
using swiftrl::pimsim::OpClass;

TEST(Dpu, IdentityAndCapacity)
{
    Dpu dpu(7, 1024);
    EXPECT_EQ(dpu.id(), 7u);
    EXPECT_EQ(dpu.mramCapacity(), 1024u);
    EXPECT_EQ(dpu.cycles(), 0u);
}

TEST(Dpu, MramRoundtrip)
{
    Dpu dpu(0, 4096);
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    dpu.mramWrite(100, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    dpu.mramRead(100, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(Dpu, UnwrittenMramReadsAsZero)
{
    Dpu dpu(0, 4096);
    std::vector<std::uint8_t> out(16, 0xff);
    dpu.mramRead(0, out.data(), out.size());
    for (const auto b : out)
        EXPECT_EQ(b, 0);
}

TEST(Dpu, PartiallyWrittenReadMixesDataAndZeros)
{
    Dpu dpu(0, 4096);
    const std::uint8_t byte = 0xab;
    dpu.mramWrite(0, &byte, 1);
    std::vector<std::uint8_t> out(4, 0xff);
    dpu.mramRead(0, out.data(), out.size());
    EXPECT_EQ(out[0], 0xab);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[3], 0);
}

TEST(Dpu, CyclesAccumulate)
{
    Dpu dpu(0, 64);
    dpu.addCycles(10);
    dpu.addCycles(32);
    EXPECT_EQ(dpu.cycles(), 42u);
}

TEST(Dpu, OpCountsAccumulate)
{
    Dpu dpu(0, 64);
    dpu.countOps(OpClass::Fp32Mul, 3);
    dpu.countOps(OpClass::Fp32Mul, 2);
    dpu.countOps(OpClass::IntAlu, 1);
    EXPECT_EQ(dpu.opCounts()[static_cast<std::size_t>(
                  OpClass::Fp32Mul)],
              5u);
    EXPECT_EQ(dpu.opCounts()[static_cast<std::size_t>(
                  OpClass::IntAlu)],
              1u);
}

TEST(Dpu, ResetStatsKeepsMram)
{
    Dpu dpu(0, 64);
    const std::uint8_t byte = 0x5a;
    dpu.mramWrite(8, &byte, 1);
    dpu.addCycles(99);
    dpu.addDmaBytes(16);
    dpu.resetStats();
    EXPECT_EQ(dpu.cycles(), 0u);
    EXPECT_EQ(dpu.dmaBytes(), 0u);
    std::uint8_t out = 0;
    dpu.mramRead(8, &out, 1);
    EXPECT_EQ(out, 0x5a);
}

TEST(DpuDeath, WritePastCapacityIsFatal)
{
    Dpu dpu(3, 64);
    const std::vector<std::uint8_t> data(65, 0);
    EXPECT_EXIT(dpu.mramWrite(0, data.data(), data.size()),
                ::testing::ExitedWithCode(1), "exceeds the 64-byte");
}

TEST(DpuDeath, ReadPastCapacityIsFatal)
{
    Dpu dpu(3, 64);
    std::uint8_t out;
    EXPECT_EXIT(dpu.mramRead(64, &out, 1),
                ::testing::ExitedWithCode(1), "exceeds the 64-byte");
}

TEST(Dpu, WriteUpToCapacityIsAllowed)
{
    Dpu dpu(0, 64);
    const std::vector<std::uint8_t> data(64, 0x11);
    dpu.mramWrite(0, data.data(), data.size());
    std::vector<std::uint8_t> out(64);
    dpu.mramRead(0, out.data(), 64);
    EXPECT_EQ(out, data);
}

TEST(Dpu, IncrementalWritesKeepContentsAndZeroFill)
{
    // The lazy buffer grows geometrically under a long sequence of
    // boundary-crossing writes; growth policy must never change what
    // a read returns — written bytes verbatim, unwritten bytes zero.
    Dpu dpu(0, 1 << 20);
    std::vector<std::uint8_t> expect(1 << 20, 0);
    std::size_t end = 0;
    for (std::size_t i = 0; i < 300; ++i) {
        const std::uint8_t value =
            static_cast<std::uint8_t>(i + 1);
        const std::size_t at = i * 331; // crosses every boundary
        dpu.mramWrite(at, &value, 1);
        expect[at] = value;
        end = std::max(end, at + 1);
    }
    std::vector<std::uint8_t> out(end + 512, 0xff);
    dpu.mramRead(0, out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], expect[i]) << "byte " << i;
}

TEST(Dpu, GrowthClampsToCapacityAtTheTail)
{
    // A write landing in the last bytes of the bank must succeed
    // even though doubling from the current size would overshoot
    // the capacity.
    Dpu dpu(0, 100);
    const std::uint8_t low = 0x01;
    dpu.mramWrite(0, &low, 1);
    const std::vector<std::uint8_t> tail(10, 0xee);
    dpu.mramWrite(90, tail.data(), tail.size());
    std::vector<std::uint8_t> out(100);
    dpu.mramRead(0, out.data(), 100);
    EXPECT_EQ(out[0], 0x01);
    EXPECT_EQ(out[50], 0x00);
    EXPECT_EQ(out[99], 0xee);
}

} // namespace
