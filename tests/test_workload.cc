/**
 * @file
 * Tests for workload descriptors and name parsing helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "rlcore/types.hh"
#include "swiftrl/workload.hh"

namespace {

using swiftrl::allWorkloads;
using swiftrl::Workload;
using swiftrl::workloadsFor;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::parseAlgorithm;
using swiftrl::rlcore::parseNumericFormat;
using swiftrl::rlcore::parseSampling;
using swiftrl::rlcore::Sampling;

TEST(Workload, TwelveVariants)
{
    const auto all = allWorkloads();
    EXPECT_EQ(all.size(), 12u);
    std::set<std::string> names;
    for (const auto &w : all)
        names.insert(w.name());
    EXPECT_EQ(names.size(), 12u);
}

TEST(Workload, PaperNames)
{
    const Workload q_seq_fp{Algorithm::QLearning, Sampling::Seq,
                            NumericFormat::Fp32};
    EXPECT_EQ(q_seq_fp.name(), "Q-learner-SEQ-FP32");

    const Workload sarsa_ran_int{Algorithm::Sarsa, Sampling::Ran,
                                 NumericFormat::Int32};
    EXPECT_EQ(sarsa_ran_int.name(), "SARSA-RAN-INT32");
}

TEST(Workload, PerAlgorithmSubsets)
{
    const auto q = workloadsFor(Algorithm::QLearning);
    EXPECT_EQ(q.size(), 6u);
    for (const auto &w : q)
        EXPECT_EQ(w.algo, Algorithm::QLearning);
}

TEST(Workload, ExtendedAddsSixInt8Variants)
{
    const auto ext = swiftrl::extendedWorkloads();
    EXPECT_EQ(ext.size(), 18u);
    std::size_t int8_count = 0;
    for (const auto &w : ext)
        int8_count += w.format == NumericFormat::Int8 ? 1 : 0;
    EXPECT_EQ(int8_count, 6u);
    EXPECT_EQ(ext.back().name(), "SARSA-STR-INT8");
}

TEST(Workload, ParseInt8Format)
{
    EXPECT_EQ(parseNumericFormat("int8"), NumericFormat::Int8);
}

TEST(Workload, ParseSampling)
{
    EXPECT_EQ(parseSampling("seq"), Sampling::Seq);
    EXPECT_EQ(parseSampling("RAN"), Sampling::Ran);
    EXPECT_EQ(parseSampling("Str"), Sampling::Str);
}

TEST(Workload, ParseNumericFormat)
{
    EXPECT_EQ(parseNumericFormat("fp32"), NumericFormat::Fp32);
    EXPECT_EQ(parseNumericFormat("INT32"), NumericFormat::Int32);
}

TEST(Workload, ParseAlgorithm)
{
    EXPECT_EQ(parseAlgorithm("qlearning"), Algorithm::QLearning);
    EXPECT_EQ(parseAlgorithm("Q"), Algorithm::QLearning);
    EXPECT_EQ(parseAlgorithm("sarsa"), Algorithm::Sarsa);
}

TEST(WorkloadDeath, UnknownNamesAreFatal)
{
    EXPECT_EXIT((void)parseSampling("zigzag"),
                ::testing::ExitedWithCode(1), "unknown sampling");
    EXPECT_EXIT((void)parseNumericFormat("fp64"),
                ::testing::ExitedWithCode(1), "unknown numeric");
    EXPECT_EXIT((void)parseAlgorithm("dqn"),
                ::testing::ExitedWithCode(1), "unknown algorithm");
}

} // namespace
