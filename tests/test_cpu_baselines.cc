/**
 * @file
 * Tests for the CPU-V1 (shared table) and CPU-V2 (local tables)
 * baselines.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_baselines.hh"
#include "rlcore/dataset.hh"
#include "rlcore/evaluate.hh"
#include "rlenv/frozen_lake.hh"
#include "swiftrl/swiftrl.hh"

namespace {

using swiftrl::baselines::trainCpuV1;
using swiftrl::baselines::trainCpuV2;
using swiftrl::rlcore::Algorithm;
using swiftrl::rlcore::collectRandomDataset;
using swiftrl::rlcore::evaluateGreedy;
using swiftrl::rlcore::Hyper;
using swiftrl::rlcore::NumericFormat;
using swiftrl::rlcore::QTable;
using swiftrl::rlcore::Sampling;
using swiftrl::rlcore::trainCpuReference;
using swiftrl::rlenv::FrozenLake;

Hyper
smallHyper(int episodes)
{
    Hyper h;
    h.episodes = episodes;
    h.seed = 42;
    return h;
}

TEST(CpuV1, SingleThreadMatchesReference)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 1000, 1);
    const auto h = smallHyper(10);
    const auto v1 = trainCpuV1(Algorithm::QLearning, data, 16, 4, h,
                               Sampling::Seq, NumericFormat::Fp32, 1);
    const auto ref = trainCpuReference(Algorithm::QLearning, data, 16,
                                       4, h, Sampling::Seq,
                                       NumericFormat::Fp32, 0);
    EXPECT_EQ(QTable::maxAbsDifference(v1.finalQ, ref), 0.0f);
}

TEST(CpuV1, MultiThreadLearnsLake)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 16000, 2);
    const auto v1 =
        trainCpuV1(Algorithm::QLearning, data, 16, 4, smallHyper(40),
                   Sampling::Seq, NumericFormat::Fp32, 4);
    EXPECT_EQ(v1.threads, 4);
    FrozenLake eval_env(false);
    const auto eval = evaluateGreedy(eval_env, v1.finalQ, 50, 7);
    EXPECT_DOUBLE_EQ(eval.meanReward, 1.0);
}

TEST(CpuV1, SarsaPropagatesGoalValue)
{
    // Hogwild-style shared-table SARSA is racy by design, so exact
    // policy outcomes are not deterministic; assert the robust
    // properties instead: the goal-adjacent action is learned and all
    // values respect the discount bound.
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 16000, 2);
    const auto v1 =
        trainCpuV1(Algorithm::Sarsa, data, 16, 4, smallHyper(40),
                   Sampling::Seq, NumericFormat::Fp32, 2);
    EXPECT_GT(v1.finalQ.at(14, FrozenLake::Right), 0.9f);
    EXPECT_EQ(v1.finalQ.greedyAction(14), FrozenLake::Right);
    EXPECT_LE(v1.finalQ.maxAbsValue(), 20.0f + 1e-3f);
}

TEST(CpuV2, SingleThreadMatchesReference)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 1000, 3);
    const auto h = smallHyper(10);
    const auto v2 = trainCpuV2(Algorithm::QLearning, data, 16, 4, h,
                               Sampling::Seq, NumericFormat::Fp32, 1);
    const auto ref = trainCpuReference(Algorithm::QLearning, data, 16,
                                       4, h, Sampling::Seq,
                                       NumericFormat::Fp32, 0);
    EXPECT_EQ(QTable::maxAbsDifference(v2.finalQ, ref), 0.0f);
}

TEST(CpuV2, IsDeterministicAcrossRuns)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 4000, 4);
    const auto h = smallHyper(10);
    const auto a = trainCpuV2(Algorithm::QLearning, data, 16, 4, h,
                              Sampling::Ran, NumericFormat::Fp32, 4);
    const auto b = trainCpuV2(Algorithm::QLearning, data, 16, 4, h,
                              Sampling::Ran, NumericFormat::Fp32, 4);
    EXPECT_EQ(QTable::maxAbsDifference(a.finalQ, b.finalQ), 0.0f);
}

TEST(CpuV2, MatchesDistributedPimAggregation)
{
    // CPU-V2 with T threads is the same algorithm as a T-core PIM
    // run with a single final aggregation (tau >= episodes).
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 1200, 5);
    const auto h = smallHyper(8);
    const auto v2 = trainCpuV2(Algorithm::QLearning, data, 16, 4, h,
                               Sampling::Seq, NumericFormat::Fp32, 3);

    swiftrl::pimsim::PimConfig pim_cfg;
    pim_cfg.numDpus = 3;
    pim_cfg.mramBytesPerDpu = 8u << 20;
    swiftrl::pimsim::PimSystem system(pim_cfg);
    swiftrl::PimTrainConfig cfg;
    cfg.workload = swiftrl::Workload{Algorithm::QLearning,
                                     Sampling::Seq,
                                     NumericFormat::Fp32};
    cfg.hyper = h;
    cfg.tau = h.episodes; // one sync at the very end only
    const auto pim =
        swiftrl::PimTrainer(system, cfg).train(data, 16, 4);

    EXPECT_EQ(QTable::maxAbsDifference(v2.finalQ, pim.finalQ), 0.0f);
}

TEST(CpuV2, LearnsLakeWithManyThreads)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 16000, 6);
    const auto v2 =
        trainCpuV2(Algorithm::QLearning, data, 16, 4, smallHyper(40),
                   Sampling::Seq, NumericFormat::Int32, 4);
    FrozenLake eval_env(false);
    const auto eval = evaluateGreedy(eval_env, v2.finalQ, 50, 7);
    EXPECT_DOUBLE_EQ(eval.meanReward, 1.0);
}

TEST(CpuBaselines, WallClockIsMeasured)
{
    FrozenLake env(false);
    const auto data = collectRandomDataset(env, 1000, 7);
    const auto v1 =
        trainCpuV1(Algorithm::QLearning, data, 16, 4, smallHyper(5),
                   Sampling::Seq, NumericFormat::Fp32, 2);
    EXPECT_GT(v1.wallSeconds, 0.0);
}

} // namespace
