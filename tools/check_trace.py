#!/usr/bin/env python3
"""Validate a ``swiftrl_cli --trace-spans`` / ``--flight-record`` dump.

Usage:
    tools/check_trace.py SPANS.json
        [--require-ancestor NAME --scope CAT[,CAT...]]
    tools/check_trace.py --flight FLIGHT.json

Span mode checks the ``swiftrl-trace-v1`` schema structurally —
unique positive span ids, parent references that resolve (or 0 for a
root), acyclic parent chains, non-empty name/category/clock, finite
start <= end, string-to-string attrs — and the causal invariants:

  * nesting: a child span must lie inside its parent's [start, end]
    window, enforced only when both spans tick the same clock domain
    ("fleet" / "modelled" / "wall" — cross-clock links carry
    causality, not containment). Spans tagged ``phase=host-collect``
    are exempt: streaming host collection deliberately overlaps round
    boundaries (docs/OBSERVABILITY.md "Tracing & flight recorder").
  * with --require-ancestor NAME, every span whose category is in
    --scope must transitively reach an ancestor span named NAME —
    CI uses this to prove every session/engine/serving span of a
    fleet run parents up to its fleet.job span.

Flight mode checks the ``swiftrl-flight-v1`` ring dump: strictly
increasing sequence numbers, finite non-decreasing timestamps, and
string event text. Exit status 0 when valid, 1 otherwise. Stdlib
only.
"""

import json
import math
import pathlib
import sys

TRACE_SCHEMA = "swiftrl-trace-v1"
FLIGHT_SCHEMA = "swiftrl-flight-v1"

# Slack for child-inside-parent windows: spans stamped from the same
# clock can differ by rounding in the shortest-round-trip decimal
# serialisation.
EPSILON = 1e-9

CLOCKS = {"fleet", "modelled", "wall"}


class Invalid(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Invalid(message)


def is_finite_number(value):
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def check_span(span):
    require(isinstance(span, dict), "span is not an object")
    require(isinstance(span.get("id"), int) and span["id"] > 0,
            f"span id must be a positive int, got {span.get('id')!r}")
    sid = span["id"]
    require(isinstance(span.get("parent"), int)
            and span["parent"] >= 0,
            f"span {sid}: parent must be a non-negative int")
    for field in ("name", "category", "clock", "outcome"):
        require(isinstance(span.get(field), str) and span[field],
                f"span {sid}: {field} must be a non-empty string")
    require(span["clock"] in CLOCKS,
            f"span {sid}: unknown clock {span['clock']!r}")
    for field in ("start", "end"):
        require(is_finite_number(span.get(field)),
                f"span {sid}: {field} must be a finite number")
    require(span["start"] <= span["end"],
            f"span {sid} ({span['name']}): start {span['start']} "
            f"after end {span['end']}")
    attrs = span.get("attrs", {})
    require(isinstance(attrs, dict),
            f"span {sid}: attrs must be an object")
    require(all(isinstance(k, str) and isinstance(v, str)
                for k, v in attrs.items()),
            f"span {sid}: attrs must map strings to strings")


def ancestor_chain(span, by_id):
    """Yield the ancestors of *span*, root-last; Invalid on a cycle."""
    seen = {span["id"]}
    parent = span["parent"]
    while parent != 0:
        require(parent not in seen,
                f"span {span['id']}: parent chain has a cycle at "
                f"{parent}")
        seen.add(parent)
        node = by_id[parent]
        yield node
        parent = node["parent"]


def check_trace(doc, require_ancestor=None, scope=None):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("schema") == TRACE_SCHEMA,
            f"schema must be {TRACE_SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    spans = doc.get("spans")
    require(isinstance(spans, list), "spans must be an array")

    by_id = {}
    for span in spans:
        check_span(span)
        require(span["id"] not in by_id,
                f"duplicate span id {span['id']}")
        by_id[span["id"]] = span

    for span in spans:
        # Parent referential integrity, then cycle detection along
        # the whole chain.
        parent = span["parent"]
        require(parent == 0 or parent in by_id,
                f"span {span['id']} ({span['name']}): parent "
                f"{parent} does not exist in the dump")
        for _ in ancestor_chain(span, by_id):
            pass

        # Same-clock nesting: the child window fits the parent's.
        # Streaming host collection is pipelined across rounds, so
        # its spans are exempt by design.
        if parent == 0 or span.get("attrs", {}).get("phase") == \
                "host-collect":
            continue
        parent_span = by_id[parent]
        if parent_span["clock"] != span["clock"]:
            continue
        require(parent_span["start"] - EPSILON <= span["start"]
                and span["end"] <= parent_span["end"] + EPSILON,
                f"span {span['id']} ({span['name']}) "
                f"[{span['start']}, {span['end']}] escapes parent "
                f"{parent} ({parent_span['name']}) "
                f"[{parent_span['start']}, {parent_span['end']}]")

    if require_ancestor is not None:
        checked = 0
        for span in spans:
            if span["category"] not in scope:
                continue
            checked += 1
            names = {a["name"] for a in ancestor_chain(span, by_id)}
            require(require_ancestor in names,
                    f"span {span['id']} ({span['name']}, category "
                    f"{span['category']}) has no ancestor named "
                    f"{require_ancestor!r}")
        require(checked > 0,
                f"no spans in scope {sorted(scope)} — nothing "
                f"proved the {require_ancestor!r} ancestry")
    return len(spans)


def check_flight(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("schema") == FLIGHT_SCHEMA,
            f"schema must be {FLIGHT_SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    events = doc.get("events")
    require(isinstance(events, list), "events must be an array")
    previous = None
    for event in events:
        require(isinstance(event, dict), "event is not an object")
        require(isinstance(event.get("seq"), int)
                and event["seq"] >= 0,
                f"event seq must be a non-negative int, got "
                f"{event.get('seq')!r}")
        require(is_finite_number(event.get("t")),
                f"event {event['seq']}: t must be a finite number")
        require(isinstance(event.get("text"), str),
                f"event {event['seq']}: text must be a string")
        if previous is not None:
            require(event["seq"] > previous["seq"],
                    f"event seq {event['seq']} not strictly after "
                    f"{previous['seq']}")
            require(event["t"] >= previous["t"],
                    f"event {event['seq']}: t {event['t']} goes "
                    f"backwards from {previous['t']}")
        previous = event
    return len(events)


def main(argv):
    args = argv[1:]
    flight = False
    require_ancestor = None
    scope = None
    paths = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--flight":
            flight = True
        elif arg == "--require-ancestor":
            index += 1
            if index >= len(args):
                print("--require-ancestor needs a span name",
                      file=sys.stderr)
                return 2
            require_ancestor = args[index]
        elif arg == "--scope":
            index += 1
            if index >= len(args):
                print("--scope needs a category list",
                      file=sys.stderr)
                return 2
            scope = {c for c in args[index].split(",") if c}
        else:
            paths.append(arg)
        index += 1

    if len(paths) != 1 or (require_ancestor is None) != (scope is
                                                         None):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if flight and require_ancestor is not None:
        print("--require-ancestor does not apply to --flight",
              file=sys.stderr)
        return 2

    path = paths[0]
    try:
        doc = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 1
    try:
        if flight:
            count = check_flight(doc)
            print(f"{path}: valid {FLIGHT_SCHEMA} dump "
                  f"({count} events)")
        else:
            count = check_trace(doc, require_ancestor, scope)
            print(f"{path}: valid {TRACE_SCHEMA} dump "
                  f"({count} spans)")
    except Invalid as error:
        print(f"{path}: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
