#!/usr/bin/env python3
"""Check that the repository's markdown documentation is self-consistent.

Two classes of reference are verified, stdlib only:

 1. relative markdown links ``[text](path)`` and ``[text](path#anchor)``
    must resolve to an existing file or directory (http(s)/mailto links
    are skipped);
 2. backtick code references that look like repository paths
    (``src/...``, ``tests/...``, ``bench/...``, ``docs/...``,
    ``examples/...``, ``tools/...``) must name an existing file or
    directory, so renaming a bench or test without updating the docs
    fails CI. Extensionless references (``bench/ablation_tau``,
    ``src/rlcore/mdp``) name a built binary or a module and resolve if
    a source file with that stem exists.

Machine-provided inputs (PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md)
are not checked — their content is retrieved, not authored here.

Exit status 0 when everything resolves, 1 otherwise (one line per
broken reference).
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

SOURCE_EXTENSIONS = (".cc", ".cpp", ".hh", ".h", ".py", ".md")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `bench/foo_bar` or `tests/test_x.cc` etc.; a trailing §/: suffix or
# anchor is not part of the path.
CODE_REF = re.compile(
    r"`((?:src|tests|bench|docs|examples|tools)/[A-Za-z0-9_./-]+)`")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def markdown_files():
    for path in sorted(REPO.glob("*.md")):
        if path.name not in SKIP_FILES:
            yield path
    for path in sorted((REPO / "docs").rglob("*.md")):
        yield path


def path_ref_resolves(ref):
    target = REPO / ref
    if target.exists():
        return True
    # `bench/ablation_tau` = the binary built from bench/ablation_tau.cc;
    # `src/rlcore/mdp` = the mdp.hh/.cc module.
    return any(
        target.with_suffix(ext).exists() for ext in SOURCE_EXTENSIONS)


def check_file(md):
    errors = []
    text = md.read_text(encoding="utf-8")
    for match in MD_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(SKIP_SCHEMES):
            continue
        resolved = (md.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(REPO)}: broken link -> {target}")
    for match in CODE_REF.finditer(text):
        ref = match.group(1)
        if not path_ref_resolves(ref):
            errors.append(f"{md.relative_to(REPO)}: missing path -> `{ref}`")
    return errors


def main():
    errors = []
    count = 0
    for md in markdown_files():
        count += 1
        errors.extend(check_file(md))
    for line in errors:
        print(line)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken reference(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
