#!/usr/bin/env python3
"""Check that the repository's markdown documentation is self-consistent.

Three classes of reference are verified, stdlib only:

 1. relative markdown links ``[text](path)`` and ``[text](path#anchor)``
    must resolve to an existing file or directory (http(s)/mailto links
    are skipped);
 2. section anchors — both in-page ``[text](#section)`` links and the
    ``#fragment`` of cross-file links into markdown targets — must
    match a heading of the target file under GitHub's slug rules
    (lowercase, punctuation stripped, spaces to hyphens, ``-N``
    suffixes for duplicates);
 3. backtick code references that look like repository paths
    (``src/...``, ``tests/...``, ``bench/...``, ``docs/...``,
    ``examples/...``, ``tools/...``) must name an existing file or
    directory, so renaming a bench or test without updating the docs
    fails CI. Extensionless references (``bench/ablation_tau``,
    ``src/rlcore/mdp``) name a built binary or a module and resolve if
    a source file with that stem exists.

Machine-provided inputs (PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md)
are not checked — their content is retrieved, not authored here.

Exit status 0 when everything resolves, 1 otherwise (one line per
broken reference).
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

SOURCE_EXTENSIONS = (".cc", ".cpp", ".hh", ".h", ".py", ".md")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `bench/foo_bar` or `tests/test_x.cc` etc.; a trailing §/: suffix or
# anchor is not part of the path.
CODE_REF = re.compile(
    r"`((?:src|tests|bench|docs|examples|tools)/[A-Za-z0-9_./-]+)`")

SKIP_SCHEMES = ("http://", "https://", "mailto:")

FENCED_CODE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)

HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

_slug_cache = {}


def github_slug(heading):
    """GitHub's anchor slug for one heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_path):
    """All anchor slugs of a markdown file, duplicate-suffixed."""
    md_path = md_path.resolve()
    if md_path in _slug_cache:
        return _slug_cache[md_path]
    text = FENCED_CODE.sub("", md_path.read_text(encoding="utf-8"))
    anchors = set()
    seen = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    _slug_cache[md_path] = anchors
    return anchors


def markdown_files():
    for path in sorted(REPO.glob("*.md")):
        if path.name not in SKIP_FILES:
            yield path
    for path in sorted((REPO / "docs").rglob("*.md")):
        yield path


def path_ref_resolves(ref):
    target = REPO / ref
    if target.exists():
        return True
    # `bench/ablation_tau` = the binary built from bench/ablation_tau.cc;
    # `src/rlcore/mdp` = the mdp.hh/.cc module.
    return any(
        target.with_suffix(ext).exists() for ext in SOURCE_EXTENSIONS)


def check_file(md):
    errors = []
    text = md.read_text(encoding="utf-8")
    for match in MD_LINK.finditer(text):
        link = match.group(1)
        if link.startswith(SKIP_SCHEMES):
            continue
        target, _, fragment = link.partition("#")
        if target:
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}")
                continue
        else:
            resolved = md  # in-page anchor
        if fragment and resolved.suffix == ".md":
            if fragment not in heading_anchors(resolved):
                errors.append(f"{md.relative_to(REPO)}: broken anchor "
                              f"-> {link}")
    for match in CODE_REF.finditer(text):
        ref = match.group(1)
        if not path_ref_resolves(ref):
            errors.append(f"{md.relative_to(REPO)}: missing path -> `{ref}`")
    return errors


def main():
    errors = []
    count = 0
    for md in markdown_files():
        count += 1
        errors.extend(check_file(md))
    for line in errors:
        print(line)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken reference(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
