#!/usr/bin/env python3
"""Validate a ``swiftrl_cli --metrics`` JSON export.

Usage:
    tools/check_metrics.py METRICS.json

Checks the ``swiftrl-metrics-v1`` schema structurally — manifest
presence and field types, record shapes of the four metric arrays,
histogram invariants (ascending finite bounds, len(counts) ==
len(bounds)+1, non-decreasing cumulative bucket counts that sum to
the observation count), every exported value finite (NaN or ±Inf in
a gauge, histogram, or series is a bug, never a value) — and that
the core engine and trainer metrics documented in
docs/OBSERVABILITY.md are present (for ``mode: "fleet"`` manifests,
the per-job ``fleet_*`` set of docs/SCHEDULER.md instead). CI runs
this against a smoke run's export, so a refactor that silently stops
emitting a metric fails the build rather than shipping an empty
dashboard. Exit status 0 when valid, 1 otherwise. Stdlib only.
"""

import json
import math
import pathlib
import sys

SCHEMA = "swiftrl-metrics-v1"

MANIFEST_FIELDS = {
    "tool": str,
    "mode": str,
    "environment": str,
    "workload": str,
    "cores": int,
    "host_threads": int,
    "tasklets": int,
    "episodes": int,
    "tau": int,
    "transitions": int,
    "generations": int,
    "actors": int,
    "refresh_period": int,
    "weighted_aggregation": bool,
    "alpha": (int, float),
    "gamma": (int, float),
    "epsilon": (int, float),
    "collect_seed": int,
    "train_seed": int,
    "retry_limit": int,
    "fault_plan": dict,
    "cost_model": dict,
}

# Metrics every training run must export (docs/OBSERVABILITY.md).
REQUIRED = {
    "counters": ["pim_launches_total", "pim_mram_dma_bytes_total",
                 "pim_ops_total", "rl_comm_rounds_total",
                 "rl_cores_lost_total",
                 "rl_faults_detected_total"],
    "gauges": ["pim_live_cores", "rl_epsilon", "rl_eval_mean_reward",
               "rl_live_cores", "rl_recovery_seconds"],
    "histograms": ["pim_launch_core_cycles",
                   "pim_launch_straggler_ratio"],
    "series": [],  # offline emits rl_round_*, streaming rl_generation_*
}

# Fleet runs aggregate per-job results instead (docs/SCHEDULER.md).
REQUIRED_FLEET = {
    "counters": ["fleet_preemptions_total", "fleet_grants_total",
                 "fleet_job_faults_detected_total",
                 "fleet_jobs_completed_total"],
    "gauges": ["fleet_queue_wait_seconds", "fleet_job_finish_seconds",
               "fleet_job_cores_lost", "fleet_makespan_seconds",
               "fleet_rank_occupancy_ratio", "fleet_jobs_per_hour"],
    "histograms": [],
    "series": [],
}


class Invalid(Exception):
    pass


def require(cond, message):
    if not cond:
        raise Invalid(message)


def require_finite(name, what, value):
    require(isinstance(value, (int, float))
            and not isinstance(value, bool),
            f"{name}: {what} must be a number")
    require(math.isfinite(value),
            f"{name}: {what} must be finite, got {value!r}")


def check_record(kind, rec):
    require(isinstance(rec, dict), f"{kind}: record is not an object")
    require(isinstance(rec.get("name"), str) and rec["name"],
            f"{kind}: record without a name")
    name = rec["name"]
    labels = rec.get("labels")
    require(isinstance(labels, dict), f"{name}: labels must be an "
            "object")
    require(all(isinstance(k, str) and isinstance(v, str)
                for k, v in labels.items()),
            f"{name}: labels must map strings to strings")

    if kind == "counters":
        require(isinstance(rec.get("value"), int)
                and rec["value"] >= 0,
                f"{name}: counter value must be a non-negative int")
    elif kind == "gauges":
        require_finite(name, "gauge value", rec.get("value"))
    elif kind == "histograms":
        bounds = rec.get("bounds")
        counts = rec.get("counts")
        require(isinstance(bounds, list) and bounds,
                f"{name}: histogram needs non-empty bounds")
        for bound in bounds:
            require_finite(name, "histogram bound", bound)
        require(bounds == sorted(bounds),
                f"{name}: bounds must ascend")
        require(isinstance(counts, list)
                and len(counts) == len(bounds) + 1,
                f"{name}: counts must have len(bounds)+1 entries "
                "(implicit +Inf bucket)")
        require(all(isinstance(c, int) and c >= 0 for c in counts),
                f"{name}: bucket counts must be non-negative ints")
        total = rec.get("count")
        require(isinstance(total, int) and total >= 0,
                f"{name}: 'count' must be a non-negative int")
        # Cumulative (Prometheus-style) bucket view: the running sum
        # must be non-decreasing and never overshoot 'count', and
        # must land exactly on it. Catches a writer emitting deltas
        # against a stale snapshot.
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            require(cumulative >= previous,
                    f"{name}: cumulative bucket count decreases at "
                    f"bucket {index}")
            require(cumulative <= total,
                    f"{name}: cumulative bucket count {cumulative} "
                    f"exceeds 'count' {total} at bucket {index}")
        require(cumulative == total,
                f"{name}: bucket counts must sum to 'count'")
        require_finite(name, "histogram 'sum'", rec.get("sum"))
    elif kind == "series":
        values = rec.get("values")
        require(isinstance(values, list),
                f"{name}: series values must be a number array")
        for value in values:
            require_finite(name, "series value", value)


def check(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("schema") == SCHEMA,
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")

    manifest = doc.get("manifest")
    require(isinstance(manifest, dict), "manifest missing")
    for field, types in MANIFEST_FIELDS.items():
        require(field in manifest, f"manifest.{field} missing")
        require(isinstance(manifest[field], types),
                f"manifest.{field} has the wrong type")
    require(isinstance(manifest["cost_model"].get("instructions"),
                       dict) and manifest["cost_model"]["instructions"],
            "manifest.cost_model.instructions missing")

    required = REQUIRED_FLEET if manifest["mode"] == "fleet" else REQUIRED
    for kind in ("counters", "gauges", "histograms", "series"):
        records = doc.get(kind)
        require(isinstance(records, list), f"{kind} must be an array")
        for rec in records:
            check_record(kind, rec)
        names = {rec["name"] for rec in records}
        for needed in required[kind]:
            require(needed in names,
                    f"required {kind[:-1]} {needed!r} not exported")


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        doc = json.loads(
            pathlib.Path(argv[1]).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"{argv[1]}: {error}", file=sys.stderr)
        return 1
    try:
        check(doc)
    except Invalid as error:
        print(f"{argv[1]}: {error}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: valid {SCHEMA} export")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
