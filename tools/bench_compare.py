#!/usr/bin/env python3
"""Compare two SwiftRL result files: bench outputs or metrics exports.

Usage:
    tools/bench_compare.py [--throughput] [--min-speedup R] \\
        BEFORE.json AFTER.json

Bench mode — each input is a raw ``bench/perf_sim_throughput`` output
(``{"bench": ..., "workloads": [...]}``) or a checked-in combined
record (``{"before": {...}, "after": {...}}``), from which the
``before`` file contributes its ``before`` run and the ``after`` file
its ``after`` run — so the tool also works when pointed twice at the
repository's own ``BENCH_sim_throughput.json``. Workloads are matched
by ``name``. For every pair the tool prints the wall-clock times, the
speedup, and verifies that the modelled outputs
(``modelled_max_cycles``, ``sim_ops``, ``dma_bytes``) are identical —
a perf change must never move a modelled number.

Metrics mode — when both inputs are ``swiftrl-metrics-v1`` documents
(``swiftrl_cli --metrics``), the tool first checks the two manifests
describe the same workload shape (refusing to diff incomparable
runs), then diffs every modelled counter — the ``pim_*`` / ``rl_*``
instruction-mix, DMA, round, and fault counters — exactly, and
reports straggler-ratio and core-cycle histogram drift alongside.

Throughput gate — with ``--throughput`` (bench mode only) the tool
additionally fails when any common workload's host wall-clock
*regresses* beyond tolerance: the per-workload speedup
(``before.wall_sec / after.wall_sec``) must be at least
``--min-speedup`` (default 0.9, i.e. up to 10% slack for timer
noise). Raise the bar (e.g. ``--min-speedup 1.2``) to assert an
optimisation actually pays off, as the CI perf-smoke job does for
the batch interpreter.

Exit status is 0 when every modelled quantity agrees (and, under
``--throughput``, no workload regressed), 1 on drift or regression,
2 on unusable/incomparable inputs. Stdlib only.
"""

import json
import pathlib
import sys

MODELLED_KEYS = ("modelled_max_cycles", "sim_ops", "dma_bytes")

METRICS_SCHEMA = "swiftrl-metrics-v1"

# Manifest fields that must agree for two metrics files to be
# comparable at all (same modelled experiment).
MANIFEST_IDENTITY = (
    "mode", "environment", "workload", "cores", "tasklets",
    "episodes", "tau", "transitions", "generations", "actors",
    "refresh_period", "weighted_aggregation", "alpha", "gamma",
    "epsilon", "collect_seed", "train_seed",
)


def load_workloads(path, role):
    """Return {name: record} from a raw or combined bench file."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if "workloads" not in data and role in data:
        data = data[role]
    if "workloads" not in data and "full" in data:
        data = data["full"]
    runs = data.get("workloads", [])
    if not runs:
        sys.exit(f"{path}: no workloads found (expected a "
                 "perf_sim_throughput output)")
    return {w["name"]: w for w in runs}


def load_json(path):
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def metric_map(doc, kind):
    """{(name, labels...): record} for one metric kind array."""
    out = {}
    for rec in doc.get(kind, []):
        key = (rec["name"],) + tuple(sorted(rec["labels"].items()))
        out[key] = rec
    return out


def metric_label(key):
    name, *labels = key
    if labels:
        rendered = ",".join(f'{k}="{v}"' for k, v in labels)
        return f"{name}{{{rendered}}}"
    return name


def hist_mean(rec):
    return rec["sum"] / rec["count"] if rec["count"] else 0.0


def compare_metrics(path_a, path_b, doc_a, doc_b):
    """Diff two swiftrl-metrics-v1 documents; return exit status."""
    man_a = doc_a.get("manifest", {})
    man_b = doc_b.get("manifest", {})
    incomparable = [k for k in MANIFEST_IDENTITY
                    if man_a.get(k) != man_b.get(k)]
    if incomparable:
        for k in incomparable:
            print(f"manifest mismatch: {k}: {man_a.get(k)!r} vs "
                  f"{man_b.get(k)!r}", file=sys.stderr)
        print("the two metrics files describe different runs; "
              "refusing to diff", file=sys.stderr)
        return 2

    drift = 0

    # Every counter in these files is modelled (instruction mix, DMA
    # bytes, launches, rounds, faults): exact equality required.
    counters_a = metric_map(doc_a, "counters")
    counters_b = metric_map(doc_b, "counters")
    keys = sorted(set(counters_a) | set(counters_b))
    width = max((len(metric_label(k)) for k in keys), default=8)
    print(f"{'counter':<{width}}  {'before':>14}  {'after':>14}")
    for key in keys:
        va = counters_a.get(key, {}).get("value")
        vb = counters_b.get(key, {}).get("value")
        mark = "" if va == vb else "  MISMATCH"
        if va != vb:
            drift += 1
        print(f"{metric_label(key):<{width}}  {va!s:>14}  {vb!s:>14}"
              f"{mark}")

    # Histograms carry the load-balance shape; their bucket counts are
    # modelled too. Report drift as mean shift, fail on any change.
    hists_a = metric_map(doc_a, "histograms")
    hists_b = metric_map(doc_b, "histograms")
    for key in sorted(set(hists_a) | set(hists_b)):
        ha, hb = hists_a.get(key), hists_b.get(key)
        if ha is None or hb is None:
            print(f"{metric_label(key)}: only in "
                  f"{path_a if hb is None else path_b}")
            drift += 1
            continue
        same = (ha["counts"] == hb["counts"]
                and ha["sum"] == hb["sum"])
        if not same:
            drift += 1
        print(f"{metric_label(key)}: mean {hist_mean(ha):.6g} -> "
              f"{hist_mean(hb):.6g} "
              f"({'identical' if same else 'MISMATCH'})")

    if drift:
        print(f"{drift} modelled metric(s) drifted — the cost model "
              "contract is broken", file=sys.stderr)
        return 1
    print("all modelled metrics identical")
    return 0


def parse_args(argv):
    """Split argv into (positional paths, throughput, min_speedup)."""
    throughput = False
    min_speedup = 0.9
    paths = []
    rest = argv[1:]
    while rest:
        arg = rest.pop(0)
        if arg == "--throughput":
            throughput = True
        elif arg == "--min-speedup":
            if not rest:
                sys.exit("--min-speedup needs a value")
            try:
                min_speedup = float(rest.pop(0))
            except ValueError:
                sys.exit("--min-speedup needs a number")
        elif arg.startswith("--"):
            sys.exit(f"unknown option {arg}")
        else:
            paths.append(arg)
    return paths, throughput, min_speedup


def main(argv):
    paths, throughput, min_speedup = parse_args(argv)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    doc_a = load_json(paths[0])
    doc_b = load_json(paths[1])
    a_metrics = doc_a.get("schema") == METRICS_SCHEMA
    b_metrics = doc_b.get("schema") == METRICS_SCHEMA
    if a_metrics != b_metrics:
        sys.exit("cannot mix a metrics export with a bench output")
    if a_metrics:
        if throughput:
            sys.exit("--throughput applies to bench outputs, not "
                     "metrics exports")
        return compare_metrics(paths[0], paths[1], doc_a, doc_b)

    before = load_workloads(paths[0], "before")
    after = load_workloads(paths[1], "after")

    common = [name for name in before if name in after]
    if not common:
        sys.exit("no workloads in common between the two files")

    width = max(len(name) for name in common)
    print(f"{'workload':<{width}}  {'before':>9}  {'after':>9}  "
          f"{'speedup':>8}  modelled")
    mismatches = 0
    regressions = 0
    for name in common:
        b, a = before[name], after[name]
        speedup = b["wall_sec"] / a["wall_sec"] if a["wall_sec"] else 0.0
        identical = all(b.get(k) == a.get(k) for k in MODELLED_KEYS)
        if not identical:
            mismatches += 1
        slow = throughput and speedup < min_speedup
        if slow:
            regressions += 1
        print(f"{name:<{width}}  {b['wall_sec']:>8.4f}s  "
              f"{a['wall_sec']:>8.4f}s  {speedup:>7.2f}x  "
              f"{'identical' if identical else 'MISMATCH'}"
              f"{'  REGRESSION' if slow else ''}")

    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    for name in only_before:
        print(f"{name}: only in {paths[0]}")
    for name in only_after:
        print(f"{name}: only in {paths[1]}")

    status = 0
    if mismatches:
        print(f"{mismatches} workload(s) changed modelled outputs — "
              "the cost model contract is broken", file=sys.stderr)
        status = 1
    if regressions:
        print(f"{regressions} workload(s) below the {min_speedup:g}x "
              "throughput bar — host wall-clock regressed",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
