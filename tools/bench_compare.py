#!/usr/bin/env python3
"""Compare two BENCH_sim_throughput.json files and print per-workload
speedup.

Usage:
    tools/bench_compare.py BEFORE.json AFTER.json

Each input is either a raw ``bench/perf_sim_throughput`` output
(``{"bench": ..., "workloads": [...]}``) or a checked-in combined
record (``{"before": {...}, "after": {...}}``), from which the
``before`` file contributes its ``before`` run and the ``after`` file
its ``after`` run — so the tool also works when pointed twice at the
repository's own ``BENCH_sim_throughput.json``.

Workloads are matched by ``name``. For every pair the tool prints the
wall-clock times, the speedup, and verifies that the modelled outputs
(``modelled_max_cycles``, ``sim_ops``, ``dma_bytes``) are identical —
a perf change must never move a modelled number. Exit status is 0 when
every matched workload's modelled outputs agree, 1 otherwise. Stdlib
only.
"""

import json
import pathlib
import sys

MODELLED_KEYS = ("modelled_max_cycles", "sim_ops", "dma_bytes")


def load_workloads(path, role):
    """Return {name: record} from a raw or combined bench file."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if "workloads" not in data and role in data:
        data = data[role]
    if "workloads" not in data and "full" in data:
        data = data["full"]
    runs = data.get("workloads", [])
    if not runs:
        sys.exit(f"{path}: no workloads found (expected a "
                 "perf_sim_throughput output)")
    return {w["name"]: w for w in runs}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    before = load_workloads(argv[1], "before")
    after = load_workloads(argv[2], "after")

    common = [name for name in before if name in after]
    if not common:
        sys.exit("no workloads in common between the two files")

    width = max(len(name) for name in common)
    print(f"{'workload':<{width}}  {'before':>9}  {'after':>9}  "
          f"{'speedup':>8}  modelled")
    mismatches = 0
    for name in common:
        b, a = before[name], after[name]
        speedup = b["wall_sec"] / a["wall_sec"] if a["wall_sec"] else 0.0
        identical = all(b.get(k) == a.get(k) for k in MODELLED_KEYS)
        if not identical:
            mismatches += 1
        print(f"{name:<{width}}  {b['wall_sec']:>8.4f}s  "
              f"{a['wall_sec']:>8.4f}s  {speedup:>7.2f}x  "
              f"{'identical' if identical else 'MISMATCH'}")

    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    for name in only_before:
        print(f"{name}: only in {argv[1]}")
    for name in only_after:
        print(f"{name}: only in {argv[2]}")

    if mismatches:
        print(f"{mismatches} workload(s) changed modelled outputs — "
              "the cost model contract is broken", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
