/*
 * Pure-C11 smoke client for libswiftrl — the CI proof that the C API
 * header compiles as C and that a C embedder can drive the library
 * end to end: train FrozenLake, checkpoint/restore a session across
 * handles, verify the restored run's Q-table is byte-identical to an
 * uninterrupted one, then serve greedy actions from the trained
 * table. Exercises the error paths too (bad JSON, mismatched
 * restore, missing files, out-of-range queries).
 *
 * Exits 0 on success; prints the first failing check and exits 1
 * otherwise.
 */

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "capi/swiftrl.h"

static int g_failures = 0;

#define CHECK(cond)                                                  \
    do {                                                             \
        if (!(cond)) {                                               \
            fprintf(stderr, "FAIL %s:%d: %s (last_error: %s)\n",     \
                    __FILE__, __LINE__, #cond, swiftrl_last_error()); \
            ++g_failures;                                            \
        }                                                            \
    } while (0)

static const char *kParams =
    "{\"env\": \"frozenlake\", \"cores\": 4, \"transitions\": 2048,"
    " \"collect_seed\": 11, \"algo\": \"qlearning\","
    " \"episodes\": 60, \"tau\": 20, \"seed\": 42}";

/* Read a whole file; returns NULL on failure. Caller frees. */
static unsigned char *
read_file(const char *path, long *out_size)
{
    FILE *f = fopen(path, "rb");
    if (f == NULL)
        return NULL;
    if (fseek(f, 0, SEEK_END) != 0) {
        fclose(f);
        return NULL;
    }
    const long size = ftell(f);
    if (size < 0) {
        fclose(f);
        return NULL;
    }
    rewind(f);
    unsigned char *bytes = malloc((size_t)size);
    if (bytes == NULL || fread(bytes, 1, (size_t)size, f) !=
                             (size_t)size) {
        free(bytes);
        fclose(f);
        return NULL;
    }
    fclose(f);
    *out_size = size;
    return bytes;
}

static void
check_files_identical(const char *a_path, const char *b_path)
{
    long a_size = 0, b_size = 0;
    unsigned char *a = read_file(a_path, &a_size);
    unsigned char *b = read_file(b_path, &b_size);
    CHECK(a != NULL && b != NULL);
    if (a != NULL && b != NULL) {
        CHECK(a_size == b_size);
        CHECK(memcmp(a, b, (size_t)a_size) == 0);
    }
    free(a);
    free(b);
}

int
main(void)
{
    printf("libswiftrl %s\n", swiftrl_version());

    /* Error paths first: none of these may touch the filesystem. */
    swiftrl_session *session = NULL;
    CHECK(swiftrl_session_create("not json", &session) ==
          SWIFTRL_ERR_PARSE);
    CHECK(session == NULL);
    CHECK(strlen(swiftrl_last_error()) > 0);
    CHECK(swiftrl_session_create("{\"env\": \"frozenlake\","
                                 " \"torpor\": 1}",
                                 &session) == SWIFTRL_ERR_PARSE);
    CHECK(swiftrl_session_create("{\"env\": \"frozenlake\","
                                 " \"tau\": 0}",
                                 &session) == SWIFTRL_ERR_PARSE);
    CHECK(swiftrl_session_step(NULL, NULL) ==
          SWIFTRL_ERR_INVALID_ARGUMENT);

    swiftrl_policy *policy = NULL;
    CHECK(swiftrl_policy_load("no_such_file.qt", NULL, &policy) ==
          SWIFTRL_ERR_IO);
    CHECK(policy == NULL);

    /* One-shot training: the uninterrupted reference run. */
    CHECK(swiftrl_train(kParams, "smoke_full.qt") == SWIFTRL_OK);

    /* The same run, interrupted: step once, checkpoint, destroy the
     * handle, restore into a fresh one, finish. */
    CHECK(swiftrl_session_create(kParams, &session) == SWIFTRL_OK);
    CHECK(session != NULL);
    int remaining = -1;
    CHECK(swiftrl_session_step(session, &remaining) == SWIFTRL_OK);
    CHECK(remaining == 40); /* 60 episodes, tau 20, one round done */
    CHECK(swiftrl_session_rounds(session) == 1);
    CHECK(swiftrl_session_finish(session, "unused.qt") ==
          SWIFTRL_ERR_STATE); /* budget not exhausted yet */
    CHECK(swiftrl_session_checkpoint(session, "smoke.ck") ==
          SWIFTRL_OK);
    swiftrl_session_free(session);
    session = NULL;

    /* Restoring under different params must be refused... */
    CHECK(swiftrl_session_restore(
              "{\"env\": \"frozenlake\", \"cores\": 4,"
              " \"transitions\": 2048, \"collect_seed\": 11,"
              " \"episodes\": 60, \"tau\": 10, \"seed\": 42}",
              "smoke.ck", &session) == SWIFTRL_ERR_MISMATCH);
    CHECK(session == NULL);
    /* ...and a corrupt checkpoint detected. */
    CHECK(swiftrl_session_restore(kParams, "smoke_full.qt",
                                  &session) == SWIFTRL_ERR_CORRUPT);

    CHECK(swiftrl_session_restore(kParams, "smoke.ck", &session) ==
          SWIFTRL_OK);
    CHECK(session != NULL);
    CHECK(swiftrl_session_rounds(session) == 1);
    while (swiftrl_session_episodes_remaining(session) > 0)
        CHECK(swiftrl_session_step(session, NULL) == SWIFTRL_OK);
    CHECK(swiftrl_session_step(session, NULL) == SWIFTRL_ERR_STATE);
    CHECK(swiftrl_session_finish(session, "smoke_resumed.qt") ==
          SWIFTRL_OK);
    swiftrl_session_free(session);

    /* The restore contract, observed through the ABI: both Q-table
     * files are byte-identical. */
    check_files_identical("smoke_full.qt", "smoke_resumed.qt");

    /* Serve the trained table. */
    CHECK(swiftrl_policy_load("smoke_full.qt",
                              "{\"max_batch\": 8,"
                              " \"max_wait_sec\": 0.0001}",
                              &policy) == SWIFTRL_OK);
    CHECK(policy != NULL);
    const int32_t num_states = swiftrl_policy_num_states(policy);
    const int32_t num_actions = swiftrl_policy_num_actions(policy);
    CHECK(num_states == 16); /* FrozenLake 4x4 */
    CHECK(num_actions == 4);

    int32_t states[16];
    int32_t actions[16];
    for (int32_t s = 0; s < num_states; ++s) {
        states[s] = s;
        actions[s] = -1;
    }
    CHECK(swiftrl_policy_act_batch(policy, states, actions,
                                   (size_t)num_states) ==
          SWIFTRL_OK);
    for (int32_t s = 0; s < num_states; ++s)
        CHECK(actions[s] >= 0 && actions[s] < num_actions);

    const int32_t bad_state = 99;
    int32_t bad_action = 0;
    CHECK(swiftrl_policy_act_batch(policy, &bad_state, &bad_action,
                                   1) == SWIFTRL_ERR_INVALID_ARGUMENT);
    CHECK(swiftrl_policy_act_batch(policy, NULL, NULL, 0) ==
          SWIFTRL_OK); /* empty batch is trivially served */
    swiftrl_policy_free(policy);

    CHECK(strcmp(swiftrl_status_name(SWIFTRL_ERR_IO),
                 "SWIFTRL_ERR_IO") == 0);

    /* The flight recorder has accumulated breadcrumbs from the runs
     * above; its JSON dump must succeed and be non-empty, and an
     * unwritable path must come back as a typed IO error, not a
     * crash. */
    CHECK(swiftrl_dump_flight_record("smoke_flight.json") ==
          SWIFTRL_OK);
    {
        FILE *flight = fopen("smoke_flight.json", "rb");
        CHECK(flight != NULL);
        if (flight != NULL) {
            char header[32] = {0};
            CHECK(fread(header, 1, sizeof(header) - 1, flight) > 0);
            CHECK(strstr(header, "swiftrl-flight-v1") != NULL);
            fclose(flight);
        }
    }
    CHECK(swiftrl_dump_flight_record(
              "no-such-dir/smoke_flight.json") == SWIFTRL_ERR_IO);
    CHECK(strlen(swiftrl_last_error()) > 0);
    remove("smoke_flight.json");

    remove("smoke_full.qt");
    remove("smoke_resumed.qt");
    remove("smoke.ck");

    if (g_failures > 0) {
        fprintf(stderr, "%d check(s) failed\n", g_failures);
        return 1;
    }
    printf("all checks passed\n");
    return 0;
}
