/**
 * @file
 * The stable C API of libswiftrl: train SwiftRL's tabular learners
 * on the simulated PIM system, checkpoint/restore sessions, and
 * serve greedy actions from trained Q-tables — all through opaque
 * handles and typed error codes, so non-C++ embedders (Python ctypes,
 * Rust FFI, plain C services) can drive the library.
 *
 * ABI stability rules (see docs/ARCHITECTURE.md section 11):
 *
 *  - This header is pure C11; it never includes C++ headers and
 *    compiles under `-std=c11 -Wall -Werror` (capi/smoke_client.c is
 *    the CI proof).
 *  - Handles are opaque; their layout may change freely between
 *    releases. New capabilities arrive as new functions, never as
 *    struct fields.
 *  - Error codes are append-only: existing enumerator values never
 *    change or disappear.
 *  - Configuration travels as JSON strings (`params_json`), so new
 *    keys are backwards compatible; unknown keys are an error, which
 *    catches typos instead of silently training the wrong thing.
 *
 * Error handling: every fallible function returns a swiftrl_status.
 * On any non-OK return, swiftrl_last_error() gives a human-readable
 * reason (thread-local, valid until the calling thread's next API
 * call). Unlike the C++ layer — which treats invalid configuration
 * as a programming error and aborts — this boundary validates first
 * and reports, because an embedder's bad input must never kill the
 * embedding process.
 *
 * Training params_json keys (all optional unless noted):
 *   "env"            (required) "frozenlake" | "frozenlake-det" |
 *                    "taxi" | "cliffwalking"
 *   "cores"          PIM cores to train on            (default 125)
 *   "host_threads"   simulation host threads; 0 = all (default 0)
 *   "transitions"    offline dataset size         (default 16384)
 *   "collect_seed"   dataset collection seed          (default 1234)
 *   "algo"           "qlearning" | "sarsa"     (default "qlearning")
 *   "sampling"       "seq" | "ran" | "str"          (default "seq")
 *   "format"         "fp32" | "int32"              (default "fp32")
 *   "alpha" "gamma" "epsilon" "episodes" "stride" "seed"
 *                    hyper-parameters      (paper defaults, Sec 4.1)
 *   "tau"            synchronisation period            (default 50)
 *   "block_transitions"  staging block size           (default 128)
 *   "tasklets"       threads per core, 1..24            (default 1)
 *   "weighted"       visit-weighted aggregation     (default false)
 *   "epsilon_decay"  per-round epsilon multiplier     (default 1.0)
 *
 * Serving serving_json keys (both optional; NULL json = defaults):
 *   "max_batch"      queries per batch                 (default 64)
 *   "max_wait_sec"   partial-batch flush deadline  (default 100e-6)
 */

#ifndef SWIFTRL_CAPI_SWIFTRL_H
#define SWIFTRL_CAPI_SWIFTRL_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/** Typed error codes. Append-only; values are ABI. */
typedef enum swiftrl_status {
    SWIFTRL_OK = 0,
    /** A pointer/range argument is invalid (NULL handle, state id
     *  out of range, negative count). */
    SWIFTRL_ERR_INVALID_ARGUMENT = 1,
    /** params_json failed to parse, or holds an unknown key or an
     *  out-of-range value. */
    SWIFTRL_ERR_PARSE = 2,
    /** The call is not legal in the handle's current state (stepping
     *  a finished session, finishing an unfinished one). */
    SWIFTRL_ERR_STATE = 3,
    /** A file could not be opened, read, or written. */
    SWIFTRL_ERR_IO = 4,
    /** A checkpoint or Q-table file failed its integrity checks
     *  (magic, checksum, format version). */
    SWIFTRL_ERR_CORRUPT = 5,
    /** A checkpoint does not match the params it is restored
     *  under (different workload, machine size, or hypers). */
    SWIFTRL_ERR_MISMATCH = 6,
} swiftrl_status;

/** A training session: one offline run, steppable round by round. */
typedef struct swiftrl_session swiftrl_session;

/** A serving handle: batched greedy-action queries on a Q-table. */
typedef struct swiftrl_policy swiftrl_policy;

/** Library version, "major.minor.patch". Static storage. */
const char *swiftrl_version(void);

/** Enumerator name of @p status ("SWIFTRL_ERR_IO"). Static
 *  storage; never NULL. */
const char *swiftrl_status_name(swiftrl_status status);

/**
 * Reason for the calling thread's most recent non-OK return; ""
 * when the last call succeeded. Thread-local; the pointer is valid
 * until this thread's next libswiftrl call.
 */
const char *swiftrl_last_error(void);

/* --- one-shot training ------------------------------------------- */

/**
 * Collect a dataset, train to completion, and write the final
 * Q-table to @p q_table_path — swiftrl_session_create + step-until-
 * done + finish in one call.
 */
swiftrl_status swiftrl_train(const char *params_json,
                             const char *q_table_path);

/* --- sessions ------------------------------------------------------ */

/**
 * Build a session from @p params_json: instantiate the environment,
 * collect the offline dataset, build the simulated machine, and
 * scatter the initial state. On SWIFTRL_OK, *out_session owns the
 * run; free with swiftrl_session_free.
 */
swiftrl_status swiftrl_session_create(const char *params_json,
                                      swiftrl_session **out_session);

/**
 * Run one synchronisation round (launch, gather, aggregate, reduce,
 * broadcast). On SWIFTRL_OK, *out_remaining (when non-NULL) holds
 * the episodes still to train; 0 means the run is ready for
 * swiftrl_session_finish. Stepping a session whose budget is
 * exhausted is SWIFTRL_ERR_STATE.
 */
swiftrl_status swiftrl_session_step(swiftrl_session *session,
                                    int *out_remaining);

/**
 * Persist the session's complete training state to @p path. Legal
 * between any two steps; the file restores — in this process or a
 * fresh one — to a run that finishes bit-identically to never
 * having stopped.
 */
swiftrl_status swiftrl_session_checkpoint(swiftrl_session *session,
                                          const char *path);

/**
 * Rebuild a session from a checkpoint file. @p params_json must
 * describe the checkpointed run (same machine size, workload,
 * hypers, and dataset parameters); a mismatch is
 * SWIFTRL_ERR_MISMATCH, never a silently different run.
 */
swiftrl_status swiftrl_session_restore(const char *params_json,
                                       const char *checkpoint_path,
                                       swiftrl_session **out_session);

/**
 * Issue the final retrieval and write the trained Q-table to
 * @p q_table_path. Legal once, after the episode budget is
 * exhausted (swiftrl_session_step reported 0 remaining); the
 * session is spent afterwards (free it).
 */
swiftrl_status swiftrl_session_finish(swiftrl_session *session,
                                      const char *q_table_path);

/** Synchronisation rounds completed so far; -1 on NULL. */
int swiftrl_session_rounds(const swiftrl_session *session);

/** Episodes still to train; -1 on NULL. */
int swiftrl_session_episodes_remaining(
    const swiftrl_session *session);

/** Destroy a session (any state). NULL is a no-op. */
void swiftrl_session_free(swiftrl_session *session);

/* --- policy serving ------------------------------------------------ */

/**
 * Load a trained Q-table file and start a batched greedy-action
 * server over it. @p serving_json configures the batcher (see file
 * comment); NULL means defaults. On SWIFTRL_OK, *out_policy owns
 * the server; free with swiftrl_policy_free.
 */
swiftrl_status swiftrl_policy_load(const char *q_table_path,
                                   const char *serving_json,
                                   swiftrl_policy **out_policy);

/**
 * Answer @p count queries: actions[i] = the greedy action of
 * states[i]. Blocks until served; concurrent callers from any
 * threads are coalesced into batches. Any out-of-range state fails
 * the whole call with SWIFTRL_ERR_INVALID_ARGUMENT (no partial
 * writes).
 */
swiftrl_status swiftrl_policy_act_batch(swiftrl_policy *policy,
                                        const int32_t *states,
                                        int32_t *actions,
                                        size_t count);

/** States (rows) of the loaded table; -1 on NULL. */
int32_t swiftrl_policy_num_states(const swiftrl_policy *policy);

/** Actions (columns) of the loaded table; -1 on NULL. */
int32_t swiftrl_policy_num_actions(const swiftrl_policy *policy);

/** Stop serving and destroy the handle. NULL is a no-op. */
void swiftrl_policy_free(swiftrl_policy *policy);

/* --- diagnostics --------------------------------------------------- */

/**
 * Dump the library's always-on flight recorder — the last ~256
 * span/log breadcrumbs from every subsystem — for post-mortem
 * diagnosis. With a non-NULL @p path, writes self-describing JSON
 * ({"schema":"swiftrl-flight-v1",...}) to that file and returns
 * SWIFTRL_ERR_IO if it cannot be written; with NULL, prints the
 * ring as text to stderr. Observation-only: dumping never perturbs
 * training or serving results.
 */
swiftrl_status swiftrl_dump_flight_record(const char *path);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SWIFTRL_CAPI_SWIFTRL_H */
