/**
 * @file
 * Implementation of the stable C API (capi/swiftrl.h) over the C++
 * library: TrainerSession for training, serving::PolicyServer for
 * inference, common/json for the params documents.
 *
 * The one design rule of this layer: *validate, then call*. The C++
 * layer treats invalid configuration as a programming error and
 * aborts (SWIFTRL_FATAL); here every input crosses a trust boundary,
 * so each entry point re-checks what the C++ constructors would be
 * fatal about — JSON shape, enum spellings, numeric ranges,
 * checkpoint identity — and turns the failure into a status code
 * plus a thread-local message before any fatal path is reachable.
 */

#include "capi/swiftrl.h"

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <iostream>

#include "common/json.hh"
#include "pimsim/pim_system.hh"
#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/serialization.hh"
#include "rlenv/environment.hh"
#include "rlenv/registry.hh"
#include "serving/policy_server.hh"
#include "swiftrl/session.hh"
#include "swiftrl/sharding.hh"

namespace {

namespace rlcore = swiftrl::rlcore;
namespace rlenv = swiftrl::rlenv;

static_assert(std::is_same_v<rlenv::StateId, std::int32_t> &&
                  std::is_same_v<rlenv::ActionId, std::int32_t>,
              "the C ABI promises int32_t state/action ids");

thread_local std::string t_lastError;

swiftrl_status
ok()
{
    t_lastError.clear();
    return SWIFTRL_OK;
}

swiftrl_status
fail(swiftrl_status status, std::string reason)
{
    t_lastError = std::move(reason);
    return status;
}

/** IO errors say "cannot open"; everything else about a file that
 *  did open is a content (corruption/version) problem. */
swiftrl_status
fileStatus(const std::string &reason)
{
    return reason.find("cannot open") != std::string::npos
               ? SWIFTRL_ERR_IO
               : SWIFTRL_ERR_CORRUPT;
}

/** Everything swiftrl_session_create needs, parsed and validated. */
struct TrainParams
{
    std::string env = "frozenlake";
    std::size_t cores = 125;
    unsigned hostThreads = 0;
    std::size_t transitions = 16384;
    std::uint64_t collectSeed = 1234;
    /** Shape of the validated environment (parse resolves it). */
    rlenv::StateId numStates = 0;
    rlenv::ActionId numActions = 0;
    swiftrl::SessionConfig session;
};

bool
parseEnum(const std::string &value,
          const std::vector<std::pair<std::string, int>> &table,
          int *out)
{
    for (const auto &[name, tag] : table) {
        if (value == name) {
            *out = tag;
            return true;
        }
    }
    return false;
}

/** Parse + validate params_json into @p params; false + reason on
 *  any problem the C++ layer would abort over. */
bool
parseTrainParams(const char *params_json, TrainParams &params,
                 std::string &reason)
{
    if (params_json == nullptr) {
        reason = "params_json must not be NULL";
        return false;
    }
    std::string parse_error;
    const auto doc =
        swiftrl::json::parseJson(params_json, &parse_error);
    if (!doc) {
        reason = "params_json: " + parse_error;
        return false;
    }
    if (!doc->isObject()) {
        reason = "params_json must be a JSON object";
        return false;
    }

    static const char *const kKnown[] = {
        "env",      "cores",    "host_threads",
        "transitions", "collect_seed", "algo",
        "sampling", "format",   "alpha",
        "gamma",    "epsilon",  "episodes",
        "stride",   "seed",     "tau",
        "block_transitions", "tasklets", "weighted",
        "epsilon_decay", "shards",
    };
    for (const auto &[key, value] : doc->members) {
        bool known = false;
        for (const char *k : kKnown)
            known = known || key == k;
        if (!known) {
            reason = "params_json: unknown key \"" + key + "\"";
            return false;
        }
        (void)value;
    }

    params.env = doc->stringOr("env", "");
    if (params.env.empty()) {
        reason = "params_json: \"env\" is required";
        return false;
    }
    // tryMakeEnvironment covers the procedural families
    // ("lake:<side>", "mptaxi:<side>x<P>") that a fixed-name lookup
    // would reject, and returns the spec-specific parse error.
    std::string env_error;
    const auto probe_env =
        rlenv::tryMakeEnvironment(params.env, &env_error);
    if (!probe_env) {
        reason = "params_json: " + env_error;
        return false;
    }
    params.numStates = probe_env->numStates();
    params.numActions = probe_env->numActions();

    const long cores = doc->intOr("cores", 125);
    const long host_threads = doc->intOr("host_threads", 0);
    const long transitions = doc->intOr("transitions", 16384);
    if (cores < 1) {
        reason = "params_json: \"cores\" must be >= 1";
        return false;
    }
    if (host_threads < 0) {
        reason = "params_json: \"host_threads\" must be >= 0";
        return false;
    }
    // transitions < cores is fine: partitionDataset hands the excess
    // cores empty chunks, and empty chunks train zero episodes of
    // nothing — only a fully empty dataset is meaningless.
    if (transitions < 1) {
        reason = "params_json: \"transitions\" must be >= 1";
        return false;
    }
    params.cores = static_cast<std::size_t>(cores);
    params.hostThreads = static_cast<unsigned>(host_threads);
    params.transitions = static_cast<std::size_t>(transitions);
    params.collectSeed =
        static_cast<std::uint64_t>(doc->intOr("collect_seed", 1234));

    int tag = 0;
    const std::string algo = doc->stringOr("algo", "qlearning");
    if (!parseEnum(algo,
                   {{"qlearning",
                     int(rlcore::Algorithm::QLearning)},
                    {"sarsa", int(rlcore::Algorithm::Sarsa)}},
                   &tag)) {
        reason = "params_json: \"algo\" must be qlearning or sarsa";
        return false;
    }
    params.session.workload.algo = rlcore::Algorithm(tag);

    const std::string sampling = doc->stringOr("sampling", "seq");
    if (!parseEnum(sampling,
                   {{"seq", int(rlcore::Sampling::Seq)},
                    {"ran", int(rlcore::Sampling::Ran)},
                    {"str", int(rlcore::Sampling::Str)}},
                   &tag)) {
        reason = "params_json: \"sampling\" must be seq, ran, or str";
        return false;
    }
    params.session.workload.sampling = rlcore::Sampling(tag);

    const std::string format = doc->stringOr("format", "fp32");
    if (!parseEnum(format,
                   {{"fp32", int(rlcore::NumericFormat::Fp32)},
                    {"int32", int(rlcore::NumericFormat::Int32)}},
                   &tag)) {
        reason = "params_json: \"format\" must be fp32 or int32";
        return false;
    }
    params.session.workload.format = rlcore::NumericFormat(tag);

    auto &hyper = params.session.hyper;
    hyper.alpha =
        static_cast<float>(doc->numberOr("alpha", hyper.alpha));
    hyper.gamma =
        static_cast<float>(doc->numberOr("gamma", hyper.gamma));
    hyper.epsilon =
        static_cast<float>(doc->numberOr("epsilon", hyper.epsilon));
    hyper.episodes =
        static_cast<int>(doc->intOr("episodes", hyper.episodes));
    hyper.stride =
        static_cast<int>(doc->intOr("stride", hyper.stride));
    hyper.seed =
        static_cast<std::uint64_t>(doc->intOr("seed", 42));
    if (hyper.episodes <= 0) {
        reason = "params_json: \"episodes\" must be >= 1";
        return false;
    }
    if (hyper.stride <= 0) {
        reason = "params_json: \"stride\" must be >= 1";
        return false;
    }

    params.session.tau =
        static_cast<int>(doc->intOr("tau", params.session.tau));
    if (params.session.tau <= 0) {
        reason = "params_json: \"tau\" must be >= 1";
        return false;
    }
    const long block = doc->intOr("block_transitions", 128);
    if (block < 1) {
        reason = "params_json: \"block_transitions\" must be >= 1";
        return false;
    }
    params.session.blockTransitions =
        static_cast<std::size_t>(block);
    const long tasklets = doc->intOr("tasklets", 1);
    if (tasklets < 1 || tasklets > 24) {
        reason = "params_json: \"tasklets\" must be in 1..24";
        return false;
    }
    params.session.tasklets = static_cast<unsigned>(tasklets);
    params.session.weightedAggregation =
        doc->boolOr("weighted", false);
    params.session.epsilonDecay = static_cast<float>(
        doc->numberOr("epsilon_decay", 1.0));
    if (!(params.session.epsilonDecay > 0.0f) ||
        params.session.epsilonDecay > 1.0f) {
        reason = "params_json: \"epsilon_decay\" must be in (0, 1]";
        return false;
    }

    const long shards = doc->intOr("shards", 0);
    if (shards < 0) {
        reason = "params_json: \"shards\" must be >= 0";
        return false;
    }
    params.session.shards = static_cast<std::size_t>(shards);
    if (params.session.shards > 0) {
        // Everything TrainerSession would be fatal about, rechecked
        // here so an embedder gets a status code instead of abort():
        // mode compatibility, plan validity, and the conservative
        // MRAM demand bound against the default bank size.
        if (params.session.weightedAggregation) {
            reason = "params_json: \"shards\" and \"weighted\" are "
                     "incompatible";
            return false;
        }
        const std::string plan_reason = swiftrl::shardPlanInvalidReason(
            params.numStates, params.session.shards, params.cores);
        if (!plan_reason.empty()) {
            reason = "params_json: \"shards\": " + plan_reason;
            return false;
        }
        const std::size_t demand = swiftrl::shardedMramDemandBound(
            params.numStates, params.numActions,
            params.session.shards, params.transitions);
        const std::size_t bank =
            swiftrl::pimsim::PimConfig{}.mramBytesPerDpu;
        if (demand > bank) {
            reason = "params_json: sharded layout needs " +
                     std::to_string(demand) +
                     " bytes of MRAM per core but banks hold " +
                     std::to_string(bank) +
                     "; raise \"shards\" or lower \"transitions\"";
            return false;
        }
    }
    params.session.streaming = false;
    return true;
}

} // namespace

/** One C-API training run: the machine, the dataset, the session. */
struct swiftrl_session
{
    TrainParams params;
    std::unique_ptr<swiftrl::pimsim::PimSystem> system;
    rlcore::Dataset data;
    std::unique_ptr<swiftrl::TrainerSession> session;
    bool finished = false;
};

/** One C-API serving handle over a loaded Q-table. */
struct swiftrl_policy
{
    explicit swiftrl_policy(rlcore::QTable table,
                            swiftrl::serving::ServingConfig config)
        : server(std::move(table), config)
    {
    }
    swiftrl::serving::PolicyServer server;
};

namespace {

/** Shared body of create and restore: build everything up to (but
 *  not including) begin/restore on the session. */
std::unique_ptr<swiftrl_session>
buildSession(const TrainParams &params)
{
    auto handle = std::make_unique<swiftrl_session>();
    handle->params = params;
    const auto env = rlenv::makeEnvironment(params.env);
    handle->data = rlcore::collectRandomDataset(
        *env, params.transitions, params.collectSeed);
    swiftrl::pimsim::PimConfig machine;
    machine.numDpus = params.cores;
    machine.hostThreads = params.hostThreads;
    handle->system =
        std::make_unique<swiftrl::pimsim::PimSystem>(machine);
    handle->session = std::make_unique<swiftrl::TrainerSession>(
        *handle->system, params.session);
    return handle;
}

} // namespace

extern "C" {

const char *
swiftrl_version(void)
{
    return "1.0.0";
}

const char *
swiftrl_status_name(swiftrl_status status)
{
    switch (status) {
    case SWIFTRL_OK: return "SWIFTRL_OK";
    case SWIFTRL_ERR_INVALID_ARGUMENT:
        return "SWIFTRL_ERR_INVALID_ARGUMENT";
    case SWIFTRL_ERR_PARSE: return "SWIFTRL_ERR_PARSE";
    case SWIFTRL_ERR_STATE: return "SWIFTRL_ERR_STATE";
    case SWIFTRL_ERR_IO: return "SWIFTRL_ERR_IO";
    case SWIFTRL_ERR_CORRUPT: return "SWIFTRL_ERR_CORRUPT";
    case SWIFTRL_ERR_MISMATCH: return "SWIFTRL_ERR_MISMATCH";
    }
    return "SWIFTRL_ERR_UNKNOWN";
}

const char *
swiftrl_last_error(void)
{
    return t_lastError.c_str();
}

swiftrl_status
swiftrl_session_create(const char *params_json,
                       swiftrl_session **out_session)
{
    if (out_session == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "out_session must not be NULL");
    *out_session = nullptr;
    TrainParams params;
    std::string reason;
    if (!parseTrainParams(params_json, params, reason))
        return fail(SWIFTRL_ERR_PARSE, reason);

    auto handle = buildSession(params);
    const auto env = rlenv::makeEnvironment(params.env);
    handle->session->beginOffline(handle->data, env->numStates(),
                                  env->numActions());
    *out_session = handle.release();
    return ok();
}

swiftrl_status
swiftrl_session_step(swiftrl_session *session, int *out_remaining)
{
    if (session == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "session must not be NULL");
    if (session->finished)
        return fail(SWIFTRL_ERR_STATE,
                    "session is finished; create a new one");
    if (!session->session->step())
        return fail(SWIFTRL_ERR_STATE,
                    "episode budget exhausted; call "
                    "swiftrl_session_finish");
    if (out_remaining)
        *out_remaining = session->session->episodesRemaining();
    return ok();
}

swiftrl_status
swiftrl_session_checkpoint(swiftrl_session *session,
                           const char *path)
{
    if (session == nullptr || path == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "session and path must not be NULL");
    if (session->finished)
        return fail(SWIFTRL_ERR_STATE,
                    "a finished session has nothing to checkpoint");
    std::string reason;
    if (!swiftrl::trySaveCheckpoint(session->session->checkpoint(),
                                    path, &reason))
        return fail(SWIFTRL_ERR_IO, reason);
    return ok();
}

swiftrl_status
swiftrl_session_restore(const char *params_json,
                        const char *checkpoint_path,
                        swiftrl_session **out_session)
{
    if (out_session == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "out_session must not be NULL");
    *out_session = nullptr;
    if (checkpoint_path == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "checkpoint_path must not be NULL");
    TrainParams params;
    std::string reason;
    if (!parseTrainParams(params_json, params, reason))
        return fail(SWIFTRL_ERR_PARSE, reason);

    const auto ck =
        swiftrl::tryLoadCheckpoint(checkpoint_path, &reason);
    if (!ck)
        return fail(fileStatus(reason), reason);
    if (ck->streaming)
        return fail(SWIFTRL_ERR_MISMATCH,
                    "checkpoint is from a streaming run; the C API "
                    "drives offline sessions");
    const std::string why = swiftrl::checkpointMismatch(
        params.session, params.cores, *ck);
    if (!why.empty())
        return fail(SWIFTRL_ERR_MISMATCH, why);
    const auto env = rlenv::makeEnvironment(params.env);
    if (ck->numStates != env->numStates() ||
        ck->numActions != env->numActions())
        return fail(SWIFTRL_ERR_MISMATCH,
                    "checkpoint was trained on a different "
                    "environment shape than \"" + params.env + "\"");

    auto handle = buildSession(params);
    handle->session->restoreOffline(handle->data, *ck);
    *out_session = handle.release();
    return ok();
}

swiftrl_status
swiftrl_session_finish(swiftrl_session *session,
                       const char *q_table_path)
{
    if (session == nullptr || q_table_path == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "session and q_table_path must not be NULL");
    if (session->finished)
        return fail(SWIFTRL_ERR_STATE, "session already finished");
    if (session->session->episodesRemaining() > 0)
        return fail(SWIFTRL_ERR_STATE,
                    "episode budget not exhausted; keep stepping");
    session->session->finishRetrieval();
    session->finished = true;
    std::string reason;
    if (!rlcore::trySaveQTable(session->session->aggregated(),
                               q_table_path, &reason))
        return fail(SWIFTRL_ERR_IO, reason);
    return ok();
}

int
swiftrl_session_rounds(const swiftrl_session *session)
{
    return session ? session->session->commRounds() : -1;
}

int
swiftrl_session_episodes_remaining(const swiftrl_session *session)
{
    return session ? session->session->episodesRemaining() : -1;
}

void
swiftrl_session_free(swiftrl_session *session)
{
    delete session;
}

swiftrl_status
swiftrl_train(const char *params_json, const char *q_table_path)
{
    if (q_table_path == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "q_table_path must not be NULL");
    swiftrl_session *session = nullptr;
    swiftrl_status status =
        swiftrl_session_create(params_json, &session);
    if (status != SWIFTRL_OK)
        return status;
    while (session->session->step()) {
    }
    status = swiftrl_session_finish(session, q_table_path);
    const std::string reason = t_lastError;
    swiftrl_session_free(session);
    if (status != SWIFTRL_OK)
        return fail(status, reason);
    return ok();
}

swiftrl_status
swiftrl_policy_load(const char *q_table_path,
                    const char *serving_json,
                    swiftrl_policy **out_policy)
{
    if (out_policy == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "out_policy must not be NULL");
    *out_policy = nullptr;
    if (q_table_path == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "q_table_path must not be NULL");

    swiftrl::serving::ServingConfig config;
    if (serving_json != nullptr) {
        std::string parse_error;
        const auto doc =
            swiftrl::json::parseJson(serving_json, &parse_error);
        if (!doc)
            return fail(SWIFTRL_ERR_PARSE,
                        "serving_json: " + parse_error);
        if (!doc->isObject())
            return fail(SWIFTRL_ERR_PARSE,
                        "serving_json must be a JSON object");
        for (const auto &[key, value] : doc->members) {
            if (key != "max_batch" && key != "max_wait_sec")
                return fail(SWIFTRL_ERR_PARSE,
                            "serving_json: unknown key \"" + key +
                                "\"");
            (void)value;
        }
        const long max_batch = doc->intOr("max_batch", 64);
        const double max_wait =
            doc->numberOr("max_wait_sec", 100e-6);
        if (max_batch < 1)
            return fail(SWIFTRL_ERR_PARSE,
                        "serving_json: \"max_batch\" must be >= 1");
        if (max_wait < 0.0)
            return fail(SWIFTRL_ERR_PARSE,
                        "serving_json: \"max_wait_sec\" must be "
                        ">= 0");
        config.maxBatch = static_cast<std::size_t>(max_batch);
        config.maxWaitSec = max_wait;
    }

    std::string reason;
    auto table = rlcore::tryLoadQTable(q_table_path, &reason);
    if (!table)
        return fail(fileStatus(reason), reason);

    *out_policy = new swiftrl_policy(*std::move(table), config);
    return ok();
}

swiftrl_status
swiftrl_policy_act_batch(swiftrl_policy *policy,
                         const int32_t *states, int32_t *actions,
                         size_t count)
{
    if (policy == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "policy must not be NULL");
    if (count == 0)
        return ok();
    if (states == nullptr || actions == nullptr)
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "states and actions must not be NULL");
    if (!policy->server.actBatch(states, actions, count))
        return fail(SWIFTRL_ERR_INVALID_ARGUMENT,
                    "a state id is out of range for the loaded "
                    "table");
    return ok();
}

int32_t
swiftrl_policy_num_states(const swiftrl_policy *policy)
{
    return policy ? policy->server.table().numStates() : -1;
}

int32_t
swiftrl_policy_num_actions(const swiftrl_policy *policy)
{
    return policy ? policy->server.table().numActions() : -1;
}

void
swiftrl_policy_free(swiftrl_policy *policy)
{
    delete policy;
}

swiftrl_status
swiftrl_dump_flight_record(const char *path)
{
    auto &tracer = swiftrl::telemetry::tracer();
    if (path == nullptr) {
        tracer.dumpFlightText(std::cerr);
        return ok();
    }
    if (!tracer.writeFlightJson(path)) {
        return fail(SWIFTRL_ERR_IO,
                    std::string("cannot write flight record to ") +
                        path);
    }
    return ok();
}

} // extern "C"
