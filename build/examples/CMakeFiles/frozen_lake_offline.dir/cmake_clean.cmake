file(REMOVE_RECURSE
  "CMakeFiles/frozen_lake_offline.dir/frozen_lake_offline.cpp.o"
  "CMakeFiles/frozen_lake_offline.dir/frozen_lake_offline.cpp.o.d"
  "frozen_lake_offline"
  "frozen_lake_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frozen_lake_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
