# Empty compiler generated dependencies file for frozen_lake_offline.
# This may be replaced when dependencies are built.
