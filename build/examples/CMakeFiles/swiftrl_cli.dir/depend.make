# Empty dependencies file for swiftrl_cli.
# This may be replaced when dependencies are built.
