file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_cli.dir/swiftrl_cli.cpp.o"
  "CMakeFiles/swiftrl_cli.dir/swiftrl_cli.cpp.o.d"
  "swiftrl_cli"
  "swiftrl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
