# Empty dependencies file for taxi_fleet_multiagent.
# This may be replaced when dependencies are built.
