file(REMOVE_RECURSE
  "CMakeFiles/taxi_fleet_multiagent.dir/taxi_fleet_multiagent.cpp.o"
  "CMakeFiles/taxi_fleet_multiagent.dir/taxi_fleet_multiagent.cpp.o.d"
  "taxi_fleet_multiagent"
  "taxi_fleet_multiagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_fleet_multiagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
