# Empty compiler generated dependencies file for sampling_patterns.
# This may be replaced when dependencies are built.
