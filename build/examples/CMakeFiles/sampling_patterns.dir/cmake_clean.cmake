file(REMOVE_RECURSE
  "CMakeFiles/sampling_patterns.dir/sampling_patterns.cpp.o"
  "CMakeFiles/sampling_patterns.dir/sampling_patterns.cpp.o.d"
  "sampling_patterns"
  "sampling_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
