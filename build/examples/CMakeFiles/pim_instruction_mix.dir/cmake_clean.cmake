file(REMOVE_RECURSE
  "CMakeFiles/pim_instruction_mix.dir/pim_instruction_mix.cpp.o"
  "CMakeFiles/pim_instruction_mix.dir/pim_instruction_mix.cpp.o.d"
  "pim_instruction_mix"
  "pim_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
