# Empty compiler generated dependencies file for pim_instruction_mix.
# This may be replaced when dependencies are built.
