# Empty compiler generated dependencies file for fig6_scaling_taxi.
# This may be replaced when dependencies are built.
