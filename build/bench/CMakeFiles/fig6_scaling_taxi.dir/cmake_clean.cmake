file(REMOVE_RECURSE
  "CMakeFiles/fig6_scaling_taxi.dir/fig6_scaling_taxi.cc.o"
  "CMakeFiles/fig6_scaling_taxi.dir/fig6_scaling_taxi.cc.o.d"
  "fig6_scaling_taxi"
  "fig6_scaling_taxi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scaling_taxi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
