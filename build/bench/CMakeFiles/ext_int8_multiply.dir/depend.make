# Empty dependencies file for ext_int8_multiply.
# This may be replaced when dependencies are built.
