file(REMOVE_RECURSE
  "CMakeFiles/ext_int8_multiply.dir/ext_int8_multiply.cc.o"
  "CMakeFiles/ext_int8_multiply.dir/ext_int8_multiply.cc.o.d"
  "ext_int8_multiply"
  "ext_int8_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_int8_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
