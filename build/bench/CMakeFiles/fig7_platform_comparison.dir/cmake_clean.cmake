file(REMOVE_RECURSE
  "CMakeFiles/fig7_platform_comparison.dir/fig7_platform_comparison.cc.o"
  "CMakeFiles/fig7_platform_comparison.dir/fig7_platform_comparison.cc.o.d"
  "fig7_platform_comparison"
  "fig7_platform_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_platform_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
