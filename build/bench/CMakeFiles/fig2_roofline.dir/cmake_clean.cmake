file(REMOVE_RECURSE
  "CMakeFiles/fig2_roofline.dir/fig2_roofline.cc.o"
  "CMakeFiles/fig2_roofline.dir/fig2_roofline.cc.o.d"
  "fig2_roofline"
  "fig2_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
