# Empty compiler generated dependencies file for sec44_multiagent.
# This may be replaced when dependencies are built.
