file(REMOVE_RECURSE
  "CMakeFiles/sec44_multiagent.dir/sec44_multiagent.cc.o"
  "CMakeFiles/sec44_multiagent.dir/sec44_multiagent.cc.o.d"
  "sec44_multiagent"
  "sec44_multiagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_multiagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
