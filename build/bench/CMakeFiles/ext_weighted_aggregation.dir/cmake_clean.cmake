file(REMOVE_RECURSE
  "CMakeFiles/ext_weighted_aggregation.dir/ext_weighted_aggregation.cc.o"
  "CMakeFiles/ext_weighted_aggregation.dir/ext_weighted_aggregation.cc.o.d"
  "ext_weighted_aggregation"
  "ext_weighted_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_weighted_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
