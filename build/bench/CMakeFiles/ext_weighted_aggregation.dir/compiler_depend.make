# Empty compiler generated dependencies file for ext_weighted_aggregation.
# This may be replaced when dependencies are built.
