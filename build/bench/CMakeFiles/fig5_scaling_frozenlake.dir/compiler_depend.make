# Empty compiler generated dependencies file for fig5_scaling_frozenlake.
# This may be replaced when dependencies are built.
