file(REMOVE_RECURSE
  "CMakeFiles/fig5_scaling_frozenlake.dir/fig5_scaling_frozenlake.cc.o"
  "CMakeFiles/fig5_scaling_frozenlake.dir/fig5_scaling_frozenlake.cc.o.d"
  "fig5_scaling_frozenlake"
  "fig5_scaling_frozenlake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling_frozenlake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
