# Empty dependencies file for ext_tasklet_projection.
# This may be replaced when dependencies are built.
