file(REMOVE_RECURSE
  "CMakeFiles/ext_tasklet_projection.dir/ext_tasklet_projection.cc.o"
  "CMakeFiles/ext_tasklet_projection.dir/ext_tasklet_projection.cc.o.d"
  "ext_tasklet_projection"
  "ext_tasklet_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tasklet_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
