file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_quantization.dir/ablation_alpha_quantization.cc.o"
  "CMakeFiles/ablation_alpha_quantization.dir/ablation_alpha_quantization.cc.o.d"
  "ablation_alpha_quantization"
  "ablation_alpha_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
