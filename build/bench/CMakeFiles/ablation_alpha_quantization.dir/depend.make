# Empty dependencies file for ablation_alpha_quantization.
# This may be replaced when dependencies are built.
