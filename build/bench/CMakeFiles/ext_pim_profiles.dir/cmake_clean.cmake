file(REMOVE_RECURSE
  "CMakeFiles/ext_pim_profiles.dir/ext_pim_profiles.cc.o"
  "CMakeFiles/ext_pim_profiles.dir/ext_pim_profiles.cc.o.d"
  "ext_pim_profiles"
  "ext_pim_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pim_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
