# Empty compiler generated dependencies file for ext_pim_profiles.
# This may be replaced when dependencies are built.
