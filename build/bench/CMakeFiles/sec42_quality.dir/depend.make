# Empty dependencies file for sec42_quality.
# This may be replaced when dependencies are built.
