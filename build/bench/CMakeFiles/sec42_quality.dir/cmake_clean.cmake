file(REMOVE_RECURSE
  "CMakeFiles/sec42_quality.dir/sec42_quality.cc.o"
  "CMakeFiles/sec42_quality.dir/sec42_quality.cc.o.d"
  "sec42_quality"
  "sec42_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
