file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_common.dir/cli.cc.o"
  "CMakeFiles/swiftrl_common.dir/cli.cc.o.d"
  "CMakeFiles/swiftrl_common.dir/fixed_point.cc.o"
  "CMakeFiles/swiftrl_common.dir/fixed_point.cc.o.d"
  "CMakeFiles/swiftrl_common.dir/logging.cc.o"
  "CMakeFiles/swiftrl_common.dir/logging.cc.o.d"
  "CMakeFiles/swiftrl_common.dir/rng.cc.o"
  "CMakeFiles/swiftrl_common.dir/rng.cc.o.d"
  "CMakeFiles/swiftrl_common.dir/stats.cc.o"
  "CMakeFiles/swiftrl_common.dir/stats.cc.o.d"
  "CMakeFiles/swiftrl_common.dir/table.cc.o"
  "CMakeFiles/swiftrl_common.dir/table.cc.o.d"
  "libswiftrl_common.a"
  "libswiftrl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
