file(REMOVE_RECURSE
  "libswiftrl_common.a"
)
