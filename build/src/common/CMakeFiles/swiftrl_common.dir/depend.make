# Empty dependencies file for swiftrl_common.
# This may be replaced when dependencies are built.
