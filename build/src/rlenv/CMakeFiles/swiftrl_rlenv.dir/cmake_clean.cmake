file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_rlenv.dir/cliff_walking.cc.o"
  "CMakeFiles/swiftrl_rlenv.dir/cliff_walking.cc.o.d"
  "CMakeFiles/swiftrl_rlenv.dir/frozen_lake.cc.o"
  "CMakeFiles/swiftrl_rlenv.dir/frozen_lake.cc.o.d"
  "CMakeFiles/swiftrl_rlenv.dir/registry.cc.o"
  "CMakeFiles/swiftrl_rlenv.dir/registry.cc.o.d"
  "CMakeFiles/swiftrl_rlenv.dir/taxi.cc.o"
  "CMakeFiles/swiftrl_rlenv.dir/taxi.cc.o.d"
  "libswiftrl_rlenv.a"
  "libswiftrl_rlenv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_rlenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
