file(REMOVE_RECURSE
  "libswiftrl_rlenv.a"
)
