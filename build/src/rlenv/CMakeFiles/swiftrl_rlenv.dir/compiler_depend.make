# Empty compiler generated dependencies file for swiftrl_rlenv.
# This may be replaced when dependencies are built.
