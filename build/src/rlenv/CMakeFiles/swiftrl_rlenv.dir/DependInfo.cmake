
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlenv/cliff_walking.cc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/cliff_walking.cc.o" "gcc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/cliff_walking.cc.o.d"
  "/root/repo/src/rlenv/frozen_lake.cc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/frozen_lake.cc.o" "gcc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/frozen_lake.cc.o.d"
  "/root/repo/src/rlenv/registry.cc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/registry.cc.o" "gcc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/registry.cc.o.d"
  "/root/repo/src/rlenv/taxi.cc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/taxi.cc.o" "gcc" "src/rlenv/CMakeFiles/swiftrl_rlenv.dir/taxi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swiftrl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
