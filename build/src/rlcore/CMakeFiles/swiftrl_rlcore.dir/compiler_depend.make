# Empty compiler generated dependencies file for swiftrl_rlcore.
# This may be replaced when dependencies are built.
