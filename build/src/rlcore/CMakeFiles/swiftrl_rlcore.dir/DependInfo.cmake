
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlcore/collection.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/collection.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/collection.cc.o.d"
  "/root/repo/src/rlcore/dataset.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/dataset.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/dataset.cc.o.d"
  "/root/repo/src/rlcore/evaluate.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/evaluate.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/evaluate.cc.o.d"
  "/root/repo/src/rlcore/mdp.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/mdp.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/mdp.cc.o.d"
  "/root/repo/src/rlcore/policy.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/policy.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/policy.cc.o.d"
  "/root/repo/src/rlcore/qtable.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/qtable.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/qtable.cc.o.d"
  "/root/repo/src/rlcore/serialization.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/serialization.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/serialization.cc.o.d"
  "/root/repo/src/rlcore/trainers.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/trainers.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/trainers.cc.o.d"
  "/root/repo/src/rlcore/types.cc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/types.cc.o" "gcc" "src/rlcore/CMakeFiles/swiftrl_rlcore.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swiftrl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rlenv/CMakeFiles/swiftrl_rlenv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
