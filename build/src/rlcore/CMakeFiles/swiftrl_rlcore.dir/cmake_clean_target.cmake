file(REMOVE_RECURSE
  "libswiftrl_rlcore.a"
)
