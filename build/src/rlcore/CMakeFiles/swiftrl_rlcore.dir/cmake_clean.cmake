file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_rlcore.dir/collection.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/collection.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/dataset.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/dataset.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/evaluate.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/evaluate.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/mdp.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/mdp.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/policy.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/policy.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/qtable.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/qtable.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/serialization.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/serialization.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/trainers.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/trainers.cc.o.d"
  "CMakeFiles/swiftrl_rlcore.dir/types.cc.o"
  "CMakeFiles/swiftrl_rlcore.dir/types.cc.o.d"
  "libswiftrl_rlcore.a"
  "libswiftrl_rlcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_rlcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
