file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_pimsim.dir/cost_model.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/cost_model.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/dpu.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/dpu.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/kernel_context.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/kernel_context.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/pim_system.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/pim_system.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/profiles.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/profiles.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/stats_report.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/stats_report.cc.o.d"
  "CMakeFiles/swiftrl_pimsim.dir/transfer_model.cc.o"
  "CMakeFiles/swiftrl_pimsim.dir/transfer_model.cc.o.d"
  "libswiftrl_pimsim.a"
  "libswiftrl_pimsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_pimsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
