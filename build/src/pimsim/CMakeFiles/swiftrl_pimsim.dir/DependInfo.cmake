
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pimsim/cost_model.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/cost_model.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/cost_model.cc.o.d"
  "/root/repo/src/pimsim/dpu.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/dpu.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/dpu.cc.o.d"
  "/root/repo/src/pimsim/kernel_context.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/kernel_context.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/kernel_context.cc.o.d"
  "/root/repo/src/pimsim/pim_system.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/pim_system.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/pim_system.cc.o.d"
  "/root/repo/src/pimsim/profiles.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/profiles.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/profiles.cc.o.d"
  "/root/repo/src/pimsim/stats_report.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/stats_report.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/stats_report.cc.o.d"
  "/root/repo/src/pimsim/transfer_model.cc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/transfer_model.cc.o" "gcc" "src/pimsim/CMakeFiles/swiftrl_pimsim.dir/transfer_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/swiftrl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
