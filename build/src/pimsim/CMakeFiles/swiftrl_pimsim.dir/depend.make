# Empty dependencies file for swiftrl_pimsim.
# This may be replaced when dependencies are built.
