file(REMOVE_RECURSE
  "libswiftrl_pimsim.a"
)
