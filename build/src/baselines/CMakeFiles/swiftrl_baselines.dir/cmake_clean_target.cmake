file(REMOVE_RECURSE
  "libswiftrl_baselines.a"
)
