# Empty compiler generated dependencies file for swiftrl_baselines.
# This may be replaced when dependencies are built.
