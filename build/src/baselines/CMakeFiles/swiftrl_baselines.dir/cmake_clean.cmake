file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_baselines.dir/cpu_baselines.cc.o"
  "CMakeFiles/swiftrl_baselines.dir/cpu_baselines.cc.o.d"
  "CMakeFiles/swiftrl_baselines.dir/platform_model.cc.o"
  "CMakeFiles/swiftrl_baselines.dir/platform_model.cc.o.d"
  "libswiftrl_baselines.a"
  "libswiftrl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
