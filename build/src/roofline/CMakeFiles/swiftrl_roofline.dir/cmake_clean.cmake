file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_roofline.dir/roofline.cc.o"
  "CMakeFiles/swiftrl_roofline.dir/roofline.cc.o.d"
  "libswiftrl_roofline.a"
  "libswiftrl_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
