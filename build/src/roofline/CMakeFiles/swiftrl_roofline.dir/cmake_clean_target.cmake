file(REMOVE_RECURSE
  "libswiftrl_roofline.a"
)
