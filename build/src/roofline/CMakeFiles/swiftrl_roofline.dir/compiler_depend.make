# Empty compiler generated dependencies file for swiftrl_roofline.
# This may be replaced when dependencies are built.
