file(REMOVE_RECURSE
  "libswiftrl_core.a"
)
