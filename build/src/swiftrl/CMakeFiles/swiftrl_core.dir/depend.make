# Empty dependencies file for swiftrl_core.
# This may be replaced when dependencies are built.
