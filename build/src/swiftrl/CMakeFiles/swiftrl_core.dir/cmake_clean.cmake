file(REMOVE_RECURSE
  "CMakeFiles/swiftrl_core.dir/partition.cc.o"
  "CMakeFiles/swiftrl_core.dir/partition.cc.o.d"
  "CMakeFiles/swiftrl_core.dir/pim_kernels.cc.o"
  "CMakeFiles/swiftrl_core.dir/pim_kernels.cc.o.d"
  "CMakeFiles/swiftrl_core.dir/pim_trainer.cc.o"
  "CMakeFiles/swiftrl_core.dir/pim_trainer.cc.o.d"
  "CMakeFiles/swiftrl_core.dir/workload.cc.o"
  "CMakeFiles/swiftrl_core.dir/workload.cc.o.d"
  "libswiftrl_core.a"
  "libswiftrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiftrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
