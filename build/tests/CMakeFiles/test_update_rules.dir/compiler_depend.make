# Empty compiler generated dependencies file for test_update_rules.
# This may be replaced when dependencies are built.
