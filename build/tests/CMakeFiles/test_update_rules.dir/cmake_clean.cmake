file(REMOVE_RECURSE
  "CMakeFiles/test_update_rules.dir/test_update_rules.cc.o"
  "CMakeFiles/test_update_rules.dir/test_update_rules.cc.o.d"
  "test_update_rules"
  "test_update_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
