file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_baselines.dir/test_cpu_baselines.cc.o"
  "CMakeFiles/test_cpu_baselines.dir/test_cpu_baselines.cc.o.d"
  "test_cpu_baselines"
  "test_cpu_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
