# Empty compiler generated dependencies file for test_frozen_lake.
# This may be replaced when dependencies are built.
