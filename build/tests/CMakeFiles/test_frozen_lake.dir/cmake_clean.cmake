file(REMOVE_RECURSE
  "CMakeFiles/test_frozen_lake.dir/test_frozen_lake.cc.o"
  "CMakeFiles/test_frozen_lake.dir/test_frozen_lake.cc.o.d"
  "test_frozen_lake"
  "test_frozen_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frozen_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
