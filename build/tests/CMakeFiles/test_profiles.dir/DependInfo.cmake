
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_profiles.cc" "tests/CMakeFiles/test_profiles.dir/test_profiles.cc.o" "gcc" "tests/CMakeFiles/test_profiles.dir/test_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/swiftrl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/swiftrl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/swiftrl/CMakeFiles/swiftrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pimsim/CMakeFiles/swiftrl_pimsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rlcore/CMakeFiles/swiftrl_rlcore.dir/DependInfo.cmake"
  "/root/repo/build/src/rlenv/CMakeFiles/swiftrl_rlenv.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/swiftrl_roofline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
