# Empty dependencies file for test_platform_model.
# This may be replaced when dependencies are built.
