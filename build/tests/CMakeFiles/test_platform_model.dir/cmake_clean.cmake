file(REMOVE_RECURSE
  "CMakeFiles/test_platform_model.dir/test_platform_model.cc.o"
  "CMakeFiles/test_platform_model.dir/test_platform_model.cc.o.d"
  "test_platform_model"
  "test_platform_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
