file(REMOVE_RECURSE
  "CMakeFiles/test_dpu.dir/test_dpu.cc.o"
  "CMakeFiles/test_dpu.dir/test_dpu.cc.o.d"
  "test_dpu"
  "test_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
