file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_context.dir/test_kernel_context.cc.o"
  "CMakeFiles/test_kernel_context.dir/test_kernel_context.cc.o.d"
  "test_kernel_context"
  "test_kernel_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
