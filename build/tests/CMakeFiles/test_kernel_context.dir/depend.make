# Empty dependencies file for test_kernel_context.
# This may be replaced when dependencies are built.
