file(REMOVE_RECURSE
  "CMakeFiles/test_tasklets.dir/test_tasklets.cc.o"
  "CMakeFiles/test_tasklets.dir/test_tasklets.cc.o.d"
  "test_tasklets"
  "test_tasklets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasklets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
