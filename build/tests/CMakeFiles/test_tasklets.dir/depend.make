# Empty dependencies file for test_tasklets.
# This may be replaced when dependencies are built.
