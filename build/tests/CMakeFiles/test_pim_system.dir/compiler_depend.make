# Empty compiler generated dependencies file for test_pim_system.
# This may be replaced when dependencies are built.
