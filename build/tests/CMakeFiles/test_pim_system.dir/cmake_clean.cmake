file(REMOVE_RECURSE
  "CMakeFiles/test_pim_system.dir/test_pim_system.cc.o"
  "CMakeFiles/test_pim_system.dir/test_pim_system.cc.o.d"
  "test_pim_system"
  "test_pim_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
