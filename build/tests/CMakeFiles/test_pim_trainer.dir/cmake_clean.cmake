file(REMOVE_RECURSE
  "CMakeFiles/test_pim_trainer.dir/test_pim_trainer.cc.o"
  "CMakeFiles/test_pim_trainer.dir/test_pim_trainer.cc.o.d"
  "test_pim_trainer"
  "test_pim_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
