# Empty dependencies file for test_taxi.
# This may be replaced when dependencies are built.
