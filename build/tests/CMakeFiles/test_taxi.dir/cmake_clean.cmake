file(REMOVE_RECURSE
  "CMakeFiles/test_taxi.dir/test_taxi.cc.o"
  "CMakeFiles/test_taxi.dir/test_taxi.cc.o.d"
  "test_taxi"
  "test_taxi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taxi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
