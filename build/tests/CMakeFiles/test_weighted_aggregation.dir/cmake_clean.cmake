file(REMOVE_RECURSE
  "CMakeFiles/test_weighted_aggregation.dir/test_weighted_aggregation.cc.o"
  "CMakeFiles/test_weighted_aggregation.dir/test_weighted_aggregation.cc.o.d"
  "test_weighted_aggregation"
  "test_weighted_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
