# Empty dependencies file for test_weighted_aggregation.
# This may be replaced when dependencies are built.
