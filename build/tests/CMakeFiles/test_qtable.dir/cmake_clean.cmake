file(REMOVE_RECURSE
  "CMakeFiles/test_qtable.dir/test_qtable.cc.o"
  "CMakeFiles/test_qtable.dir/test_qtable.cc.o.d"
  "test_qtable"
  "test_qtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
