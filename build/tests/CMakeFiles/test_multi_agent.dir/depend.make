# Empty dependencies file for test_multi_agent.
# This may be replaced when dependencies are built.
