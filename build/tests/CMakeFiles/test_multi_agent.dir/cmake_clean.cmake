file(REMOVE_RECURSE
  "CMakeFiles/test_multi_agent.dir/test_multi_agent.cc.o"
  "CMakeFiles/test_multi_agent.dir/test_multi_agent.cc.o.d"
  "test_multi_agent"
  "test_multi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
