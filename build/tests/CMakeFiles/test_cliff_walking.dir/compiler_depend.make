# Empty compiler generated dependencies file for test_cliff_walking.
# This may be replaced when dependencies are built.
