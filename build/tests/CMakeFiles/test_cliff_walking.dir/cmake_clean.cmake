file(REMOVE_RECURSE
  "CMakeFiles/test_cliff_walking.dir/test_cliff_walking.cc.o"
  "CMakeFiles/test_cliff_walking.dir/test_cliff_walking.cc.o.d"
  "test_cliff_walking"
  "test_cliff_walking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cliff_walking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
