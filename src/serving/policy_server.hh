/**
 * @file
 * The policy-serving frontend: answers greedy-action queries from a
 * trained Q-table, coalescing concurrent requests into batches.
 *
 * Training produces a Q-table (the deployed artefact of the offline
 * pipeline, Figure 1); this module is the inference side. Callers —
 * application threads, or the C API's swiftrl_policy_act_batch —
 * submit blocking queries; a single worker thread drains the queue in
 * batches of up to `maxBatch` queries, waiting at most `maxWaitSec`
 * (wall-clock) after the first pending query before flushing a
 * partial batch. Batching amortises the per-wakeup synchronisation
 * cost across queries, which is what bench/perf_policy_qps.cc
 * measures.
 *
 * Unlike the simulator, this is a *host-side, wall-clock* component:
 * nothing here touches modelled time or the command stream. The
 * answers themselves are pure table lookups (QTable::greedyAction),
 * so batching changes throughput, never the returned actions.
 *
 * Telemetry (optional, per design rule 1 of metric_registry.hh —
 * observation only): per-tenant request/query counters, batch
 * counters split by flush reason, and a batch-size histogram. All
 * metric updates happen on the worker thread (single-writer).
 */

#ifndef SWIFTRL_SERVING_POLICY_SERVER_HH
#define SWIFTRL_SERVING_POLICY_SERVER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "rlcore/qtable.hh"
#include "telemetry/tracing.hh"

namespace swiftrl::telemetry {
class MetricRegistry;
}

namespace swiftrl::serving {

/** Configuration of one PolicyServer. */
struct ServingConfig
{
    /**
     * Flush a batch once this many queries are pending. A single
     * request larger than maxBatch is served as one oversized batch
     * (requests are never split). 1 disables coalescing — every
     * request is its own batch, the unbatched baseline.
     */
    std::size_t maxBatch = 64;

    /**
     * Longest wall-clock wait after the first pending query before a
     * partial batch is flushed anyway. Bounds the latency a query can
     * pay for the chance of being coalesced. 0 flushes as soon as the
     * worker wakes.
     */
    double maxWaitSec = 100e-6;

    /** Telemetry destination (null = off, the default). */
    telemetry::MetricRegistry *metrics = nullptr;

    /**
     * Causal-trace parent of this server's "serving.server" span
     * (0 = root). The fleet CLI sets the owning job's fleet.job span
     * id here so serve traffic parents up to the job that trained the
     * table. Observation-only.
     */
    std::uint64_t traceParent = 0;
};

/** Whole-lifetime serving counters (see PolicyServer::stats). */
struct ServingStats
{
    /** Queries answered (one state -> action lookup each). */
    std::uint64_t queries = 0;

    /** Client requests served (each carries >= 1 queries). */
    std::uint64_t requests = 0;

    /** Batches flushed in total. */
    std::uint64_t batches = 0;

    /** Batches flushed because they reached maxBatch queries. */
    std::uint64_t fullBatches = 0;

    /** Partial batches flushed by the maxWaitSec deadline (or at
     *  shutdown drain). */
    std::uint64_t timeoutBatches = 0;

    /** Queries rejected for an out-of-range state (never enqueued). */
    std::uint64_t rejected = 0;
};

/**
 * Batched greedy-action server over a fixed Q-table.
 *
 * Thread-safe: any number of threads may call act / actBatch
 * concurrently; calls block until the worker thread has served them.
 * The table is fixed at construction (serving a retrained table means
 * constructing a new server — deployment is an atomic swap, not an
 * in-place mutation).
 */
class PolicyServer
{
  public:
    /**
     * Start serving @p table. The greedy action of every state is
     * precomputed once here, so the per-query work is one array read.
     * Fatal on an invalid config (maxBatch == 0, negative wait).
     */
    PolicyServer(rlcore::QTable table, ServingConfig config = {});

    /** Stops and joins the worker (serving all pending queries). */
    ~PolicyServer();

    PolicyServer(const PolicyServer &) = delete;
    PolicyServer &operator=(const PolicyServer &) = delete;

    /**
     * Answer @p count queries: actions[i] = argmax_a Q(states[i], a).
     * Blocks until served. Returns false — writing nothing — if any
     * state is out of range or the server is stopped.
     * @p tenant labels this request's telemetry series.
     */
    bool actBatch(const rlcore::StateId *states,
                  rlcore::ActionId *actions, std::size_t count,
                  std::string_view tenant = "default");

    /**
     * Single-query convenience over actBatch. Returns -1 on an
     * out-of-range state or a stopped server.
     */
    rlcore::ActionId act(rlcore::StateId state,
                         std::string_view tenant = "default");

    /**
     * Stop accepting requests, serve everything pending, and join
     * the worker. Idempotent; the destructor calls it.
     */
    void stop();

    /** Snapshot of the serving counters. */
    ServingStats stats() const;

    /** The table being served. */
    const rlcore::QTable &table() const { return _table; }

    /** Configuration in use. */
    const ServingConfig &config() const { return _config; }

  private:
    /** One blocking client request, owned by the caller's stack. */
    struct Request
    {
        const rlcore::StateId *states = nullptr;
        rlcore::ActionId *actions = nullptr;
        std::size_t count = 0;
        // Borrowed from the caller: the request never outlives the
        // actBatch frame whose tenant argument this views.
        std::string_view tenant;
        bool done = false;
        // Per-request completion signal: the worker wakes exactly
        // the clients it served, never the whole waiting herd.
        std::condition_variable cv;
    };

    /** Worker loop: coalesce pending requests and serve them. */
    void serveLoop();

    /**
     * Serve up to maxBatch queued queries (at least one request) and
     * wake their callers. Called with the lock held; @p timed_out
     * records the flush reason. Returns queries served.
     */
    std::size_t flushBatch(std::unique_lock<std::mutex> &lock,
                           bool timed_out);

    rlcore::QTable _table;
    ServingConfig _config;

    /** greedy[s] precomputed from the table. */
    std::vector<rlcore::ActionId> _greedy;

    mutable std::mutex _mutex;
    std::condition_variable _workReady; ///< worker wake-up
    std::deque<Request *> _pending;
    std::size_t _pendingQueries = 0;
    bool _stopping = false;
    ServingStats _stats;

    /** Lifetime span ("serving.server", wall clock), construction to
     *  stop(). Observation-only. */
    telemetry::Span _traceSpan;

    std::thread _worker;
};

} // namespace swiftrl::serving

#endif // SWIFTRL_SERVING_POLICY_SERVER_HH
