#include "serving/policy_server.hh"

#include <chrono>

#include "common/logging.hh"
#include "telemetry/metric_registry.hh"

namespace swiftrl::serving {

using rlcore::ActionId;
using rlcore::StateId;

namespace {

/** Batch-size histogram bounds: powers of two up to a typical
 *  maxBatch, +Inf catching oversized requests. */
std::vector<double>
batchSizeBounds()
{
    return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
}

} // namespace

PolicyServer::PolicyServer(rlcore::QTable table, ServingConfig config)
    : _table(std::move(table)), _config(std::move(config))
{
    if (_config.maxBatch == 0)
        SWIFTRL_FATAL("serving batch size must be at least 1");
    if (_config.maxWaitSec < 0.0)
        SWIFTRL_FATAL("serving batch wait must be >= 0, got ",
                      _config.maxWaitSec);

    _greedy.resize(static_cast<std::size_t>(_table.numStates()));
    for (StateId s = 0; s < _table.numStates(); ++s)
        _greedy[static_cast<std::size_t>(s)] = _table.greedyAction(s);

    _traceSpan = telemetry::tracer().begin(
        "serving.server", "serving", "wall",
        common::monotonicSeconds(), _config.traceParent);
    _traceSpan.attr("states", _greedy.size())
        .attr("max_batch", _config.maxBatch);

    _worker = std::thread([this] { serveLoop(); });
}

PolicyServer::~PolicyServer() { stop(); }

bool
PolicyServer::actBatch(const StateId *states, ActionId *actions,
                       std::size_t count, std::string_view tenant)
{
    if (count == 0)
        return true;
    SWIFTRL_ASSERT(states != nullptr && actions != nullptr,
                   "actBatch buffers must be non-null");

    for (std::size_t i = 0; i < count; ++i) {
        if (states[i] < 0 || states[i] >= _table.numStates()) {
            std::lock_guard<std::mutex> guard(_mutex);
            _stats.rejected += count;
            if (_config.metrics)
                _config.metrics
                    ->counter("serve_rejected_total",
                              {{"tenant", std::string(tenant)}})
                    .add(count);
            return false;
        }
    }

    Request request;
    request.states = states;
    request.actions = actions;
    request.count = count;
    request.tenant = tenant;

    // Per-request span (gated: serving is the hot path). Recorded
    // retrospectively over the enqueue-to-completion window.
    const bool traced = telemetry::tracingActive();
    const double enqueued =
        traced ? common::monotonicSeconds() : 0.0;

    std::unique_lock<std::mutex> lock(_mutex);
    if (_stopping)
        return false;
    _pending.push_back(&request);
    _pendingQueries += count;
    _workReady.notify_one();
    request.cv.wait(lock, [&request] { return request.done; });
    if (traced) {
        auto span = telemetry::tracer().begin(
            "serving.request", "serving", "wall", enqueued,
            _traceSpan.id());
        span.attr("tenant", tenant).attr("count", count);
        span.finish(common::monotonicSeconds());
    }
    return true;
}

ActionId
PolicyServer::act(StateId state, std::string_view tenant)
{
    ActionId action = -1;
    if (!actBatch(&state, &action, 1, tenant))
        return -1;
    return action;
}

void
PolicyServer::stop()
{
    {
        std::lock_guard<std::mutex> guard(_mutex);
        if (_stopping && !_worker.joinable())
            return;
        _stopping = true;
        _workReady.notify_one();
    }
    if (_worker.joinable())
        _worker.join();
    // After the join: every request span has finished, so the server
    // span closes last and the wall-clock nesting stays monotone.
    if (_traceSpan.active()) {
        const ServingStats totals = stats();
        _traceSpan.attr("queries", totals.queries)
            .attr("requests", totals.requests)
            .attr("batches", totals.batches);
        _traceSpan.finish(common::monotonicSeconds());
    }
}

ServingStats
PolicyServer::stats() const
{
    std::lock_guard<std::mutex> guard(_mutex);
    return _stats;
}

void
PolicyServer::serveLoop()
{
    using clock = std::chrono::steady_clock;
    const auto max_wait = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double>(_config.maxWaitSec));

    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _workReady.wait(lock, [this] {
            return !_pending.empty() || _stopping;
        });
        if (_pending.empty()) {
            if (_stopping)
                return;
            continue;
        }

        // A batch is open: give it up to maxWaitSec from now to fill,
        // flushing early the moment maxBatch queries are queued. A
        // zero wait means "never hold a batch open" — flush whatever
        // accumulated while the previous batch was being served.
        bool timed_out = false;
        if (max_wait > clock::duration::zero()) {
            const auto deadline = clock::now() + max_wait;
            while (_pendingQueries < _config.maxBatch && !_stopping) {
                if (_workReady.wait_until(lock, deadline) ==
                    std::cv_status::timeout) {
                    timed_out = true;
                    break;
                }
            }
        }
        flushBatch(lock, timed_out);
    }
}

std::size_t
PolicyServer::flushBatch(std::unique_lock<std::mutex> &lock,
                         bool timed_out)
{
    // Take whole requests until the batch would exceed maxBatch —
    // but always at least one, so an oversized request still serves.
    std::vector<Request *> batch;
    std::size_t batch_queries = 0;
    while (!_pending.empty()) {
        Request *next = _pending.front();
        if (!batch.empty() &&
            batch_queries + next->count > _config.maxBatch)
            break;
        _pending.pop_front();
        _pendingQueries -= next->count;
        batch.push_back(next);
        batch_queries += next->count;
    }
    SWIFTRL_ASSERT(!batch.empty(), "flushBatch needs pending work");

    const bool traced = telemetry::tracingActive();
    const double serve_start =
        traced ? common::monotonicSeconds() : 0.0;

    // The lookups are pure reads of immutable state; release the
    // lock so new requests can queue behind this batch.
    lock.unlock();
    for (Request *request : batch) {
        for (std::size_t i = 0; i < request->count; ++i)
            request->actions[i] =
                _greedy[static_cast<std::size_t>(request->states[i])];
    }
    lock.lock();

    _stats.queries += batch_queries;
    _stats.requests += batch.size();
    _stats.batches += 1;
    if (batch_queries >= _config.maxBatch)
        _stats.fullBatches += 1;
    else if (timed_out)
        _stats.timeoutBatches += 1;
    if (traced) {
        auto span = telemetry::tracer().begin(
            "serving.batch", "serving", "wall", serve_start,
            _traceSpan.id());
        span.attr("queries", batch_queries)
            .attr("requests", batch.size())
            .attr("reason", batch_queries >= _config.maxBatch
                                ? "full"
                                : (timed_out ? "timeout" : "drain"));
        span.finish(common::monotonicSeconds());
    }
    if (_config.metrics) {
        auto &m = *_config.metrics;
        for (Request *request : batch) {
            telemetry::Labels labels{
                {"tenant", std::string(request->tenant)}};
            m.counter("serve_requests_total", labels).add(1);
            m.counter("serve_queries_total", labels)
                .add(request->count);
        }
        m.counter("serve_batches_total").add(1);
        m.histogram("serve_batch_size", batchSizeBounds())
            .observe(static_cast<double>(batch_queries));
    }

    // Wake exactly the served clients. Notifying under the lock is
    // deliberate: a client cannot observe done and destroy its
    // stack-owned request until we release the mutex, so the cv is
    // alive for the notify.
    for (Request *request : batch) {
        request->done = true;
        request->cv.notify_one();
    }
    return batch_queries;
}

} // namespace swiftrl::serving
