/**
 * @file
 * Named DPU cost-model profiles.
 *
 * SwiftRL's Sec. 2.2 surveys the real-PIM landscape: UPMEM's DPUs
 * have no FP hardware at all (everything emulated), while Samsung
 * HBM-PIM and SK hynix AiM ship native (16-bit) floating-point MAC
 * units but are far less programmable. These profiles let the same
 * kernels be costed under either regime, answering the portability
 * question the paper raises ("our proposed optimization strategies
 * are versatile and can be deployed on other real PIM hardware"):
 * would the INT32 scaling optimisation still matter on FP-capable
 * PIM? (bench/ext_pim_profiles measures it.)
 */

#ifndef SWIFTRL_PIMSIM_PROFILES_HH
#define SWIFTRL_PIMSIM_PROFILES_HH

#include <string>
#include <vector>

#include "pimsim/cost_model.hh"

namespace swiftrl::pimsim {

/** A named cost-model configuration. */
struct PimProfile
{
    std::string name;
    DpuCostModel costModel;
};

/**
 * The UPMEM-like default: 425 MHz in-order core, single-tasklet
 * pipeline interval 11, all FP32 emulated in software, 32-bit
 * multiply emulated via shift-and-add.
 */
PimProfile upmemProfile();

/**
 * An HBM-PIM/AiM-like profile: near-bank FP MAC hardware makes FP32
 * arithmetic a short native sequence (modelling the FP16-MAC units
 * with an FP32 result path), and the multiplier handles 32-bit
 * integers natively. Clock and memory system kept equal to the UPMEM
 * profile so differences isolate the arithmetic capability.
 */
PimProfile fpCapableProfile();

/** All named profiles. */
std::vector<PimProfile> allProfiles();

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_PROFILES_HH
