/**
 * @file
 * The event timeline of one command stream: an append-only record of
 * every executed command's `{start, end}` interval in modelled time,
 * queryable per phase and per reported cost bucket, and exportable as
 * Chrome `chrome://tracing` JSON (one track per phase, one slice per
 * command).
 *
 * Events carry the two orthogonal tags described in event.hh: the
 * *phase* is the physical operation and names the trace track, the
 * *bucket* is the reported cost component the duration is accounted
 * under. Command-queue events are contiguous; host-track events
 * (recorded via CommandStream::recordHostSpan) may overlap them, so
 * endTime() is the latest event end — the makespan — not the sum of
 * durations.
 */

#ifndef SWIFTRL_PIMSIM_TIMELINE_HH
#define SWIFTRL_PIMSIM_TIMELINE_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "pimsim/event.hh"

namespace swiftrl::pimsim {

/**
 * One sample of a named counter track in modelled time. Counter
 * samples are *annotations*, not commands: they never contribute to
 * phase/bucket totals or endTime(), and are only written when a
 * telemetry collector is attached to the stream — a run without one
 * produces a byte-identical trace to builds that predate telemetry.
 */
struct CounterSample
{
    /** Counter track name ("straggler-ratio", "mram-dma-bytes"). */
    std::string name;

    /** Sample time on the stream clock, modelled seconds. */
    double time = 0.0;

    /** Sampled value. */
    double value = 0.0;
};

/** Append-only modelled-time event record. See file comment. */
class Timeline
{
  public:
    /** Append one event (commands arrive in enqueue order). */
    void record(Event event) { _events.push_back(std::move(event)); }

    /** All events, in enqueue order. */
    const std::vector<Event> &events() const { return _events; }

    /** Number of recorded events. */
    std::size_t size() const { return _events.size(); }

    /** True when nothing has been recorded. */
    bool empty() const { return _events.empty(); }

    /**
     * Latest event end in modelled seconds — the timeline's makespan
     * (host-track events may overlap and outlast the command queue).
     * 0 when empty.
     */
    double endTime() const;

    /**
     * Sum of event durations on one physical phase (trace track).
     * Summation follows enqueue order, so repeated queries are
     * bit-identical.
     */
    double totalForPhase(Phase phase) const;

    /** Sum of event durations accounted under one cost bucket. */
    double totalForBucket(TimeBucket bucket) const;

    /** Append one counter-track sample (see CounterSample). */
    void
    recordCounter(std::string name, double time, double value)
    {
        _counters.push_back({std::move(name), time, value});
    }

    /** All counter samples, in record order. */
    const std::vector<CounterSample> &counters() const
    {
        return _counters;
    }

    /** Drop all events and counter samples (stream reuse). */
    void
    clear()
    {
        _events.clear();
        _counters.clear();
    }

    /**
     * Export the timeline as Chrome trace-event JSON ("X" complete
     * events, microsecond timestamps): load the file in
     * `chrome://tracing` or https://ui.perfetto.dev. One track (tid)
     * per phase, one slice per command; each slice's args carry the
     * command index and its cost bucket. Counter samples, when
     * present, are emitted as `"ph":"C"` counter events — one
     * numeric track per counter name under the same process.
     */
    void exportChromeTrace(std::ostream &os) const;

    /**
     * As above, splicing @p extra_events — pre-serialized trace-event
     * JSON objects, each prefixed with ",\n" — immediately before the
     * closing bracket. The timeline stays telemetry-agnostic: the
     * tracing layer renders its spans (Tracer::chromeSpanEvents, on
     * pid 1) and hands the opaque string in here. Empty string ≡ the
     * plain overload.
     */
    void exportChromeTrace(std::ostream &os,
                           std::string_view extra_events) const;

    /**
     * Convenience wrapper: write the Chrome trace to @p path.
     * @return false when the file cannot be opened.
     */
    bool writeChromeTrace(const std::string &path,
                          std::string_view extra_events = {}) const;

  private:
    std::vector<Event> _events;
    std::vector<CounterSample> _counters;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_TIMELINE_HH
