/**
 * @file
 * Post-run device statistics: aggregate what the simulated cores
 * actually executed — retired ops per class, DMA traffic, load
 * balance, measured arithmetic intensity, and an energy estimate —
 * the gem5-style "stats dump" for this simulator. Benches and
 * examples use it to explain *why* a kernel costs what it costs
 * (e.g. the FP32 kernels' cycles are dominated by softfloat ops).
 */

#ifndef SWIFTRL_PIMSIM_STATS_REPORT_HH
#define SWIFTRL_PIMSIM_STATS_REPORT_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "pimsim/pim_system.hh"

namespace swiftrl::pimsim {

/** Aggregated execution statistics of a PimSystem. */
struct StatsReport
{
    /** Cores in the system. */
    std::size_t numDpus = 0;

    /** Retired ops per class, summed over all cores. */
    std::array<std::uint64_t, kNumOpClasses> opCounts{};

    /** Cycles attributable to each op class (count x cost). */
    std::array<Cycles, kNumOpClasses> opCycles{};

    /** MRAM DMA bytes moved, summed over all cores. */
    std::uint64_t dmaBytes = 0;

    /** Slowest core's cycle count. */
    Cycles maxCycles = 0;

    /** Mean cycles per core. */
    double meanCycles = 0.0;

    /** Load imbalance: max/mean cycles (1.0 = perfectly balanced). */
    double imbalance = 0.0;

    /** Total retired ops across all classes and cores. */
    std::uint64_t totalOps = 0;

    /**
     * Measured arithmetic intensity: arithmetic ops (everything but
     * WRAM accesses and branches) per MRAM DMA byte.
     */
    double arithmeticIntensity = 0.0;

    /** Modelled seconds of the slowest core (kernel-time proxy). */
    double seconds = 0.0;

    /** Energy estimate: seconds x power attributable to the cores. */
    double energyJoules = 0.0;

    /** Snapshot the accumulated statistics of @p system. */
    static StatsReport fromSystem(const PimSystem &system);

    /** Fraction of total cycles spent in one op class. */
    double cycleFraction(OpClass op) const;

    /** Render as an aligned table. */
    void print(std::ostream &os, const std::string &title) const;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_STATS_REPORT_HH
