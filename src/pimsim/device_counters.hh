/**
 * @file
 * Aggregated device counters of a PimSystem: the one place that sums
 * what the simulated cores actually executed — retired ops per class,
 * MRAM DMA traffic, and the cycle clocks — over all cores.
 *
 * Every consumer of device counters reads through this snapshot:
 * StatsReport (the human-readable stats dump) is computed from it,
 * the telemetry EngineCollector diffs consecutive snapshots into
 * per-launch instruction-mix counters, and bench/perf_sim_throughput
 * reports its sim_ops/dma_bytes from it. One aggregation loop means
 * the numbers can never disagree between reports.
 *
 * All fields are *modelled* quantities: they are bit-identical for
 * every host-pool size and whether or not telemetry reads them.
 */

#ifndef SWIFTRL_PIMSIM_DEVICE_COUNTERS_HH
#define SWIFTRL_PIMSIM_DEVICE_COUNTERS_HH

#include <array>
#include <cstdint>

#include "pimsim/cost_model.hh"
#include "pimsim/op_class.hh"

namespace swiftrl::pimsim {

class PimSystem;

/** Summed per-core execution counters at one point in time. */
struct DeviceCounters
{
    /** Cores in the system (dead cores included; they stop moving). */
    std::size_t numDpus = 0;

    /** Retired ops per class, summed over all cores. */
    std::array<std::uint64_t, kNumOpClasses> opCounts{};

    /** MRAM DMA bytes moved, summed over all cores. */
    std::uint64_t dmaBytes = 0;

    /** Slowest core's cycle count. */
    Cycles maxCycles = 0;

    /** Sum of cycles over all cores. */
    Cycles totalCycles = 0;

    /** Snapshot the accumulated counters of @p system. */
    static DeviceCounters fromSystem(const PimSystem &system);

    /** Total retired ops across all classes and cores. */
    std::uint64_t totalOps() const;

    /**
     * Monotone-counter delta since an @p earlier snapshot of the same
     * system: op counts, DMA bytes, and totalCycles subtract;
     * numDpus and maxCycles keep this snapshot's values (a clock
     * high-water mark has no meaningful difference).
     */
    DeviceCounters since(const DeviceCounters &earlier) const;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_DEVICE_COUNTERS_HH
