#include "pimsim/cost_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace swiftrl::pimsim {

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::Int8Mul: return "int8_mul";
      case OpClass::Int32Mul: return "int32_mul";
      case OpClass::Int32Div: return "int32_div";
      case OpClass::Fp32Add: return "fp32_add";
      case OpClass::Fp32Mul: return "fp32_mul";
      case OpClass::Fp32Div: return "fp32_div";
      case OpClass::Fp32Cmp: return "fp32_cmp";
      case OpClass::WramAccess: return "wram_access";
      case OpClass::Branch: return "branch";
      case OpClass::NumClasses: break;
    }
    SWIFTRL_PANIC("unknown op class");
}

std::array<Cycles, kNumOpClasses>
DpuCostModel::defaultInstructions()
{
    std::array<Cycles, kNumOpClasses> t{};
    t[static_cast<std::size_t>(OpClass::IntAlu)] = 1;
    t[static_cast<std::size_t>(OpClass::Int8Mul)] = 2;
    t[static_cast<std::size_t>(OpClass::Int32Mul)] = 16;
    t[static_cast<std::size_t>(OpClass::Int32Div)] = 64;
    t[static_cast<std::size_t>(OpClass::Fp32Add)] = 110;
    t[static_cast<std::size_t>(OpClass::Fp32Mul)] = 150;
    t[static_cast<std::size_t>(OpClass::Fp32Div)] = 380;
    t[static_cast<std::size_t>(OpClass::Fp32Cmp)] = 60;
    t[static_cast<std::size_t>(OpClass::WramAccess)] = 1;
    t[static_cast<std::size_t>(OpClass::Branch)] = 1;
    return t;
}

Cycles
DpuCostModel::dmaCycles(std::uint32_t bytes) const
{
    SWIFTRL_ASSERT(bytes > 0, "zero-byte DMA");
    SWIFTRL_ASSERT(bytes <= mramDmaMaxBytes,
                   "DMA of ", bytes, " bytes exceeds hardware maximum ",
                   mramDmaMaxBytes);
    SWIFTRL_ASSERT(bytes % mramDmaAlignBytes == 0,
                   "DMA of ", bytes, " bytes violates ", mramDmaAlignBytes,
                   "-byte alignment");
    const double streaming =
        mramDmaCyclesPerByte * static_cast<double>(bytes);
    return mramDmaFixedCycles +
           static_cast<Cycles>(std::llround(std::ceil(streaming)));
}

void
validate(const DpuCostModel &model)
{
    if (model.frequencyHz <= 0.0)
        SWIFTRL_FATAL("DPU frequency must be positive");
    if (model.pipelineInterval == 0)
        SWIFTRL_FATAL("pipeline interval must be at least 1 cycle");
    if (model.mramDmaAlignBytes == 0 ||
        model.mramDmaMaxBytes % model.mramDmaAlignBytes != 0) {
        SWIFTRL_FATAL("DMA max size must be a multiple of the alignment");
    }
    if (model.mramDmaCyclesPerByte < 0.0)
        SWIFTRL_FATAL("DMA per-byte cost cannot be negative");
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        if (model.instructions[i] == 0) {
            SWIFTRL_FATAL("op class ",
                          opClassName(static_cast<OpClass>(i)),
                          " must cost at least one instruction");
        }
    }
}

} // namespace swiftrl::pimsim
