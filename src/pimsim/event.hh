/**
 * @file
 * Timeline events: the unit of record of the command-stream runtime.
 *
 * Every command enqueued on a CommandStream (scatter, broadcast,
 * kernel launch, gather, host-side reduce) becomes exactly one Event
 * with a `{start, end}` interval in *modelled* seconds. Two
 * orthogonal tags classify an event:
 *
 *  - Phase: *where* the work physically happens — the track the
 *    event is drawn on in an exported Chrome trace (scatter /
 *    broadcast / kernel / gather / host-reduce / host-collect);
 *  - TimeBucket: *which reported cost component* the event belongs
 *    to — the four-way split of SwiftRL's Figures 5/6 (kernel,
 *    CPU->PIM, PIM->CPU, inter-core), plus the host-collect bucket
 *    of the streaming extension. The same physical phase lands in
 *    different buckets depending on context: a gather during a
 *    tau-synchronisation round is inter-core time, the final gather
 *    is PIM->CPU time.
 *
 * Events on the PIM command queue are contiguous and non-overlapping
 * (one stream models one serialised host command queue). Host-track
 * events (Phase::HostCollect) are recorded at explicit intervals via
 * CommandStream::recordHostSpan and *may overlap* the PIM tracks —
 * that overlap is exactly what the streaming trainer's timeline
 * shows.
 */

#ifndef SWIFTRL_PIMSIM_EVENT_HH
#define SWIFTRL_PIMSIM_EVENT_HH

#include <cstddef>
#include <string>

namespace swiftrl::pimsim {

/** Physical phase of a command (one Chrome-trace track each). */
enum class Phase
{
    Scatter,     ///< distinct per-core payloads, CPU -> MRAM banks
    Broadcast,   ///< one payload replicated to every MRAM bank
    Kernel,      ///< on-core execution (launches and on-core compute)
    Gather,      ///< MRAM banks -> CPU
    HostReduce,  ///< host-side reduction between gather and broadcast
    HostCollect, ///< host actor threads rolling out behaviour policies
    /**
     * Fault handling: failed command attempts (the detection cost of
     * a faulted launch or a checksum-mismatched gather) and the
     * trainers' retry backoff delays. A separate track so traces show
     * exactly where recovery time goes.
     */
    Recovery,
};

/** Number of phases (trace tracks). */
inline constexpr std::size_t kNumPhases = 7;

/** Stable lower-case name of a phase (trace track title). */
constexpr const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::Scatter: return "scatter";
    case Phase::Broadcast: return "broadcast";
    case Phase::Kernel: return "kernel";
    case Phase::Gather: return "gather";
    case Phase::HostReduce: return "host-reduce";
    case Phase::HostCollect: return "host-collect";
    case Phase::Recovery: return "recovery";
    }
    return "?";
}

/** Reported cost component an event is accounted under. */
enum class TimeBucket
{
    Kernel,    ///< PIM kernel execution
    CpuToPim,  ///< initial dataset / Q-table distribution
    PimToCpu,  ///< final result retrieval
    InterCore, ///< tau-periodic Q-table exchange through the host
    /**
     * Host-side experience production (streaming mode): actor
     * rollouts and behaviour-policy refreshes. Overlaps the PIM
     * buckets in modelled time, so it is reported separately and
     * never added to the Figure 5/6 four-way total.
     */
    HostCollect,
    /**
     * Fault-recovery overhead: failed command attempts, retry
     * backoff, and redistribution transfers after a permanent core
     * dropout. On the PIM command queue (it delays every later
     * command) but reported separately from the Figure 5/6 four-way
     * total, which describes fault-free pipeline work.
     */
    Recovery,
};

/** Number of buckets (TimeBreakdown components). */
inline constexpr std::size_t kNumBuckets = 6;

/** Stable name of a bucket. */
constexpr const char *
bucketName(TimeBucket bucket)
{
    switch (bucket) {
    case TimeBucket::Kernel: return "kernel";
    case TimeBucket::CpuToPim: return "cpu-to-pim";
    case TimeBucket::PimToCpu: return "pim-to-cpu";
    case TimeBucket::InterCore: return "inter-core";
    case TimeBucket::HostCollect: return "host-collect";
    case TimeBucket::Recovery: return "recovery";
    }
    return "?";
}

/** One executed command on a stream's modelled timeline. */
struct Event
{
    /** Sequential command index within the stream (enqueue order). */
    std::size_t index = 0;

    /** Physical phase (trace track). */
    Phase phase = Phase::Kernel;

    /** Reported cost component. */
    TimeBucket bucket = TimeBucket::Kernel;

    /** Start time on the stream clock, modelled seconds. */
    double start = 0.0;

    /** End time on the stream clock, modelled seconds. */
    double end = 0.0;

    /** Human-readable command label ("gather:q", "kernel:round"). */
    std::string label;

    /** Modelled duration in seconds. */
    double duration() const { return end - start; }
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_EVENT_HH
