/**
 * @file
 * Host-side runtime for the simulated PIM system. The API mirrors the
 * shape of the UPMEM SDK host library: allocate a set of cores, push
 * data to their MRAM banks, launch a kernel on all cores in parallel,
 * and gather results — with every call returning the modelled time it
 * would take on the real machine.
 *
 * Since the command-stream refactor, the blocking calls below are
 * thin wrappers over a one-command CommandStream per call: each
 * delegates to the system's default stream, which executes the
 * operation through the engine (kernel launches fan out across the
 * host thread pool), records it on the default stream's timeline,
 * and returns the command's modelled duration. Code that wants an
 * explicit execution plan — command sequences, sync intervals, a
 * trace of its own — constructs its own CommandStream on the system.
 */

#ifndef SWIFTRL_PIMSIM_PIM_SYSTEM_HH
#define SWIFTRL_PIMSIM_PIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pimsim/cost_model.hh"
#include "pimsim/dpu.hh"
#include "pimsim/fault_plan.hh"
#include "pimsim/kernel_context.hh"
#include "pimsim/transfer_model.hh"

namespace swiftrl::pimsim {

class CommandStream;
class HostPool;

/** Static configuration of a simulated PIM system. */
struct PimConfig
{
    /** Number of PIM cores (SwiftRL sweeps 125..2000 of 2,524). */
    std::size_t numDpus = 125;

    /** MRAM bank capacity per core (UPMEM: 64 MB). */
    std::size_t mramBytesPerDpu = 64ull * 1024 * 1024;

    /** WRAM scratchpad per core (UPMEM: 64 KB). */
    std::size_t wramBytesPerDpu = 64ull * 1024;

    /** Fixed host-side overhead per kernel launch, seconds. */
    double launchOverheadSec = 15.0e-6;

    /**
     * Host threads executing the *functional* per-core kernel work of
     * one launch (purely a simulation-speed knob: modelled time,
     * cycle counts, and training results are bit-identical for every
     * value). 0 = one per available hardware thread; both settings
     * are capped at numDpus.
     */
    unsigned hostThreads = 0;

    /** TDP of the full PIM server (Table 1: 280 W for 2,524 DPUs). */
    double systemTdpWatts = 280.0;

    /** DPU count the TDP figure refers to. */
    std::size_t tdpReferenceDpus = 2524;

    /** Power draw attributable to the cores actually in use. */
    double
    wattsInUse(std::size_t dpus_in_use) const
    {
        return systemTdpWatts * static_cast<double>(dpus_in_use) /
               static_cast<double>(tdpReferenceDpus);
    }

    /** Instruction/DMA cost model. */
    DpuCostModel costModel;

    /** Host<->PIM transfer timing model. */
    TransferModel transferModel;

    /**
     * Seeded fault-injection schedule. Inert by default (no rates,
     * nothing scheduled): zero-fault runs are byte-identical in time
     * and results to a build without fault injection.
     */
    FaultPlan faultPlan;
};

/**
 * The simulated PIM machine. Functionally, kernels execute on the
 * host; temporally, every operation advances integer cycle clocks per
 * the cost model, and every host API call returns modelled seconds.
 */
class PimSystem
{
  public:
    /** Build a system; fatal on invalid configuration. */
    explicit PimSystem(PimConfig config);

    ~PimSystem();

    // Streams and the pool hold references back to the system; pin it.
    PimSystem(const PimSystem &) = delete;
    PimSystem &operator=(const PimSystem &) = delete;
    PimSystem(PimSystem &&) = delete;
    PimSystem &operator=(PimSystem &&) = delete;

    /** Number of cores in the system. */
    std::size_t numDpus() const { return _dpus.size(); }

    /** Static configuration. */
    const PimConfig &config() const { return _config; }

    /** Access one core (tests and diagnostics). */
    const Dpu &dpu(std::size_t id) const;

    /** Host threads the engine uses for functional kernel work. */
    unsigned hostThreadCount() const;

    /**
     * The stream behind the blocking wrappers below. Its timeline
     * records every wrapper call in order.
     */
    CommandStream &defaultStream();

    // --- host<->PIM data movement ------------------------------------

    /**
     * Push a distinct payload to each core's MRAM at @p offset
     * (the dataset-chunk distribution step).
     *
     * @param offset destination MRAM byte offset, same on every core.
     * @param per_dpu one payload per core; sizes may differ (the last
     *        chunk of an uneven partition is shorter). Timing uses the
     *        largest payload, as rank transfers serialise on it.
     * @return modelled transfer seconds.
     */
    double pushChunks(std::size_t offset,
                      const std::vector<std::span<const std::uint8_t>>
                          &per_dpu);

    /** Push one identical payload to every core's MRAM at @p offset. */
    double pushBroadcast(std::size_t offset,
                         std::span<const std::uint8_t> payload);

    /**
     * Gather @p bytes from every core's MRAM at @p offset into
     * @p out (resized to numDpus() payloads).
     *
     * The blocking wrapper has no recovery path: if the default
     * stream reports a fault it dies loudly. Fault-tolerant code
     * drives a CommandStream directly and handles the CommandStatus.
     * @return modelled transfer seconds.
     */
    double gather(std::size_t offset, std::size_t bytes,
                  std::vector<std::vector<std::uint8_t>> &out);

    // --- kernel launch -----------------------------------------------

    /**
     * Run @p kernel once per core. Cores execute in parallel on the
     * modelled machine, so the launch lasts as long as the slowest
     * core's kernel instance (plus fixed launch overhead).
     *
     * @param tasklets resident hardware threads per core. The DPU
     *        pipeline issues one instruction per cycle round-robin
     *        across tasklets, while each tasklet can issue only once
     *        per pipelineInterval cycles; with balanced tasklet work
     *        the launch therefore speeds up by min(tasklets,
     *        pipelineInterval). The kernel is responsible for
     *        splitting its work across tasklets (see
     *        swiftrl::KernelParams::tasklets).
     *
     * Like gather(), the blocking wrapper is fail-fast under an
     * active fault plan: a faulted launch is fatal here. Recovery
     * belongs to CommandStream callers with a RetryPolicy.
     * @return modelled seconds for the launch.
     */
    double launch(const KernelFn &kernel, unsigned tasklets = 1);

    // --- accounting ---------------------------------------------------

    /** Cycles consumed by the slowest core across all launches. */
    Cycles maxCycles() const;

    /** Sum of cycles over all cores (energy-proportional metric). */
    Cycles totalCycles() const;

    /** Reset all per-core clocks and statistics (MRAM kept). */
    void resetStats();

  private:
    friend class CommandStream; ///< the engine executes on _dpus/_pool

    PimConfig _config;
    std::vector<Dpu> _dpus;
    std::unique_ptr<HostPool> _pool;
    std::unique_ptr<CommandStream> _defaultStream; ///< lazily built
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_PIM_SYSTEM_HH
