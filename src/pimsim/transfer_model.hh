/**
 * @file
 * Host<->PIM data transfer timing model.
 *
 * UPMEM DPUs have no direct channel to each other; all data enters and
 * leaves a DPU's MRAM bank through the host CPU over the memory
 * channel. Transfers to DPUs in *different ranks* proceed in parallel,
 * while DPUs within one rank share the rank's link. The model is
 *
 *   time = fixedLatency + max_over_ranks(bytes_in_rank) / rankBandwidth
 *
 * with separate CPU->PIM and PIM->CPU bandwidths (the UPMEM
 * characterisation work measures the read-back direction slower).
 * Inter-PIM-core "communication" (SwiftRL's tau-periodic Q-table
 * synchronisation) is composed from one gather plus one broadcast.
 */

#ifndef SWIFTRL_PIMSIM_TRANSFER_MODEL_HH
#define SWIFTRL_PIMSIM_TRANSFER_MODEL_HH

#include <cstddef>
#include <cstdint>

namespace swiftrl::pimsim {

/** Timing parameters for host<->PIM transfers. */
struct TransferModel
{
    /** DPUs that share one rank (8 chips x 8 banks in UPMEM DIMMs). */
    std::size_t dpusPerRank = 64;

    /** Sustained CPU->PIM bandwidth per rank, bytes/second. */
    double cpuToPimBytesPerSec = 300.0e6;

    /** Sustained PIM->CPU bandwidth per rank, bytes/second (the
     *  read-back direction is measured markedly slower on UPMEM). */
    double pimToCpuBytesPerSec = 60.0e6;

    /** Fixed software/driver latency per parallel transfer call. */
    double fixedLatencySec = 20.0e-6;

    /**
     * Host-side software overhead per DPU when scattering *distinct*
     * payloads (the initial dataset-chunk distribution). Uniform-size
     * pushes and gathers use the driver's fast batched path and do
     * not pay this.
     */
    double scatterPerDpuSec = 100.0e-6;

    /**
     * Host-side reduction cost per Q-table entry per core during a
     * synchronisation round (the averaging in Figure 4 (4)).
     */
    double hostReduceSecPerEntry = 1.2e-9;

    /**
     * Host-side cost per slice entry per *level* of the hierarchical
     * aggregation tree used by sharded sessions: replica tables of
     * one shard are summed pairwise, level by level, so a shard
     * group of R replicas costs ceil(log2(R)) passes over its slice
     * instead of the flat reduction's R passes. Same per-entry work
     * as one flat-reduce pass (one add per entry), hence the same
     * constant value as hostReduceSecPerEntry.
     */
    double treeReduceSecPerEntry = 1.2e-9;

    /**
     * Host-side cost per halo entry when assembling the per-core
     * remote-row (halo) payloads of a sharded sync round: one
     * gather-indexed row lookup plus a copy into the scatter
     * staging buffer per entry — roughly two flat-reduce passes,
     * hence 2x hostReduceSecPerEntry. For INT32 formats this also
     * covers the halo's requantisation (the slice's own conversion
     * is charged separately, mirroring the unsharded path).
     */
    double haloPackSecPerEntry = 2.4e-9;

    /**
     * Time for a parallel CPU->PIM copy of @p bytes_per_dpu to each of
     * @p num_dpus DPUs (uniform-size payloads, fast batched path).
     */
    double cpuToPimSeconds(std::size_t bytes_per_dpu,
                           std::size_t num_dpus) const;

    /**
     * Time for scattering *distinct* chunks of up to @p bytes_per_dpu
     * to @p num_dpus DPUs: the batched-copy time plus the per-DPU
     * software overhead of assembling the scatter list.
     */
    double scatterSeconds(std::size_t bytes_per_dpu,
                          std::size_t num_dpus) const;

    /**
     * Time for a parallel PIM->CPU gather of @p bytes_per_dpu from
     * each of @p num_dpus DPUs (e.g. partial Q-tables).
     */
    double pimToCpuSeconds(std::size_t bytes_per_dpu,
                           std::size_t num_dpus) const;

    /**
     * Time for broadcasting one identical payload of @p bytes to
     * @p num_dpus DPUs. Ranks receive in parallel; within a rank the
     * payload is replicated to every DPU's MRAM bank.
     */
    double broadcastSeconds(std::size_t bytes, std::size_t num_dpus) const;

    /**
     * Host time for reducing one shard group of @p replicas replica
     * slices of @p slice_entries entries each through the pairwise
     * aggregation tree: ceil(log2(replicas)) levels, each one pass
     * over the slice (minimum one pass — the averaging division is
     * a pass of its own even for a single replica). Shard groups
     * reduce independently; the caller charges the deepest group.
     */
    double aggregationTreeSeconds(std::size_t slice_entries,
                                  std::size_t replicas) const;

    /**
     * Host time for assembling @p halo_entries remote-row entries
     * into per-core halo payloads (sharded sync rounds only).
     */
    double haloPackSeconds(std::size_t halo_entries) const;

    /**
     * Time for one inter-PIM-core synchronisation round: gather
     * @p bytes_per_dpu from every DPU, reduce on the host, broadcast
     * the reduced payload back. This is the Comm_rounds cost of
     * SwiftRL Sec. 4.2/4.3.
     */
    double syncRoundSeconds(std::size_t bytes_per_dpu,
                            std::size_t num_dpus) const;

  private:
    /** DPUs resident in the fullest rank. */
    std::size_t fullestRank(std::size_t num_dpus) const;
};

/** Validate transfer model parameters; fatal on nonsense. */
void validate(const TransferModel &model);

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_TRANSFER_MODEL_HH
