#include "pimsim/fault_plan.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace swiftrl::pimsim {

bool
FaultPlan::enabled() const
{
    return transientRate > 0.0 || corruptRate > 0.0 ||
           dropoutRate > 0.0 || !scheduled.empty();
}

bool
FaultPlan::fires(FaultKind kind, std::size_t site, std::size_t dpu) const
{
    for (const auto &f : scheduled) {
        if (f.kind == kind && f.site == site && f.dpu == dpu)
            return true;
    }

    double rate = 0.0;
    switch (kind) {
    case FaultKind::TransientKernel: rate = transientRate; break;
    case FaultKind::CorruptGather: rate = corruptRate; break;
    case FaultKind::PermanentDropout: rate = dropoutRate; break;
    }
    if (rate <= 0.0)
        return false;

    // One SplitMix64 draw keyed purely on (seed, kind, site, dpu):
    // the decision cannot depend on host-pool size, actor count, or
    // wall clock, which is what keeps faulted runs bit-reproducible.
    std::uint64_t key = seed;
    key ^= (static_cast<std::uint64_t>(site) + 1) *
           0x9e3779b97f4a7c15ull;
    key ^= (static_cast<std::uint64_t>(dpu) + 1) *
           0xbf58476d1ce4e5b9ull;
    key ^= (static_cast<std::uint64_t>(kind) + 1) *
           0x94d049bb133111ebull;
    common::SplitMix64 mix(key);
    const double u =
        static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    return u < rate;
}

void
validate(const FaultPlan &plan)
{
    const auto check_rate = [](double rate, const char *name) {
        if (rate < 0.0 || rate > 1.0)
            SWIFTRL_FATAL("fault plan ", name, " must be in [0, 1], got ",
                          rate);
    };
    check_rate(plan.transientRate, "transientRate");
    check_rate(plan.corruptRate, "corruptRate");
    check_rate(plan.dropoutRate, "dropoutRate");
    if (plan.detectSec < 0.0)
        SWIFTRL_FATAL("fault detection cost must be >= 0, got ",
                      plan.detectSec);
    if (plan.checksumSecPerByte < 0.0)
        SWIFTRL_FATAL("checksum verification cost must be >= 0, got ",
                      plan.checksumSecPerByte);
}

std::uint64_t
chunkChecksum(std::span<const std::uint8_t> data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace swiftrl::pimsim
