#include "pimsim/kernel_scratch.hh"

#include <algorithm>

namespace swiftrl::pimsim {

void *
KernelScratch::allocBytes(std::size_t bytes)
{
    const std::size_t need = (bytes + kAlign - 1) / kAlign * kAlign;
    // Advance through already-reserved slabs first; a launch whose
    // allocation sequence matches the previous one walks the same
    // slabs and never reaches the reserve path.
    while (_active < _slabs.size()) {
        Slab &slab = _slabs[_active];
        if (slab.size - slab.used >= need) {
            void *p = slab.data.get() + slab.used;
            slab.used += need;
            return p;
        }
        ++_active;
    }
    Slab slab;
    slab.size = std::max(need, kMinSlabBytes);
    // operator new[] guarantees alignof(max_align_t) >= kAlign here.
    static_assert(alignof(std::max_align_t) >= kAlign);
    slab.data = std::make_unique<std::uint8_t[]>(slab.size);
    slab.used = need;
    _slabs.push_back(std::move(slab));
    _active = _slabs.size() - 1;
    return _slabs.back().data.get();
}

void
KernelScratch::reset()
{
    for (Slab &slab : _slabs)
        slab.used = 0;
    _active = 0;
}

std::size_t
KernelScratch::usedBytes() const
{
    std::size_t total = 0;
    for (const Slab &slab : _slabs)
        total += slab.used;
    return total;
}

std::size_t
KernelScratch::capacityBytes() const
{
    std::size_t total = 0;
    for (const Slab &slab : _slabs)
        total += slab.size;
    return total;
}

} // namespace swiftrl::pimsim
