/**
 * @file
 * Execution context for a *cohort* of simulated PIM cores running the
 * same kernel in lockstep.
 *
 * The scalar engine hands each kernel instance its own KernelContext
 * and interprets the kernel once per core — host cost scales with
 * `cores x ops` even though every core executes the identical
 * instruction stream. A BatchKernelContext instead owns one
 * KernelContext per *lane* (one lane per live core of the cohort) plus
 * a shared scratch arena, so a batch kernel can lay its per-lane state
 * out struct-of-arrays and retire one op-class step for the whole
 * cohort per host instruction (see swiftrl::runTrainingKernelBatch and
 * docs/PERFORMANCE.md §batch interpreter).
 *
 * The split of responsibilities mirrors the scalar path: this class is
 * pure pimsim machinery — lane bookkeeping, per-lane charging via the
 * real KernelContext (so ChargePolicy, WRAM accounting, DMA padding
 * and the fault-site numbering all stay byte-for-byte identical to
 * scalar execution) — while the SoA views over Q-slices, transition
 * chunks and LCG streams are built on top by the swiftrl-layer batch
 * kernel. Charges committed through a lane context are
 * indistinguishable from a scalar run of the same kernel on that core:
 * batched ≡ reference bit-identity is a tested invariant
 * (tests/test_batch_context.cc).
 *
 * A BatchKernelContext is confined to one host-pool worker (its
 * scratch arena is not thread-safe); CommandStream::launchBatch forms
 * cohort chunks and runs one context per chunk.
 */

#ifndef SWIFTRL_PIMSIM_BATCH_CONTEXT_HH
#define SWIFTRL_PIMSIM_BATCH_CONTEXT_HH

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "pimsim/kernel_context.hh"
#include "pimsim/kernel_scratch.hh"

namespace swiftrl::pimsim {

/** Lockstep cohort context. See file comment. */
class BatchKernelContext
{
  public:
    /**
     * @param dpus the cohort's cores, in ascending id order (dead
     *        cores must already be excluded — lanes are live by
     *        construction).
     * @param model instruction cost model; must outlive the context.
     * @param wram_capacity scratchpad size in bytes (per core).
     * @param scratch host-side staging arena shared by all lanes
     *        (owned by the caller, e.g. a command-stream worker); a
     *        private one is created lazily when null.
     */
    BatchKernelContext(std::span<Dpu *const> dpus,
                       const DpuCostModel &model,
                       std::size_t wram_capacity,
                       KernelScratch *scratch = nullptr);

    BatchKernelContext(const BatchKernelContext &) = delete;
    BatchKernelContext &operator=(const BatchKernelContext &) = delete;

    /** Number of lanes (live cores) in the cohort. */
    std::size_t lanes() const { return _dpus.size(); }

    /**
     * The per-core context of lane @p i: the batch kernel routes
     * every priced effect for that lane (bulk op charges, DMA, WRAM
     * accounting, LCG seeding) through it, exactly as the scalar
     * kernel instance would.
     */
    KernelContext &lane(std::size_t i) { return _contexts[i]; }

    /** Core behind lane @p i (MRAM access). */
    Dpu &dpu(std::size_t i) { return *_dpus[i]; }

    /** Core id behind lane @p i (host buffers indexed by core). */
    std::size_t dpuId(std::size_t i) const { return _dpus[i]->id(); }

    /**
     * Staging arena shared by all lanes; reset by the launch engine
     * per chunk, like the scalar per-instance reset.
     */
    KernelScratch &scratch();

    /** Commit every lane's pending ledger to its Dpu. */
    void flushAll();

  private:
    std::vector<Dpu *> _dpus;

    /**
     * One context per lane. A deque, not a vector: KernelContext is
     * non-movable, and deque growth never relocates elements.
     */
    std::deque<KernelContext> _contexts;

    KernelScratch *_scratch;
    std::unique_ptr<KernelScratch> _owned;
};

/**
 * A batch kernel is executed once per cohort chunk. Like KernelFn
 * instances, concurrent invocations must confine their effects to the
 * chunk's own lanes (and host buffers indexed by dpuId).
 */
using BatchKernelFn = std::function<void(BatchKernelContext &)>;

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_BATCH_CONTEXT_HH
