/**
 * @file
 * Cycle cost model for a single simulated PIM core (UPMEM DPU).
 *
 * A DPU is an in-order 32-bit RISC core with a 14-stage pipeline,
 * fine-grained multithreaded across up to 24 tasklets. SwiftRL runs a
 * single tasklet per core, which cannot keep the pipeline full: each
 * retired instruction effectively occupies ~11 cycles (the dispatch
 * interval measured in the public UPMEM characterisation work). We
 * model instruction cost as
 *
 *     cycles(op) = instructions(op) * pipelineInterval
 *
 * where instructions(op) is the number of (possibly emulated)
 * instructions the op expands to, and MRAM DMA transfers are charged
 * separately as fixed latency plus a per-byte component.
 *
 * All constants are plain data and can be overridden; the ablation
 * bench sweeps them to show which conclusions are calibration-robust.
 */

#ifndef SWIFTRL_PIMSIM_COST_MODEL_HH
#define SWIFTRL_PIMSIM_COST_MODEL_HH

#include <array>
#include <cstdint>

#include "pimsim/op_class.hh"

namespace swiftrl::pimsim {

/** Integer cycle count type used throughout the simulator. */
using Cycles = std::uint64_t;

/** Per-DPU instruction and memory cost parameters. */
struct DpuCostModel
{
    /** Core clock (SwiftRL's server runs its 2,524 DPUs at 425 MHz). */
    double frequencyHz = 425.0e6;

    /**
     * Cycles each retired instruction occupies with a single tasklet
     * (the 14-stage pipeline needs ~11 resident threads to reach one
     * instruction per cycle).
     */
    Cycles pipelineInterval = 11;

    /**
     * Instruction expansion per op class. Defaults follow the UPMEM
     * characterisation literature: native int ALU ops are single
     * instructions, 32-bit multiply/divide are emulated in tens of
     * instructions, FP32 arithmetic in tens-to-hundreds.
     */
    std::array<Cycles, kNumOpClasses> instructions = defaultInstructions();

    /** Fixed MRAM->WRAM / WRAM->MRAM DMA setup latency, in cycles. */
    Cycles mramDmaFixedCycles = 77;

    /** DMA streaming cost in cycles per byte (0.5 = 2 bytes/cycle). */
    double mramDmaCyclesPerByte = 0.5;

    /** Largest single DMA transfer the hardware supports, in bytes. */
    std::uint32_t mramDmaMaxBytes = 2048;

    /** DMA transfers must be multiples of this many bytes. */
    std::uint32_t mramDmaAlignBytes = 8;

    /** Cycle cost of one op of class @p op. */
    Cycles
    cyclesFor(OpClass op) const
    {
        return instructions[static_cast<std::size_t>(op)] *
               pipelineInterval;
    }

    /**
     * Cycle cost of a single DMA transfer of @p bytes (after the
     * caller has split transfers at mramDmaMaxBytes and padded to the
     * DMA alignment).
     */
    Cycles dmaCycles(std::uint32_t bytes) const;

    /** Convert a cycle count to seconds at the modelled clock. */
    double
    seconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / frequencyHz;
    }

    /** Default instruction-expansion table. */
    static std::array<Cycles, kNumOpClasses> defaultInstructions();
};

/**
 * Validate a cost model configuration; fatal on nonsensical values
 * (zero frequency, zero pipeline interval, misaligned DMA sizes).
 */
void validate(const DpuCostModel &model);

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_COST_MODEL_HH
