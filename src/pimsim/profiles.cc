#include "pimsim/profiles.hh"

namespace swiftrl::pimsim {

PimProfile
upmemProfile()
{
    PimProfile p;
    p.name = "upmem-like";
    p.costModel = DpuCostModel{}; // the repository default
    return p;
}

PimProfile
fpCapableProfile()
{
    PimProfile p;
    p.name = "fp-capable-pim";
    p.costModel = DpuCostModel{};
    auto &instr = p.costModel.instructions;
    // Native FP pipeline: an FP op is a short issue sequence rather
    // than a softfloat library call.
    instr[static_cast<std::size_t>(OpClass::Fp32Add)] = 2;
    instr[static_cast<std::size_t>(OpClass::Fp32Mul)] = 2;
    instr[static_cast<std::size_t>(OpClass::Fp32Div)] = 12;
    instr[static_cast<std::size_t>(OpClass::Fp32Cmp)] = 1;
    // A full-width multiplier handles 32-bit integers directly.
    instr[static_cast<std::size_t>(OpClass::Int32Mul)] = 2;
    instr[static_cast<std::size_t>(OpClass::Int32Div)] = 12;
    return p;
}

std::vector<PimProfile>
allProfiles()
{
    return {upmemProfile(), fpCapableProfile()};
}

} // namespace swiftrl::pimsim
