#include "pimsim/batch_context.hh"

#include "common/logging.hh"

namespace swiftrl::pimsim {

BatchKernelContext::BatchKernelContext(std::span<Dpu *const> dpus,
                                       const DpuCostModel &model,
                                       std::size_t wram_capacity,
                                       KernelScratch *scratch)
    : _dpus(dpus.begin(), dpus.end()), _scratch(scratch)
{
    SWIFTRL_ASSERT(!_dpus.empty(),
                   "a batch cohort needs at least one lane");
    for (Dpu *dpu : _dpus) {
        _contexts.emplace_back(*dpu, model, wram_capacity,
                               &this->scratch());
    }
}

KernelScratch &
BatchKernelContext::scratch()
{
    if (!_scratch) {
        _owned = std::make_unique<KernelScratch>();
        _scratch = _owned.get();
    }
    return *_scratch;
}

void
BatchKernelContext::flushAll()
{
    for (auto &ctx : _contexts)
        ctx.flush();
}

} // namespace swiftrl::pimsim
