#include "pimsim/rank_pool.hh"

#include "common/logging.hh"

namespace swiftrl::pimsim {

RankPool::RankPool(std::size_t num_ranks)
    : _leased(num_ranks, false), _busySec(num_ranks, 0.0),
      _free(num_ranks)
{
    if (num_ranks == 0)
        SWIFTRL_FATAL("a rank pool needs at least one rank");
}

std::vector<std::size_t>
RankPool::lease(std::size_t count)
{
    if (count == 0)
        SWIFTRL_FATAL("a lease must cover at least one rank");
    if (count > _free)
        return {};
    std::vector<std::size_t> granted;
    granted.reserve(count);
    for (std::size_t id = 0; id < _leased.size() &&
                             granted.size() < count;
         ++id) {
        if (!_leased[id]) {
            _leased[id] = true;
            granted.push_back(id);
        }
    }
    _free -= count;
    return granted;
}

void
RankPool::release(const std::vector<std::size_t> &ranks)
{
    for (const std::size_t id : ranks) {
        if (id >= _leased.size())
            SWIFTRL_FATAL("release of rank ", id, " beyond pool of ",
                          _leased.size());
        if (!_leased[id])
            SWIFTRL_FATAL("double release of rank ", id);
        _leased[id] = false;
        ++_free;
    }
}

void
RankPool::charge(const std::vector<std::size_t> &ranks,
                 double seconds)
{
    if (seconds < 0.0)
        SWIFTRL_FATAL("negative busy-time charge: ", seconds);
    for (const std::size_t id : ranks) {
        if (id >= _busySec.size())
            SWIFTRL_FATAL("charge to rank ", id, " beyond pool of ",
                          _busySec.size());
        _busySec[id] += seconds;
    }
}

double
RankPool::busySeconds(std::size_t rank) const
{
    if (rank >= _busySec.size())
        SWIFTRL_FATAL("rank ", rank, " beyond pool of ",
                      _busySec.size());
    return _busySec[rank];
}

double
RankPool::totalBusySeconds() const
{
    double total = 0.0;
    for (const double s : _busySec)
        total += s;
    return total;
}

} // namespace swiftrl::pimsim
