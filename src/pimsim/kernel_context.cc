#include "pimsim/kernel_context.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::pimsim {

KernelContext::KernelContext(Dpu &dpu, const DpuCostModel &model,
                             std::size_t wram_capacity)
    : _dpu(dpu), _model(model), _wramCapacity(wram_capacity)
{
}

void
KernelContext::charge(OpClass op, std::uint64_t count)
{
    _cycles += _model.cyclesFor(op) * count;
    _dpu.countOps(op, count);
}

void
KernelContext::chargeDma(std::size_t bytes)
{
    // Pad the tail up to the DMA alignment, as the hardware engine
    // always moves whole aligned words.
    const std::size_t align = _model.mramDmaAlignBytes;
    const std::size_t padded = (bytes + align - 1) / align * align;
    _cycles += _model.dmaCycles(static_cast<std::uint32_t>(padded));
    _dpu.addDmaBytes(padded);
}

void
KernelContext::wramAlloc(std::size_t bytes)
{
    _wramUsed += bytes;
    if (_wramUsed > _wramCapacity) {
        SWIFTRL_FATAL("DPU ", _dpu.id(), ": kernel WRAM footprint ",
                      _wramUsed, " bytes exceeds the ", _wramCapacity,
                      "-byte scratchpad");
    }
}

void
KernelContext::mramToWram(std::size_t offset, void *dst,
                          std::size_t bytes)
{
    std::uint8_t *out = static_cast<std::uint8_t *>(dst);
    std::size_t done = 0;
    while (done < bytes) {
        const std::size_t piece =
            std::min<std::size_t>(bytes - done, _model.mramDmaMaxBytes);
        _dpu.mramRead(offset + done, out + done, piece);
        chargeDma(piece);
        done += piece;
    }
}

void
KernelContext::wramToMram(std::size_t offset, const void *src,
                          std::size_t bytes)
{
    const std::uint8_t *in = static_cast<const std::uint8_t *>(src);
    std::size_t done = 0;
    while (done < bytes) {
        const std::size_t piece =
            std::min<std::size_t>(bytes - done, _model.mramDmaMaxBytes);
        _dpu.mramWrite(offset + done, in + done, piece);
        chargeDma(piece);
        done += piece;
    }
}

float
KernelContext::fadd(float a, float b)
{
    charge(OpClass::Fp32Add);
    return a + b;
}

float
KernelContext::fsub(float a, float b)
{
    charge(OpClass::Fp32Add);
    return a - b;
}

float
KernelContext::fmul(float a, float b)
{
    charge(OpClass::Fp32Mul);
    return a * b;
}

float
KernelContext::fdiv(float a, float b)
{
    charge(OpClass::Fp32Div);
    return a / b;
}

bool
KernelContext::fgt(float a, float b)
{
    charge(OpClass::Fp32Cmp);
    return a > b;
}

std::int32_t
KernelContext::iadd(std::int32_t a, std::int32_t b)
{
    charge(OpClass::IntAlu);
    return static_cast<std::int32_t>(
        static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b));
}

std::int32_t
KernelContext::isub(std::int32_t a, std::int32_t b)
{
    charge(OpClass::IntAlu);
    return static_cast<std::int32_t>(
        static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b));
}

std::int64_t
KernelContext::imul32(std::int32_t a, std::int32_t b)
{
    charge(OpClass::Int32Mul);
    return static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
}

std::int32_t
KernelContext::idiv32(std::int32_t a, std::int32_t b)
{
    SWIFTRL_ASSERT(b != 0, "integer division by zero in kernel");
    charge(OpClass::Int32Div);
    return a / b;
}

std::int32_t
KernelContext::rescale(std::int64_t value, std::int32_t scale)
{
    SWIFTRL_ASSERT(scale != 0, "rescale by zero");
    // The scale constant is known at compile time, so the division is
    // strength-reduced to a reciprocal multiply plus shifts — priced
    // as one emulated multiply and two ALU ops rather than a full
    // runtime divide.
    charge(OpClass::Int32Mul);
    charge(OpClass::IntAlu, 2);
    return static_cast<std::int32_t>(value / scale);
}

std::int32_t
KernelContext::imul8(std::int8_t a, std::int8_t b)
{
    charge(OpClass::Int8Mul);
    return static_cast<std::int32_t>(a) * static_cast<std::int32_t>(b);
}

std::int64_t
KernelContext::imulSmall(std::int32_t a, std::int32_t b)
{
    SWIFTRL_ASSERT(a >= -32768 && a <= 32767,
                   "imulSmall wide operand ", a,
                   " exceeds 16 bits: the environment's value range "
                   "does not fit the INT8 optimisation");
    SWIFTRL_ASSERT(b >= -128 && b <= 127,
                   "imulSmall narrow operand ", b,
                   " exceeds 8 bits");
    // Two native 8x8 multiplies (low/high byte of a) plus shift+add.
    charge(OpClass::Int8Mul, 2);
    charge(OpClass::IntAlu, 2);
    return static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b);
}

std::int32_t
KernelContext::rescaleShift(std::int64_t value, int shift)
{
    SWIFTRL_ASSERT(shift >= 0 && shift < 31, "bad shift ", shift);
    charge(OpClass::IntAlu);
    return static_cast<std::int32_t>(value >> shift);
}

bool
KernelContext::igt(std::int32_t a, std::int32_t b)
{
    charge(OpClass::IntAlu);
    return a > b;
}

std::int32_t
KernelContext::wramLoadI32(const std::int32_t &slot)
{
    charge(OpClass::WramAccess);
    return slot;
}

void
KernelContext::wramStoreI32(std::int32_t &slot, std::int32_t value)
{
    charge(OpClass::WramAccess);
    slot = value;
}

float
KernelContext::wramLoadF32(const float &slot)
{
    charge(OpClass::WramAccess);
    return slot;
}

void
KernelContext::wramStoreF32(float &slot, float value)
{
    charge(OpClass::WramAccess);
    slot = value;
}

void
KernelContext::branch(std::uint64_t count)
{
    charge(OpClass::Branch, count);
}

void
KernelContext::aluOps(std::uint64_t count)
{
    charge(OpClass::IntAlu, count);
}

void
KernelContext::lcgSeed(std::uint32_t seed)
{
    charge(OpClass::IntAlu);
    _lcg.seed(seed);
}

std::uint32_t
KernelContext::lcgNext()
{
    // state = state * A + C: one emulated 32-bit multiply, one add.
    charge(OpClass::Int32Mul);
    charge(OpClass::IntAlu);
    return _lcg.next();
}

std::uint32_t
KernelContext::lcgNextBounded(std::uint32_t bound)
{
    SWIFTRL_ASSERT(bound > 0, "lcgNextBounded requires a positive bound");
    const std::uint64_t wide =
        static_cast<std::uint64_t>(lcgNext()) * bound;
    // High-bits reduction: one more emulated multiply plus a shift.
    charge(OpClass::Int32Mul);
    charge(OpClass::IntAlu);
    return static_cast<std::uint32_t>(wide >> 32);
}

} // namespace swiftrl::pimsim
