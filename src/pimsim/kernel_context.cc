#include "pimsim/kernel_context.hh"

namespace swiftrl::pimsim {

// The context is header-only so charges inline into kernel code; the
// explicit instantiations here make this translation unit compile
// every member of both policies even when no kernel exercises them.
template class BasicKernelContext<ChargePolicy::Batched>;
template class BasicKernelContext<ChargePolicy::Reference>;

} // namespace swiftrl::pimsim
