/**
 * @file
 * Bump-allocated scratch arena for kernel-side staging buffers.
 *
 * Kernel instances need short-lived host buffers — the WRAM-resident
 * Q-table image, TransitionFetcher staging blocks, visit counters —
 * whose lifetime is exactly one launch. Allocating them from the heap
 * per core per launch puts the allocator on the simulator's hottest
 * path (2,000 cores x thousands of synchronisation rounds). A
 * KernelScratch instead hands out pointers from reusable slabs:
 * `reset()` rewinds the arena in O(slabs) while keeping the memory,
 * so steady-state launches allocate nothing.
 *
 * Slabs are append-only: growing the arena adds a new slab and never
 * moves existing ones, so pointers handed out earlier in the same
 * launch stay valid. The command stream owns one arena per host-pool
 * worker and resets it at the start of each work item; the arena is
 * NOT thread-safe — each worker must use its own.
 *
 * Purely a host-side mechanism: WRAM capacity accounting stays in
 * KernelContext::wramAlloc, and nothing here touches modelled cycles,
 * op counts, or DMA bytes.
 */

#ifndef SWIFTRL_PIMSIM_KERNEL_SCRATCH_HH
#define SWIFTRL_PIMSIM_KERNEL_SCRATCH_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace swiftrl::pimsim {

/** Slab-based bump allocator. See file comment. */
class KernelScratch
{
  public:
    KernelScratch() = default;

    KernelScratch(const KernelScratch &) = delete;
    KernelScratch &operator=(const KernelScratch &) = delete;

    /**
     * Allocate an uninitialised array of @p count Ts, valid until the
     * next reset(). T must be trivially copyable (the arena never
     * runs constructors or destructors) and at most 16-byte aligned.
     */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "scratch arenas hold raw POD buffers only");
        static_assert(alignof(T) <= kAlign,
                      "over-aligned type in scratch arena");
        return static_cast<T *>(allocBytes(count * sizeof(T)));
    }

    /** Rewind every slab; capacity is kept for the next launch. */
    void reset();

    /** Bytes currently handed out (since the last reset). */
    std::size_t usedBytes() const;

    /** Total bytes reserved across all slabs. */
    std::size_t capacityBytes() const;

  private:
    /** Every pointer handed out is aligned to this. */
    static constexpr std::size_t kAlign = 16;

    /** Smallest slab ever reserved; amortises tiny allocations. */
    static constexpr std::size_t kMinSlabBytes = 64 * 1024;

    struct Slab
    {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Aligned bump allocation; appends a slab when nothing fits. */
    void *allocBytes(std::size_t bytes);

    std::vector<Slab> _slabs;
    std::size_t _active = 0; ///< slab currently bump-allocating
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_KERNEL_SCRATCH_HH
