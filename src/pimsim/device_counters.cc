#include "pimsim/device_counters.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pimsim/pim_system.hh"

namespace swiftrl::pimsim {

DeviceCounters
DeviceCounters::fromSystem(const PimSystem &system)
{
    DeviceCounters c;
    c.numDpus = system.numDpus();
    for (std::size_t i = 0; i < system.numDpus(); ++i) {
        const Dpu &dpu = system.dpu(i);
        for (std::size_t k = 0; k < kNumOpClasses; ++k)
            c.opCounts[k] += dpu.opCounts()[k];
        c.dmaBytes += dpu.dmaBytes();
        c.maxCycles = std::max(c.maxCycles, dpu.cycles());
        c.totalCycles += dpu.cycles();
    }
    return c;
}

std::uint64_t
DeviceCounters::totalOps() const
{
    std::uint64_t total = 0;
    for (const auto n : opCounts)
        total += n;
    return total;
}

DeviceCounters
DeviceCounters::since(const DeviceCounters &earlier) const
{
    SWIFTRL_ASSERT(numDpus == earlier.numDpus,
                   "counter deltas require snapshots of one system");
    DeviceCounters d;
    d.numDpus = numDpus;
    for (std::size_t k = 0; k < kNumOpClasses; ++k) {
        SWIFTRL_ASSERT(opCounts[k] >= earlier.opCounts[k],
                       "op counters are monotone");
        d.opCounts[k] = opCounts[k] - earlier.opCounts[k];
    }
    SWIFTRL_ASSERT(dmaBytes >= earlier.dmaBytes &&
                       totalCycles >= earlier.totalCycles,
                   "device counters are monotone");
    d.dmaBytes = dmaBytes - earlier.dmaBytes;
    d.totalCycles = totalCycles - earlier.totalCycles;
    d.maxCycles = maxCycles;
    return d;
}

} // namespace swiftrl::pimsim
