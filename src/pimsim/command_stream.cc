#include "pimsim/command_stream.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "pimsim/host_pool.hh"
#include "pimsim/pim_system.hh"
#include "telemetry/tracing.hh"

namespace swiftrl::pimsim {

namespace {

/** Recovery-track label of a failed attempt: "fault:<kind>". */
std::string
faultLabel(FaultKind kind)
{
    return std::string("fault:") + faultKindName(kind);
}

/**
 * Emit a causal span mirroring one timeline event, parented on the
 * ambient span (the session round that issued the command). Only
 * called behind tracingActive(): the untraced hot path pays a single
 * relaxed atomic load. Observation-only — reads the already-recorded
 * interval, never touches the cursor or any modelled state.
 */
void
traceCommandSpan(Phase phase, TimeBucket bucket, double start,
                 double end, std::string_view label)
{
    const bool faulted = phase == Phase::Recovery &&
                         label.substr(0, 6) == "fault:";
    auto span = telemetry::tracer().begin(
        label, "engine", "modelled", start,
        telemetry::currentSpanParent());
    span.attr("phase", phaseName(phase))
        .attr("bucket", bucketName(bucket));
    span.finish(end, faulted ? "faulted" : "ok");
}

} // namespace

CommandStream::CommandStream(PimSystem &system)
    : _system(system),
      _dead(system.numDpus(), false),
      _liveCount(system.numDpus()),
      _launchWorkers(system.hostThreadCount())
{
}

CommandStream::LaunchWorker &
CommandStream::launchWorker(unsigned worker)
{
    // One slot per host-pool worker, pre-sized at construction, so
    // concurrent first touches hit distinct slots and never race on
    // the vector itself.
    auto &slot = _launchWorkers[worker];
    if (!slot)
        slot = std::make_unique<LaunchWorker>();
    return *slot;
}

double
CommandStream::record(Phase phase, TimeBucket bucket, double seconds,
                      std::string_view label)
{
    SWIFTRL_ASSERT(seconds >= 0.0,
                   "command durations cannot be negative");
    Event event;
    event.index = _timeline.size();
    event.phase = phase;
    event.bucket = bucket;
    event.start = _cursor;
    event.end = _cursor + seconds;
    event.label = std::string(label);
    _timeline.record(std::move(event));
    _cursor += seconds;
    if (telemetry::tracingActive())
        traceCommandSpan(phase, bucket, _cursor - seconds, _cursor,
                         label);
    return seconds;
}

double
CommandStream::checksumSeconds(std::size_t bytes) const
{
    return _system.config().faultPlan.checksumSecPerByte *
           static_cast<double>(bytes);
}

bool
CommandStream::isDead(std::size_t dpu) const
{
    SWIFTRL_ASSERT(dpu < _dead.size(), "DPU id ", dpu,
                   " out of range");
    return _dead[dpu];
}

std::vector<std::size_t>
CommandStream::deadDpus() const
{
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < _dead.size(); ++i) {
        if (_dead[i])
            ids.push_back(i);
    }
    return ids;
}

void
CommandStream::pokeChunks(
    std::size_t offset,
    const std::vector<std::span<const std::uint8_t>> &per_dpu)
{
    auto &dpus = _system._dpus;
    SWIFTRL_ASSERT(per_dpu.size() == dpus.size(),
                   "pokeChunks needs exactly one payload per core");
    for (std::size_t i = 0; i < per_dpu.size(); ++i) {
        if (_dead[i])
            continue;
        const auto &payload = per_dpu[i];
        if (!payload.empty())
            dpus[i].mramWrite(offset, payload.data(), payload.size());
    }
}

void
CommandStream::pokeBroadcast(std::size_t offset,
                             std::span<const std::uint8_t> payload)
{
    auto &dpus = _system._dpus;
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (_dead[i])
            continue;
        if (!payload.empty())
            dpus[i].mramWrite(offset, payload.data(), payload.size());
    }
}

void
CommandStream::restoreState(double cursor, std::size_t fault_sites,
                            const std::vector<std::size_t> &dead_dpus)
{
    SWIFTRL_ASSERT(cursor >= 0.0,
                   "restored stream clock cannot be negative");
    SWIFTRL_ASSERT(_timeline.size() == 0 && _faultSites == 0,
                   "restoreState requires a fresh stream");
    _cursor = cursor;
    _syncMark = cursor;
    _faultSites = fault_sites;
    for (const std::size_t i : dead_dpus) {
        SWIFTRL_ASSERT(i < _dead.size(), "restored dead core id ", i,
                       " out of range");
        if (!_dead[i]) {
            _dead[i] = true;
            --_liveCount;
        }
    }
}

void
CommandStream::restoreDpuCycles(const std::vector<Cycles> &cycles)
{
    auto &dpus = _system._dpus;
    SWIFTRL_ASSERT(cycles.size() == dpus.size(),
                   "restoreDpuCycles needs one clock per core");
    for (std::size_t i = 0; i < dpus.size(); ++i)
        dpus[i].addCycles(cycles[i]);
}

double
CommandStream::recoveryDelay(double seconds, std::string_view label)
{
    return record(Phase::Recovery, TimeBucket::Recovery, seconds,
                  label);
}

double
CommandStream::pushChunks(
    std::size_t offset,
    const std::vector<std::span<const std::uint8_t>> &per_dpu,
    TimeBucket bucket, std::string_view label)
{
    auto &dpus = _system._dpus;
    SWIFTRL_ASSERT(per_dpu.size() == dpus.size(),
                   "pushChunks needs exactly one payload per core");
    std::size_t max_bytes = 0;
    for (std::size_t i = 0; i < per_dpu.size(); ++i) {
        if (_dead[i])
            continue;
        const auto &payload = per_dpu[i];
        if (!payload.empty())
            dpus[i].mramWrite(offset, payload.data(), payload.size());
        max_bytes = std::max(max_bytes, payload.size());
    }
    const double seconds =
        _system.config().transferModel.scatterSeconds(max_bytes,
                                                      _liveCount);
    return record(Phase::Scatter, bucket, seconds, label);
}

double
CommandStream::pushBroadcast(std::size_t offset,
                             std::span<const std::uint8_t> payload,
                             TimeBucket bucket, std::string_view label)
{
    auto &dpus = _system._dpus;
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (_dead[i])
            continue;
        if (!payload.empty())
            dpus[i].mramWrite(offset, payload.data(), payload.size());
    }
    const double seconds =
        _system.config().transferModel.broadcastSeconds(
            payload.size(), _liveCount);
    return record(Phase::Broadcast, bucket, seconds, label);
}

CommandStatus
CommandStream::gather(std::size_t offset, std::size_t bytes,
                      std::vector<std::vector<std::uint8_t>> &out,
                      TimeBucket bucket, std::string_view label)
{
    auto &dpus = _system._dpus;
    const FaultPlan &plan = _system.config().faultPlan;
    const bool faulty = plan.enabled();
    const std::size_t site = faulty ? _faultSites++ : 0;

    out.assign(dpus.size(), std::vector<std::uint8_t>(bytes));
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (_dead[i])
            continue;
        if (bytes > 0)
            dpus[i].mramRead(offset, out[i].data(), bytes);
    }
    const double transfer =
        _system.config().transferModel.pimToCpuSeconds(bytes,
                                                       _liveCount);
    if (!faulty || bytes == 0) {
        record(Phase::Gather, bucket, transfer, label);
        return {transfer, std::nullopt};
    }

    // Wire corruption: a fated chunk arrives flipped, so the FNV
    // checksum its bank computed over the true payload no longer
    // matches what the host recomputes over the received bytes. A
    // byte flip always changes an FNV-1a digest, so only fated
    // chunks need the send/recompute pair — unaffected chunks verify
    // clean by construction (their modelled verify time is charged
    // below either way).
    std::vector<std::size_t> &corrupted = _faultScratchA;
    corrupted.clear();
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (_dead[i])
            continue;
        if (!plan.fires(FaultKind::CorruptGather, site, i))
            continue;
        const std::uint64_t sent = chunkChecksum(out[i]);
        out[i][0] ^= 0xFFu;
        if (chunkChecksum(out[i]) != sent)
            corrupted.push_back(i);
    }
    const double verify = checksumSeconds(bytes * _liveCount);
    if (!corrupted.empty()) {
        // No functional effect: the whole gather is discarded. The
        // banks are intact — a retry re-reads them cleanly.
        out.clear();
        const double seconds = transfer + verify;
        record(Phase::Recovery, TimeBucket::Recovery, seconds,
               faultLabel(FaultKind::CorruptGather));
        CommandStatus status;
        status.seconds = seconds;
        // Copied, not moved: corrupted aliases reusable scratch.
        status.error =
            CommandError{FaultKind::CorruptGather, corrupted, site};
        return status;
    }
    record(Phase::Gather, bucket, transfer, label);
    record(Phase::Recovery, TimeBucket::Recovery, verify,
           "verify:checksum");
    return {transfer + verify, std::nullopt};
}

double
CommandStream::gatherTimed(std::size_t offset, std::size_t bytes,
                           TimeBucket bucket, std::string_view label)
{
    // The transfer is charged as if performed; validate the range so
    // the timing-only path fails exactly where the functional one
    // would (an out-of-bank gather is a bug either way).
    auto &dpus = _system._dpus;
    if (bytes > 0) {
        std::uint8_t probe = 0;
        for (std::size_t i = 0; i < dpus.size(); ++i) {
            if (_dead[i])
                continue;
            dpus[i].mramRead(offset + bytes - 1, &probe, 1);
        }
    }
    const double seconds =
        _system.config().transferModel.pimToCpuSeconds(bytes,
                                                       _liveCount);
    record(Phase::Gather, bucket, seconds, label);
    const FaultPlan &plan = _system.config().faultPlan;
    if (plan.enabled() && bytes > 0) {
        const double verify = checksumSeconds(bytes * _liveCount);
        record(Phase::Recovery, TimeBucket::Recovery, verify,
               "verify:checksum");
        return seconds + verify;
    }
    return seconds;
}

std::optional<CommandStatus>
CommandStream::launchFaultCheck()
{
    const auto &config = _system.config();
    const FaultPlan &plan = config.faultPlan;
    if (!plan.enabled())
        return std::nullopt;
    const std::size_t site = _faultSites++;
    std::vector<std::size_t> &dropped = _faultScratchA;
    std::vector<std::size_t> &transient = _faultScratchB;
    dropped.clear();
    transient.clear();
    for (std::size_t i = 0; i < _dead.size(); ++i) {
        if (_dead[i])
            continue;
        if (plan.fires(FaultKind::PermanentDropout, site, i))
            dropped.push_back(i);
        else if (plan.fires(FaultKind::TransientKernel, site, i))
            transient.push_back(i);
    }
    if (dropped.empty() && transient.empty())
        return std::nullopt;
    // The launch is abandoned before any core commits work
    // (no MRAM writes, no cycle advance): the host sees the
    // fault line, polls per-core status, reports. A dropout
    // outranks a transient fault at the same site — the
    // caller must redistribute before any retry can succeed.
    const FaultKind kind = dropped.empty()
                               ? FaultKind::TransientKernel
                               : FaultKind::PermanentDropout;
    auto &faultyDpus = dropped.empty() ? transient : dropped;
    if (kind == FaultKind::PermanentDropout) {
        for (const std::size_t i : faultyDpus) {
            _dead[i] = true;
            --_liveCount;
        }
    }
    const double seconds = config.launchOverheadSec + plan.detectSec;
    record(Phase::Recovery, TimeBucket::Recovery, seconds,
           faultLabel(kind));
    CommandStatus status;
    status.seconds = seconds;
    // Copied, not moved: faultyDpus aliases reusable scratch.
    status.error = CommandError{kind, faultyDpus, site};
    return status;
}

CommandStatus
CommandStream::finishLaunch(TimeBucket bucket, std::string_view label)
{
    const auto &config = _system.config();
    auto &dpus = _system._dpus;
    // Commit clocks and reduce the slowest core serially, in core
    // order: bit-identical for every pool size.
    Cycles slowest = 0;
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (_dead[i])
            continue;
        dpus[i].addCycles(_effective[i]);
        slowest = std::max(slowest, _effective[i]);
    }
    const double seconds = config.launchOverheadSec +
                           config.costModel.seconds(slowest);
    record(Phase::Kernel, bucket, seconds, label);
    if (_observer) {
        LaunchStats stats;
        stats.label = label;
        stats.start = _cursor - seconds;
        stats.end = _cursor;
        stats.effectiveCycles = _effective;
        stats.liveCount = _liveCount;
        _observer->onLaunch(*this, stats);
    }
    return {seconds, std::nullopt};
}

CommandStatus
CommandStream::launch(const KernelFn &kernel, unsigned tasklets,
                      TimeBucket bucket, std::string_view label)
{
    SWIFTRL_ASSERT(kernel, "launch of an empty kernel");
    SWIFTRL_ASSERT(tasklets >= 1 && tasklets <= 24,
                   "UPMEM DPUs support 1-24 tasklets, got ",
                   tasklets);
    const auto &config = _system.config();

    if (auto faulted = launchFaultCheck())
        return *faulted;

    // Fine-grained multithreading: t resident tasklets retire t
    // instructions per pipelineInterval window (saturating at one
    // instruction per cycle), so balanced kernels finish
    // min(t, interval) times sooner.
    const Cycles speedup = std::min<Cycles>(
        tasklets, config.costModel.pipelineInterval);

    auto &dpus = _system._dpus;
    const std::size_t n = dpus.size();
    _effective.assign(n, 0);
    // Functional execution across the host pool: one item per core,
    // each touching only its own Dpu, its host worker's reusable
    // context + scratch arena, and its _effective[] slot. Dropped
    // cores run nothing and stay at their last clock.
    _system._pool->parallelFor(n, [&](std::size_t i,
                                      unsigned worker) {
        if (_dead[i])
            return;
        LaunchWorker &w = launchWorker(worker);
        w.scratch.reset();
        if (w.ctx)
            w.ctx->rebind(dpus[i]);
        else
            w.ctx = std::make_unique<KernelContext>(
                dpus[i], config.costModel, config.wramBytesPerDpu,
                &w.scratch);
        kernel(*w.ctx);
        // Commit the kernel's ledger to its Dpu while still on the
        // worker (per-core counters, so this is race-free).
        w.ctx->flush();
        _effective[i] = w.ctx->cycles() / speedup;
    });
    return finishLaunch(bucket, label);
}

CommandStatus
CommandStream::launchBatch(const BatchKernelFn &kernel,
                           unsigned tasklets, TimeBucket bucket,
                           std::string_view label)
{
    SWIFTRL_ASSERT(kernel, "launch of an empty batch kernel");
    SWIFTRL_ASSERT(tasklets >= 1 && tasklets <= 24,
                   "UPMEM DPUs support 1-24 tasklets, got ",
                   tasklets);
    const auto &config = _system.config();

    // Same fault site as a scalar launch would consume, same
    // semantics: the site numbering of a run cannot depend on which
    // interpreter executes it.
    if (auto faulted = launchFaultCheck())
        return *faulted;

    const Cycles speedup = std::min<Cycles>(
        tasklets, config.costModel.pipelineInterval);

    auto &dpus = _system._dpus;
    const std::size_t n = dpus.size();
    _effective.assign(n, 0);

    // Cohort = live cores in ascending id order; dead lanes are
    // excluded here, the batch-kernel equivalent of launch()'s
    // per-core _dead check.
    std::vector<std::size_t> &cohort = _cohortScratch;
    cohort.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (!_dead[i])
            cohort.push_back(i);
    }
    const std::size_t lanes = cohort.size();
    // CPU-count-aware chunking: ~4 chunks per host thread for load
    // balance, clamped to the cohort so tiny cohorts do not
    // over-chunk. Each chunk gets a contiguous near-equal lane range
    // and one BatchKernelContext on one worker.
    const std::size_t chunks = std::min<std::size_t>(
        lanes, static_cast<std::size_t>(
                   std::max(1u, _system.hostThreadCount())) *
                   4);
    if (lanes > 0) {
        _system._pool->parallelFor(chunks, [&](std::size_t c,
                                               unsigned worker) {
            const std::size_t begin = lanes * c / chunks;
            const std::size_t end = lanes * (c + 1) / chunks;
            if (begin == end)
                return;
            LaunchWorker &w = launchWorker(worker);
            w.scratch.reset();
            std::vector<Dpu *> lane_dpus;
            lane_dpus.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i)
                lane_dpus.push_back(&dpus[cohort[i]]);
            BatchKernelContext bctx(lane_dpus, config.costModel,
                                    config.wramBytesPerDpu,
                                    &w.scratch);
            kernel(bctx);
            bctx.flushAll();
            for (std::size_t i = begin; i < end; ++i) {
                _effective[cohort[i]] =
                    bctx.lane(i - begin).cycles() / speedup;
            }
        });
    }
    const CommandStatus status = finishLaunch(bucket, label);
    if (telemetry::tracingActive()) {
        // Cohort span covering the committed kernel interval, sitting
        // alongside the per-command span finishLaunch's record()
        // already emitted.
        auto span = telemetry::tracer().begin(
            "engine.cohort", "engine", "modelled",
            _cursor - status.seconds, telemetry::currentSpanParent());
        span.attr("label", label).attr("lanes", lanes).attr("chunks",
                                                            chunks);
        span.finish(_cursor, "ok");
    }
    return status;
}

double
CommandStream::hostReduce(double seconds, std::string_view label)
{
    return record(Phase::HostReduce, TimeBucket::InterCore, seconds,
                  label);
}

double
CommandStream::onCoreCompute(double seconds, TimeBucket bucket,
                             std::string_view label)
{
    return record(Phase::Kernel, bucket, seconds, label);
}

double
CommandStream::recordHostSpan(Phase phase, TimeBucket bucket,
                              double start, double seconds,
                              std::string_view label)
{
    SWIFTRL_ASSERT(start >= 0.0, "host spans cannot start before 0");
    SWIFTRL_ASSERT(seconds >= 0.0,
                   "host span durations cannot be negative");
    Event event;
    event.index = _timeline.size();
    event.phase = phase;
    event.bucket = bucket;
    event.start = start;
    event.end = start + seconds;
    event.label = std::string(label);
    _timeline.record(std::move(event));
    if (telemetry::tracingActive())
        traceCommandSpan(phase, bucket, start, start + seconds,
                         label);
    return seconds;
}

double
CommandStream::waitUntil(double time)
{
    if (time <= _cursor)
        return 0.0;
    const double gap = time - _cursor;
    _cursor = time;
    return gap;
}

double
CommandStream::sync()
{
    const double elapsed = _cursor - _syncMark;
    _syncMark = _cursor;
    return elapsed;
}

} // namespace swiftrl::pimsim
