#include "pimsim/command_stream.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pimsim/host_pool.hh"
#include "pimsim/pim_system.hh"

namespace swiftrl::pimsim {

CommandStream::CommandStream(PimSystem &system) : _system(system) {}

double
CommandStream::record(Phase phase, TimeBucket bucket, double seconds,
                      std::string_view label)
{
    SWIFTRL_ASSERT(seconds >= 0.0,
                   "command durations cannot be negative");
    Event event;
    event.index = _timeline.size();
    event.phase = phase;
    event.bucket = bucket;
    event.start = _cursor;
    event.end = _cursor + seconds;
    event.label = std::string(label);
    _timeline.record(std::move(event));
    _cursor += seconds;
    return seconds;
}

double
CommandStream::pushChunks(
    std::size_t offset,
    const std::vector<std::span<const std::uint8_t>> &per_dpu,
    TimeBucket bucket, std::string_view label)
{
    auto &dpus = _system._dpus;
    SWIFTRL_ASSERT(per_dpu.size() == dpus.size(),
                   "pushChunks needs exactly one payload per core");
    std::size_t max_bytes = 0;
    for (std::size_t i = 0; i < per_dpu.size(); ++i) {
        const auto &payload = per_dpu[i];
        if (!payload.empty())
            dpus[i].mramWrite(offset, payload.data(), payload.size());
        max_bytes = std::max(max_bytes, payload.size());
    }
    const double seconds =
        _system.config().transferModel.scatterSeconds(max_bytes,
                                                      dpus.size());
    return record(Phase::Scatter, bucket, seconds, label);
}

double
CommandStream::pushBroadcast(std::size_t offset,
                             std::span<const std::uint8_t> payload,
                             TimeBucket bucket, std::string_view label)
{
    for (auto &dpu : _system._dpus) {
        if (!payload.empty())
            dpu.mramWrite(offset, payload.data(), payload.size());
    }
    const double seconds =
        _system.config().transferModel.broadcastSeconds(
            payload.size(), _system._dpus.size());
    return record(Phase::Broadcast, bucket, seconds, label);
}

double
CommandStream::gather(std::size_t offset, std::size_t bytes,
                      std::vector<std::vector<std::uint8_t>> &out,
                      TimeBucket bucket, std::string_view label)
{
    auto &dpus = _system._dpus;
    out.assign(dpus.size(), std::vector<std::uint8_t>(bytes));
    for (std::size_t i = 0; i < dpus.size(); ++i) {
        if (bytes > 0)
            dpus[i].mramRead(offset, out[i].data(), bytes);
    }
    const double seconds =
        _system.config().transferModel.pimToCpuSeconds(bytes,
                                                       dpus.size());
    return record(Phase::Gather, bucket, seconds, label);
}

double
CommandStream::gatherTimed(std::size_t offset, std::size_t bytes,
                           TimeBucket bucket, std::string_view label)
{
    // The transfer is charged as if performed; validate the range so
    // the timing-only path fails exactly where the functional one
    // would (an out-of-bank gather is a bug either way).
    if (bytes > 0) {
        std::uint8_t probe = 0;
        for (const auto &dpu : _system._dpus)
            dpu.mramRead(offset + bytes - 1, &probe, 1);
    }
    const double seconds =
        _system.config().transferModel.pimToCpuSeconds(
            bytes, _system._dpus.size());
    return record(Phase::Gather, bucket, seconds, label);
}

double
CommandStream::launch(const KernelFn &kernel, unsigned tasklets,
                      TimeBucket bucket, std::string_view label)
{
    SWIFTRL_ASSERT(kernel, "launch of an empty kernel");
    SWIFTRL_ASSERT(tasklets >= 1 && tasklets <= 24,
                   "UPMEM DPUs support 1-24 tasklets, got ",
                   tasklets);
    const auto &config = _system.config();
    // Fine-grained multithreading: t resident tasklets retire t
    // instructions per pipelineInterval window (saturating at one
    // instruction per cycle), so balanced kernels finish
    // min(t, interval) times sooner.
    const Cycles speedup = std::min<Cycles>(
        tasklets, config.costModel.pipelineInterval);

    auto &dpus = _system._dpus;
    const std::size_t n = dpus.size();
    std::vector<Cycles> effective(n, 0);
    // Functional execution across the host pool: one item per core,
    // each touching only its own Dpu and effective[] slot.
    _system._pool->parallelFor(n, [&](std::size_t i) {
        KernelContext ctx(dpus[i], config.costModel,
                          config.wramBytesPerDpu);
        kernel(ctx);
        effective[i] = ctx.cycles() / speedup;
    });
    // Commit clocks and reduce the slowest core serially, in core
    // order: bit-identical for every pool size.
    Cycles slowest = 0;
    for (std::size_t i = 0; i < n; ++i) {
        dpus[i].addCycles(effective[i]);
        slowest = std::max(slowest, effective[i]);
    }
    const double seconds = config.launchOverheadSec +
                           config.costModel.seconds(slowest);
    return record(Phase::Kernel, bucket, seconds, label);
}

double
CommandStream::hostReduce(double seconds, std::string_view label)
{
    return record(Phase::HostReduce, TimeBucket::InterCore, seconds,
                  label);
}

double
CommandStream::onCoreCompute(double seconds, TimeBucket bucket,
                             std::string_view label)
{
    return record(Phase::Kernel, bucket, seconds, label);
}

double
CommandStream::recordHostSpan(Phase phase, TimeBucket bucket,
                              double start, double seconds,
                              std::string_view label)
{
    SWIFTRL_ASSERT(start >= 0.0, "host spans cannot start before 0");
    SWIFTRL_ASSERT(seconds >= 0.0,
                   "host span durations cannot be negative");
    Event event;
    event.index = _timeline.size();
    event.phase = phase;
    event.bucket = bucket;
    event.start = start;
    event.end = start + seconds;
    event.label = std::string(label);
    _timeline.record(std::move(event));
    return seconds;
}

double
CommandStream::waitUntil(double time)
{
    if (time <= _cursor)
        return 0.0;
    const double gap = time - _cursor;
    _cursor = time;
    return gap;
}

double
CommandStream::sync()
{
    const double elapsed = _cursor - _syncMark;
    _syncMark = _cursor;
    return elapsed;
}

} // namespace swiftrl::pimsim
