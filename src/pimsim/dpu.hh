/**
 * @file
 * State of one simulated PIM core (UPMEM DPU): its MRAM bank contents,
 * its cycle counter, and per-op-class retirement counts.
 */

#ifndef SWIFTRL_PIMSIM_DPU_HH
#define SWIFTRL_PIMSIM_DPU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "pimsim/cost_model.hh"
#include "pimsim/op_class.hh"

namespace swiftrl::pimsim {

/**
 * One PIM core plus its attached 64-MB DRAM (MRAM) bank.
 *
 * The MRAM buffer is grown lazily up to the configured capacity so a
 * 2,000-core system does not actually reserve 128 GB of host memory.
 * Cycle accounting is the responsibility of KernelContext; this class
 * only stores the counters.
 */
class Dpu
{
  public:
    /**
     * @param id core index within the system.
     * @param mram_capacity bank size in bytes.
     */
    Dpu(std::size_t id, std::size_t mram_capacity);

    /** Core index within the system. */
    std::size_t id() const { return _id; }

    /** Bank capacity in bytes. */
    std::size_t mramCapacity() const { return _mramCapacity; }

    /**
     * Host- or DMA-side write into the MRAM bank.
     * Fatal when the range exceeds the bank capacity (the simulated
     * equivalent of over-allocating a 64-MB bank).
     */
    void mramWrite(std::size_t offset, const void *src, std::size_t bytes);

    /** Read from the MRAM bank; fatal on out-of-range access. */
    void mramRead(std::size_t offset, void *dst, std::size_t bytes) const;

    /**
     * Raw read-only view of MRAM bytes [offset, offset + bytes).
     * Grows the lazy buffer (zero-filled) first, so never-written
     * ranges read as zero exactly like mramRead. The pointer stays
     * valid until a write past the current buffer end triggers
     * growth; callers that interleave writes must re-acquire. Fatal
     * past the bank capacity. Used by the batch interpreter to avoid
     * staging copies of the read-only transition region.
     */
    const std::uint8_t *
    mramView(std::size_t offset, std::size_t bytes)
    {
        ensure(offset + bytes);
        return _mram.data() + offset;
    }

    /** Total cycles this core has consumed. */
    Cycles cycles() const { return _cycles; }

    /** Advance the core's clock. */
    void addCycles(Cycles c) { _cycles += c; }

    /** Record @p n retired ops of class @p op (diagnostics). */
    void
    countOps(OpClass op, std::uint64_t n)
    {
        _opCounts[static_cast<std::size_t>(op)] += n;
    }

    /** Retired-op histogram across all launches. */
    const std::array<std::uint64_t, kNumOpClasses> &
    opCounts() const
    {
        return _opCounts;
    }

    /** Bytes moved by MRAM DMA across all launches. */
    std::uint64_t dmaBytes() const { return _dmaBytes; }

    /** Record DMA traffic (diagnostics). */
    void addDmaBytes(std::uint64_t b) { _dmaBytes += b; }

    /** Reset clock and statistics, keep MRAM contents. */
    void resetStats();

  private:
    /** Grow the lazy buffer to cover [0, end); fatal past capacity. */
    void ensure(std::size_t end);

    std::size_t _id;
    std::size_t _mramCapacity;
    std::vector<std::uint8_t> _mram;
    Cycles _cycles = 0;
    std::array<std::uint64_t, kNumOpClasses> _opCounts{};
    std::uint64_t _dmaBytes = 0;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_DPU_HH
