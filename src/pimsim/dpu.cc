#include "pimsim/dpu.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace swiftrl::pimsim {

Dpu::Dpu(std::size_t id, std::size_t mram_capacity)
    : _id(id), _mramCapacity(mram_capacity)
{
}

void
Dpu::ensure(std::size_t end)
{
    if (end > _mramCapacity) {
        SWIFTRL_FATAL("DPU ", _id, ": MRAM access up to byte ", end,
                      " exceeds the ", _mramCapacity, "-byte bank");
    }
    if (end > _mram.size()) {
        // Geometric growth (doubling, clamped to the bank) so a
        // sequence of boundary-crossing writes costs amortised O(1)
        // reallocations instead of one per write. resize()
        // value-initialises the new bytes, and mramRead zero-fills
        // past the valid size anyway, so the functional contract —
        // never-written MRAM reads as zero — is unchanged.
        const std::size_t grown = std::min(
            std::max(end, _mram.size() * 2), _mramCapacity);
        _mram.resize(grown, 0);
    }
}

void
Dpu::mramWrite(std::size_t offset, const void *src, std::size_t bytes)
{
    ensure(offset + bytes);
    std::memcpy(_mram.data() + offset, src, bytes);
}

void
Dpu::mramRead(std::size_t offset, void *dst, std::size_t bytes) const
{
    if (offset + bytes > _mramCapacity) {
        SWIFTRL_FATAL("DPU ", _id, ": MRAM read up to byte ",
                      offset + bytes, " exceeds the ", _mramCapacity,
                      "-byte bank");
    }
    // Reads of never-written MRAM return zeros, like fresh DRAM in the
    // functional sense (real DRAM is undefined; zero keeps tests
    // deterministic and surfaces uninitialised-data bugs loudly).
    const std::size_t valid_end = _mram.size();
    std::uint8_t *out = static_cast<std::uint8_t *>(dst);
    const std::size_t copyable =
        offset >= valid_end
            ? 0
            : std::min(bytes, valid_end - offset);
    if (copyable > 0)
        std::memcpy(out, _mram.data() + offset, copyable);
    if (copyable < bytes)
        std::memset(out + copyable, 0, bytes - copyable);
}

void
Dpu::resetStats()
{
    _cycles = 0;
    _opCounts = {};
    _dmaBytes = 0;
}

} // namespace swiftrl::pimsim
