/**
 * @file
 * Rank leasing for fleet-level scheduling: a deterministic allocator
 * over the physical ranks of a shared PIM machine.
 *
 * A *rank* is the transfer model's allocation unit
 * (`TransferModel::dpusPerRank` cores behind one host memory-bus
 * lane); it is also the natural granularity at which a fleet
 * scheduler hands hardware to jobs — a job either owns a rank's bus
 * lane or it does not. RankPool tracks which ranks are leased, grants
 * them lowest-id-first (so two identical scheduling runs produce
 * byte-identical placements), and accumulates per-rank busy seconds
 * for occupancy accounting.
 *
 * The pool is bookkeeping, not enforcement: the simulator executes
 * kernels functionally, so *which* physical rank a job's cores map to
 * never changes a computed value — placement affects occupancy
 * telemetry and the fleet's modelled clock only. That is exactly the
 * property the scheduler's determinism contract leans on: a job
 * checkpointed off one rank subset and resumed on another yields
 * bit-identical Q-tables (see docs/SCHEDULER.md).
 */

#ifndef SWIFTRL_PIMSIM_RANK_POOL_HH
#define SWIFTRL_PIMSIM_RANK_POOL_HH

#include <cstddef>
#include <vector>

namespace swiftrl::pimsim {

/** Deterministic lease manager over a fixed set of ranks. */
class RankPool
{
  public:
    /** @param num_ranks ranks in the fleet; fatal if zero. */
    explicit RankPool(std::size_t num_ranks);

    /** Ranks in the fleet. */
    std::size_t numRanks() const { return _leased.size(); }

    /** Ranks currently unleased. */
    std::size_t freeRanks() const { return _free; }

    /**
     * Lease @p count ranks, lowest free ids first. Returns the
     * granted rank ids (ascending), or an empty vector — leasing
     * nothing — when fewer than @p count ranks are free. A zero
     * @p count is fatal (a lease must lease something).
     */
    std::vector<std::size_t> lease(std::size_t count);

    /** Return previously leased ranks; fatal on a rank that is not
     *  currently leased (double release / foreign id). */
    void release(const std::vector<std::size_t> &ranks);

    /** Accumulate @p seconds of busy time on each rank of @p ranks
     *  (occupancy accounting; negative durations are fatal). */
    void charge(const std::vector<std::size_t> &ranks, double seconds);

    /** Busy seconds accumulated on @p rank so far. */
    double busySeconds(std::size_t rank) const;

    /** Sum of busy seconds over all ranks. */
    double totalBusySeconds() const;

  private:
    std::vector<bool> _leased;
    std::vector<double> _busySec;
    std::size_t _free = 0;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_RANK_POOL_HH
