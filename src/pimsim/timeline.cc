#include "pimsim/timeline.hh"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/json.hh"

namespace swiftrl::pimsim {

double
Timeline::endTime() const
{
    double end = 0.0;
    for (const auto &e : _events)
        end = std::max(end, e.end);
    return end;
}

double
Timeline::totalForPhase(Phase phase) const
{
    double total = 0.0;
    for (const auto &e : _events) {
        if (e.phase == phase)
            total += e.duration();
    }
    return total;
}

double
Timeline::totalForBucket(TimeBucket bucket) const
{
    double total = 0.0;
    for (const auto &e : _events) {
        if (e.bucket == bucket)
            total += e.duration();
    }
    return total;
}

using json::jsonEscape;

void
Timeline::exportChromeTrace(std::ostream &os) const
{
    exportChromeTrace(os, {});
}

void
Timeline::exportChromeTrace(std::ostream &os,
                            std::string_view extra_events) const
{
    const auto old_precision = os.precision(
        std::numeric_limits<double>::max_digits10);

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // Track metadata: name the process and one thread per phase, in
    // pipeline order.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"swiftrl modelled PIM stream\"}}";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << p << ",\"args\":{\"name\":\""
           << phaseName(static_cast<Phase>(p)) << "\"}}";
    }
    // One complete ("X") slice per command, timestamps in
    // microseconds of modelled time.
    for (const auto &e : _events) {
        os << ",\n{\"name\":\"" << jsonEscape(e.label)
           << "\",\"cat\":\"" << phaseName(e.phase)
           << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
           << static_cast<std::size_t>(e.phase)
           << ",\"ts\":" << e.start * 1e6
           << ",\"dur\":" << e.duration() * 1e6
           << ",\"args\":{\"index\":" << e.index
           << ",\"bucket\":\"" << bucketName(e.bucket) << "\"}}";
    }
    // Counter tracks ("C" events): one numeric series per counter
    // name, sampled in modelled time. Present only when a telemetry
    // collector was attached to the stream.
    for (const auto &c : _counters) {
        os << ",\n{\"name\":\"" << jsonEscape(c.name)
           << "\",\"ph\":\"C\",\"pid\":0,\"ts\":" << c.time * 1e6
           << ",\"args\":{\"value\":" << c.value << "}}";
    }
    // Caller-supplied extra events (causal spans on pid 1); each
    // object arrives pre-serialized with its ",\n" prefix.
    if (!extra_events.empty()) {
        // Name the span process so the merged view reads cleanly.
        os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
              "\"args\":{\"name\":\"swiftrl causal spans\"}}";
        os << extra_events;
    }
    os << "\n]}\n";
    os.precision(old_precision);
}

bool
Timeline::writeChromeTrace(const std::string &path,
                           std::string_view extra_events) const
{
    std::ofstream file(path);
    if (!file)
        return false;
    exportChromeTrace(file, extra_events);
    return static_cast<bool>(file);
}

} // namespace swiftrl::pimsim
