#include "pimsim/pim_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::pimsim {

PimSystem::PimSystem(PimConfig config) : _config(std::move(config))
{
    if (_config.numDpus == 0)
        SWIFTRL_FATAL("a PIM system needs at least one core");
    if (_config.mramBytesPerDpu == 0 || _config.wramBytesPerDpu == 0)
        SWIFTRL_FATAL("per-core memories must be non-empty");
    validate(_config.costModel);
    validate(_config.transferModel);

    _dpus.reserve(_config.numDpus);
    for (std::size_t i = 0; i < _config.numDpus; ++i)
        _dpus.emplace_back(i, _config.mramBytesPerDpu);
}

const Dpu &
PimSystem::dpu(std::size_t id) const
{
    SWIFTRL_ASSERT(id < _dpus.size(), "DPU id ", id, " out of range");
    return _dpus[id];
}

double
PimSystem::pushChunks(std::size_t offset,
                      const std::vector<std::span<const std::uint8_t>>
                          &per_dpu)
{
    SWIFTRL_ASSERT(per_dpu.size() == _dpus.size(),
                   "pushChunks needs exactly one payload per core");
    std::size_t max_bytes = 0;
    for (std::size_t i = 0; i < per_dpu.size(); ++i) {
        const auto &payload = per_dpu[i];
        if (!payload.empty())
            _dpus[i].mramWrite(offset, payload.data(), payload.size());
        max_bytes = std::max(max_bytes, payload.size());
    }
    return _config.transferModel.scatterSeconds(max_bytes,
                                                _dpus.size());
}

double
PimSystem::pushBroadcast(std::size_t offset,
                         std::span<const std::uint8_t> payload)
{
    for (auto &dpu : _dpus) {
        if (!payload.empty())
            dpu.mramWrite(offset, payload.data(), payload.size());
    }
    return _config.transferModel.broadcastSeconds(payload.size(),
                                                  _dpus.size());
}

double
PimSystem::gather(std::size_t offset, std::size_t bytes,
                  std::vector<std::vector<std::uint8_t>> &out)
{
    out.assign(_dpus.size(), std::vector<std::uint8_t>(bytes));
    for (std::size_t i = 0; i < _dpus.size(); ++i) {
        if (bytes > 0)
            _dpus[i].mramRead(offset, out[i].data(), bytes);
    }
    return _config.transferModel.pimToCpuSeconds(bytes, _dpus.size());
}

double
PimSystem::launch(const Kernel &kernel, unsigned tasklets)
{
    SWIFTRL_ASSERT(kernel, "launch of an empty kernel");
    SWIFTRL_ASSERT(tasklets >= 1 && tasklets <= 24,
                   "UPMEM DPUs support 1-24 tasklets, got ",
                   tasklets);
    // Fine-grained multithreading: t resident tasklets retire t
    // instructions per pipelineInterval window (saturating at one
    // instruction per cycle), so balanced kernels finish
    // min(t, interval) times sooner.
    const Cycles speedup =
        std::min<Cycles>(tasklets, _config.costModel.pipelineInterval);
    Cycles slowest = 0;
    for (auto &dpu : _dpus) {
        KernelContext ctx(dpu, _config.costModel,
                          _config.wramBytesPerDpu);
        kernel(ctx);
        const Cycles effective = ctx.cycles() / speedup;
        dpu.addCycles(effective);
        slowest = std::max(slowest, effective);
    }
    return _config.launchOverheadSec +
           _config.costModel.seconds(slowest);
}

Cycles
PimSystem::maxCycles() const
{
    Cycles m = 0;
    for (const auto &dpu : _dpus)
        m = std::max(m, dpu.cycles());
    return m;
}

Cycles
PimSystem::totalCycles() const
{
    Cycles t = 0;
    for (const auto &dpu : _dpus)
        t += dpu.cycles();
    return t;
}

void
PimSystem::resetStats()
{
    for (auto &dpu : _dpus)
        dpu.resetStats();
}

} // namespace swiftrl::pimsim
