#include "pimsim/pim_system.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "pimsim/command_stream.hh"
#include "pimsim/host_pool.hh"

namespace swiftrl::pimsim {

namespace {

/** Resolve PimConfig::hostThreads to a concrete pool size. */
unsigned
resolveHostThreads(unsigned requested, std::size_t num_dpus)
{
    unsigned threads = requested;
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    // More threads than cores would only idle.
    threads = static_cast<unsigned>(std::min<std::size_t>(
        threads, num_dpus));
    return std::max(1u, threads);
}

} // namespace

PimSystem::PimSystem(PimConfig config) : _config(std::move(config))
{
    if (_config.numDpus == 0)
        SWIFTRL_FATAL("a PIM system needs at least one core");
    if (_config.mramBytesPerDpu == 0 || _config.wramBytesPerDpu == 0)
        SWIFTRL_FATAL("per-core memories must be non-empty");
    validate(_config.costModel);
    validate(_config.transferModel);
    validate(_config.faultPlan);

    _dpus.reserve(_config.numDpus);
    for (std::size_t i = 0; i < _config.numDpus; ++i)
        _dpus.emplace_back(i, _config.mramBytesPerDpu);

    _pool = std::make_unique<HostPool>(
        resolveHostThreads(_config.hostThreads, _config.numDpus));
}

PimSystem::~PimSystem() = default;

const Dpu &
PimSystem::dpu(std::size_t id) const
{
    SWIFTRL_ASSERT(id < _dpus.size(), "DPU id ", id, " out of range");
    return _dpus[id];
}

unsigned
PimSystem::hostThreadCount() const
{
    return _pool->threadCount();
}

CommandStream &
PimSystem::defaultStream()
{
    if (!_defaultStream)
        _defaultStream = std::make_unique<CommandStream>(*this);
    return *_defaultStream;
}

double
PimSystem::pushChunks(std::size_t offset,
                      const std::vector<std::span<const std::uint8_t>>
                          &per_dpu)
{
    return defaultStream().pushChunks(offset, per_dpu);
}

double
PimSystem::pushBroadcast(std::size_t offset,
                         std::span<const std::uint8_t> payload)
{
    return defaultStream().pushBroadcast(offset, payload);
}

double
PimSystem::gather(std::size_t offset, std::size_t bytes,
                  std::vector<std::vector<std::uint8_t>> &out)
{
    const CommandStatus status =
        defaultStream().gather(offset, bytes, out);
    if (!status.ok())
        SWIFTRL_FATAL("gather failed (", faultKindName(
                          status.error->kind),
                      " at fault site ", status.error->site,
                      ") and the blocking API has no recovery path; "
                      "drive a CommandStream with a RetryPolicy");
    return status.seconds;
}

double
PimSystem::launch(const KernelFn &kernel, unsigned tasklets)
{
    const CommandStatus status =
        defaultStream().launch(kernel, tasklets);
    if (!status.ok())
        SWIFTRL_FATAL("kernel launch failed (", faultKindName(
                          status.error->kind),
                      " at fault site ", status.error->site,
                      ") and the blocking API has no recovery path; "
                      "drive a CommandStream with a RetryPolicy");
    return status.seconds;
}

Cycles
PimSystem::maxCycles() const
{
    Cycles m = 0;
    for (const auto &dpu : _dpus)
        m = std::max(m, dpu.cycles());
    return m;
}

Cycles
PimSystem::totalCycles() const
{
    Cycles t = 0;
    for (const auto &dpu : _dpus)
        t += dpu.cycles();
    return t;
}

void
PimSystem::resetStats()
{
    for (auto &dpu : _dpus)
        dpu.resetStats();
}

} // namespace swiftrl::pimsim
