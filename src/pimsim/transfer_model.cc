#include "pimsim/transfer_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::pimsim {

std::size_t
TransferModel::fullestRank(std::size_t num_dpus) const
{
    SWIFTRL_ASSERT(num_dpus > 0, "transfer to zero DPUs");
    return std::min(num_dpus, dpusPerRank);
}

double
TransferModel::cpuToPimSeconds(std::size_t bytes_per_dpu,
                               std::size_t num_dpus) const
{
    if (bytes_per_dpu == 0)
        return 0.0;
    const double rank_bytes = static_cast<double>(bytes_per_dpu) *
                              static_cast<double>(fullestRank(num_dpus));
    return fixedLatencySec + rank_bytes / cpuToPimBytesPerSec;
}

double
TransferModel::scatterSeconds(std::size_t bytes_per_dpu,
                              std::size_t num_dpus) const
{
    if (bytes_per_dpu == 0)
        return 0.0;
    return cpuToPimSeconds(bytes_per_dpu, num_dpus) +
           scatterPerDpuSec * static_cast<double>(num_dpus);
}

double
TransferModel::pimToCpuSeconds(std::size_t bytes_per_dpu,
                               std::size_t num_dpus) const
{
    if (bytes_per_dpu == 0)
        return 0.0;
    const double rank_bytes = static_cast<double>(bytes_per_dpu) *
                              static_cast<double>(fullestRank(num_dpus));
    return fixedLatencySec + rank_bytes / pimToCpuBytesPerSec;
}

double
TransferModel::broadcastSeconds(std::size_t bytes,
                                std::size_t num_dpus) const
{
    if (bytes == 0)
        return 0.0;
    // Same layout as a distinct-payload push: every DPU's bank must
    // receive its own copy, so the fullest rank still serialises one
    // copy per resident DPU.
    return cpuToPimSeconds(bytes, num_dpus);
}

double
TransferModel::aggregationTreeSeconds(std::size_t slice_entries,
                                      std::size_t replicas) const
{
    if (slice_entries == 0 || replicas == 0)
        return 0.0;
    // ceil(log2(replicas)) pairwise-sum levels; at least one pass
    // (the final averaging division over the reduced slice).
    std::size_t levels = 0;
    for (std::size_t span = 1; span < replicas; span *= 2)
        ++levels;
    levels = std::max<std::size_t>(levels, 1);
    return treeReduceSecPerEntry *
           static_cast<double>(slice_entries) *
           static_cast<double>(levels);
}

double
TransferModel::haloPackSeconds(std::size_t halo_entries) const
{
    return haloPackSecPerEntry * static_cast<double>(halo_entries);
}

double
TransferModel::syncRoundSeconds(std::size_t bytes_per_dpu,
                                std::size_t num_dpus) const
{
    return pimToCpuSeconds(bytes_per_dpu, num_dpus) +
           broadcastSeconds(bytes_per_dpu, num_dpus);
}

void
validate(const TransferModel &model)
{
    if (model.dpusPerRank == 0)
        SWIFTRL_FATAL("dpusPerRank must be positive");
    if (model.cpuToPimBytesPerSec <= 0.0 ||
        model.pimToCpuBytesPerSec <= 0.0) {
        SWIFTRL_FATAL("transfer bandwidths must be positive");
    }
    if (model.fixedLatencySec < 0.0)
        SWIFTRL_FATAL("fixed transfer latency cannot be negative");
    if (model.scatterPerDpuSec < 0.0 || model.hostReduceSecPerEntry < 0.0)
        SWIFTRL_FATAL("per-DPU and host-reduce overheads cannot be "
                      "negative");
    if (model.treeReduceSecPerEntry < 0.0 ||
        model.haloPackSecPerEntry < 0.0) {
        SWIFTRL_FATAL("sharded aggregation overheads cannot be "
                      "negative");
    }
}

} // namespace swiftrl::pimsim
