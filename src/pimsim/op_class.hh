/**
 * @file
 * Instruction classes charged by the DPU cost model.
 *
 * The classes mirror what matters on UPMEM hardware (SwiftRL Sec. 2.2):
 * 32-bit integer add/sub are native single instructions, 8-bit multiply
 * is native, 32-bit multiply and divide are emulated by the runtime
 * library with shift-and-add sequences, and every FP32 operation is
 * emulated in software at a cost of tens to hundreds of instructions.
 */

#ifndef SWIFTRL_PIMSIM_OP_CLASS_HH
#define SWIFTRL_PIMSIM_OP_CLASS_HH

#include <cstddef>

namespace swiftrl::pimsim {

/** Operation classes the cost model prices individually. */
enum class OpClass : std::size_t
{
    IntAlu,     ///< 32-bit add/sub/compare/shift/logical (native)
    Int8Mul,    ///< 8-bit multiply (native mul_step-based)
    Int32Mul,   ///< 32-bit multiply (runtime shift-and-add emulation)
    Int32Div,   ///< 32-bit divide (runtime emulation)
    Fp32Add,    ///< FP32 add/sub (runtime softfloat)
    Fp32Mul,    ///< FP32 multiply (runtime softfloat)
    Fp32Div,    ///< FP32 divide (runtime softfloat)
    Fp32Cmp,    ///< FP32 compare (runtime softfloat)
    WramAccess, ///< WRAM load or store (single instruction)
    Branch,     ///< taken or not-taken branch / loop bookkeeping
    NumClasses
};

/** Human-readable name for reports. */
const char *opClassName(OpClass op);

/** Number of distinct op classes. */
inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_OP_CLASS_HH
