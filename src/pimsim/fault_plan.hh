/**
 * @file
 * Deterministic fault injection for the command-stream runtime.
 *
 * Real multi-rank UPMEM deployments see transient kernel faults,
 * corrupted host<->MRAM transfers, and (rarely) permanently failed
 * cores; the UPMEM ML-training study (Gomez-Luna et al., 2022) notes
 * the host must absorb all three at fleet scale. The simulator models
 * them with a seeded `FaultPlan` carried in `PimConfig` (off by
 * default): faults fire at *fault sites* — the stream-local enqueue
 * index over the fault-eligible commands (kernel launches and
 * functional gathers, counted together in enqueue order) — either
 * from an explicit `scheduled` list or from per-(site, core) rate
 * draws derived purely from `(seed, kind, site, core)`.
 *
 * Because the draw depends on nothing but those integers, a fixed
 * fault seed produces the *same* fault sequence — and therefore the
 * same recovery path and the same final Q-table — for every host-pool
 * size and actor count. That extends the repository's determinism
 * contract (docs/ARCHITECTURE.md §5) to the failure path.
 *
 * A faulted command returns a typed `CommandError` inside its
 * `CommandStatus` instead of dying via SWIFTRL_FATAL; the failed
 * attempt's modelled cost is charged to the timeline's Recovery
 * track. Recovery itself (bounded retry with backoff, chunk
 * redistribution on dropout) is the trainers' job — see
 * `swiftrl::RetryPolicy`.
 */

#ifndef SWIFTRL_PIMSIM_FAULT_PLAN_HH
#define SWIFTRL_PIMSIM_FAULT_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace swiftrl::pimsim {

/** The three modelled fault classes. */
enum class FaultKind
{
    /**
     * A kernel launch attempt fails before completion (DPU fault
     * line raised); no functional work is committed. Retrying the
     * launch usually succeeds.
     */
    TransientKernel,

    /**
     * A gathered MRAM chunk arrives corrupted on the wire, detected
     * by a per-chunk checksum mismatch. The bank contents are intact;
     * re-gathering usually succeeds.
     */
    CorruptGather,

    /**
     * A core stops responding permanently. Its chunk of work must be
     * redistributed over the surviving cores.
     */
    PermanentDropout,
};

/** Stable lower-case name of a fault kind (labels, diagnostics). */
constexpr const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::TransientKernel: return "transient-kernel";
    case FaultKind::CorruptGather: return "corrupt-gather";
    case FaultKind::PermanentDropout: return "permanent-dropout";
    }
    return "?";
}

/** One explicitly scheduled fault at a (site, core) point. */
struct ScheduledFault
{
    FaultKind kind = FaultKind::TransientKernel;

    /**
     * Fault-site index on the stream: launches and functional
     * gathers each consume one site, in enqueue order (a retried
     * command occupies a *new* site).
     */
    std::size_t site = 0;

    /** Core the fault strikes. */
    std::size_t dpu = 0;
};

/**
 * Seeded, deterministic fault schedule. Part of `PimConfig`; all
 * rates default to 0 and no faults are scheduled, so the plan is
 * inert unless configured — zero-fault runs are byte-identical in
 * time and results to a build without fault injection.
 */
struct FaultPlan
{
    /** Root seed of the per-(kind, site, core) fault draws. */
    std::uint64_t seed = 0;

    /** Per-(launch-site, core) transient kernel fault probability. */
    double transientRate = 0.0;

    /** Per-(gather-site, core) wire-corruption probability. */
    double corruptRate = 0.0;

    /** Per-(launch-site, core) permanent dropout probability. */
    double dropoutRate = 0.0;

    /** Explicit faults, fired in addition to the rate draws. */
    std::vector<ScheduledFault> scheduled;

    /**
     * Modelled host cost of detecting a failed launch (fault-line
     * poll + per-core fault status readback). See docs/COSTMODEL.md.
     */
    double detectSec = 25.0e-6;

    /**
     * Modelled host cost per gathered byte of verifying the
     * per-chunk checksums (one streaming pass over the received
     * payloads). Charged on every gather while the plan is active —
     * detection is not free. See docs/COSTMODEL.md.
     */
    double checksumSecPerByte = 0.2e-9;

    /** True when any fault can ever fire (rates or schedule). */
    bool enabled() const;

    /**
     * Deterministic decision: does a fault of @p kind fire at fault
     * site @p site on core @p dpu? Pure in (seed, kind, site, dpu).
     */
    bool fires(FaultKind kind, std::size_t site, std::size_t dpu) const;
};

/** Validate fault-plan parameters; fatal on nonsense. */
void validate(const FaultPlan &plan);

/**
 * Per-chunk transfer checksum (FNV-1a 64): what a DPU-side routine
 * would compute over its outgoing MRAM chunk and the host recomputes
 * over the received payload to detect wire corruption.
 */
std::uint64_t chunkChecksum(std::span<const std::uint8_t> data);

/** Typed description of a failed command attempt. */
struct CommandError
{
    FaultKind kind = FaultKind::TransientKernel;

    /** Faulting core ids, ascending. */
    std::vector<std::size_t> dpus;

    /** Fault site the command occupied. */
    std::size_t site = 0;
};

/**
 * Outcome of a fault-eligible command attempt: the modelled seconds
 * charged to the timeline (a failed attempt still costs time — it
 * lands on the Recovery track) plus the error, if any.
 */
struct CommandStatus
{
    /** Modelled seconds charged for this attempt. */
    double seconds = 0.0;

    /** Set when the attempt failed; the command had no functional
     *  effect and the caller must recover (retry / redistribute). */
    std::optional<CommandError> error;

    /** True when the command completed. */
    bool ok() const { return !error.has_value(); }
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_FAULT_PLAN_HH
