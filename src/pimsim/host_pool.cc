#include "pimsim/host_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::pimsim {

HostPool::HostPool(unsigned threads) : _threads(threads)
{
    SWIFTRL_ASSERT(threads >= 1,
                   "a host pool needs at least the calling thread");
    _workers.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i + 1); });
}

HostPool::~HostPool()
{
    {
        std::lock_guard lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

std::size_t
HostPool::runShare(Job &job, unsigned worker)
{
    std::size_t did = 0;
    for (;;) {
        const std::size_t start =
            job.next.fetch_add(job.grain, std::memory_order_relaxed);
        if (start >= job.n)
            break;
        const std::size_t end =
            std::min(start + job.grain, job.n);
        for (std::size_t i = start; i < end; ++i)
            job.fn(job.ctx, i, worker);
        did += end - start;
    }
    return did;
}

void
HostPool::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    std::unique_lock lock(_mutex);
    for (;;) {
        _wake.wait(lock,
                   [&] { return _stop || _generation != seen; });
        if (_stop)
            return;
        seen = _generation;
        // Hold a reference: a worker late to a drained job must not
        // steal indices from the next one. The caller may even have
        // drained *and retired* the job before this worker woke — the
        // pointer is null then, and there is nothing left to share.
        const auto job = _job;
        if (!job)
            continue;
        lock.unlock();
        const std::size_t did = runShare(*job, worker);
        lock.lock();
        job->finished += did;
        if (job->finished == job->n)
            _done.notify_all();
    }
}

void
HostPool::run(std::size_t n, RawFn fn, void *ctx)
{
    if (n == 0)
        return;
    if (_workers.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(ctx, i, 0);
        return;
    }
    const auto job = std::make_shared<Job>();
    job->fn = fn;
    job->ctx = ctx;
    job->n = n;
    // Oversubscribe ~4 chunks per thread: large enough that a full
    // launch costs O(threads) atomics, small enough to rebalance
    // when per-index costs are skewed. Ceil-divide and cap the chunk
    // count at the range length: the old truncating `n / (4*threads)`
    // degenerated to grain 1 for any n < 8*threads, paying one atomic
    // per index on exactly the small ranges where that overhead shows.
    const std::size_t target_chunks = std::min<std::size_t>(
        n, static_cast<std::size_t>(_threads) * 4);
    job->grain = (n + target_chunks - 1) / target_chunks;
    {
        std::lock_guard lock(_mutex);
        _job = job;
        ++_generation;
    }
    _wake.notify_all();
    // The caller works too; it then waits for stragglers.
    const std::size_t did = runShare(*job, 0);
    std::unique_lock lock(_mutex);
    job->finished += did;
    _done.wait(lock, [&] { return job->finished == job->n; });
    if (_job == job)
        _job.reset();
}

} // namespace swiftrl::pimsim
