#include "pimsim/host_pool.hh"

#include "common/logging.hh"

namespace swiftrl::pimsim {

HostPool::HostPool(unsigned threads) : _threads(threads)
{
    SWIFTRL_ASSERT(threads >= 1,
                   "a host pool needs at least the calling thread");
    _workers.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

HostPool::~HostPool()
{
    {
        std::lock_guard lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

std::size_t
HostPool::runShare(Job &job)
{
    std::size_t did = 0;
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            break;
        (*job.fn)(i);
        ++did;
    }
    return did;
}

void
HostPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock lock(_mutex);
    for (;;) {
        _wake.wait(lock,
                   [&] { return _stop || _generation != seen; });
        if (_stop)
            return;
        seen = _generation;
        // Hold a reference: a worker late to a drained job must not
        // steal indices from the next one. The caller may even have
        // drained *and retired* the job before this worker woke — the
        // pointer is null then, and there is nothing left to share.
        const auto job = _job;
        if (!job)
            continue;
        lock.unlock();
        const std::size_t did = runShare(*job);
        lock.lock();
        job->finished += did;
        if (job->finished == job->n)
            _done.notify_all();
    }
}

void
HostPool::parallelFor(std::size_t n,
                      const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (_workers.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    const auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    {
        std::lock_guard lock(_mutex);
        _job = job;
        ++_generation;
    }
    _wake.notify_all();
    // The caller works too; it then waits for stragglers.
    const std::size_t did = runShare(*job);
    std::unique_lock lock(_mutex);
    job->finished += did;
    _done.wait(lock, [&] { return job->finished == job->n; });
    if (_job == job)
        _job.reset();
}

} // namespace swiftrl::pimsim
