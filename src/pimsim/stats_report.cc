#include "pimsim/stats_report.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "pimsim/device_counters.hh"

namespace swiftrl::pimsim {

StatsReport
StatsReport::fromSystem(const PimSystem &system)
{
    // The aggregation itself lives in DeviceCounters — the snapshot
    // path the telemetry registry and the throughput bench also read
    // — so every report derives from the same sums.
    const DeviceCounters counters = DeviceCounters::fromSystem(system);
    const auto &model = system.config().costModel;

    StatsReport r;
    r.numDpus = counters.numDpus;
    r.opCounts = counters.opCounts;
    r.dmaBytes = counters.dmaBytes;
    r.maxCycles = counters.maxCycles;
    r.meanCycles = static_cast<double>(counters.totalCycles) /
                   static_cast<double>(r.numDpus);
    r.imbalance = r.meanCycles > 0.0
                      ? static_cast<double>(r.maxCycles) / r.meanCycles
                      : 0.0;

    std::uint64_t arithmetic_ops = 0;
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
        r.opCycles[c] = r.opCounts[c] *
                        model.cyclesFor(static_cast<OpClass>(c));
        r.totalOps += r.opCounts[c];
        const auto op = static_cast<OpClass>(c);
        if (op != OpClass::WramAccess && op != OpClass::Branch)
            arithmetic_ops += r.opCounts[c];
    }
    r.arithmeticIntensity =
        r.dmaBytes > 0 ? static_cast<double>(arithmetic_ops) /
                             static_cast<double>(r.dmaBytes)
                       : 0.0;

    r.seconds = model.seconds(r.maxCycles);
    r.energyJoules =
        r.seconds * system.config().wattsInUse(r.numDpus);
    return r;
}

double
StatsReport::cycleFraction(OpClass op) const
{
    Cycles total = 0;
    for (const auto c : opCycles)
        total += c;
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               opCycles[static_cast<std::size_t>(op)]) /
           static_cast<double>(total);
}

void
StatsReport::print(std::ostream &os, const std::string &title) const
{
    using common::TextTable;

    TextTable t(title);
    t.setHeader({"op class", "retired", "cycles", "cycle share"});
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
        if (opCounts[c] == 0)
            continue;
        const auto op = static_cast<OpClass>(c);
        t.addRow({opClassName(op),
                  TextTable::num(static_cast<long long>(opCounts[c])),
                  TextTable::num(static_cast<long long>(opCycles[c])),
                  TextTable::percent(cycleFraction(op), 1)});
    }
    t.addRule();
    t.addRow({"dma bytes",
              TextTable::num(static_cast<long long>(dmaBytes)), "-",
              "-"});
    t.addRow({"arith intensity (ops/DMA byte)",
              TextTable::num(arithmeticIntensity, 3), "-", "-"});
    t.addRow({"load imbalance (max/mean)",
              TextTable::num(imbalance, 4), "-", "-"});
    t.addRow({"slowest-core seconds", TextTable::num(seconds, 4), "-",
              "-"});
    t.addRow({"energy estimate (J)", TextTable::num(energyJoules, 3),
              "-", "-"});
    t.print(os);
}

} // namespace swiftrl::pimsim
