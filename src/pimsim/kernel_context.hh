/**
 * @file
 * Execution context handed to a kernel running on one simulated PIM
 * core. Kernels are ordinary C++ callables that compute functionally
 * on host memory, but *every* priced operation goes through this
 * context so the core's cycle clock advances exactly as the UPMEM cost
 * model dictates:
 *
 *  - arithmetic helpers (fadd, imul32, ...) compute the value *and*
 *    charge the op;
 *  - mramToWram/wramToMram move data between the MRAM bank and a
 *    kernel-owned staging buffer, charging DMA latency per transfer
 *    (split at the hardware's 2,048-byte DMA limit and padded to
 *    8-byte alignment);
 *  - wramAlloc accounts the kernel's scratchpad footprint against the
 *    64-KB WRAM capacity and is fatal on overflow — the simulated
 *    equivalent of a DPU program that does not link.
 *
 * Kernels that need randomness must draw it through lcgNext(), the
 * same linear congruential generator SwiftRL implements on the DPUs
 * (rand() does not exist there), so the priced instruction stream and
 * the functional result match the paper's implementation.
 */

#ifndef SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH
#define SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH

#include <cstdint>
#include <functional>

#include "common/rng.hh"
#include "pimsim/cost_model.hh"
#include "pimsim/dpu.hh"

namespace swiftrl::pimsim {

class KernelContext;

/**
 * A kernel is a callable executed once per core. The command-stream
 * engine may run instances on a host thread pool, so a kernel must
 * confine its effects to per-core state (its KernelContext, and host
 * buffers indexed by ctx.dpuId()).
 */
using KernelFn = std::function<void(KernelContext &)>;

/** Per-core kernel execution context. See file comment. */
class KernelContext
{
  public:
    /**
     * @param dpu core the kernel runs on.
     * @param model instruction cost model.
     * @param wram_capacity scratchpad size in bytes.
     */
    KernelContext(Dpu &dpu, const DpuCostModel &model,
                  std::size_t wram_capacity);

    /** Index of the core this kernel instance runs on. */
    std::size_t dpuId() const { return _dpu.id(); }

    /** Cycles consumed by this kernel instance so far. */
    Cycles cycles() const { return _cycles; }

    // --- scratchpad accounting ------------------------------------

    /**
     * Account a static WRAM allocation of @p bytes (Q-table, staging
     * buffers). Fatal when the kernel's total footprint exceeds the
     * scratchpad capacity.
     */
    void wramAlloc(std::size_t bytes);

    /** Scratchpad bytes allocated by this kernel instance. */
    std::size_t wramUsed() const { return _wramUsed; }

    // --- MRAM DMA ---------------------------------------------------

    /**
     * DMA @p bytes from MRAM offset @p offset into @p dst (a staging
     * buffer the kernel allocated). Splits at the hardware DMA limit
     * and charges each piece's fixed+streaming cost; sub-8-byte tails
     * are charged as a full aligned transfer, as the hardware would.
     */
    void mramToWram(std::size_t offset, void *dst, std::size_t bytes);

    /** DMA @p bytes from @p src back to MRAM offset @p offset. */
    void wramToMram(std::size_t offset, const void *src,
                    std::size_t bytes);

    // --- priced arithmetic -------------------------------------------

    /** FP32 add (runtime-emulated on the modelled hardware). */
    float fadd(float a, float b);

    /** FP32 subtract (same emulation cost class as add). */
    float fsub(float a, float b);

    /** FP32 multiply. */
    float fmul(float a, float b);

    /** FP32 divide. */
    float fdiv(float a, float b);

    /** FP32 greater-than compare. */
    bool fgt(float a, float b);

    /** Native 32-bit integer add. */
    std::int32_t iadd(std::int32_t a, std::int32_t b);

    /** Native 32-bit integer subtract. */
    std::int32_t isub(std::int32_t a, std::int32_t b);

    /** Emulated 32-bit integer multiply (shift-and-add sequence). */
    std::int64_t imul32(std::int32_t a, std::int32_t b);

    /** Emulated 32-bit integer divide. */
    std::int32_t idiv32(std::int32_t a, std::int32_t b);

    /**
     * Rescale a widened fixed-point product: truncating division of a
     * 64-bit value by the compile-time scale constant, strength-
     * reduced to a reciprocal multiply plus shifts (charged as one
     * emulated multiply and two ALU ops).
     */
    std::int32_t rescale(std::int64_t value, std::int32_t scale);

    /** Native 8-bit multiply. */
    std::int32_t imul8(std::int8_t a, std::int8_t b);

    /**
     * Narrow multiply for the INT8 kernel path: a 16-bit-or-less
     * value times an 8-bit-or-less constant, composed from two
     * native 8-bit multiplies plus shift/add glue. Fatal when the
     * operands do not fit the narrow composition — the "limited
     * value range" caveat of Sec. 3.2.1 enforced at runtime.
     */
    std::int64_t imulSmall(std::int32_t a, std::int32_t b);

    /**
     * Power-of-two rescale: a single arithmetic right shift (floor
     * division), one native instruction.
     */
    std::int32_t rescaleShift(std::int64_t value, int shift);

    /** Native integer greater-than compare. */
    bool igt(std::int32_t a, std::int32_t b);

    /** WRAM load of one 32-bit word held in @p slot. */
    std::int32_t wramLoadI32(const std::int32_t &slot);

    /** WRAM store of one 32-bit word into @p slot. */
    void wramStoreI32(std::int32_t &slot, std::int32_t value);

    /** WRAM load of one FP32 word. */
    float wramLoadF32(const float &slot);

    /** WRAM store of one FP32 word. */
    void wramStoreF32(float &slot, float value);

    /** Loop/branch bookkeeping instruction. */
    void branch(std::uint64_t count = 1);

    /** Generic charge for address arithmetic etc. */
    void aluOps(std::uint64_t count);

    // --- PIM-side RNG -------------------------------------------------

    /** Seed the core-local LCG (one ALU op). */
    void lcgSeed(std::uint32_t seed);

    /**
     * Draw from the core-local LCG: one emulated 32-bit multiply plus
     * one add, exactly the custom rand() routine of SwiftRL Sec. 3.2.1.
     */
    std::uint32_t lcgNext();

    /** Bounded LCG draw in [0, bound): lcgNext plus reduction ops. */
    std::uint32_t lcgNextBounded(std::uint32_t bound);

    /**
     * Current LCG state, read back by the host after a launch so the
     * random stream continues across synchronisation rounds (real DPU
     * programs keep it resident in WRAM between launches).
     */
    std::uint32_t lcgState() const { return _lcg.state(); }

  private:
    /** Charge @p count ops of class @p op. */
    void charge(OpClass op, std::uint64_t count = 1);

    /** Charge one DMA transfer of @p bytes (already split/padded). */
    void chargeDma(std::size_t bytes);

    Dpu &_dpu;
    const DpuCostModel &_model;
    std::size_t _wramCapacity;
    std::size_t _wramUsed = 0;
    Cycles _cycles = 0;
    common::Lcg32 _lcg;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH
