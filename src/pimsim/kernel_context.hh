/**
 * @file
 * Execution context handed to a kernel running on one simulated PIM
 * core. Kernels are ordinary C++ callables that compute functionally
 * on host memory, but *every* priced operation goes through this
 * context so the core's cycle clock advances exactly as the UPMEM cost
 * model dictates:
 *
 *  - arithmetic helpers (fadd, imul32, ...) compute the value *and*
 *    charge the op;
 *  - mramToWram/wramToMram move data between the MRAM bank and a
 *    kernel-owned staging buffer, charging DMA latency per transfer
 *    (split at the hardware's 2,048-byte DMA limit and padded to
 *    8-byte alignment);
 *  - wramAlloc accounts the kernel's scratchpad footprint against the
 *    64-KB WRAM capacity and is fatal on overflow — the simulated
 *    equivalent of a DPU program that does not link.
 *
 * Kernels that need randomness must draw it through lcgNext(), the
 * same linear congruential generator SwiftRL implements on the DPUs
 * (rand() does not exist there), so the priced instruction stream and
 * the functional result match the paper's implementation.
 *
 * Charging is *batched*: the context is the simulator's innermost hot
 * path (hundreds of millions of priced ops per training round), so a
 * charge is a single inlined add into a per-op-class pending array —
 * the ChargeLedger — rather than a call plus two memory RMWs on the
 * Dpu. Cycles are computed against a cost table flattened at
 * construction, and the pending counts are committed to the Dpu by
 * flush(), which the command stream calls once per kernel return.
 * cycles() folds the pending counts in on the fly, so the batched
 * context is observationally identical to per-op charging at every
 * point: integer addition is associative, so totals match the
 * reference bit for bit. The unbatched behaviour is kept as
 * ChargePolicy::Reference (write-through, flush a no-op) purely so
 * tests can assert that equivalence on real kernels.
 */

#ifndef SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH
#define SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pimsim/cost_model.hh"
#include "pimsim/dpu.hh"
#include "pimsim/kernel_scratch.hh"

namespace swiftrl::pimsim {

/**
 * How a context commits charges to its Dpu: Batched accumulates in
 * the ledger and commits on flush() (the production mode); Reference
 * writes every charge through immediately (the pre-ledger behaviour,
 * kept for parity tests). Both yield identical cycles, op counts,
 * and DMA bytes.
 */
enum class ChargePolicy
{
    Batched,
    Reference,
};

template <ChargePolicy Policy> class BasicKernelContext;

/**
 * Production per-core context: ledger-batched charging, unless the
 * build sets -DSWIFTRL_REFERENCE_CHARGING (CMake option of the same
 * name) to flip the whole engine to write-through charging — a
 * diagnostic mode for bisecting charging discrepancies.
 */
#ifdef SWIFTRL_REFERENCE_CHARGING
using KernelContext = BasicKernelContext<ChargePolicy::Reference>;
#else
using KernelContext = BasicKernelContext<ChargePolicy::Batched>;
#endif

/** Write-through context for charge-parity tests. */
using ReferenceKernelContext =
    BasicKernelContext<ChargePolicy::Reference>;

/**
 * A kernel is a callable executed once per core. The command-stream
 * engine may run instances on a host thread pool, so a kernel must
 * confine its effects to per-core state (its KernelContext, and host
 * buffers indexed by ctx.dpuId()).
 */
using KernelFn = std::function<void(KernelContext &)>;

/** Per-core kernel execution context. See file comment. */
template <ChargePolicy Policy>
class BasicKernelContext
{
  public:
    /**
     * @param dpu core the kernel runs on.
     * @param model instruction cost model; must outlive the context.
     * @param wram_capacity scratchpad size in bytes.
     * @param scratch host-side staging arena to serve scratch() from
     *        (owned by the caller, e.g. a command-stream worker); the
     *        context lazily creates a private one when null.
     */
    BasicKernelContext(Dpu &dpu, const DpuCostModel &model,
                       std::size_t wram_capacity,
                       KernelScratch *scratch = nullptr)
        : _dpu(&dpu), _model(&model), _wramCapacity(wram_capacity),
          _scratch(scratch)
    {
        for (std::size_t i = 0; i < kNumOpClasses; ++i)
            _opCost[i] = model.cyclesFor(static_cast<OpClass>(i));
    }

    /** Commits any pending charges (see flush()). */
    ~BasicKernelContext() { flush(); }

    BasicKernelContext(const BasicKernelContext &) = delete;
    BasicKernelContext &
    operator=(const BasicKernelContext &) = delete;

    /** Index of the core this kernel instance runs on. */
    std::size_t dpuId() const { return _dpu->id(); }

    /** Cycles consumed by this kernel instance so far. */
    Cycles
    cycles() const
    {
        Cycles total = _cycles;
        if constexpr (Policy == ChargePolicy::Batched) {
            for (std::size_t i = 0; i < kNumOpClasses; ++i)
                total += _opCost[i] * _pending[i];
        }
        return total;
    }

    /**
     * Commit pending ledger charges (op counts, cycles, DMA bytes)
     * to the Dpu. Called by the command stream once per kernel
     * return and by the destructor; a no-op when nothing is pending
     * (always, under ChargePolicy::Reference). Code that inspects
     * Dpu counters mid-kernel must flush first.
     */
    void
    flush()
    {
        if constexpr (Policy == ChargePolicy::Batched) {
            for (std::size_t i = 0; i < kNumOpClasses; ++i) {
                if (_pending[i] == 0)
                    continue;
                _dpu->countOps(static_cast<OpClass>(i), _pending[i]);
                _cycles += _opCost[i] * _pending[i];
                _pending[i] = 0;
            }
            if (_pendingDmaBytes != 0) {
                _dpu->addDmaBytes(_pendingDmaBytes);
                _pendingDmaBytes = 0;
            }
        }
    }

    /**
     * Re-aim a (flushed) context at another core and clear all
     * per-kernel state — cycles, WRAM accounting, LCG — so command
     * streams can reuse one context object across launches. The
     * scratch arena is NOT reset; its owner does that.
     */
    void
    rebind(Dpu &dpu)
    {
        flush();
        _dpu = &dpu;
        _cycles = 0;
        _wramUsed = 0;
        _lcg = common::Lcg32();
    }

    /**
     * Host-side staging arena for kernel buffers whose lifetime is
     * one launch (Q-table images, fetch blocks). Purely functional —
     * WRAM accounting still goes through wramAlloc.
     */
    KernelScratch &
    scratch()
    {
        if (!_scratch) {
            _owned = std::make_unique<KernelScratch>();
            _scratch = _owned.get();
        }
        return *_scratch;
    }

    // --- scratchpad accounting ------------------------------------

    /**
     * Account a static WRAM allocation of @p bytes (Q-table, staging
     * buffers). Fatal when the kernel's total footprint exceeds the
     * scratchpad capacity.
     */
    void
    wramAlloc(std::size_t bytes)
    {
        _wramUsed += bytes;
        if (_wramUsed > _wramCapacity) {
            SWIFTRL_FATAL("DPU ", _dpu->id(),
                          ": kernel WRAM footprint ", _wramUsed,
                          " bytes exceeds the ", _wramCapacity,
                          "-byte scratchpad");
        }
    }

    /** Scratchpad bytes allocated by this kernel instance. */
    std::size_t wramUsed() const { return _wramUsed; }

    // --- MRAM DMA -------------------------------------------------

    /**
     * DMA @p bytes from MRAM offset @p offset into @p dst (a staging
     * buffer the kernel allocated). Splits at the hardware DMA limit
     * and charges each piece's fixed+streaming cost; sub-8-byte tails
     * are charged as a full aligned transfer, as the hardware would.
     */
    void
    mramToWram(std::size_t offset, void *dst, std::size_t bytes)
    {
        std::uint8_t *out = static_cast<std::uint8_t *>(dst);
        std::size_t done = 0;
        while (done < bytes) {
            const std::size_t piece = std::min<std::size_t>(
                bytes - done, _model->mramDmaMaxBytes);
            _dpu->mramRead(offset + done, out + done, piece);
            chargeDma(piece);
            done += piece;
        }
    }

    /** DMA @p bytes from @p src back to MRAM offset @p offset. */
    void
    wramToMram(std::size_t offset, const void *src, std::size_t bytes)
    {
        const std::uint8_t *in =
            static_cast<const std::uint8_t *>(src);
        std::size_t done = 0;
        while (done < bytes) {
            const std::size_t piece = std::min<std::size_t>(
                bytes - done, _model->mramDmaMaxBytes);
            _dpu->mramWrite(offset + done, in + done, piece);
            chargeDma(piece);
            done += piece;
        }
    }

    // --- priced arithmetic ----------------------------------------

    /** FP32 add (runtime-emulated on the modelled hardware). */
    float
    fadd(float a, float b)
    {
        charge(OpClass::Fp32Add);
        return a + b;
    }

    /** FP32 subtract (same emulation cost class as add). */
    float
    fsub(float a, float b)
    {
        charge(OpClass::Fp32Add);
        return a - b;
    }

    /** FP32 multiply. */
    float
    fmul(float a, float b)
    {
        charge(OpClass::Fp32Mul);
        return a * b;
    }

    /** FP32 divide. */
    float
    fdiv(float a, float b)
    {
        charge(OpClass::Fp32Div);
        return a / b;
    }

    /** FP32 greater-than compare. */
    bool
    fgt(float a, float b)
    {
        charge(OpClass::Fp32Cmp);
        return a > b;
    }

    /** Native 32-bit integer add. */
    std::int32_t
    iadd(std::int32_t a, std::int32_t b)
    {
        charge(OpClass::IntAlu);
        return static_cast<std::int32_t>(
            static_cast<std::int64_t>(a) +
            static_cast<std::int64_t>(b));
    }

    /** Native 32-bit integer subtract. */
    std::int32_t
    isub(std::int32_t a, std::int32_t b)
    {
        charge(OpClass::IntAlu);
        return static_cast<std::int32_t>(
            static_cast<std::int64_t>(a) -
            static_cast<std::int64_t>(b));
    }

    /** Emulated 32-bit integer multiply (shift-and-add sequence). */
    std::int64_t
    imul32(std::int32_t a, std::int32_t b)
    {
        charge(OpClass::Int32Mul);
        return static_cast<std::int64_t>(a) *
               static_cast<std::int64_t>(b);
    }

    /** Emulated 32-bit integer divide. */
    std::int32_t
    idiv32(std::int32_t a, std::int32_t b)
    {
        SWIFTRL_ASSERT(b != 0, "integer division by zero in kernel");
        charge(OpClass::Int32Div);
        return a / b;
    }

    /**
     * Rescale a widened fixed-point product: truncating division of a
     * 64-bit value by the compile-time scale constant, strength-
     * reduced to a reciprocal multiply plus shifts (charged as one
     * emulated multiply and two ALU ops).
     */
    std::int32_t
    rescale(std::int64_t value, std::int32_t scale)
    {
        SWIFTRL_ASSERT(scale != 0, "rescale by zero");
        charge(OpClass::Int32Mul);
        charge(OpClass::IntAlu, 2);
        return static_cast<std::int32_t>(value / scale);
    }

    /** Native 8-bit multiply. */
    std::int32_t
    imul8(std::int8_t a, std::int8_t b)
    {
        charge(OpClass::Int8Mul);
        return static_cast<std::int32_t>(a) *
               static_cast<std::int32_t>(b);
    }

    /**
     * Narrow multiply for the INT8 kernel path: a 16-bit-or-less
     * value times an 8-bit-or-less constant, composed from two
     * native 8-bit multiplies plus shift/add glue. Fatal when the
     * operands do not fit the narrow composition — the "limited
     * value range" caveat of Sec. 3.2.1 enforced at runtime.
     */
    std::int64_t
    imulSmall(std::int32_t a, std::int32_t b)
    {
        SWIFTRL_ASSERT(a >= -32768 && a <= 32767,
                       "imulSmall wide operand ", a,
                       " exceeds 16 bits: the environment's value "
                       "range does not fit the INT8 optimisation");
        SWIFTRL_ASSERT(b >= -128 && b <= 127,
                       "imulSmall narrow operand ", b,
                       " exceeds 8 bits");
        // Two native 8x8 multiplies (low/high byte of a) plus
        // shift+add.
        charge(OpClass::Int8Mul, 2);
        charge(OpClass::IntAlu, 2);
        return static_cast<std::int64_t>(a) *
               static_cast<std::int64_t>(b);
    }

    /**
     * Power-of-two rescale: a single arithmetic right shift (floor
     * division), one native instruction.
     */
    std::int32_t
    rescaleShift(std::int64_t value, int shift)
    {
        SWIFTRL_ASSERT(shift >= 0 && shift < 31, "bad shift ", shift);
        charge(OpClass::IntAlu);
        return static_cast<std::int32_t>(value >> shift);
    }

    /** Native integer greater-than compare. */
    bool
    igt(std::int32_t a, std::int32_t b)
    {
        charge(OpClass::IntAlu);
        return a > b;
    }

    /** WRAM load of one 32-bit word held in @p slot. */
    std::int32_t
    wramLoadI32(const std::int32_t &slot)
    {
        charge(OpClass::WramAccess);
        return slot;
    }

    /** WRAM store of one 32-bit word into @p slot. */
    void
    wramStoreI32(std::int32_t &slot, std::int32_t value)
    {
        charge(OpClass::WramAccess);
        slot = value;
    }

    /** WRAM load of one FP32 word. */
    float
    wramLoadF32(const float &slot)
    {
        charge(OpClass::WramAccess);
        return slot;
    }

    /** WRAM store of one FP32 word. */
    void
    wramStoreF32(float &slot, float value)
    {
        charge(OpClass::WramAccess);
        slot = value;
    }

    /** Loop/branch bookkeeping instruction. */
    void branch(std::uint64_t count = 1)
    {
        charge(OpClass::Branch, count);
    }

    /** Generic charge for address arithmetic etc. */
    void aluOps(std::uint64_t count) { charge(OpClass::IntAlu, count); }

    // --- PIM-side RNG ---------------------------------------------

    /** Seed the core-local LCG (one ALU op). */
    void
    lcgSeed(std::uint32_t seed)
    {
        charge(OpClass::IntAlu);
        _lcg.seed(seed);
    }

    /**
     * Draw from the core-local LCG: one emulated 32-bit multiply plus
     * one add, exactly the custom rand() routine of SwiftRL
     * Sec. 3.2.1.
     */
    std::uint32_t
    lcgNext()
    {
        // state = state * A + C: one emulated 32-bit multiply, one
        // add.
        charge(OpClass::Int32Mul);
        charge(OpClass::IntAlu);
        return _lcg.next();
    }

    /** Bounded LCG draw in [0, bound): lcgNext plus reduction ops. */
    std::uint32_t
    lcgNextBounded(std::uint32_t bound)
    {
        SWIFTRL_ASSERT(bound > 0,
                       "lcgNextBounded requires a positive bound");
        const std::uint64_t wide =
            static_cast<std::uint64_t>(lcgNext()) * bound;
        // High-bits reduction: one more emulated multiply plus a
        // shift.
        charge(OpClass::Int32Mul);
        charge(OpClass::IntAlu);
        return static_cast<std::uint32_t>(wide >> 32);
    }

    /**
     * Current LCG state, read back by the host after a launch so the
     * random stream continues across synchronisation rounds (real DPU
     * programs keep it resident in WRAM between launches).
     */
    std::uint32_t lcgState() const { return _lcg.state(); }

    // --- batch-interpreter support --------------------------------

    /**
     * Bulk charge used by the lockstep batch interpreter: commits
     * @p count ops of class @p op in one call. Identical to @p count
     * individual priced-helper calls — integer addition is
     * associative — so batch execution stays bit-identical to the
     * scalar interpreter (see docs/PERFORMANCE.md).
     */
    void
    chargeBulk(OpClass op, std::uint64_t count)
    {
        charge(op, count);
    }

    /**
     * Charge-only DMA of one logical transfer of @p bytes: advances
     * the clock and the DMA byte counter exactly as mramToWram /
     * wramToMram would (same 2,048-byte piece split, same per-piece
     * tail padding) without moving any data. The batch interpreter
     * reads transitions through a raw MRAM view (Dpu::mramView) and
     * accounts the modelled transfer here.
     */
    void
    chargeDmaSpan(std::size_t bytes)
    {
        std::size_t done = 0;
        while (done < bytes) {
            const std::size_t piece = std::min<std::size_t>(
                bytes - done, _model->mramDmaMaxBytes);
            chargeDma(piece);
            done += piece;
        }
    }

    /**
     * Charge @p times identical logical transfers of @p bytes each.
     * Equivalent to calling chargeDmaSpan(@p bytes) @p times — every
     * transfer pads and splits independently, so the per-transfer
     * cycle and byte totals are exact integers that scale by
     * multiplication. Lets the batch interpreter retire a whole run
     * of per-record 16-byte fetches (RANDOM sampling) in one call.
     */
    void
    chargeDmaSpanBulk(std::size_t bytes, std::uint64_t times)
    {
        if (times == 0 || bytes == 0)
            return;
        Cycles span_cycles = 0;
        std::uint64_t span_bytes = 0;
        std::size_t done = 0;
        const std::size_t align = _model->mramDmaAlignBytes;
        while (done < bytes) {
            const std::size_t piece = std::min<std::size_t>(
                bytes - done, _model->mramDmaMaxBytes);
            const std::size_t padded =
                (piece + align - 1) / align * align;
            span_cycles += _model->dmaCycles(
                static_cast<std::uint32_t>(padded));
            span_bytes += padded;
            done += piece;
        }
        _cycles += span_cycles * times;
        if constexpr (Policy == ChargePolicy::Batched)
            _pendingDmaBytes += span_bytes * times;
        else
            _dpu->addDmaBytes(span_bytes * times);
    }

  private:
    /** Charge @p count ops of class @p op. */
    void
    charge(OpClass op, std::uint64_t count = 1)
    {
        if constexpr (Policy == ChargePolicy::Batched) {
            _pending[static_cast<std::size_t>(op)] += count;
        } else {
            _cycles +=
                _opCost[static_cast<std::size_t>(op)] * count;
            _dpu->countOps(op, count);
        }
    }

    /** Charge one DMA transfer of @p bytes (already split/padded). */
    void
    chargeDma(std::size_t bytes)
    {
        // Pad the tail up to the DMA alignment, as the hardware
        // engine always moves whole aligned words.
        const std::size_t align = _model->mramDmaAlignBytes;
        const std::size_t padded =
            (bytes + align - 1) / align * align;
        // DMA is rare (one charge per up-to-2KB block), so its
        // piecewise cycle cost is folded into _cycles immediately;
        // only the Dpu-side byte counter is batched.
        _cycles +=
            _model->dmaCycles(static_cast<std::uint32_t>(padded));
        if constexpr (Policy == ChargePolicy::Batched)
            _pendingDmaBytes += padded;
        else
            _dpu->addDmaBytes(padded);
    }

    Dpu *_dpu;
    const DpuCostModel *_model;

    /** Flattened cost table: cycles per op of each class. */
    std::array<Cycles, kNumOpClasses> _opCost;

    /** ChargeLedger: op counts awaiting flush() (Batched only). */
    std::array<std::uint64_t, kNumOpClasses> _pending{};

    /** DMA bytes awaiting flush() (Batched only). */
    std::uint64_t _pendingDmaBytes = 0;

    /** Committed cycles (plus, under Reference, all cycles). */
    Cycles _cycles = 0;

    std::size_t _wramCapacity;
    std::size_t _wramUsed = 0;
    common::Lcg32 _lcg;

    KernelScratch *_scratch;
    std::unique_ptr<KernelScratch> _owned;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_KERNEL_CONTEXT_HH
