/**
 * @file
 * The command-stream execution engine of the host runtime.
 *
 * A CommandStream turns the host<->PIM operations (scatter, broadcast,
 * kernel launch, gather, host-side reduce) into *commands*: each
 * enqueue executes the operation functionally, advances the stream's
 * modelled clock by the operation's modelled duration, and records a
 * `{start, end}` Event on the stream's Timeline. `sync()` returns the
 * modelled time elapsed since the previous sync point — the
 * command-sequence equivalent of the old blocking API's summed return
 * values.
 *
 * Inside the engine, the functional work of a kernel launch runs on
 * the owning PimSystem's host thread pool — one work item per DPU
 * instance, which is safe because a kernel instance touches only its
 * own core's MRAM bank, WRAM accounting, and cycle clock.
 * Determinism guarantee: Q-tables, cycle counts, and modelled seconds
 * are bit-identical for any pool size, including 1, because work
 * items are index-pure and every reduction (slowest-core max, cycle
 * commit) happens serially in core order after the pool joins.
 *
 * Multiple streams may target one PimSystem; each has its own clock
 * and timeline, while functional state (MRAM) is shared and mutated
 * in enqueue order. The blocking PimSystem API is a thin wrapper over
 * a per-system default stream.
 *
 * Two extras serve overlapped (streaming) execution plans: waitUntil
 * advances the clock to a host-side dependency (the queue idles), and
 * recordHostSpan records host work at an explicit interval that may
 * overlap the command queue — how the streaming trainer draws actor
 * collection slices under concurrent PIM training.
 *
 * Fault injection (PimConfig::faultPlan, inert by default): kernel
 * launches and functional gathers are *fault sites*, numbered per
 * stream in enqueue order. A faulted command has **no functional
 * effect** — launches are abandoned before any core commits work,
 * corrupted gathers discard the received payloads — and returns a
 * typed CommandError inside its CommandStatus instead of dying; the
 * failed attempt's modelled cost lands on the Recovery track. Cores
 * hit by a permanent dropout are tracked per stream and skipped by
 * every later command (transfers re-time over the survivors);
 * recovery — bounded retry, chunk redistribution — is the caller's
 * job (see swiftrl::RetryPolicy and the trainers).
 */

#ifndef SWIFTRL_PIMSIM_COMMAND_STREAM_HH
#define SWIFTRL_PIMSIM_COMMAND_STREAM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "pimsim/batch_context.hh"
#include "pimsim/fault_plan.hh"
#include "pimsim/kernel_context.hh"
#include "pimsim/kernel_scratch.hh"
#include "pimsim/timeline.hh"

namespace swiftrl::pimsim {

class PimSystem;
class CommandStream;

/**
 * Per-launch observation handed to a StreamObserver: the modelled
 * interval of the completed launch command plus the per-core
 * effective cycles the serial reduce just computed. Everything in
 * here is a *modelled* quantity — bit-identical for every host-pool
 * size — so observers can derive metrics without touching the
 * determinism contract. The spans alias stream-owned scratch and are
 * valid only for the duration of the callback.
 */
struct LaunchStats
{
    /** Command label ("kernel:round"). */
    std::string_view label;

    /** Launch start on the stream clock, modelled seconds. */
    double start = 0.0;

    /** Launch end on the stream clock, modelled seconds. */
    double end = 0.0;

    /**
     * Per-core cycles consumed by this launch (0 for dead cores —
     * check CommandStream::isDead to distinguish a dead core from a
     * live one whose kernel instance happened to charge nothing).
     */
    std::span<const Cycles> effectiveCycles;

    /** Cores that executed the launch. */
    std::size_t liveCount = 0;
};

/**
 * Read-only hook called by a CommandStream after each successful
 * kernel launch (faulted launches commit nothing and are not
 * observed). The telemetry layer's EngineCollector is the intended
 * implementation; the engine itself stays telemetry-agnostic.
 *
 * Observers run on the enqueue thread after the host pool joins, so
 * they may read the system's device counters race-free — but they
 * must not enqueue commands or mutate device state: observation can
 * never move a modelled number.
 */
class StreamObserver
{
  public:
    virtual ~StreamObserver() = default;

    /** One successful kernel launch retired on @p stream. */
    virtual void onLaunch(CommandStream &stream,
                          const LaunchStats &stats) = 0;
};

/** Ordered command queue with a modelled clock. See file comment. */
class CommandStream
{
  public:
    /** @param system machine the stream drives; must outlive it. */
    explicit CommandStream(PimSystem &system);

    // --- commands ----------------------------------------------------
    // Each call executes functionally, advances the stream clock by
    // the command's modelled duration, records one timeline event,
    // and returns the duration in modelled seconds.

    /**
     * Scatter one distinct payload per core to MRAM at @p offset.
     * Timing serialises on the largest payload (rank transfers do).
     * Dropped-out cores are skipped (pass them empty spans).
     */
    double pushChunks(
        std::size_t offset,
        const std::vector<std::span<const std::uint8_t>> &per_dpu,
        TimeBucket bucket = TimeBucket::CpuToPim,
        std::string_view label = "scatter");

    /** Replicate one payload to every core's MRAM at @p offset. */
    double pushBroadcast(std::size_t offset,
                         std::span<const std::uint8_t> payload,
                         TimeBucket bucket = TimeBucket::CpuToPim,
                         std::string_view label = "broadcast");

    /**
     * Gather @p bytes from every core's MRAM at @p offset into
     * @p out (resized to one payload per core; dropped cores'
     * entries stay zero-filled — filter with isDead()).
     *
     * A fault site. While the fault plan is active every received
     * chunk is checksum-verified (charged to the Recovery track);
     * on a mismatch the whole gather is discarded (@p out cleared)
     * and a CorruptGather error returned — the banks are intact, so
     * a retry re-reads them cleanly.
     */
    CommandStatus gather(std::size_t offset, std::size_t bytes,
                         std::vector<std::vector<std::uint8_t>> &out,
                         TimeBucket bucket = TimeBucket::PimToCpu,
                         std::string_view label = "gather");

    /**
     * Timing-only gather: charges the modelled transfer and records
     * the event, but skips the functional copy. For transfers whose
     * payload the host provably already holds (e.g. the final
     * retrieval after a synchronisation round, when every core's
     * table *is* the aggregate the host just broadcast).
     *
     * Not a fault site (there is no payload to corrupt), but while
     * the fault plan is active the modelled checksum verification is
     * still charged — the real host cannot know in advance that a
     * transfer is redundant.
     */
    double gatherTimed(std::size_t offset, std::size_t bytes,
                       TimeBucket bucket = TimeBucket::PimToCpu,
                       std::string_view label = "gather(timed)");

    /**
     * Run @p kernel once per core (functionally on the host pool;
     * temporally in parallel on the modelled machine, so the command
     * lasts as long as the slowest core plus launch overhead).
     *
     * A fault site. A transient fault or permanent dropout abandons
     * the launch before *any* core commits work (no MRAM writes, no
     * cycle advance), charges the detection cost to the Recovery
     * track, and returns the error; dropped-out cores are marked dead
     * on this stream and skipped from then on.
     *
     * @param tasklets resident hardware threads per core; see
     *        PimSystem::launch.
     */
    CommandStatus launch(const KernelFn &kernel, unsigned tasklets = 1,
                         TimeBucket bucket = TimeBucket::Kernel,
                         std::string_view label = "kernel");

    /**
     * Batch-interpreted launch: form the live cores into cohort
     * chunks (CPU-count-aware: at most ~4 chunks per host thread,
     * clamped to the cohort size) and run @p kernel once per chunk on
     * the host pool, handing it a BatchKernelContext over that
     * chunk's lanes. Everything observable — fault-site numbering,
     * dead-core masking, per-core cycle commits, the slowest-core
     * reduce, the timeline event, LaunchStats — matches launch() of
     * an equivalent scalar kernel bit for bit; only the host-side
     * execution strategy differs. See docs/PERFORMANCE.md.
     *
     * A fault site, with exactly launch()'s semantics: one site per
     * launch, dropouts outrank transient faults, a faulted launch is
     * abandoned before any lane commits work.
     */
    CommandStatus launchBatch(const BatchKernelFn &kernel,
                              unsigned tasklets = 1,
                              TimeBucket bucket = TimeBucket::Kernel,
                              std::string_view label = "kernel");

    /**
     * Record host-side reduction work of @p seconds (the averaging
     * between a gather and a broadcast). Purely temporal — the caller
     * performs the actual reduction on host data it already gathered.
     */
    double hostReduce(double seconds,
                      std::string_view label = "reduce");

    /**
     * Record on-core compute of @p seconds that is not a kernel
     * launch of its own (e.g. the fixed-point<->float Q-table
     * conversion flanking a transfer). Drawn on the kernel track.
     */
    double onCoreCompute(double seconds, TimeBucket bucket,
                         std::string_view label = "convert");

    /**
     * Record work that happened *off* the PIM command queue — e.g. an
     * actor thread's collection slice in the streaming trainer — at an
     * explicit `[start, start+seconds]` interval. The stream cursor
     * does not move: host-track events may overlap PIM commands, which
     * is how the timeline shows collection hiding under training.
     * Use Phase::HostCollect / TimeBucket::HostCollect for actor work;
     * the event still lands on this stream's timeline and trace.
     * @return @p seconds.
     */
    double recordHostSpan(Phase phase, TimeBucket bucket, double start,
                          double seconds, std::string_view label);

    /**
     * Block the command queue on a host-side dependency: advance the
     * stream clock to @p time if it is in the future (the queue sits
     * idle until the dependency — e.g. the current generation's
     * collection — resolves). Records no event.
     * @return the idle gap in modelled seconds (0 when already past).
     */
    double waitUntil(double time);

    // --- checkpoint restore ------------------------------------------
    // Functional-only MRAM writes plus engine-state adoption, used to
    // rebuild a stream mid-run from a TrainerSession checkpoint. None
    // of these advance the clock or record events: the modelled cost
    // of the original transfers was paid (and checkpointed) by the
    // run being restored, so charging it again would double-count.

    /**
     * Write one payload per core to MRAM at @p offset, functionally
     * only (no event, no time, dead cores skipped). Restore
     * counterpart of pushChunks.
     */
    void pokeChunks(
        std::size_t offset,
        const std::vector<std::span<const std::uint8_t>> &per_dpu);

    /**
     * Replicate @p payload to every live core's MRAM at @p offset,
     * functionally only. Restore counterpart of pushBroadcast.
     */
    void pokeBroadcast(std::size_t offset,
                       std::span<const std::uint8_t> payload);

    /**
     * Adopt a checkpointed engine position: stream clock, fault-site
     * counter, and the dead-core set. After this call the stream
     * issues commands exactly as the checkpointed stream would have —
     * fault draws are pure in (seed, kind, site, core), so restoring
     * the site cursor replays the same fault schedule.
     */
    void restoreState(double cursor, std::size_t fault_sites,
                      const std::vector<std::size_t> &dead_dpus);

    /**
     * Restore checkpointed cumulative per-core cycle clocks (one
     * entry per core). Functional bookkeeping only: launch timing
     * depends on each launch's own cycles, never the cumulative
     * clocks — these exist so stats reports of a resumed run cover
     * the whole run.
     */
    void restoreDpuCycles(const std::vector<Cycles> &cycles);

    // --- fault recovery ----------------------------------------------

    /**
     * Charge @p seconds of recovery overhead (a RetryPolicy backoff
     * delay) to the Recovery track. The command queue sits on it like
     * on any command, so recovery delays push every later command out
     * — exactly what a trace should show.
     */
    double recoveryDelay(double seconds,
                         std::string_view label = "retry-backoff");

    /** Has @p dpu been lost to a permanent dropout on this stream? */
    bool isDead(std::size_t dpu) const;

    /** Cores still alive on this stream. */
    std::size_t liveDpuCount() const { return _liveCount; }

    /** Ids of the cores lost so far, ascending. */
    std::vector<std::size_t> deadDpus() const;

    /**
     * Fault sites consumed so far (next launch/gather occupies this
     * index). Lets tests and tools aim ScheduledFaults precisely.
     */
    std::size_t faultSitesUsed() const { return _faultSites; }

    // --- clock --------------------------------------------------------

    /**
     * Modelled seconds elapsed since the last sync() (or since
     * stream creation), and start a new sync interval.
     */
    double sync();

    /** Current stream clock, modelled seconds since creation. */
    double now() const { return _cursor; }

    /** The stream's event record. */
    const Timeline &timeline() const { return _timeline; }

    // --- telemetry ----------------------------------------------------

    /**
     * Attach (or detach, with nullptr) the launch observer. At most
     * one; must outlive the stream or be detached first. Purely
     * observational — attaching one never changes modelled numbers.
     */
    void setObserver(StreamObserver *observer)
    {
        _observer = observer;
    }

    /** The attached launch observer, or nullptr. */
    StreamObserver *observer() const { return _observer; }

    /**
     * Record one sample on the named counter track of this stream's
     * timeline, at the current stream clock. Counter samples are
     * annotations for the Chrome trace export — they are not events
     * and never contribute to phase/bucket totals.
     */
    void
    recordCounter(std::string name, double value)
    {
        _timeline.recordCounter(std::move(name), _cursor, value);
    }

    /** System this stream drives. */
    PimSystem &system() { return _system; }

    /** System this stream drives (read-only view). */
    const PimSystem &system() const { return _system; }

  private:
    /** Advance the clock and record one event; returns @p seconds. */
    double record(Phase phase, TimeBucket bucket, double seconds,
                  std::string_view label);

    /** Modelled host cost of checksum-verifying @p bytes. */
    double checksumSeconds(std::size_t bytes) const;

    /**
     * Shared fault block of launch()/launchBatch(): consume one
     * fault site while the plan is active and, if the launch is
     * fated, mark dropouts dead, charge the detection cost, and
     * return the error status. nullopt = proceed with the launch.
     */
    std::optional<CommandStatus> launchFaultCheck();

    /**
     * Shared tail of launch()/launchBatch(): commit per-core clocks
     * from _effective serially in core order, reduce the slowest
     * core, record the timeline event, and notify the observer.
     */
    CommandStatus finishLaunch(TimeBucket bucket,
                               std::string_view label);

    /**
     * Per-host-worker launch state, reused across launches: the
     * staging arena (reset per kernel instance) and a rebindable
     * KernelContext, so steady-state launches construct nothing.
     * Heap-allocated individually so workers never false-share.
     */
    struct LaunchWorker
    {
        KernelScratch scratch;
        std::unique_ptr<KernelContext> ctx;
    };

    /** The launch worker for host-pool worker @p worker (lazy). */
    LaunchWorker &launchWorker(unsigned worker);

    PimSystem &_system;
    Timeline _timeline;
    double _cursor = 0.0;
    double _syncMark = 0.0;

    /** Per-stream dropout state: _dead[i] once core i is lost. */
    std::vector<bool> _dead;
    std::size_t _liveCount = 0;

    /** Fault sites consumed (launches + functional gathers). */
    std::size_t _faultSites = 0;

    /** Per-worker launch state, indexed by host-pool worker id. */
    std::vector<std::unique_ptr<LaunchWorker>> _launchWorkers;

    /** Per-core effective cycles of the current launch (reused). */
    std::vector<Cycles> _effective;

    /** Launch observer (telemetry); nullptr when none attached. */
    StreamObserver *_observer = nullptr;

    /** Faulting-core scratch lists (reused; copied on the rare
     *  error path so their capacity survives). */
    std::vector<std::size_t> _faultScratchA;
    std::vector<std::size_t> _faultScratchB;

    /** Live-lane cohort of the current batch launch (reused). */
    std::vector<std::size_t> _cohortScratch;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_COMMAND_STREAM_HH
