/**
 * @file
 * The command-stream execution engine of the host runtime.
 *
 * A CommandStream turns the host<->PIM operations (scatter, broadcast,
 * kernel launch, gather, host-side reduce) into *commands*: each
 * enqueue executes the operation functionally, advances the stream's
 * modelled clock by the operation's modelled duration, and records a
 * `{start, end}` Event on the stream's Timeline. `sync()` returns the
 * modelled time elapsed since the previous sync point — the
 * command-sequence equivalent of the old blocking API's summed return
 * values.
 *
 * Inside the engine, the functional work of a kernel launch runs on
 * the owning PimSystem's host thread pool — one work item per DPU
 * instance, which is safe because a kernel instance touches only its
 * own core's MRAM bank, WRAM accounting, and cycle clock.
 * Determinism guarantee: Q-tables, cycle counts, and modelled seconds
 * are bit-identical for any pool size, including 1, because work
 * items are index-pure and every reduction (slowest-core max, cycle
 * commit) happens serially in core order after the pool joins.
 *
 * Multiple streams may target one PimSystem; each has its own clock
 * and timeline, while functional state (MRAM) is shared and mutated
 * in enqueue order. The blocking PimSystem API is a thin wrapper over
 * a per-system default stream.
 *
 * Two extras serve overlapped (streaming) execution plans: waitUntil
 * advances the clock to a host-side dependency (the queue idles), and
 * recordHostSpan records host work at an explicit interval that may
 * overlap the command queue — how the streaming trainer draws actor
 * collection slices under concurrent PIM training.
 */

#ifndef SWIFTRL_PIMSIM_COMMAND_STREAM_HH
#define SWIFTRL_PIMSIM_COMMAND_STREAM_HH

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "pimsim/kernel_context.hh"
#include "pimsim/timeline.hh"

namespace swiftrl::pimsim {

class PimSystem;

/** Ordered command queue with a modelled clock. See file comment. */
class CommandStream
{
  public:
    /** @param system machine the stream drives; must outlive it. */
    explicit CommandStream(PimSystem &system);

    // --- commands ----------------------------------------------------
    // Each call executes functionally, advances the stream clock by
    // the command's modelled duration, records one timeline event,
    // and returns the duration in modelled seconds.

    /**
     * Scatter one distinct payload per core to MRAM at @p offset.
     * Timing serialises on the largest payload (rank transfers do).
     */
    double pushChunks(
        std::size_t offset,
        const std::vector<std::span<const std::uint8_t>> &per_dpu,
        TimeBucket bucket = TimeBucket::CpuToPim,
        std::string_view label = "scatter");

    /** Replicate one payload to every core's MRAM at @p offset. */
    double pushBroadcast(std::size_t offset,
                         std::span<const std::uint8_t> payload,
                         TimeBucket bucket = TimeBucket::CpuToPim,
                         std::string_view label = "broadcast");

    /**
     * Gather @p bytes from every core's MRAM at @p offset into
     * @p out (resized to one payload per core).
     */
    double gather(std::size_t offset, std::size_t bytes,
                  std::vector<std::vector<std::uint8_t>> &out,
                  TimeBucket bucket = TimeBucket::PimToCpu,
                  std::string_view label = "gather");

    /**
     * Timing-only gather: charges the modelled transfer and records
     * the event, but skips the functional copy. For transfers whose
     * payload the host provably already holds (e.g. the final
     * retrieval after a synchronisation round, when every core's
     * table *is* the aggregate the host just broadcast).
     */
    double gatherTimed(std::size_t offset, std::size_t bytes,
                       TimeBucket bucket = TimeBucket::PimToCpu,
                       std::string_view label = "gather(timed)");

    /**
     * Run @p kernel once per core (functionally on the host pool;
     * temporally in parallel on the modelled machine, so the command
     * lasts as long as the slowest core plus launch overhead).
     * @param tasklets resident hardware threads per core; see
     *        PimSystem::launch.
     */
    double launch(const KernelFn &kernel, unsigned tasklets = 1,
                  TimeBucket bucket = TimeBucket::Kernel,
                  std::string_view label = "kernel");

    /**
     * Record host-side reduction work of @p seconds (the averaging
     * between a gather and a broadcast). Purely temporal — the caller
     * performs the actual reduction on host data it already gathered.
     */
    double hostReduce(double seconds,
                      std::string_view label = "reduce");

    /**
     * Record on-core compute of @p seconds that is not a kernel
     * launch of its own (e.g. the fixed-point<->float Q-table
     * conversion flanking a transfer). Drawn on the kernel track.
     */
    double onCoreCompute(double seconds, TimeBucket bucket,
                         std::string_view label = "convert");

    /**
     * Record work that happened *off* the PIM command queue — e.g. an
     * actor thread's collection slice in the streaming trainer — at an
     * explicit `[start, start+seconds]` interval. The stream cursor
     * does not move: host-track events may overlap PIM commands, which
     * is how the timeline shows collection hiding under training.
     * Use Phase::HostCollect / TimeBucket::HostCollect for actor work;
     * the event still lands on this stream's timeline and trace.
     * @return @p seconds.
     */
    double recordHostSpan(Phase phase, TimeBucket bucket, double start,
                          double seconds, std::string_view label);

    /**
     * Block the command queue on a host-side dependency: advance the
     * stream clock to @p time if it is in the future (the queue sits
     * idle until the dependency — e.g. the current generation's
     * collection — resolves). Records no event.
     * @return the idle gap in modelled seconds (0 when already past).
     */
    double waitUntil(double time);

    // --- clock --------------------------------------------------------

    /**
     * Modelled seconds elapsed since the last sync() (or since
     * stream creation), and start a new sync interval.
     */
    double sync();

    /** Current stream clock, modelled seconds since creation. */
    double now() const { return _cursor; }

    /** The stream's event record. */
    const Timeline &timeline() const { return _timeline; }

    /** System this stream drives. */
    PimSystem &system() { return _system; }

    /** System this stream drives (read-only view). */
    const PimSystem &system() const { return _system; }

  private:
    /** Advance the clock and record one event; returns @p seconds. */
    double record(Phase phase, TimeBucket bucket, double seconds,
                  std::string_view label);

    PimSystem &_system;
    Timeline _timeline;
    double _cursor = 0.0;
    double _syncMark = 0.0;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_COMMAND_STREAM_HH
