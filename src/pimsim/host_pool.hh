/**
 * @file
 * Host thread pool for the command-stream engine.
 *
 * Simulated PIM cores are independent — a kernel instance touches
 * only its own core's MRAM bank, WRAM accounting, and cycle clock —
 * so the *functional* execution of one launch is an embarrassingly
 * parallel loop over cores. The pool runs that loop across host
 * threads with a strict determinism guarantee: work items are pure
 * per-index functions, so the result is bit-identical for any pool
 * size, including 1 (where everything runs inline on the caller with
 * no synchronisation at all).
 */

#ifndef SWIFTRL_PIMSIM_HOST_POOL_HH
#define SWIFTRL_PIMSIM_HOST_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace swiftrl::pimsim {

/** Fixed-size worker pool executing index-parallel loops. */
class HostPool
{
  public:
    /**
     * @param threads parallelism degree: the calling thread plus
     *        threads-1 resident workers. 1 means fully serial (no
     *        worker threads are ever created).
     */
    explicit HostPool(unsigned threads);

    ~HostPool();

    HostPool(const HostPool &) = delete;
    HostPool &operator=(const HostPool &) = delete;

    /** Parallelism degree (including the calling thread). */
    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(0) .. fn(n-1), distributing indices across the pool and
     * the calling thread; returns when every call has completed.
     * @p fn must be safe to invoke concurrently for distinct indices
     * and must not touch state shared across indices.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    /** One in-flight parallelFor: shared claim counter + progress. */
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::size_t finished = 0; ///< items done; guarded by _mutex
    };

    /** Claim and run indices until the job is drained. */
    static std::size_t runShare(Job &job);

    void workerLoop();

    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    std::shared_ptr<Job> _job; ///< current job; guarded by _mutex
    std::uint64_t _generation = 0; ///< bumped per job; guarded by _mutex
    bool _stop = false;
    unsigned _threads;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_HOST_POOL_HH
