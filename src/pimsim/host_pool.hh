/**
 * @file
 * Host thread pool for the command-stream engine.
 *
 * Simulated PIM cores are independent — a kernel instance touches
 * only its own core's MRAM bank, WRAM accounting, and cycle clock —
 * so the *functional* execution of one launch is an embarrassingly
 * parallel loop over cores. The pool runs that loop across host
 * threads with a strict determinism guarantee: work items are pure
 * per-index functions, so the result is bit-identical for any pool
 * size, including 1 (where everything runs inline on the caller with
 * no synchronisation at all).
 *
 * Dispatch is built for launch-rate workloads: callables are passed
 * by reference through a type-erased function pointer (no
 * std::function allocation per parallelFor), and indices are claimed
 * in *chunks* of `grain` at a time, so a 2,000-core launch costs on
 * the order of `threads` atomic operations rather than 2,000.
 *
 * Each invocation also receives the id of the host worker running it
 * (0 = the calling thread, 1..threadCount()-1 = resident workers),
 * letting callers keep per-worker scratch state without locks. Which
 * worker runs which index is scheduling-dependent — determinism of
 * results must never hang on it.
 */

#ifndef SWIFTRL_PIMSIM_HOST_POOL_HH
#define SWIFTRL_PIMSIM_HOST_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace swiftrl::pimsim {

/** Fixed-size worker pool executing index-parallel loops. */
class HostPool
{
  public:
    /**
     * @param threads parallelism degree: the calling thread plus
     *        threads-1 resident workers. 1 means fully serial (no
     *        worker threads are ever created).
     */
    explicit HostPool(unsigned threads);

    ~HostPool();

    HostPool(const HostPool &) = delete;
    HostPool &operator=(const HostPool &) = delete;

    /** Parallelism degree (including the calling thread). */
    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(index, worker) for index 0..n-1, distributing chunks of
     * indices across the pool and the calling thread; returns when
     * every call has completed. @p fn must be safe to invoke
     * concurrently for distinct indices and must not touch state
     * shared across indices (per-@p worker state is fine). Accepts
     * any callable `void(std::size_t index, unsigned worker)`; the
     * callable is borrowed for the duration of the call, never
     * copied or heap-allocated.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        static_assert(
            std::is_invocable_v<Fn &, std::size_t, unsigned>,
            "parallelFor callables take (index, worker)");
        auto *ctx = std::addressof(fn);
        run(n,
            [](void *opaque, std::size_t index, unsigned worker) {
                (*static_cast<std::remove_reference_t<Fn> *>(
                    opaque))(index, worker);
            },
            ctx);
    }

  private:
    /** Type-erased work item: (context, index, worker id). */
    using RawFn = void (*)(void *, std::size_t, unsigned);

    /** One in-flight parallelFor: shared claim state + progress. */
    struct Job
    {
        RawFn fn = nullptr;
        void *ctx = nullptr;
        std::size_t n = 0;
        std::size_t grain = 1; ///< indices claimed per atomic op
        std::atomic<std::size_t> next{0};
        std::size_t finished = 0; ///< items done; guarded by _mutex
    };

    /** Dispatch @p fn over @p n indices (see parallelFor). */
    void run(std::size_t n, RawFn fn, void *ctx);

    /** Claim and run index chunks until the job is drained. */
    static std::size_t runShare(Job &job, unsigned worker);

    void workerLoop(unsigned worker);

    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    std::shared_ptr<Job> _job; ///< current job; guarded by _mutex
    std::uint64_t _generation = 0; ///< bumped per job; guarded by _mutex
    bool _stop = false;
    unsigned _threads;
};

} // namespace swiftrl::pimsim

#endif // SWIFTRL_PIMSIM_HOST_POOL_HH
