#include "baselines/platform_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace swiftrl::baselines {

using rlcore::ActionId;
using rlcore::Algorithm;
using rlcore::Sampling;

PlatformSpec
xeonSilver4110()
{
    PlatformSpec s;
    s.name = "Intel Xeon Silver 4110";
    s.peakGflops = 38.0;          // Table 1
    s.memBandwidthBytes = 28.8e9; // Table 1
    s.hwThreads = 16;             // 8 cores x 2-way SMT
    s.cacheBytes = 11.0e6;        // 11 MB LLC
    s.tdpWatts = 85.0;            // Table 1
    return s;
}

PlatformSpec
rtx3090()
{
    PlatformSpec s;
    s.name = "NVIDIA RTX 3090";
    s.peakGflops = 35580.0;        // Table 1
    s.memBandwidthBytes = 936.2e9; // Table 1
    s.hwThreads = 10496;           // SIMD lanes
    s.cacheBytes = 6.0e6;          // L2
    s.tdpWatts = 350.0;            // Table 1
    return s;
}

PlatformSpec
i7_9700k()
{
    PlatformSpec s;
    s.name = "Intel i7-9700K";
    s.peakGflops = 460.0;          // 8 cores x 4.6 GHz x AVX2 FMA
    s.memBandwidthBytes = 41.6e9;  // dual-channel DDR4-2666
    s.hwThreads = 8;
    s.cacheBytes = 12.0e6;
    s.tdpWatts = 95.0;
    return s;
}

UpdateOpMix
updateOpMix(Algorithm algo, ActionId num_actions)
{
    SWIFTRL_ASSERT(num_actions > 0, "empty action space");
    UpdateOpMix mix;
    // max/argmax over the next-state row: A-1 compares; target,
    // delta, and step: 2 multiplies + 3 adds. SARSA replaces the max
    // with an argmax of the same cost plus the epsilon draw
    // (~2 cheap ops, counted as one flop-equivalent).
    mix.flops = static_cast<double>(num_actions - 1) + 5.0 +
                (algo == Algorithm::Sarsa ? 1.0 : 0.0);
    // One packed 16-byte record streams from DRAM per update; the
    // Q-table itself is small enough to live in cache on every
    // platform considered.
    mix.bytesStreamed = 16.0;
    return mix;
}

double
estimateCpuSeconds(const PlatformSpec &spec, const CpuModelParams &p,
                   CpuVersion version, Algorithm algo,
                   Sampling sampling, ActionId num_actions,
                   std::size_t q_entries,
                   std::size_t dataset_transitions, int episodes)
{
    SWIFTRL_ASSERT(dataset_transitions > 0 && episodes > 0,
                   "empty workload");
    const UpdateOpMix mix = updateOpMix(algo, num_actions);
    const double updates = static_cast<double>(dataset_transitions) *
                           static_cast<double>(episodes);

    // Per-update serial latency on one thread.
    double latency_ns = p.baseLatencyNs + mix.flops * p.flopLatencyNs;

    if (version == CpuVersion::V1) {
        // Shared-table coherence: threads ping-pong the Q-table's
        // cache lines. Conflict probability grows as threads per
        // line; tiny tables (frozen lake: 4 lines) saturate.
        const double q_lines =
            std::max(1.0, static_cast<double>(q_entries) * 4.0 / 64.0);
        const double conflict = std::min(
            1.0, static_cast<double>(spec.hwThreads) / q_lines);
        latency_ns += conflict * p.coherencePenaltyNs;
    }

    const double dataset_bytes =
        static_cast<double>(dataset_transitions) * 16.0;
    if (sampling == Sampling::Ran && dataset_bytes > spec.cacheBytes)
        latency_ns += p.cacheMissPenaltyNs;
    if (sampling == Sampling::Str)
        latency_ns += p.stridePenaltyNs;

    const double thread_throughput = 1.0e9 / latency_ns; // updates/s
    const double chip_throughput =
        thread_throughput * static_cast<double>(spec.hwThreads) *
        p.threadEfficiency;
    const double latency_bound_sec = updates / chip_throughput;

    // DRAM bandwidth floor (prefetch efficiency by pattern).
    double bw_factor = 1.0;
    if (sampling == Sampling::Str)
        bw_factor = 0.6;
    else if (sampling == Sampling::Ran)
        bw_factor = 0.15; // whole lines fetched, no prefetch
    const double bw_bound_sec =
        updates * mix.bytesStreamed /
        (spec.memBandwidthBytes * bw_factor);

    return std::max(latency_bound_sec, bw_bound_sec);
}

double
estimateGpuSeconds(const PlatformSpec &spec, const GpuModelParams &p,
                   Algorithm algo, Sampling sampling,
                   ActionId num_actions, std::size_t q_entries,
                   std::size_t dataset_transitions, int episodes)
{
    SWIFTRL_ASSERT(dataset_transitions > 0 && episodes > 0,
                   "empty workload");
    const UpdateOpMix mix = updateOpMix(algo, num_actions);
    const double updates = static_cast<double>(dataset_transitions) *
                           static_cast<double>(episodes);

    // Atomic contention cap: concurrent updates serialise per Q
    // entry, so aggregate throughput tops out at entries/latency.
    // Random sampling spreads conflicts slightly better than
    // sequential chunk walks (neighbouring threads hit neighbouring
    // records and thus correlated states).
    const double spread = sampling == Sampling::Ran ? 1.2 : 1.0;
    const double atomic_throughput =
        static_cast<double>(q_entries) * spread * 1.0e9 /
        p.atomicLatencyNs;

    // Bandwidth and compute caps.
    const double bw_throughput = spec.memBandwidthBytes *
                                 p.bandwidthEfficiency /
                                 mix.bytesStreamed;
    const double compute_throughput = spec.peakGflops * 1.0e9 *
                                      p.computeEfficiency / mix.flops;

    const double throughput = std::min(
        {atomic_throughput, bw_throughput, compute_throughput});
    double seconds = updates / throughput;

    // Per-episode kernel launches plus the one-time PCIe copy.
    seconds += static_cast<double>(episodes) * p.launchOverheadSec;
    seconds += static_cast<double>(dataset_transitions) * 16.0 /
               p.pcieBytesPerSec;
    return seconds;
}

} // namespace swiftrl::baselines
