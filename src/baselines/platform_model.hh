/**
 * @file
 * Analytic timing models for the paper's comparison platforms
 * (Table 1): the Intel Xeon Silver 4110 CPU and the NVIDIA RTX 3090
 * GPU. Used for the Fig. 7 time axis, where the paper measured real
 * hardware we do not have. See DESIGN.md Sec. 1 for the substitution
 * rationale: the comparisons in Fig. 7 are architecture-shape
 * arguments (prefetcher-friendly patterns favour the CPU, atomic
 * contention on tiny Q-tables throttles the GPU, emulated FP32
 * throttles the PIM), and each model encodes exactly those mechanisms
 * with Table 1's published machine parameters.
 *
 * Every parameter is plain data; the ablation bench sweeps the
 * sensitive ones.
 */

#ifndef SWIFTRL_BASELINES_PLATFORM_MODEL_HH
#define SWIFTRL_BASELINES_PLATFORM_MODEL_HH

#include <cstdint>
#include <string>

#include "rlcore/trainers.hh"
#include "rlcore/types.hh"

namespace swiftrl::baselines {

/** Published machine parameters (Table 1 of the paper). */
struct PlatformSpec
{
    std::string name;

    /** Peak FP32 throughput, GFLOP/s. */
    double peakGflops = 0.0;

    /** DRAM bandwidth, bytes/second. */
    double memBandwidthBytes = 0.0;

    /** Hardware threads (CPU) or SIMD lanes (GPU). */
    int hwThreads = 0;

    /** Last-level cache capacity in bytes (CPU models only). */
    double cacheBytes = 0.0;

    /** Component TDP in watts (Table 1's last row). */
    double tdpWatts = 0.0;
};

/**
 * First-order energy estimate: execution time at component TDP.
 * The paper reports TDPs (Table 1) but no energy numbers; this gives
 * the energy-proportional comparison its Key Takeaways imply.
 */
inline double
energyJoules(double seconds, double tdp_watts)
{
    return seconds * tdp_watts;
}

/** The paper's Xeon Silver 4110 (Table 1). */
PlatformSpec xeonSilver4110();

/** The paper's RTX 3090 (Table 1). */
PlatformSpec rtx3090();

/** The roofline host of Fig. 2, an Intel i7-9700K. */
PlatformSpec i7_9700k();

/** Work per Q-update, derived from the algorithm and action count. */
struct UpdateOpMix
{
    /** Floating-point operations per update (FP32 path). */
    double flops = 0.0;

    /** Dataset bytes streamed from DRAM per update. */
    double bytesStreamed = 0.0;
};

/** Op mix of one tabular update. */
UpdateOpMix updateOpMix(rlcore::Algorithm algo,
                        rlcore::ActionId num_actions);

/** Tunable constants of the CPU latency model. */
struct CpuModelParams
{
    /** Loop/dependency-chain overhead per update, nanoseconds. */
    double baseLatencyNs = 18.0;

    /** Serial latency contribution per FP op in the chain. */
    double flopLatencyNs = 2.0;

    /**
     * Cache-line ping-pong penalty for CPU-V1's shared Q-table,
     * applied in proportion to the thread-per-line conflict ratio.
     */
    double coherencePenaltyNs = 200.0;

    /** Per-update DRAM-miss penalty for RAN sampling when the
     *  dataset exceeds the LLC (no prefetcher help). */
    double cacheMissPenaltyNs = 70.0;

    /** Extra per-update cost of stride access (partial prefetch). */
    double stridePenaltyNs = 6.0;

    /** Parallel efficiency across hardware threads. */
    double threadEfficiency = 0.70;
};

/**
 * Modelled host-side cost of producing one experience tuple during
 * *online* actor collection (the streaming extension): one
 * environment step (a table lookup plus an RNG draw), one
 * behaviour-policy query, and the SoA log append. Anchored to the
 * CPU update model above — the dependency chain is a small multiple
 * of CpuModelParams::baseLatencyNs (18 ns per tabular update), and a
 * cache-resident 120 ns/step sits between that and the
 * cacheMissPenaltyNs regime. The constant is a default, overridable
 * through StreamingConfig::collectSecPerTransition, and — like every
 * cost constant — can never change a collected transition's value
 * (docs/COSTMODEL.md).
 */
inline constexpr double kActorStepSec = 120.0e-9;

/** The paper's two CPU baseline variants. */
enum class CpuVersion
{
    V1, ///< shared Q-table
    V2, ///< thread-local Q-tables, final averaging
};

/**
 * Estimated training-phase seconds on a CPU platform.
 *
 * @param dataset_transitions N (chunk sweeps cover N updates/episode).
 * @param q_entries Q-table size in entries (coherence model input).
 */
double estimateCpuSeconds(const PlatformSpec &spec,
                          const CpuModelParams &params,
                          CpuVersion version, rlcore::Algorithm algo,
                          rlcore::Sampling sampling,
                          rlcore::ActionId num_actions,
                          std::size_t q_entries,
                          std::size_t dataset_transitions, int episodes);

/** Tunable constants of the GPU contention model. */
struct GpuModelParams
{
    /**
     * Serialisation latency of an atomic read-modify-write to one
     * Q-table entry in global memory: with a table of E entries the
     * aggregate update throughput is at most E / atomicLatency.
     */
    double atomicLatencyNs = 400.0;

    /** Kernel launch overhead per episode batch, seconds. */
    double launchOverheadSec = 12.0e-6;

    /** Achievable fraction of peak DRAM bandwidth. */
    double bandwidthEfficiency = 0.5;

    /** Achievable fraction of peak FLOP/s on this scalar workload. */
    double computeEfficiency = 0.05;

    /** Host->device PCIe bandwidth for the initial dataset copy. */
    double pcieBytesPerSec = 24.0e9;
};

/** Estimated training-phase seconds on a GPU platform. */
double estimateGpuSeconds(const PlatformSpec &spec,
                          const GpuModelParams &params,
                          rlcore::Algorithm algo,
                          rlcore::Sampling sampling,
                          rlcore::ActionId num_actions,
                          std::size_t q_entries,
                          std::size_t dataset_transitions, int episodes);

} // namespace swiftrl::baselines

#endif // SWIFTRL_BASELINES_PLATFORM_MODEL_HH
