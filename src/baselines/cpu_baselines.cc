#include "baselines/cpu_baselines.hh"

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "rlcore/sampling.hh"
#include "rlcore/seeds.hh"
#include "rlcore/update_rules.hh"
#include "swiftrl/partition.hh"

namespace swiftrl::baselines {

using rlcore::ActionId;
using rlcore::Algorithm;
using rlcore::Dataset;
using rlcore::Hyper;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::Sampling;
using rlcore::StateId;

namespace {

/**
 * Shared-table worker for CPU-V1. The Q-table is a vector of relaxed
 * atomics: racing read-modify-write sequences may lose updates, which
 * is exactly the asynchronous-Q-learning semantics the paper's CPU-V1
 * has.
 */
void
sharedTableWorker(Algorithm algo, const Dataset &data,
                  std::size_t first, std::size_t count,
                  ActionId num_actions,
                  std::vector<std::atomic<float>> &q,
                  const Hyper &hyper, Sampling sampling,
                  std::uint64_t stream)
{
    if (count == 0)
        return;
    common::Lcg32 lcg(rlcore::deriveLcgSeed(hyper.seed, stream));
    rlcore::SampleWalker walker(
        count, sampling, static_cast<std::size_t>(hyper.stride));
    const auto epsilon_milli = static_cast<std::uint32_t>(
        static_cast<double>(hyper.epsilon) * 1000.0 + 0.5);

    auto load = [&](StateId s, ActionId a) {
        return q[static_cast<std::size_t>(s) *
                     static_cast<std::size_t>(num_actions) +
                 static_cast<std::size_t>(a)]
            .load(std::memory_order_relaxed);
    };
    auto store = [&](StateId s, ActionId a, float v) {
        q[static_cast<std::size_t>(s) *
              static_cast<std::size_t>(num_actions) +
          static_cast<std::size_t>(a)]
            .store(v, std::memory_order_relaxed);
    };

    for (int ep = 0; ep < hyper.episodes; ++ep) {
        walker.startEpisode();
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t i =
                first + walker.next([&](std::size_t bound) {
                    return static_cast<std::size_t>(lcg.nextBounded(
                        static_cast<std::uint32_t>(bound)));
                });
            const StateId s = data.states()[i];
            const ActionId a = data.actions()[i];
            const float r = data.rewards()[i];
            const StateId s2 = data.nextStates()[i];
            const bool terminal = data.terminals()[i] != 0;

            float bootstrap = 0.0f;
            if (!terminal) {
                if (algo == Algorithm::QLearning) {
                    bootstrap = load(s2, 0);
                    for (ActionId a2 = 1; a2 < num_actions; ++a2)
                        bootstrap = std::max(bootstrap, load(s2, a2));
                } else {
                    ActionId a2;
                    if (lcg.nextBounded(1000) < epsilon_milli) {
                        a2 = static_cast<ActionId>(lcg.nextBounded(
                            static_cast<std::uint32_t>(num_actions)));
                    } else {
                        a2 = 0;
                        float best = load(s2, 0);
                        for (ActionId c = 1; c < num_actions; ++c) {
                            const float v = load(s2, c);
                            if (v > best) {
                                best = v;
                                a2 = c;
                            }
                        }
                    }
                    bootstrap = load(s2, a2);
                }
            }
            const float target = r + hyper.gamma * bootstrap;
            const float old_q = load(s, a);
            store(s, a, old_q + hyper.alpha * (target - old_q));
        }
    }
}

} // namespace

CpuTrainResult
trainCpuV1(Algorithm algo, const Dataset &data, StateId num_states,
           ActionId num_actions, const Hyper &hyper, Sampling sampling,
           NumericFormat format, int threads)
{
    SWIFTRL_ASSERT(threads > 0, "need at least one thread");
    SWIFTRL_ASSERT(!data.empty(), "training on an empty dataset");
    // CPU-V1 trains in FP32 regardless of the PIM-side format; the
    // format parameter is accepted for interface symmetry.
    (void)format;

    common::Stopwatch watch;
    std::vector<std::atomic<float>> q(
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions));
    for (auto &v : q)
        v.store(0.0f, std::memory_order_relaxed);

    const auto chunks = partitionDataset(
        data.size(), static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        const auto &chunk = chunks[static_cast<std::size_t>(t)];
        pool.emplace_back(sharedTableWorker, algo, std::cref(data),
                          chunk.first, chunk.count, num_actions,
                          std::ref(q), std::cref(hyper), sampling,
                          static_cast<std::uint64_t>(t));
    }
    for (auto &th : pool)
        th.join();

    CpuTrainResult result;
    result.finalQ = QTable(num_states, num_actions);
    for (std::size_t i = 0; i < q.size(); ++i) {
        result.finalQ.values()[i] =
            q[i].load(std::memory_order_relaxed);
    }
    result.wallSeconds = watch.seconds();
    result.threads = threads;
    return result;
}

CpuTrainResult
trainCpuV2(Algorithm algo, const Dataset &data, StateId num_states,
           ActionId num_actions, const Hyper &hyper, Sampling sampling,
           NumericFormat format, int threads)
{
    SWIFTRL_ASSERT(threads > 0, "need at least one thread");
    SWIFTRL_ASSERT(!data.empty(), "training on an empty dataset");

    common::Stopwatch watch;
    const auto chunks = partitionDataset(
        data.size(), static_cast<std::size_t>(threads));

    // Each worker trains a local table on its portion: exactly the
    // reference trainer over a sub-dataset.
    std::vector<QTable> locals(
        static_cast<std::size_t>(threads), QTable(num_states, num_actions));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t]() {
            const auto &chunk = chunks[static_cast<std::size_t>(t)];
            Dataset portion;
            for (std::size_t i = 0; i < chunk.count; ++i)
                portion.append(data.get(chunk.first + i));
            locals[static_cast<std::size_t>(t)] =
                rlcore::trainCpuReference(
                    algo, portion, num_states, num_actions, hyper,
                    sampling, format,
                    static_cast<std::uint64_t>(t));
        });
    }
    for (auto &th : pool)
        th.join();

    CpuTrainResult result;
    result.finalQ = QTable::average(locals);
    result.wallSeconds = watch.seconds();
    result.threads = threads;
    return result;
}

} // namespace swiftrl::baselines
