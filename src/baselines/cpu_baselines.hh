/**
 * @file
 * The paper's CPU baselines (Sec. 4.4), implemented functionally:
 *
 *  - CPU-V1: multiple threads update one *shared* Q-table; each thread
 *    sweeps its own portion of the dataset. Concurrent updates race
 *    benignly (asynchronous/Hogwild-style tabular Q-learning); we use
 *    relaxed atomics so the race is well-defined.
 *  - CPU-V2: distributed version — each thread trains a *local*
 *    Q-table on its portion; tables are averaged at the end (the same
 *    aggregation the PIM implementation performs).
 *
 * Wall-clock timing of these functions measures this host, not the
 * paper's Xeon 4110; the Fig. 7 reproduction therefore uses
 * platform_model.hh for the time axis and these implementations for
 * functional results. Both are reported.
 */

#ifndef SWIFTRL_BASELINES_CPU_BASELINES_HH
#define SWIFTRL_BASELINES_CPU_BASELINES_HH

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/trainers.hh"
#include "rlcore/types.hh"

namespace swiftrl::baselines {

/** Result of a CPU baseline run. */
struct CpuTrainResult
{
    rlcore::QTable finalQ;

    /** Wall-clock seconds on this host (not the paper's Xeon). */
    double wallSeconds = 0.0;

    /** Threads used. */
    int threads = 0;

    CpuTrainResult() : finalQ(1, 1) {}
};

/**
 * CPU-V1: shared Q-table, @p threads workers, each sweeping its own
 * contiguous dataset portion every episode.
 */
CpuTrainResult trainCpuV1(rlcore::Algorithm algo,
                          const rlcore::Dataset &data,
                          rlcore::StateId num_states,
                          rlcore::ActionId num_actions,
                          const rlcore::Hyper &hyper,
                          rlcore::Sampling sampling,
                          rlcore::NumericFormat format, int threads);

/**
 * CPU-V2: per-thread local Q-tables over dataset portions, averaged
 * once at the end.
 */
CpuTrainResult trainCpuV2(rlcore::Algorithm algo,
                          const rlcore::Dataset &data,
                          rlcore::StateId num_states,
                          rlcore::ActionId num_actions,
                          const rlcore::Hyper &hyper,
                          rlcore::Sampling sampling,
                          rlcore::NumericFormat format, int threads);

} // namespace swiftrl::baselines

#endif // SWIFTRL_BASELINES_CPU_BASELINES_HH
