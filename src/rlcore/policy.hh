/**
 * @file
 * Action-selection policies: uniform random (the behaviour policy used
 * to collect the offline datasets), epsilon-greedy (SARSA's next-action
 * rule and the standard exploration policy), and Boltzmann (mentioned
 * by the paper as an alternative behaviour policy).
 */

#ifndef SWIFTRL_RLCORE_POLICY_HH
#define SWIFTRL_RLCORE_POLICY_HH

#include "common/rng.hh"
#include "rlcore/qtable.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/** Uniform random action. */
ActionId randomAction(ActionId num_actions, common::XorShift128 &rng);

/**
 * Epsilon-greedy over Q(s, .): with probability @p epsilon a uniform
 * random action, otherwise the greedy action.
 */
ActionId epsilonGreedy(const QTable &q, StateId s, float epsilon,
                       common::XorShift128 &rng);

/**
 * Epsilon-greedy driven by the PIM-style LCG: the variant the SARSA
 * kernels run on-core (SwiftRL Sec. 3.2.2), shared with the CPU
 * reference so both follow identical random streams.
 * Epsilon is tested as (draw % 1000) < epsilon * 1000 — integer-only
 * arithmetic, as DPU code would do it.
 */
ActionId epsilonGreedyLcg(const QTable &q, StateId s, float epsilon,
                          common::Lcg32 &lcg);

/**
 * Boltzmann (softmax) exploration with temperature @p temperature.
 */
ActionId boltzmann(const QTable &q, StateId s, float temperature,
                   common::XorShift128 &rng);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_POLICY_HH
