/**
 * @file
 * The Q-table: a dense numStates x numActions matrix of quality
 * values. One definition is shared by the CPU reference trainers, the
 * PIM kernels (via the raw fixed-point buffer views), and the
 * host-side aggregation step that averages partial Q-tables.
 */

#ifndef SWIFTRL_RLCORE_QTABLE_HH
#define SWIFTRL_RLCORE_QTABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/**
 * Bytes per Q-table entry on the wire. Both PIM formats are 4-byte
 * elements — IEEE-754 binary32 for FP32, raw fixed-point int32 for
 * INT32 — and every MRAM offset computation and transfer size in the
 * engine assumes exactly this width.
 */
inline constexpr std::size_t kQWireBytesPerEntry = 4;

static_assert(sizeof(float) == kQWireBytesPerEntry &&
                  sizeof(std::int32_t) == kQWireBytesPerEntry,
              "the Q-table wire format pins 4-byte elements");

/** Dense state-action value table. */
class QTable
{
  public:
    /** Zero-initialised table. */
    QTable(StateId num_states, ActionId num_actions);

    StateId numStates() const { return _numStates; }
    ActionId numActions() const { return _numActions; }

    /** Entries in row-major (state-major) order. */
    std::size_t entryCount() const { return _values.size(); }

    /** Byte size of the FP32/INT32 wire representation. */
    std::size_t byteSize() const
    {
        return entryCount() * kQWireBytesPerEntry;
    }

    /** Mutable access to Q(s, a). */
    float &at(StateId s, ActionId a);

    /** Read access to Q(s, a). */
    float at(StateId s, ActionId a) const;

    /** max_a' Q(s, a'). */
    float maxValue(StateId s) const;

    /** argmax_a Q(s, a); ties break toward the lowest action index. */
    ActionId greedyAction(StateId s) const;

    /** Fill with zeros. */
    void setZero();

    /**
     * Fill with small arbitrary values in [0, 0.01) — the "initialise
     * a Q-table with arbitrary values" step of Algorithm 1 — so ties
     * are broken randomly but reproducibly.
     */
    void initArbitrary(std::uint64_t seed);

    /** Raw row-major storage. */
    const std::vector<float> &values() const { return _values; }

    /** Raw row-major storage (mutable). */
    std::vector<float> &values() { return _values; }

    /**
     * Quantise to the fixed-point wire format (raw int32 values at
     * @p scale), the representation INT32 kernels keep in WRAM.
     */
    std::vector<std::int32_t> toFixed(std::int32_t scale) const;

    /** Rebuild from the fixed-point wire format. */
    static QTable fromFixed(StateId num_states, ActionId num_actions,
                            const std::vector<std::int32_t> &raw,
                            std::int32_t scale);

    /** Reinterpret a float buffer as a table (PIM gather path). */
    static QTable fromFloats(StateId num_states, ActionId num_actions,
                             const std::vector<float> &values);

    /**
     * Element-wise average of partial Q-tables — the host-side
     * aggregation SwiftRL performs every synchronisation period and
     * at the end of training. All tables must share one shape.
     */
    static QTable average(const std::vector<QTable> &tables);

    /** Largest |Q| entry (overflow guard diagnostics). */
    float maxAbsValue() const;

    /**
     * Largest |difference| between two same-shaped tables (used by
     * the FP32-vs-INT32 equivalence tests).
     */
    static float maxAbsDifference(const QTable &a, const QTable &b);

  private:
    std::size_t index(StateId s, ActionId a) const;

    StateId _numStates;
    ActionId _numActions;
    std::vector<float> _values;
};

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_QTABLE_HH
