#include "rlcore/trainers.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "rlcore/sampling.hh"
#include "rlcore/seeds.hh"
#include "rlcore/update_rules.hh"

namespace swiftrl::rlcore {

const char *
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::QLearning: return "Q";
      case Algorithm::Sarsa: return "SARSA";
    }
    SWIFTRL_PANIC("unknown algorithm");
}

Algorithm
parseAlgorithm(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (n == "q" || n == "qlearning" || n == "q-learning")
        return Algorithm::QLearning;
    if (n == "sarsa")
        return Algorithm::Sarsa;
    SWIFTRL_FATAL("unknown algorithm '", name,
                  "'; expected qlearning or sarsa");
}

std::int32_t
quantizeReward(float reward, std::int32_t scale)
{
    const double scaled =
        static_cast<double>(reward) * static_cast<double>(scale);
    return static_cast<std::int32_t>(
        scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
}

namespace {

/** FP32 training loop shared by both algorithms. */
QTable
trainFp32(Algorithm algo, const Dataset &data, StateId num_states,
          ActionId num_actions, const Hyper &hyper, Sampling sampling,
          std::uint64_t lcg_stream)
{
    HostOps ops;
    ops.lcgSeed(deriveLcgSeed(hyper.seed, lcg_stream));
    SampleWalker walker(data.size(), sampling,
                        static_cast<std::size_t>(hyper.stride));
    const auto epsilon_milli = static_cast<std::int32_t>(
        static_cast<double>(hyper.epsilon) * 1000.0 + 0.5);

    QTable table(num_states, num_actions);
    float *q = table.values().data();

    for (int ep = 0; ep < hyper.episodes; ++ep) {
        walker.startEpisode();
        for (std::size_t k = 0; k < data.size(); ++k) {
            const std::size_t i =
                walker.next([&](std::size_t bound) {
                    return static_cast<std::size_t>(ops.lcgNextBounded(
                        static_cast<std::uint32_t>(bound)));
                });
            const StateId s = data.states()[i];
            const ActionId a = data.actions()[i];
            const float r = data.rewards()[i];
            const StateId s2 = data.nextStates()[i];
            const bool terminal = data.terminals()[i] != 0;

            if (algo == Algorithm::QLearning) {
                qlearningUpdateFp32(ops, q, num_actions, s, a, r, s2,
                                    terminal, hyper.alpha, hyper.gamma);
            } else {
                sarsaUpdateFp32(ops, q, num_actions, s, a, r, s2,
                                terminal, hyper.alpha, hyper.gamma,
                                epsilon_milli);
            }
        }
    }
    return table;
}

/**
 * Fixed-point training loop shared by both algorithms and both
 * fixed-point formats (INT32 scaling optimisation, INT8 custom-
 * multiply optimisation).
 */
QTable
trainInt32(Algorithm algo, const Dataset &data, StateId num_states,
           ActionId num_actions, const Hyper &hyper, Sampling sampling,
           NumericFormat format, std::uint64_t lcg_stream)
{
    HostOps ops;
    ops.lcgSeed(deriveLcgSeed(hyper.seed, lcg_stream));
    SampleWalker walker(data.size(), sampling,
                        static_cast<std::size_t>(hyper.stride));
    const bool int8 = format == NumericFormat::Int8;
    const ScaledHyper scaled = ScaledHyper::fromHyper(hyper);
    const ScaledHyperPow2 pow2 = ScaledHyperPow2::fromHyper(hyper);
    const std::int32_t scale =
        int8 ? pow2.scale() : hyper.scale;

    // Pre-quantise rewards once, as the host does before the CPU-PIM
    // transfer ("we scale up the reward r for each experience").
    std::vector<std::int32_t> r_scaled(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        r_scaled[i] = quantizeReward(data.rewards()[i], scale);

    std::vector<std::int32_t> q(
        static_cast<std::size_t>(num_states) *
            static_cast<std::size_t>(num_actions),
        0);

    for (int ep = 0; ep < hyper.episodes; ++ep) {
        walker.startEpisode();
        for (std::size_t k = 0; k < data.size(); ++k) {
            const std::size_t i =
                walker.next([&](std::size_t bound) {
                    return static_cast<std::size_t>(ops.lcgNextBounded(
                        static_cast<std::uint32_t>(bound)));
                });
            const StateId s = data.states()[i];
            const ActionId a = data.actions()[i];
            const StateId s2 = data.nextStates()[i];
            const bool terminal = data.terminals()[i] != 0;

            if (int8) {
                if (algo == Algorithm::QLearning) {
                    qlearningUpdateInt8(ops, q.data(), num_actions, s,
                                        a, r_scaled[i], s2, terminal,
                                        pow2);
                } else {
                    sarsaUpdateInt8(ops, q.data(), num_actions, s, a,
                                    r_scaled[i], s2, terminal, pow2);
                }
            } else if (algo == Algorithm::QLearning) {
                qlearningUpdateInt32(ops, q.data(), num_actions, s, a,
                                     r_scaled[i], s2, terminal, scaled);
            } else {
                sarsaUpdateInt32(ops, q.data(), num_actions, s, a,
                                 r_scaled[i], s2, terminal, scaled);
            }
        }
    }
    return QTable::fromFixed(num_states, num_actions, q, scale);
}

} // namespace

QTable
trainCpuReference(Algorithm algo, const Dataset &data,
                  StateId num_states, ActionId num_actions,
                  const Hyper &hyper, Sampling sampling,
                  NumericFormat format, std::uint64_t lcg_stream)
{
    SWIFTRL_ASSERT(!data.empty(), "training on an empty dataset");
    if (format == NumericFormat::Fp32) {
        return trainFp32(algo, data, num_states, num_actions, hyper,
                         sampling, lcg_stream);
    }
    return trainInt32(algo, data, num_states, num_actions, hyper,
                      sampling, format, lcg_stream);
}

} // namespace swiftrl::rlcore
