#include "rlcore/policy.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace swiftrl::rlcore {

ActionId
randomAction(ActionId num_actions, common::XorShift128 &rng)
{
    SWIFTRL_ASSERT(num_actions > 0, "empty action space");
    return static_cast<ActionId>(
        rng.nextBounded(static_cast<std::uint64_t>(num_actions)));
}

ActionId
epsilonGreedy(const QTable &q, StateId s, float epsilon,
              common::XorShift128 &rng)
{
    SWIFTRL_ASSERT(epsilon >= 0.0f && epsilon <= 1.0f,
                   "epsilon out of [0, 1]");
    if (rng.nextReal() < static_cast<double>(epsilon))
        return randomAction(q.numActions(), rng);
    return q.greedyAction(s);
}

ActionId
epsilonGreedyLcg(const QTable &q, StateId s, float epsilon,
                 common::Lcg32 &lcg)
{
    SWIFTRL_ASSERT(epsilon >= 0.0f && epsilon <= 1.0f,
                   "epsilon out of [0, 1]");
    const auto epsilon_milli =
        static_cast<std::uint32_t>(epsilon * 1000.0f + 0.5f);
    if (lcg.nextBounded(1000) < epsilon_milli) {
        return static_cast<ActionId>(lcg.nextBounded(
            static_cast<std::uint32_t>(q.numActions())));
    }
    return q.greedyAction(s);
}

ActionId
boltzmann(const QTable &q, StateId s, float temperature,
          common::XorShift128 &rng)
{
    SWIFTRL_ASSERT(temperature > 0.0f, "temperature must be positive");
    const ActionId n = q.numActions();
    std::vector<double> weights(static_cast<std::size_t>(n));

    // Shift by the max for numerical stability.
    double max_q = -1e30;
    for (ActionId a = 0; a < n; ++a)
        max_q = std::max(max_q, static_cast<double>(q.at(s, a)));

    double total = 0.0;
    for (ActionId a = 0; a < n; ++a) {
        const double w = std::exp(
            (static_cast<double>(q.at(s, a)) - max_q) /
            static_cast<double>(temperature));
        weights[static_cast<std::size_t>(a)] = w;
        total += w;
    }

    double draw = rng.nextReal() * total;
    for (ActionId a = 0; a < n; ++a) {
        draw -= weights[static_cast<std::size_t>(a)];
        if (draw <= 0.0)
            return a;
    }
    return n - 1; // floating-point tail
}

} // namespace swiftrl::rlcore
