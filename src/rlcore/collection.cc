#include "rlcore/collection.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "rlcore/seeds.hh"

namespace swiftrl::rlcore {

BehaviourPolicy
makeRandomPolicy(ActionId num_actions)
{
    SWIFTRL_ASSERT(num_actions > 0, "empty action space");
    return [num_actions](StateId, common::XorShift128 &rng) {
        return randomAction(num_actions, rng);
    };
}

BehaviourPolicy
makeEpsilonGreedyPolicy(QTable q, float epsilon)
{
    SWIFTRL_ASSERT(epsilon >= 0.0f && epsilon <= 1.0f,
                   "epsilon out of [0, 1]");
    return [q = std::move(q), epsilon](StateId s,
                                       common::XorShift128 &rng) {
        return epsilonGreedy(q, s, epsilon, rng);
    };
}

BehaviourPolicy
makeBoltzmannPolicy(QTable q, float temperature)
{
    SWIFTRL_ASSERT(temperature > 0.0f, "temperature must be positive");
    return [q = std::move(q), temperature](StateId s,
                                           common::XorShift128 &rng) {
        return boltzmann(q, s, temperature, rng);
    };
}

Dataset
collectPolicyDataset(rlenv::Environment &env,
                     const BehaviourPolicy &policy,
                     std::size_t num_transitions, std::uint64_t seed)
{
    SWIFTRL_ASSERT(policy, "collection needs a behaviour policy");
    Dataset data;
    common::XorShift128 rng(seed);
    StateId state = env.reset(rng);

    for (std::size_t i = 0; i < num_transitions; ++i) {
        const ActionId action = policy(state, rng);
        const rlenv::StepResult r = env.step(action, rng);

        Transition t;
        t.state = state;
        t.action = action;
        t.reward = r.reward;
        t.nextState = r.nextState;
        t.terminal = r.terminated;
        data.append(t);

        state = r.done() ? env.reset(rng) : r.nextState;
    }
    return data;
}

std::vector<Dataset>
collectPolicyBlocks(const EnvFactory &make_env,
                    const BehaviourPolicy &policy,
                    std::size_t num_transitions,
                    std::size_t block_transitions, std::uint64_t seed,
                    unsigned actor_threads)
{
    SWIFTRL_ASSERT(make_env, "block collection needs an env factory");
    SWIFTRL_ASSERT(policy, "block collection needs a policy");
    SWIFTRL_ASSERT(block_transitions > 0,
                   "collection blocks must hold at least one "
                   "transition");

    const std::size_t blocks =
        (num_transitions + block_transitions - 1) / block_transitions;
    std::vector<Dataset> out(blocks);
    if (blocks == 0)
        return out;

    // Index-pure worker: block i depends only on (policy, seed, i),
    // never on which thread ran it or what ran before it.
    auto run_block = [&](std::size_t i) {
        const std::size_t first = i * block_transitions;
        const std::size_t count =
            std::min(block_transitions, num_transitions - first);
        auto env = make_env();
        out[i] = collectPolicyDataset(*env, policy, count,
                                      deriveHostSeed(seed, i));
    };

    std::size_t threads = actor_threads == 0
                              ? std::thread::hardware_concurrency()
                              : actor_threads;
    threads = std::clamp<std::size_t>(threads, 1, blocks);

    if (threads == 1) {
        for (std::size_t i = 0; i < blocks; ++i)
            run_block(i);
        return out;
    }
    // Round-robin block ownership: actor t runs blocks t, t+T, ... —
    // the same static schedule the modelled actor timing assumes.
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (std::size_t i = t; i < blocks; i += threads)
                run_block(i);
        });
    }
    for (auto &worker : pool)
        worker.join();
    return out;
}

Dataset
concatBlocks(const std::vector<Dataset> &blocks)
{
    Dataset all;
    for (const auto &block : blocks) {
        for (std::size_t i = 0; i < block.size(); ++i)
            all.append(block.get(i));
    }
    return all;
}

} // namespace swiftrl::rlcore
