#include "rlcore/collection.hh"

#include "common/logging.hh"

namespace swiftrl::rlcore {

BehaviourPolicy
makeRandomPolicy(ActionId num_actions)
{
    SWIFTRL_ASSERT(num_actions > 0, "empty action space");
    return [num_actions](StateId, common::XorShift128 &rng) {
        return randomAction(num_actions, rng);
    };
}

BehaviourPolicy
makeEpsilonGreedyPolicy(QTable q, float epsilon)
{
    SWIFTRL_ASSERT(epsilon >= 0.0f && epsilon <= 1.0f,
                   "epsilon out of [0, 1]");
    return [q = std::move(q), epsilon](StateId s,
                                       common::XorShift128 &rng) {
        return epsilonGreedy(q, s, epsilon, rng);
    };
}

BehaviourPolicy
makeBoltzmannPolicy(QTable q, float temperature)
{
    SWIFTRL_ASSERT(temperature > 0.0f, "temperature must be positive");
    return [q = std::move(q), temperature](StateId s,
                                           common::XorShift128 &rng) {
        return boltzmann(q, s, temperature, rng);
    };
}

Dataset
collectPolicyDataset(rlenv::Environment &env,
                     const BehaviourPolicy &policy,
                     std::size_t num_transitions, std::uint64_t seed)
{
    SWIFTRL_ASSERT(policy, "collection needs a behaviour policy");
    Dataset data;
    common::XorShift128 rng(seed);
    StateId state = env.reset(rng);

    for (std::size_t i = 0; i < num_transitions; ++i) {
        const ActionId action = policy(state, rng);
        const rlenv::StepResult r = env.step(action, rng);

        Transition t;
        t.state = state;
        t.action = action;
        t.reward = r.reward;
        t.nextState = r.nextState;
        t.terminal = r.terminated;
        data.append(t);

        state = r.done() ? env.reset(rng) : r.nextState;
    }
    return data;
}

} // namespace swiftrl::rlcore
