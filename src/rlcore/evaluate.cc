#include "rlcore/evaluate.hh"

#include "common/logging.hh"
#include "common/stats.hh"

namespace swiftrl::rlcore {

EvalResult
evaluateGreedy(rlenv::Environment &env, const QTable &q, int episodes,
               std::uint64_t seed)
{
    SWIFTRL_ASSERT(episodes > 0, "need at least one evaluation episode");
    SWIFTRL_ASSERT(q.numStates() == env.numStates() &&
                       q.numActions() == env.numActions(),
                   "Q-table shape does not match the environment");

    common::XorShift128 rng(seed);
    common::RunningStat reward_stat;
    common::RunningStat step_stat;
    int successes = 0;

    for (int ep = 0; ep < episodes; ++ep) {
        StateId state = env.reset(rng);
        double total = 0.0;
        int steps = 0;
        while (true) {
            const ActionId action = q.greedyAction(state);
            const rlenv::StepResult r = env.step(action, rng);
            total += static_cast<double>(r.reward);
            ++steps;
            if (r.done())
                break;
            state = r.nextState;
        }
        reward_stat.add(total);
        step_stat.add(static_cast<double>(steps));
        if (total > 0.0)
            ++successes;
    }

    EvalResult result;
    result.meanReward = reward_stat.mean();
    result.stddev = reward_stat.stddev();
    result.successRate =
        static_cast<double>(successes) / static_cast<double>(episodes);
    result.meanSteps = step_stat.mean();
    result.episodes = episodes;
    return result;
}

} // namespace swiftrl::rlcore
