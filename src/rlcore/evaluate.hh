/**
 * @file
 * Policy evaluation: deploy a trained Q-table greedily in a live
 * environment and measure the mean episodic reward — the training
 * quality metric of SwiftRL Sec. 4.2.
 */

#ifndef SWIFTRL_RLCORE_EVALUATE_HH
#define SWIFTRL_RLCORE_EVALUATE_HH

#include <cstdint>

#include "rlcore/qtable.hh"
#include "rlenv/environment.hh"

namespace swiftrl::rlcore {

/** Aggregate results of an evaluation run. */
struct EvalResult
{
    /** Mean total reward per episode. */
    double meanReward = 0.0;

    /** Sample standard deviation of episodic rewards. */
    double stddev = 0.0;

    /** Fraction of episodes with positive total reward. */
    double successRate = 0.0;

    /** Mean episode length in steps. */
    double meanSteps = 0.0;

    /** Number of evaluation episodes. */
    int episodes = 0;
};

/**
 * Roll out the greedy policy of @p q for @p episodes episodes.
 *
 * @param env environment (its episode state is consumed).
 * @param q trained Q-table; shape must match the environment.
 * @param episodes evaluation episodes (paper: 1,000).
 * @param seed RNG seed for environment stochasticity.
 */
EvalResult evaluateGreedy(rlenv::Environment &env, const QTable &q,
                          int episodes, std::uint64_t seed);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_EVALUATE_HH
