#include "rlcore/serialization.hh"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/logging.hh"

namespace swiftrl::rlcore {

namespace {

constexpr char kDatasetMagic[8] = {'S', 'W', 'R', 'L',
                                   'D', 'S', '0', '1'};
constexpr char kQTableMagic[8] = {'S', 'W', 'R', 'L',
                                  'Q', 'T', '0', '1'};

void
writeAll(std::ofstream &out, const void *bytes, std::size_t length,
         const std::string &path)
{
    out.write(static_cast<const char *>(bytes),
              static_cast<std::streamsize>(length));
    if (!out)
        SWIFTRL_FATAL("write to '", path, "' failed");
}

void
readAll(std::ifstream &in, void *bytes, std::size_t length,
        const std::string &path)
{
    in.read(static_cast<char *>(bytes),
            static_cast<std::streamsize>(length));
    if (!in || in.gcount() != static_cast<std::streamsize>(length))
        SWIFTRL_FATAL("'", path, "' is truncated or unreadable");
}

} // namespace

std::uint64_t
fnv1a(const void *bytes, std::size_t length)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < length; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
saveDataset(const Dataset &data, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        SWIFTRL_FATAL("cannot open '", path, "' for writing");

    const auto payload = data.packFp32(0, data.size());
    const std::uint64_t count = data.size();
    const std::uint64_t checksum =
        fnv1a(payload.data(), payload.size());

    writeAll(out, kDatasetMagic, sizeof(kDatasetMagic), path);
    writeAll(out, &count, sizeof(count), path);
    writeAll(out, payload.data(), payload.size(), path);
    writeAll(out, &checksum, sizeof(checksum), path);
}

Dataset
loadDataset(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SWIFTRL_FATAL("cannot open '", path, "' for reading");

    char magic[8];
    readAll(in, magic, sizeof(magic), path);
    if (std::memcmp(magic, kDatasetMagic, sizeof(magic)) != 0)
        SWIFTRL_FATAL("'", path, "' is not a SwiftRL dataset file");

    std::uint64_t count = 0;
    readAll(in, &count, sizeof(count), path);

    std::vector<std::uint8_t> payload(
        count * sizeof(PackedTransition));
    readAll(in, payload.data(), payload.size(), path);

    std::uint64_t checksum = 0;
    readAll(in, &checksum, sizeof(checksum), path);
    if (checksum != fnv1a(payload.data(), payload.size()))
        SWIFTRL_FATAL("'", path, "' failed its checksum; the file is "
                      "corrupt");

    Dataset data;
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedTransition p;
        std::memcpy(&p,
                    payload.data() + i * sizeof(PackedTransition),
                    sizeof(p));
        data.append(Dataset::unpackFp32(p));
    }
    return data;
}

bool
trySaveQTable(const QTable &q, const std::string &path,
              std::string *error)
{
    const auto fail = [&](std::string reason) {
        if (error)
            *error = std::move(reason);
        return false;
    };
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return fail("cannot open '" + path + "' for writing");

    const std::int32_t ns = q.numStates();
    const std::int32_t na = q.numActions();
    const auto &values = q.values();
    const std::uint64_t checksum =
        fnv1a(values.data(), values.size() * sizeof(float));

    out.write(kQTableMagic, sizeof(kQTableMagic));
    out.write(reinterpret_cast<const char *>(&ns), sizeof(ns));
    out.write(reinterpret_cast<const char *>(&na), sizeof(na));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(values.size() *
                                           sizeof(float)));
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof(checksum));
    if (!out)
        return fail("write to '" + path + "' failed");
    return true;
}

void
saveQTable(const QTable &q, const std::string &path)
{
    std::string error;
    if (!trySaveQTable(q, path, &error))
        SWIFTRL_FATAL(error);
}

std::optional<QTable>
tryLoadQTable(const std::string &path, std::string *error)
{
    const auto fail = [&](std::string reason) {
        if (error)
            *error = std::move(reason);
        return std::nullopt;
    };
    const auto readExact = [](std::ifstream &in, void *bytes,
                              std::size_t length) {
        in.read(static_cast<char *>(bytes),
                static_cast<std::streamsize>(length));
        return bool(in) &&
               in.gcount() == static_cast<std::streamsize>(length);
    };

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail("cannot open '" + path + "' for reading");

    char magic[8];
    if (!readExact(in, magic, sizeof(magic)))
        return fail("'" + path + "' is truncated or unreadable");
    if (std::memcmp(magic, kQTableMagic, sizeof(magic)) != 0)
        return fail("'" + path + "' is not a SwiftRL Q-table file");

    std::int32_t ns = 0, na = 0;
    if (!readExact(in, &ns, sizeof(ns)) ||
        !readExact(in, &na, sizeof(na)))
        return fail("'" + path + "' is truncated or unreadable");
    if (ns <= 0 || na <= 0)
        return fail("'" + path + "' declares an invalid shape " +
                    std::to_string(ns) + "x" + std::to_string(na));

    std::vector<float> values(static_cast<std::size_t>(ns) *
                              static_cast<std::size_t>(na));
    if (!readExact(in, values.data(), values.size() * sizeof(float)))
        return fail("'" + path + "' is truncated or unreadable");

    std::uint64_t checksum = 0;
    if (!readExact(in, &checksum, sizeof(checksum)))
        return fail("'" + path + "' is truncated or unreadable");
    if (checksum != fnv1a(values.data(),
                          values.size() * sizeof(float))) {
        return fail("'" + path + "' failed its checksum; the file "
                    "is corrupt");
    }
    return QTable::fromFloats(ns, na, values);
}

QTable
loadQTable(const std::string &path)
{
    std::string error;
    auto q = tryLoadQTable(path, &error);
    if (!q)
        SWIFTRL_FATAL(error);
    return *std::move(q);
}

} // namespace swiftrl::rlcore
