#include "rlcore/dataset.hh"

#include <bit>
#include <cstring>

#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace swiftrl::rlcore {

void
Dataset::append(const Transition &t)
{
    _states.push_back(t.state);
    _actions.push_back(t.action);
    _rewards.push_back(t.reward);
    _nextStates.push_back(t.nextState);
    _terminals.push_back(t.terminal ? 1 : 0);
}

Transition
Dataset::get(std::size_t i) const
{
    SWIFTRL_ASSERT(i < size(), "transition index ", i, " out of range");
    Transition t;
    t.state = _states[i];
    t.action = _actions[i];
    t.reward = _rewards[i];
    t.nextState = _nextStates[i];
    t.terminal = _terminals[i] != 0;
    return t;
}

namespace {

std::uint32_t
packNextState(StateId next_state, bool terminal)
{
    SWIFTRL_ASSERT(next_state >= 0, "negative state id");
    std::uint32_t bits = static_cast<std::uint32_t>(next_state);
    SWIFTRL_ASSERT((bits & PackedTransition::kTerminalBit) == 0,
                   "state id collides with the terminal flag bit");
    if (terminal)
        bits |= PackedTransition::kTerminalBit;
    return bits;
}

} // namespace

std::vector<std::uint8_t>
Dataset::packFp32(std::size_t first, std::size_t count) const
{
    SWIFTRL_ASSERT(first + count <= size(), "pack range out of bounds");
    std::vector<std::uint8_t> out(count * sizeof(PackedTransition));
    for (std::size_t i = 0; i < count; ++i) {
        PackedTransition p;
        p.state = _states[first + i];
        p.action = _actions[first + i];
        p.rewardBits = std::bit_cast<std::int32_t>(_rewards[first + i]);
        p.nextStateBits = packNextState(_nextStates[first + i],
                                        _terminals[first + i] != 0);
        std::memcpy(out.data() + i * sizeof(PackedTransition), &p,
                    sizeof(PackedTransition));
    }
    return out;
}

std::vector<std::uint8_t>
Dataset::packInt32(std::size_t first, std::size_t count,
                   std::int32_t scale) const
{
    SWIFTRL_ASSERT(first + count <= size(), "pack range out of bounds");
    SWIFTRL_ASSERT(scale > 0, "scale factor must be positive");
    std::vector<std::uint8_t> out(count * sizeof(PackedTransition));
    for (std::size_t i = 0; i < count; ++i) {
        PackedTransition p;
        p.state = _states[first + i];
        p.action = _actions[first + i];
        const double scaled = static_cast<double>(_rewards[first + i]) *
                              static_cast<double>(scale);
        const double rounded =
            scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
        p.rewardBits = static_cast<std::int32_t>(rounded);
        p.nextStateBits = packNextState(_nextStates[first + i],
                                        _terminals[first + i] != 0);
        std::memcpy(out.data() + i * sizeof(PackedTransition), &p,
                    sizeof(PackedTransition));
    }
    return out;
}

Transition
Dataset::unpackFp32(const PackedTransition &p)
{
    Transition t;
    t.state = p.state;
    t.action = p.action;
    t.reward = std::bit_cast<float>(p.rewardBits);
    t.nextState = static_cast<StateId>(
        p.nextStateBits & ~PackedTransition::kTerminalBit);
    t.terminal = (p.nextStateBits & PackedTransition::kTerminalBit) != 0;
    return t;
}

Transition
Dataset::unpackInt32(const PackedTransition &p, std::int32_t scale)
{
    SWIFTRL_ASSERT(scale > 0, "scale factor must be positive");
    Transition t;
    t.state = p.state;
    t.action = p.action;
    t.reward = static_cast<float>(p.rewardBits) /
               static_cast<float>(scale);
    t.nextState = static_cast<StateId>(
        p.nextStateBits & ~PackedTransition::kTerminalBit);
    t.terminal = (p.nextStateBits & PackedTransition::kTerminalBit) != 0;
    return t;
}

Dataset
collectRandomDataset(rlenv::Environment &env,
                     std::size_t num_transitions, std::uint64_t seed)
{
    Dataset data;
    common::XorShift128 rng(seed);
    StateId state = env.reset(rng);
    const auto num_actions =
        static_cast<std::uint64_t>(env.numActions());

    for (std::size_t i = 0; i < num_transitions; ++i) {
        const auto action =
            static_cast<ActionId>(rng.nextBounded(num_actions));
        const rlenv::StepResult r = env.step(action, rng);

        Transition t;
        t.state = state;
        t.action = action;
        t.reward = r.reward;
        t.nextState = r.nextState;
        t.terminal = r.terminated;
        data.append(t);

        state = r.done() ? env.reset(rng) : r.nextState;
    }
    return data;
}

} // namespace swiftrl::rlcore
