/**
 * @file
 * Binary persistence for offline datasets and trained Q-tables.
 *
 * Datasets are the expensive artefact of the offline-RL pipeline
 * (Figure 1's one-time collection step) and Q-tables are the deployed
 * policy; both need durable, versioned, integrity-checked files.
 *
 * Formats (little-endian):
 *   dataset: magic "SWRLDS01" | u64 count | count x 16-byte packed
 *            records (the FP32 MRAM layout) | u64 FNV-1a checksum
 *   q-table: magic "SWRLQT01" | i32 states | i32 actions |
 *            states*actions x f32 | u64 FNV-1a checksum
 *
 * All loads validate magic, length, and checksum and are fatal on
 * mismatch (a corrupt dataset silently training a wrong policy is
 * the worst failure mode).
 */

#ifndef SWIFTRL_RLCORE_SERIALIZATION_HH
#define SWIFTRL_RLCORE_SERIALIZATION_HH

#include <optional>
#include <string>

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"

namespace swiftrl::rlcore {

/** Write @p data to @p path; fatal on I/O failure. */
void saveDataset(const Dataset &data, const std::string &path);

/** Read a dataset; fatal on I/O failure or corruption. */
Dataset loadDataset(const std::string &path);

/** Write @p q to @p path; fatal on I/O failure. */
void saveQTable(const QTable &q, const std::string &path);

/** Read a Q-table; fatal on I/O failure or corruption. */
QTable loadQTable(const std::string &path);

/**
 * Non-fatal loadQTable for embedders (the C API): nullopt on
 * failure with the reason in @p error (when non-null) instead of
 * aborting the host process.
 */
std::optional<QTable> tryLoadQTable(const std::string &path,
                                    std::string *error);

/** Non-fatal saveQTable: false + reason instead of aborting. */
bool trySaveQTable(const QTable &q, const std::string &path,
                   std::string *error);

/** FNV-1a 64-bit checksum (exposed for tests). */
std::uint64_t fnv1a(const void *bytes, std::size_t length);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_SERIALIZATION_HH
