/**
 * @file
 * CPU reference trainers: single-threaded tabular Q-learning and SARSA
 * over an offline dataset, in both numeric formats and all three
 * sampling strategies. These are the ground truth the PIM kernels are
 * validated against (a single-core PIM run must match bit-for-bit) and
 * the functional substance behind the paper's CPU baselines.
 */

#ifndef SWIFTRL_RLCORE_TRAINERS_HH
#define SWIFTRL_RLCORE_TRAINERS_HH

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/** The two tabular algorithms SwiftRL accelerates. */
enum class Algorithm
{
    QLearning, ///< off-policy max-bootstrap (Algorithm 1)
    Sarsa,     ///< on-policy with epsilon-greedy next action (Eq. 1)
};

/** Short tag ("Q"/"SARSA") for reports. */
const char *algorithmName(Algorithm algo);

/** Parse "q"/"qlearning"/"sarsa" (case-insensitive). */
Algorithm parseAlgorithm(const std::string &name);

/**
 * Train a Q-table on @p data with the reference CPU implementation.
 *
 * One "episode" performs data.size() updates in the order defined by
 * the sampling strategy (SwiftRL Algorithm 1's batched sweep). The
 * random streams (RAN sampling, SARSA's epsilon-greedy) come from the
 * PIM-style LCG seeded from hyper.seed, so this function reproduces a
 * single-chunk PIM kernel exactly.
 *
 * @param lcg_stream stream id for seed derivation (PIM core id when
 *        mirroring a kernel; 0 for standalone reference training).
 */
QTable trainCpuReference(Algorithm algo, const Dataset &data,
                         StateId num_states, ActionId num_actions,
                         const Hyper &hyper, Sampling sampling,
                         NumericFormat format,
                         std::uint64_t lcg_stream = 0);

/**
 * Reward quantisation used by both Dataset::packInt32 and the INT32
 * trainers: round(reward * scale), ties away from zero.
 */
std::int32_t quantizeReward(float reward, std::int32_t scale);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_TRAINERS_HH
