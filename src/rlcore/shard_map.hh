/**
 * @file
 * ShardMap: a contiguous-range partition of the state space across
 * Q-table shards. Each shard owns an identical number of padded rows
 * (rowsPerShard = ceil(numStates / numShards)), which keeps ownership
 * lookup a single integer division and makes every shard's MRAM slice
 * the same size; the trailing shard's padding rows stay zero forever
 * and are never copied back into the aggregate.
 */

#ifndef SWIFTRL_RLCORE_SHARD_MAP_HH
#define SWIFTRL_RLCORE_SHARD_MAP_HH

#include <cstddef>
#include <string>

#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/** Contiguous-range assignment of states to Q-table shards. */
class ShardMap
{
  public:
    /**
     * Partition @p num_states rows across @p num_shards shards.
     * Fatal on any configuration invalidReason() rejects — callers
     * that take embedder input (the C ABI, the CLI) must precheck
     * with invalidReason() and surface a typed error instead.
     */
    ShardMap(StateId num_states, std::size_t num_shards);

    /**
     * Empty string when (num_states, num_shards) forms a valid map;
     * otherwise a human-readable reason. Rejects zero shards, more
     * shards than states, and padding so extreme that a shard would
     * own no real row at all (e.g. 5 states on 4 shards: ceil(5/4)=2
     * rows per shard puts shard 3's range entirely past the table).
     */
    static std::string invalidReason(StateId num_states,
                                     std::size_t num_shards);

    StateId numStates() const { return _numStates; }
    std::size_t numShards() const { return _numShards; }

    /** Padded rows per shard: ceil(numStates / numShards). */
    StateId rowsPerShard() const { return _rowsPerShard; }

    /** Shard owning state @p s. */
    std::size_t ownerOf(StateId s) const
    {
        return static_cast<std::size_t>(s) /
               static_cast<std::size_t>(_rowsPerShard);
    }

    /** First state of @p shard's range. */
    StateId firstState(std::size_t shard) const
    {
        return static_cast<StateId>(shard) * _rowsPerShard;
    }

    /**
     * Real (un-padded) rows of @p shard: rowsPerShard() for all but
     * possibly the last shard.
     */
    StateId ownedRows(std::size_t shard) const;

    bool operator==(const ShardMap &) const = default;

  private:
    StateId _numStates;
    std::size_t _numShards;
    StateId _rowsPerShard;
};

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_SHARD_MAP_HH
