/**
 * @file
 * Offline dataset collection under arbitrary behaviour policies.
 *
 * SwiftRL collects with a uniform-random policy but notes that
 * "other policies such as epsilon greedy and boltzmann can also be
 * used to execute actions on the environment and log the
 * experiences" (Sec. 3.2.1). This module provides that: a behaviour
 * policy is any callable mapping the current state (plus the rollout
 * RNG) to an action, and collection logs exactly `n` transitions with
 * automatic episode resets — the same contract as
 * collectRandomDataset.
 *
 * For the streaming trainer there is additionally a *block-granular*
 * collection API: a request for `n` transitions is split into fixed
 * slices of `block` transitions (the last one shorter when `n` is not
 * divisible), and each block is an independent rollout in a fresh
 * environment under its own derived seed. Because blocks are
 * index-pure, the collected data is bit-identical for any number of
 * actor threads executing them.
 */

#ifndef SWIFTRL_RLCORE_COLLECTION_HH
#define SWIFTRL_RLCORE_COLLECTION_HH

#include <functional>
#include <memory>
#include <vector>

#include "rlcore/dataset.hh"
#include "rlcore/policy.hh"
#include "rlcore/qtable.hh"
#include "rlenv/environment.hh"

namespace swiftrl::rlcore {

/** A behaviour policy: state (+ rollout RNG) -> action. */
using BehaviourPolicy =
    std::function<ActionId(StateId, common::XorShift128 &)>;

/** Uniform-random behaviour policy (the paper's default). */
BehaviourPolicy makeRandomPolicy(ActionId num_actions);

/**
 * Epsilon-greedy behaviour policy over a (typically partially
 * trained) Q-table. The table is copied so the policy stays valid
 * after the source goes away.
 */
BehaviourPolicy makeEpsilonGreedyPolicy(QTable q, float epsilon);

/** Boltzmann (softmax) behaviour policy at a fixed temperature. */
BehaviourPolicy makeBoltzmannPolicy(QTable q, float temperature);

/**
 * Roll out @p policy in @p env and log exactly @p num_transitions
 * experience tuples.
 */
Dataset collectPolicyDataset(rlenv::Environment &env,
                             const BehaviourPolicy &policy,
                             std::size_t num_transitions,
                             std::uint64_t seed);

/**
 * Factory producing fresh environment instances, so parallel actors
 * can each roll out in their own copy (Environment is stateful).
 * Typically `[] { return rlenv::makeEnvironment("taxi"); }`.
 */
using EnvFactory =
    std::function<std::unique_ptr<rlenv::Environment>()>;

/**
 * Block-granular parallel collection: log exactly @p num_transitions
 * tuples as ceil(n / block) independent blocks of @p block_transitions
 * each (the last block shorter when n is not divisible).
 *
 * Block i is a self-contained rollout: a fresh environment from
 * @p make_env, reset with the block's own seed
 * (deriveHostSeed(seed, i)), episodes resetting automatically inside
 * the block, and the episode in flight truncated by the block edge —
 * exactly collectPolicyDataset's contract applied per block. An
 * episode that terminates exactly on the edge leaves the next block
 * starting from a reset, like any other block.
 *
 * @p actor_threads host threads executing blocks (round-robin by
 * block index; 0 = one per hardware thread). Blocks are index-pure —
 * block i's content depends only on (policy, seed, i) — so the
 * returned blocks are bit-identical for every thread count.
 */
std::vector<Dataset> collectPolicyBlocks(const EnvFactory &make_env,
                                         const BehaviourPolicy &policy,
                                         std::size_t num_transitions,
                                         std::size_t block_transitions,
                                         std::uint64_t seed,
                                         unsigned actor_threads = 1);

/** Concatenate blocks (in index order) into one dataset. */
Dataset concatBlocks(const std::vector<Dataset> &blocks);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_COLLECTION_HH
