/**
 * @file
 * Offline dataset collection under arbitrary behaviour policies.
 *
 * SwiftRL collects with a uniform-random policy but notes that
 * "other policies such as epsilon greedy and boltzmann can also be
 * used to execute actions on the environment and log the
 * experiences" (Sec. 3.2.1). This module provides that: a behaviour
 * policy is any callable mapping the current state (plus the rollout
 * RNG) to an action, and collection logs exactly `n` transitions with
 * automatic episode resets — the same contract as
 * collectRandomDataset.
 */

#ifndef SWIFTRL_RLCORE_COLLECTION_HH
#define SWIFTRL_RLCORE_COLLECTION_HH

#include <functional>

#include "rlcore/dataset.hh"
#include "rlcore/policy.hh"
#include "rlcore/qtable.hh"
#include "rlenv/environment.hh"

namespace swiftrl::rlcore {

/** A behaviour policy: state (+ rollout RNG) -> action. */
using BehaviourPolicy =
    std::function<ActionId(StateId, common::XorShift128 &)>;

/** Uniform-random behaviour policy (the paper's default). */
BehaviourPolicy makeRandomPolicy(ActionId num_actions);

/**
 * Epsilon-greedy behaviour policy over a (typically partially
 * trained) Q-table. The table is copied so the policy stays valid
 * after the source goes away.
 */
BehaviourPolicy makeEpsilonGreedyPolicy(QTable q, float epsilon);

/** Boltzmann (softmax) behaviour policy at a fixed temperature. */
BehaviourPolicy makeBoltzmannPolicy(QTable q, float temperature);

/**
 * Roll out @p policy in @p env and log exactly @p num_transitions
 * experience tuples.
 */
Dataset collectPolicyDataset(rlenv::Environment &env,
                             const BehaviourPolicy &policy,
                             std::size_t num_transitions,
                             std::uint64_t seed);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_COLLECTION_HH
