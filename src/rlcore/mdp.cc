#include "rlcore/mdp.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "rlenv/frozen_lake.hh"

namespace swiftrl::rlcore {

MdpModel::MdpModel(StateId num_states, ActionId num_actions)
    : _numStates(num_states), _numActions(num_actions),
      _outcomes(static_cast<std::size_t>(num_states) *
                static_cast<std::size_t>(num_actions))
{
    SWIFTRL_ASSERT(num_states > 0 && num_actions > 0,
                   "MDP needs a non-empty state-action space");
}

std::size_t
MdpModel::index(StateId s, ActionId a) const
{
    SWIFTRL_ASSERT(s >= 0 && s < _numStates, "state out of range");
    SWIFTRL_ASSERT(a >= 0 && a < _numActions, "action out of range");
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(_numActions) +
           static_cast<std::size_t>(a);
}

const std::vector<Outcome> &
MdpModel::outcomes(StateId s, ActionId a) const
{
    return _outcomes[index(s, a)];
}

void
MdpModel::addOutcome(StateId s, ActionId a, const Outcome &outcome)
{
    SWIFTRL_ASSERT(outcome.probability > 0.0 &&
                       outcome.probability <= 1.0,
                   "outcome probability out of (0, 1]");
    _outcomes[index(s, a)].push_back(outcome);
}

double
MdpModel::probabilityMass(StateId s, ActionId a) const
{
    double mass = 0.0;
    for (const auto &o : outcomes(s, a))
        mass += o.probability;
    return mass;
}

double
MdpModel::coverage() const
{
    std::size_t covered = 0;
    for (const auto &cell : _outcomes)
        covered += cell.empty() ? 0 : 1;
    return static_cast<double>(covered) /
           static_cast<double>(_outcomes.size());
}

MdpModel
exactFrozenLakeModel(bool slippery)
{
    using rlenv::FrozenLake;
    FrozenLake env(slippery);
    MdpModel model(FrozenLake::kStates, FrozenLake::kActions);

    for (StateId s = 0; s < FrozenLake::kStates; ++s) {
        if (env.isTerminal(s))
            continue; // terminal states have no outgoing actions
        for (ActionId a = 0; a < FrozenLake::kActions; ++a) {
            // Aggregate duplicate landing states (border clamping
            // can map two slip directions to one cell).
            std::map<StateId, double> mass;
            if (slippery) {
                for (int slip = -1; slip <= 1; ++slip) {
                    const auto dir = static_cast<ActionId>(
                        (a + slip + FrozenLake::kActions) %
                        FrozenLake::kActions);
                    mass[FrozenLake::moveFrom(s, dir)] += 1.0 / 3.0;
                }
            } else {
                mass[FrozenLake::moveFrom(s, a)] = 1.0;
            }
            for (const auto &[next, p] : mass) {
                Outcome o;
                o.probability = p;
                o.nextState = next;
                o.reward = env.tileAt(next) == 'G' ? 1.0 : 0.0;
                o.terminal = env.isTerminal(next);
                model.addOutcome(s, a, o);
            }
        }
    }
    return model;
}

MdpModel
empiricalModel(const Dataset &data, StateId num_states,
               ActionId num_actions)
{
    SWIFTRL_ASSERT(!data.empty(), "empirical model of an empty "
                                  "dataset");
    struct Cell
    {
        std::size_t count = 0;
        double rewardSum = 0.0;
        std::size_t terminalCount = 0;
    };
    // (s, a) -> next -> statistics
    std::map<std::pair<StateId, ActionId>, std::map<StateId, Cell>>
        counts;
    std::map<std::pair<StateId, ActionId>, std::size_t> totals;

    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto t = data.get(i);
        auto &cell = counts[{t.state, t.action}][t.nextState];
        ++cell.count;
        cell.rewardSum += static_cast<double>(t.reward);
        cell.terminalCount += t.terminal ? 1 : 0;
        ++totals[{t.state, t.action}];
    }

    MdpModel model(num_states, num_actions);
    for (const auto &[sa, nexts] : counts) {
        const auto total = static_cast<double>(totals.at(sa));
        for (const auto &[next, cell] : nexts) {
            Outcome o;
            o.probability = static_cast<double>(cell.count) / total;
            o.nextState = next;
            o.reward = cell.rewardSum /
                       static_cast<double>(cell.count);
            // A (s,a,s') triple is terminal or not deterministically
            // in our environments; majority vote for robustness.
            o.terminal = cell.terminalCount * 2 >= cell.count;
            model.addOutcome(sa.first, sa.second, o);
        }
    }
    return model;
}

ValueIterationResult
valueIteration(const MdpModel &model, double gamma,
               int max_iterations, double tolerance)
{
    SWIFTRL_ASSERT(gamma >= 0.0 && gamma < 1.0,
                   "value iteration needs gamma in [0, 1)");
    SWIFTRL_ASSERT(max_iterations > 0, "need at least one iteration");

    const auto ns = static_cast<std::size_t>(model.numStates());
    const auto na = static_cast<std::size_t>(model.numActions());

    // Iterate in double precision; quantise to the float Q-table
    // only at the end (float iteration would floor the residual at
    // ~3e-8 and never meet tight tolerances).
    std::vector<double> q(ns * na, 0.0);
    std::vector<double> next(ns * na, 0.0);
    auto max_over = [&](const std::vector<double> &table, StateId s) {
        const std::size_t base = static_cast<std::size_t>(s) * na;
        double best = table[base];
        for (std::size_t a = 1; a < na; ++a)
            best = std::max(best, table[base + a]);
        return best;
    };

    ValueIterationResult result;
    for (int it = 0; it < max_iterations; ++it) {
        double residual = 0.0;
        for (StateId s = 0; s < model.numStates(); ++s) {
            for (ActionId a = 0; a < model.numActions(); ++a) {
                const std::size_t at =
                    static_cast<std::size_t>(s) * na +
                    static_cast<std::size_t>(a);
                const auto &outcomes = model.outcomes(s, a);
                if (outcomes.empty()) {
                    next[at] = 0.0;
                    continue;
                }
                double value = 0.0;
                for (const auto &o : outcomes) {
                    const double bootstrap =
                        o.terminal ? 0.0
                                   : max_over(q, o.nextState);
                    value += o.probability *
                             (o.reward + gamma * bootstrap);
                }
                residual =
                    std::max(residual, std::fabs(value - q[at]));
                next[at] = value;
            }
        }
        std::swap(q, next);
        result.iterations = it + 1;
        result.residual = residual;
        if (residual < tolerance)
            break;
    }

    result.q = QTable(model.numStates(), model.numActions());
    for (std::size_t i = 0; i < q.size(); ++i)
        result.q.values()[i] = static_cast<float>(q[i]);
    return result;
}

} // namespace swiftrl::rlcore
