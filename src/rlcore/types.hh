/**
 * @file
 * Core value types shared by every RL component: experience tuples,
 * hyper-parameters, sampling strategies, and numeric formats.
 */

#ifndef SWIFTRL_RLCORE_TYPES_HH
#define SWIFTRL_RLCORE_TYPES_HH

#include <cstdint>
#include <string>

#include "common/fixed_point.hh"
#include "rlenv/environment.hh"

namespace swiftrl::rlcore {

using rlenv::ActionId;
using rlenv::StateId;

/**
 * One experience tuple D_i = (s_i, a_i, r_i, s'_i), the unit of
 * offline RL training data (SwiftRL Sec. 2.1).
 */
struct Transition
{
    StateId state = 0;
    ActionId action = 0;
    float reward = 0.0f;
    StateId nextState = 0;

    /**
     * True when s' is terminal, i.e. no bootstrapped future value.
     * Stored alongside the tuple so the learners can zero the
     * bootstrap term for terminal transitions.
     */
    bool terminal = false;

    bool operator==(const Transition &) const = default;
};

/** How the learner walks its chunk of experiences (SwiftRL Sec. 3.2). */
enum class Sampling
{
    Seq, ///< sequential pass over the chunk
    Ran, ///< uniform random draws (exploration-heavy replay)
    Str, ///< stride-based walk at a fixed interval
};

/** Numeric format of the Q-update arithmetic. */
enum class NumericFormat
{
    Fp32,  ///< 32-bit floating point (emulated on the modelled PIM)
    Int32, ///< 32-bit fixed point with the paper's scaling optimisation
    /**
     * Fixed point with a power-of-two scale small enough that the
     * multiplier operands fit the DPU's *native 8-bit multiplier*
     * (the optional UPMEM-specific optimisation of Sec. 3.2.1:
     * "replacing the compiler-generated ... multiplications with
     * custom 8-bit built-in multiplications"). Applies only to
     * environments whose value range fits the narrow operands; the
     * trainer checks and refuses otherwise.
     */
    Int8,
};

/** Short tag ("SEQ"/"RAN"/"STR") for reports. */
const char *samplingName(Sampling s);

/** Parse "seq"/"ran"/"str" (case-insensitive); fatal otherwise. */
Sampling parseSampling(const std::string &name);

/** Short tag ("FP32"/"INT32") for reports. */
const char *numericFormatName(NumericFormat f);

/** Parse "fp32"/"int32" (case-insensitive); fatal otherwise. */
NumericFormat parseNumericFormat(const std::string &name);

/** Training hyper-parameters (paper defaults, Sec. 4.1). */
struct Hyper
{
    /** Learning rate alpha. */
    float alpha = 0.1f;

    /** Discount factor gamma. */
    float gamma = 0.95f;

    /** Training episodes (one sweep of the chunk per episode). */
    int episodes = 2000;

    /**
     * Epsilon for SARSA's epsilon-greedy next-action selection. The
     * paper does not report its value; 0.05 reproduces its SARSA
     * training-quality band on the slippery frozen lake (Sec. 4.2),
     * where 0.1 noticeably degrades the greedy policy.
     */
    float epsilon = 0.05f;

    /** Stride for Sampling::Str (paper: 4). */
    int stride = 4;

    /** Fixed-point scale factor for NumericFormat::Int32. */
    std::int32_t scale = common::kDefaultScale;

    /**
     * Power-of-two scale exponent for NumericFormat::Int8: the scale
     * is 1 << int8Shift (default 128 — the largest whose scaled alpha
     * and gamma still fit 8-bit multiplier operands). The coarse
     * 1/128 step caps the resolvable value gaps: deterministic
     * environments train at full quality, the slippery lake loses
     * some (see bench/ext_int8_multiply).
     */
    int int8Shift = 7;

    /** Seed for all stochastic components of a training run. */
    std::uint64_t seed = 42;
};

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_TYPES_HH
