#include "rlcore/qtable.hh"

#include <algorithm>
#include <cmath>

#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace swiftrl::rlcore {

QTable::QTable(StateId num_states, ActionId num_actions)
    : _numStates(num_states), _numActions(num_actions),
      _values(static_cast<std::size_t>(num_states) *
                  static_cast<std::size_t>(num_actions),
              0.0f)
{
    SWIFTRL_ASSERT(num_states > 0 && num_actions > 0,
                   "Q-table needs a non-empty state-action space");
}

std::size_t
QTable::index(StateId s, ActionId a) const
{
    SWIFTRL_ASSERT(s >= 0 && s < _numStates, "state ", s,
                   " out of range");
    SWIFTRL_ASSERT(a >= 0 && a < _numActions, "action ", a,
                   " out of range");
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(_numActions) +
           static_cast<std::size_t>(a);
}

float &
QTable::at(StateId s, ActionId a)
{
    return _values[index(s, a)];
}

float
QTable::at(StateId s, ActionId a) const
{
    return _values[index(s, a)];
}

float
QTable::maxValue(StateId s) const
{
    const std::size_t base = index(s, 0);
    float best = _values[base];
    for (ActionId a = 1; a < _numActions; ++a)
        best = std::max(best, _values[base + static_cast<size_t>(a)]);
    return best;
}

ActionId
QTable::greedyAction(StateId s) const
{
    const std::size_t base = index(s, 0);
    ActionId best = 0;
    float best_value = _values[base];
    for (ActionId a = 1; a < _numActions; ++a) {
        const float v = _values[base + static_cast<std::size_t>(a)];
        if (v > best_value) {
            best_value = v;
            best = a;
        }
    }
    return best;
}

void
QTable::setZero()
{
    std::fill(_values.begin(), _values.end(), 0.0f);
}

void
QTable::initArbitrary(std::uint64_t seed)
{
    common::XorShift128 rng(seed);
    for (auto &v : _values)
        v = static_cast<float>(rng.nextReal() * 0.01);
}

std::vector<std::int32_t>
QTable::toFixed(std::int32_t scale) const
{
    SWIFTRL_ASSERT(scale > 0, "scale factor must be positive");
    std::vector<std::int32_t> raw(_values.size());
    for (std::size_t i = 0; i < _values.size(); ++i) {
        const double scaled = static_cast<double>(_values[i]) *
                              static_cast<double>(scale);
        raw[i] = static_cast<std::int32_t>(
            scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
    }
    return raw;
}

QTable
QTable::fromFixed(StateId num_states, ActionId num_actions,
                  const std::vector<std::int32_t> &raw,
                  std::int32_t scale)
{
    QTable table(num_states, num_actions);
    SWIFTRL_ASSERT(raw.size() == table.entryCount(),
                   "fixed-point buffer size mismatch");
    SWIFTRL_ASSERT(scale > 0, "scale factor must be positive");
    for (std::size_t i = 0; i < raw.size(); ++i) {
        // Divide in double so the conversion is the correctly-rounded
        // quotient; the PIM gather path uses the identical expression,
        // keeping single-core PIM runs bit-equal to the reference.
        table._values[i] = static_cast<float>(
            static_cast<double>(raw[i]) / static_cast<double>(scale));
    }
    return table;
}

QTable
QTable::fromFloats(StateId num_states, ActionId num_actions,
                   const std::vector<float> &values)
{
    QTable table(num_states, num_actions);
    SWIFTRL_ASSERT(values.size() == table.entryCount(),
                   "float buffer size mismatch");
    table._values = values;
    return table;
}

QTable
QTable::average(const std::vector<QTable> &tables)
{
    SWIFTRL_ASSERT(!tables.empty(), "average of zero Q-tables");
    QTable out(tables.front().numStates(),
               tables.front().numActions());
    for (const auto &t : tables) {
        SWIFTRL_ASSERT(t.numStates() == out.numStates() &&
                           t.numActions() == out.numActions(),
                       "Q-table shape mismatch in aggregation");
        for (std::size_t i = 0; i < out._values.size(); ++i)
            out._values[i] += t._values[i];
    }
    const float inv = 1.0f / static_cast<float>(tables.size());
    for (auto &v : out._values)
        v *= inv;
    return out;
}

float
QTable::maxAbsValue() const
{
    float m = 0.0f;
    for (const float v : _values)
        m = std::max(m, std::fabs(v));
    return m;
}

float
QTable::maxAbsDifference(const QTable &a, const QTable &b)
{
    SWIFTRL_ASSERT(a.entryCount() == b.entryCount(),
                   "Q-table shape mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < a._values.size(); ++i)
        m = std::max(m, std::fabs(a._values[i] - b._values[i]));
    return m;
}

} // namespace swiftrl::rlcore
