#include "rlcore/types.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace swiftrl::rlcore {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

const char *
samplingName(Sampling s)
{
    switch (s) {
      case Sampling::Seq: return "SEQ";
      case Sampling::Ran: return "RAN";
      case Sampling::Str: return "STR";
    }
    SWIFTRL_PANIC("unknown sampling strategy");
}

Sampling
parseSampling(const std::string &name)
{
    const std::string n = lower(name);
    if (n == "seq")
        return Sampling::Seq;
    if (n == "ran")
        return Sampling::Ran;
    if (n == "str")
        return Sampling::Str;
    SWIFTRL_FATAL("unknown sampling strategy '", name,
                  "'; expected seq, ran, or str");
}

const char *
numericFormatName(NumericFormat f)
{
    switch (f) {
      case NumericFormat::Fp32: return "FP32";
      case NumericFormat::Int32: return "INT32";
      case NumericFormat::Int8: return "INT8";
    }
    SWIFTRL_PANIC("unknown numeric format");
}

NumericFormat
parseNumericFormat(const std::string &name)
{
    const std::string n = lower(name);
    if (n == "fp32")
        return NumericFormat::Fp32;
    if (n == "int32")
        return NumericFormat::Int32;
    if (n == "int8")
        return NumericFormat::Int8;
    SWIFTRL_FATAL("unknown numeric format '", name,
                  "'; expected fp32, int32, or int8");
}

} // namespace swiftrl::rlcore
