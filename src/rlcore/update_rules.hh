/**
 * @file
 * The Q-learning and SARSA update rules, written once and shared by
 * the CPU reference trainers and the PIM kernels.
 *
 * Every function is a template over an `Ops` provider that supplies
 * the arithmetic primitives. Two providers exist:
 *
 *  - HostOps (below): computes at native speed, charges nothing —
 *    the CPU reference implementation;
 *  - pimsim::KernelContext: computes the *identical* values while
 *    advancing the simulated DPU's cycle clock per the cost model.
 *
 * Because both providers execute the same expression tree in the same
 * order (including the LCG random streams), a single-core PIM run is
 * bit-identical to the CPU reference — a property the integration
 * tests assert. The INT32 rules reproduce the paper's fixed-point
 * scaling optimisation: constants and rewards pre-scaled by `scale`,
 * products widened to 64 bits, rescaled with truncating division.
 */

#ifndef SWIFTRL_RLCORE_UPDATE_RULES_HH
#define SWIFTRL_RLCORE_UPDATE_RULES_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/rng.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/**
 * Cost-free arithmetic provider for host-side reference training.
 * Mirrors the functional semantics of pimsim::KernelContext exactly
 * (including wrap-around integer casts and the LCG bounded-draw
 * reduction).
 */
struct HostOps
{
    common::Lcg32 lcg;

    float fadd(float a, float b) { return a + b; }
    float fsub(float a, float b) { return a - b; }
    float fmul(float a, float b) { return a * b; }
    bool fgt(float a, float b) { return a > b; }

    std::int32_t
    iadd(std::int32_t a, std::int32_t b)
    {
        return static_cast<std::int32_t>(
            static_cast<std::int64_t>(a) + static_cast<std::int64_t>(b));
    }

    std::int32_t
    isub(std::int32_t a, std::int32_t b)
    {
        return static_cast<std::int32_t>(
            static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b));
    }

    std::int64_t
    imul32(std::int32_t a, std::int32_t b)
    {
        return static_cast<std::int64_t>(a) *
               static_cast<std::int64_t>(b);
    }

    std::int32_t
    rescale(std::int64_t value, std::int32_t scale)
    {
        return static_cast<std::int32_t>(value / scale);
    }

    std::int64_t
    imulSmall(std::int32_t a, std::int32_t b)
    {
        return static_cast<std::int64_t>(a) *
               static_cast<std::int64_t>(b);
    }

    std::int32_t
    rescaleShift(std::int64_t value, int shift)
    {
        return static_cast<std::int32_t>(value >> shift);
    }

    bool igt(std::int32_t a, std::int32_t b) { return a > b; }

    float wramLoadF32(const float &slot) { return slot; }
    void wramStoreF32(float &slot, float v) { slot = v; }
    std::int32_t wramLoadI32(const std::int32_t &slot) { return slot; }
    void wramStoreI32(std::int32_t &slot, std::int32_t v) { slot = v; }

    void aluOps(std::uint64_t) {}
    void branch(std::uint64_t = 1) {}

    void lcgSeed(std::uint32_t seed) { lcg.seed(seed); }
    std::uint32_t lcgNext() { return lcg.next(); }

    std::uint32_t
    lcgNextBounded(std::uint32_t bound)
    {
        return lcg.nextBounded(bound);
    }
};

/** Scaled hyper-parameters for the INT32 fixed-point rules. */
struct ScaledHyper
{
    std::int32_t alphaScaled; ///< round(alpha * scale)
    std::int32_t gammaScaled; ///< round(gamma * scale)
    std::int32_t scale;       ///< the paper's constant, 10,000
    std::int32_t epsilonMilli; ///< round(epsilon * 1000), SARSA only

    /** Quantise hyper-parameters the way the PIM host code would. */
    static ScaledHyper
    fromHyper(const Hyper &h)
    {
        ScaledHyper s;
        s.scale = h.scale;
        s.alphaScaled = static_cast<std::int32_t>(
            static_cast<double>(h.alpha) * h.scale + 0.5);
        s.gammaScaled = static_cast<std::int32_t>(
            static_cast<double>(h.gamma) * h.scale + 0.5);
        s.epsilonMilli = static_cast<std::int32_t>(
            static_cast<double>(h.epsilon) * 1000.0 + 0.5);
        return s;
    }
};

/**
 * Power-of-two scaled hyper-parameters for the INT8 custom-multiply
 * path. The scale is 1 << shift; alpha and gamma must quantise into
 * 8-bit operands (the optimisation's applicability condition).
 */
struct ScaledHyperPow2
{
    std::int32_t alphaScaled; ///< round(alpha * 2^shift), <= 127
    std::int32_t gammaScaled; ///< round(gamma * 2^shift), <= 127
    int shift;                ///< scale exponent
    std::int32_t epsilonMilli;

    /** The scale value, 1 << shift. */
    std::int32_t scale() const { return 1 << shift; }

    static ScaledHyperPow2
    fromHyper(const Hyper &h)
    {
        SWIFTRL_ASSERT(h.int8Shift > 0 && h.int8Shift <= 7,
                       "int8Shift must keep scaled constants in 8 "
                       "bits");
        ScaledHyperPow2 s;
        s.shift = h.int8Shift;
        const double scale = static_cast<double>(1 << h.int8Shift);
        s.alphaScaled = static_cast<std::int32_t>(
            static_cast<double>(h.alpha) * scale + 0.5);
        s.gammaScaled = static_cast<std::int32_t>(
            static_cast<double>(h.gamma) * scale + 0.5);
        SWIFTRL_ASSERT(s.alphaScaled <= 127 && s.gammaScaled <= 127,
                       "scaled alpha/gamma exceed the 8-bit operand");
        s.epsilonMilli = static_cast<std::int32_t>(
            static_cast<double>(h.epsilon) * 1000.0 + 0.5);
        return s;
    }
};

// --- FP32 rules -------------------------------------------------------

/** max_a Q(row[a]) with priced loads and compares. */
template <typename Ops>
inline float
maxQFp32(Ops &ops, const float *row, ActionId num_actions)
{
    float best = ops.wramLoadF32(row[0]);
    for (ActionId a = 1; a < num_actions; ++a) {
        const float v =
            ops.wramLoadF32(row[static_cast<std::size_t>(a)]);
        if (ops.fgt(v, best))
            best = v;
        ops.branch();
    }
    return best;
}

/** argmax_a Q(row[a]), ties to the lowest index. */
template <typename Ops>
inline ActionId
argmaxFp32(Ops &ops, const float *row, ActionId num_actions)
{
    ActionId best = 0;
    float best_v = ops.wramLoadF32(row[0]);
    for (ActionId a = 1; a < num_actions; ++a) {
        const float v =
            ops.wramLoadF32(row[static_cast<std::size_t>(a)]);
        if (ops.fgt(v, best_v)) {
            best_v = v;
            best = a;
        }
        ops.branch();
    }
    return best;
}

/**
 * One tabular Q-learning update (Algorithm 1, line 12) in FP32:
 *   Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a))
 *
 * @param q row-major Q-table of num_actions columns.
 */
template <typename Ops>
inline void
qlearningUpdateFp32(Ops &ops, float *q, ActionId num_actions,
                    StateId s, ActionId a, float r, StateId s2,
                    bool terminal, float alpha, float gamma)
{
    // Row addressing: one multiply-free shift/add pair per row.
    ops.aluOps(2);
    float *row_s = q + static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(num_actions);
    const float *row_n = q + static_cast<std::size_t>(s2) *
                                 static_cast<std::size_t>(num_actions);

    float bootstrap = 0.0f;
    ops.branch();
    if (!terminal)
        bootstrap = maxQFp32(ops, row_n, num_actions);

    const float target = ops.fadd(r, ops.fmul(gamma, bootstrap));
    const float old_q =
        ops.wramLoadF32(row_s[static_cast<std::size_t>(a)]);
    const float delta = ops.fsub(target, old_q);
    const float new_q = ops.fadd(old_q, ops.fmul(alpha, delta));
    ops.wramStoreF32(row_s[static_cast<std::size_t>(a)], new_q);
}

/**
 * One SARSA update (Equation 1) in FP32. The next action a' is drawn
 * epsilon-greedily from Q(s', .) with the PIM-side LCG: the random
 * stream is part of the algorithm's definition here, so CPU and PIM
 * runs stay comparable.
 */
template <typename Ops>
inline void
sarsaUpdateFp32(Ops &ops, float *q, ActionId num_actions, StateId s,
                ActionId a, float r, StateId s2, bool terminal,
                float alpha, float gamma, std::int32_t epsilon_milli)
{
    ops.aluOps(2);
    float *row_s = q + static_cast<std::size_t>(s) *
                           static_cast<std::size_t>(num_actions);
    const float *row_n = q + static_cast<std::size_t>(s2) *
                                 static_cast<std::size_t>(num_actions);

    float bootstrap = 0.0f;
    ops.branch();
    if (!terminal) {
        // Epsilon-greedy next action via the custom LCG rand().
        ActionId a2;
        const auto draw = ops.lcgNextBounded(1000);
        ops.branch();
        if (static_cast<std::int32_t>(draw) < epsilon_milli) {
            a2 = static_cast<ActionId>(ops.lcgNextBounded(
                static_cast<std::uint32_t>(num_actions)));
        } else {
            a2 = argmaxFp32(ops, row_n, num_actions);
        }
        bootstrap =
            ops.wramLoadF32(row_n[static_cast<std::size_t>(a2)]);
    }

    const float target = ops.fadd(r, ops.fmul(gamma, bootstrap));
    const float old_q =
        ops.wramLoadF32(row_s[static_cast<std::size_t>(a)]);
    const float delta = ops.fsub(target, old_q);
    const float new_q = ops.fadd(old_q, ops.fmul(alpha, delta));
    ops.wramStoreF32(row_s[static_cast<std::size_t>(a)], new_q);
}

// --- INT32 fixed-point rules -------------------------------------------

/** max_a over a raw fixed-point row with native integer compares. */
template <typename Ops>
inline std::int32_t
maxQInt32(Ops &ops, const std::int32_t *row, ActionId num_actions)
{
    std::int32_t best = ops.wramLoadI32(row[0]);
    for (ActionId a = 1; a < num_actions; ++a) {
        const std::int32_t v =
            ops.wramLoadI32(row[static_cast<std::size_t>(a)]);
        if (ops.igt(v, best))
            best = v;
        ops.branch();
    }
    return best;
}

/** argmax_a over a raw fixed-point row, ties to the lowest index. */
template <typename Ops>
inline ActionId
argmaxInt32(Ops &ops, const std::int32_t *row, ActionId num_actions)
{
    ActionId best = 0;
    std::int32_t best_v = ops.wramLoadI32(row[0]);
    for (ActionId a = 1; a < num_actions; ++a) {
        const std::int32_t v =
            ops.wramLoadI32(row[static_cast<std::size_t>(a)]);
        if (ops.igt(v, best_v)) {
            best_v = v;
            best = a;
        }
        ops.branch();
    }
    return best;
}

/**
 * One Q-learning update in the paper's INT32 fixed-point arithmetic:
 * every operand lives pre-scaled by `scaled.scale`; the two products
 * (gamma * bootstrap and alpha * delta) widen to 64 bits and rescale
 * with truncating division.
 *
 * @param q row-major raw fixed-point Q-table.
 * @param r_scaled reward already scaled up on the host.
 */
template <typename Ops>
inline void
qlearningUpdateInt32(Ops &ops, std::int32_t *q, ActionId num_actions,
                     StateId s, ActionId a, std::int32_t r_scaled,
                     StateId s2, bool terminal,
                     const ScaledHyper &scaled)
{
    ops.aluOps(2);
    std::int32_t *row_s = q + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(num_actions);
    const std::int32_t *row_n =
        q + static_cast<std::size_t>(s2) *
                static_cast<std::size_t>(num_actions);

    std::int32_t bootstrap = 0;
    ops.branch();
    if (!terminal)
        bootstrap = maxQInt32(ops, row_n, num_actions);

    const std::int32_t discounted = ops.rescale(
        ops.imul32(scaled.gammaScaled, bootstrap), scaled.scale);
    const std::int32_t target = ops.iadd(r_scaled, discounted);
    const std::int32_t old_q =
        ops.wramLoadI32(row_s[static_cast<std::size_t>(a)]);
    const std::int32_t delta = ops.isub(target, old_q);
    const std::int32_t step = ops.rescale(
        ops.imul32(scaled.alphaScaled, delta), scaled.scale);
    ops.wramStoreI32(row_s[static_cast<std::size_t>(a)],
                     ops.iadd(old_q, step));
}

/** One SARSA update in INT32 fixed point (see FP32 variant). */
template <typename Ops>
inline void
sarsaUpdateInt32(Ops &ops, std::int32_t *q, ActionId num_actions,
                 StateId s, ActionId a, std::int32_t r_scaled,
                 StateId s2, bool terminal, const ScaledHyper &scaled)
{
    ops.aluOps(2);
    std::int32_t *row_s = q + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(num_actions);
    const std::int32_t *row_n =
        q + static_cast<std::size_t>(s2) *
                static_cast<std::size_t>(num_actions);

    std::int32_t bootstrap = 0;
    ops.branch();
    if (!terminal) {
        ActionId a2;
        const auto draw = ops.lcgNextBounded(1000);
        ops.branch();
        if (static_cast<std::int32_t>(draw) < scaled.epsilonMilli) {
            a2 = static_cast<ActionId>(ops.lcgNextBounded(
                static_cast<std::uint32_t>(num_actions)));
        } else {
            a2 = argmaxInt32(ops, row_n, num_actions);
        }
        bootstrap =
            ops.wramLoadI32(row_n[static_cast<std::size_t>(a2)]);
    }

    const std::int32_t discounted = ops.rescale(
        ops.imul32(scaled.gammaScaled, bootstrap), scaled.scale);
    const std::int32_t target = ops.iadd(r_scaled, discounted);
    const std::int32_t old_q =
        ops.wramLoadI32(row_s[static_cast<std::size_t>(a)]);
    const std::int32_t delta = ops.isub(target, old_q);
    const std::int32_t step = ops.rescale(
        ops.imul32(scaled.alphaScaled, delta), scaled.scale);
    ops.wramStoreI32(row_s[static_cast<std::size_t>(a)],
                     ops.iadd(old_q, step));
}

// --- INT8 custom-multiply rules (Sec. 3.2.1 optional optimisation) ----

/**
 * Q-learning update with the 8-bit-multiplier path: same fixed-point
 * structure as the INT32 rule, but the two products use the narrow
 * multiply (native 8-bit hardware) and the rescale is a single
 * arithmetic shift (power-of-two scale). Floor division in the shift
 * replaces the INT32 rule's truncation toward zero — an accepted
 * quantisation difference of the optimisation.
 */
template <typename Ops>
inline void
qlearningUpdateInt8(Ops &ops, std::int32_t *q, ActionId num_actions,
                    StateId s, ActionId a, std::int32_t r_scaled,
                    StateId s2, bool terminal,
                    const ScaledHyperPow2 &scaled)
{
    ops.aluOps(2);
    std::int32_t *row_s = q + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(num_actions);
    const std::int32_t *row_n =
        q + static_cast<std::size_t>(s2) *
                static_cast<std::size_t>(num_actions);

    std::int32_t bootstrap = 0;
    ops.branch();
    if (!terminal)
        bootstrap = maxQInt32(ops, row_n, num_actions);

    const std::int32_t discounted = ops.rescaleShift(
        ops.imulSmall(bootstrap, scaled.gammaScaled), scaled.shift);
    const std::int32_t target = ops.iadd(r_scaled, discounted);
    const std::int32_t old_q =
        ops.wramLoadI32(row_s[static_cast<std::size_t>(a)]);
    const std::int32_t delta = ops.isub(target, old_q);
    const std::int32_t step = ops.rescaleShift(
        ops.imulSmall(delta, scaled.alphaScaled), scaled.shift);
    ops.wramStoreI32(row_s[static_cast<std::size_t>(a)],
                     ops.iadd(old_q, step));
}

/** SARSA update with the 8-bit-multiplier path. */
template <typename Ops>
inline void
sarsaUpdateInt8(Ops &ops, std::int32_t *q, ActionId num_actions,
                StateId s, ActionId a, std::int32_t r_scaled,
                StateId s2, bool terminal,
                const ScaledHyperPow2 &scaled)
{
    ops.aluOps(2);
    std::int32_t *row_s = q + static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(num_actions);
    const std::int32_t *row_n =
        q + static_cast<std::size_t>(s2) *
                static_cast<std::size_t>(num_actions);

    std::int32_t bootstrap = 0;
    ops.branch();
    if (!terminal) {
        ActionId a2;
        const auto draw = ops.lcgNextBounded(1000);
        ops.branch();
        if (static_cast<std::int32_t>(draw) < scaled.epsilonMilli) {
            a2 = static_cast<ActionId>(ops.lcgNextBounded(
                static_cast<std::uint32_t>(num_actions)));
        } else {
            a2 = argmaxInt32(ops, row_n, num_actions);
        }
        bootstrap =
            ops.wramLoadI32(row_n[static_cast<std::size_t>(a2)]);
    }

    const std::int32_t discounted = ops.rescaleShift(
        ops.imulSmall(bootstrap, scaled.gammaScaled), scaled.shift);
    const std::int32_t target = ops.iadd(r_scaled, discounted);
    const std::int32_t old_q =
        ops.wramLoadI32(row_s[static_cast<std::size_t>(a)]);
    const std::int32_t delta = ops.isub(target, old_q);
    const std::int32_t step = ops.rescaleShift(
        ops.imulSmall(delta, scaled.alphaScaled), scaled.shift);
    ops.wramStoreI32(row_s[static_cast<std::size_t>(a)],
                     ops.iadd(old_q, step));
}

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_UPDATE_RULES_HH
