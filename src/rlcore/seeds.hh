/**
 * @file
 * Seed derivation: one experiment seed fans out into independent
 * per-core / per-agent / per-purpose streams. CPU reference trainers
 * and PIM kernels derive their LCG seeds identically so single-core
 * PIM runs are bit-equal to the reference.
 */

#ifndef SWIFTRL_RLCORE_SEEDS_HH
#define SWIFTRL_RLCORE_SEEDS_HH

#include <cstdint>

#include "common/rng.hh"

namespace swiftrl::rlcore {

/**
 * Derive the 32-bit LCG seed for stream @p stream of experiment
 * @p seed. Never returns 0 (a degenerate LCG state).
 */
inline std::uint32_t
deriveLcgSeed(std::uint64_t seed, std::uint64_t stream)
{
    common::SplitMix64 mix(seed ^ (stream * 0x9e3779b97f4a7c15ull + 1));
    const auto s = static_cast<std::uint32_t>(mix.next());
    return s == 0 ? 0x1234567u : s;
}

/**
 * Derive a full-width host-side seed for stream @p stream of
 * experiment @p seed — used where the consumer is a host RNG
 * (xorshift128+) rather than the 32-bit device LCG, e.g. one rollout
 * seed per collection block so blocks are independent of how many
 * actor threads execute them.
 */
inline std::uint64_t
deriveHostSeed(std::uint64_t seed, std::uint64_t stream)
{
    common::SplitMix64 mix(seed ^ (stream * 0x9e3779b97f4a7c15ull + 1));
    mix.next(); // decorrelate from the LCG derivation above
    return mix.next();
}

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_SEEDS_HH
