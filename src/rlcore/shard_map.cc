#include "rlcore/shard_map.hh"

#include <algorithm>

#include "common/logging.hh"

namespace swiftrl::rlcore {

ShardMap::ShardMap(StateId num_states, std::size_t num_shards)
    : _numStates(num_states), _numShards(num_shards),
      _rowsPerShard(0)
{
    const std::string reason = invalidReason(num_states, num_shards);
    if (!reason.empty())
        SWIFTRL_FATAL("invalid shard map: ", reason);
    const std::size_t ns = static_cast<std::size_t>(num_states);
    _rowsPerShard =
        static_cast<StateId>((ns + num_shards - 1) / num_shards);
}

std::string
ShardMap::invalidReason(StateId num_states, std::size_t num_shards)
{
    if (num_states <= 0)
        return "state space is empty";
    if (num_shards == 0)
        return "zero shards cannot own any state";
    const std::size_t ns = static_cast<std::size_t>(num_states);
    if (num_shards > ns)
        return "more shards (" + std::to_string(num_shards) +
               ") than states (" + std::to_string(ns) + ")";
    // Uniform padding must leave every shard at least one real row:
    // with rows = ceil(ns / shards), the last shard starts at
    // (shards - 1) * rows, which can reach past the table when ns is
    // just above a multiple of (shards - 1).
    const std::size_t rows = (ns + num_shards - 1) / num_shards;
    if ((num_shards - 1) * rows >= ns)
        return std::to_string(ns) + " states on " +
               std::to_string(num_shards) + " shards leaves shard " +
               std::to_string(num_shards - 1) +
               " without a real row; use a shard count that divides "
               "the state space more evenly";
    return "";
}

StateId
ShardMap::ownedRows(std::size_t shard) const
{
    SWIFTRL_ASSERT(shard < _numShards, "shard ", shard,
                   " out of range");
    const StateId first = firstState(shard);
    return std::min<StateId>(_rowsPerShard, _numStates - first);
}

} // namespace swiftrl::rlcore
