/**
 * @file
 * Experience-sampling walkers for the three strategies SwiftRL
 * evaluates (Sec. 3.2): SEQ (sequential pass), RAN (uniform random
 * draws), and STR (stride-based walk, default stride 4).
 *
 * One walker definition is shared by the CPU reference trainers and
 * the PIM kernels — the kernels supply a cycle-charged random source —
 * so the two implementations visit *identical* index sequences and can
 * be compared for exact functional equality in tests.
 */

#ifndef SWIFTRL_RLCORE_SAMPLING_HH
#define SWIFTRL_RLCORE_SAMPLING_HH

#include <cstddef>
#include <utility>

#include "common/logging.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/**
 * Stateful index generator over a chunk of @p n experiences.
 *
 * Per episode the trainer calls next() exactly n times. SEQ and STR
 * visit every index exactly once per episode (STR in stride-phase
 * order: 0, s, 2s, ..., then 1, s+1, ...); RAN draws uniformly with
 * replacement from the supplied random source.
 */
class SampleWalker
{
  public:
    /**
     * @param n chunk length (must be > 0).
     * @param strategy sampling strategy.
     * @param stride stride for Sampling::Str (clamped into [1, n]).
     */
    SampleWalker(std::size_t n, Sampling strategy, std::size_t stride)
        : _n(n), _strategy(strategy),
          _stride(stride == 0 ? 1 : (stride > n ? n : stride))
    {
        SWIFTRL_ASSERT(n > 0, "cannot sample an empty chunk");
        startEpisode();
    }

    /** Rewind the deterministic walks to the episode start. */
    void
    startEpisode()
    {
        _cursor = 0;
        _phase = 0;
    }

    /**
     * Produce the next sample index.
     *
     * @param rand_bounded callable (std::size_t bound) -> std::size_t
     *        returning a uniform draw in [0, bound); only invoked for
     *        Sampling::Ran, so deterministic strategies never consume
     *        (or pay for) random numbers.
     */
    template <typename RandBounded>
    std::size_t
    next(RandBounded &&rand_bounded)
    {
        switch (_strategy) {
          case Sampling::Seq: {
            const std::size_t idx = _cursor;
            _cursor = _cursor + 1 == _n ? 0 : _cursor + 1;
            return idx;
          }
          case Sampling::Str: {
            const std::size_t idx = _cursor;
            _cursor += _stride;
            if (_cursor >= _n) {
                _phase = _phase + 1 == _stride ? 0 : _phase + 1;
                _cursor = _phase;
            }
            return idx;
          }
          case Sampling::Ran:
            return std::forward<RandBounded>(rand_bounded)(_n);
        }
        SWIFTRL_PANIC("unknown sampling strategy");
    }

    /** Chunk length. */
    std::size_t chunkSize() const { return _n; }

    /** Effective stride after clamping. */
    std::size_t stride() const { return _stride; }

  private:
    std::size_t _n;
    Sampling _strategy;
    std::size_t _stride;
    std::size_t _cursor = 0;
    std::size_t _phase = 0;
};

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_SAMPLING_HH
