/**
 * @file
 * Explicit MDP models and exact solvers. Two sources of models:
 *
 *  - exact analytic dynamics (FrozenLake's slip distribution is a
 *    closed-form specification, so its MDP can be written down);
 *  - empirical dynamics estimated by counting an offline dataset's
 *    transitions — the "empirical MDP" that offline RL implicitly
 *    solves.
 *
 * Value iteration over either model gives the quality *upper bound*
 * the trained policies are measured against (EXPERIMENTS.md quotes
 * the slippery frozen lake's 0.728 optimum from here), and the gap
 * between the exact and empirical optima quantifies dataset-coverage
 * effects (why 50k random transitions train worse than 1M — see
 * tests/test_mdp.cc).
 */

#ifndef SWIFTRL_RLCORE_MDP_HH
#define SWIFTRL_RLCORE_MDP_HH

#include <vector>

#include "rlcore/dataset.hh"
#include "rlcore/qtable.hh"
#include "rlcore/types.hh"

namespace swiftrl::rlcore {

/** One possible outcome of taking an action in a state. */
struct Outcome
{
    double probability = 0.0;
    StateId nextState = 0;
    double reward = 0.0;
    bool terminal = false;
};

/** A finite MDP in explicit tabular form. */
class MdpModel
{
  public:
    MdpModel(StateId num_states, ActionId num_actions);

    StateId numStates() const { return _numStates; }
    ActionId numActions() const { return _numActions; }

    /** Outcomes of (s, a); empty when the pair was never observed. */
    const std::vector<Outcome> &outcomes(StateId s, ActionId a) const;

    /** Append one outcome to (s, a). */
    void addOutcome(StateId s, ActionId a, const Outcome &outcome);

    /** Sum of outcome probabilities for (s, a) (1.0 when modelled). */
    double probabilityMass(StateId s, ActionId a) const;

    /** Fraction of (s, a) pairs with at least one outcome. */
    double coverage() const;

  private:
    std::size_t index(StateId s, ActionId a) const;

    StateId _numStates;
    ActionId _numActions;
    std::vector<std::vector<Outcome>> _outcomes;
};

/**
 * The exact FrozenLake MDP (4x4 map, slippery or deterministic),
 * built from the environment's closed-form dynamics.
 */
MdpModel exactFrozenLakeModel(bool slippery);

/**
 * Maximum-likelihood empirical MDP from an offline dataset:
 * P(s'|s,a) and E[r|s,a,s'] from transition counts.
 */
MdpModel empiricalModel(const Dataset &data, StateId num_states,
                        ActionId num_actions);

/** Result of value iteration. */
struct ValueIterationResult
{
    QTable q;
    int iterations = 0;
    double residual = 0.0; ///< final max Bellman update magnitude

    ValueIterationResult() : q(1, 1) {}
};

/**
 * Value iteration to (near) fixed point.
 *
 * Unmodelled (s, a) pairs keep Q = 0 — the empirical-MDP convention.
 *
 * @param gamma discount factor.
 * @param max_iterations iteration cap.
 * @param tolerance stop when the max update falls below this.
 */
ValueIterationResult valueIteration(const MdpModel &model,
                                    double gamma,
                                    int max_iterations = 10000,
                                    double tolerance = 1e-10);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_MDP_HH
