/**
 * @file
 * Offline experience dataset: collection with a behaviour policy,
 * structure-of-arrays storage, and the packed binary layouts the PIM
 * kernels consume from MRAM.
 *
 * The packed record is 16 bytes — four 32-bit words (s, a, r, s') —
 * matching the DMA-friendly layout SwiftRL distributes across DRAM
 * banks. The terminal flag is packed into the top bit of the
 * next-state word — safe at any supported state count, since StateId
 * is a non-negative int32 (the procedural environments cap themselves
 * at INT32_MAX states, so bit 31 is never a state bit).
 */

#ifndef SWIFTRL_RLCORE_DATASET_HH
#define SWIFTRL_RLCORE_DATASET_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "rlcore/types.hh"
#include "rlenv/environment.hh"

namespace swiftrl::rlcore {

/** Packed 16-byte experience record (see file comment). */
struct PackedTransition
{
    std::int32_t state;
    std::int32_t action;
    /**
     * Reward bits: an IEEE-754 float for FP32 kernels, or a scaled
     * fixed-point int32 for INT32 kernels. Same width either way.
     */
    std::int32_t rewardBits;
    /** Next state with the terminal flag in bit 31. */
    std::uint32_t nextStateBits;

    /** Bit 31 of nextStateBits marks terminal transitions. */
    static constexpr std::uint32_t kTerminalBit = 0x8000'0000u;
};

static_assert(sizeof(PackedTransition) == 16,
              "PIM record layout must stay 16 bytes");

/**
 * Structure-of-arrays experience store. SoA keeps the host-side
 * trainers bandwidth-friendly and makes the roofline byte counting
 * exact.
 */
class Dataset
{
  public:
    Dataset() = default;

    /** Number of stored transitions. */
    std::size_t size() const { return _states.size(); }

    /** True when empty. */
    bool empty() const { return _states.empty(); }

    /** Append one transition. */
    void append(const Transition &t);

    /** Reassemble transition @p i. */
    Transition get(std::size_t i) const;

    /** Column access for the host trainers. */
    const std::vector<StateId> &states() const { return _states; }
    const std::vector<ActionId> &actions() const { return _actions; }
    const std::vector<float> &rewards() const { return _rewards; }
    const std::vector<StateId> &nextStates() const { return _nextStates; }
    const std::vector<std::uint8_t> &terminals() const
    {
        return _terminals;
    }

    /**
     * Pack transitions [first, first+count) in the FP32 MRAM layout.
     */
    std::vector<std::uint8_t> packFp32(std::size_t first,
                                       std::size_t count) const;

    /**
     * Pack transitions [first, first+count) in the INT32 MRAM layout:
     * rewards quantised with the given fixed-point @p scale (the
     * paper's scale-up-before-transfer step).
     */
    std::vector<std::uint8_t> packInt32(std::size_t first,
                                        std::size_t count,
                                        std::int32_t scale) const;

    /** Decode one packed record (used by kernels and tests). */
    static Transition unpackFp32(const PackedTransition &p);

    /** Decode one packed INT32 record back to real-valued reward. */
    static Transition unpackInt32(const PackedTransition &p,
                                  std::int32_t scale);

  private:
    std::vector<StateId> _states;
    std::vector<ActionId> _actions;
    std::vector<float> _rewards;
    std::vector<StateId> _nextStates;
    std::vector<std::uint8_t> _terminals;
};

/**
 * Collect an offline dataset by rolling out a uniform-random behaviour
 * policy (SwiftRL collects its frozen lake and taxi logs this way,
 * Sec. 3.2.1). Episodes reset automatically; collection stops at
 * exactly @p num_transitions tuples.
 *
 * @param env environment to roll out in (its state is consumed).
 * @param num_transitions tuples to log.
 * @param seed RNG seed for both the policy and the dynamics.
 */
Dataset collectRandomDataset(rlenv::Environment &env,
                             std::size_t num_transitions,
                             std::uint64_t seed);

} // namespace swiftrl::rlcore

#endif // SWIFTRL_RLCORE_DATASET_HH
