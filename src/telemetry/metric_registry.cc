#include "telemetry/metric_registry.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace swiftrl::telemetry {

namespace {

/** Prometheus metric-name grammar; label keys share it. */
bool
validName(std::string_view name)
{
    if (name.empty())
        return false;
    if (!(std::isalpha(static_cast<unsigned char>(name.front())) ||
          name.front() == '_'))
        return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_';
    });
}

} // namespace

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return {};
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        out += labels[i].second;
        out += '"';
    }
    out += '}';
    return out;
}

void
Histogram::observe(double v)
{
    if (!_live)
        return;
    // First bucket whose upper bound admits v; falls through to the
    // trailing +Inf bucket.
    std::size_t idx = 0;
    while (idx < _bounds.size() && v > _bounds[idx])
        ++idx;
    ++_counts[idx];
    ++_count;
    _sum += v;
}

Histogram::Histogram(bool live, std::vector<double> bounds)
    : _bounds(std::move(bounds)), _counts(_bounds.size() + 1, 0),
      _live(live)
{
}

/** Registry storage: exactly one of the metric members is set. */
struct MetricRegistry::Slot
{
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Series> series;
};

MetricRegistry::MetricRegistry(bool enabled) : _enabled(enabled)
{
    if (!this->enabled()) {
        _deadCounter.reset(new Counter(false));
        _deadGauge.reset(new Gauge(false));
        _deadHistogram.reset(new Histogram(false, {}));
        _deadSeries.reset(new Series(false));
    }
}

MetricRegistry::~MetricRegistry() = default;

MetricRegistry::Slot &
MetricRegistry::resolve(std::string_view name, Labels &&labels,
                        MetricKind kind, std::vector<double> *bounds)
{
    SWIFTRL_ASSERT(validName(name), "bad metric name: ", name);
    std::sort(labels.begin(), labels.end());
    for (const auto &[k, v] : labels) {
        SWIFTRL_ASSERT(validName(k), "bad label key on ", name,
                       ": ", k);
        (void)v;
    }
    const std::string key =
        std::string(name) + renderLabels(labels);

    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _slots.find(key);
    if (it != _slots.end()) {
        Slot &slot = *it->second;
        SWIFTRL_ASSERT(slot.kind == kind, "metric ", key,
                       " re-registered as a different kind");
        if (kind == MetricKind::Histogram) {
            SWIFTRL_ASSERT(*bounds == slot.histogram->bounds(),
                           "histogram ", key,
                           " re-registered with different buckets");
        }
        return slot;
    }

    auto slot = std::make_unique<Slot>();
    slot->name = std::string(name);
    slot->labels = std::move(labels);
    slot->kind = kind;
    switch (kind) {
    case MetricKind::Counter:
        slot->counter.reset(new Counter(true));
        break;
    case MetricKind::Gauge:
        slot->gauge.reset(new Gauge(true));
        break;
    case MetricKind::Histogram:
        SWIFTRL_ASSERT(!bounds->empty() &&
                           std::is_sorted(bounds->begin(),
                                          bounds->end()),
                       "histogram ", key,
                       " needs ascending, non-empty bucket bounds");
        slot->histogram.reset(
            new Histogram(true, std::move(*bounds)));
        break;
    case MetricKind::Series:
        slot->series.reset(new Series(true));
        break;
    }
    Slot &ref = *slot;
    _slots.emplace(key, std::move(slot));
    return ref;
}

Counter &
MetricRegistry::counter(std::string_view name, Labels labels)
{
    if (!enabled())
        return *_deadCounter;
    return *resolve(name, std::move(labels), MetricKind::Counter,
                    nullptr)
                .counter;
}

Gauge &
MetricRegistry::gauge(std::string_view name, Labels labels)
{
    if (!enabled())
        return *_deadGauge;
    return *resolve(name, std::move(labels), MetricKind::Gauge,
                    nullptr)
                .gauge;
}

Histogram &
MetricRegistry::histogram(std::string_view name,
                          std::vector<double> bounds, Labels labels)
{
    if (!enabled())
        return *_deadHistogram;
    return *resolve(name, std::move(labels), MetricKind::Histogram,
                    &bounds)
                .histogram;
}

Series &
MetricRegistry::series(std::string_view name, Labels labels)
{
    if (!enabled())
        return *_deadSeries;
    return *resolve(name, std::move(labels), MetricKind::Series,
                    nullptr)
                .series;
}

std::vector<MetricEntry>
MetricRegistry::entries() const
{
    std::vector<MetricEntry> out;
    std::lock_guard<std::mutex> lock(_mutex);
    out.reserve(_slots.size());
    // _slots is a std::map keyed by name+labels: iteration order is
    // the sorted order the determinism contract requires.
    for (const auto &[key, slot] : _slots) {
        (void)key;
        MetricEntry e;
        e.name = slot->name;
        e.labels = slot->labels;
        e.kind = slot->kind;
        e.counter = slot->counter.get();
        e.gauge = slot->gauge.get();
        e.histogram = slot->histogram.get();
        e.series = slot->series.get();
        out.push_back(std::move(e));
    }
    return out;
}

std::size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _slots.size();
}

} // namespace swiftrl::telemetry
