#include "telemetry/export.hh"

#include <fstream>
#include <ostream>

#include "common/json.hh"
#include "pimsim/op_class.hh"

namespace swiftrl::telemetry {

namespace {

using json::jsonEscape;

/** Shortest-round-trip double rendering (common/json.hh). */
std::string
num(double v)
{
    return json::jsonNumber(v);
}

/** `"labels":{...}` JSON object for one entry. */
std::string
jsonLabels(const Labels &labels)
{
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            out += ',';
        out += '"' + jsonEscape(labels[i].first) + "\":\"" +
               jsonEscape(labels[i].second) + '"';
    }
    out += '}';
    return out;
}

void
writeManifestJson(std::ostream &os, const RunManifest &m)
{
    const auto &fp = m.faultPlan;
    const auto &cm = m.costModel;
    os << "  \"manifest\": {\n"
       << "    \"tool\": \"" << jsonEscape(m.tool) << "\",\n"
       << "    \"mode\": \"" << jsonEscape(m.mode) << "\",\n"
       << "    \"environment\": \"" << jsonEscape(m.environment)
       << "\",\n"
       << "    \"workload\": \"" << jsonEscape(m.workload) << "\",\n"
       << "    \"cores\": " << m.cores << ",\n"
       << "    \"host_threads\": " << m.hostThreads << ",\n"
       << "    \"tasklets\": " << m.tasklets << ",\n"
       << "    \"episodes\": " << m.episodes << ",\n"
       << "    \"tau\": " << m.tau << ",\n"
       << "    \"transitions\": " << m.transitions << ",\n"
       << "    \"generations\": " << m.generations << ",\n"
       << "    \"actors\": " << m.actors << ",\n"
       << "    \"refresh_period\": " << m.refreshPeriod << ",\n"
       << "    \"weighted_aggregation\": "
       << (m.weightedAggregation ? "true" : "false") << ",\n"
       << "    \"alpha\": " << num(m.alpha) << ",\n"
       << "    \"gamma\": " << num(m.gamma) << ",\n"
       << "    \"epsilon\": " << num(m.epsilon) << ",\n"
       << "    \"collect_seed\": " << m.collectSeed << ",\n"
       << "    \"train_seed\": " << m.trainSeed << ",\n"
       << "    \"retry_limit\": " << m.retryLimit << ",\n"
       << "    \"fault_plan\": {\n"
       << "      \"seed\": " << fp.seed << ",\n"
       << "      \"transient_rate\": " << num(fp.transientRate)
       << ",\n"
       << "      \"corrupt_rate\": " << num(fp.corruptRate) << ",\n"
       << "      \"dropout_rate\": " << num(fp.dropoutRate) << ",\n"
       << "      \"scheduled\": " << fp.scheduled.size() << ",\n"
       << "      \"detect_sec\": " << num(fp.detectSec) << ",\n"
       << "      \"checksum_sec_per_byte\": "
       << num(fp.checksumSecPerByte) << "\n"
       << "    },\n"
       << "    \"cost_model\": {\n"
       << "      \"frequency_hz\": " << num(cm.frequencyHz) << ",\n"
       << "      \"pipeline_interval\": " << cm.pipelineInterval
       << ",\n"
       << "      \"mram_dma_fixed_cycles\": " << cm.mramDmaFixedCycles
       << ",\n"
       << "      \"mram_dma_cycles_per_byte\": "
       << num(cm.mramDmaCyclesPerByte) << ",\n"
       << "      \"mram_dma_max_bytes\": " << cm.mramDmaMaxBytes
       << ",\n"
       << "      \"mram_dma_align_bytes\": " << cm.mramDmaAlignBytes
       << ",\n"
       << "      \"instructions\": {";
    for (std::size_t i = 0; i < pimsim::kNumOpClasses; ++i) {
        if (i)
            os << ", ";
        os << '"'
           << pimsim::opClassName(static_cast<pimsim::OpClass>(i))
           << "\": " << cm.instructions[i];
    }
    os << "}\n"
       << "    }\n"
       << "  }";
}

} // namespace

void
writeMetricsJson(std::ostream &os, const RunManifest &manifest,
                 const MetricRegistry &registry)
{
    const auto entries = registry.entries();

    os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n";
    writeManifestJson(os, manifest);

    // Each kind in its own array, each array in registry (sorted)
    // order. A kind with no entries still emits an empty array so
    // consumers never need existence checks.
    const struct
    {
        const char *key;
        MetricKind kind;
    } sections[] = {
        {"counters", MetricKind::Counter},
        {"gauges", MetricKind::Gauge},
        {"histograms", MetricKind::Histogram},
        {"series", MetricKind::Series},
    };
    for (const auto &sec : sections) {
        os << ",\n  \"" << sec.key << "\": [";
        bool first = true;
        for (const auto &e : entries) {
            if (e.kind != sec.kind)
                continue;
            os << (first ? "\n" : ",\n") << "    {\"name\": \""
               << jsonEscape(e.name)
               << "\", \"labels\": " << jsonLabels(e.labels);
            switch (e.kind) {
            case MetricKind::Counter:
                os << ", \"value\": " << e.counter->value();
                break;
            case MetricKind::Gauge:
                os << ", \"value\": " << num(e.gauge->value());
                break;
            case MetricKind::Histogram: {
                const auto &h = *e.histogram;
                os << ", \"bounds\": [";
                for (std::size_t i = 0; i < h.bounds().size(); ++i)
                    os << (i ? ", " : "") << num(h.bounds()[i]);
                os << "], \"counts\": [";
                for (std::size_t i = 0; i < h.bucketCounts().size();
                     ++i)
                    os << (i ? ", " : "") << h.bucketCounts()[i];
                os << "], \"count\": " << h.count()
                   << ", \"sum\": " << num(h.sum());
                break;
            }
            case MetricKind::Series: {
                const auto &vals = e.series->values();
                os << ", \"values\": [";
                for (std::size_t i = 0; i < vals.size(); ++i)
                    os << (i ? ", " : "") << num(vals[i]);
                os << ']';
                break;
            }
            }
            os << '}';
            first = false;
        }
        os << (first ? "]" : "\n  ]");
    }
    os << "\n}\n";
}

bool
writeMetricsJson(const std::string &path, const RunManifest &manifest,
                 const MetricRegistry &registry)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeMetricsJson(out, manifest, registry);
    return static_cast<bool>(out);
}

void
writeMetricsPrometheus(std::ostream &os, const RunManifest &manifest,
                       const MetricRegistry &registry)
{
    os << "# " << kMetricsSchema << " (Prometheus text exposition)\n"
       << "# cost model: frequency_hz="
       << num(manifest.costModel.frequencyHz)
       << " pipeline_interval=" << manifest.costModel.pipelineInterval
       << "\n"
       << "# seeds: collect=" << manifest.collectSeed
       << " train=" << manifest.trainSeed
       << " fault=" << manifest.faultPlan.seed << "\n"
       << "# TYPE swiftrl_run_info gauge\n"
       << "swiftrl_run_info{tool=\"" << manifest.tool << "\",mode=\""
       << manifest.mode << "\",environment=\"" << manifest.environment
       << "\",workload=\"" << manifest.workload << "\",cores=\""
       << manifest.cores << "\"} 1\n";

    // Entries are sorted by name, so one # TYPE line ahead of each
    // name's first sample covers all its label variants.
    std::string last_name;
    for (const auto &e : registry.entries()) {
        if (e.name != last_name) {
            const char *type = "gauge";
            if (e.kind == MetricKind::Counter)
                type = "counter";
            else if (e.kind == MetricKind::Histogram)
                type = "histogram";
            os << "# TYPE " << e.name << ' ' << type << '\n';
            last_name = e.name;
        }
        switch (e.kind) {
        case MetricKind::Counter:
            os << e.name << renderLabels(e.labels) << ' '
               << e.counter->value() << '\n';
            break;
        case MetricKind::Gauge:
            os << e.name << renderLabels(e.labels) << ' '
               << num(e.gauge->value()) << '\n';
            break;
        case MetricKind::Histogram: {
            const auto &h = *e.histogram;
            // Prometheus buckets are cumulative and end at +Inf.
            Labels le = e.labels;
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                cum += h.bucketCounts()[i];
                le.emplace_back("le", num(h.bounds()[i]));
                os << e.name << "_bucket" << renderLabels(le) << ' '
                   << cum << '\n';
                le.pop_back();
            }
            le.emplace_back("le", "+Inf");
            os << e.name << "_bucket" << renderLabels(le) << ' '
               << h.count() << '\n';
            os << e.name << "_sum" << renderLabels(e.labels) << ' '
               << num(h.sum()) << '\n';
            os << e.name << "_count" << renderLabels(e.labels) << ' '
               << h.count() << '\n';
            break;
        }
        case MetricKind::Series: {
            // No Prometheus series type: expose the latest value.
            const auto &vals = e.series->values();
            os << e.name << renderLabels(e.labels) << ' '
               << (vals.empty() ? "0" : num(vals.back())) << '\n';
            break;
        }
        }
    }
}

bool
writeMetricsPrometheus(const std::string &path,
                       const RunManifest &manifest,
                       const MetricRegistry &registry)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeMetricsPrometheus(out, manifest, registry);
    return static_cast<bool>(out);
}

} // namespace swiftrl::telemetry
