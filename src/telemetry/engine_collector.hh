/**
 * @file
 * The engine-layer collector: a pimsim::StreamObserver that turns
 * each retired kernel launch into metrics. After every launch it
 * snapshots the system's DeviceCounters — the same one-source-of-
 * truth snapshot StatsReport and the perf bench read — and registers
 * the delta since the previous launch as instruction-mix counters
 * and MRAM DMA bytes, then folds the launch's per-core effective
 * cycles into a core-cycle histogram and a straggler-ratio
 * (max/mean over live cores) histogram.
 *
 * It also drops counter samples ("straggler-ratio",
 * "mram-dma-bytes", "live-cores") onto the stream's timeline, which
 * the Chrome trace exporter renders as counter tracks under the
 * command slices. Because the samples are only written while a
 * collector is attached, runs without telemetry produce byte-
 * identical trace files to builds without this subsystem.
 *
 * Everything here *reads* modelled state after the serial reduce;
 * nothing charges cycles or enqueues commands, so attaching a
 * collector cannot move a modelled number (asserted bit-for-bit by
 * tests/test_telemetry.cc).
 */

#ifndef SWIFTRL_TELEMETRY_ENGINE_COLLECTOR_HH
#define SWIFTRL_TELEMETRY_ENGINE_COLLECTOR_HH

#include <array>

#include "pimsim/command_stream.hh"
#include "pimsim/device_counters.hh"
#include "telemetry/metric_registry.hh"

namespace swiftrl::telemetry {

/** Per-launch engine metrics; attach with stream.setObserver(). */
class EngineCollector : public pimsim::StreamObserver
{
  public:
    /**
     * @param registry destination for the engine metrics.
     * @param system machine whose counters are snapshotted; the
     *        current counter state becomes the baseline, so a system
     *        reused across runs doesn't leak earlier work into this
     *        collector's deltas.
     */
    EngineCollector(MetricRegistry &registry,
                    const pimsim::PimSystem &system);

    void onLaunch(pimsim::CommandStream &stream,
                  const pimsim::LaunchStats &stats) override;

  private:
    MetricRegistry &_registry;

    /** Counter snapshot as of the previous observed launch. */
    pimsim::DeviceCounters _last;

    // Metric handles resolved once at construction: onLaunch is on
    // the per-round path and should not re-hash names.
    Counter &_launches;
    std::array<Counter *, pimsim::kNumOpClasses> _ops;
    Counter &_dmaBytes;
    Histogram &_coreCycles;
    Histogram &_stragglerRatio;
    Gauge &_liveCores;
};

} // namespace swiftrl::telemetry

#endif // SWIFTRL_TELEMETRY_ENGINE_COLLECTOR_HH
