#include "telemetry/engine_collector.hh"

#include "pimsim/op_class.hh"
#include "pimsim/pim_system.hh"

namespace swiftrl::telemetry {

namespace {

/**
 * Core-cycle buckets: decades from 1e3 to 1e9 cycles. A fig5-sized
 * round lands mid-range; the decade resolution is enough to spot a
 * workload whose per-launch cost changed by an order of magnitude.
 */
std::vector<double>
coreCycleBounds()
{
    return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

/**
 * Straggler-ratio buckets (max/mean core cycles per launch). 1.0 is
 * a perfectly balanced launch; the paper's chunked partitions sit
 * near 1, redistribution after dropouts pushes upward.
 */
std::vector<double>
stragglerBounds()
{
    return {1.0, 1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 3.0, 5.0, 10.0};
}

std::array<Counter *, pimsim::kNumOpClasses>
opCounters(MetricRegistry &registry)
{
    std::array<Counter *, pimsim::kNumOpClasses> out{};
    for (std::size_t i = 0; i < pimsim::kNumOpClasses; ++i) {
        out[i] = &registry.counter(
            "pim_ops_total",
            {{"op_class",
              pimsim::opClassName(static_cast<pimsim::OpClass>(i))}});
    }
    return out;
}

} // namespace

EngineCollector::EngineCollector(MetricRegistry &registry,
                                 const pimsim::PimSystem &system)
    : _registry(registry),
      _last(pimsim::DeviceCounters::fromSystem(system)),
      _launches(registry.counter("pim_launches_total")),
      _ops(opCounters(registry)),
      _dmaBytes(registry.counter("pim_mram_dma_bytes_total")),
      _coreCycles(
          registry.histogram("pim_launch_core_cycles",
                             coreCycleBounds())),
      _stragglerRatio(
          registry.histogram("pim_launch_straggler_ratio",
                             stragglerBounds())),
      _liveCores(registry.gauge("pim_live_cores"))
{
}

void
EngineCollector::onLaunch(pimsim::CommandStream &stream,
                          const pimsim::LaunchStats &stats)
{
    if constexpr (!kCompiledIn)
        return;

    _launches.add();

    // Instruction mix and DMA traffic: delta of the device counters
    // since the previous observed launch. Kernel work is the only
    // thing that moves them, so the delta is exactly this launch.
    const auto now =
        pimsim::DeviceCounters::fromSystem(stream.system());
    const auto delta = now.since(_last);
    _last = now;
    for (std::size_t i = 0; i < pimsim::kNumOpClasses; ++i)
        _ops[i]->add(delta.opCounts[i]);
    _dmaBytes.add(delta.dmaBytes);

    // Load-balance shape of this launch: per-core effective cycles
    // over the live cores, and the slowest core relative to the mean.
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    for (std::size_t i = 0; i < stats.effectiveCycles.size(); ++i) {
        if (stream.isDead(i))
            continue;
        const auto c = stats.effectiveCycles[i];
        _coreCycles.observe(static_cast<double>(c));
        total += c;
        if (c > max)
            max = c;
    }
    if (total > 0 && stats.liveCount > 0) {
        const double mean = static_cast<double>(total) /
                            static_cast<double>(stats.liveCount);
        const double ratio = static_cast<double>(max) / mean;
        _stragglerRatio.observe(ratio);
        stream.recordCounter("straggler-ratio", ratio);
    }
    _liveCores.set(static_cast<double>(stats.liveCount));

    stream.recordCounter("mram-dma-bytes",
                         static_cast<double>(_dmaBytes.value()));
    stream.recordCounter("live-cores",
                         static_cast<double>(stats.liveCount));
}

} // namespace swiftrl::telemetry
