#pragma once

// Span-structured causal tracing plus an always-on, bounded flight
// recorder.
//
// Every unit of work across the stack — fleet job admission / grant /
// preempt / resume, session rounds and checkpoint / restore, engine
// commands and batch cohorts, serving requests and batches — can open
// a Span carrying a propagated trace context: parent span id, name,
// category, clock domain, start/end time, outcome, and string
// attributes.  Like the rest of the telemetry subsystem the layer is
// observation-only: it never reads back into modelled state, and a
// traced run is bit-identical to an untraced one (tests/test_tracing).
//
// Clock domains.  Spans from different layers tick different clocks,
// and mixing them silently would make nesting checks meaningless, so
// each span names its domain:
//   "fleet"    — the fleet scheduler's discrete-event clock (seconds)
//   "modelled" — a command stream's modelled timeline (seconds)
//   "wall"     — host wall clock, seconds since process start
// tools/check_trace.py only enforces child-inside-parent nesting when
// the two spans share a clock.
//
// Cost model.  Span *retention* (the JSON dump) is off by default and
// enabled by --trace-spans; hot-path call sites (per-command engine
// spans, per-request serving spans) gate on tracingActive(), a single
// relaxed atomic load, so an untraced run pays nothing there.  Coarse
// lifecycle spans (fleet events, session rounds) are recorded
// unconditionally into the flight ring: a fixed-size mutex-guarded
// ring of short text events that costs a few hundred nanoseconds per
// event and gives SWIFTRL_FATAL / SWIFTRL_PANIC a causal trail to
// dump instead of a single log line.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swiftrl::telemetry {

/// A completed (or in-flight) span as retained by the tracer.
struct SpanRecord {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;  ///< 0 = root
    std::string name;          ///< e.g. "fleet.job", "session.round"
    std::string category;      ///< "fleet" | "session" | "engine" | "serving"
    std::string clock;         ///< "fleet" | "modelled" | "wall"
    double start = 0.0;        ///< seconds in the span's clock domain
    double end = 0.0;
    std::string outcome;       ///< "ok" | "retried" | "faulted" | "preempted" | ...
    std::vector<std::pair<std::string, std::string>> attrs;
};

/// Handle for an open span.  Movable value type; finish() submits the
/// record to the tracer.  Destroying an unfinished span drops it
/// silently (callers that need a guaranteed outcome — e.g. session
/// teardown under preemption — finish explicitly in their destructor).
class Span {
public:
    Span() = default;
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    Span(Span &&other) noexcept { *this = std::move(other); }
    Span &operator=(Span &&other) noexcept;
    ~Span() = default;

    /// Attach a string attribute. No-op on an inactive span.
    Span &attr(std::string_view key, std::string_view value);
    /// Numeric convenience overloads (formatted as decimal strings).
    Span &attr(std::string_view key, std::int64_t value);
    Span &attr(std::string_view key, std::uint64_t value);
    Span &attr(std::string_view key, int value);

    /// Close the span at `end` (same clock domain as its start) and
    /// submit it. Idempotent: second call is a no-op.
    void finish(double end, std::string_view outcome = "ok");

    [[nodiscard]] std::uint64_t id() const { return _record.id; }
    [[nodiscard]] bool active() const { return _active; }

private:
    friend class Tracer;
    SpanRecord _record;
    bool _active = false;
};

/// One entry in the flight ring. Text is bounded so the ring never
/// allocates after construction.
struct FlightEvent {
    std::uint64_t seq = 0;  ///< strictly increasing, never resets
    double t = 0.0;         ///< wall seconds since process start
    char text[160] = {};
};

/// Process-wide tracer: span factory, retained-span store, and the
/// always-on flight ring. All methods are thread-safe.
class Tracer {
public:
    static constexpr std::size_t kFlightCapacity = 256;

    Tracer();

    /// Open a span. Always assigns an id and records a flight-ring
    /// breadcrumb; the full SpanRecord is retained only while export
    /// is enabled.
    Span begin(std::string_view name, std::string_view category,
               std::string_view clock, double start, std::uint64_t parent = 0);

    /// Turn span retention on/off (`--trace-spans`). Off by default.
    void enableExport(bool on);
    [[nodiscard]] bool exportEnabled() const;

    /// Append a free-text breadcrumb to the flight ring.
    void note(std::string_view text);

    /// Write the retained spans as self-describing JSON
    /// ({"schema":"swiftrl-trace-v1","spans":[...]}).
    /// Returns false if the file could not be written.
    bool writeSpansJson(const std::string &path) const;

    /// Retained modelled-clock spans serialized as Chrome trace-event
    /// objects (pid 1), ready to splice into Timeline::exportChromeTrace
    /// via its extra-events overload. Empty string when none.
    [[nodiscard]] std::string chromeSpanEvents() const;

    /// Flight-ring dump, oldest first.
    void dumpFlightText(std::ostream &out) const;
    bool writeFlightJson(const std::string &path) const;

    /// When set, the crash hook (SWIFTRL_FATAL / SWIFTRL_PANIC) also
    /// writes the flight ring as JSON to this path.
    void setCrashDumpPath(std::string path);
    [[nodiscard]] std::string crashDumpPath() const;

    /// Snapshot of retained spans (test helper).
    [[nodiscard]] std::vector<SpanRecord> snapshot() const;

    /// Drop retained spans and ring contents; keeps the id counter so
    /// span ids stay unique across a process. Test helper.
    void resetForTest();

private:
    void submit(SpanRecord record);
    friend class Span;

    struct Impl;
    Impl *_impl;  // leaked singleton state; never destroyed
};

/// The process-wide tracer instance.
Tracer &tracer();

/// True when span retention is enabled. Single relaxed atomic load —
/// the hot-path gate for per-command / per-request spans.
bool tracingActive();

/// Ambient parent span id for the current thread (0 = none).
std::uint64_t currentSpanParent();

/// RAII push/pop of the ambient parent span id; lets a session round
/// become the parent of the engine spans its stream emits without
/// threading ids through every call.
class ScopedSpanParent {
public:
    explicit ScopedSpanParent(std::uint64_t id);
    ~ScopedSpanParent();
    ScopedSpanParent(const ScopedSpanParent &) = delete;
    ScopedSpanParent &operator=(const ScopedSpanParent &) = delete;

private:
    std::uint64_t _saved;
};

}  // namespace swiftrl::telemetry
