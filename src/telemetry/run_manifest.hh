/**
 * @file
 * The run manifest: the answer to "what exactly produced these
 * numbers?". Every metrics export embeds one, so a metrics file is
 * self-describing — workload identity, machine shape, every seed,
 * the fault plan, and the cost-model constants the modelled numbers
 * were priced with. Two metrics files whose manifests differ are not
 * comparable, and tools/bench_compare.py refuses to diff them.
 *
 * The manifest deliberately embeds the pimsim config structs
 * (DpuCostModel, FaultPlan) instead of copying fields out one by
 * one: the serialized provenance can then never drift from what the
 * simulator actually used.
 */

#ifndef SWIFTRL_TELEMETRY_RUN_MANIFEST_HH
#define SWIFTRL_TELEMETRY_RUN_MANIFEST_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "pimsim/cost_model.hh"
#include "pimsim/fault_plan.hh"

namespace swiftrl::pimsim {
class PimSystem;
}

namespace swiftrl::telemetry {

/** Provenance record embedded in every metrics export. */
struct RunManifest
{
    /** Producing binary ("swiftrl_cli", a bench name, a test). */
    std::string tool;

    /** "offline", "streaming", or "multi-agent". */
    std::string mode;

    /** Environment name ("frozenlake", "taxi"). */
    std::string environment;

    /** Canonical workload variant name (algo/sampling/format). */
    std::string workload;

    // --- machine shape -------------------------------------------

    /** PIM cores the run was configured with. */
    std::size_t cores = 0;

    /**
     * Host-pool width actually used. Recorded for completeness
     * only: the determinism contract makes every modelled number
     * independent of it.
     */
    unsigned hostThreads = 0;

    /** Tasklets per core. */
    unsigned tasklets = 1;

    // --- training shape ------------------------------------------

    /** Episodes per core (per generation in streaming mode). */
    int episodes = 0;

    /** Synchronisation period. */
    int tau = 0;

    /** Dataset transitions (per generation in streaming mode). */
    std::size_t transitions = 0;

    /** Streaming only; 0 in offline mode. */
    int generations = 0;

    /** Streaming only; 0 in offline mode. */
    unsigned actors = 0;

    /** Streaming only; 0 in offline mode. */
    int refreshPeriod = 0;

    /** Visit-count-weighted synchronisation average in use. */
    bool weightedAggregation = false;

    // --- hyper-parameters and seeds ------------------------------

    double alpha = 0.0;
    double gamma = 0.0;
    double epsilon = 0.0;

    /** Seed of the offline dataset collection / streaming actors. */
    std::uint64_t collectSeed = 0;

    /** Seed driving on-core sampling (rlcore::Hyper::seed). */
    std::uint64_t trainSeed = 0;

    // --- failure model -------------------------------------------

    /** The full fault plan, including its seed (inert by default). */
    pimsim::FaultPlan faultPlan;

    /** Retry budget the trainer recovered with. */
    int retryLimit = 0;

    // --- cost-model provenance -----------------------------------

    /** The per-core cost constants every cycle was priced with. */
    pimsim::DpuCostModel costModel;

    /**
     * Copy machine shape, cost model, and fault plan out of a live
     * system's config. Workload/training fields remain the caller's
     * job — the system does not know them.
     */
    static RunManifest fromSystem(const pimsim::PimSystem &system);
};

} // namespace swiftrl::telemetry

#endif // SWIFTRL_TELEMETRY_RUN_MANIFEST_HH
