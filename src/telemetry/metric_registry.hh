/**
 * @file
 * The metric registry at the heart of the telemetry subsystem: a
 * process-local collection of named, optionally labelled metrics —
 * counters, gauges, fixed-bucket histograms, and per-round series —
 * that collectors at every layer (engine, trainers, CLI) write into
 * and the exporters (JSON, Prometheus text, Chrome-trace counter
 * tracks) read out of.
 *
 * Design rules, in order of importance:
 *
 *  1. *Observation never moves a modelled number.* Metrics are
 *     derived from modelled state (cycle clocks, op counters,
 *     timeline events) strictly after the fact; nothing in this
 *     subsystem charges cycles or enqueues commands. A run with
 *     telemetry attached is bit-identical to one without.
 *  2. *Deterministic export.* Metrics iterate in sorted (name,
 *     labels) order and doubles render shortest-round-trip, so two
 *     runs of the same workload produce byte-identical exports for
 *     any host-pool size — asserted by tests/test_telemetry.cc.
 *  3. *Zero cost when off.* A disabled registry hands out inert
 *     metrics whose updates are a single predictable branch, and the
 *     collectors are never attached when no registry is configured
 *     (the common case: a null `metrics` pointer in the trainer
 *     configs). Building with -DSWIFTRL_DISABLE_TELEMETRY=ON
 *     additionally compiles every collector body out
 *     (kCompiledIn == false) for belt-and-braces zero cost.
 *
 * Threading: metric *creation* (counter()/gauge()/...) is mutex-
 * guarded and may race freely. Metric *updates* are single-writer:
 * every collector runs on the command-stream enqueue thread (after
 * the host pool joins), which is the only place modelled state is
 * coherent anyway. Counter::add is atomic regardless, as the
 * cheapest insurance against future multi-stream use.
 */

#ifndef SWIFTRL_TELEMETRY_METRIC_REGISTRY_HH
#define SWIFTRL_TELEMETRY_METRIC_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swiftrl::telemetry {

/** True unless the build compiles telemetry out entirely. */
#ifdef SWIFTRL_DISABLE_TELEMETRY
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/**
 * Label set of one metric: sorted, unique key/value pairs. Two
 * metrics with the same name and different labels are distinct
 * series ("pim_ops_total{op_class=fp32_add}" vs "...{op_class=
 * int_alu}").
 */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotone event count (retired ops, DMA bytes, launches). */
class Counter
{
  public:
    /** Add @p n events; no-op on an inert (disabled) metric. */
    void
    add(std::uint64_t n = 1)
    {
        if (_live)
            _value.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current count. */
    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricRegistry;
    explicit Counter(bool live) : _live(live) {}
    std::atomic<std::uint64_t> _value{0};
    const bool _live;
};

/** Last-value metric (live cores, evaluation reward, ε). */
class Gauge
{
  public:
    /** Overwrite the value; no-op on an inert metric. */
    void
    set(double v)
    {
        if (_live)
            _value = v;
    }

    /** Current value. */
    double value() const { return _value; }

  private:
    friend class MetricRegistry;
    explicit Gauge(bool live) : _live(live) {}
    double _value = 0.0;
    const bool _live;
};

/**
 * Fixed-bucket histogram. Buckets are ascending upper bounds; an
 * implicit +Inf bucket catches the rest, so bucketCounts() has
 * bounds().size() + 1 entries. Exported cumulatively in Prometheus
 * convention (le="<bound>").
 */
class Histogram
{
  public:
    /** Record @p v into its bucket; no-op on an inert metric. */
    void observe(double v);

    /** Ascending upper bounds this histogram was created with. */
    const std::vector<double> &bounds() const { return _bounds; }

    /** Per-bucket (non-cumulative) counts; last entry is +Inf. */
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return _counts;
    }

    /** Total observations. */
    std::uint64_t count() const { return _count; }

    /** Sum of observed values. */
    double sum() const { return _sum; }

  private:
    friend class MetricRegistry;
    Histogram(bool live, std::vector<double> bounds);
    std::vector<double> _bounds;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    const bool _live;
};

/**
 * Append-only value sequence, one entry per round/generation/launch —
 * how per-generation RL metrics stay inspectable individually instead
 * of being squashed into a distribution. JSON export carries the full
 * sequence; Prometheus (which has no series type) exports the last
 * value as a gauge.
 */
class Series
{
  public:
    /** Append one value; no-op on an inert metric. */
    void
    append(double v)
    {
        if (_live)
            _values.push_back(v);
    }

    /** All values, in append order. */
    const std::vector<double> &values() const { return _values; }

  private:
    friend class MetricRegistry;
    explicit Series(bool live) : _live(live) {}
    std::vector<double> _values;
    const bool _live;
};

/** The kinds a registry entry can have (export dispatch). */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
    Series,
};

/** One registered metric, resolved for export. */
struct MetricEntry
{
    std::string name;
    Labels labels;
    MetricKind kind;
    const Counter *counter = nullptr;
    const Gauge *gauge = nullptr;
    const Histogram *histogram = nullptr;
    const Series *series = nullptr;
};

/** Process-local metric collection. See file comment. */
class MetricRegistry
{
  public:
    /**
     * @param enabled false builds a disabled registry: lookups hand
     *        out inert metrics, updates no-op, exports are empty.
     */
    explicit MetricRegistry(bool enabled = true);

    ~MetricRegistry();

    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** False when the registry ignores all updates. */
    bool enabled() const { return _enabled && kCompiledIn; }

    /**
     * Find-or-create the counter (name, labels). Metric names must
     * match Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*); fatal
     * otherwise. Re-requesting an existing (name, labels) returns
     * the same object; requesting it as a different kind is fatal.
     */
    Counter &counter(std::string_view name, Labels labels = {});

    /** Find-or-create the gauge (name, labels). */
    Gauge &gauge(std::string_view name, Labels labels = {});

    /**
     * Find-or-create the histogram (name, labels) with @p bounds
     * (ascending, non-empty; fatal otherwise). Bounds are fixed at
     * creation; re-requesting with different bounds is fatal — the
     * bucketing of a metric is part of its identity.
     */
    Histogram &histogram(std::string_view name,
                         std::vector<double> bounds,
                         Labels labels = {});

    /** Find-or-create the series (name, labels). */
    Series &series(std::string_view name, Labels labels = {});

    /**
     * Snapshot of all registered metrics in sorted (name, labels)
     * order — the deterministic iteration order every exporter uses.
     * Empty for a disabled registry.
     */
    std::vector<MetricEntry> entries() const;

    /** Number of registered metrics (0 when disabled). */
    std::size_t size() const;

  private:
    struct Slot;

    /** Find-or-create the slot for (name, labels, kind). */
    Slot &resolve(std::string_view name, Labels &&labels,
                  MetricKind kind, std::vector<double> *bounds);

    const bool _enabled;

    mutable std::mutex _mutex;

    /** Keyed by name + rendered labels for deterministic order. */
    std::map<std::string, std::unique_ptr<Slot>> _slots;

    /** Shared inert instances a disabled registry hands out. */
    std::unique_ptr<Counter> _deadCounter;
    std::unique_ptr<Gauge> _deadGauge;
    std::unique_ptr<Histogram> _deadHistogram;
    std::unique_ptr<Series> _deadSeries;
};

/**
 * Render a label set in its canonical form: `{k1="v1",k2="v2"}`,
 * sorted by key; empty string for no labels. Doubles as the
 * registry's identity key and the Prometheus label syntax.
 */
std::string renderLabels(const Labels &labels);

} // namespace swiftrl::telemetry

#endif // SWIFTRL_TELEMETRY_METRIC_REGISTRY_HH
