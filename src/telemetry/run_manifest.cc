#include "telemetry/run_manifest.hh"

#include "pimsim/pim_system.hh"

namespace swiftrl::telemetry {

RunManifest
RunManifest::fromSystem(const pimsim::PimSystem &system)
{
    RunManifest m;
    m.cores = system.numDpus();
    m.hostThreads = system.hostThreadCount();
    m.faultPlan = system.config().faultPlan;
    m.costModel = system.config().costModel;
    return m;
}

} // namespace swiftrl::telemetry
