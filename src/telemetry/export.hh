/**
 * @file
 * Metric serialization: one JSON document (machine-diffable, the
 * format tools/bench_compare.py and tools/check_metrics.py consume)
 * and one Prometheus text-format exposition (scrapeable / pushable
 * as-is). Both embed the RunManifest so a metrics file carries its
 * own provenance, both iterate the registry in its sorted order, and
 * both print doubles at max_digits10 — two identical runs produce
 * byte-identical files regardless of host-pool size.
 *
 * Schema (JSON): docs/OBSERVABILITY.md documents every field; the
 * top-level "schema" key is "swiftrl-metrics-v1" and is bumped on
 * any incompatible change.
 *
 * Prometheus notes: the manifest becomes a `swiftrl_run_info` gauge
 * (value 1, provenance in labels — the standard *_info idiom) plus
 * comment lines for the numeric config. Series metrics, which
 * Prometheus has no type for, export their *last* value as a gauge;
 * the JSON document carries the full sequence.
 */

#ifndef SWIFTRL_TELEMETRY_EXPORT_HH
#define SWIFTRL_TELEMETRY_EXPORT_HH

#include <iosfwd>
#include <string>

#include "telemetry/metric_registry.hh"
#include "telemetry/run_manifest.hh"

namespace swiftrl::telemetry {

/** Current JSON schema identifier. */
inline constexpr const char *kMetricsSchema = "swiftrl-metrics-v1";

/** Serialize manifest + registry as one JSON document to @p os. */
void writeMetricsJson(std::ostream &os, const RunManifest &manifest,
                      const MetricRegistry &registry);

/** As above, to @p path. @return false when the file can't open. */
bool writeMetricsJson(const std::string &path,
                      const RunManifest &manifest,
                      const MetricRegistry &registry);

/** Serialize in Prometheus text exposition format to @p os. */
void writeMetricsPrometheus(std::ostream &os,
                            const RunManifest &manifest,
                            const MetricRegistry &registry);

/** As above, to @p path. @return false when the file can't open. */
bool writeMetricsPrometheus(const std::string &path,
                            const RunManifest &manifest,
                            const MetricRegistry &registry);

} // namespace swiftrl::telemetry

#endif // SWIFTRL_TELEMETRY_EXPORT_HH
