#include "telemetry/tracing.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"

namespace swiftrl::telemetry {

namespace {

// Span retention flag, readable without touching the tracer singleton
// so the hot-path gate is one relaxed load.
std::atomic<bool> g_exportEnabled{false};

thread_local std::uint64_t t_ambientParent = 0;

void appendAttr(SpanRecord &record, std::string_view key,
                std::string_view value)
{
    record.attrs.emplace_back(std::string(key), std::string(value));
}

}  // namespace

struct Tracer::Impl {
    std::atomic<std::uint64_t> nextId{1};

    mutable std::mutex spansMutex;
    std::vector<SpanRecord> spans;

    // Flight ring. Guarded by a plain mutex rather than a lock-free
    // scheme: slots are 176 bytes so a CAS ring would tear, and the
    // TSan CI job keeps us honest. The critical section is a bounded
    // memcpy — "lock-light" in the sense that matters.
    mutable std::mutex flightMutex;
    std::vector<FlightEvent> ring{std::vector<FlightEvent>(kFlightCapacity)};
    std::uint64_t flightSeq = 0;  // next sequence number to assign

    mutable std::mutex crashPathMutex;
    std::string crashPath;
};

Tracer::Tracer() : _impl(new Impl) {}

Span &Span::operator=(Span &&other) noexcept
{
    if (this != &other) {
        _record = std::move(other._record);
        _active = other._active;
        other._active = false;
    }
    return *this;
}

Span &Span::attr(std::string_view key, std::string_view value)
{
    if (_active)
        appendAttr(_record, key, value);
    return *this;
}

Span &Span::attr(std::string_view key, std::int64_t value)
{
    return attr(key, std::string_view(std::to_string(value)));
}

Span &Span::attr(std::string_view key, std::uint64_t value)
{
    return attr(key, std::string_view(std::to_string(value)));
}

Span &Span::attr(std::string_view key, int value)
{
    return attr(key, static_cast<std::int64_t>(value));
}

void Span::finish(double end, std::string_view outcome)
{
    if (!_active)
        return;
    _active = false;
    _record.end = end;
    _record.outcome.assign(outcome.data(), outcome.size());
    tracer().submit(std::move(_record));
}

Span Tracer::begin(std::string_view name, std::string_view category,
                   std::string_view clock, double start, std::uint64_t parent)
{
    Span span;
    span._record.id = _impl->nextId.fetch_add(1, std::memory_order_relaxed);
    span._record.parent = parent;
    span._record.name.assign(name.data(), name.size());
    span._record.category.assign(category.data(), category.size());
    span._record.clock.assign(clock.data(), clock.size());
    span._record.start = start;
    span._active = true;
    return span;
}

void Tracer::enableExport(bool on)
{
    g_exportEnabled.store(on, std::memory_order_relaxed);
}

bool Tracer::exportEnabled() const
{
    return g_exportEnabled.load(std::memory_order_relaxed);
}

void Tracer::submit(SpanRecord record)
{
    {
        // Breadcrumb for the always-on flight ring; bounded snprintf,
        // no allocation.
        char text[sizeof(FlightEvent{}.text)];
        std::snprintf(text, sizeof(text), "span %s [%s] #%llu<-#%llu %s",
                      record.name.c_str(), record.category.c_str(),
                      static_cast<unsigned long long>(record.id),
                      static_cast<unsigned long long>(record.parent),
                      record.outcome.c_str());
        note(text);
    }
    if (!exportEnabled())
        return;
    std::lock_guard<std::mutex> lock(_impl->spansMutex);
    _impl->spans.push_back(std::move(record));
}

void Tracer::note(std::string_view text)
{
    std::lock_guard<std::mutex> lock(_impl->flightMutex);
    FlightEvent &slot = _impl->ring[_impl->flightSeq % kFlightCapacity];
    slot.seq = _impl->flightSeq++;
    // Stamped inside the mutex so t is non-decreasing in seq order.
    slot.t = common::monotonicSeconds();
    const std::size_t n = std::min(text.size(), sizeof(slot.text) - 1);
    std::memcpy(slot.text, text.data(), n);
    slot.text[n] = '\0';
}

namespace {

void writeSpan(std::ostream &out, const SpanRecord &s)
{
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent << ",\"name\":\""
        << json::jsonEscape(s.name) << "\",\"category\":\""
        << json::jsonEscape(s.category) << "\",\"clock\":\""
        << json::jsonEscape(s.clock)
        << "\",\"start\":" << json::jsonNumber(s.start)
        << ",\"end\":" << json::jsonNumber(s.end) << ",\"outcome\":\""
        << json::jsonEscape(s.outcome) << "\",\"attrs\":{";
    bool first = true;
    for (const auto &[key, value] : s.attrs) {
        if (!first)
            out << ",";
        first = false;
        out << "\"" << json::jsonEscape(key) << "\":\""
            << json::jsonEscape(value) << "\"";
    }
    out << "}}";
}

}  // namespace

bool Tracer::writeSpansJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    std::vector<SpanRecord> spans = snapshot();
    out << "{\"schema\":\"swiftrl-trace-v1\",\"spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        out << (i ? ",\n" : "\n");
        writeSpan(out, spans[i]);
    }
    out << "\n]}\n";
    return static_cast<bool>(out);
}

std::string Tracer::chromeSpanEvents() const
{
    std::vector<SpanRecord> spans = snapshot();
    std::string out;
    for (const SpanRecord &s : spans) {
        if (s.clock != "modelled")
            continue;
        // Chrome "X" slice on pid 1 (the engine timeline exports on
        // pid 0), microsecond timestamps like Timeline's exporter.
        out += ",\n{\"name\":\"" + json::jsonEscape(s.name) +
               "\",\"cat\":\"" + json::jsonEscape(s.category) +
               "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" +
               json::jsonNumber(s.start * 1e6) + ",\"dur\":" +
               json::jsonNumber((s.end - s.start) * 1e6) +
               ",\"args\":{\"id\":\"" + std::to_string(s.id) +
               "\",\"parent\":\"" + std::to_string(s.parent) +
               "\",\"outcome\":\"" + json::jsonEscape(s.outcome) + "\"";
        for (const auto &[key, value] : s.attrs)
            out += ",\"" + json::jsonEscape(key) + "\":\"" +
                   json::jsonEscape(value) + "\"";
        out += "}}";
    }
    return out;
}

namespace {

std::vector<FlightEvent> orderedRing(const std::vector<FlightEvent> &ring,
                                     std::uint64_t nextSeq)
{
    std::vector<FlightEvent> out;
    out.reserve(ring.size());
    const std::uint64_t count =
        std::min<std::uint64_t>(nextSeq, ring.size());
    for (std::uint64_t seq = nextSeq - count; seq < nextSeq; ++seq)
        out.push_back(ring[seq % ring.size()]);
    return out;
}

}  // namespace

void Tracer::dumpFlightText(std::ostream &out) const
{
    std::vector<FlightEvent> events;
    {
        std::lock_guard<std::mutex> lock(_impl->flightMutex);
        events = orderedRing(_impl->ring, _impl->flightSeq);
    }
    out << "=== flight recorder (" << events.size() << " events, ring "
        << kFlightCapacity << ") ===\n";
    char line[224];
    for (const FlightEvent &e : events) {
        std::snprintf(line, sizeof(line), "  #%llu [%.6f] %s\n",
                      static_cast<unsigned long long>(e.seq), e.t, e.text);
        out << line;
    }
    out << "=== end flight recorder ===\n";
}

bool Tracer::writeFlightJson(const std::string &path) const
{
    std::vector<FlightEvent> events;
    {
        std::lock_guard<std::mutex> lock(_impl->flightMutex);
        events = orderedRing(_impl->ring, _impl->flightSeq);
    }
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\"schema\":\"swiftrl-flight-v1\",\"events\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        out << (i ? ",\n" : "\n");
        out << "{\"seq\":" << events[i].seq
            << ",\"t\":" << json::jsonNumber(events[i].t) << ",\"text\":\""
            << json::jsonEscape(events[i].text) << "\"}";
    }
    out << "\n]}\n";
    return static_cast<bool>(out);
}

void Tracer::setCrashDumpPath(std::string path)
{
    std::lock_guard<std::mutex> lock(_impl->crashPathMutex);
    _impl->crashPath = std::move(path);
}

std::string Tracer::crashDumpPath() const
{
    std::lock_guard<std::mutex> lock(_impl->crashPathMutex);
    return _impl->crashPath;
}

std::vector<SpanRecord> Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(_impl->spansMutex);
    return _impl->spans;
}

void Tracer::resetForTest()
{
    {
        std::lock_guard<std::mutex> lock(_impl->spansMutex);
        _impl->spans.clear();
    }
    {
        std::lock_guard<std::mutex> lock(_impl->flightMutex);
        for (FlightEvent &e : _impl->ring)
            e = FlightEvent{};
        _impl->flightSeq = 0;
    }
    setCrashDumpPath("");
}

Tracer &tracer()
{
    static Tracer instance;
    return instance;
}

bool tracingActive()
{
    return g_exportEnabled.load(std::memory_order_relaxed);
}

std::uint64_t currentSpanParent()
{
    return t_ambientParent;
}

ScopedSpanParent::ScopedSpanParent(std::uint64_t id) : _saved(t_ambientParent)
{
    t_ambientParent = id;
}

ScopedSpanParent::~ScopedSpanParent()
{
    t_ambientParent = _saved;
}

namespace {

// Wire the logging layer into the flight recorder: every emitted log
// line becomes a ring breadcrumb, and a fatal/panic dumps the ring —
// to stderr always, and to the configured crash path as JSON. The
// initializer runs before main() in any binary that links tracing
// (every binary references tracer(), so the object is never
// dead-stripped from the static archive).
struct HookInstaller {
    HookInstaller()
    {
        common::setLogEventHook(+[](const char *level, const char *message) {
            char text[sizeof(FlightEvent{}.text)];
            std::snprintf(text, sizeof(text), "log %s: %s", level, message);
            tracer().note(text);
        });
        common::setCrashDumpHook(+[] {
            tracer().dumpFlightText(std::cerr);
            const std::string path = tracer().crashDumpPath();
            if (!path.empty() && tracer().writeFlightJson(path))
                std::cerr << "flight record written to " << path << "\n";
        });
    }
};

const HookInstaller g_hookInstaller;

}  // namespace

}  // namespace swiftrl::telemetry
