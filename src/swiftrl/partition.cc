#include "swiftrl/partition.hh"

#include "common/logging.hh"

namespace swiftrl {

std::vector<Chunk>
partitionDataset(std::size_t total, std::size_t parts)
{
    if (parts == 0)
        SWIFTRL_FATAL("cannot partition across zero cores");

    std::vector<Chunk> chunks(parts);
    const std::size_t base = total / parts;
    const std::size_t extra = total % parts;
    std::size_t at = 0;
    for (std::size_t i = 0; i < parts; ++i) {
        chunks[i].first = at;
        chunks[i].count = base + (i < extra ? 1 : 0);
        at += chunks[i].count;
    }
    SWIFTRL_ASSERT(at == total, "partition does not cover the dataset");
    return chunks;
}

} // namespace swiftrl
