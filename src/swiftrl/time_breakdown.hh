/**
 * @file
 * The four-component execution time breakdown SwiftRL reports in its
 * strong-scaling figures (Figures 5 and 6): PIM kernel time, initial
 * CPU->PIM dataset transfer, final PIM->CPU result transfer, and
 * inter-PIM-core communication (the tau-periodic Q-table exchange,
 * which is routed through the host because PIM cores cannot talk to
 * each other directly).
 */

#ifndef SWIFTRL_SWIFTRL_TIME_BREAKDOWN_HH
#define SWIFTRL_SWIFTRL_TIME_BREAKDOWN_HH

#include "pimsim/timeline.hh"

namespace swiftrl {

/** Modelled execution time split, in seconds. */
struct TimeBreakdown
{
    /** Time spent executing kernels on the PIM cores. */
    double kernel = 0.0;

    /** Initial dataset distribution, CPU -> PIM. */
    double cpuToPim = 0.0;

    /** Final result retrieval, PIM -> CPU. */
    double pimToCpu = 0.0;

    /** Q-value exchange between PIM cores (via the host). */
    double interCore = 0.0;

    /**
     * Host-side actor collection busy time (streaming mode only; 0
     * for the paper's offline runs). Deliberately *excluded* from
     * total(): collection overlaps the PIM pipeline in modelled time,
     * so adding it would double-count wall-clock the overlap already
     * hid. The streaming makespan is StreamingResult::endToEnd (the
     * timeline's end), not a sum of busy times.
     */
    double hostCollect = 0.0;

    /**
     * Fault-recovery overhead (failed attempts, retry backoff,
     * checksum verification, dropout redistribution); 0 when the
     * fault plan is inert. Also *excluded* from total(): the four-way
     * split describes the fault-free pipeline of Figures 5/6, and
     * recovery is exactly the overhead on top of it — reported
     * separately so the two remain comparable across fault rates.
     */
    double recovery = 0.0;

    /** Sum of the four Figure 5/6 components (PIM-pipeline time). */
    double
    total() const
    {
        return kernel + cpuToPim + pimToCpu + interCore;
    }

    /** Fraction of total contributed by a component value. */
    double
    fractionOf(double component) const
    {
        const double t = total();
        return t > 0.0 ? component / t : 0.0;
    }

    TimeBreakdown &
    operator+=(const TimeBreakdown &other)
    {
        kernel += other.kernel;
        cpuToPim += other.cpuToPim;
        pimToCpu += other.pimToCpu;
        interCore += other.interCore;
        hostCollect += other.hostCollect;
        recovery += other.recovery;
        return *this;
    }
};

/**
 * Derive the four-way breakdown from a command-stream timeline: each
 * event's duration is added to the component named by its TimeBucket,
 * in enqueue order (so the result is bit-identical across runs and
 * host-pool sizes). This is how PimTrainer fills PimTrainResult::time
 * — the breakdown *is* a view of the timeline, never hand-accumulated.
 */
TimeBreakdown breakdownFromTimeline(const pimsim::Timeline &timeline);

/**
 * Same derivation, continuing from @p base instead of zero — how a
 * restored TrainerSession reports the whole run's breakdown: the
 * checkpoint carries the per-bucket partial sums of the pre-restore
 * prefix, and accumulation continues in event order from there.
 * Identical to full in-order summation of the uninterrupted run, so
 * restore stays bit-exact (double addition is deterministic for a
 * fixed order).
 */
TimeBreakdown breakdownFromTimeline(const pimsim::Timeline &timeline,
                                    const TimeBreakdown &base);

} // namespace swiftrl

#endif // SWIFTRL_SWIFTRL_TIME_BREAKDOWN_HH
