#include "swiftrl/streaming_trainer.hh"

#include <algorithm>
#include <numeric>
#include <optional>
#include <string>

#include "common/logging.hh"
#include "rlcore/seeds.hh"
#include "swiftrl/session.hh"
#include "telemetry/metric_registry.hh"

namespace swiftrl {

using pimsim::Phase;
using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::QTable;
using rlcore::StateId;

StreamingTrainer::StreamingTrainer(pimsim::PimSystem &system,
                                   StreamingConfig config)
    : _system(system), _config(std::move(config))
{
    if (_config.tau <= 0)
        SWIFTRL_FATAL("synchronisation period tau must be positive");
    if (_config.hyper.episodes <= 0)
        SWIFTRL_FATAL("per-generation episode count must be positive");
    if (_config.generations <= 0)
        SWIFTRL_FATAL("generation count must be positive");
    if (_config.transitionsPerGeneration == 0)
        SWIFTRL_FATAL("each generation must collect at least one "
                      "transition");
    if (_config.blockTransitions == 0)
        SWIFTRL_FATAL("staging block must hold at least one transition");
    if (_config.actors == 0)
        SWIFTRL_FATAL("actor count must be >= 1: modelled collection "
                      "time may not depend on the host machine");
    if (_config.tasklets < 1 || _config.tasklets > 24)
        SWIFTRL_FATAL("UPMEM DPUs support 1-24 tasklets, got ",
                      _config.tasklets);
    if (_config.refreshPeriod < 0)
        SWIFTRL_FATAL("refresh period must be >= 0 (0 = never)");
    if (_config.collectSecPerTransition < 0.0)
        SWIFTRL_FATAL("per-transition collection cost must be >= 0");
    if (!(_config.epsilonDecay > 0.0f) || _config.epsilonDecay > 1.0f)
        SWIFTRL_FATAL("epsilon decay must be in (0, 1], got ",
                      _config.epsilonDecay);
    validate(_config.retry);
}

SessionConfig
StreamingTrainer::sessionConfig() const
{
    SessionConfig cfg;
    cfg.workload = _config.workload;
    cfg.hyper = _config.hyper;
    cfg.tau = _config.tau;
    cfg.blockTransitions = _config.blockTransitions;
    cfg.tasklets = _config.tasklets;
    cfg.retry = _config.retry;
    cfg.weightedAggregation = false;
    cfg.epsilonDecay = _config.epsilonDecay;
    cfg.streaming = true;
    cfg.batchExec = _config.batchExec;
    cfg.metrics = _config.metrics;
    return cfg;
}

double
StreamingTrainer::collectDuration(std::size_t num_transitions) const
{
    // Mirror rlcore::collectPolicyBlocks's round-robin assignment:
    // actor t executes blocks t, t+A, t+2A, ... The generation's
    // collection slice lasts as long as the busiest actor.
    const std::size_t block = _config.blockTransitions;
    const std::size_t blocks = (num_transitions + block - 1) / block;
    const std::size_t a = std::clamp<std::size_t>(
        _config.actors, std::size_t{1}, blocks);
    double busiest = 0.0;
    for (std::size_t t = 0; t < a; ++t) {
        std::size_t mine = 0;
        for (std::size_t i = t; i < blocks; i += a) {
            const std::size_t first = i * block;
            mine += std::min(block, num_transitions - first);
        }
        busiest = std::max(busiest, static_cast<double>(mine));
    }
    return busiest * _config.collectSecPerTransition;
}

StreamingResult
StreamingTrainer::runImpl(const rlcore::EnvFactory &make_env,
                          StateId num_states, ActionId num_actions,
                          const SessionCheckpoint *restore_from,
                          int pause_at_round, SessionCheckpoint *out_ck)
{
    const std::size_t n = _system.numDpus();
    const std::size_t entries =
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions);

    StreamingResult result;
    result.coresUsed = n;
    result.generations = _config.generations;

    // The PIM side of the pipeline is the shared TrainerSession; this
    // driver owns only what the session cannot see — the actor clock,
    // the behaviour policy, and the recent per-generation aggregates
    // the refresh schedule reads.
    TrainerSession session(_system, sessionConfig());

    // The actors start uniform-random, like the paper's collector,
    // until the first policy refresh (if any).
    rlcore::BehaviourPolicy policy =
        rlcore::makeRandomPolicy(num_actions);
    bool policy_active = false;       // epsilon-greedy vs random
    std::vector<float> policy_source; // table the policy greedifies

    // Aggregate after each generation, and the stream time its last
    // training command retired — the refresh schedule reads both.
    // Only the last two generations are ever read back, which is what
    // lets a checkpoint carry a two-entry tail instead of the run.
    std::vector<QTable> q_after;
    std::vector<double> train_end;
    double host_clock = 0.0; // when the actor pool is next free

    const double reduce_per_entry =
        _system.config().transferModel.hostReduceSecPerEntry;

    // Capture the driver state on top of the session checkpoint.
    const auto makeCheckpoint = [&] {
        SessionCheckpoint ck = session.checkpoint();
        ck.streamingHostClock = host_clock;
        ck.streamingPolicyRefreshes = result.policyRefreshes;
        ck.streamingCollectSeconds = result.collectSeconds;
        const std::size_t committed = q_after.size();
        const std::size_t tail = std::min<std::size_t>(2, committed);
        for (std::size_t i = committed - tail; i < committed; ++i) {
            ck.streamingTrainEndTail.push_back(train_end[i]);
            ck.streamingQAfterTail.push_back(q_after[i].values());
        }
        ck.streamingPolicyActive = policy_active;
        ck.streamingPolicyEpsilon = _config.behaviourEpsilon;
        ck.streamingPolicySource = policy_source;
        return ck;
    };

    int g_begin = 0;   // first generation the loop below handles
    int g_resumed = -1; // generation restored mid-training, if any
    std::optional<Dataset> resumed_data;

    if (!restore_from) {
        session.beginStreaming(num_states, num_actions);
    } else {
        session.restoreStreaming(*restore_from);
        host_clock = restore_from->streamingHostClock;
        result.policyRefreshes = restore_from->streamingPolicyRefreshes;
        result.collectSeconds = restore_from->streamingCollectSeconds;

        // An episodesRemaining > 0 checkpoint paused mid-generation:
        // the last started generation re-runs its remaining rounds.
        // At 0 the generation's bookkeeping was committed before the
        // checkpoint, so the loop resumes at the next generation.
        const bool mid = restore_from->episodesRemaining > 0;
        const int committed = mid
                                  ? restore_from->generationsStarted - 1
                                  : restore_from->generationsStarted;
        SWIFTRL_ASSERT(committed >= 0, "corrupt generation count");

        // Rebuild q_after/train_end: zero placeholders for the old
        // generations (never read again — post-restore accesses reach
        // back at most two generations) and the checkpointed tail.
        const auto &tail_q = restore_from->streamingQAfterTail;
        const auto &tail_t = restore_from->streamingTrainEndTail;
        SWIFTRL_ASSERT(tail_q.size() == tail_t.size() &&
                           static_cast<int>(tail_q.size()) <= committed,
                       "checkpoint generation tail is inconsistent");
        const int placeholders =
            committed - static_cast<int>(tail_q.size());
        for (int i = 0; i < committed; ++i) {
            if (i < placeholders) {
                q_after.emplace_back(num_states, num_actions);
                train_end.push_back(0.0);
            } else {
                const std::size_t t =
                    static_cast<std::size_t>(i - placeholders);
                q_after.push_back(QTable::fromFloats(
                    num_states, num_actions, tail_q[t]));
                train_end.push_back(tail_t[t]);
            }
        }

        if (restore_from->streamingPolicyActive) {
            policy = rlcore::makeEpsilonGreedyPolicy(
                QTable::fromFloats(num_states, num_actions,
                                   restore_from->streamingPolicySource),
                restore_from->streamingPolicyEpsilon);
            policy_active = true;
            policy_source = restore_from->streamingPolicySource;
        }

        g_begin = committed;
        if (mid) {
            // Re-collect the in-flight generation's data — collection
            // is pure in (policy, seed, generation), so this is the
            // exact dataset the interrupted run scattered — and poke
            // it back into MRAM functionally (its scatter is part of
            // the checkpointed time base).
            g_resumed = g_begin;
            const auto blocks = rlcore::collectPolicyBlocks(
                make_env, policy, _config.transitionsPerGeneration,
                _config.blockTransitions,
                rlcore::deriveHostSeed(
                    _config.collectSeed,
                    static_cast<std::uint64_t>(g_resumed)),
                _config.actors);
            resumed_data.emplace(rlcore::concatBlocks(blocks));
            session.attachGeneration(*resumed_data);
        }
    }

    for (int g = g_begin; g < _config.generations; ++g) {
        const bool resumed_mid = g == g_resumed;
        Dataset fresh_data;
        const Dataset *gen_data = nullptr;
        double dur = 0.0;

        if (resumed_mid) {
            // Refresh, collection, scatter, and their spans all
            // happened before the checkpoint; only the remaining
            // training rounds are left.
            gen_data = &*resumed_data;
        } else {
            // --- behaviour-policy refresh (generation-indexed) ------
            if (_config.refreshPeriod > 0 && g >= 2 &&
                g % _config.refreshPeriod == 0) {
                // Newest aggregate available when g's collection
                // starts: generation g-1 is still on the PIM side
                // under the overlap, so the actors see the table
                // through g-2.
                policy = rlcore::makeEpsilonGreedyPolicy(
                    q_after[static_cast<std::size_t>(g) - 2],
                    _config.behaviourEpsilon);
                policy_active = true;
                policy_source =
                    q_after[static_cast<std::size_t>(g) - 2].values();
                const double cost =
                    reduce_per_entry * static_cast<double>(entries);
                const double start = std::max(
                    host_clock,
                    train_end[static_cast<std::size_t>(g) - 2]);
                const std::string label =
                    "refresh:gen" + std::to_string(g);
                session.stream().recordHostSpan(
                    Phase::HostCollect, TimeBucket::HostCollect,
                    start, cost, label);
                host_clock = start + cost;
                ++result.policyRefreshes;
            }

            // --- host-side collection (functional) ------------------
            const auto blocks = rlcore::collectPolicyBlocks(
                make_env, policy, _config.transitionsPerGeneration,
                _config.blockTransitions,
                rlcore::deriveHostSeed(_config.collectSeed,
                                       static_cast<std::uint64_t>(g)),
                _config.actors);
            fresh_data = rlcore::concatBlocks(blocks);
            gen_data = &fresh_data;

            // --- host-side collection (temporal) --------------------
            // Overlap mode: the slice starts as soon as the actors
            // are free — while generation g-1 still trains.
            // Sequential mode additionally gates on the previous
            // training finishing, which is the only difference
            // between the two modes.
            double collect_start = host_clock;
            if (!_config.overlap && g > 0)
                collect_start = std::max(
                    collect_start,
                    train_end[static_cast<std::size_t>(g) - 1]);
            dur = collectDuration(_config.transitionsPerGeneration);
            const std::string collect_label =
                "collect:gen" + std::to_string(g);
            session.stream().recordHostSpan(
                Phase::HostCollect, TimeBucket::HostCollect,
                collect_start, dur, collect_label);
            host_clock = collect_start + dur;
            result.collectSeconds += dur;

            // --- PIM-side arming of the fresh generation ------------
            // The scatter depends on the collection having finished;
            // the queue idles if the data is not ready yet. The
            // session partitions over the cores still alive — a
            // dropout in an earlier generation shrinks every later
            // generation's share map.
            session.stream().waitUntil(host_clock);
            session.loadGeneration(*gen_data);
        }

        // --- training rounds on this generation's data --------------
        bool paused = false;
        while (session.episodesRemaining() > 0) {
            if (pause_at_round >= 0 &&
                session.commRounds() >= pause_at_round) {
                paused = true;
                break;
            }
            session.step();
        }
        if (paused) {
            // Mid-generation checkpoint: episodesRemaining > 0 tells
            // the restore path to re-collect and re-attach this
            // generation's data.
            *out_ck = makeCheckpoint();
            return result;
        }

        // --- generation bookkeeping ---------------------------------
        train_end.push_back(session.stream().now());
        q_after.push_back(session.aggregated());
        const QTable &aggregated = q_after.back();
        const float gen_delta = QTable::maxAbsDifference(
            aggregated,
            g > 0 ? q_after[static_cast<std::size_t>(g) - 1]
                  : QTable(num_states, num_actions));
        SWIFTRL_DEBUG("generation ", g, ": max |dQ| ", gen_delta,
                      ", live cores ",
                      session.stream().liveDpuCount(), ", collect ",
                      dur, " s, modelled t ", session.stream().now(),
                      " s");
        if (_config.metrics) {
            auto &m = *_config.metrics;
            // Behaviour-policy reward rate of this generation's
            // collected data: mean reward per transition.
            const auto &rewards = gen_data->rewards();
            const double mean_reward =
                rewards.empty()
                    ? 0.0
                    : std::accumulate(rewards.begin(), rewards.end(),
                                      0.0) /
                          static_cast<double>(rewards.size());
            m.series("rl_generation_mean_reward").append(mean_reward);
            m.series("rl_generation_max_abs_dq")
                .append(static_cast<double>(gen_delta));
            m.series("rl_generation_collect_seconds").append(dur);
            session.stream().recordCounter(
                "max-abs-dq", static_cast<double>(gen_delta));
        }

        // A pause landing exactly on a generation boundary
        // checkpoints *after* the bookkeeping above, so that
        // episodesRemaining == 0 in a checkpoint always means the
        // generation was committed.
        if (out_ck && pause_at_round >= 0 &&
            session.commRounds() >= pause_at_round) {
            *out_ck = makeCheckpoint();
            return result;
        }
    }

    // A pause round past the end of the run checkpoints at the final
    // generation boundary (resume() then just finishes retrieval).
    if (out_ck) {
        *out_ck = makeCheckpoint();
        return result;
    }

    // Final retrieval, identical to the offline trainer's step 3+4.
    session.finishRetrieval();

    result.finalQ = session.aggregated();
    result.commRounds = session.commRounds();
    result.time = session.currentTime();
    result.timeline = session.stream().timeline();
    result.endToEnd = result.timeline.endTime();
    result.faultsDetected = session.faultsDetected();
    result.coresLost = session.coresLost();
    result.transitions =
        static_cast<std::size_t>(_config.generations) *
        _config.transitionsPerGeneration;
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon")
            .set(static_cast<double>(session.epsilon()));
        m.counter("rl_policy_refreshes_total")
            .add(static_cast<std::uint64_t>(result.policyRefreshes));
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(
                session.stream().liveDpuCount()));
        m.counter("rl_cores_lost_total")
            .add(static_cast<std::uint64_t>(result.coresLost));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

StreamingResult
StreamingTrainer::train(const rlcore::EnvFactory &make_env,
                        StateId num_states, ActionId num_actions)
{
    return runImpl(make_env, num_states, num_actions, nullptr, -1,
                   nullptr);
}

SessionCheckpoint
StreamingTrainer::trainUntilRound(const rlcore::EnvFactory &make_env,
                                  StateId num_states,
                                  ActionId num_actions, int rounds)
{
    if (rounds < 0)
        SWIFTRL_FATAL("pause round must be >= 0, got ", rounds);
    SessionCheckpoint ck;
    runImpl(make_env, num_states, num_actions, nullptr, rounds, &ck);
    return ck;
}

StreamingResult
StreamingTrainer::resume(const rlcore::EnvFactory &make_env,
                         StateId num_states, ActionId num_actions,
                         const SessionCheckpoint &ck)
{
    return runImpl(make_env, num_states, num_actions, &ck, -1,
                   nullptr);
}

} // namespace swiftrl
