#include "swiftrl/streaming_trainer.hh"

#include <algorithm>
#include <numeric>
#include <optional>
#include <string>

#include "common/logging.hh"
#include "rlcore/seeds.hh"
#include "swiftrl/partition.hh"
#include "swiftrl/pim_kernels.hh"
#include "telemetry/engine_collector.hh"

namespace swiftrl {

using pimsim::Phase;
using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::StateId;

StreamingTrainer::StreamingTrainer(pimsim::PimSystem &system,
                                   StreamingConfig config)
    : _system(system), _config(std::move(config)),
      _qio(_config.workload, _config.hyper)
{
    if (_config.tau <= 0)
        SWIFTRL_FATAL("synchronisation period tau must be positive");
    if (_config.hyper.episodes <= 0)
        SWIFTRL_FATAL("per-generation episode count must be positive");
    if (_config.generations <= 0)
        SWIFTRL_FATAL("generation count must be positive");
    if (_config.transitionsPerGeneration == 0)
        SWIFTRL_FATAL("each generation must collect at least one "
                      "transition");
    if (_config.blockTransitions == 0)
        SWIFTRL_FATAL("staging block must hold at least one transition");
    if (_config.actors == 0)
        SWIFTRL_FATAL("actor count must be >= 1: modelled collection "
                      "time may not depend on the host machine");
    if (_config.tasklets < 1 || _config.tasklets > 24)
        SWIFTRL_FATAL("UPMEM DPUs support 1-24 tasklets, got ",
                      _config.tasklets);
    if (_config.refreshPeriod < 0)
        SWIFTRL_FATAL("refresh period must be >= 0 (0 = never)");
    if (_config.collectSecPerTransition < 0.0)
        SWIFTRL_FATAL("per-transition collection cost must be >= 0");
    validate(_config.retry);
}

double
StreamingTrainer::collectDuration(std::size_t num_transitions) const
{
    // Mirror rlcore::collectPolicyBlocks's round-robin assignment:
    // actor t executes blocks t, t+A, t+2A, ... The generation's
    // collection slice lasts as long as the busiest actor.
    const std::size_t block = _config.blockTransitions;
    const std::size_t blocks = (num_transitions + block - 1) / block;
    const std::size_t a = std::clamp<std::size_t>(
        _config.actors, std::size_t{1}, blocks);
    double busiest = 0.0;
    for (std::size_t t = 0; t < a; ++t) {
        std::size_t mine = 0;
        for (std::size_t i = t; i < blocks; i += a) {
            const std::size_t first = i * block;
            mine += std::min(block, num_transitions - first);
        }
        busiest = std::max(busiest, static_cast<double>(mine));
    }
    return busiest * _config.collectSecPerTransition;
}

void
StreamingTrainer::scatterGeneration(
    pimsim::CommandStream &stream, const Dataset &data,
    const std::vector<std::size_t> &firsts,
    const std::vector<std::size_t> &counts, std::size_t data_offset,
    int generation, TimeBucket bucket, std::string_view label)
{
    const std::size_t n = _system.numDpus();
    std::vector<std::vector<std::uint8_t>> packed(n);
    std::vector<std::span<const std::uint8_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i) {
        packed[i] =
            _config.workload.format == NumericFormat::Fp32
                ? data.packFp32(firsts[i], counts[i])
                : data.packInt32(firsts[i], counts[i],
                                 _qio.fixedScale());
        spans[i] = packed[i];
    }
    const std::string fallback =
        "scatter:gen" + std::to_string(generation);
    stream.pushChunks(data_offset, spans, bucket,
                      label.empty() ? std::string_view(fallback)
                                    : label);
}

StreamingResult
StreamingTrainer::train(const rlcore::EnvFactory &make_env,
                        StateId num_states, ActionId num_actions)
{
    const std::size_t n = _system.numDpus();
    const std::size_t entries =
        static_cast<std::size_t>(num_states) *
        static_cast<std::size_t>(num_actions);
    const std::size_t q_bytes = entries * 4;
    // Transitions start at the next 8-byte boundary past the Q region.
    const std::size_t data_offset = (q_bytes + 7) / 8 * 8;

    StreamingResult result;
    result.coresUsed = n;
    result.generations = _config.generations;

    pimsim::CommandStream stream(_system);

    // Telemetry (off unless a registry is configured): per-launch
    // engine metrics via the stream observer, per-generation rl_*
    // series below.
    std::optional<telemetry::EngineCollector> collector;
    if (_config.metrics) {
        collector.emplace(*_config.metrics, _system);
        stream.setObserver(&*collector);
    }

    _qio.initQTables(stream, num_states, num_actions);

    // Persistent LCG streams, one per (core, tasklet), carried across
    // generations exactly as a real deployment would keep the DPU
    // binaries resident.
    const std::size_t streams = n * _config.tasklets;
    std::vector<std::uint32_t> lcg_states(streams);
    for (std::size_t i = 0; i < streams; ++i)
        lcg_states[i] = rlcore::deriveLcgSeed(_config.hyper.seed, i);

    // The actors start uniform-random, like the paper's collector,
    // until the first policy refresh (if any).
    rlcore::BehaviourPolicy policy =
        rlcore::makeRandomPolicy(num_actions);

    QTable aggregated(num_states, num_actions);
    // Aggregate after each generation, and the stream time its last
    // training command retired — the refresh schedule reads both.
    std::vector<QTable> q_after;
    std::vector<double> train_end;
    double host_clock = 0.0; // when the actor pool is next free

    const double reduce_per_entry =
        _system.config().transferModel.hostReduceSecPerEntry;

    for (int g = 0; g < _config.generations; ++g) {
        // --- behaviour-policy refresh (generation-indexed) ----------
        if (_config.refreshPeriod > 0 && g >= 2 &&
            g % _config.refreshPeriod == 0) {
            // Newest aggregate available when g's collection starts:
            // generation g-1 is still on the PIM side under the
            // overlap, so the actors see the table through g-2.
            policy = rlcore::makeEpsilonGreedyPolicy(
                q_after[static_cast<std::size_t>(g) - 2],
                _config.behaviourEpsilon);
            const double cost =
                reduce_per_entry * static_cast<double>(entries);
            const double start =
                std::max(host_clock,
                         train_end[static_cast<std::size_t>(g) - 2]);
            const std::string label =
                "refresh:gen" + std::to_string(g);
            stream.recordHostSpan(Phase::HostCollect,
                                  TimeBucket::HostCollect, start, cost,
                                  label);
            host_clock = start + cost;
            ++result.policyRefreshes;
        }

        // --- host-side collection (functional) ----------------------
        const auto blocks = rlcore::collectPolicyBlocks(
            make_env, policy, _config.transitionsPerGeneration,
            _config.blockTransitions,
            rlcore::deriveHostSeed(_config.collectSeed,
                                   static_cast<std::uint64_t>(g)),
            _config.actors);
        const Dataset gen_data = rlcore::concatBlocks(blocks);

        // --- host-side collection (temporal) ------------------------
        // Overlap mode: the slice starts as soon as the actors are
        // free — while generation g-1 still trains. Sequential mode
        // additionally gates on the previous training finishing,
        // which is the only difference between the two modes.
        double collect_start = host_clock;
        if (!_config.overlap && g > 0)
            collect_start = std::max(
                collect_start,
                train_end[static_cast<std::size_t>(g) - 1]);
        const double dur =
            collectDuration(_config.transitionsPerGeneration);
        const std::string collect_label =
            "collect:gen" + std::to_string(g);
        stream.recordHostSpan(Phase::HostCollect,
                              TimeBucket::HostCollect, collect_start,
                              dur, collect_label);
        host_clock = collect_start + dur;
        result.collectSeconds += dur;

        // --- PIM-side training on the fresh generation --------------
        // The scatter depends on the collection having finished; the
        // queue idles if the data is not ready yet.
        stream.waitUntil(host_clock);

        // Partition over the cores still alive — a dropout in an
        // earlier generation shrinks every later generation's share
        // map (dead cores keep empty chunks).
        std::vector<std::size_t> firsts(n, 0), counts(n, 0);
        const auto repartition = [&] {
            const std::size_t live = stream.liveDpuCount();
            if (live == 0)
                SWIFTRL_FATAL("all ", n, " cores lost to permanent "
                              "dropouts; nothing left to "
                              "redistribute to");
            const auto live_chunks =
                partitionDataset(gen_data.size(), live);
            std::size_t next = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (stream.isDead(i)) {
                    firsts[i] = 0;
                    counts[i] = 0;
                    continue;
                }
                firsts[i] = live_chunks[next].first;
                counts[i] = live_chunks[next].count;
                ++next;
            }
        };
        repartition();
        scatterGeneration(stream, gen_data, firsts, counts,
                          data_offset, g);

        // Permanent dropout recovery, mid-generation: re-partition
        // the *current* generation's dataset over the survivors and
        // restart the interrupted round from the last aggregate (the
        // re-broadcast is functionally idempotent — the faulted
        // launch committed nothing — but the real host cannot know
        // that, so both transfers are paid for as recovery).
        const auto redistribute = [&](const pimsim::CommandError &) {
            repartition();
            scatterGeneration(stream, gen_data, firsts, counts,
                              data_offset, g, TimeBucket::Recovery,
                              "scatter:redistribute");
            _qio.broadcastQTable(stream, aggregated,
                                 TimeBucket::Recovery,
                                 "broadcast:recover");
        };

        KernelParams params;
        params.workload = _config.workload;
        params.hyper = _config.hyper;
        params.numStates = num_states;
        params.numActions = num_actions;
        params.qOffset = _qio.qOffset();
        params.dataOffset = data_offset;
        params.chunkCounts = &counts;
        params.lcgStates = &lcg_states;
        params.blockTransitions = _config.blockTransitions;
        params.tasklets = _config.tasklets;

        // One kernel wrapper per generation, reused across rounds
        // and retries (a KernelFn allocates when constructed).
        const pimsim::KernelFn kernel =
            [&params](pimsim::KernelContext &ctx) {
                runTrainingKernel(ctx, params);
            };

        int remaining = _config.hyper.episodes;
        while (remaining > 0) {
            params.episodes = std::min(_config.tau, remaining);
            remaining -= params.episodes;

            runWithRecovery(
                stream, _config.retry, "kernel:round",
                [&] {
                    return stream.launch(kernel, _config.tasklets,
                                         TimeBucket::Kernel,
                                         "kernel:round");
                },
                redistribute);

            auto tables = _qio.gatherQTables(
                stream, num_states, num_actions, TimeBucket::InterCore,
                &_config.retry);
            // Mean over the surviving cores only; a dropped core's
            // zero-filled placeholder must not dilute it.
            std::vector<QTable> live_tables;
            live_tables.reserve(stream.liveDpuCount());
            for (std::size_t i = 0; i < tables.size(); ++i) {
                if (!stream.isDead(i))
                    live_tables.push_back(std::move(tables[i]));
            }
            aggregated = QTable::average(live_tables);
            stream.hostReduce(
                reduce_per_entry * static_cast<double>(entries) *
                    static_cast<double>(stream.liveDpuCount()),
                "reduce:average");
            _qio.broadcastQTable(stream, aggregated,
                                 TimeBucket::InterCore);
            ++result.commRounds;
            if (_config.metrics)
                _config.metrics->counter("rl_comm_rounds_total")
                    .add();
        }

        train_end.push_back(stream.now());
        q_after.push_back(aggregated);
        const float gen_delta = QTable::maxAbsDifference(
            aggregated, g > 0 ? q_after[static_cast<std::size_t>(g) -
                                        1]
                              : QTable(num_states, num_actions));
        SWIFTRL_DEBUG("generation ", g, ": max |dQ| ", gen_delta,
                      ", live cores ", stream.liveDpuCount(),
                      ", collect ", dur, " s, modelled t ",
                      stream.now(), " s");
        if (_config.metrics) {
            auto &m = *_config.metrics;
            // Behaviour-policy reward rate of this generation's
            // collected data: mean reward per transition.
            const auto &rewards = gen_data.rewards();
            const double mean_reward =
                rewards.empty()
                    ? 0.0
                    : std::accumulate(rewards.begin(), rewards.end(),
                                      0.0) /
                          static_cast<double>(rewards.size());
            m.series("rl_generation_mean_reward")
                .append(mean_reward);
            m.series("rl_generation_max_abs_dq")
                .append(static_cast<double>(gen_delta));
            m.series("rl_generation_collect_seconds").append(dur);
            stream.recordCounter("max-abs-dq",
                                 static_cast<double>(gen_delta));
        }
    }

    // Final retrieval, identical to the offline trainer's step 3+4.
    const double convert =
        _qio.conversionSeconds(stream, entries, /*to_float=*/true);
    if (convert > 0.0)
        stream.onCoreCompute(convert, TimeBucket::PimToCpu,
                             "convert:descale");
    stream.gatherTimed(_qio.qOffset(), q_bytes, TimeBucket::PimToCpu,
                       "gather:final");

    result.finalQ = std::move(aggregated);
    result.time = breakdownFromTimeline(stream.timeline());
    result.timeline = stream.timeline();
    result.endToEnd = result.timeline.endTime();
    result.faultsDetected = countFaultEvents(result.timeline);
    result.coresLost = n - stream.liveDpuCount();
    result.transitions =
        static_cast<std::size_t>(_config.generations) *
        _config.transitionsPerGeneration;
    if (_config.metrics) {
        auto &m = *_config.metrics;
        m.gauge("rl_epsilon")
            .set(static_cast<double>(_config.hyper.epsilon));
        m.counter("rl_policy_refreshes_total")
            .add(static_cast<std::uint64_t>(result.policyRefreshes));
        m.counter("rl_faults_detected_total")
            .add(static_cast<std::uint64_t>(result.faultsDetected));
        m.gauge("rl_live_cores")
            .set(static_cast<double>(stream.liveDpuCount()));
        m.gauge("rl_recovery_seconds").set(result.time.recovery);
    }
    return result;
}

} // namespace swiftrl
