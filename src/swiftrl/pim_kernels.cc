#include "swiftrl/pim_kernels.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "rlcore/dataset.hh"
#include "rlcore/sampling.hh"
#include "rlcore/update_rules.hh"

namespace swiftrl {

namespace {

using rlcore::ActionId;
using rlcore::PackedTransition;
using rlcore::StateId;

/**
 * Experience fetcher. SEQ and STR kernels stream aligned blocks of
 * records through a WRAM staging buffer (one DMA per block); RAN
 * kernels issue one small DMA per record, since consecutive draws land
 * in unrelated MRAM rows — the access pattern PIM tolerates and caches
 * do not. The staging buffer lives in the context's scratch arena, so
 * it is recycled across launches instead of heap-allocated per core
 * per generation.
 */
template <typename Ctx>
class TransitionFetcher
{
  public:
    TransitionFetcher(Ctx &ctx, std::size_t data_offset,
                      std::size_t count, std::size_t block_transitions,
                      bool block_mode)
        : _ctx(ctx), _dataOffset(data_offset), _count(count),
          _blockTransitions(block_transitions), _blockMode(block_mode)
    {
        SWIFTRL_ASSERT(_blockTransitions > 0, "empty staging block");
        if (_blockMode) {
            _buffer = ctx.scratch().template alloc<PackedTransition>(
                _blockTransitions);
        }
    }

    /** Fetch record @p idx, charging its DMA and WRAM traffic. */
    PackedTransition
    fetch(std::size_t idx)
    {
        SWIFTRL_ASSERT(idx < _count, "record index out of chunk");
        PackedTransition rec;
        if (_blockMode) {
            if (idx < _blockStart ||
                idx >= _blockStart + _blockLen) {
                loadBlock(idx);
            }
            rec = _buffer[idx - _blockStart];
            // Buffer indexing: offset computation on the core.
            _ctx.aluOps(2);
        } else {
            _ctx.mramToWram(_dataOffset + idx * kTransitionBytes, &rec,
                            kTransitionBytes);
        }
        // The update reads all four record words from WRAM.
        _ctx.aluOps(4);
        return rec;
    }

  private:
    void
    loadBlock(std::size_t idx)
    {
        const std::size_t start =
            idx / _blockTransitions * _blockTransitions;
        _blockLen = std::min(_blockTransitions, _count - start);
        _ctx.mramToWram(_dataOffset + start * kTransitionBytes,
                        _buffer, _blockLen * kTransitionBytes);
        _blockStart = start;
    }

    Ctx &_ctx;
    std::size_t _dataOffset;
    std::size_t _count;
    std::size_t _blockTransitions;
    bool _blockMode;
    PackedTransition *_buffer = nullptr;
    std::size_t _blockStart = std::numeric_limits<std::size_t>::max();
    std::size_t _blockLen = 0;
};

/** Unpacked record fields common to both formats. */
struct RecordFields
{
    StateId s;
    ActionId a;
    std::int32_t rewardBits;
    StateId s2;
    bool terminal;
};

template <typename Ctx>
RecordFields
decodeRecord(Ctx &ctx, const PackedTransition &rec)
{
    RecordFields f;
    f.s = rec.state;
    f.a = rec.action;
    f.rewardBits = rec.rewardBits;
    // Terminal flag unmasking: an AND and a shift.
    ctx.aluOps(2);
    f.s2 = static_cast<StateId>(rec.nextStateBits &
                                ~PackedTransition::kTerminalBit);
    f.terminal =
        (rec.nextStateBits & PackedTransition::kTerminalBit) != 0;
    return f;
}

/** Single-tasklet training loop (the paper's configuration). */
template <typename Ctx, typename QWord, typename UpdateFn>
void
trainCoreSingleTasklet(Ctx &ctx, const KernelParams &p,
                       std::size_t count, QWord *q, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    const bool block_mode =
        p.workload.sampling != rlcore::Sampling::Ran;
    ctx.wramAlloc(block_mode
                      ? p.blockTransitions * kTransitionBytes
                      : kTransitionBytes);

    ctx.lcgSeed((*p.lcgStates)[core]);

    rlcore::SampleWalker walker(
        count, p.workload.sampling,
        static_cast<std::size_t>(p.hyper.stride));
    TransitionFetcher<Ctx> fetcher(ctx, p.dataOffset, count,
                                   p.blockTransitions, block_mode);

    for (int ep = 0; ep < p.episodes; ++ep) {
        walker.startEpisode();
        ctx.branch();
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t idx =
                walker.next([&](std::size_t bound) {
                    return static_cast<std::size_t>(
                        ctx.lcgNextBounded(
                            static_cast<std::uint32_t>(bound)));
                });
            // Walker bookkeeping + loop counter + record address
            // computation (idx * 16 as a shift).
            ctx.aluOps(3);
            ctx.branch();

            const PackedTransition rec = fetcher.fetch(idx);
            const RecordFields f = decodeRecord(ctx, rec);
            update(ctx, q, f);
        }
    }

    (*p.lcgStates)[core] = ctx.lcgState();
}

/**
 * Multi-tasklet training loop (the paper's future work): the chunk is
 * split into near-equal contiguous sub-chunks, one per tasklet; each
 * tasklet walks its own sub-chunk in the workload's sampling order
 * with its own persistent LCG stream and staging buffer, and all
 * tasklets update the core's shared WRAM Q-table. Execution
 * interleaves round-robin, one update per tasklet per turn, matching
 * the pipeline's fine-grained multithreading order.
 */
template <typename Ctx, typename QWord, typename UpdateFn>
void
trainCoreMultiTasklet(Ctx &ctx, const KernelParams &p,
                      std::size_t count, QWord *q, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    const unsigned t = p.tasklets;
    SWIFTRL_ASSERT(p.lcgStates->size() >=
                       (core + 1) * static_cast<std::size_t>(t),
                   "LCG state table too small for ", t,
                   " tasklets on core ", core);
    const bool block_mode =
        p.workload.sampling != rlcore::Sampling::Ran;

    // Sub-chunk split; tasklets beyond the chunk size stay idle.
    std::vector<std::size_t> sub_first(t, 0), sub_count(t, 0);
    {
        const std::size_t base = count / t;
        const std::size_t extra = count % t;
        std::size_t at = 0;
        for (unsigned tl = 0; tl < t; ++tl) {
            sub_first[tl] = at;
            sub_count[tl] = base + (tl < extra ? 1 : 0);
            at += sub_count[tl];
        }
    }

    std::vector<std::unique_ptr<rlcore::SampleWalker>> walkers(t);
    std::vector<std::unique_ptr<TransitionFetcher<Ctx>>> fetchers(t);
    std::vector<std::uint32_t> lcg(t);
    std::size_t longest = 0;
    for (unsigned tl = 0; tl < t; ++tl) {
        lcg[tl] = (*p.lcgStates)[core * t + tl];
        if (sub_count[tl] == 0)
            continue;
        // Each tasklet owns a staging buffer in the shared WRAM.
        ctx.wramAlloc(block_mode
                          ? p.blockTransitions * kTransitionBytes
                          : kTransitionBytes);
        walkers[tl] = std::make_unique<rlcore::SampleWalker>(
            sub_count[tl], p.workload.sampling,
            static_cast<std::size_t>(p.hyper.stride));
        fetchers[tl] = std::make_unique<TransitionFetcher<Ctx>>(
            ctx, p.dataOffset, count, p.blockTransitions,
            block_mode);
        longest = std::max(longest, sub_count[tl]);
    }

    for (int ep = 0; ep < p.episodes; ++ep) {
        for (unsigned tl = 0; tl < t; ++tl) {
            if (walkers[tl])
                walkers[tl]->startEpisode();
        }
        ctx.branch();
        for (std::size_t k = 0; k < longest; ++k) {
            for (unsigned tl = 0; tl < t; ++tl) {
                if (k >= sub_count[tl])
                    continue;
                // Swap in this tasklet's LCG stream.
                ctx.lcgSeed(lcg[tl]);
                const std::size_t idx =
                    walkers[tl]->next([&](std::size_t bound) {
                        return static_cast<std::size_t>(
                            ctx.lcgNextBounded(
                                static_cast<std::uint32_t>(bound)));
                    });
                ctx.aluOps(3);
                ctx.branch();

                const PackedTransition rec =
                    fetchers[tl]->fetch(sub_first[tl] + idx);
                const RecordFields f = decodeRecord(ctx, rec);
                update(ctx, q, f);
                lcg[tl] = ctx.lcgState();
            }
        }
    }

    for (unsigned tl = 0; tl < t; ++tl)
        (*p.lcgStates)[core * t + tl] = lcg[tl];
}

/** Shared training kernel body, templated on the Q-word type. */
template <typename QWord, typename Ctx, typename UpdateFn>
void
trainCore(Ctx &ctx, const KernelParams &p, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    SWIFTRL_ASSERT(p.chunkCounts && core < p.chunkCounts->size(),
                   "missing chunk table for core ", core);
    SWIFTRL_ASSERT(p.lcgStates && core < p.lcgStates->size(),
                   "missing LCG state for core ", core);
    SWIFTRL_ASSERT(p.tasklets >= 1, "at least one tasklet required");
    const std::size_t count = (*p.chunkCounts)[core];
    if (count == 0 || p.episodes <= 0)
        return;

    const bool sharded = p.sliceRows > 0;
    SWIFTRL_ASSERT(!sharded || !p.trackVisits,
                   "visit tracking is incompatible with sharded "
                   "Q-tables");
    SWIFTRL_ASSERT(!sharded ||
                       (p.haloRows && core < p.haloRows->size()),
                   "missing halo table for core ", core);
    // In sharded mode the WRAM table is [owned slice | halo rows]:
    // the slice is read-write and DMA'd back, the halo is a
    // read-only snapshot of remote next-state rows, refreshed by the
    // host each sync round. Record state ids arrive pre-localised to
    // this layout, so the update rules below are oblivious to it.
    const std::size_t own_rows =
        sharded ? p.sliceRows : static_cast<std::size_t>(p.numStates);
    const std::size_t halo_rows =
        sharded ? (*p.haloRows)[core] : 0;
    const std::size_t na = static_cast<std::size_t>(p.numActions);
    const std::size_t own_entries = own_rows * na;
    const std::size_t q_entries = (own_rows + halo_rows) * na;
    const std::size_t own_bytes = own_entries * sizeof(QWord);
    pimsim::KernelScratch &scratch = ctx.scratch();

    // Shared WRAM Q-table, DMA'd in at entry and out at exit. The
    // host image lives in the launch's scratch arena; the inbound
    // DMA overwrites every entry.
    ctx.wramAlloc(q_entries * sizeof(QWord));
    QWord *q = scratch.template alloc<QWord>(q_entries);
    ctx.mramToWram(p.qOffset, q, own_bytes);
    if (halo_rows > 0) {
        ctx.mramToWram(p.haloOffset, q + own_entries,
                       halo_rows * na * sizeof(QWord));
    }

    // Optional visit counters for weighted aggregation: zeroed each
    // launch (weights reflect the current round's coverage).
    std::uint32_t *visits = nullptr;
    if (p.trackVisits) {
        ctx.wramAlloc(q_entries * sizeof(std::uint32_t));
        visits = scratch.template alloc<std::uint32_t>(q_entries);
        std::fill_n(visits, q_entries, 0u);
    }
    auto counted_update = [&](Ctx &c, QWord *table,
                              const RecordFields &f) {
        update(c, table, f);
        if (p.trackVisits) {
            // Increment: one address computation + load-modify-store.
            c.aluOps(2);
            ++visits[static_cast<std::size_t>(f.s) *
                         static_cast<std::size_t>(p.numActions) +
                     static_cast<std::size_t>(f.a)];
        }
    };

    if (p.tasklets == 1) {
        trainCoreSingleTasklet(ctx, p, count, q, counted_update);
    } else {
        trainCoreMultiTasklet(ctx, p, count, q, counted_update);
    }

    // Only the owned slice is written back; halo rows are a stale
    // read-only snapshot the host refreshes from the aggregate.
    ctx.wramToMram(p.qOffset, q, own_bytes);
    if (p.trackVisits) {
        ctx.wramToMram(p.visitsOffset, visits,
                       q_entries * sizeof(std::uint32_t));
    }
}

// --- batch interpreter ------------------------------------------------
//
// The scalar engine interprets the kernel once per core, charging each
// priced op as it executes — ~30 ledger increments per Q-update. The
// batch interpreter exploits that every core of a cohort runs the
// *same* kernel: it executes the update rules functionally through a
// cost-free ops provider (LaneOps) and retires the charges wholesale,
// as per-lane tallies of control-flow *shapes* multiplied by
// probe-calibrated per-shape charge profiles. This is exact, not
// approximate: an update's charge sequence is fully determined by its
// shape — terminal (no bootstrap scan), SARSA explore (two extra LCG
// draws), or the main path — because the bootstrap scans have fixed
// trip count (num_actions) and charge identically on either branch
// outcome. See docs/PERFORMANCE.md, "Batch interpretation".

/** Update-charge shapes. One tally per lane per shape. */
enum : std::size_t
{
    /** Terminal record: no bootstrap. */
    kShapeTerminal = 0,
    /** Non-terminal main path (Q-learning max / SARSA exploit). */
    kShapeMain = 1,
    /** SARSA non-terminal explore: epsilon branch taken. */
    kShapeExplore = 2,
    kNumShapes = 3
};

/** Op-class charge counts of one update shape. */
using ShapeProfile = std::array<std::uint64_t, pimsim::kNumOpClasses>;

/**
 * Functional ops provider for batch lanes: computes like HostOps —
 * bit-identical to KernelContext by construction — while counting LCG
 * draws (to classify the SARSA shape) and replicating KernelContext's
 * operand-range assertions, so a batch run dies on exactly the inputs
 * a scalar run would (e.g. INT8 range violations).
 */
struct LaneOps : rlcore::HostOps
{
    /** LCG draws made by the current update; reset per record. */
    unsigned draws = 0;

    std::uint32_t
    lcgNextBounded(std::uint32_t bound)
    {
        SWIFTRL_ASSERT(bound > 0,
                       "lcgNextBounded requires a positive bound");
        ++draws;
        return rlcore::HostOps::lcgNextBounded(bound);
    }

    std::int32_t
    rescale(std::int64_t value, std::int32_t scale)
    {
        SWIFTRL_ASSERT(scale != 0, "rescale by zero");
        return rlcore::HostOps::rescale(value, scale);
    }

    std::int64_t
    imulSmall(std::int32_t a, std::int32_t b)
    {
        SWIFTRL_ASSERT(a >= -32768 && a <= 32767,
                       "imulSmall wide operand ", a,
                       " exceeds 16 bits: the environment's value "
                       "range does not fit the INT8 optimisation");
        SWIFTRL_ASSERT(b >= -128 && b <= 127,
                       "imulSmall narrow operand ", b,
                       " exceeds 8 bits");
        return rlcore::HostOps::imulSmall(a, b);
    }

    std::int32_t
    rescaleShift(std::int64_t value, int shift)
    {
        SWIFTRL_ASSERT(shift >= 0 && shift < 31, "bad shift ", shift);
        return rlcore::HostOps::rescaleShift(value, shift);
    }
};

/**
 * LaneOps variant for the INT32 fixed-point rules, which divide by
 * the same positive scale (the paper's 10,000) twice per update — a
 * 64-bit divide dominates their cost. This override replaces it with
 * a Granlund–Montgomery style magic multiply: for
 * m = ceil(2^63 / d) and err = m*d - 2^63 < d,
 *   floor(uv*m / 2^63) = floor((uv + uv*err/2^63) / d),
 * which equals floor(uv / d) exactly whenever uv*err < 2^63 —
 * checked against a precomputed limit, far above any value imul32
 * can produce for practical scales (plain division covers the rest).
 * Truncation toward zero follows from applying the unsigned floor to
 * |value| and restoring the sign. Kept out of the base LaneOps so
 * variants that never divide (FP32, INT8) don't carry the extra
 * inlined code in their hot loops.
 */
struct LaneOpsFastDiv : LaneOps
{
    std::int32_t
    rescale(std::int64_t value, std::int32_t scale)
    {
        SWIFTRL_ASSERT(scale != 0, "rescale by zero");
#ifdef __SIZEOF_INT128__
        if (scale > 0) {
            if (scale != _divScale)
                setDivisor(scale);
            const std::uint64_t uv =
                value < 0 ? 0 - static_cast<std::uint64_t>(value)
                          : static_cast<std::uint64_t>(value);
            if (uv <= _divLimit) {
                const auto uq = static_cast<std::uint64_t>(
                    (static_cast<unsigned __int128>(uv) * _divMagic)
                    >> 63);
                const auto q = static_cast<std::int64_t>(uq);
                return static_cast<std::int32_t>(value < 0 ? -q : q);
            }
        }
#endif
        return rlcore::HostOps::rescale(value, scale);
    }

#ifdef __SIZEOF_INT128__
  private:
    void
    setDivisor(std::int32_t scale)
    {
        _divScale = scale;
        const auto d = static_cast<std::uint64_t>(scale);
        constexpr std::uint64_t kHalf = std::uint64_t{1} << 63;
        _divMagic = kHalf / d + (kHalf % d != 0 ? 1 : 0);
        const std::uint64_t rem = kHalf % d;
        const std::uint64_t err = rem ? d - rem : 0;
        _divLimit = err ? (kHalf - 1) / err
                        : std::numeric_limits<std::uint64_t>::max();
    }

    std::int32_t _divScale = 0;   ///< divisor the magic was built for
    std::uint64_t _divMagic = 0;  ///< ceil(2^63 / divisor)
    std::uint64_t _divLimit = 0;  ///< largest |value| proven exact
#endif
};

/**
 * Counting ops provider used to calibrate shape profiles: records the
 * exact charge KernelContext makes for each priced helper (the
 * mapping below mirrors pimsim/kernel_context.hh line for line) while
 * computing functionally via HostOps. LCG draws return scripted
 * values so the probe can steer the SARSA epsilon branch.
 */
class ShapeProbe
{
  public:
    ShapeProfile counts{};

    void
    script(std::initializer_list<std::uint32_t> draws)
    {
        _scripted.assign(draws);
        _at = 0;
    }

    float fadd(float a, float b) { add(Fp32Add); return _f.fadd(a, b); }
    float fsub(float a, float b) { add(Fp32Add); return _f.fsub(a, b); }
    float fmul(float a, float b) { add(Fp32Mul); return _f.fmul(a, b); }
    bool fgt(float a, float b) { add(Fp32Cmp); return _f.fgt(a, b); }

    std::int32_t
    iadd(std::int32_t a, std::int32_t b)
    {
        add(IntAlu);
        return _f.iadd(a, b);
    }

    std::int32_t
    isub(std::int32_t a, std::int32_t b)
    {
        add(IntAlu);
        return _f.isub(a, b);
    }

    std::int64_t
    imul32(std::int32_t a, std::int32_t b)
    {
        add(Int32Mul);
        return _f.imul32(a, b);
    }

    std::int32_t
    rescale(std::int64_t value, std::int32_t scale)
    {
        add(Int32Mul);
        add(IntAlu, 2);
        return _f.rescale(value, scale);
    }

    std::int64_t
    imulSmall(std::int32_t a, std::int32_t b)
    {
        add(Int8Mul, 2);
        add(IntAlu, 2);
        return _f.imulSmall(a, b);
    }

    std::int32_t
    rescaleShift(std::int64_t value, int shift)
    {
        add(IntAlu);
        return _f.rescaleShift(value, shift);
    }

    bool igt(std::int32_t a, std::int32_t b) { add(IntAlu); return _f.igt(a, b); }

    float wramLoadF32(const float &slot) { add(WramAccess); return slot; }
    void wramStoreF32(float &slot, float v) { add(WramAccess); slot = v; }
    std::int32_t wramLoadI32(const std::int32_t &slot) { add(WramAccess); return slot; }
    void wramStoreI32(std::int32_t &slot, std::int32_t v) { add(WramAccess); slot = v; }

    void aluOps(std::uint64_t n) { add(IntAlu, n); }
    void branch(std::uint64_t n = 1) { add(Branch, n); }

    /** Scripted draw; charges exactly like the real helper. */
    std::uint32_t
    lcgNextBounded(std::uint32_t)
    {
        // lcgNext (Int32Mul + IntAlu) plus the high-bits reduction
        // (Int32Mul + IntAlu).
        add(Int32Mul, 2);
        add(IntAlu, 2);
        const std::uint32_t v =
            _at < _scripted.size() ? _scripted[_at] : 0u;
        ++_at;
        return v;
    }

  private:
    using enum pimsim::OpClass;

    void
    add(pimsim::OpClass op, std::uint64_t n = 1)
    {
        counts[static_cast<std::size_t>(op)] += n;
    }

    rlcore::HostOps _f;
    std::vector<std::uint32_t> _scripted;
    std::size_t _at = 0;
};

/**
 * Measure the charge profile of each shape by running the real update
 * template against a dummy zeroed two-row table (operands s=0, a=0,
 * r=0, s2 in row 1 for the bootstrap scan — zero values satisfy every
 * operand-range assertion). Exact because the profile depends only on
 * the shape and num_actions, never on table values.
 */
template <typename QWord, typename UpdateFn>
std::array<ShapeProfile, kNumShapes>
calibrateShapes(const KernelParams &p, bool sarsa,
                std::int32_t epsilon_milli, UpdateFn &&update)
{
    const std::size_t na = static_cast<std::size_t>(p.numActions);
    std::vector<QWord> table(2 * na);
    std::array<ShapeProfile, kNumShapes> out{};

    auto run = [&](std::size_t shape, bool terminal,
                   std::initializer_list<std::uint32_t> draws) {
        ShapeProbe probe;
        probe.script(draws);
        std::fill(table.begin(), table.end(), QWord{});
        RecordFields f;
        f.s = 0;
        f.a = 0;
        f.rewardBits = 0;
        f.s2 = terminal ? 0 : 1;
        f.terminal = terminal;
        update(probe, table.data(), f);
        out[shape] = probe.counts;
    };

    run(kShapeTerminal, true, {});
    // Main path: script the epsilon draw to epsilon_milli, which
    // fails `draw < epsilon_milli` and takes the exploit/argmax
    // branch (Q-learning ignores the script — it draws nothing).
    run(kShapeMain, false,
        {static_cast<std::uint32_t>(epsilon_milli)});
    if (sarsa) {
        // Explore path: a zero draw takes the epsilon branch whenever
        // epsilon_milli > 0. With epsilon_milli <= 0 the branch is
        // unreachable in real runs too, so the (then mismeasured)
        // profile is never multiplied by a non-zero tally.
        run(kShapeExplore, false, {0u, 0u});
    }
    return out;
}

/**
 * Lockstep batch training body: one pass retires every lane of the
 * cohort chunk. Structure-of-arrays per-lane state (walker, LCG, Q
 * image, block window, shape tallies); lanes retire lane-major, with
 * divergent chunk lengths handled by each lane's own step bound and
 * dead cores already excluded from the cohort by
 * CommandStream::launchBatch. @p Ops picks the functional provider
 * (LaneOps, or LaneOpsFastDiv for the division-heavy INT32 rules).
 */
template <typename QWord, typename Ops, typename UpdateFn>
void
trainBatch(pimsim::BatchKernelContext &bctx, const KernelParams &p,
           bool sarsa, std::int32_t epsilon_milli, UpdateFn &&update)
{
    SWIFTRL_ASSERT(p.tasklets == 1,
                   "batch interpretation is single-tasklet");
    SWIFTRL_ASSERT(!p.trackVisits,
                   "batch interpretation does not track visits");
    const bool block_mode =
        p.workload.sampling != rlcore::Sampling::Ran;
    const bool sharded = p.sliceRows > 0;
    const std::size_t na = static_cast<std::size_t>(p.numActions);
    const std::size_t never = std::numeric_limits<std::size_t>::max();

    const auto shapes =
        calibrateShapes<QWord>(p, sarsa, epsilon_milli, update);

    // Per-lane SoA state over the *active* lanes. A scalar kernel
    // instance with an empty chunk or a non-positive episode budget
    // returns before charging anything, so such lanes are excluded
    // here entirely.
    std::vector<std::size_t> lane;      ///< index into bctx
    std::vector<std::size_t> count;     ///< chunk length
    std::vector<std::size_t> ownBytes;  ///< writeback size
    std::vector<QWord *> qPtr;          ///< WRAM Q image
    std::vector<const std::uint8_t *> data; ///< MRAM transition view
    std::vector<rlcore::SampleWalker> walker;
    std::vector<Ops> ops;
    std::vector<std::array<std::uint64_t, kNumShapes>> tally;

    const std::size_t cohort = bctx.lanes();
    for (std::size_t i = 0; i < cohort; ++i) {
        pimsim::KernelContext &ctx = bctx.lane(i);
        const std::size_t core = ctx.dpuId();
        SWIFTRL_ASSERT(p.chunkCounts && core < p.chunkCounts->size(),
                       "missing chunk table for core ", core);
        SWIFTRL_ASSERT(p.lcgStates && core < p.lcgStates->size(),
                       "missing LCG state for core ", core);
        const std::size_t n = (*p.chunkCounts)[core];
        if (n == 0 || p.episodes <= 0)
            continue;
        SWIFTRL_ASSERT(!sharded ||
                           (p.haloRows && core < p.haloRows->size()),
                       "missing halo table for core ", core);

        // Mirror the scalar per-core preamble charge for charge:
        // Q-table WRAM footprint and inbound DMA (trainCore), then
        // the staging-buffer footprint and LCG seed
        // (trainCoreSingleTasklet).
        const std::size_t own_rows =
            sharded ? p.sliceRows
                    : static_cast<std::size_t>(p.numStates);
        const std::size_t halo_rows =
            sharded ? (*p.haloRows)[core] : 0;
        const std::size_t own_entries = own_rows * na;
        const std::size_t q_entries = (own_rows + halo_rows) * na;
        const std::size_t own_bytes = own_entries * sizeof(QWord);

        ctx.wramAlloc(q_entries * sizeof(QWord));
        QWord *q = bctx.scratch().template alloc<QWord>(q_entries);
        ctx.mramToWram(p.qOffset, q, own_bytes);
        if (halo_rows > 0) {
            ctx.mramToWram(p.haloOffset, q + own_entries,
                           halo_rows * na * sizeof(QWord));
        }
        ctx.wramAlloc(block_mode
                          ? p.blockTransitions * kTransitionBytes
                          : kTransitionBytes);
        const std::uint32_t seed = (*p.lcgStates)[core];
        ctx.lcgSeed(seed);

        lane.push_back(i);
        count.push_back(n);
        ownBytes.push_back(own_bytes);
        qPtr.push_back(q);
        // Transitions are read straight from the MRAM view — the
        // region is read-only for the whole launch (the only kernel
        // MRAM write is the Q writeback below, after the loop), so
        // the pointer stays valid and the bytes match what per-record
        // DMA would copy.
        data.push_back(
            bctx.dpu(i).mramView(p.dataOffset, n * kTransitionBytes));
        walker.emplace_back(n, p.workload.sampling,
                            static_cast<std::size_t>(p.hyper.stride));
        Ops o;
        o.lcg.seed(seed);
        ops.push_back(o);
        tally.push_back({});
    }

    const std::size_t nlanes = lane.size();
    if (nlanes == 0)
        return;

    // The cohort retires lane-major: every lane runs its full episode
    // budget before the next lane starts. Lanes are independent (own
    // Q slice, own walker, own LCG stream) and charges are integer
    // sums, so any retirement order is bit-identical to the scalar
    // interleaving — and lane-major keeps one lane's Q image and
    // decoded chunk hot in cache instead of cycling the whole chunk's
    // working set per step. Divergent chunk lengths need no masking
    // in this order: each lane's step loop is simply its own length.
    std::vector<RecordFields> recs;
    std::vector<std::uint32_t> order; // STR visit order, per lane
    for (std::size_t i = 0; i < nlanes; ++i) {
        // Decode the lane's chunk once: the record stream is
        // read-only for the whole launch, so the per-step fetch
        // reduces to an indexed load. (The scalar engine re-decodes
        // every visit; decode is unpriced interpreter work, so this
        // moves no modelled number.)
        const std::size_t n = count[i];
        recs.resize(n);
        std::size_t terminal_records = 0;
        for (std::size_t r = 0; r < n; ++r) {
            PackedTransition rec;
            std::memcpy(&rec, data[i] + r * kTransitionBytes,
                        kTransitionBytes);
            RecordFields &f = recs[r];
            f.s = rec.state;
            f.a = rec.action;
            f.rewardBits = rec.rewardBits;
            f.s2 = static_cast<StateId>(
                rec.nextStateBits & ~PackedTransition::kTerminalBit);
            f.terminal = (rec.nextStateBits &
                          PackedTransition::kTerminalBit) != 0;
            terminal_records += f.terminal ? 1 : 0;
        }

        Ops &o = ops[i];
        QWord *const q = qPtr[i];
        auto &t = tally[i];
        pimsim::KernelContext &ctx = bctx.lane(lane[i]);
        const auto eps = static_cast<std::uint64_t>(p.episodes);

        if (block_mode) {
            // SEQ and STR visit every index exactly once per episode
            // in an episode-invariant order (SampleWalker rewinds at
            // startEpisode). Materialise the order once — SEQ is the
            // identity and skips the table entirely.
            const bool seq =
                p.workload.sampling == rlcore::Sampling::Seq;
            if (!seq) {
                order.resize(n);
                rlcore::SampleWalker &w = walker[i];
                w.startEpisode();
                for (std::size_t k = 0; k < n; ++k) {
                    order[k] = static_cast<std::uint32_t>(w.next(
                        [](std::size_t) { return std::size_t{0}; }));
                }
            }
            const auto at = [&](std::size_t k) -> const RecordFields & {
                return recs[seq ? k : order[k]];
            };

            // Staging-window misses are value-independent, so the
            // whole launch's block DMA can be charged up front: walk
            // the window over whole episodes until an episode ends in
            // the state it started from — from then on every episode
            // repeats that miss profile (identical visit order), and
            // the remainder collapses into one bulk charge. In
            // practice the window converges at the first or second
            // episode; convergence is checked, never assumed.
            {
                std::size_t bs = never, bl = 0;
                struct SpanTimes
                {
                    std::size_t len;
                    std::uint64_t times;
                };
                std::vector<SpanTimes> misses; // ≤2 lens: block, tail
                const auto miss = [&](std::size_t len,
                                      std::uint64_t times) {
                    for (auto &m : misses) {
                        if (m.len == len) {
                            m.times += times;
                            return;
                        }
                    }
                    misses.push_back({len, times});
                };
                std::uint64_t ep_done = 0;
                while (ep_done < eps) {
                    const std::size_t bs_in = bs, bl_in = bl;
                    std::size_t full = 0, tail_len = 0, tails = 0;
                    for (std::size_t k = 0; k < n; ++k) {
                        const std::size_t idx = seq ? k : order[k];
                        if (idx >= bs && idx < bs + bl)
                            continue;
                        bs = idx / p.blockTransitions *
                             p.blockTransitions;
                        bl = std::min(p.blockTransitions, n - bs);
                        if (bl == p.blockTransitions) {
                            ++full;
                        } else {
                            tail_len = bl;
                            ++tails;
                        }
                    }
                    ++ep_done;
                    // Steady state: this episode's end state equals
                    // its start state, so all remaining episodes
                    // repeat this exact profile.
                    const std::uint64_t reps =
                        (bs == bs_in && bl == bl_in)
                            ? 1 + (eps - ep_done)
                            : 1;
                    if (full > 0)
                        miss(p.blockTransitions, full * reps);
                    if (tails > 0)
                        miss(tail_len, tails * reps);
                    ep_done += reps - 1;
                }
                for (const auto &m : misses)
                    ctx.chargeDmaSpanBulk(m.len * kTransitionBytes,
                                          m.times);
            }

            if (!sarsa) {
                // Q-learning consumes no LCG draws, so the shape of
                // every visit is the record's terminal flag — and each
                // record is visited exactly once per episode, making
                // the tallies a closed form. The hot loop is just the
                // functional updates.
                for (std::uint64_t ep = 0; ep < eps; ++ep) {
                    if (seq) {
                        for (std::size_t k = 0; k < n; ++k)
                            update(o, q, recs[k]);
                    } else {
                        for (std::size_t k = 0; k < n; ++k)
                            update(o, q, recs[order[k]]);
                    }
                }
                t[kShapeTerminal] += eps * terminal_records;
                t[kShapeMain] += eps * (n - terminal_records);
            } else {
                // SARSA's explore/exploit shape depends on its LCG
                // draws: classify per visit.
                for (std::uint64_t ep = 0; ep < eps; ++ep) {
                    for (std::size_t k = 0; k < n; ++k) {
                        const RecordFields &f = at(k);
                        o.draws = 0;
                        update(o, q, f);
                        const std::size_t shape =
                            f.terminal        ? kShapeTerminal
                            : (o.draws == 2) ? kShapeExplore
                                              : kShapeMain;
                        ++t[shape];
                    }
                }
            }
        } else {
            // RAN: the sample index is itself an LCG draw, taken
            // before the update's own draws exactly as the scalar
            // fetch-then-update order does.
            const auto bound = static_cast<std::uint32_t>(n);
            if (!sarsa) {
                std::uint64_t term_visits = 0;
                for (std::uint64_t ep = 0; ep < eps; ++ep) {
                    for (std::size_t k = 0; k < n; ++k) {
                        const RecordFields &f =
                            recs[o.lcg.nextBounded(bound)];
                        update(o, q, f);
                        term_visits += f.terminal ? 1 : 0;
                    }
                }
                t[kShapeTerminal] += term_visits;
                t[kShapeMain] += eps * n - term_visits;
            } else {
                for (std::uint64_t ep = 0; ep < eps; ++ep) {
                    for (std::size_t k = 0; k < n; ++k) {
                        const RecordFields &f =
                            recs[o.lcg.nextBounded(bound)];
                        o.draws = 0;
                        update(o, q, f);
                        const std::size_t shape =
                            f.terminal        ? kShapeTerminal
                            : (o.draws == 2) ? kShapeExplore
                                              : kShapeMain;
                        ++t[shape];
                    }
                }
            }
        }
    }

    // Retire the tallied charges and write back per lane. Ordering
    // relative to the loop is immaterial: cycles, op counts and DMA
    // bytes are integer sums, so any interleaving that preserves the
    // per-lane totals is bit-identical to the scalar run.
    for (std::size_t i = 0; i < nlanes; ++i) {
        pimsim::KernelContext &ctx = bctx.lane(lane[i]);
        const std::uint64_t records = tally[i][kShapeTerminal] +
                                      tally[i][kShapeMain] +
                                      tally[i][kShapeExplore];
        for (std::size_t s = 0; s < kNumShapes; ++s) {
            if (tally[i][s] == 0)
                continue;
            for (std::size_t c = 0; c < pimsim::kNumOpClasses; ++c) {
                if (shapes[s][c] != 0)
                    ctx.chargeBulk(static_cast<pimsim::OpClass>(c),
                                   shapes[s][c] * tally[i][s]);
            }
        }
        // Fixed per-record charges outside the update rule, mirrored
        // from the scalar loop (the parity test enforces the match):
        //   aluOps(3) + branch   walker/loop bookkeeping
        //   aluOps(4)            record WRAM reads (fetch tail)
        //   aluOps(2)            decode: terminal-flag unmask
        //   block mode: aluOps(2) buffer indexing, every fetch
        //   RAN: lcgNextBounded draw = Int32Mul x2 + IntAlu x2,
        //        plus one 16-byte record DMA
        // Either mode totals 11 IntAlu per record. Episodes add one
        // branch each (the episode-loop branch).
        ctx.chargeBulk(pimsim::OpClass::IntAlu, 11 * records);
        ctx.chargeBulk(pimsim::OpClass::Branch,
                       records + static_cast<std::uint64_t>(
                                     p.episodes));
        if (!block_mode) {
            ctx.chargeBulk(pimsim::OpClass::Int32Mul, 2 * records);
            ctx.chargeDmaSpanBulk(kTransitionBytes, records);
        }
        ctx.wramToMram(p.qOffset, qPtr[i], ownBytes[i]);
        (*p.lcgStates)[ctx.dpuId()] = ops[i].lcg.state();
    }
}

} // namespace

template <typename Ctx>
void
runTrainingKernel(Ctx &ctx, const KernelParams &p)
{
    using rlcore::Algorithm;
    using rlcore::NumericFormat;

    SWIFTRL_ASSERT(p.numStates > 0 && p.numActions > 0,
                   "kernel needs a Q-table shape");
    const auto scaled = rlcore::ScaledHyper::fromHyper(p.hyper);
    const auto epsilon_milli = scaled.epsilonMilli;
    const float alpha = p.hyper.alpha;
    const float gamma = p.hyper.gamma;
    const ActionId num_actions = p.numActions;

    if (p.workload.format == NumericFormat::Fp32) {
        if (p.workload.algo == Algorithm::QLearning) {
            trainCore<float>(
                ctx, p,
                [&](Ctx &c, float *q, const RecordFields &f) {
                    rlcore::qlearningUpdateFp32(
                        c, q, num_actions, f.s, f.a,
                        std::bit_cast<float>(f.rewardBits), f.s2,
                        f.terminal, alpha, gamma);
                });
        } else {
            trainCore<float>(
                ctx, p,
                [&](Ctx &c, float *q, const RecordFields &f) {
                    rlcore::sarsaUpdateFp32(
                        c, q, num_actions, f.s, f.a,
                        std::bit_cast<float>(f.rewardBits), f.s2,
                        f.terminal, alpha, gamma, epsilon_milli);
                });
        }
        return;
    }

    if (p.workload.format == NumericFormat::Int8) {
        const auto pow2 = rlcore::ScaledHyperPow2::fromHyper(p.hyper);
        if (p.workload.algo == Algorithm::QLearning) {
            trainCore<std::int32_t>(
                ctx, p,
                [&](Ctx &c, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::qlearningUpdateInt8(c, q, num_actions,
                                                f.s, f.a,
                                                f.rewardBits, f.s2,
                                                f.terminal, pow2);
                });
        } else {
            trainCore<std::int32_t>(
                ctx, p,
                [&](Ctx &c, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::sarsaUpdateInt8(c, q, num_actions, f.s,
                                            f.a, f.rewardBits, f.s2,
                                            f.terminal, pow2);
                });
        }
        return;
    }

    if (p.workload.algo == Algorithm::QLearning) {
        trainCore<std::int32_t>(
            ctx, p,
            [&](Ctx &c, std::int32_t *q, const RecordFields &f) {
                rlcore::qlearningUpdateInt32(c, q, num_actions, f.s,
                                             f.a, f.rewardBits, f.s2,
                                             f.terminal, scaled);
            });
    } else {
        trainCore<std::int32_t>(
            ctx, p,
            [&](Ctx &c, std::int32_t *q, const RecordFields &f) {
                rlcore::sarsaUpdateInt32(c, q, num_actions, f.s, f.a,
                                         f.rewardBits, f.s2,
                                         f.terminal, scaled);
            });
    }
}

// The production engine drives the batched context; the parity test
// drives the write-through reference. Instantiated here so kernel
// code stays out of the header while callers link either flavour.
// Named by policy, not alias: under SWIFTRL_REFERENCE_CHARGING both
// aliases denote the Reference policy and alias-named instantiations
// would collide.
template void
runTrainingKernel<pimsim::BasicKernelContext<
    pimsim::ChargePolicy::Batched>>(
    pimsim::BasicKernelContext<pimsim::ChargePolicy::Batched> &,
    const KernelParams &);
template void
runTrainingKernel<pimsim::BasicKernelContext<
    pimsim::ChargePolicy::Reference>>(
    pimsim::BasicKernelContext<pimsim::ChargePolicy::Reference> &,
    const KernelParams &);

void
runTrainingKernelBatch(pimsim::BatchKernelContext &batch,
                       const KernelParams &p)
{
    using rlcore::Algorithm;
    using rlcore::NumericFormat;

    SWIFTRL_ASSERT(p.numStates > 0 && p.numActions > 0,
                   "kernel needs a Q-table shape");
    const auto scaled = rlcore::ScaledHyper::fromHyper(p.hyper);
    const auto epsilon_milli = scaled.epsilonMilli;
    const float alpha = p.hyper.alpha;
    const float gamma = p.hyper.gamma;

    // The action count parameterises the update rules' inner max /
    // argmax loops. Dispatching it as a compile-time constant for the
    // common environment widths lets those loops fully unroll inside
    // the batch interpreter; the expression tree and its evaluation
    // order are untouched, so results stay bit-identical to the
    // runtime-width path (which remains the fallback).
    const auto run = [&](auto num_actions) {
        if (p.workload.format == NumericFormat::Fp32) {
            if (p.workload.algo == Algorithm::QLearning) {
                trainBatch<float, LaneOps>(
                    batch, p, /*sarsa=*/false, epsilon_milli,
                    [&](auto &ops, float *q, const RecordFields &f) {
                        rlcore::qlearningUpdateFp32(
                            ops, q, num_actions, f.s, f.a,
                            std::bit_cast<float>(f.rewardBits), f.s2,
                            f.terminal, alpha, gamma);
                    });
            } else {
                trainBatch<float, LaneOps>(
                    batch, p, /*sarsa=*/true, epsilon_milli,
                    [&](auto &ops, float *q, const RecordFields &f) {
                        rlcore::sarsaUpdateFp32(
                            ops, q, num_actions, f.s, f.a,
                            std::bit_cast<float>(f.rewardBits), f.s2,
                            f.terminal, alpha, gamma, epsilon_milli);
                    });
            }
            return;
        }

        if (p.workload.format == NumericFormat::Int8) {
            const auto pow2 =
                rlcore::ScaledHyperPow2::fromHyper(p.hyper);
            if (p.workload.algo == Algorithm::QLearning) {
                trainBatch<std::int32_t, LaneOps>(
                    batch, p, /*sarsa=*/false, epsilon_milli,
                    [&](auto &ops, std::int32_t *q,
                        const RecordFields &f) {
                        rlcore::qlearningUpdateInt8(
                            ops, q, num_actions, f.s, f.a,
                            f.rewardBits, f.s2, f.terminal, pow2);
                    });
            } else {
                trainBatch<std::int32_t, LaneOps>(
                    batch, p, /*sarsa=*/true, epsilon_milli,
                    [&](auto &ops, std::int32_t *q,
                        const RecordFields &f) {
                        rlcore::sarsaUpdateInt8(
                            ops, q, num_actions, f.s, f.a,
                            f.rewardBits, f.s2, f.terminal, pow2);
                    });
            }
            return;
        }

        if (p.workload.algo == Algorithm::QLearning) {
            trainBatch<std::int32_t, LaneOpsFastDiv>(
                batch, p, /*sarsa=*/false, epsilon_milli,
                [&](auto &ops, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::qlearningUpdateInt32(
                        ops, q, num_actions, f.s, f.a, f.rewardBits,
                        f.s2, f.terminal, scaled);
                });
        } else {
            // Plain LaneOps measures faster here: SARSA's update is
            // already branch-heavy (epsilon draw, argmax), and the
            // extra inlined magic-divide code costs more than the
            // divides it saves.
            trainBatch<std::int32_t, LaneOps>(
                batch, p, /*sarsa=*/true, epsilon_milli,
                [&](auto &ops, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::sarsaUpdateInt32(
                        ops, q, num_actions, f.s, f.a, f.rewardBits,
                        f.s2, f.terminal, scaled);
                });
        }
    };

    switch (p.numActions) {
    case 4: // FrozenLake-class grids
        run(std::integral_constant<ActionId, 4>{});
        break;
    case 6: // Taxi
        run(std::integral_constant<ActionId, 6>{});
        break;
    default:
        run(p.numActions);
        break;
    }
}

} // namespace swiftrl
