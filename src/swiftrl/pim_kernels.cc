#include "swiftrl/pim_kernels.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "rlcore/dataset.hh"
#include "rlcore/sampling.hh"
#include "rlcore/update_rules.hh"

namespace swiftrl {

namespace {

using rlcore::ActionId;
using rlcore::PackedTransition;
using rlcore::StateId;

/**
 * Experience fetcher. SEQ and STR kernels stream aligned blocks of
 * records through a WRAM staging buffer (one DMA per block); RAN
 * kernels issue one small DMA per record, since consecutive draws land
 * in unrelated MRAM rows — the access pattern PIM tolerates and caches
 * do not. The staging buffer lives in the context's scratch arena, so
 * it is recycled across launches instead of heap-allocated per core
 * per generation.
 */
template <typename Ctx>
class TransitionFetcher
{
  public:
    TransitionFetcher(Ctx &ctx, std::size_t data_offset,
                      std::size_t count, std::size_t block_transitions,
                      bool block_mode)
        : _ctx(ctx), _dataOffset(data_offset), _count(count),
          _blockTransitions(block_transitions), _blockMode(block_mode)
    {
        SWIFTRL_ASSERT(_blockTransitions > 0, "empty staging block");
        if (_blockMode) {
            _buffer = ctx.scratch().template alloc<PackedTransition>(
                _blockTransitions);
        }
    }

    /** Fetch record @p idx, charging its DMA and WRAM traffic. */
    PackedTransition
    fetch(std::size_t idx)
    {
        SWIFTRL_ASSERT(idx < _count, "record index out of chunk");
        PackedTransition rec;
        if (_blockMode) {
            if (idx < _blockStart ||
                idx >= _blockStart + _blockLen) {
                loadBlock(idx);
            }
            rec = _buffer[idx - _blockStart];
            // Buffer indexing: offset computation on the core.
            _ctx.aluOps(2);
        } else {
            _ctx.mramToWram(_dataOffset + idx * kTransitionBytes, &rec,
                            kTransitionBytes);
        }
        // The update reads all four record words from WRAM.
        _ctx.aluOps(4);
        return rec;
    }

  private:
    void
    loadBlock(std::size_t idx)
    {
        const std::size_t start =
            idx / _blockTransitions * _blockTransitions;
        _blockLen = std::min(_blockTransitions, _count - start);
        _ctx.mramToWram(_dataOffset + start * kTransitionBytes,
                        _buffer, _blockLen * kTransitionBytes);
        _blockStart = start;
    }

    Ctx &_ctx;
    std::size_t _dataOffset;
    std::size_t _count;
    std::size_t _blockTransitions;
    bool _blockMode;
    PackedTransition *_buffer = nullptr;
    std::size_t _blockStart = std::numeric_limits<std::size_t>::max();
    std::size_t _blockLen = 0;
};

/** Unpacked record fields common to both formats. */
struct RecordFields
{
    StateId s;
    ActionId a;
    std::int32_t rewardBits;
    StateId s2;
    bool terminal;
};

template <typename Ctx>
RecordFields
decodeRecord(Ctx &ctx, const PackedTransition &rec)
{
    RecordFields f;
    f.s = rec.state;
    f.a = rec.action;
    f.rewardBits = rec.rewardBits;
    // Terminal flag unmasking: an AND and a shift.
    ctx.aluOps(2);
    f.s2 = static_cast<StateId>(rec.nextStateBits &
                                ~PackedTransition::kTerminalBit);
    f.terminal =
        (rec.nextStateBits & PackedTransition::kTerminalBit) != 0;
    return f;
}

/** Single-tasklet training loop (the paper's configuration). */
template <typename Ctx, typename QWord, typename UpdateFn>
void
trainCoreSingleTasklet(Ctx &ctx, const KernelParams &p,
                       std::size_t count, QWord *q, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    const bool block_mode =
        p.workload.sampling != rlcore::Sampling::Ran;
    ctx.wramAlloc(block_mode
                      ? p.blockTransitions * kTransitionBytes
                      : kTransitionBytes);

    ctx.lcgSeed((*p.lcgStates)[core]);

    rlcore::SampleWalker walker(
        count, p.workload.sampling,
        static_cast<std::size_t>(p.hyper.stride));
    TransitionFetcher<Ctx> fetcher(ctx, p.dataOffset, count,
                                   p.blockTransitions, block_mode);

    for (int ep = 0; ep < p.episodes; ++ep) {
        walker.startEpisode();
        ctx.branch();
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t idx =
                walker.next([&](std::size_t bound) {
                    return static_cast<std::size_t>(
                        ctx.lcgNextBounded(
                            static_cast<std::uint32_t>(bound)));
                });
            // Walker bookkeeping + loop counter + record address
            // computation (idx * 16 as a shift).
            ctx.aluOps(3);
            ctx.branch();

            const PackedTransition rec = fetcher.fetch(idx);
            const RecordFields f = decodeRecord(ctx, rec);
            update(ctx, q, f);
        }
    }

    (*p.lcgStates)[core] = ctx.lcgState();
}

/**
 * Multi-tasklet training loop (the paper's future work): the chunk is
 * split into near-equal contiguous sub-chunks, one per tasklet; each
 * tasklet walks its own sub-chunk in the workload's sampling order
 * with its own persistent LCG stream and staging buffer, and all
 * tasklets update the core's shared WRAM Q-table. Execution
 * interleaves round-robin, one update per tasklet per turn, matching
 * the pipeline's fine-grained multithreading order.
 */
template <typename Ctx, typename QWord, typename UpdateFn>
void
trainCoreMultiTasklet(Ctx &ctx, const KernelParams &p,
                      std::size_t count, QWord *q, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    const unsigned t = p.tasklets;
    SWIFTRL_ASSERT(p.lcgStates->size() >=
                       (core + 1) * static_cast<std::size_t>(t),
                   "LCG state table too small for ", t,
                   " tasklets on core ", core);
    const bool block_mode =
        p.workload.sampling != rlcore::Sampling::Ran;

    // Sub-chunk split; tasklets beyond the chunk size stay idle.
    std::vector<std::size_t> sub_first(t, 0), sub_count(t, 0);
    {
        const std::size_t base = count / t;
        const std::size_t extra = count % t;
        std::size_t at = 0;
        for (unsigned tl = 0; tl < t; ++tl) {
            sub_first[tl] = at;
            sub_count[tl] = base + (tl < extra ? 1 : 0);
            at += sub_count[tl];
        }
    }

    std::vector<std::unique_ptr<rlcore::SampleWalker>> walkers(t);
    std::vector<std::unique_ptr<TransitionFetcher<Ctx>>> fetchers(t);
    std::vector<std::uint32_t> lcg(t);
    std::size_t longest = 0;
    for (unsigned tl = 0; tl < t; ++tl) {
        lcg[tl] = (*p.lcgStates)[core * t + tl];
        if (sub_count[tl] == 0)
            continue;
        // Each tasklet owns a staging buffer in the shared WRAM.
        ctx.wramAlloc(block_mode
                          ? p.blockTransitions * kTransitionBytes
                          : kTransitionBytes);
        walkers[tl] = std::make_unique<rlcore::SampleWalker>(
            sub_count[tl], p.workload.sampling,
            static_cast<std::size_t>(p.hyper.stride));
        fetchers[tl] = std::make_unique<TransitionFetcher<Ctx>>(
            ctx, p.dataOffset, count, p.blockTransitions,
            block_mode);
        longest = std::max(longest, sub_count[tl]);
    }

    for (int ep = 0; ep < p.episodes; ++ep) {
        for (unsigned tl = 0; tl < t; ++tl) {
            if (walkers[tl])
                walkers[tl]->startEpisode();
        }
        ctx.branch();
        for (std::size_t k = 0; k < longest; ++k) {
            for (unsigned tl = 0; tl < t; ++tl) {
                if (k >= sub_count[tl])
                    continue;
                // Swap in this tasklet's LCG stream.
                ctx.lcgSeed(lcg[tl]);
                const std::size_t idx =
                    walkers[tl]->next([&](std::size_t bound) {
                        return static_cast<std::size_t>(
                            ctx.lcgNextBounded(
                                static_cast<std::uint32_t>(bound)));
                    });
                ctx.aluOps(3);
                ctx.branch();

                const PackedTransition rec =
                    fetchers[tl]->fetch(sub_first[tl] + idx);
                const RecordFields f = decodeRecord(ctx, rec);
                update(ctx, q, f);
                lcg[tl] = ctx.lcgState();
            }
        }
    }

    for (unsigned tl = 0; tl < t; ++tl)
        (*p.lcgStates)[core * t + tl] = lcg[tl];
}

/** Shared training kernel body, templated on the Q-word type. */
template <typename QWord, typename Ctx, typename UpdateFn>
void
trainCore(Ctx &ctx, const KernelParams &p, UpdateFn &&update)
{
    const std::size_t core = ctx.dpuId();
    SWIFTRL_ASSERT(p.chunkCounts && core < p.chunkCounts->size(),
                   "missing chunk table for core ", core);
    SWIFTRL_ASSERT(p.lcgStates && core < p.lcgStates->size(),
                   "missing LCG state for core ", core);
    SWIFTRL_ASSERT(p.tasklets >= 1, "at least one tasklet required");
    const std::size_t count = (*p.chunkCounts)[core];
    if (count == 0 || p.episodes <= 0)
        return;

    const bool sharded = p.sliceRows > 0;
    SWIFTRL_ASSERT(!sharded || !p.trackVisits,
                   "visit tracking is incompatible with sharded "
                   "Q-tables");
    SWIFTRL_ASSERT(!sharded ||
                       (p.haloRows && core < p.haloRows->size()),
                   "missing halo table for core ", core);
    // In sharded mode the WRAM table is [owned slice | halo rows]:
    // the slice is read-write and DMA'd back, the halo is a
    // read-only snapshot of remote next-state rows, refreshed by the
    // host each sync round. Record state ids arrive pre-localised to
    // this layout, so the update rules below are oblivious to it.
    const std::size_t own_rows =
        sharded ? p.sliceRows : static_cast<std::size_t>(p.numStates);
    const std::size_t halo_rows =
        sharded ? (*p.haloRows)[core] : 0;
    const std::size_t na = static_cast<std::size_t>(p.numActions);
    const std::size_t own_entries = own_rows * na;
    const std::size_t q_entries = (own_rows + halo_rows) * na;
    const std::size_t own_bytes = own_entries * sizeof(QWord);
    pimsim::KernelScratch &scratch = ctx.scratch();

    // Shared WRAM Q-table, DMA'd in at entry and out at exit. The
    // host image lives in the launch's scratch arena; the inbound
    // DMA overwrites every entry.
    ctx.wramAlloc(q_entries * sizeof(QWord));
    QWord *q = scratch.template alloc<QWord>(q_entries);
    ctx.mramToWram(p.qOffset, q, own_bytes);
    if (halo_rows > 0) {
        ctx.mramToWram(p.haloOffset, q + own_entries,
                       halo_rows * na * sizeof(QWord));
    }

    // Optional visit counters for weighted aggregation: zeroed each
    // launch (weights reflect the current round's coverage).
    std::uint32_t *visits = nullptr;
    if (p.trackVisits) {
        ctx.wramAlloc(q_entries * sizeof(std::uint32_t));
        visits = scratch.template alloc<std::uint32_t>(q_entries);
        std::fill_n(visits, q_entries, 0u);
    }
    auto counted_update = [&](Ctx &c, QWord *table,
                              const RecordFields &f) {
        update(c, table, f);
        if (p.trackVisits) {
            // Increment: one address computation + load-modify-store.
            c.aluOps(2);
            ++visits[static_cast<std::size_t>(f.s) *
                         static_cast<std::size_t>(p.numActions) +
                     static_cast<std::size_t>(f.a)];
        }
    };

    if (p.tasklets == 1) {
        trainCoreSingleTasklet(ctx, p, count, q, counted_update);
    } else {
        trainCoreMultiTasklet(ctx, p, count, q, counted_update);
    }

    // Only the owned slice is written back; halo rows are a stale
    // read-only snapshot the host refreshes from the aggregate.
    ctx.wramToMram(p.qOffset, q, own_bytes);
    if (p.trackVisits) {
        ctx.wramToMram(p.visitsOffset, visits,
                       q_entries * sizeof(std::uint32_t));
    }
}

} // namespace

template <typename Ctx>
void
runTrainingKernel(Ctx &ctx, const KernelParams &p)
{
    using rlcore::Algorithm;
    using rlcore::NumericFormat;

    SWIFTRL_ASSERT(p.numStates > 0 && p.numActions > 0,
                   "kernel needs a Q-table shape");
    const auto scaled = rlcore::ScaledHyper::fromHyper(p.hyper);
    const auto epsilon_milli = scaled.epsilonMilli;
    const float alpha = p.hyper.alpha;
    const float gamma = p.hyper.gamma;
    const ActionId num_actions = p.numActions;

    if (p.workload.format == NumericFormat::Fp32) {
        if (p.workload.algo == Algorithm::QLearning) {
            trainCore<float>(
                ctx, p,
                [&](Ctx &c, float *q, const RecordFields &f) {
                    rlcore::qlearningUpdateFp32(
                        c, q, num_actions, f.s, f.a,
                        std::bit_cast<float>(f.rewardBits), f.s2,
                        f.terminal, alpha, gamma);
                });
        } else {
            trainCore<float>(
                ctx, p,
                [&](Ctx &c, float *q, const RecordFields &f) {
                    rlcore::sarsaUpdateFp32(
                        c, q, num_actions, f.s, f.a,
                        std::bit_cast<float>(f.rewardBits), f.s2,
                        f.terminal, alpha, gamma, epsilon_milli);
                });
        }
        return;
    }

    if (p.workload.format == NumericFormat::Int8) {
        const auto pow2 = rlcore::ScaledHyperPow2::fromHyper(p.hyper);
        if (p.workload.algo == Algorithm::QLearning) {
            trainCore<std::int32_t>(
                ctx, p,
                [&](Ctx &c, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::qlearningUpdateInt8(c, q, num_actions,
                                                f.s, f.a,
                                                f.rewardBits, f.s2,
                                                f.terminal, pow2);
                });
        } else {
            trainCore<std::int32_t>(
                ctx, p,
                [&](Ctx &c, std::int32_t *q,
                    const RecordFields &f) {
                    rlcore::sarsaUpdateInt8(c, q, num_actions, f.s,
                                            f.a, f.rewardBits, f.s2,
                                            f.terminal, pow2);
                });
        }
        return;
    }

    if (p.workload.algo == Algorithm::QLearning) {
        trainCore<std::int32_t>(
            ctx, p,
            [&](Ctx &c, std::int32_t *q, const RecordFields &f) {
                rlcore::qlearningUpdateInt32(c, q, num_actions, f.s,
                                             f.a, f.rewardBits, f.s2,
                                             f.terminal, scaled);
            });
    } else {
        trainCore<std::int32_t>(
            ctx, p,
            [&](Ctx &c, std::int32_t *q, const RecordFields &f) {
                rlcore::sarsaUpdateInt32(c, q, num_actions, f.s, f.a,
                                         f.rewardBits, f.s2,
                                         f.terminal, scaled);
            });
    }
}

// The production engine drives the batched context; the parity test
// drives the write-through reference. Instantiated here so kernel
// code stays out of the header while callers link either flavour.
// Named by policy, not alias: under SWIFTRL_REFERENCE_CHARGING both
// aliases denote the Reference policy and alias-named instantiations
// would collide.
template void
runTrainingKernel<pimsim::BasicKernelContext<
    pimsim::ChargePolicy::Batched>>(
    pimsim::BasicKernelContext<pimsim::ChargePolicy::Batched> &,
    const KernelParams &);
template void
runTrainingKernel<pimsim::BasicKernelContext<
    pimsim::ChargePolicy::Reference>>(
    pimsim::BasicKernelContext<pimsim::ChargePolicy::Reference> &,
    const KernelParams &);

} // namespace swiftrl
