#include "swiftrl/session.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "common/logging.hh"
#include "rlcore/seeds.hh"
#include "rlcore/serialization.hh"
#include "swiftrl/partition.hh"
#include "telemetry/engine_collector.hh"
#include "telemetry/metric_registry.hh"

namespace swiftrl {

using pimsim::TimeBucket;
using rlcore::ActionId;
using rlcore::Dataset;
using rlcore::NumericFormat;
using rlcore::QTable;
using rlcore::StateId;

TrainerSession::TrainerSession(pimsim::PimSystem &system,
                               SessionConfig config)
    : _system(system), _config(std::move(config)),
      _qio(_config.workload, _config.hyper), _aggregated(1, 1)
{
    if (_config.tau <= 0)
        SWIFTRL_FATAL("synchronisation period tau must be positive");
    if (_config.hyper.episodes <= 0)
        SWIFTRL_FATAL("episode count must be positive");
    if (_config.blockTransitions == 0)
        SWIFTRL_FATAL("staging block must hold at least one transition");
    if (_config.tasklets < 1 || _config.tasklets > 24)
        SWIFTRL_FATAL("UPMEM DPUs support 1-24 tasklets, got ",
                      _config.tasklets);
    if (!(_config.epsilonDecay > 0.0f) || _config.epsilonDecay > 1.0f)
        SWIFTRL_FATAL("epsilon decay must be in (0, 1], got ",
                      _config.epsilonDecay);
    if (_config.streaming && _config.weightedAggregation)
        SWIFTRL_FATAL("weighted aggregation is not available in "
                      "streaming mode");
    if (_config.shards > 0 && _config.streaming)
        SWIFTRL_FATAL("sharded Q-tables are offline-only; streaming "
                      "generations replicate the whole table");
    if (_config.shards > 0 && _config.weightedAggregation)
        SWIFTRL_FATAL("sharded Q-tables do not support visit-weighted "
                      "aggregation");
    validate(_config.retry);
}

TrainerSession::~TrainerSession()
{
    // A session torn down mid-run (the fleet preemption path destroys
    // Paused sessions after checkpointing them) still closes its
    // lifecycle span, with an outcome that says why it ended.
    if (_traceSpan.active()) {
        _traceSpan.finish(_stream ? _stream->now() : 0.0,
                          _state == SessionState::Paused ? "preempted"
                                                         : "abandoned");
    }
}

void
TrainerSession::openRunSpan(const char *how)
{
    _traceSpan = telemetry::tracer().begin(
        "session.run", "session", "modelled", _stream->now(),
        _config.traceParent ? _config.traceParent
                            : telemetry::currentSpanParent());
    _traceSpan.attr("how", how)
        .attr("cores", _system.numDpus())
        .attr("streaming", _config.streaming ? "yes" : "no");
    if (_config.shards > 0)
        _traceSpan.attr("shards", _config.shards);
    _traceFaultsSeen = 0;
}

pimsim::CommandStream &
TrainerSession::stream()
{
    SWIFTRL_ASSERT(_stream, "session has no stream before begin()");
    return *_stream;
}

void
TrainerSession::start(StateId num_states, ActionId num_actions)
{
    SWIFTRL_ASSERT(_state == SessionState::Init,
                   "a session begins (or restores) exactly once");
    _numStates = num_states;
    _numActions = num_actions;
    _entries = static_cast<std::size_t>(num_states) *
               static_cast<std::size_t>(num_actions);
    const std::size_t q_bytes = _entries * rlcore::kQWireBytesPerEntry;
    // Transitions start at the next 8-byte boundary past the Q region
    // (and, under weighted aggregation, past the visit-count region).
    _visitsOffset = (q_bytes + 7) / 8 * 8;
    _dataOffset = _config.weightedAggregation
                      ? (_visitsOffset + q_bytes + 7) / 8 * 8
                      : _visitsOffset;

    _stream = std::make_unique<pimsim::CommandStream>(_system);
    if (_config.metrics) {
        _collector = std::make_unique<telemetry::EngineCollector>(
            *_config.metrics, _system);
        _stream->setObserver(_collector.get());
    }

    const std::size_t n = _system.numDpus();
    _firsts.assign(n, 0);
    _counts.assign(n, 0);

    // Persistent LCG streams, one per (core, tasklet), carried across
    // rounds (and generations) exactly as a real deployment keeps the
    // DPU binaries resident.
    const std::size_t streams = n * _config.tasklets;
    _lcgStates.resize(streams);
    for (std::size_t i = 0; i < streams; ++i)
        _lcgStates[i] = rlcore::deriveLcgSeed(_config.hyper.seed, i);

    _aggregated = QTable(num_states, num_actions);
    _epsilonNow = _config.hyper.epsilon;
    buildKernel();
}

void
TrainerSession::buildKernel()
{
    _params.workload = _config.workload;
    _params.hyper = _config.hyper;
    _params.numStates = _numStates;
    _params.numActions = _numActions;
    _params.qOffset = _qio.qOffset();
    _params.dataOffset = _dataOffset;
    _params.chunkCounts = &_counts;
    _params.lcgStates = &_lcgStates;
    _params.blockTransitions = _config.blockTransitions;
    _params.tasklets = _config.tasklets;
    _params.trackVisits = _config.weightedAggregation;
    _params.visitsOffset = _visitsOffset;
    _params.sliceRows = shardedMode() ? _sliceRows : 0;
    _params.haloOffset = _haloOffset;
    _params.haloRows = &_haloRows;
    // One kernel wrapper for every round and retry: the KernelFn
    // (a std::function) allocates, so it is built once and reused
    // rather than reconstructed per launch. It reads the episode
    // count through _params at call time.
    _kernel = [this](pimsim::KernelContext &ctx) {
        runTrainingKernel(ctx, _params);
    };
    _batchKernel = [this](pimsim::BatchKernelContext &batch) {
        runTrainingKernelBatch(batch, _params);
    };
}

std::vector<std::vector<std::uint8_t>>
TrainerSession::packChunks(const Dataset &data) const
{
    const std::size_t n = _system.numDpus();
    std::vector<std::vector<std::uint8_t>> packed(n);
    for (std::size_t i = 0; i < n; ++i) {
        packed[i] =
            _config.workload.format == NumericFormat::Fp32
                ? data.packFp32(_firsts[i], _counts[i])
                : data.packInt32(_firsts[i], _counts[i],
                                 _qio.fixedScale());
    }
    return packed;
}

void
TrainerSession::repartition(const Dataset &data)
{
    const std::size_t n = _system.numDpus();
    const std::size_t live = _stream->liveDpuCount();
    if (live == 0)
        SWIFTRL_FATAL("all ", n, " cores lost to permanent dropouts; "
                      "nothing left to redistribute to");
    const auto live_chunks = partitionDataset(data.size(), live);
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (_stream->isDead(i)) {
            _firsts[i] = 0;
            _counts[i] = 0;
            continue;
        }
        _firsts[i] = live_chunks[next].first;
        _counts[i] = live_chunks[next].count;
        ++next;
    }
}

void
TrainerSession::scatterActive(TimeBucket bucket,
                              std::string_view label)
{
    const auto packed = packChunks(*_activeData);
    std::vector<std::span<const std::uint8_t>> spans(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i)
        spans[i] = packed[i];
    _stream->pushChunks(_dataOffset, spans, bucket, label);
}

void
TrainerSession::redistribute()
{
    // Permanent dropout recovery: re-partition the active dataset
    // over the survivors (dead cores get empty chunks) and restart
    // the interrupted round from the last aggregate. The re-broadcast
    // is functionally idempotent — every survivor already holds the
    // aggregate, because the faulted launch committed nothing — but
    // the real host cannot know that, so both transfers are paid for
    // on the Recovery track.
    if (shardedMode()) {
        repartitionSharded();
        scatterSharded(TimeBucket::Recovery, "scatter:redistribute",
                       /*poke=*/false);
        pushShardSlices(TimeBucket::Recovery, "broadcast:recover",
                        /*poke=*/false);
        pushShardHalos(TimeBucket::Recovery, "scatter:halo-recover",
                       /*poke=*/false);
        return;
    }
    repartition(*_activeData);
    scatterActive(TimeBucket::Recovery, "scatter:redistribute");
    _qio.broadcastQTable(*_stream, _aggregated, TimeBucket::Recovery,
                         "broadcast:recover");
}

void
TrainerSession::setupShardLayout()
{
    SWIFTRL_ASSERT(_activeData, "shard layout needs an armed dataset");
    const std::string reason = shardPlanInvalidReason(
        _numStates, _config.shards, _system.numDpus());
    if (!reason.empty())
        SWIFTRL_FATAL("cannot shard this run: ", reason);
    _plan = std::make_unique<ShardPlan>(
        makeShardPlan(_numStates, _config.shards, _system.numDpus()));
    _sliceRows = static_cast<std::size_t>(_plan->map.rowsPerShard());
    _sliceEntries =
        _sliceRows * static_cast<std::size_t>(_numActions);

    // Sharded MRAM layout: slice | data | halo, each region 8-byte
    // aligned. The data and halo offsets are global (identical on
    // every core) and sized for the worst case — after dropouts a
    // lone surviving replica can inherit its shard's entire routing
    // share, and a fixed halo offset keeps redistribution from
    // relayouting the bank.
    const std::size_t slice_bytes =
        _sliceEntries * rlcore::kQWireBytesPerEntry;
    _dataOffset = (slice_bytes + 7) / 8 * 8;
    const std::size_t data_end =
        _dataOffset +
        _activeData->size() * sizeof(rlcore::PackedTransition);
    _haloOffset = (data_end + 7) / 8 * 8;

    const std::size_t demand = shardedMramDemandBound(
        _numStates, _numActions, _config.shards, _activeData->size());
    if (demand > _system.config().mramBytesPerDpu)
        SWIFTRL_FATAL("sharded layout needs ", demand,
                      " bytes of MRAM per core but banks hold ",
                      _system.config().mramBytesPerDpu,
                      "; raise the shard count or shrink the dataset");

    _routing = routeByOwner(*_activeData, _plan->map);
    _haloStates.assign(_system.numDpus(), {});
    _haloRows.assign(_system.numDpus(), 0);
    repartitionSharded();
    buildKernel();
}

void
TrainerSession::repartitionSharded()
{
    const std::size_t shards = _plan->map.numShards();
    for (std::size_t s = 0; s < shards; ++s) {
        std::size_t live = 0;
        for (const std::size_t core : _plan->coresOfShard[s])
            if (!_stream->isDead(core))
                ++live;
        // Unlike unsharded dropout (any survivor holds the whole
        // table), losing a whole replica group means shard s's state
        // rows would silently stop training — fail loudly instead.
        if (live == 0)
            SWIFTRL_FATAL("shard ", s, " lost all ",
                          _plan->coresOfShard[s].size(),
                          " replica cores; its state range cannot "
                          "train on");
        const auto chunks =
            partitionDataset(_routing.shardCount[s], live);
        std::size_t next = 0;
        for (const std::size_t core : _plan->coresOfShard[s]) {
            if (_stream->isDead(core)) {
                _firsts[core] = 0;
                _counts[core] = 0;
                continue;
            }
            // _firsts indexes the routing order, not the dataset.
            _firsts[core] =
                _routing.shardFirst[s] + chunks[next].first;
            _counts[core] = chunks[next].count;
            ++next;
        }
    }
    for (std::size_t i = 0; i < _system.numDpus(); ++i) {
        _haloStates[i] =
            collectHalo(*_activeData, _routing, _plan->map,
                        _plan->shardOfCore[i], _firsts[i], _counts[i]);
        _haloRows[i] = _haloStates[i].size();
    }
}

std::vector<std::vector<std::uint8_t>>
TrainerSession::packShardedChunks() const
{
    const std::size_t n = _system.numDpus();
    const bool fp32 = _config.workload.format == NumericFormat::Fp32;
    std::vector<std::vector<std::uint8_t>> packed(n);
    for (std::size_t i = 0; i < n; ++i) {
        packed[i] = packLocalizedChunk(
            *_activeData, _routing, _plan->map, _plan->shardOfCore[i],
            _firsts[i], _counts[i], _haloStates[i], fp32,
            _qio.fixedScale());
    }
    return packed;
}

void
TrainerSession::scatterSharded(TimeBucket bucket,
                               std::string_view label, bool poke)
{
    const auto packed = packShardedChunks();
    std::vector<std::span<const std::uint8_t>> spans(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i)
        spans[i] = packed[i];
    if (poke)
        _stream->pokeChunks(_dataOffset, spans);
    else
        _stream->pushChunks(_dataOffset, spans, bucket, label);
}

void
TrainerSession::pushShardSlices(TimeBucket bucket,
                                std::string_view label, bool poke)
{
    const std::size_t shards = _plan->map.numShards();
    std::vector<std::vector<std::uint8_t>> wires(shards);
    for (std::size_t s = 0; s < shards; ++s)
        wires[s] = packSliceWire(_qio, _aggregated, _plan->map, s);
    const std::size_t n = _system.numDpus();
    std::vector<std::span<const std::uint8_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i)
        spans[i] = wires[_plan->shardOfCore[i]];
    if (poke) {
        _stream->pokeChunks(_qio.qOffset(), spans);
        return;
    }
    _stream->pushChunks(_qio.qOffset(), spans, bucket, label);
    // Requantisation back to raw fixed point happens on-core after
    // the slice lands (zero for FP32), as in the unsharded broadcast.
    const double convert =
        _qio.conversionSeconds(*_stream, _sliceEntries,
                               /*to_float=*/false);
    if (convert > 0.0)
        _stream->onCoreCompute(convert, bucket, "convert:requantise");
}

void
TrainerSession::pushShardHalos(TimeBucket bucket,
                               std::string_view label, bool poke)
{
    const std::size_t n = _system.numDpus();
    std::vector<std::vector<std::uint8_t>> wires(n);
    std::size_t halo_entries = 0;
    for (std::size_t i = 0; i < n; ++i) {
        wires[i] = packHaloWire(_qio, _aggregated, _haloStates[i],
                                _numActions);
        halo_entries += _haloStates[i].size() *
                        static_cast<std::size_t>(_numActions);
    }
    if (halo_entries == 0)
        return; // single shard, or no cross-shard transitions
    std::vector<std::span<const std::uint8_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i)
        spans[i] = wires[i];
    if (poke) {
        _stream->pokeChunks(_haloOffset, spans);
        return;
    }
    // Host-side halo assembly: row lookups into the aggregate plus
    // the staging copies (and, for INT32, the halo requantisation).
    _stream->hostReduce(
        _system.config().transferModel.haloPackSeconds(halo_entries),
        "pack:halo");
    _stream->pushChunks(_haloOffset, spans, bucket, label);
}

std::size_t
TrainerSession::shardedAggregate()
{
    // On-core descale of each slice before the wire transfer, as in
    // the unsharded gather but over slice entries only.
    const double convert =
        _qio.conversionSeconds(*_stream, _sliceEntries,
                               /*to_float=*/true);
    if (convert > 0.0)
        _stream->onCoreCompute(convert, TimeBucket::InterCore,
                               "convert:descale");
    std::vector<std::vector<std::uint8_t>> raw;
    runWithRecovery(
        *_stream, _config.retry, "gather:slices",
        [&] {
            return _stream->gather(
                _qio.qOffset(),
                _sliceEntries * rlcore::kQWireBytesPerEntry, raw,
                TimeBucket::InterCore, "gather:slices");
        },
        [](const pimsim::CommandError &) {
            SWIFTRL_PANIC("gathers cannot drop cores");
        });

    const bool fp32 = _config.workload.format == NumericFormat::Fp32;
    const std::int32_t scale = _qio.fixedScale();
    const std::size_t row_entries =
        static_cast<std::size_t>(_numActions);
    std::size_t deepest = 0;
    for (std::size_t s = 0; s < _plan->map.numShards(); ++s) {
        // Sum the live replica slices in ascending core order, then
        // scale once by 1/liveCount — the exact op order of
        // QTable::average, so a one-shard run aggregates
        // bit-identically to the unsharded path.
        std::vector<float> sum(_sliceEntries, 0.0f);
        std::size_t live = 0;
        for (const std::size_t core : _plan->coresOfShard[s]) {
            if (_stream->isDead(core))
                continue;
            const auto decoded = decodeSliceWire(
                raw[core], _sliceEntries, fp32, scale);
            for (std::size_t i = 0; i < _sliceEntries; ++i)
                sum[i] += decoded[i];
            ++live;
        }
        SWIFTRL_ASSERT(live > 0, "shard ", s,
                       " has no live replica to aggregate");
        const float inv = 1.0f / static_cast<float>(live);
        for (float &v : sum)
            v *= inv;
        deepest = std::max(deepest, live);
        // Only the real (un-padded) rows flow back to the aggregate.
        const StateId base = _plan->map.firstState(s);
        const StateId owned = _plan->map.ownedRows(s);
        std::copy_n(sum.begin(),
                    static_cast<std::size_t>(owned) * row_entries,
                    _aggregated.values().begin() +
                        static_cast<std::size_t>(base) * row_entries);
    }
    return deepest;
}

void
TrainerSession::beginOffline(const Dataset &data, StateId num_states,
                             ActionId num_actions)
{
    SWIFTRL_ASSERT(!data.empty(), "training on an empty dataset");
    SWIFTRL_ASSERT(!_config.streaming,
                   "beginOffline on a streaming session");
    start(num_states, num_actions);
    openRunSpan("begin");
    // Init-phase engine commands (scatter, q-init) parent on the run
    // span so a traced fleet job owns its whole causal subtree.
    telemetry::ScopedSpanParent ambient(_traceSpan.id());

    // Step 1: partition and distribute the dataset (Figure 4 (1)).
    _activeData = &data;
    if (_config.shards > 0) {
        setupShardLayout();
        scatterSharded(TimeBucket::CpuToPim, "scatter:dataset",
                       /*poke=*/false);
        // Zero-init the slice region (both formats share a 4-byte
        // zero encoding) and place the initial all-zero halo rows.
        const std::vector<std::uint8_t> zeros(
            _sliceEntries * rlcore::kQWireBytesPerEntry, 0);
        _stream->pushBroadcast(_qio.qOffset(), zeros,
                               TimeBucket::CpuToPim, "broadcast:qinit");
        pushShardHalos(TimeBucket::CpuToPim, "scatter:halo",
                       /*poke=*/false);
    } else {
        repartition(data);
        scatterActive(TimeBucket::CpuToPim, "scatter:dataset");
        _qio.initQTables(*_stream, num_states, num_actions);
    }

    _episodesRemaining = _config.hyper.episodes;
    _state = SessionState::Ready;
}

void
TrainerSession::beginStreaming(StateId num_states,
                               ActionId num_actions)
{
    SWIFTRL_ASSERT(_config.streaming,
                   "beginStreaming on an offline session");
    start(num_states, num_actions);
    openRunSpan("begin");
    telemetry::ScopedSpanParent ambient(_traceSpan.id());
    _qio.initQTables(*_stream, num_states, num_actions);
    _state = SessionState::Ready;
}

void
TrainerSession::loadGeneration(const Dataset &gen_data)
{
    SWIFTRL_ASSERT(_config.streaming && _state == SessionState::Ready,
                   "loadGeneration needs a Ready streaming session");
    SWIFTRL_ASSERT(_episodesRemaining == 0,
                   "previous generation still has rounds pending");
    _activeData = &gen_data;
    telemetry::ScopedSpanParent ambient(_traceSpan.id());
    repartition(gen_data);
    const std::string label =
        "scatter:gen" + std::to_string(_generation);
    scatterActive(TimeBucket::CpuToPim, label);
    ++_generation;
    _episodesRemaining = _config.hyper.episodes;
}

void
TrainerSession::attachGeneration(const Dataset &gen_data)
{
    SWIFTRL_ASSERT(_config.streaming && _state == SessionState::Ready,
                   "attachGeneration needs a Ready streaming session");
    SWIFTRL_ASSERT(_episodesRemaining > 0,
                   "attachGeneration is for mid-generation restores");
    _activeData = &gen_data;
    repartition(gen_data);
    const auto packed = packChunks(gen_data);
    std::vector<std::span<const std::uint8_t>> spans(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i)
        spans[i] = packed[i];
    _stream->pokeChunks(_dataOffset, spans);
}

bool
TrainerSession::step()
{
    SWIFTRL_ASSERT(_state == SessionState::Ready,
                   "step() needs a Ready session (paused or spent?)");
    if (_episodesRemaining <= 0)
        return false;
    SWIFTRL_ASSERT(_activeData,
                   "no dataset armed (loadGeneration missing?)");

    _params.episodes = std::min(_config.tau, _episodesRemaining);
    _episodesRemaining -= _params.episodes;
    _params.hyper.epsilon = _epsilonNow;

    // One causal span per tau-round, parent of every engine command
    // the round issues. The "retried" outcome (faults recovered
    // inside the round) needs an O(timeline) fault count, so it is
    // only computed while span export is on; the always-on flight
    // breadcrumb keeps outcome "ok".
    const bool traceOutcome = telemetry::tracingActive();
    if (traceOutcome)
        _traceFaultsSeen = faultsDetected();
    telemetry::Span round = telemetry::tracer().begin(
        "session.round", "session", "modelled", _stream->now(),
        _traceSpan.active() ? _traceSpan.id()
                            : telemetry::currentSpanParent());
    round.attr("round", _commRounds + 1)
        .attr("generation", _generation)
        .attr("episodes", _params.episodes);
    telemetry::ScopedSpanParent ambient(round.id());

    // Batch interpretation when the kernel qualifies (single
    // tasklet, no visit tracking): one lockstep pass over the live
    // cohort instead of one interpreter run per core. Either path
    // produces bit-identical modelled results.
    runWithRecovery(
        *_stream, _config.retry, "kernel:round",
        [&] {
            return batchEligible()
                       ? _stream->launchBatch(_batchKernel,
                                              _config.tasklets,
                                              TimeBucket::Kernel,
                                              "kernel:round")
                       : _stream->launch(_kernel, _config.tasklets,
                                         TimeBucket::Kernel,
                                         "kernel:round");
        },
        [&](const pimsim::CommandError &) { redistribute(); });

    const QTable previous = _aggregated;
    std::size_t deepest_group = 0;
    if (shardedMode()) {
        deepest_group = shardedAggregate();
    } else {
        auto tables = _qio.gatherQTables(*_stream, _numStates,
                                         _numActions,
                                         TimeBucket::InterCore,
                                         &_config.retry);
        if (_config.weightedAggregation) {
            // Extra gather of the per-core visit counts, then a
            // count-weighted mean with fallback to the previous
            // aggregate for entries no core visited this round.
            // Dropped cores come back zero-filled with zero counts,
            // so they carry no weight.
            std::vector<std::vector<std::uint8_t>> raw_counts;
            runWithRecovery(
                *_stream, _config.retry, "gather:visits",
                [&] {
                    return _stream->gather(
                        _visitsOffset,
                        _entries * rlcore::kQWireBytesPerEntry,
                        raw_counts, TimeBucket::InterCore,
                        "gather:visits");
                },
                [](const pimsim::CommandError &) {
                    SWIFTRL_PANIC("gathers cannot drop cores");
                });
            _aggregated = weightedAverage(tables, raw_counts, previous);
        } else {
            // Plain mean over the *surviving* cores only; a dropped
            // core's zero-filled placeholder must not dilute it.
            std::vector<QTable> live_tables;
            live_tables.reserve(_stream->liveDpuCount());
            for (std::size_t i = 0; i < tables.size(); ++i) {
                if (!_stream->isDead(i))
                    live_tables.push_back(std::move(tables[i]));
            }
            _aggregated = QTable::average(live_tables);
        }
    }
    const float delta = QTable::maxAbsDifference(_aggregated, previous);
    if (!_config.streaming)
        _roundDeltas.push_back(delta);
    if (shardedMode()) {
        // Host-side cost of the hierarchical aggregation: each shard
        // group reduces independently, so the bill is the deepest
        // group's ceil(log2(replicas)) passes over one slice — not
        // the flat reduction's pass per core over the whole table.
        _stream->hostReduce(
            _system.config().transferModel.aggregationTreeSeconds(
                _sliceEntries, deepest_group),
            "reduce:tree");
        pushShardSlices(TimeBucket::InterCore, "broadcast:slices",
                        /*poke=*/false);
        pushShardHalos(TimeBucket::InterCore, "scatter:halo",
                       /*poke=*/false);
    } else {
        // Host-side reduction cost of the averaging itself.
        _stream->hostReduce(
            _system.config().transferModel.hostReduceSecPerEntry *
                static_cast<double>(_entries) *
                static_cast<double>(_stream->liveDpuCount()),
            "reduce:average");
        _qio.broadcastQTable(*_stream, _aggregated,
                             TimeBucket::InterCore);
    }
    ++_commRounds;
    _epsilonNow *= _config.epsilonDecay;
    if (shardedMode())
        round.attr("reduce_group", deepest_group);
    round.finish(_stream->now(),
                 traceOutcome && faultsDetected() > _traceFaultsSeen
                     ? "retried"
                     : "ok");
    if (!_config.streaming) {
        SWIFTRL_DEBUG("round ", _commRounds, ": max |dQ| ", delta,
                      ", live cores ", _stream->liveDpuCount(),
                      ", modelled t ", _stream->now(), " s");
    }
    if (_config.metrics) {
        _config.metrics->counter("rl_comm_rounds_total").add();
        if (!_config.streaming) {
            _config.metrics->series("rl_round_max_abs_dq")
                .append(delta);
            _stream->recordCounter("max-abs-dq",
                                   static_cast<double>(delta));
        }
    }
    return true;
}

void
TrainerSession::pause()
{
    SWIFTRL_ASSERT(_state == SessionState::Ready,
                   "pause() needs a Ready session");
    _state = SessionState::Paused;
}

void
TrainerSession::resume()
{
    SWIFTRL_ASSERT(_state == SessionState::Paused,
                   "resume() needs a Paused session");
    _state = SessionState::Ready;
}

void
TrainerSession::finishRetrieval()
{
    SWIFTRL_ASSERT(_state == SessionState::Ready,
                   "finishRetrieval() needs a Ready session");
    const double finish_start = _stream->now();
    telemetry::ScopedSpanParent ambient(_traceSpan.id());
    // Final retrieval (Figure 4 (3)): after the last synchronisation
    // every core holds the aggregated table, so the deployed policy
    // is that aggregate; the gather is still paid for — timing-only,
    // as the host provably holds the payload already.
    const std::size_t gather_entries =
        shardedMode() ? _sliceEntries : _entries;
    const double convert = _qio.conversionSeconds(
        *_stream, gather_entries, /*to_float=*/true);
    if (convert > 0.0)
        _stream->onCoreCompute(convert, TimeBucket::PimToCpu,
                               "convert:descale");
    _stream->gatherTimed(_qio.qOffset(),
                         gather_entries * rlcore::kQWireBytesPerEntry,
                         TimeBucket::PimToCpu, "gather:final");
    if (_traceSpan.active()) {
        auto span = telemetry::tracer().begin(
            "session.finish", "session", "modelled", finish_start,
            _traceSpan.id());
        span.attr("rounds", _commRounds);
        span.finish(_stream->now());
        _traceSpan.attr("rounds", _commRounds)
            .attr("faults", faultsDetected())
            .attr("cores_lost", coresLost());
        _traceSpan.finish(_stream->now());
    }
    _state = SessionState::Done;
}

QTable
TrainerSession::weightedAverage(
    const std::vector<QTable> &tables,
    const std::vector<std::vector<std::uint8_t>> &raw_counts,
    const QTable &previous) const
{
    SWIFTRL_ASSERT(tables.size() == raw_counts.size(),
                   "one count table per Q-table required");
    QTable out(previous.numStates(), previous.numActions());
    const std::size_t entries = out.entryCount();
    std::vector<double> numerator(entries, 0.0);
    std::vector<double> denominator(entries, 0.0);

    for (std::size_t core = 0; core < tables.size(); ++core) {
        SWIFTRL_ASSERT(raw_counts[core].size() == entries * 4,
                       "count table size mismatch");
        const auto *counts = reinterpret_cast<const std::uint32_t *>(
            raw_counts[core].data());
        for (std::size_t i = 0; i < entries; ++i) {
            const double w = counts[i];
            numerator[i] +=
                w * static_cast<double>(tables[core].values()[i]);
            denominator[i] += w;
        }
    }
    for (std::size_t i = 0; i < entries; ++i) {
        out.values()[i] =
            denominator[i] > 0.0
                ? static_cast<float>(numerator[i] / denominator[i])
                : previous.values()[i];
    }
    return out;
}

TimeBreakdown
TrainerSession::currentTime() const
{
    SWIFTRL_ASSERT(_stream, "session has no timeline before begin()");
    return breakdownFromTimeline(_stream->timeline(), _timeBase);
}

int
TrainerSession::faultsDetected() const
{
    SWIFTRL_ASSERT(_stream, "session has no timeline before begin()");
    return _faultEventsBase + countFaultEvents(_stream->timeline());
}

std::size_t
TrainerSession::coresLost() const
{
    SWIFTRL_ASSERT(_stream, "session has no stream before begin()");
    return _system.numDpus() - _stream->liveDpuCount();
}

SessionCheckpoint
TrainerSession::checkpoint() const
{
    SWIFTRL_ASSERT(_state == SessionState::Ready ||
                       _state == SessionState::Paused,
                   "checkpoint() needs a live session at a round "
                   "boundary");
    SessionCheckpoint ck;
    ck.streaming = _config.streaming;
    ck.workload = _config.workload;
    ck.hyper = _config.hyper;
    ck.tau = _config.tau;
    ck.blockTransitions = _config.blockTransitions;
    ck.tasklets = _config.tasklets;
    ck.weightedAggregation = _config.weightedAggregation;
    ck.epsilonDecay = _config.epsilonDecay;
    ck.numDpus = _system.numDpus();
    ck.shards = _config.shards;
    ck.numStates = _numStates;
    ck.numActions = _numActions;

    ck.episodesRemaining = _episodesRemaining;
    ck.commRounds = _commRounds;
    ck.generationsStarted = _generation;
    ck.roundDeltas = _roundDeltas;
    ck.epsilonNow = _epsilonNow;

    ck.aggregated = _aggregated.values();
    ck.lcgStates = _lcgStates;

    ck.cursor = _stream->now();
    ck.faultSites = _stream->faultSitesUsed();
    for (const std::size_t id : _stream->deadDpus())
        ck.deadDpus.push_back(id);
    ck.timeBase = currentTime();
    ck.faultEventsBase = faultsDetected();
    ck.dpuCycles.reserve(ck.numDpus);
    for (std::size_t i = 0; i < ck.numDpus; ++i)
        ck.dpuCycles.push_back(_system.dpu(i).cycles());

    // Zero-width marker span: checkpoints charge no modelled time,
    // but the causal trail should show where the state was captured.
    auto span = telemetry::tracer().begin(
        "session.checkpoint", "session", "modelled", ck.cursor,
        _traceSpan.active() ? _traceSpan.id() : 0);
    span.attr("round", _commRounds)
        .attr("episodes_remaining", _episodesRemaining);
    span.finish(ck.cursor);
    return ck;
}

std::string
checkpointMismatch(const SessionConfig &config, std::size_t num_dpus,
                   const SessionCheckpoint &ck)
{
    if (ck.streaming != config.streaming ||
        !(ck.workload == config.workload) || ck.tau != config.tau ||
        ck.blockTransitions != config.blockTransitions ||
        ck.tasklets != config.tasklets ||
        ck.weightedAggregation != config.weightedAggregation ||
        ck.numDpus != num_dpus || ck.shards != config.shards) {
        return "checkpoint does not match the session "
               "configuration (workload/tau/tasklets/cores/shards)";
    }
    const rlcore::Hyper &a = ck.hyper;
    const rlcore::Hyper &b = config.hyper;
    // Field-wise: Hyper has padding, so memcmp is not a comparison.
    if (a.alpha != b.alpha || a.gamma != b.gamma ||
        a.episodes != b.episodes || a.epsilon != b.epsilon ||
        a.stride != b.stride || a.scale != b.scale ||
        a.int8Shift != b.int8Shift || a.seed != b.seed)
        return "checkpoint hyper-parameters do not match the "
               "session configuration";
    if (ck.epsilonDecay != config.epsilonDecay)
        return "checkpoint epsilon schedule does not match the "
               "session configuration";
    return "";
}

void
TrainerSession::adopt(const SessionCheckpoint &ck)
{
    const std::string why =
        checkpointMismatch(_config, _system.numDpus(), ck);
    if (!why.empty())
        SWIFTRL_FATAL(why);

    start(ck.numStates, ck.numActions);

    _episodesRemaining = ck.episodesRemaining;
    _commRounds = ck.commRounds;
    _generation = ck.generationsStarted;
    _roundDeltas = ck.roundDeltas;
    _epsilonNow = ck.epsilonNow;

    SWIFTRL_ASSERT(ck.aggregated.size() == _entries,
                   "checkpointed aggregate has the wrong shape");
    _aggregated =
        QTable::fromFloats(ck.numStates, ck.numActions, ck.aggregated);
    SWIFTRL_ASSERT(ck.lcgStates.size() == _lcgStates.size(),
                   "checkpointed LCG stream count mismatch");
    _lcgStates = ck.lcgStates;

    std::vector<std::size_t> dead;
    dead.reserve(ck.deadDpus.size());
    for (const std::uint64_t id : ck.deadDpus)
        dead.push_back(static_cast<std::size_t>(id));
    _stream->restoreState(ck.cursor,
                          static_cast<std::size_t>(ck.faultSites),
                          dead);
    if (!ck.dpuCycles.empty()) {
        std::vector<pimsim::Cycles> cycles(ck.dpuCycles.begin(),
                                           ck.dpuCycles.end());
        _stream->restoreDpuCycles(cycles);
    }
    _timeBase = ck.timeBase;
    _faultEventsBase = ck.faultEventsBase;

    // Rebuild the MRAM Q region functionally: the exact wire bytes
    // the last broadcast (or init) put in every live bank. Sharded
    // sessions rebuild per-core slices (and halos) instead, once
    // restoreOffline has re-derived the shard layout.
    if (_config.shards == 0) {
        const auto wire = _qio.packWire(_aggregated);
        _stream->pokeBroadcast(_qio.qOffset(), wire);
    }
    // The visit-count region (weighted aggregation) needs no restore:
    // the kernel overwrites it wholesale on every launch before the
    // per-round gather reads it.

    openRunSpan("restore");
    auto span = telemetry::tracer().begin(
        "session.restore", "session", "modelled", ck.cursor,
        _traceSpan.id());
    span.attr("round", _commRounds)
        .attr("episodes_remaining", _episodesRemaining);
    span.finish(ck.cursor);

    _state = SessionState::Ready;
}

void
TrainerSession::restoreOffline(const Dataset &data,
                               const SessionCheckpoint &ck)
{
    SWIFTRL_ASSERT(!_config.streaming,
                   "restoreOffline on a streaming session");
    adopt(ck);
    // Rebuild the transition region: the partition over the restored
    // live set is exactly the one the checkpointed run last scattered
    // (initial scatter and every redistribution use the same
    // deterministic partitionDataset-over-survivors assignment).
    _activeData = &data;
    if (_config.shards > 0) {
        // The shard plan, routing, and halos are pure functions of
        // (shape, shards, cores, data, live set) — re-derive them and
        // poke the slice / data / halo regions functionally.
        setupShardLayout();
        scatterSharded(TimeBucket::Recovery, "", /*poke=*/true);
        pushShardSlices(TimeBucket::Recovery, "", /*poke=*/true);
        pushShardHalos(TimeBucket::Recovery, "", /*poke=*/true);
        return;
    }
    repartition(data);
    const auto packed = packChunks(data);
    std::vector<std::span<const std::uint8_t>> spans(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i)
        spans[i] = packed[i];
    _stream->pokeChunks(_dataOffset, spans);
}

void
TrainerSession::restoreStreaming(const SessionCheckpoint &ck)
{
    SWIFTRL_ASSERT(_config.streaming,
                   "restoreStreaming on an offline session");
    adopt(ck);
    // The data region is rebuilt by attachGeneration() when the
    // restore lands mid-generation; at a generation boundary the next
    // loadGeneration() overwrites it anyway.
}

// --- checkpoint persistence ------------------------------------------
//
// Binary format, little-endian (matching rlcore/serialization.cc):
//   magic "SWRLCK01" | payload | u64 FNV-1a(payload)
// The payload begins with u32 version; the field order below is the
// format. Bump SessionCheckpoint::kVersion on any layout change.

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'W', 'R', 'L',
                                      'C', 'K', '0', '1'};

class ByteWriter
{
  public:
    template <typename T>
    void
    put(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        _bytes.insert(_bytes.end(), p, p + sizeof(T));
    }

    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        put<std::uint64_t>(v.size());
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(v.data());
        _bytes.insert(_bytes.end(), p, p + v.size() * sizeof(T));
    }

    const std::vector<std::uint8_t> &bytes() const { return _bytes; }

  private:
    std::vector<std::uint8_t> _bytes;
};

class ByteReader
{
  public:
    ByteReader(const std::vector<std::uint8_t> &bytes,
               const std::string &path)
        : _bytes(bytes), _path(path)
    {
    }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (_pos + sizeof(T) > _bytes.size())
            SWIFTRL_FATAL("checkpoint ", _path,
                          " truncated mid-field");
        T v;
        std::memcpy(&v, _bytes.data() + _pos, sizeof(T));
        _pos += sizeof(T);
        return v;
    }

    template <typename T>
    std::vector<T>
    getVector()
    {
        const auto count = get<std::uint64_t>();
        if (count > (_bytes.size() - _pos) / sizeof(T))
            SWIFTRL_FATAL("checkpoint ", _path,
                          " truncated mid-array");
        std::vector<T> v(count);
        std::memcpy(v.data(), _bytes.data() + _pos,
                    count * sizeof(T));
        _pos += count * sizeof(T);
        return v;
    }

    bool exhausted() const { return _pos == _bytes.size(); }

  private:
    const std::vector<std::uint8_t> &_bytes;
    const std::string &_path;
    std::size_t _pos = 0;
};

void
putBreakdown(ByteWriter &w, const TimeBreakdown &t)
{
    w.put<double>(t.kernel);
    w.put<double>(t.cpuToPim);
    w.put<double>(t.pimToCpu);
    w.put<double>(t.interCore);
    w.put<double>(t.hostCollect);
    w.put<double>(t.recovery);
}

TimeBreakdown
getBreakdown(ByteReader &r)
{
    TimeBreakdown t;
    t.kernel = r.get<double>();
    t.cpuToPim = r.get<double>();
    t.pimToCpu = r.get<double>();
    t.interCore = r.get<double>();
    t.hostCollect = r.get<double>();
    t.recovery = r.get<double>();
    return t;
}

} // namespace

bool
trySaveCheckpoint(const SessionCheckpoint &ck,
                  const std::string &path, std::string *error)
{
    ByteWriter w;
    w.put<std::uint32_t>(SessionCheckpoint::kVersion);

    w.put<std::uint8_t>(ck.streaming ? 1 : 0);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(ck.workload.algo));
    w.put<std::uint8_t>(
        static_cast<std::uint8_t>(ck.workload.sampling));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(ck.workload.format));
    w.put<float>(ck.hyper.alpha);
    w.put<float>(ck.hyper.gamma);
    w.put<std::int32_t>(ck.hyper.episodes);
    w.put<float>(ck.hyper.epsilon);
    w.put<std::int32_t>(ck.hyper.stride);
    w.put<std::int32_t>(ck.hyper.scale);
    w.put<std::int32_t>(ck.hyper.int8Shift);
    w.put<std::uint64_t>(ck.hyper.seed);
    w.put<std::int32_t>(ck.tau);
    w.put<std::uint64_t>(ck.blockTransitions);
    w.put<std::uint32_t>(ck.tasklets);
    w.put<std::uint8_t>(ck.weightedAggregation ? 1 : 0);
    w.put<float>(ck.epsilonDecay);
    w.put<std::uint64_t>(ck.numDpus);
    w.put<std::uint64_t>(ck.shards);
    w.put<std::int32_t>(ck.numStates);
    w.put<std::int32_t>(ck.numActions);

    w.put<std::int32_t>(ck.episodesRemaining);
    w.put<std::int32_t>(ck.commRounds);
    w.put<std::int32_t>(ck.generationsStarted);
    w.putVector(ck.roundDeltas);
    w.put<float>(ck.epsilonNow);

    w.putVector(ck.aggregated);
    w.putVector(ck.lcgStates);

    w.put<double>(ck.cursor);
    w.put<std::uint64_t>(ck.faultSites);
    w.putVector(ck.deadDpus);
    putBreakdown(w, ck.timeBase);
    w.put<std::int32_t>(ck.faultEventsBase);
    w.putVector(ck.dpuCycles);

    w.put<double>(ck.streamingHostClock);
    w.put<std::int32_t>(ck.streamingPolicyRefreshes);
    w.put<double>(ck.streamingCollectSeconds);
    w.putVector(ck.streamingTrainEndTail);
    w.put<std::uint32_t>(
        static_cast<std::uint32_t>(ck.streamingQAfterTail.size()));
    for (const auto &q : ck.streamingQAfterTail)
        w.putVector(q);
    w.put<std::uint8_t>(ck.streamingPolicyActive ? 1 : 0);
    w.put<float>(ck.streamingPolicyEpsilon);
    w.putVector(ck.streamingPolicySource);

    const auto fail = [&](std::string reason) {
        if (error)
            *error = std::move(reason);
        return false;
    };
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return fail("cannot open " + path + " for writing");
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    const auto &payload = w.bytes();
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    const std::uint64_t checksum =
        rlcore::fnv1a(payload.data(), payload.size());
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof(checksum));
    if (!out)
        return fail("write to " + path + " failed");
    return true;
}

void
saveCheckpoint(const SessionCheckpoint &ck, const std::string &path)
{
    std::string error;
    if (!trySaveCheckpoint(ck, path, &error))
        SWIFTRL_FATAL(error);
}

std::optional<SessionCheckpoint>
tryLoadCheckpoint(const std::string &path, std::string *error)
{
    const auto fail = [&](std::string reason) {
        if (error)
            *error = std::move(reason);
        return std::nullopt;
    };
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail("cannot open checkpoint " + path);
    std::vector<std::uint8_t> file(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    const std::size_t overhead =
        sizeof(kCheckpointMagic) + sizeof(std::uint64_t);
    if (file.size() < overhead)
        return fail("checkpoint " + path + " too short to be valid");
    if (std::memcmp(file.data(), kCheckpointMagic,
                    sizeof(kCheckpointMagic)) != 0)
        return fail("checkpoint " + path + " has the wrong magic");

    const std::size_t payload_size = file.size() - overhead;
    std::vector<std::uint8_t> payload(
        file.begin() + sizeof(kCheckpointMagic),
        file.begin() + sizeof(kCheckpointMagic) +
            static_cast<std::ptrdiff_t>(payload_size));
    std::uint64_t stored = 0;
    std::memcpy(&stored, file.data() + file.size() - sizeof(stored),
                sizeof(stored));
    if (rlcore::fnv1a(payload.data(), payload.size()) != stored)
        return fail("checkpoint " + path +
                    " failed its integrity check");

    ByteReader r(payload, path);
    const auto version = r.get<std::uint32_t>();
    // Version 1 predates sharding (its sessions are shards = 0);
    // everything else about its layout is identical, so it still
    // loads. Any other version fails loudly.
    if (version != 1 && version != SessionCheckpoint::kVersion)
        return fail("checkpoint " + path + " is format version " +
                    std::to_string(version) +
                    "; this build reads versions 1 and " +
                    std::to_string(SessionCheckpoint::kVersion));

    // Past the checksum + version gate the payload is authentic;
    // ByteReader's truncation checks stay fatal (they would indicate
    // a writer bug, not a bad file).
    SessionCheckpoint ck;
    ck.streaming = r.get<std::uint8_t>() != 0;
    ck.workload.algo =
        static_cast<rlcore::Algorithm>(r.get<std::uint8_t>());
    ck.workload.sampling =
        static_cast<rlcore::Sampling>(r.get<std::uint8_t>());
    ck.workload.format =
        static_cast<rlcore::NumericFormat>(r.get<std::uint8_t>());
    ck.hyper.alpha = r.get<float>();
    ck.hyper.gamma = r.get<float>();
    ck.hyper.episodes = r.get<std::int32_t>();
    ck.hyper.epsilon = r.get<float>();
    ck.hyper.stride = r.get<std::int32_t>();
    ck.hyper.scale = r.get<std::int32_t>();
    ck.hyper.int8Shift = r.get<std::int32_t>();
    ck.hyper.seed = r.get<std::uint64_t>();
    ck.tau = r.get<std::int32_t>();
    ck.blockTransitions =
        static_cast<std::size_t>(r.get<std::uint64_t>());
    ck.tasklets = r.get<std::uint32_t>();
    ck.weightedAggregation = r.get<std::uint8_t>() != 0;
    ck.epsilonDecay = r.get<float>();
    ck.numDpus = static_cast<std::size_t>(r.get<std::uint64_t>());
    if (version >= 2)
        ck.shards = static_cast<std::size_t>(r.get<std::uint64_t>());
    ck.numStates = r.get<std::int32_t>();
    ck.numActions = r.get<std::int32_t>();

    ck.episodesRemaining = r.get<std::int32_t>();
    ck.commRounds = r.get<std::int32_t>();
    ck.generationsStarted = r.get<std::int32_t>();
    ck.roundDeltas = r.getVector<float>();
    ck.epsilonNow = r.get<float>();

    ck.aggregated = r.getVector<float>();
    ck.lcgStates = r.getVector<std::uint32_t>();

    ck.cursor = r.get<double>();
    ck.faultSites = r.get<std::uint64_t>();
    ck.deadDpus = r.getVector<std::uint64_t>();
    ck.timeBase = getBreakdown(r);
    ck.faultEventsBase = r.get<std::int32_t>();
    ck.dpuCycles = r.getVector<std::uint64_t>();

    ck.streamingHostClock = r.get<double>();
    ck.streamingPolicyRefreshes = r.get<std::int32_t>();
    ck.streamingCollectSeconds = r.get<double>();
    ck.streamingTrainEndTail = r.getVector<double>();
    const auto tails = r.get<std::uint32_t>();
    ck.streamingQAfterTail.resize(tails);
    for (std::uint32_t i = 0; i < tails; ++i)
        ck.streamingQAfterTail[i] = r.getVector<float>();
    ck.streamingPolicyActive = r.get<std::uint8_t>() != 0;
    ck.streamingPolicyEpsilon = r.get<float>();
    ck.streamingPolicySource = r.getVector<float>();

    if (!r.exhausted())
        return fail("checkpoint " + path +
                    " carries trailing bytes (corrupt or from a "
                    "newer writer)");
    return ck;
}

SessionCheckpoint
loadCheckpoint(const std::string &path)
{
    std::string error;
    auto ck = tryLoadCheckpoint(path, &error);
    if (!ck)
        SWIFTRL_FATAL(error);
    return *std::move(ck);
}

} // namespace swiftrl
