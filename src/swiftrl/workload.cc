#include "swiftrl/workload.hh"

namespace swiftrl {

std::string
Workload::name() const
{
    using rlcore::Algorithm;
    std::string out = algo == Algorithm::QLearning ? "Q-learner" : "SARSA";
    out += "-";
    out += rlcore::samplingName(sampling);
    out += "-";
    out += rlcore::numericFormatName(format);
    return out;
}

std::vector<Workload>
workloadsFor(rlcore::Algorithm algo)
{
    using rlcore::NumericFormat;
    using rlcore::Sampling;
    std::vector<Workload> out;
    for (const auto format : {NumericFormat::Fp32, NumericFormat::Int32}) {
        for (const auto sampling :
             {Sampling::Seq, Sampling::Ran, Sampling::Str}) {
            out.push_back(Workload{algo, sampling, format});
        }
    }
    return out;
}

std::vector<Workload>
allWorkloads()
{
    auto out = workloadsFor(rlcore::Algorithm::QLearning);
    const auto sarsa = workloadsFor(rlcore::Algorithm::Sarsa);
    out.insert(out.end(), sarsa.begin(), sarsa.end());
    return out;
}

std::vector<Workload>
extendedWorkloads()
{
    using rlcore::Algorithm;
    using rlcore::NumericFormat;
    using rlcore::Sampling;
    auto out = allWorkloads();
    for (const auto algo : {Algorithm::QLearning, Algorithm::Sarsa}) {
        for (const auto sampling :
             {Sampling::Seq, Sampling::Ran, Sampling::Str}) {
            out.push_back(
                Workload{algo, sampling, NumericFormat::Int8});
        }
    }
    return out;
}

} // namespace swiftrl
